package sdvm

import (
	"testing"
	"time"

	"repro/internal/workloads"
)

func TestLocalClusterQuickstart(t *testing.T) {
	lc, err := NewLocalCluster(3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	prog, err := lc.Sites[0].Submit(workloads.PrimesApp(), workloads.PrimesArgs(25, 5, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := lc.Sites[0].Wait(prog, 60*time.Second)
	if !ok {
		t.Fatal("program did not terminate")
	}
	primes := ParseU64s(raw)
	if len(primes) != 25 || primes[24] != workloads.NthPrime(25) {
		t.Fatalf("primes = %v", primes)
	}
}

func TestLocalClusterSizeValidation(t *testing.T) {
	if _, err := NewLocalCluster(0, Options{}); err == nil {
		t.Fatal("zero-size cluster accepted")
	}
}

func TestRegisterAndRunCustomApp(t *testing.T) {
	Register("api-test.start", func(ctx Context) error {
		a := ParseU64(ctx.Param(0))
		b := ParseU64(ctx.Param(1))
		ctx.Output("adding")
		ctx.Exit(U64(a + b))
		return nil
	})
	lc, err := NewLocalCluster(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	app := App{Name: "api-test", Threads: []AppThread{{Index: 0, FuncName: "api-test.start"}}}
	prog, err := lc.Sites[0].Submit(app, U64(40), U64(2))
	if err != nil {
		t.Fatal(err)
	}
	out := lc.Sites[0].Output(prog)
	raw, ok := lc.Sites[0].Wait(prog, 30*time.Second)
	if !ok {
		t.Fatal("no result")
	}
	if ParseU64(raw) != 42 {
		t.Fatalf("result = %d", ParseU64(raw))
	}
	select {
	case line := <-out:
		if line != "adding" {
			t.Fatalf("output = %q", line)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no output")
	}
}

func TestTCPClusterEndToEnd(t *testing.T) {
	// The real deployment path: two sites over loopback TCP with
	// encryption enabled.
	boot, err := Bootstrap(Options{Secret: "tcp-secret", SimulatedWork: true})
	if err != nil {
		t.Fatal(err)
	}
	defer boot.Kill()

	contact := boot.Daemon.CM.Self().PhysAddr
	peer, err := Join(contact, Options{Secret: "tcp-secret", SimulatedWork: true})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Kill()

	if boot.ID() == peer.ID() || !peer.ID().Valid() {
		t.Fatalf("ids: %v %v", boot.ID(), peer.ID())
	}

	prog, err := boot.Submit(workloads.PrimesApp(), workloads.PrimesArgs(20, 5, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := boot.Wait(prog, 60*time.Second)
	if !ok {
		t.Fatal("TCP cluster did not terminate")
	}
	primes := ParseU64s(raw)
	if len(primes) != 20 || primes[19] != workloads.NthPrime(20) {
		t.Fatalf("primes = %v", primes)
	}
}

func TestJoinWrongSecretFails(t *testing.T) {
	boot, err := Bootstrap(Options{Secret: "right"})
	if err != nil {
		t.Fatal(err)
	}
	defer boot.Kill()
	contact := boot.Daemon.CM.Self().PhysAddr

	if _, err := Join(contact, Options{Secret: "wrong"}); err == nil {
		t.Fatal("join with wrong cluster secret succeeded")
	}
}

func TestSignOffThroughPublicAPI(t *testing.T) {
	lc, err := NewLocalCluster(3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if err := lc.Sites[2].SignOff(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := lc.Sites[0].Status()
		_ = st
		if lc.Sites[0].Daemon.CM.Size() == 2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("departed site still listed")
}

func TestEncodingHelpers(t *testing.T) {
	if ParseU64(U64(7)) != 7 || ParseI64(I64(-7)) != -7 || ParseF64(F64(2.5)) != 2.5 {
		t.Fatal("scalar helpers broken")
	}
	vs := []uint64{1, 2, 3}
	got := ParseU64s(U64s(vs))
	if len(got) != 3 || got[2] != 3 {
		t.Fatal("vector helpers broken")
	}
	tg := Target{Addr: GlobalAddr{Home: 1, Local: 2}, Slot: 3}
	if ParseTarget(TargetBytes(tg)) != tg {
		t.Fatal("target helpers broken")
	}
}

func TestUDPClusterEndToEnd(t *testing.T) {
	// The paper's wished-for transport: reliable ordered datagrams over
	// UDP. A full two-site run must work identically to TCP.
	boot, err := Bootstrap(Options{UDP: true, SimulatedWork: true})
	if err != nil {
		t.Fatal(err)
	}
	defer boot.Kill()

	contact := boot.Daemon.CM.Self().PhysAddr
	peer, err := Join(contact, Options{UDP: true, SimulatedWork: true})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Kill()

	prog, err := boot.Submit(workloads.PrimesApp(), workloads.PrimesArgs(20, 5, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := boot.Wait(prog, 60*time.Second)
	if !ok {
		t.Fatal("UDP cluster did not terminate")
	}
	primes := ParseU64s(raw)
	if len(primes) != 20 || primes[19] != workloads.NthPrime(20) {
		t.Fatalf("primes = %v", primes)
	}
}

func TestUsageThroughPublicAPI(t *testing.T) {
	lc, err := NewLocalCluster(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	prog, err := lc.Sites[0].Submit(workloads.PrimesApp(), workloads.PrimesArgs(20, 5, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := lc.Sites[0].Wait(prog, 60*time.Second); !ok {
		t.Fatal("did not terminate")
	}
	total, perSite := lc.Sites[0].Usage(prog)
	if total.Executed == 0 || len(perSite) != 2 {
		t.Fatalf("usage = %+v over %d sites", total, len(perSite))
	}
}

func TestInputProviderThroughPublicAPI(t *testing.T) {
	Register("api-input.start", func(ctx Context) error {
		line, ok := ctx.Input("q?")
		if !ok {
			line = "none"
		}
		ctx.Exit([]byte(line))
		return nil
	})
	lc, err := NewLocalCluster(1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	lc.Sites[0].SetInputProvider(func(ProgramID, string) (string, bool) { return "an answer", true })

	app := App{Name: "api-input", Threads: []AppThread{{Index: 0, FuncName: "api-input.start"}}}
	prog, err := lc.Sites[0].Submit(app)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := lc.Sites[0].Wait(prog, 30*time.Second)
	if !ok || string(raw) != "an answer" {
		t.Fatalf("result = %q ok=%v", raw, ok)
	}
}
