// Adaptive: the paper's headline property — the cluster grows and
// shrinks while an application runs (paper §3.4, "dynamic entry and exit
// at run time").
//
// A prime search starts on two sites; two more join mid-run and are
// drafted into the computation via help requests; then one of the
// original sites signs off cleanly, relocating its microframes and
// memory before leaving. The program finishes correctly throughout.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"time"

	sdvm "repro"
	"repro/internal/workloads"
)

func main() {
	cluster, err := sdvm.NewLocalCluster(2, sdvm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Println("cluster up: 2 sites")

	// A deliberately long prime search: first 300 primes, 10 candidates
	// in parallel, 4 work units per test.
	prog, err := cluster.Sites[0].Submit(workloads.PrimesApp(), workloads.PrimesArgs(300, 10, 4)...)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()

	// Two latecomers join through site-0 while the program runs — "new
	// sites can be added at runtime, which will quickly get work".
	//sdvmlint:allow sleepfree -- demo scenario pacing, not daemon code
	time.Sleep(300 * time.Millisecond)
	var late []*sdvm.Site
	for i := 0; i < 2; i++ {
		s, err := sdvm.Join("site-0", sdvm.Options{
			Network:       cluster.Fabric,
			Addr:          fmt.Sprintf("late-%d", i),
			SimulatedWork: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer s.Kill()
		late = append(late, s)
		fmt.Printf("t=%v: site %v joined mid-run\n", time.Since(start).Round(time.Millisecond), s.ID())
	}

	// A little later one of the founding sites leaves — controlled
	// sign-off with full state relocation.
	//sdvmlint:allow sleepfree -- demo scenario pacing, not daemon code
	time.Sleep(300 * time.Millisecond)
	leaving := cluster.Sites[1]
	if err := leaving.SignOff(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%v: site %v signed off (state relocated)\n",
		time.Since(start).Round(time.Millisecond), leaving.ID())

	raw, ok := cluster.Sites[0].Wait(prog, 5*time.Minute)
	if !ok {
		log.Fatal("program did not terminate")
	}
	primes := workloads.ParsePrimesResult(raw)
	fmt.Printf("t=%v: done — %d primes found, 300th prime = %d (expected %d)\n",
		time.Since(start).Round(time.Millisecond), len(primes), primes[len(primes)-1], workloads.NthPrime(300))

	for i, s := range late {
		fmt.Printf("late joiner %d executed %d microthreads\n", i, s.Status().Executed)
	}
}
