// Crashrecovery: the SDVM's crash management (paper §2.2/§6, [4]).
//
// A prime search runs on three sites with periodic checkpointing and a
// heartbeat. One site is killed abruptly — no sign-off, its links just
// drop. The survivors detect the crash, restore the dead site's
// checkpointed microframes and memory, replay their sender-side logs,
// and the program completes with a verified-correct result.
//
// Run with:
//
//	go run ./examples/crashrecovery
package main

import (
	"fmt"
	"log"
	"time"

	sdvm "repro"
	"repro/internal/workloads"
)

func main() {
	cluster, err := sdvm.NewLocalCluster(3, sdvm.Options{
		CheckpointEvery: 50 * time.Millisecond,
		HeartbeatEvery:  50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Println("cluster up: 3 sites, checkpointing every 50ms")

	prog, err := cluster.Sites[0].Submit(workloads.PrimesApp(), workloads.PrimesArgs(200, 10, 4)...)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()

	// Let work spread and checkpoints replicate, then pull the plug on
	// site 2 — a real crash, not a sign-off.
	//sdvmlint:allow sleepfree -- demo scenario pacing, not daemon code
	time.Sleep(500 * time.Millisecond)
	victim := cluster.Sites[2]
	fmt.Printf("t=%v: killing site %v (no goodbye)\n", time.Since(start).Round(time.Millisecond), victim.ID())
	cluster.Fabric.KillSite("site-2")
	victim.Kill()

	raw, ok := cluster.Sites[0].Wait(prog, 5*time.Minute)
	if !ok {
		log.Fatal("program did not survive the crash")
	}
	primes := workloads.ParsePrimesResult(raw)
	want := workloads.NthPrime(200)
	fmt.Printf("t=%v: done — 200th prime = %d (expected %d) — %s\n",
		time.Since(start).Round(time.Millisecond), primes[len(primes)-1], want,
		map[bool]string{true: "CORRECT", false: "WRONG"}[primes[len(primes)-1] == want])

	for i, s := range cluster.Sites[:2] {
		d := s.Daemon
		fmt.Printf("site %d: executed=%d checkpoints=%d recoveries=%d\n",
			i, d.Exec.Executed(), d.Ckpt.Taken(), d.Ckpt.Recovered())
	}
}
