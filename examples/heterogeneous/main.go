// Heterogeneous: the paper's on-the-fly code distribution (paper §3.4).
//
// Every site of this cluster has a distinct platform id, so no site can
// execute another's binaries. The application is submitted on site 0
// (which holds source + its own platform's binary). When a microframe
// reaches a foreign-platform site, that site's code manager requests the
// microthread, receives the portable *source* (no matching binary exists
// anywhere yet), compiles it on the fly, and publishes the fresh binary
// to a code distribution site so later sites of the same platform get a
// binary "at first go".
//
// Run with:
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"time"

	sdvm "repro"
	"repro/internal/transport/inproc"
	"repro/internal/workloads"
)

func main() {
	fab := inproc.New(inproc.LinkProfile{})
	defer fab.Close()

	// Four sites, four platforms — like a mixed Linux/HP-UX/Solaris/BSD
	// cluster in 2005. Compilation costs a simulated 3ms per thread.
	var sites []*sdvm.Site
	for i := 0; i < 4; i++ {
		opts := sdvm.Options{
			Network:       fab,
			Addr:          fmt.Sprintf("site-%d", i),
			Platform:      sdvm.PlatformID(i + 1),
			CompileCost:   3 * time.Millisecond,
			SimulatedWork: true,
		}
		var (
			s   *sdvm.Site
			err error
		)
		if i == 0 {
			s, err = sdvm.Bootstrap(opts)
		} else {
			s, err = sdvm.Join("site-0", opts)
		}
		if err != nil {
			log.Fatal(err)
		}
		defer s.Kill()
		sites = append(sites, s)
		fmt.Printf("site %v up (platform %d)\n", s.ID(), i+1)
	}

	prog, err := sites[0].Submit(workloads.PrimesApp(), workloads.PrimesArgs(150, 12, 3)...)
	if err != nil {
		log.Fatal(err)
	}
	raw, ok := sites[0].Wait(prog, 5*time.Minute)
	if !ok {
		log.Fatal("program did not terminate")
	}
	primes := workloads.ParsePrimesResult(raw)
	fmt.Printf("done: 150th prime = %d (expected %d)\n", primes[len(primes)-1], workloads.NthPrime(150))

	fmt.Println("\ncode manager activity per site:")
	for i, s := range sites {
		st := s.Daemon.Code.Stats()
		fmt.Printf("  site %d: local-hits=%d remote-binaries=%d source-fetches=%d compiles=%d published=%d served=%d\n",
			i, st.LocalHits, st.RemoteBinary, st.RemoteSource, st.Compiles, st.PublishedUp, st.RequestsServed)
	}
	fmt.Println("\n(every non-submitting site compiled from source exactly where the")
	fmt.Println(" paper's protocol says it should, and published the result)")
}
