// Cdaghints: the CDAG analysis (paper §3.3, reference [7]) in action.
//
// The Controlflow-Dataflow-Allocation-Graph is the SDVM toolchain's view
// of an application: microthread instantiations as nodes, dataflow
// dependencies as edges. From it the toolchain derives the critical
// path, the slack of every node (→ scheduling priorities), the
// exploitable parallelism, and the best-case speedup — before the
// program ever runs.
//
// This example builds the CDAG of the pipeline workload (items
// independent tokens × stages dependent steps), prints the analysis, and
// then runs the real workload on 1 and on 4 sites to compare the CDAG's
// structural prediction with measured reality.
//
// Run with:
//
//	go run ./examples/cdaghints
package main

import (
	"fmt"
	"log"
	"time"

	sdvm "repro"
	"repro/internal/cdag"
	"repro/internal/workloads"
)

const (
	items     = 8
	stages    = 6
	stageCost = 5.0 // Work units per stage
)

func buildPipelineCDAG() *cdag.Graph {
	g := cdag.New()
	mustNode := func(id string, thread uint32, cost float64) {
		if _, err := g.AddNode(id, thread, cost); err != nil {
			log.Fatal(err)
		}
	}
	mustEdge := func(from, to string) {
		if err := g.AddEdge(from, to); err != nil {
			log.Fatal(err)
		}
	}

	mustNode("start", workloads.PipeStart, 0)
	mustNode("reduce", workloads.PipeReduce, 0)
	for i := 0; i < items; i++ {
		prev := "start"
		for s := 0; s < stages; s++ {
			id := fmt.Sprintf("item%d-stage%d", i, s)
			mustNode(id, workloads.PipeStage, stageCost)
			mustEdge(prev, id)
			prev = id
		}
		mustEdge(prev, "reduce")
	}
	return g
}

func main() {
	g := buildPipelineCDAG()
	hints, analysis, err := g.Hints()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("CDAG of pipeline(items=%d, stages=%d, cost=%.0f):\n", items, stages, stageCost)
	fmt.Printf("  nodes:          %d\n", g.Len())
	fmt.Printf("  total work:     %.0f units\n", analysis.TotalWork)
	fmt.Printf("  makespan:       %.0f units (critical path %v)\n",
		analysis.Makespan, analysis.CriticalPath[:3])
	fmt.Printf("  max parallelism: %d\n", analysis.MaxWidth)
	fmt.Printf("  ideal speedup:  %.2f (no machine can beat this)\n", analysis.IdealSpeedup())

	critical := 0
	for _, h := range hints {
		if h.Prio >= sdvm.PriorityCritical {
			critical++
		}
	}
	fmt.Printf("  scheduling hints: %d nodes tagged critical, %d total\n\n", critical, len(hints))

	measure := func(sites int) time.Duration {
		cluster, err := sdvm.NewLocalCluster(sites, sdvm.Options{})
		if err != nil {
			log.Fatal(err)
		}
		defer cluster.Close()
		start := time.Now()
		prog, err := cluster.Sites[0].Submit(workloads.PipeApp(), workloads.PipeArgs(items, stages, stageCost)...)
		if err != nil {
			log.Fatal(err)
		}
		if _, ok := cluster.Sites[0].Wait(prog, 5*time.Minute); !ok {
			log.Fatal("pipeline did not terminate")
		}
		return time.Since(start)
	}

	t1 := measure(1)
	t4 := measure(4)
	fmt.Printf("measured: 1 site %v, 4 sites %v — speedup %.2f\n",
		t1.Round(time.Millisecond), t4.Round(time.Millisecond), float64(t1)/float64(t4))
	fmt.Printf("CDAG bound with 4 sites: min(%d, 4) bounded by ideal %.2f\n",
		analysis.MaxWidth, analysis.IdealSpeedup())
	fmt.Println("\n(the measured speedup must stay below the CDAG's structural bound;")
	fmt.Println(" the gap is scheduling and communication, which the analysis ignores)")
}
