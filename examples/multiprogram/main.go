// Multiprogram: the SDVM as a multi-tasking, multi-user machine
// (paper goals 10/11): several users submit different applications from
// different sites; the cluster runs them simultaneously, each program's
// output reaching its own submitter's frontend.
//
// Run with:
//
//	go run ./examples/multiprogram
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	sdvm "repro"
	"repro/internal/workloads"
)

func main() {
	cluster, err := sdvm.NewLocalCluster(4, sdvm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Println("cluster up: 4 sites, 3 users submitting from 3 different sites")

	type job struct {
		name   string
		site   int
		app    sdvm.App
		args   [][]byte
		verify func([]byte) string
	}
	jobs := []job{
		{
			name: "primes", site: 0,
			app:  workloads.PrimesApp(),
			args: workloads.PrimesArgs(150, 10, 3),
			verify: func(raw []byte) string {
				ps := workloads.ParsePrimesResult(raw)
				return fmt.Sprintf("150th prime = %d (want %d)", ps[len(ps)-1], workloads.NthPrime(150))
			},
		},
		{
			name: "fibonacci", site: 1,
			app:  workloads.FibApp(),
			args: workloads.FibArgs(16, 0.5),
			verify: func(raw []byte) string {
				return fmt.Sprintf("fib(16) = %d (want 987)", sdvm.ParseU64(raw))
			},
		},
		{
			name: "montecarlo-pi", site: 2,
			app:  workloads.PiApp(),
			args: workloads.PiArgs(24, 20000, 2, 11),
			verify: func(raw []byte) string {
				return fmt.Sprintf("π ≈ %.5f", sdvm.ParseF64(raw))
			},
		},
	}

	var wg sync.WaitGroup
	start := time.Now()
	for _, j := range jobs {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			submitter := cluster.Sites[j.site]
			prog, err := submitter.Submit(j.app, j.args...)
			if err != nil {
				log.Fatalf("%s: %v", j.name, err)
			}
			raw, ok := submitter.Wait(prog, 5*time.Minute)
			if !ok {
				log.Fatalf("%s did not terminate", j.name)
			}
			fmt.Printf("t=%v: %-14s finished on behalf of site %v — %s\n",
				time.Since(start).Round(time.Millisecond), j.name,
				submitter.ID(), j.verify(raw))
		}()
	}
	wg.Wait()

	fmt.Println("\nwork distribution across the shared cluster:")
	for i, s := range cluster.Sites {
		fmt.Printf("  site %d: executed %d microthreads\n", i, s.Status().Executed)
	}
}
