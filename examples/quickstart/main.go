// Quickstart: a four-site SDVM cluster inside one process.
//
// This example walks the paper's execution cycle (Figure 4) end to end:
// an application partitioned into microthreads is submitted on one site,
// its microframes spread across the cluster through help requests, and
// the result comes back to the submitting site's frontend.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	sdvm "repro"
)

// The application: numbers are squared by worker microthreads and summed
// by a collector — a minimal fan-out/fan-in dataflow graph.
//
// Thread 0 (entry): creates the collector and one worker frame per input.
// Thread 1 (square): squares its input, sends it to the collector.
// Thread 2 (collect): sums all results, prints, and exits the program.
func init() {
	sdvm.Register("quickstart.start", func(ctx sdvm.Context) error {
		inputs := sdvm.ParseU64s(ctx.Param(0))
		ctx.Output(fmt.Sprintf("start on %v: distributing %d squares", ctx.Site(), len(inputs)))

		collector := ctx.NewFrame(2, len(inputs))
		for i, v := range inputs {
			worker := ctx.NewFrame(1, 1, sdvm.Target{Addr: collector, Slot: int32(i)})
			if err := ctx.Send(sdvm.Target{Addr: worker, Slot: 0}, sdvm.U64(v)); err != nil {
				return err
			}
		}
		return nil
	})

	sdvm.Register("quickstart.square", func(ctx sdvm.Context) error {
		v := sdvm.ParseU64(ctx.Param(0))
		ctx.Work(5) // pretend squaring is expensive
		ctx.Output(fmt.Sprintf("  %d² computed on %v", v, ctx.Site()))
		return ctx.Send(ctx.Target(0), sdvm.U64(v*v))
	})

	sdvm.Register("quickstart.collect", func(ctx sdvm.Context) error {
		var sum uint64
		for i := 0; i < ctx.Arity(); i++ {
			sum += sdvm.ParseU64(ctx.Param(i))
		}
		ctx.Output(fmt.Sprintf("collector on %v: sum of squares = %d", ctx.Site(), sum))
		ctx.Exit(sdvm.U64(sum))
		return nil
	})
}

func main() {
	cluster, err := sdvm.NewLocalCluster(4, sdvm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Printf("cluster up: %d sites\n", len(cluster.Sites))

	app := sdvm.App{
		Name: "quickstart",
		Threads: []sdvm.AppThread{
			{Index: 0, FuncName: "quickstart.start"},
			{Index: 1, FuncName: "quickstart.square"},
			{Index: 2, FuncName: "quickstart.collect"},
		},
	}
	inputs := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}

	prog, err := cluster.Sites[0].Submit(app, sdvm.U64s(inputs))
	if err != nil {
		log.Fatal(err)
	}
	out := cluster.Sites[0].Output(prog)

	go func() {
		for line := range out {
			fmt.Println("frontend |", line)
		}
	}()

	result, ok := cluster.Sites[0].Wait(prog, time.Minute)
	if !ok {
		log.Fatal("program did not terminate")
	}
	fmt.Printf("result: %d (expected 385)\n", sdvm.ParseU64(result))

	// Show where the work actually ran.
	for i, s := range cluster.Sites {
		st := s.Status()
		fmt.Printf("site %d (%v): executed %d microthreads\n", i, s.ID(), st.Executed)
	}
}
