package sdvm_test

import (
	"fmt"
	"time"

	sdvm "repro"
)

func init() {
	// Microthreads register once per process (see the mthread package
	// for why this stands in for the paper's on-the-fly compiled C).
	sdvm.Register("example.sum", func(ctx sdvm.Context) error {
		a := sdvm.ParseU64(ctx.Param(0))
		b := sdvm.ParseU64(ctx.Param(1))
		ctx.Exit(sdvm.U64(a + b))
		return nil
	})
	sdvm.Register("example.fan", func(ctx sdvm.Context) error {
		// Fan out three squares into a collector, the smallest possible
		// dataflow graph with real parallelism.
		collect := ctx.NewFrame(1, 3)
		for i := uint64(1); i <= 3; i++ {
			w := ctx.NewFrame(2, 1, sdvm.Target{Addr: collect, Slot: int32(i - 1)})
			if err := ctx.Send(sdvm.Target{Addr: w, Slot: 0}, sdvm.U64(i)); err != nil {
				return err
			}
		}
		return nil
	})
	sdvm.Register("example.square", func(ctx sdvm.Context) error {
		v := sdvm.ParseU64(ctx.Param(0))
		return ctx.Send(ctx.Target(0), sdvm.U64(v*v))
	})
	sdvm.Register("example.collect", func(ctx sdvm.Context) error {
		var sum uint64
		for i := 0; i < ctx.Arity(); i++ {
			sum += sdvm.ParseU64(ctx.Param(i))
		}
		ctx.Exit(sdvm.U64(sum))
		return nil
	})
}

// ExampleNewLocalCluster runs the smallest possible SDVM program on an
// in-process cluster: one microthread that adds its two parameters.
func ExampleNewLocalCluster() {
	cluster, err := sdvm.NewLocalCluster(2, sdvm.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer cluster.Close()

	app := sdvm.App{Name: "sum", Threads: []sdvm.AppThread{
		{Index: 0, FuncName: "example.sum"},
	}}
	prog, err := cluster.Sites[0].Submit(app, sdvm.U64(40), sdvm.U64(2))
	if err != nil {
		fmt.Println(err)
		return
	}
	result, ok := cluster.Sites[0].Wait(prog, time.Minute)
	if !ok {
		fmt.Println("timeout")
		return
	}
	fmt.Println(sdvm.ParseU64(result))
	// Output: 42
}

// ExampleSite_Submit shows a dataflow fan-out/fan-in: a root microthread
// spawns workers whose results gather in a collector frame.
func ExampleSite_Submit() {
	cluster, err := sdvm.NewLocalCluster(3, sdvm.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer cluster.Close()

	app := sdvm.App{Name: "fan", Threads: []sdvm.AppThread{
		{Index: 0, FuncName: "example.fan"},
		{Index: 1, FuncName: "example.collect"},
		{Index: 2, FuncName: "example.square"},
	}}
	prog, err := cluster.Sites[0].Submit(app)
	if err != nil {
		fmt.Println(err)
		return
	}
	result, ok := cluster.Sites[0].Wait(prog, time.Minute)
	if !ok {
		fmt.Println("timeout")
		return
	}
	// 1² + 2² + 3²
	fmt.Println(sdvm.ParseU64(result))
	// Output: 14
}
