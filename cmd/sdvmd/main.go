// Command sdvmd runs one SDVM site daemon over TCP — the program "to be
// run on every participating machine" (paper §4).
//
// Start a new cluster:
//
//	sdvmd -listen 192.168.1.10:7000
//
// Join an existing one from any other machine (paper §3.4: "only the
// SDVM daemon has to be started and the (ip) address of a site which is
// already part of the cluster provided"):
//
//	sdvmd -listen 192.168.1.11:7000 -join 192.168.1.10:7000
//
// Further flags configure the paper's tunables: -secret enables the
// security manager (same value on every site), -platform and -speed
// simulate heterogeneous hardware, -window sets the latency-hiding
// window, -checkpoint/-heartbeat enable crash management.
//
// The daemon prints a status line periodically and performs the paper's
// controlled sign-off (relocating all microframes and memory) on SIGINT.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	sdvm "repro"
	_ "repro/internal/workloads" // register the standard workloads
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:7000", "address this site's network manager binds")
		join       = flag.String("join", "", "address of any current cluster member; empty bootstraps a new cluster")
		secret     = flag.String("secret", "", "cluster start password; enables AES-GCM on all traffic")
		platform   = flag.Uint("platform", 0, "simulated platform id (sites only execute matching binaries)")
		speed      = flag.Float64("speed", 1.0, "relative processing speed")
		window     = flag.Int("window", 5, "latency-hiding window (paper: 5)")
		checkpoint = flag.Duration("checkpoint", 0, "checkpoint interval (0 = off)")
		heartbeat  = flag.Duration("heartbeat", 0, "crash-detection heartbeat (0 = off)")
		status     = flag.Duration("status", 5*time.Second, "status print interval (0 = quiet)")
		simulated  = flag.Bool("simwork", false, "simulate Work by sleeping instead of burning CPU")
		gossip     = flag.Bool("gossip", false, "epidemic membership/load dissemination instead of broadcasts (bootstrap only; joiners adopt the cluster's mode)")
		useUDP     = flag.Bool("udp", false, "use the reliable-UDP transport instead of TCP")
		metrics    = flag.Bool("metrics", false, "enable the metrics registry (queryable via sdvmstat -metrics)")
		metricsAt  = flag.String("metrics-addr", "", "also serve metrics as JSON over HTTP at host:port (implies -metrics)")
	)
	flag.Parse()

	opts := sdvm.Options{
		UDP:             *useUDP,
		Addr:            *listen,
		Secret:          *secret,
		Platform:        sdvm.PlatformID(*platform),
		Speed:           *speed,
		Window:          *window,
		CheckpointEvery: *checkpoint,
		HeartbeatEvery:  *heartbeat,
		SimulatedWork:   *simulated,
		Gossip:          *gossip,
		Metrics:         *metrics,
		MetricsAddr:     *metricsAt,
	}

	var (
		site *sdvm.Site
		err  error
	)
	if *join == "" {
		site, err = sdvm.Bootstrap(opts)
		if err == nil {
			fmt.Printf("sdvmd: bootstrapped new cluster as %v on %s\n", site.ID(), *listen)
		}
	} else {
		site, err = sdvm.Join(*join, opts)
		if err == nil {
			fmt.Printf("sdvmd: joined cluster via %s as %v\n", *join, site.ID())
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdvmd: %v\n", err)
		os.Exit(1)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *status > 0 {
		ticker = time.NewTicker(*status)
		tick = ticker.C
		defer ticker.Stop()
	}

	for {
		select {
		case <-tick:
			fmt.Printf("sdvmd: %v\n", site.Status())
		case sig := <-sigs:
			fmt.Printf("sdvmd: %v — signing off (relocating microframes and memory)\n", sig)
			if err := site.SignOff(); err != nil {
				fmt.Fprintf(os.Stderr, "sdvmd: sign-off: %v\n", err)
				os.Exit(1)
			}
			fmt.Println("sdvmd: signed off cleanly")
			return
		}
	}
}
