// Command sdvmrun submits one of the standard workloads to a running
// SDVM cluster and waits for the result — the paper's frontend: "the
// users can access the SDVM from any site which is part of the cluster,
// and therefore run applications from anywhere" (§6).
//
// sdvmrun joins the cluster as a (temporary) site, submits, streams the
// program's frontend output, prints the result, and signs off.
//
//	sdvmrun -join 192.168.1.10:7000 -app primes -p 1000 -width 10
//	sdvmrun -join 192.168.1.10:7000 -app fib -n 20
//	sdvmrun -join 192.168.1.10:7000 -app pi -chunks 64
//	sdvmrun -join 192.168.1.10:7000 -app matmul -n 64 -grid 4
//	sdvmrun -join 192.168.1.10:7000 -app pipeline -items 32 -stages 8
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	sdvm "repro"
	"repro/internal/workloads"
)

func main() {
	var (
		join   = flag.String("join", "127.0.0.1:7000", "address of any current cluster member")
		listen = flag.String("listen", "127.0.0.1:0", "this frontend site's own listen address")
		secret = flag.String("secret", "", "cluster start password (must match the cluster)")
		app    = flag.String("app", "primes", "workload: primes|fib|pi|matmul|pipeline")
		cost   = flag.Float64("cost", 1.0, "Work units per task")

		p      = flag.Int("p", 100, "primes: how many primes")
		width  = flag.Int("width", 10, "primes: candidates in parallel")
		n      = flag.Int("n", 16, "fib: argument / matmul: matrix dimension")
		chunks = flag.Int("chunks", 32, "pi: independent chunks")
		grid   = flag.Int("grid", 4, "matmul: block grid")
		items  = flag.Int("items", 16, "pipeline: tokens")
		stages = flag.Int("stages", 8, "pipeline: stages per token")
	)
	flag.Parse()

	site, err := sdvm.Join(*join, sdvm.Options{Addr: *listen, Secret: *secret})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdvmrun: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := site.SignOff(); err != nil {
			fmt.Fprintf(os.Stderr, "sdvmrun: sign-off: %v\n", err)
		}
	}()
	fmt.Printf("sdvmrun: joined as %v\n", site.ID())

	var (
		application sdvm.App
		args        [][]byte
		render      func([]byte) string
	)
	switch *app {
	case "primes":
		application = workloads.PrimesApp()
		args = workloads.PrimesArgs(*p, *width, *cost)
		render = func(raw []byte) string {
			ps := workloads.ParsePrimesResult(raw)
			return fmt.Sprintf("found %d primes; %d-th prime = %d", len(ps), len(ps), ps[len(ps)-1])
		}
	case "fib":
		application = workloads.FibApp()
		args = workloads.FibArgs(*n, *cost)
		render = func(raw []byte) string { return fmt.Sprintf("fib(%d) = %d", *n, sdvm.ParseU64(raw)) }
	case "pi":
		application = workloads.PiApp()
		args = workloads.PiArgs(*chunks, 20000, *cost, 42)
		render = func(raw []byte) string { return fmt.Sprintf("pi ≈ %.6f", sdvm.ParseF64(raw)) }
	case "matmul":
		application = workloads.MatMulApp()
		args = workloads.MatMulArgs(*n, *grid, *cost)
		render = func(raw []byte) string { return fmt.Sprintf("checksum = %.4f", sdvm.ParseF64(raw)) }
	case "pipeline":
		application = workloads.PipeApp()
		args = workloads.PipeArgs(*items, *stages, *cost)
		render = func(raw []byte) string { return fmt.Sprintf("checksum = %d", sdvm.ParseU64(raw)) }
	default:
		fmt.Fprintf(os.Stderr, "sdvmrun: unknown app %q\n", *app)
		os.Exit(2)
	}

	start := time.Now()
	prog, err := site.Submit(application, args...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdvmrun: submit: %v\n", err)
		os.Exit(1)
	}
	out := site.Output(prog)
	go func() {
		for line := range out {
			fmt.Println("  |", line)
		}
	}()

	raw, ok := site.Wait(prog, 0)
	if !ok {
		fmt.Fprintln(os.Stderr, "sdvmrun: program did not terminate")
		os.Exit(1)
	}
	fmt.Printf("sdvmrun: %s in %v\n", render(raw), time.Since(start).Round(time.Millisecond))
}
