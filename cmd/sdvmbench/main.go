// Command sdvmbench regenerates the paper's evaluation (§5) and the
// ablation experiments listed in DESIGN.md, printing the same rows the
// paper reports next to the published numbers.
//
// Usage:
//
//	sdvmbench -exp table1            # Table 1 (reduced p set)
//	sdvmbench -exp table1 -full      # Table 1, all published rows
//	sdvmbench -exp overhead          # O-1: SDVM vs sequential (~3 %)
//	sdvmbench -exp churn             # §3.4 dynamic entry & exit
//	sdvmbench -exp crash             # §2.2/§6 crash recovery
//	sdvmbench -exp hetero            # §3.4 on-the-fly compilation
//	sdvmbench -exp sched             # A-1 scheduling policies
//	sdvmbench -exp window            # A-2 latency-hiding window
//	sdvmbench -exp security          # A-3 encryption cost
//	sdvmbench -exp idalloc           # A-4 id-allocation strategies
//	sdvmbench -exp central           # A-5 central vs decentralized
//	sdvmbench -exp memstress         # P-1 sharded attraction-memory throughput
//	sdvmbench -exp helpstorm         # P-2 batched help grants + coalescing
//	sdvmbench -exp scalestorm        # P-4 gossip membership at 64–256 sites
//	sdvmbench -exp memread           # P-5 read replicas on a read-hot working set
//	sdvmbench -exp all               # everything
//
// -exp also accepts a comma-separated list; the BENCH_2.json trajectory
// point is `-exp overhead,memstress,helpstorm -json -out BENCH_2.json`.
//
// The -scale flag maps one Work unit to wall-clock microseconds; the
// default 1000 (1 ms) runs the evaluation at roughly 1/30 of the paper's
// 2005 testbed speed with the default -cost 2.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment(s), comma-separated: table1|overhead|churn|crash|hetero|sched|window|security|idalloc|replication|pinning|scale|speeds|central|memstress|helpstorm|scalestorm|memread|all")
		full    = flag.Bool("full", false, "table1: run every published row (p up to 1000); slow")
		scale   = flag.Int("scale", 1000, "wall-clock microseconds per Work unit")
		cost    = flag.Float64("cost", 2.0, "Work units per prime-candidate test")
		jsonOut = flag.Bool("json", false, "also write a machine-readable report (see -out)")
		outPath = flag.String("out", "BENCH_1.json", "report path for -json")
	)
	flag.Parse()

	unit := time.Duration(*scale) * time.Microsecond
	spec := bench.Spec{WorkUnit: unit}

	var report *bench.Report
	if *jsonOut {
		report = bench.NewReport()
	}

	// run executes one experiment. Without -json an error aborts the
	// whole command; with -json it is recorded in the report and the
	// remaining experiments still run (the command exits 1 at the end).
	run := func(key, name string, f func(s *bench.Summary) error) {
		fmt.Printf("==> %s\n", name)
		sum := bench.Timed(key, f)
		if sum.Err != "" {
			fmt.Fprintf(os.Stderr, "sdvmbench: %s: %s\n", key, sum.Err)
			if report == nil {
				os.Exit(1)
			}
		} else {
			fmt.Printf("    (experiment took %v)\n\n",
				time.Duration(sum.WallClockMS*float64(time.Millisecond)).Round(time.Millisecond))
		}
		if report != nil {
			report.Add(sum)
		}
	}
	// plain adapts experiments that only report wall-clock.
	plain := func(f func() error) func(*bench.Summary) error {
		return func(*bench.Summary) error { return f() }
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		if e = strings.TrimSpace(e); e != "" {
			want[e] = true
		}
	}
	all := want["all"]
	any := false
	if all || want["table1"] {
		any = true
		run("table1", "Table 1 — speedup of the parallel prime computation", plain(func() error {
			return expTable1(spec, *cost, *full)
		}))
	}
	if all || want["overhead"] {
		any = true
		run("overhead", "O-1 — SDVM overhead vs stand-alone sequential ([5]: ≈3 %)", func(s *bench.Summary) error {
			if report == nil {
				s = nil // plain mode: run uninstrumented, like the seed did
			}
			return expOverhead(spec, *cost, s)
		})
	}
	if all || want["churn"] {
		any = true
		run("churn", "§3.4 — dynamic entry and exit at runtime", plain(func() error {
			return expChurn(spec, *cost)
		}))
	}
	if all || want["crash"] {
		any = true
		run("crash", "§2.2/§6 — crash detection and recovery", plain(func() error {
			return expCrash(spec, *cost)
		}))
	}
	if all || want["hetero"] {
		any = true
		run("hetero", "§3.4 — heterogeneous cluster, on-the-fly compilation", plain(func() error {
			return expHetero(spec, *cost)
		}))
	}
	if all || want["sched"] {
		any = true
		run("sched", "A-1 — scheduling policies (paper: FIFO local, LIFO help)", plain(func() error {
			return expSched(spec, *cost)
		}))
	}
	if all || want["window"] {
		any = true
		run("window", "A-2 — latency-hiding window (paper: ≈5)", plain(func() error {
			return expWindow(spec)
		}))
	}
	if all || want["security"] {
		any = true
		run("security", "A-3 — security manager on/off", plain(func() error {
			return expSecurity(spec, *cost)
		}))
	}
	if all || want["idalloc"] {
		any = true
		run("idalloc", "A-4 — logical-id allocation strategies", plain(expIDAlloc))
	}
	if all || want["replication"] {
		any = true
		run("replication", "A-6 — COMA read replication on/off (matmul)", plain(func() error {
			return expReplication(spec)
		}))
	}
	if all || want["scale"] {
		any = true
		run("scale", "goal 5 — scalability curve", plain(func() error {
			return expScale(spec, *cost)
		}))
	}
	if all || want["speeds"] {
		any = true
		run("speeds", "§3.5 — load balancing across heterogeneous speeds", plain(func() error {
			return expSpeeds(spec, *cost)
		}))
	}
	if all || want["pinning"] {
		any = true
		run("pinning", "A-7 — critical-path scheduling hints on/off (§3.3)", plain(func() error {
			return expPinning(spec, *cost)
		}))
	}
	if all || want["central"] {
		any = true
		run("central", "A-5 — decentralized vs central scheduling", plain(func() error {
			return expCentral(spec, *cost)
		}))
	}
	if all || want["memstress"] {
		any = true
		run("memstress", "P-1 — sharded attraction-memory throughput, 1 vs 4 procs", func(s *bench.Summary) error {
			if report == nil {
				s = nil
			}
			return expMemStress(spec, s)
		})
	}
	if all || want["scalestorm"] {
		any = true
		run("scalestorm", "P-4 — gossip membership dissemination at 64/128/256 sites", func(s *bench.Summary) error {
			if report == nil {
				s = nil
			}
			return expScaleStorm(s)
		})
	}
	if all || want["helpstorm"] {
		any = true
		run("helpstorm", "P-2 — batched help grants and message coalescing", func(s *bench.Summary) error {
			if report == nil {
				s = nil
			}
			return expHelpStorm(spec, *cost, s)
		})
	}
	if all || want["memread"] {
		any = true
		run("memread", "P-5 — read replicas + write-invalidate on a read-hot working set", func(s *bench.Summary) error {
			if report == nil {
				s = nil
			}
			return expMemRead(spec, s)
		})
	}
	if !any {
		fmt.Fprintf(os.Stderr, "sdvmbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if report != nil {
		if err := report.Write(*outPath); err != nil {
			fmt.Fprintf(os.Stderr, "sdvmbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("sdvmbench: wrote %s (%d experiments)\n", *outPath, len(report.Experiments))
		if report.Failed() {
			os.Exit(1)
		}
	}
}

func expTable1(spec bench.Spec, cost float64, full bool) error {
	rows := bench.PaperTable1
	if !full {
		rows = []bench.Table1Row{rows[0], rows[1], rows[4], rows[5]} // p∈{100,200}
	}
	got, err := bench.Table1(spec, cost, rows)
	if err != nil {
		return err
	}
	fmt.Printf("    %5s %6s | %10s %10s %10s | %8s %8s | %8s %8s\n",
		"p", "width", "1 site", "4 sites", "8 sites", "S4", "S8", "paper-S4", "paper-S8")
	for _, r := range got {
		fmt.Printf("    %5d %6d | %10v %10v %10v | %8.2f %8.2f | %8.1f %8.1f\n",
			r.P, r.Width,
			r.T1.Round(time.Millisecond), r.T4.Round(time.Millisecond), r.T8.Round(time.Millisecond),
			r.Speedup4, r.Speedup8, r.PaperSpeedup4, r.PaperSpeedup8)
	}
	return nil
}

func expOverhead(spec bench.Spec, cost float64, sum *bench.Summary) error {
	var (
		res    bench.OverheadResult
		totals map[string]int64
		err    error
	)
	if sum != nil {
		// JSON mode instruments the 1-site run so the report pairs
		// wall-clock with the metric totals behind it.
		res, totals, err = bench.OverheadWithMetrics(spec, 100, 10, cost)
	} else {
		res, err = bench.Overhead(spec, 100, 10, cost)
	}
	if err != nil {
		return err
	}
	fmt.Printf("    sequential: %v   1-site SDVM: %v   overhead: %.1f%%   (paper: ≈3%%)\n",
		res.Seq.Round(time.Millisecond), res.SDVM.Round(time.Millisecond), 100*res.Overhead)
	if sum != nil {
		sum.Values = map[string]float64{
			"seq_ms":        float64(res.Seq) / float64(time.Millisecond),
			"sdvm_ms":       float64(res.SDVM) / float64(time.Millisecond),
			"overhead_frac": res.Overhead,
		}
		sum.Metrics = totals
		fmt.Printf("    top metrics: %s\n", strings.Join(bench.TopMetrics(totals, 8), " "))
	}
	return nil
}

func expChurn(spec bench.Spec, cost float64) error {
	s := spec
	s.Sites = 4
	res, err := bench.Churn(s, 200, 10, cost)
	if err != nil {
		return err
	}
	fmt.Printf("    static 4-site run: %v   churn run (3 sites +1 join, -1 sign-off): %v   late joiner worked: %v\n",
		res.Static.Round(time.Millisecond), res.Churn.Round(time.Millisecond), res.Joined)
	return nil
}

func expCrash(spec bench.Spec, cost float64) error {
	s := spec
	s.Sites = 4
	res, err := bench.Crash(s, 200, 10, cost)
	if err != nil {
		return err
	}
	fmt.Printf("    crash-free: %v   with one site crashing: %v   checkpoints: %d   recoveries: %d\n",
		res.CrashFree.Round(time.Millisecond), res.WithCrash.Round(time.Millisecond),
		res.Checkpoints, res.Recoveries)
	fmt.Printf("    (the result was verified correct in both runs)\n")
	return nil
}

func expHetero(spec bench.Spec, cost float64) error {
	s := spec
	s.Sites = 4
	res, err := bench.Hetero(s, 200, 10, cost, 2*time.Millisecond)
	if err != nil {
		return err
	}
	fmt.Printf("    homogeneous: %v   all-distinct platforms: %v   on-the-fly compiles: %d\n",
		res.Homogeneous.Round(time.Millisecond), res.Hetero.Round(time.Millisecond), res.Compiles)
	return nil
}

func expSched(spec bench.Spec, cost float64) error {
	s := spec
	s.Sites = 8
	out, err := bench.SchedPolicies(s, 200, 20, cost)
	if err != nil {
		return err
	}
	for _, r := range out {
		marker := ""
		if r.Local.String() == "fifo" && r.Help.String() == "lifo" {
			marker = "   <- paper's choice"
		}
		fmt.Printf("    local=%-5v help=%-5v : %v%s\n", r.Local, r.Help, r.Elapsed.Round(time.Millisecond), marker)
	}
	return nil
}

func expWindow(spec bench.Spec) error {
	s := spec
	s.Sites = 4
	out, err := bench.WindowSweep(s, []int{1, 2, 3, 5, 8, 16}, 32, 4, 1)
	if err != nil {
		return err
	}
	for _, r := range out {
		marker := ""
		if r.Window == 5 {
			marker = "   <- paper's choice"
		}
		fmt.Printf("    W=%-2d : %v%s\n", r.Window, r.Elapsed.Round(time.Millisecond), marker)
	}
	return nil
}

func expSecurity(spec bench.Spec, cost float64) error {
	s := spec
	s.Sites = 4
	res, err := bench.Security(s, 200, 10, cost)
	if err != nil {
		return err
	}
	fmt.Printf("    plaintext: %v   AES-GCM: %v   (+%.1f%%)\n",
		res.Plain.Round(time.Millisecond), res.Encrypted.Round(time.Millisecond),
		100*(float64(res.Encrypted)-float64(res.Plain))/float64(res.Plain))
	return nil
}

func expIDAlloc() error {
	out, err := bench.IDAlloc(32)
	if err != nil {
		return err
	}
	for _, r := range out {
		fmt.Printf("    %-10s : %d sites signed on in %v\n", r.Strategy, r.Sites, r.Elapsed.Round(time.Millisecond))
	}
	return nil
}

func expReplication(spec bench.Spec) error {
	s := spec
	s.Sites = 4
	res, err := bench.ReadReplication(s, 32, 4, 1)
	if err != nil {
		return err
	}
	fmt.Printf("    replication on: %v (%d replica hits)   off: %v\n",
		res.With.Round(time.Millisecond), res.Hits, res.Without.Round(time.Millisecond))
	return nil
}

func expScale(spec bench.Spec, cost float64) error {
	out, err := bench.ScaleCurve(spec, []int{1, 2, 4, 8, 16}, 200, 20, cost)
	if err != nil {
		return err
	}
	for _, pt := range out {
		fmt.Printf("    %2d sites: %10v   speedup %.2f\n",
			pt.Sites, pt.Elapsed.Round(time.Millisecond), pt.Speedup)
	}
	return nil
}

func expSpeeds(spec bench.Spec, cost float64) error {
	speeds := []float64{2.0, 1.0, 1.0, 0.5}
	res, err := bench.HeterogeneousSpeeds(spec, speeds, 200, 20, cost)
	if err != nil {
		return err
	}
	var total uint64
	for _, sh := range res.Shares {
		total += sh.Executed
	}
	fmt.Printf("    elapsed: %v\n", res.Elapsed.Round(time.Millisecond))
	for _, sh := range res.Shares {
		fmt.Printf("    %v speed=%.1f: executed %d (%.0f%%)\n",
			sh.Site, sh.Speed, sh.Executed, 100*float64(sh.Executed)/float64(total))
	}
	fmt.Printf("    (speed shares sum: 2.0+1.0+1.0+0.5 — a perfect balancer gives 44/22/22/11%%)\n")
	return nil
}

func expPinning(spec bench.Spec, cost float64) error {
	s := spec
	s.Sites = 8
	res, err := bench.CriticalPinning(s, 200, 20, cost)
	if err != nil {
		return err
	}
	fmt.Printf("    hints on: %v   off: %v\n",
		res.With.Round(time.Millisecond), res.Without.Round(time.Millisecond))
	return nil
}

func expMemStress(spec bench.Spec, sum *bench.Summary) error {
	res, err := bench.MemStress(spec, 8, 16, 8000, 4)
	if err != nil {
		return err
	}
	fmt.Printf("    GOMAXPROCS=1: %.0f ops/s   GOMAXPROCS=%d: %.0f ops/s   scaling: %.2fx   shard contention: %d\n",
		res.Ops1, res.Procs, res.OpsN, res.Scaling, res.Contention)
	fmt.Printf("    (a single-mutex manager pins scaling to ≈1x on any host; on a single-core\n")
	fmt.Printf("     host the sharded one reads ≈1x too — contention is the signal there)\n")
	if sum != nil {
		sum.Values = map[string]float64{
			"ops_per_sec_1p":   res.Ops1,
			"ops_per_sec_np":   res.OpsN,
			"procs":            float64(res.Procs),
			"scaling":          res.Scaling,
			"shard_contention": float64(res.Contention),
		}
	}
	return nil
}

func expHelpStorm(spec bench.Spec, cost float64, sum *bench.Summary) error {
	res, err := bench.HelpStorm(spec, 200, 20, cost)
	if err != nil {
		return err
	}
	avg := 0.0
	if res.Grants > 0 {
		avg = float64(res.GrantFrames) / float64(res.Grants)
	}
	fmt.Printf("    single grants: %v   batched+coalesced: %v\n",
		res.Single.Round(time.Millisecond), res.Batched.Round(time.Millisecond))
	fmt.Printf("    batched run: %d grants moved %d frames (avg %.1f/reply), %d messages coalesced\n",
		res.Grants, res.GrantFrames, avg, res.Coalesced)
	if sum != nil {
		sum.Values = map[string]float64{
			"single_ms":    float64(res.Single) / float64(time.Millisecond),
			"batched_ms":   float64(res.Batched) / float64(time.Millisecond),
			"grants":       float64(res.Grants),
			"grant_frames": float64(res.GrantFrames),
			"coalesced":    float64(res.Coalesced),
		}
	}
	return nil
}

func expScaleStorm(sum *bench.Summary) error {
	points, err := bench.ScaleStorm([]int{64, 128, 256}, 200*time.Microsecond)
	if err != nil {
		return err
	}
	if sum != nil {
		sum.Values = map[string]float64{}
	}
	converged := 1.0
	for _, pt := range points {
		fmt.Printf("    %3d sites: join %8.1f ms   converge %8.1f ms   leave %8.1f ms\n",
			pt.Sites, pt.JoinMS, pt.ConvergeMS, pt.LeaveMS)
		if !pt.Converged {
			converged = 0
		}
		if sum != nil {
			sum.Values[fmt.Sprintf("wall_ms_%d", pt.Sites)] = pt.ConvergeMS
			sum.Values[fmt.Sprintf("leave_ms_%d", pt.Sites)] = pt.LeaveMS
		}
	}
	if sum != nil {
		sum.Values["converged"] = converged
	}
	return nil
}

func expMemRead(spec bench.Spec, sum *bench.Summary) error {
	res, err := bench.MemRead(spec, 2, 32, 100)
	if err != nil {
		return err
	}
	fmt.Printf("    replication on: %.0f reads/s (%d replica hits, %d remote fetches)\n",
		res.OpsWith, res.ReplicaHits, res.RemoteWith)
	fmt.Printf("    replication off: %.0f reads/s (%d remote fetches)   owner writes during run: %d\n",
		res.OpsWithout, res.RemoteWithout, res.Writes)
	fmt.Printf("    effective: %v (hits observed and strictly fewer cross-site fetches)\n", res.Effective)
	if sum != nil {
		effective := 0.0
		if res.Effective {
			effective = 1
		}
		sum.Values = map[string]float64{
			"ops_per_sec_with":    res.OpsWith,
			"ops_per_sec_without": res.OpsWithout,
			"replica_hits":        float64(res.ReplicaHits),
			"remote_with":         float64(res.RemoteWith),
			"remote_without":      float64(res.RemoteWithout),
			"owner_writes":        float64(res.Writes),
			"effective":           effective,
		}
		sum.Metrics = res.Metrics
	}
	return nil
}

func expCentral(spec bench.Spec, cost float64) error {
	for _, sites := range []int{8, 16} {
		s := spec
		s.Sites = sites
		res, err := bench.CentralVsDecentral(s, 200, 20, cost)
		if err != nil {
			return err
		}
		fmt.Printf("    %2d sites: decentralized (SDVM): %v   central master/worker: %v\n",
			sites, res.Decentral.Round(time.Millisecond), res.Central.Round(time.Millisecond))
	}
	return nil
}
