// Command sdvmstat is the SDVM's cluster monitor: it joins a running
// cluster as an observer site, queries every member's site manager for
// its status (paper §4: the site manager "provides the functionality to
// query the status of the local site"), optionally pulls the accounting
// books (paper §2.2/§6), prints the tables, and signs off.
//
//	sdvmstat -join 192.168.1.10:7000
//	sdvmstat -join 192.168.1.10:7000 -watch 2s
//	sdvmstat -join 192.168.1.10:7000 -usage
//	sdvmstat -join 192.168.1.10:7000 -metrics
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	sdvm "repro"
	"repro/internal/accounting"
)

func main() {
	var (
		join    = flag.String("join", "127.0.0.1:7000", "address of any current cluster member")
		secret  = flag.String("secret", "", "cluster start password (must match the cluster)")
		watch   = flag.Duration("watch", 0, "refresh interval; 0 prints once and exits")
		usage   = flag.Bool("usage", false, "also print per-program accounting")
		metrics = flag.Bool("metrics", false, "aggregate and print every member's metrics registry")
	)
	flag.Parse()

	site, err := sdvm.Join(*join, sdvm.Options{Secret: *secret})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdvmstat: %v\n", err)
		os.Exit(1)
	}
	defer func() { _ = site.SignOff() }()

	printOnce := func() {
		d := site.Daemon
		fmt.Printf("%-10s %-24s %6s %6s %6s %9s %8s %8s %8s %10s\n",
			"site", "address", "load", "queue", "progs", "executed", "running", "frames", "objects", "uptime")
		ids := d.CM.SiteIDs()
		for _, id := range ids {
			if id == d.Self() {
				continue // the observer itself is uninteresting
			}
			// A member can sign off between the roster snapshot above and
			// this query; surface the error on its row and keep going —
			// one departed site must not kill a -watch session.
			info, known := d.CM.Lookup(id)
			if !known {
				fmt.Printf("%-10v %-24s (departed)\n", id, "-")
				continue
			}
			sr, err := d.Site.QueryStatus(id)
			if err != nil {
				fmt.Printf("%-10v %-24s (unreachable: %v)\n", id, info.PhysAddr, err)
				continue
			}
			fmt.Printf("%-10v %-24s %6.2f %6d %6d %9d %8d %8d %8d %10v\n",
				id, info.PhysAddr, sr.Load, sr.QueueLen, sr.Programs,
				sr.Executed, sr.Running, sr.Frames, sr.Objects,
				time.Duration(sr.UptimeNs).Round(time.Second))
		}

		if *metrics {
			fmt.Println()
			printMetrics(site)
		}

		if *usage {
			fmt.Println()
			progs := map[string]bool{}
			for _, prog := range d.Acct.LocalPrograms() {
				total, perSite := d.Acct.ClusterUsage(prog)
				fmt.Printf("program %v (cluster total):\n  %s\n", prog, accounting.FormatUsage(total))
				for _, u := range perSite {
					fmt.Printf("    %s\n", accounting.FormatUsage(u))
				}
				progs[prog.String()] = true
			}
			if len(progs) == 0 {
				fmt.Println("(no accounted programs visible from this observer)")
			}
		}
	}

	printOnce()
	if *watch <= 0 {
		return
	}
	ticker := time.NewTicker(*watch)
	defer ticker.Stop()
	for range ticker.C {
		fmt.Println()
		printOnce()
	}
}

// printMetrics queries every member's registry over the bus and prints
// the cluster-wide totals (sum over sites, per metric name).
func printMetrics(site *sdvm.Site) {
	d := site.Daemon
	totals := map[string]int64{}
	reported := 0
	for _, id := range d.CM.SiteIDs() {
		if id == d.Self() {
			continue
		}
		mr, err := d.Site.QueryMetrics(id)
		if err != nil {
			fmt.Printf("metrics %v: (unreachable: %v)\n", id, err)
			continue
		}
		reported++
		for _, s := range mr.Samples {
			totals[s.Name] += s.Value
		}
	}
	fmt.Printf("cluster metrics (%d sites reporting):\n", reported)
	if len(totals) == 0 {
		fmt.Println("  (none — start sites with -metrics or -metrics-addr)")
		return
	}
	names := make([]string, 0, len(totals))
	for n := range totals {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-44s %12d\n", n, totals[n])
	}
}
