// Command sdvmdemo hosts an N-site SDVM cluster inside one process and
// runs a workload on it — the quickest way to watch the machine operate
// without any network setup.
//
//	sdvmdemo -sites 8 -app primes -p 200 -width 20
//
// After the run it prints a per-site accounting of where microthreads
// executed, how often sites helped each other, and what the attraction
// memory moved — the observable counterpart of the paper's Figures 4/5.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	sdvm "repro"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	var (
		sites   = flag.Int("sites", 4, "number of in-process sites")
		app     = flag.String("app", "primes", "workload: primes|fib|pi|matmul|pipeline")
		p       = flag.Int("p", 200, "primes: how many primes")
		width   = flag.Int("width", 10, "primes: candidates in parallel")
		n       = flag.Int("n", 16, "fib argument / matmul dimension")
		cost    = flag.Float64("cost", 4.0, "Work units per task")
		doTrace = flag.Bool("trace", false, "record and print a microframe's career (paper Figure 5)")
	)
	flag.Parse()

	opts := sdvm.Options{}
	if *doTrace {
		opts.TraceCapacity = 65536
	}
	cluster, err := sdvm.NewLocalCluster(*sites, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdvmdemo: %v\n", err)
		os.Exit(1)
	}
	defer cluster.Close()
	fmt.Printf("sdvmdemo: %d sites up\n", *sites)

	var (
		application sdvm.App
		args        [][]byte
	)
	switch *app {
	case "primes":
		application = workloads.PrimesApp()
		args = workloads.PrimesArgs(*p, *width, *cost)
	case "fib":
		application = workloads.FibApp()
		args = workloads.FibArgs(*n, *cost)
	case "pi":
		application = workloads.PiApp()
		args = workloads.PiArgs(32, 20000, *cost, 42)
	case "matmul":
		application = workloads.MatMulApp()
		args = workloads.MatMulArgs(*n, 4, *cost)
	case "pipeline":
		application = workloads.PipeApp()
		args = workloads.PipeArgs(16, 8, *cost)
	default:
		fmt.Fprintf(os.Stderr, "sdvmdemo: unknown app %q\n", *app)
		os.Exit(2)
	}

	submitter := cluster.Sites[0]
	start := time.Now()
	prog, err := submitter.Submit(application, args...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdvmdemo: %v\n", err)
		os.Exit(1)
	}
	out := submitter.Output(prog)
	go func() {
		for line := range out {
			fmt.Println("  |", line)
		}
	}()
	if _, ok := submitter.Wait(prog, 30*time.Minute); !ok {
		fmt.Fprintln(os.Stderr, "sdvmdemo: program did not terminate")
		os.Exit(1)
	}
	fmt.Printf("sdvmdemo: finished in %v\n\n", time.Since(start).Round(time.Millisecond))

	fmt.Printf("%-6s %9s %9s %9s %9s %9s %9s %9s\n",
		"site", "executed", "helped", "begged", "granted", "applied", "fired", "migrated")
	for i, s := range cluster.Sites {
		d := s.Daemon
		sc := d.Sched.Stats()
		ms := d.Mem.Stats()
		fmt.Printf("%-6d %9d %9d %9d %9d %9d %9d %9d\n",
			i, d.Exec.Executed(), sc.HelpServed, sc.HelpAsked, sc.HelpGranted,
			ms.ParamsApplied, ms.FramesFired, ms.Migrations)
	}

	if *doTrace {
		printCareer(cluster)
	}
}

// printCareer shows the cluster-wide career of the microframe with the
// most recorded events — the paper's Figure 5, live.
func printCareer(cluster *sdvm.LocalCluster) {
	var tracers []*trace.Tracer
	for _, s := range cluster.Sites {
		tracers = append(tracers, s.Daemon.Trace)
	}
	counts := map[sdvm.FrameID]int{}
	for _, tr := range tracers {
		for _, e := range tr.Events() {
			counts[e.Frame]++
		}
	}
	var best sdvm.FrameID
	bestN := 0
	for f, n := range counts {
		if n > bestN {
			best, bestN = f, n
		}
	}
	if bestN == 0 {
		fmt.Println("\n(no trace events recorded)")
		return
	}
	fmt.Printf("\ncareer of microframe %v (paper Figure 5):\n", best)
	for _, e := range trace.MergeCareers(best, tracers...) {
		fmt.Printf("  %s\n", e)
	}
}
