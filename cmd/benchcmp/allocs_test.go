package main

import (
	"regexp"
	"strings"
	"testing"
)

const sampleBenchmem = `goos: linux
goarch: amd64
pkg: repro/internal/wire
cpu: AMD EPYC 7B13
BenchmarkEncode/apply-param-4         	 6799770	       174.8 ns/op	     312 B/op	       3 allocs/op
BenchmarkEncode/help-reply            	 1000000	       688.0 ns/op	    1400 B/op	       5 allocs/op
BenchmarkDecode/apply-param-16        	 5000000	       198.4 ns/op	     272 B/op	       0 allocs/op
BenchmarkCoalesce-4                   	  500000	        59.36 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/wire	12.3s
`

func TestParseBenchmem(t *testing.T) {
	got, err := parseBenchmem(strings.NewReader(sampleBenchmem))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"BenchmarkEncode/apply-param": 3,
		"BenchmarkEncode/help-reply":  5,
		"BenchmarkDecode/apply-param": 0,
		"BenchmarkCoalesce":           0,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, allocs := range want {
		if got[name] != allocs {
			t.Errorf("%s = %d allocs/op, want %d", name, got[name], allocs)
		}
	}
}

// TestParseBenchmemKeepsWorst pins the duplicate rule: when go test
// -count or a retried job emits a benchmark twice, the larger count
// wins so a flaky allocation cannot hide behind a clean rerun.
func TestParseBenchmemKeepsWorst(t *testing.T) {
	in := `BenchmarkX-4   100   10 ns/op   0 B/op   2 allocs/op
BenchmarkX-4   100   10 ns/op   0 B/op   0 allocs/op
`
	got, err := parseBenchmem(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX"] != 2 {
		t.Fatalf("BenchmarkX = %d, want the worst run (2)", got["BenchmarkX"])
	}
}

func TestCheckAllocsRequireZero(t *testing.T) {
	got := map[string]int{
		"BenchmarkEncode/a": 0,
		"BenchmarkEncode/b": 2,
		"BenchmarkOther":    7,
	}
	fails := checkAllocs(got, nil, regexp.MustCompile(`^BenchmarkEncode/`))
	if len(fails) != 1 || !strings.Contains(fails[0], "BenchmarkEncode/b") {
		t.Fatalf("fails = %v, want exactly the nonzero Encode benchmark", fails)
	}
	// All-zero matches pass.
	got["BenchmarkEncode/b"] = 0
	if fails := checkAllocs(got, nil, regexp.MustCompile(`^BenchmarkEncode/`)); len(fails) != 0 {
		t.Fatalf("unexpected failures: %v", fails)
	}
}

// TestCheckAllocsVacuousPattern pins the anti-footgun: a require-zero
// regex that matches nothing must fail the gate, otherwise renaming a
// benchmark silently disables enforcement.
func TestCheckAllocsVacuousPattern(t *testing.T) {
	got := map[string]int{"BenchmarkOther": 0}
	fails := checkAllocs(got, nil, regexp.MustCompile(`^BenchmarkEncode/`))
	if len(fails) != 1 || !strings.Contains(fails[0], "matched no benchmark") {
		t.Fatalf("fails = %v, want a vacuous-pattern failure", fails)
	}
}

func TestCheckAllocsBaseline(t *testing.T) {
	base := map[string]int{
		"BenchmarkA":    3,
		"BenchmarkB":    0,
		"BenchmarkGone": 1,
	}
	got := map[string]int{
		"BenchmarkA":   4, // regression
		"BenchmarkB":   0, // fine
		"BenchmarkNew": 9, // not in baseline: ignored
	}
	fails := checkAllocs(got, base, nil)
	if len(fails) != 2 {
		t.Fatalf("fails = %v, want regression + missing-benchmark", fails)
	}
	joined := strings.Join(fails, "\n")
	if !strings.Contains(joined, "BenchmarkA") || !strings.Contains(joined, "regression") {
		t.Errorf("missing regression failure: %v", fails)
	}
	if !strings.Contains(joined, "BenchmarkGone") || !strings.Contains(joined, "missing from this run") {
		t.Errorf("missing disappeared-benchmark failure: %v", fails)
	}
	// Improvement (fewer allocs than baseline) passes.
	got["BenchmarkA"] = 1
	delete(base, "BenchmarkGone")
	if fails := checkAllocs(got, base, nil); len(fails) != 0 {
		t.Fatalf("improvement flagged as failure: %v", fails)
	}
}
