// Allocation-gate mode: instead of comparing two sdvm-bench JSON
// reports, parse `go test -benchmem` text output and enforce two
// invariants the zero-allocation wire path depends on:
//
//  1. every benchmark matching -require-zero reports 0 allocs/op
//     (and the regex must match at least one benchmark, so a renamed
//     benchmark cannot silently disable the gate), and
//  2. no benchmark present in the committed allocation baseline
//     (-allocs-base, a JSON object of name -> allocs/op) reports more
//     allocs/op than the baseline records.
//
// Usage:
//
//	go test -run=NONE -bench . -benchmem ./internal/wire | tee bench.txt
//	benchcmp -allocs bench.txt -allocs-base bench.allocs.json \
//	         -require-zero '^BenchmarkEncode/|^BenchmarkDecode/'
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchmemLine matches one result line of -benchmem output, e.g.
//
//	BenchmarkEncode/apply-param-4   6799770   174.8 ns/op   312 B/op   3 allocs/op
//
// capturing the benchmark name and the allocs/op count.
var benchmemLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s.*?(\d+) allocs/op`)

// gomaxprocsSuffix is the trailing "-N" go test appends to benchmark
// names. Stripping it keeps baselines portable across CPU counts.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchmem extracts {benchmark name -> allocs/op} from go test
// -benchmem output. Lines that are not benchmark results (headers,
// PASS, ok) are ignored. A benchmark appearing twice keeps the larger
// count, so a flaky extra allocation cannot hide behind a clean rerun.
func parseBenchmem(r io.Reader) (map[string]int, error) {
	out := make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		m := benchmemLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		n, err := strconv.Atoi(m[2])
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", sc.Text(), err)
		}
		if prev, ok := out[name]; !ok || n > prev {
			out[name] = n
		}
	}
	return out, sc.Err()
}

// checkAllocs applies the two gate rules and returns the failures in
// deterministic order (empty slice = gate passed).
func checkAllocs(got, base map[string]int, requireZero *regexp.Regexp) []string {
	var fails []string
	if requireZero != nil {
		matched := 0
		for _, name := range sortedKeys(got) {
			if !requireZero.MatchString(name) {
				continue
			}
			matched++
			if got[name] != 0 {
				fails = append(fails, fmt.Sprintf(
					"%s: %d allocs/op, must be 0", name, got[name]))
			}
		}
		if matched == 0 {
			fails = append(fails, fmt.Sprintf(
				"require-zero pattern %q matched no benchmark; gate would be vacuous", requireZero))
		}
	}
	for _, name := range sortedKeys(base) {
		n, ok := got[name]
		if !ok {
			fails = append(fails, fmt.Sprintf(
				"%s: in allocation baseline but missing from this run", name))
			continue
		}
		if n > base[name] {
			fails = append(fails, fmt.Sprintf(
				"%s: %d allocs/op, baseline %d — allocation regression", name, n, base[name]))
		}
	}
	return fails
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// runAllocsMode implements `benchcmp -allocs`. It exits the process.
func runAllocsMode(allocsPath, basePath, requireZeroPat string) {
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchcmp: "+format+"\n", args...)
		os.Exit(1)
	}

	var in io.Reader = os.Stdin
	if allocsPath != "-" {
		f, err := os.Open(allocsPath)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		in = f
	}
	got, err := parseBenchmem(in)
	if err != nil {
		fail("parsing benchmem output: %v", err)
	}
	if len(got) == 0 {
		fail("no benchmark results found in %s", allocsPath)
	}

	base := map[string]int{}
	if basePath != "" {
		buf, err := os.ReadFile(basePath)
		if err != nil {
			fail("%v", err)
		}
		if err := json.Unmarshal(buf, &base); err != nil {
			fail("%s: baseline must be a JSON object of name -> allocs/op: %v", basePath, err)
		}
	}

	var requireZero *regexp.Regexp
	if requireZeroPat != "" {
		requireZero, err = regexp.Compile(requireZeroPat)
		if err != nil {
			fail("bad -require-zero pattern: %v", err)
		}
	}

	for _, name := range sortedKeys(got) {
		marks := ""
		if requireZero != nil && requireZero.MatchString(name) {
			marks += " [must-be-zero]"
		}
		if b, ok := base[name]; ok {
			marks += fmt.Sprintf(" [baseline %d]", b)
		}
		fmt.Printf("  %-50s %3d allocs/op%s\n", name, got[name], marks)
	}

	if fails := checkAllocs(got, base, requireZero); len(fails) > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: allocation gate failed:\n")
		for _, f := range fails {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchcmp: allocation gate passed (%d benchmarks, %d in baseline)\n",
		len(got), len(base))
	os.Exit(0)
}
