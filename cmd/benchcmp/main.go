// Command benchcmp compares two sdvm-bench JSON reports and fails when a
// watched value regressed beyond a tolerance. CI uses it to hold the
// benchmark trajectory: a fresh BENCH_2.json run must not be more than
// 10 % slower than the committed BENCH_1.json point on the overhead
// experiment's 1-site wall-clock.
//
// Usage:
//
//	benchcmp -base BENCH_1.json -new BENCH_2.json \
//	         -exp overhead -value sdvm_ms -max-regress 0.10
//
// The watched value must exist in both reports' named experiment. All
// other values the two experiments share are printed for the log but
// not enforced.
//
// A second mode, -allocs, gates `go test -benchmem` output instead;
// see allocs.go.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/bench"
)

func load(path string) (*bench.Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r bench.Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func find(r *bench.Report, exp string) (bench.Summary, error) {
	for _, s := range r.Experiments {
		if s.Experiment == exp {
			if s.Err != "" {
				return s, fmt.Errorf("experiment %q recorded an error: %s", exp, s.Err)
			}
			return s, nil
		}
	}
	return bench.Summary{}, fmt.Errorf("experiment %q not in report", exp)
}

func main() {
	var (
		basePath = flag.String("base", "BENCH_1.json", "baseline report")
		newPath  = flag.String("new", "BENCH_2.json", "candidate report")
		exp      = flag.String("exp", "overhead", "experiment to compare")
		value    = flag.String("value", "sdvm_ms", "watched value inside the experiment")
		maxReg   = flag.Float64("max-regress", 0.10, "tolerated relative increase of the watched value")

		allocsPath  = flag.String("allocs", "", "allocation-gate mode: go test -benchmem output file ('-' = stdin)")
		allocsBase  = flag.String("allocs-base", "", "JSON allocation baseline (name -> allocs/op) for -allocs mode")
		requireZero = flag.String("require-zero", "", "regex of benchmarks that must report 0 allocs/op in -allocs mode")
	)
	flag.Parse()

	if *allocsPath != "" {
		runAllocsMode(*allocsPath, *allocsBase, *requireZero)
	}

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchcmp: "+format+"\n", args...)
		os.Exit(1)
	}

	base, err := load(*basePath)
	if err != nil {
		fail("%v", err)
	}
	cand, err := load(*newPath)
	if err != nil {
		fail("%v", err)
	}
	bs, err := find(base, *exp)
	if err != nil {
		fail("%s: %v", *basePath, err)
	}
	cs, err := find(cand, *exp)
	if err != nil {
		fail("%s: %v", *newPath, err)
	}

	// Print every shared value so the CI log shows the whole trajectory,
	// not just the enforced number.
	names := make([]string, 0, len(bs.Values))
	for name := range bs.Values {
		if _, ok := cs.Values[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Printf("%s: %s (base %s @ %d CPUs -> new %s @ %d CPUs)\n",
		*exp, *value, base.GoVersion, base.NumCPU, cand.GoVersion, cand.NumCPU)
	for _, name := range names {
		b, c := bs.Values[name], cs.Values[name]
		delta := ""
		if b != 0 {
			delta = fmt.Sprintf("  (%+.1f%%)", 100*(c-b)/b)
		}
		fmt.Printf("  %-20s %14.3f -> %14.3f%s\n", name, b, c, delta)
	}

	b, ok := bs.Values[*value]
	if !ok {
		fail("%s: experiment %q has no value %q", *basePath, *exp, *value)
	}
	c, ok := cs.Values[*value]
	if !ok {
		fail("%s: experiment %q has no value %q", *newPath, *exp, *value)
	}
	if b <= 0 {
		fail("baseline %s = %v is not positive; cannot compare", *value, b)
	}
	if reg := (c - b) / b; reg > *maxReg {
		fail("%s.%s regressed %.1f%% (%.3f -> %.3f), tolerance %.0f%%",
			*exp, *value, 100*reg, b, c, 100**maxReg)
	}
	fmt.Printf("benchcmp: %s.%s within tolerance (%.3f -> %.3f, limit +%.0f%%)\n",
		*exp, *value, b, c, 100**maxReg)
}
