package main

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

func mkFinding(file string, line int, analyzer, msg string) analysis.Finding {
	return analysis.Finding{
		Pos:      token.Position{Filename: file, Line: line, Column: 3},
		Analyzer: analyzer,
		Message:  msg,
	}
}

func TestApplyBaselineIgnoresLines(t *testing.T) {
	root := t.TempDir()
	// Baseline recorded at line 10; the same finding has since moved to
	// line 42 and must still be suppressed.
	base := []analysis.JSONFinding{{File: "a/b.go", Line: 10, Col: 3, Analyzer: "lockhold", Message: "boom"}}
	data, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(root, "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	findings := []analysis.Finding{
		mkFinding(filepath.Join(root, "a/b.go"), 42, "lockhold", "boom"),
		mkFinding(filepath.Join(root, "a/b.go"), 50, "lockhold", "other"),
	}
	out, err := analysis.ApplyBaseline(findings, root, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Message != "other" {
		t.Fatalf("want only the unbaselined finding, got %v", out)
	}
}

func TestApplyBaselineBudget(t *testing.T) {
	root := t.TempDir()
	// One baseline entry must not absorb two identical findings: the
	// second occurrence is a regression.
	base := []analysis.JSONFinding{{File: "x.go", Analyzer: "sleepfree", Message: "nap"}}
	data, _ := json.Marshal(base)
	path := filepath.Join(root, "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	findings := []analysis.Finding{
		mkFinding(filepath.Join(root, "x.go"), 1, "sleepfree", "nap"),
		mkFinding(filepath.Join(root, "x.go"), 2, "sleepfree", "nap"),
	}
	out, err := analysis.ApplyBaseline(findings, root, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("want 1 surviving finding, got %d", len(out))
	}
}

func TestApplyBaselineWhyIgnoredInMatching(t *testing.T) {
	root := t.TempDir()
	// A justification on the baseline entry must not break matching.
	base := []analysis.JSONFinding{{
		File: "y.go", Analyzer: "allocfree", Message: "make allocates",
		Why: "decode builds the message; zero-alloc codec is ROADMAP item 4",
	}}
	data, _ := json.Marshal(base)
	path := filepath.Join(root, "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	findings := []analysis.Finding{
		mkFinding(filepath.Join(root, "y.go"), 9, "allocfree", "make allocates"),
	}
	out, err := analysis.ApplyBaseline(findings, root, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("annotated baseline entry must still suppress, got %v", out)
	}
}

func TestApplyBaselineEnvelope(t *testing.T) {
	root := t.TempDir()
	// A baseline saved from the current -json output is a versioned
	// envelope, not a bare array; it must suppress the same way.
	rep := analysis.JSONReport{
		Schema:   analysis.JSONSchemaVersion,
		Findings: []analysis.JSONFinding{{File: "z.go", Analyzer: "poolowner", Message: "leak"}},
	}
	data, _ := json.Marshal(rep)
	path := filepath.Join(root, "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	findings := []analysis.Finding{
		mkFinding(filepath.Join(root, "z.go"), 4, "poolowner", "leak"),
	}
	out, err := analysis.ApplyBaseline(findings, root, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("envelope baseline must suppress, got %v", out)
	}
}

func TestApplyBaselineFutureSchemaRejected(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, "baseline.json")
	data := []byte(`{"schema": 99, "findings": []}`)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := analysis.ApplyBaseline(nil, root, path); err == nil {
		t.Fatal("baseline from a future schema version must be rejected, not half-parsed")
	}
}

func TestListAnalyzersCoversSuite(t *testing.T) {
	var sb strings.Builder
	all := analysis.All()
	listAnalyzers(&sb, all)
	out := sb.String()
	lines := strings.Count(out, "\n")
	if lines != len(all) {
		t.Fatalf("want one line per analyzer (%d), got %d:\n%s", len(all), lines, out)
	}
	for _, a := range all {
		if !strings.Contains(out, a.Name()) {
			t.Errorf("listing is missing %s", a.Name())
		}
		if analysis.Descriptions[a.Name()] == "" {
			t.Errorf("analyzer %s has no description", a.Name())
		}
	}
	for _, name := range []string{"poolowner", "detpath"} {
		if !strings.Contains(out, name) {
			t.Errorf("listing is missing the %s analyzer", name)
		}
	}
}

func TestToJSONRelativizes(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("mod", "root")
	f := mkFinding(filepath.Join(root, "internal", "x.go"), 7, "guardedby", "m")
	j := analysis.ToJSON(root, f)
	if j.File != "internal/x.go" {
		t.Fatalf("want module-relative slash path, got %q", j.File)
	}
}

func names(as []analysis.Analyzer) string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name()
	}
	return strings.Join(out, ",")
}

func TestSelectAnalyzersAll(t *testing.T) {
	all := analysis.All()
	got, err := selectAnalyzers(all, "")
	if err != nil {
		t.Fatal(err)
	}
	if names(got) != names(all) {
		t.Fatalf("empty spec must keep the whole suite, got %s", names(got))
	}
}

func TestSelectAnalyzersInclude(t *testing.T) {
	got, err := selectAnalyzers(analysis.All(), "allocfree,wiretaint")
	if err != nil {
		t.Fatal(err)
	}
	// Suite order, not spec order.
	if names(got) != "wiretaint,allocfree" {
		t.Fatalf("want wiretaint,allocfree in suite order, got %s", names(got))
	}
}

func TestSelectAnalyzersExclude(t *testing.T) {
	all := analysis.All()
	got, err := selectAnalyzers(all, "-wiretaint,-allocfree")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(all)-2 {
		t.Fatalf("want %d analyzers, got %s", len(all)-2, names(got))
	}
	for _, a := range got {
		if a.Name() == "wiretaint" || a.Name() == "allocfree" {
			t.Fatalf("excluded analyzer still present: %s", names(got))
		}
	}
}

func TestSelectAnalyzersErrors(t *testing.T) {
	for _, spec := range []string{"nosuch", "lockhold,-allocfree", "-lockhold,nosuch"} {
		if _, err := selectAnalyzers(analysis.All(), spec); err == nil {
			t.Errorf("spec %q: want error, got none", spec)
		}
	}
}
