package main

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
)

func mkFinding(file string, line int, analyzer, msg string) analysis.Finding {
	return analysis.Finding{
		Pos:      token.Position{Filename: file, Line: line, Column: 3},
		Analyzer: analyzer,
		Message:  msg,
	}
}

func TestApplyBaselineIgnoresLines(t *testing.T) {
	root := t.TempDir()
	// Baseline recorded at line 10; the same finding has since moved to
	// line 42 and must still be suppressed.
	base := []jsonFinding{{File: "a/b.go", Line: 10, Col: 3, Analyzer: "lockhold", Message: "boom"}}
	data, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(root, "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	findings := []analysis.Finding{
		mkFinding(filepath.Join(root, "a/b.go"), 42, "lockhold", "boom"),
		mkFinding(filepath.Join(root, "a/b.go"), 50, "lockhold", "other"),
	}
	out, err := applyBaseline(findings, root, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Message != "other" {
		t.Fatalf("want only the unbaselined finding, got %v", out)
	}
}

func TestApplyBaselineBudget(t *testing.T) {
	root := t.TempDir()
	// One baseline entry must not absorb two identical findings: the
	// second occurrence is a regression.
	base := []jsonFinding{{File: "x.go", Analyzer: "sleepfree", Message: "nap"}}
	data, _ := json.Marshal(base)
	path := filepath.Join(root, "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	findings := []analysis.Finding{
		mkFinding(filepath.Join(root, "x.go"), 1, "sleepfree", "nap"),
		mkFinding(filepath.Join(root, "x.go"), 2, "sleepfree", "nap"),
	}
	out, err := applyBaseline(findings, root, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("want 1 surviving finding, got %d", len(out))
	}
}

func TestToJSONRelativizes(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("mod", "root")
	f := mkFinding(filepath.Join(root, "internal", "x.go"), 7, "guardedby", "m")
	j := toJSON(root, f)
	if j.File != "internal/x.go" {
		t.Fatalf("want module-relative slash path, got %q", j.File)
	}
}
