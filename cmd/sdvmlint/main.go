// Command sdvmlint runs the SDVM static-analysis suite over the
// repository's production packages and exits nonzero on any finding.
//
// Usage, from anywhere inside the module:
//
//	go run ./cmd/sdvmlint ./...
//
// The package pattern argument is accepted for familiarity but the suite
// always analyzes the whole module: the wiredispatch analyzer needs the
// complete picture (a payload's sender and handler live in different
// packages), and partial runs would report spurious protocol holes.
// Findings can be suppressed per line with
//
//	//sdvmlint:allow <analyzer> -- <reason>
//
// Flags:
//
//	-q               print findings only, no summary
//	-json            emit findings as a JSON array on stdout
//	-baseline FILE   suppress findings recorded in FILE (a -json dump,
//	                 optionally annotated with per-entry "why" fields);
//	                 matching ignores line numbers, so a baseline
//	                 survives unrelated edits above a finding
//	-analyzers CSV   run only the named analyzers ("wiretaint,lockhold"),
//	                 or all but the negated ones ("-allocfree,-lockorder");
//	                 the special value "list" prints every analyzer with a
//	                 one-line description and exits without analyzing
//	-timings         print per-analyzer wall-clock timings to stderr
//	-budget DUR      exit nonzero if the whole run exceeds DUR (0 = off)
//
// JSON output is a versioned envelope, {"schema": 1, "findings": [...]},
// so downstream tooling can detect format changes. The -baseline flag
// accepts either that envelope or the legacy bare findings array.
//
// Exit codes:
//
//	0  clean: no findings and within budget
//	1  findings were reported, or the run exceeded -budget
//	2  usage or environment error (bad flag value, unknown analyzer,
//	   no go.mod, package load failure, unreadable baseline)
//
// A typical adoption path for a new analyzer: run `sdvmlint -json >
// baseline.json` once, commit the baseline with a justification per
// entry, and burn it down finding by finding while CI blocks only
// regressions.
//
// See internal/analysis and DESIGN.md ("Static analysis & race policy").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/analysis"
)

func main() {
	quiet := flag.Bool("q", false, "print findings only, no summary")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	baseline := flag.String("baseline", "", "suppress findings recorded in this file (a previous -json dump)")
	analyzerSpec := flag.String("analyzers", "", "comma-separated analyzers to run, or to skip when every entry starts with '-'")
	timings := flag.Bool("timings", false, "print per-analyzer wall-clock timings to stderr")
	budget := flag.Duration("budget", 0, "fail if the whole analysis run exceeds this duration (0 disables)")
	flag.Parse()

	if *analyzerSpec == "list" {
		listAnalyzers(os.Stdout, analysis.All())
		return
	}
	analyzers, err := selectAnalyzers(analysis.All(), *analyzerSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdvmlint:", err)
		os.Exit(2)
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdvmlint:", err)
		os.Exit(2)
	}
	start := time.Now()
	prog, err := analysis.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdvmlint:", err)
		os.Exit(2)
	}
	loadTime := time.Since(start)
	findings, perAnalyzer := analysis.RunWithTimings(prog, analyzers)
	total := time.Since(start)
	if *timings {
		fmt.Fprintf(os.Stderr, "sdvmlint: load %v\n", loadTime.Round(time.Millisecond))
		for _, tm := range perAnalyzer {
			fmt.Fprintf(os.Stderr, "sdvmlint: %-14s %v\n", tm.Analyzer, tm.Elapsed.Round(time.Millisecond))
		}
		fmt.Fprintf(os.Stderr, "sdvmlint: total %v\n", total.Round(time.Millisecond))
	}
	if *baseline != "" {
		findings, err = analysis.ApplyBaseline(findings, root, *baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdvmlint:", err)
			os.Exit(2)
		}
	}
	if *asJSON {
		out := analysis.JSONReport{
			Schema:   analysis.JSONSchemaVersion,
			Findings: make([]analysis.JSONFinding, 0, len(findings)),
		}
		for _, f := range findings {
			out.Findings = append(out.Findings, analysis.ToJSON(root, f))
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "sdvmlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "sdvmlint: %d finding(s) in %d packages\n",
			len(findings), len(prog.Pkgs))
		os.Exit(1)
	}
	if *budget > 0 && total > *budget {
		fmt.Fprintf(os.Stderr, "sdvmlint: run took %v, over the %v budget\n",
			total.Round(time.Millisecond), *budget)
		os.Exit(1)
	}
	if !*quiet && !*asJSON {
		fmt.Fprintf(os.Stderr, "sdvmlint: clean (%d packages)\n", len(prog.Pkgs))
	}
}

// selectAnalyzers resolves the -analyzers flag against the full suite.
// An empty spec keeps everything. A spec whose entries all start with
// '-' runs the suite minus those analyzers; otherwise exactly the named
// analyzers run, in suite order. Unknown names are errors, so a typo
// cannot silently skip a gate.
func selectAnalyzers(all []analysis.Analyzer, spec string) ([]analysis.Analyzer, error) {
	if spec == "" {
		return all, nil
	}
	known := make(map[string]bool, len(all))
	for _, a := range all {
		known[a.Name()] = true
	}
	include := make(map[string]bool)
	exclude := make(map[string]bool)
	for _, raw := range strings.Split(spec, ",") {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		neg := strings.HasPrefix(name, "-")
		if neg {
			name = name[1:]
		}
		if !known[name] {
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", name, knownNames(all))
		}
		if neg {
			exclude[name] = true
		} else {
			include[name] = true
		}
	}
	if len(include) > 0 && len(exclude) > 0 {
		return nil, fmt.Errorf("-analyzers mixes selections and exclusions: %q", spec)
	}
	var out []analysis.Analyzer
	for _, a := range all {
		if len(include) > 0 && !include[a.Name()] {
			continue
		}
		if exclude[a.Name()] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-analyzers %q selects nothing", spec)
	}
	return out, nil
}

// listAnalyzers prints the suite roster with one-line descriptions, in
// suite order — the output CI and contributors consult before writing
// an -analyzers spec or an allow directive.
func listAnalyzers(w io.Writer, all []analysis.Analyzer) {
	for _, a := range all {
		fmt.Fprintf(w, "%-14s %s\n", a.Name(), analysis.Descriptions[a.Name()])
	}
}

func knownNames(all []analysis.Analyzer) string {
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name()
	}
	return strings.Join(names, ", ")
}

// moduleRoot walks from the working directory up to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
