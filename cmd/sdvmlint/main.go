// Command sdvmlint runs the SDVM static-analysis suite over the
// repository's production packages and exits nonzero on any finding.
//
// Usage, from anywhere inside the module:
//
//	go run ./cmd/sdvmlint ./...
//
// The package pattern argument is accepted for familiarity but the suite
// always analyzes the whole module: the wiredispatch analyzer needs the
// complete picture (a payload's sender and handler live in different
// packages), and partial runs would report spurious protocol holes.
// Findings can be suppressed per line with
//
//	//sdvmlint:allow <analyzer> -- <reason>
//
// See internal/analysis and DESIGN.md ("Static analysis & race policy").
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	quiet := flag.Bool("q", false, "print findings only, no summary")
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdvmlint:", err)
		os.Exit(2)
	}
	prog, err := analysis.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdvmlint:", err)
		os.Exit(2)
	}
	findings := analysis.Run(prog, analysis.All())
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "sdvmlint: %d finding(s) in %d packages\n",
			len(findings), len(prog.Pkgs))
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "sdvmlint: clean (%d packages)\n", len(prog.Pkgs))
	}
}

// moduleRoot walks from the working directory up to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
