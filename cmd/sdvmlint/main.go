// Command sdvmlint runs the SDVM static-analysis suite over the
// repository's production packages and exits nonzero on any finding.
//
// Usage, from anywhere inside the module:
//
//	go run ./cmd/sdvmlint ./...
//
// The package pattern argument is accepted for familiarity but the suite
// always analyzes the whole module: the wiredispatch analyzer needs the
// complete picture (a payload's sender and handler live in different
// packages), and partial runs would report spurious protocol holes.
// Findings can be suppressed per line with
//
//	//sdvmlint:allow <analyzer> -- <reason>
//
// Flags:
//
//	-q               print findings only, no summary
//	-json            emit findings as a JSON array on stdout
//	-baseline FILE   suppress findings recorded in FILE (a -json dump);
//	                 matching ignores line numbers, so a baseline
//	                 survives unrelated edits above a finding
//
// A typical adoption path for a new analyzer: run `sdvmlint -json >
// baseline.json` once, commit the baseline, and burn it down finding by
// finding while CI blocks only regressions.
//
// See internal/analysis and DESIGN.md ("Static analysis & race policy").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

// jsonFinding is the stable serialized form of one finding. File is
// relative to the module root so baselines are machine-independent.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	quiet := flag.Bool("q", false, "print findings only, no summary")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	baseline := flag.String("baseline", "", "suppress findings recorded in this file (a previous -json dump)")
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdvmlint:", err)
		os.Exit(2)
	}
	prog, err := analysis.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdvmlint:", err)
		os.Exit(2)
	}
	findings := analysis.Run(prog, analysis.All())
	if *baseline != "" {
		findings, err = applyBaseline(findings, root, *baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdvmlint:", err)
			os.Exit(2)
		}
	}
	if *asJSON {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, toJSON(root, f))
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "sdvmlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "sdvmlint: %d finding(s) in %d packages\n",
			len(findings), len(prog.Pkgs))
		os.Exit(1)
	}
	if !*quiet && !*asJSON {
		fmt.Fprintf(os.Stderr, "sdvmlint: clean (%d packages)\n", len(prog.Pkgs))
	}
}

func toJSON(root string, f analysis.Finding) jsonFinding {
	file := f.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil {
		file = filepath.ToSlash(rel)
	}
	return jsonFinding{
		File:     file,
		Line:     f.Pos.Line,
		Col:      f.Pos.Column,
		Analyzer: f.Analyzer,
		Message:  f.Message,
	}
}

// applyBaseline drops findings recorded in the baseline file. Matching
// is on (file, analyzer, message) — deliberately not line: edits above
// a baselined finding move it without changing what it is. Each
// baseline entry suppresses at most as many findings as it was recorded
// with, so a duplicated regression still surfaces.
func applyBaseline(findings []analysis.Finding, root, path string) ([]analysis.Finding, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	var base []jsonFinding
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	budget := make(map[jsonFinding]int, len(base))
	for _, b := range base {
		b.Line, b.Col = 0, 0
		budget[b]++
	}
	var out []analysis.Finding
	for _, f := range findings {
		k := toJSON(root, f)
		k.Line, k.Col = 0, 0
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		out = append(out, f)
	}
	return out, nil
}

// moduleRoot walks from the working directory up to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
