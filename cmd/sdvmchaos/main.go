// Command sdvmchaos runs the deterministic chaos scenarios against a
// live in-process SDVM cluster and checks the survivability invariants
// (internal/fault): the program terminates with the correct result,
// membership converges to the scripted timeline, no microframe is lost
// or executed twice beyond what recovery's at-least-once contract
// allows, and checkpoint generations never regress.
//
// Usage:
//
//	sdvmchaos -list                          # name every canned scenario
//	sdvmchaos -scenario crash-during-checkpoint -seed 1
//	sdvmchaos -scenario all -seed 1 -json CHAOS_1.json
//
// The -json report is deterministic: for a given scenario and seed a
// passing run produces byte-identical output, because everything
// run-dependent (wall clock, fault-counter totals) is reported on
// stdout only. The command exits 1 if any invariant fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/fault"
)

func main() {
	var (
		scenario = flag.String("scenario", "all", "scenario name, or \"all\"")
		seed     = flag.Int64("seed", 1, "fault-schedule seed")
		jsonOut  = flag.String("json", "", "write a deterministic JSON report to this path")
		list     = flag.Bool("list", false, "list canned scenarios and exit")
	)
	flag.Parse()

	if *list {
		for _, sc := range fault.Scenarios() {
			fmt.Printf("%-24s %s\n", sc.Name, sc.Desc)
		}
		return
	}

	var scenarios []fault.Scenario
	if *scenario == "all" {
		scenarios = fault.Scenarios()
	} else {
		sc, ok := fault.Lookup(*scenario)
		if !ok {
			fmt.Fprintf(os.Stderr, "sdvmchaos: unknown scenario %q (try -list)\n", *scenario)
			os.Exit(2)
		}
		scenarios = []fault.Scenario{sc}
	}

	ok := true
	var reports []*fault.Report
	for _, sc := range scenarios {
		fmt.Printf("==> %s (seed %d): %s\n", sc.Name, *seed, sc.Desc)
		rep, err := fault.Run(sc, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdvmchaos: %s: %v\n", sc.Name, err)
			os.Exit(1)
		}
		for _, ck := range rep.Invariants {
			mark := "ok  "
			if !ck.OK {
				mark = "FAIL"
			}
			fmt.Printf("    %s %-22s %s\n", mark, ck.Name, ck.Detail)
		}
		fmt.Printf("    ran %v; injected drops=%d dups=%d delays=%d reorders=%d partition_drops=%d\n",
			rep.Elapsed.Round(1e6), rep.Totals.Drops, rep.Totals.Dups,
			rep.Totals.Delays, rep.Totals.Reorders, rep.Totals.PartitionDrops)
		ok = ok && rep.OK
		reports = append(reports, rep)
	}

	if *jsonOut != "" {
		var blob []byte
		var err error
		if len(reports) == 1 {
			blob, err = json.MarshalIndent(reports[0], "", "  ")
		} else {
			blob, err = json.MarshalIndent(reports, "", "  ")
		}
		if err == nil {
			err = os.WriteFile(*jsonOut, append(blob, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdvmchaos: write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("report: %s\n", *jsonOut)
	}
	if !ok {
		os.Exit(1)
	}
}
