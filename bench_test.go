package sdvm

// Benchmarks regenerating the paper's evaluation (§5) and the DESIGN.md
// ablations. Each benchmark iteration is one complete program run on a
// fresh in-process cluster; time/op is therefore the quantity the paper
// tabulates (application wall-clock time).
//
// The default parameters are scaled down (see internal/bench) so the
// whole sweep stays in CI range: p∈{100,200} instead of the paper's
// {100,200,500,1000}, with 6 ms per candidate test instead of ≈60 ms.
// `cmd/sdvmbench -exp table1 -full` reruns every published row and
// prints the side-by-side table; EXPERIMENTS.md records the outcome.
//
// Deriving the paper's numbers from the benchmark output:
//
//	speedup(4) = time(BenchmarkTable1Primes/pXwYs1) / time(.../pXwYs4)
//	overhead   = time(BenchmarkOverheadSDVM1Site) / time(BenchmarkOverheadSequential) - 1

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/daemon"
	"repro/internal/types"
	"repro/internal/workloads"
)

// Thin aliases keep the benchmark bodies uniform.
func workloadsMatMulApp() daemon.App                   { return workloads.MatMulApp() }
func workloadsMatMulArgs(n, g int, c float64) [][]byte { return workloads.MatMulArgs(n, g, c) }

// benchWorkUnit maps one Work unit to 1 ms; with benchCost = 6 a
// candidate test costs 6 ms — 1/10 of the paper's ≈60 ms, the scale at
// which the compute-to-communication ratio of the 2005 testbed (and
// hence the speedup shape) is preserved. See EXPERIMENTS.md.
const benchWorkUnit = time.Millisecond

// benchCost is the Work units per candidate test.
const benchCost = 6.0

// BenchmarkTable1Primes regenerates Table 1's grid (reduced p set; see
// the package comment). One op = one full program run.
func BenchmarkTable1Primes(b *testing.B) {
	for _, p := range []int{100, 200} {
		for _, width := range []int{10, 20} {
			for _, sites := range []int{1, 4, 8} {
				name := fmt.Sprintf("p%dw%ds%d", p, width, sites)
				b.Run(name, func(b *testing.B) {
					spec := bench.Spec{Sites: sites, WorkUnit: benchWorkUnit}
					for i := 0; i < b.N; i++ {
						elapsed, err := bench.RunPrimes(spec, p, width, benchCost)
						if err != nil {
							b.Fatal(err)
						}
						_ = elapsed
					}
				})
			}
		}
	}
}

// BenchmarkOverheadSequential is the stand-alone program of experiment
// O-1 ([5]: SDVM overhead ≈3 %).
func BenchmarkOverheadSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunSeqPrimes(100, 10, benchCost, benchWorkUnit)
	}
}

// BenchmarkOverheadSDVM1Site is the same computation on a 1-site SDVM.
func BenchmarkOverheadSDVM1Site(b *testing.B) {
	spec := bench.Spec{Sites: 1, WorkUnit: benchWorkUnit}
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunPrimes(spec, 100, 10, benchCost); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedPolicy is ablation A-1: local×help scheduling policies
// (the paper uses FIFO local + LIFO help).
func BenchmarkSchedPolicy(b *testing.B) {
	for _, local := range []types.SchedulingClass{types.SchedFIFO, types.SchedLIFO} {
		for _, help := range []types.SchedulingClass{types.SchedFIFO, types.SchedLIFO} {
			b.Run(fmt.Sprintf("local-%v_help-%v", local, help), func(b *testing.B) {
				spec := bench.Spec{
					Sites:       8,
					WorkUnit:    benchWorkUnit,
					LocalPolicy: local,
					HelpPolicy:  help,
				}
				for i := 0; i < b.N; i++ {
					if _, err := bench.RunPrimes(spec, 100, 20, benchCost); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkLatencyWindow is ablation A-2: the processing manager's
// latency-hiding window (paper: ≈5 microthreads in virtual parallel) on
// the memory-bound matmul workload over a 2 ms-latency network.
func BenchmarkLatencyWindow(b *testing.B) {
	for _, w := range []int{1, 2, 5, 10} {
		b.Run(fmt.Sprintf("W%d", w), func(b *testing.B) {
			spec := bench.Spec{Sites: 4, WorkUnit: benchWorkUnit}
			for i := 0; i < b.N; i++ {
				out, err := bench.WindowSweep(spec, []int{w}, 24, 4, 1)
				if err != nil {
					b.Fatal(err)
				}
				_ = out
			}
		})
	}
}

// BenchmarkSecurity is ablation A-3: the security manager's cost
// (paper §4: disable it inside trusted clusters "in favor of a
// performance gain").
func BenchmarkSecurity(b *testing.B) {
	for _, mode := range []struct {
		name   string
		secret string
	}{{"plaintext", ""}, {"aesgcm", "bench-secret"}} {
		b.Run(mode.name, func(b *testing.B) {
			spec := bench.Spec{Sites: 4, WorkUnit: benchWorkUnit, Secret: mode.secret}
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunPrimes(spec, 100, 10, benchCost); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIDAlloc is ablation A-4: mass sign-on under the three
// logical-id allocation strategies (paper §4, cluster manager).
func BenchmarkIDAlloc(b *testing.B) {
	// One op = building a 16-site cluster from scratch.
	names := []string{"central", "contingent", "modulo"}
	for idx, name := range names {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := bench.IDAlloc(16)
				if err != nil {
					b.Fatal(err)
				}
				_ = out[idx]
			}
		})
	}
}

// BenchmarkCentralVsDecentral is ablation A-5: the SDVM's decentralized
// help-request scheduling against the master/worker baseline the paper's
// introduction argues against (Condor et al.).
func BenchmarkCentralVsDecentral(b *testing.B) {
	for _, mode := range []struct {
		name    string
		central bool
	}{{"decentral", false}, {"central", true}} {
		b.Run(mode.name, func(b *testing.B) {
			spec := bench.Spec{Sites: 8, WorkUnit: benchWorkUnit, CentralSched: mode.central}
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunPrimes(spec, 100, 20, benchCost); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChurn measures a run with one site joining and one signing
// off mid-computation (paper §3.4) against a static cluster.
func BenchmarkChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Churn(bench.Spec{Sites: 4, WorkUnit: benchWorkUnit}, 100, 10, benchCost); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHetero measures a fully heterogeneous cluster (every site a
// distinct platform, all code compiled on the fly; paper §3.4 claims the
// compilation is "fast enough not to slow the system too much").
func BenchmarkHetero(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Hetero(bench.Spec{Sites: 4, WorkUnit: benchWorkUnit},
			100, 10, benchCost, 2*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		if res.Compiles == 0 {
			b.Fatal("no on-the-fly compiles")
		}
	}
}

// BenchmarkReadReplication is ablation A-6: COMA read replication on the
// memory-bound matmul workload (paper §4: objects "migrate or even be
// copied to other sites").
func BenchmarkReadReplication(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"replicated", false}, {"uncached", true}} {
		b.Run(mode.name, func(b *testing.B) {
			spec := bench.Spec{Sites: 4, WorkUnit: benchWorkUnit, NoReadReplication: mode.disable}
			spec.Link.Latency = time.Millisecond
			for i := 0; i < b.N; i++ {
				c, err := bench.NewCluster(spec)
				if err != nil {
					b.Fatal(err)
				}
				_, _, err = c.Run(workloadsMatMulApp(), workloadsMatMulArgs(24, 4, 1)...)
				c.Close()
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCriticalPinning is ablation A-7: §3.3 critical-path hints
// (the primes collector frames dispatch first and never migrate).
func BenchmarkCriticalPinning(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"hints-on", false}, {"hints-off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			spec := bench.Spec{Sites: 8, WorkUnit: benchWorkUnit, NoCriticalPinning: mode.disable}
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunPrimes(spec, 100, 20, benchCost); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
