package fault

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/types"
	"repro/internal/wire"
)

// Every canned scenario must hold every invariant. This is the same
// suite CI's chaos job runs via sdvmchaos; running it under `go test`
// keeps `-race` on the whole engine in the ordinary test flow too.
func TestCannedScenarios(t *testing.T) {
	scenarios := Scenarios()
	if len(scenarios) < 6 {
		t.Fatalf("only %d canned scenarios, want >= 6", len(scenarios))
	}
	if testing.Short() {
		scenarios = scenarios[:1]
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			rep, err := Run(sc, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, ck := range rep.Invariants {
				if !ck.OK {
					t.Errorf("invariant %s: %s", ck.Name, ck.Detail)
				}
			}
		})
	}
}

// The JSON report is a pure function of (scenario, seed): two live runs
// must serialize byte-identically.
func TestReportReproducible(t *testing.T) {
	sc, ok := Lookup("lossy-link")
	if !ok {
		t.Fatal("lossy-link scenario missing")
	}
	var blobs [2][]byte
	for i := range blobs {
		rep, err := Run(sc, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		blobs[i] = b
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Fatalf("same scenario+seed produced different reports:\n%s\n%s", blobs[0], blobs[1])
	}
}

// Different seeds must change the fault schedule in the report.
func TestReportSeedSensitive(t *testing.T) {
	sc, _ := Lookup("lossy-link")
	a := Schedule(sc.Link, 1, siteAddr(0, 0), siteAddr(1, 0), 16)
	b := Schedule(sc.Link, 2, siteAddr(0, 0), siteAddr(1, 0), 16)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if bytes.Equal(aj, bj) {
		t.Fatal("seed does not influence the schedule preview")
	}
}

// The injector must refuse nonsense transitions.
func TestInjectorRefusesBadTransitions(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Sites: 2, Seed: 1, Checkpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	inj := NewInjector(c)
	if err := inj.Rejoin(1); err == nil {
		t.Error("rejoin of a live site succeeded")
	}
	if err := inj.Crash(1); err != nil {
		t.Fatal(err)
	}
	if err := inj.Crash(1); err == nil {
		t.Error("double crash succeeded")
	}
	if err := inj.Leave(1); err == nil {
		t.Error("leave of a dead site succeeded")
	}
	if err := inj.Crash(7); err == nil {
		t.Error("crash of an unknown site succeeded")
	}
	if err := inj.Rejoin(1); err != nil {
		t.Fatalf("rejoin after crash: %v", err)
	}
	if !poll(5*time.Second, func() bool { return c.Sites[0].D.CM.Size() == 2 }) {
		t.Fatal("rejoined site never reached the roster")
	}
}

// A stall must freeze dispatch without killing the site: the stalled
// site stays in the roster and resumes on schedule.
func TestStallResumes(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Sites: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	inj := NewInjector(c)
	if err := inj.Stall(1, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !poll(5*time.Second, func() bool {
		reply, err := c.Sites[0].D.Bus.Request(c.Sites[1].D.Self(),
			types.MgrCluster, types.MgrCluster, &wire.Ping{Nonce: 9}, 300*time.Millisecond)
		if err != nil {
			return false
		}
		pong, ok := reply.Payload.(*wire.Pong)
		return ok && pong.Nonce == 9
	}) {
		t.Fatal("stalled site never resumed dispatch")
	}
}
