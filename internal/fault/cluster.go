package fault

import (
	"fmt"
	"time"

	"repro/internal/daemon"
	"repro/internal/exec"
	"repro/internal/transport/inproc"
)

// ClusterConfig sizes a chaos cluster.
type ClusterConfig struct {
	// Sites is the initial site count; site 0 bootstraps and is the
	// workload submitter (scenarios never crash it — the paper's model
	// has the frontend outlive the computation).
	Sites int
	// Seed drives every PRNG in the run: the per-link fault schedules
	// and each daemon's retry jitter.
	Seed int64
	// Link is the default fault profile applied to every directed link.
	Link LinkFaults
	// Checkpoint enables the crash-management stack (checkpoints,
	// heartbeats, crash declaration). Required by scenarios that crash
	// or partition sites.
	Checkpoint bool
	// WorkUnit is the wall-clock span of one simulated Work unit
	// (default 200µs).
	WorkUnit time.Duration
	// Batched enables message coalescing and wide help grants on every
	// site (see Scenario.Batched).
	Batched bool
	// Gossip runs the cluster on the epidemic membership layer
	// (internal/gossip): bounded digests instead of broadcast load
	// reports and goodbyes, p2c help targeting, ring heartbeats. This
	// is what lets chaos scenarios scale to 64+ sites.
	Gossip bool
}

// Site is one daemon instance in a chaos cluster. A rejoin after a
// crash creates a new instance (fresh address, fresh logical id); the
// old one is retired but kept for post-run trace scans.
type Site struct {
	Index int    // stable site slot (0-based)
	Gen   int    // instance generation within the slot (0 = original)
	Addr  string // physical address on the fault network
	D     *daemon.Daemon
	Alive bool
}

// Cluster is a running chaos cluster: n full daemons wired through one
// fault.Network over an in-process fabric.
type Cluster struct {
	Net *Network
	cfg ClusterConfig

	inner *inproc.Fabric
	// Sites holds the current instance of each slot; Retired holds
	// crashed/left instances whose traces the invariant checker still
	// scans. Steps run strictly sequentially from the scenario loop,
	// so no lock is needed.
	Sites   []*Site
	Retired []*Site
}

// NewCluster builds and signs on a chaos cluster. Faults (and the fault
// schedule PRNGs) are live from the first sign-on datagram.
func NewCluster(cc ClusterConfig) (*Cluster, error) {
	if cc.Sites <= 0 {
		cc.Sites = 4
	}
	if cc.WorkUnit <= 0 {
		cc.WorkUnit = 200 * time.Microsecond
	}
	inner := inproc.New(inproc.LinkProfile{})
	c := &Cluster{
		inner: inner,
		Net:   NewNetwork(inner, NetConfig{Seed: cc.Seed, Default: cc.Link}),
		cfg:   cc,
	}
	for i := 0; i < cc.Sites; i++ {
		s, err := c.startSite(i, 0)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Sites = append(c.Sites, s)
	}
	return c, nil
}

// siteAddr names one site instance: "chaos-2" originally, "chaos-2r1"
// after its first rejoin. Fresh addresses keep a rejoined site from
// inheriting its dead predecessor's half-open connections.
func siteAddr(index, gen int) string {
	if gen == 0 {
		return fmt.Sprintf("chaos-%d", index)
	}
	return fmt.Sprintf("chaos-%dr%d", index, gen)
}

// startSite builds, starts, and signs on one site instance.
func (c *Cluster) startSite(index, gen int) (*Site, error) {
	addr := siteAddr(index, gen)
	cfg := daemon.Config{
		PhysAddr:      addr,
		Network:       c.Net.Host(addr),
		WorkModel:     exec.WorkSimulated,
		WorkUnit:      c.cfg.WorkUnit,
		Reliable:      true,
		Metrics:       true,
		TraceCapacity: 65536,
		Seed:          c.cfg.Seed*1000 + int64(index) + 1,
	}
	if c.cfg.Batched {
		cfg.Coalesce = true
		cfg.HelpBatch = 8
	}
	cfg.Gossip = c.cfg.Gossip
	if c.cfg.Checkpoint {
		cfg.Checkpoint.Interval = 150 * time.Millisecond
		cfg.Checkpoint.HeartbeatEvery = 100 * time.Millisecond
		cfg.Checkpoint.HeartbeatTimeout = 50 * time.Millisecond
		// 600 ms of silence declares a crash: long enough that the
		// straggler scenario's stalls stay below it, short enough that
		// recovery fits a CI deadline.
		cfg.Checkpoint.MissLimit = 6
	}
	d := daemon.New(cfg)
	c.Net.BindMetrics(addr, d.Metrics)
	var err error
	if index == 0 && gen == 0 {
		err = d.Bootstrap()
	} else {
		contact := c.contactAddr()
		if contact == "" {
			return nil, fmt.Errorf("fault: no live site for %s to join", addr)
		}
		err = d.Join(contact)
	}
	if err != nil {
		return nil, fmt.Errorf("fault: site %s: %w", addr, err)
	}
	return &Site{Index: index, Gen: gen, Addr: addr, D: d, Alive: true}, nil
}

// contactAddr returns the address of the lowest-numbered live site.
func (c *Cluster) contactAddr() string {
	for _, s := range c.Sites {
		if s != nil && s.Alive {
			return s.Addr
		}
	}
	return ""
}

// Instances returns every site instance the cluster ever ran, current
// and retired, for whole-run trace scans.
func (c *Cluster) Instances() []*Site {
	out := make([]*Site, 0, len(c.Sites)+len(c.Retired))
	out = append(out, c.Retired...)
	out = append(out, c.Sites...)
	return out
}

// LiveCount returns how many sites are currently alive.
func (c *Cluster) LiveCount() int {
	n := 0
	for _, s := range c.Sites {
		if s.Alive {
			n++
		}
	}
	return n
}

// Close kills every remaining daemon and the fabric.
func (c *Cluster) Close() {
	for _, s := range c.Sites {
		if s != nil && s.Alive {
			s.D.Kill()
			s.Alive = false
		}
	}
	c.inner.Close()
}

// poll re-evaluates cond every 2ms until it holds or timeout expires.
func poll(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}
