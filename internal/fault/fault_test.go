package fault

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/transport"
	"repro/internal/transport/inproc"
	"repro/internal/transport/transporttest"
)

// A zero-fault fault.Network must be indistinguishable from the fabric
// it wraps: the full transport conformance suite runs through it.
func TestZeroFaultConformance(t *testing.T) {
	n := 0
	transporttest.Run(t, func(t *testing.T) (transport.Network, func() string) {
		f := inproc.New(inproc.LinkProfile{})
		t.Cleanup(f.Close)
		return NewNetwork(f, NetConfig{Seed: 1}), func() string {
			n++
			return fmt.Sprintf("site-%d", n)
		}
	})
}

// Host views must also be transparent with zero faults — they are what
// the daemons actually dial through.
func TestZeroFaultHostViewConformance(t *testing.T) {
	n := 0
	transporttest.Run(t, func(t *testing.T) (transport.Network, func() string) {
		f := inproc.New(inproc.LinkProfile{})
		t.Cleanup(f.Close)
		return NewNetwork(f, NetConfig{Seed: 1}).Host("conformance-host"), func() string {
			n++
			return fmt.Sprintf("hsite-%d", n)
		}
	})
}

// Same (config, seed, link) must always produce the same fault
// schedule; different seeds and different links must diverge.
func TestScheduleDeterministic(t *testing.T) {
	cfg := LinkFaults{
		DropProb: 0.2, DupProb: 0.1,
		DelayProb: 0.3, DelayMin: time.Millisecond, DelayMax: 5 * time.Millisecond,
		ReorderProb: 0.2, ReorderBy: 2 * time.Millisecond,
	}
	a := Schedule(cfg, 42, "s0", "s1", 256)
	b := Schedule(cfg, 42, "s0", "s1", 256)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (config, seed, link) produced different schedules")
	}
	if reflect.DeepEqual(a, Schedule(cfg, 43, "s0", "s1", 256)) {
		t.Fatal("different seeds produced identical schedules")
	}
	if reflect.DeepEqual(a, Schedule(cfg, 42, "s0", "s2", 256)) {
		t.Fatal("different links produced identical schedules")
	}
	var faults int
	for _, d := range a {
		if d.Drop || d.Dup || d.Reorder || d.DelayUS > 0 {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("schedule injected nothing at these probabilities")
	}
}

// A live Network must apply exactly the pure Schedule: the drop
// pattern observed on a link equals the precomputed decisions.
func TestLiveNetworkFollowsSchedule(t *testing.T) {
	const seed, msgs = 7, 64
	cfg := LinkFaults{DropProb: 0.5}
	f := inproc.New(inproc.LinkProfile{})
	defer f.Close()
	n := NewNetwork(f, NetConfig{Seed: seed, Default: cfg})

	l, err := n.Listen("dst")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		ep, err := l.Accept()
		if err != nil {
			return
		}
		for {
			if _, err := ep.Recv(); err != nil {
				return
			}
		}
	}()
	ep, err := n.Host("src").Dial("dst")
	if err != nil {
		t.Fatal(err)
	}
	want := Schedule(cfg, seed, "src", "dst", msgs)
	var wantDrops uint64
	for _, d := range want {
		if d.Drop {
			wantDrops++
		}
	}
	for i := 0; i < msgs; i++ {
		if err := ep.Send([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := n.Totals().Drops; got != wantDrops {
		t.Fatalf("live network dropped %d of %d, schedule says %d", got, msgs, wantDrops)
	}
}

func recvLoop(l transport.Listener, got chan<- []byte) {
	for {
		ep, err := l.Accept()
		if err != nil {
			return
		}
		go func() {
			for {
				b, err := ep.Recv()
				if err != nil {
					return
				}
				got <- b
			}
		}()
	}
}

// Partitioned groups black-hole sends and refuse dials; Heal restores
// both directions on the existing endpoints.
func TestPartitionAndHeal(t *testing.T) {
	f := inproc.New(inproc.LinkProfile{})
	defer f.Close()
	n := NewNetwork(f, NetConfig{Seed: 1})

	l, err := n.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan []byte, 16)
	go recvLoop(l, got)

	ep, err := n.Host("a").Dial("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Send([]byte("pre")); err != nil {
		t.Fatal(err)
	}
	if string(<-got) != "pre" {
		t.Fatal("pre-partition datagram mangled")
	}

	n.Partition(1, "b")
	if err := ep.Send([]byte("hole")); err != nil {
		t.Fatalf("partitioned send must black-hole, got error %v", err)
	}
	if _, err := n.Host("a").Dial("b"); !errors.Is(err, transport.ErrPartitioned) {
		t.Fatalf("cross-partition dial: got %v, want ErrPartitioned", err)
	}
	select {
	case b := <-got:
		t.Fatalf("datagram %q crossed a partition", b)
	case <-time.After(50 * time.Millisecond):
	}
	if n.Totals().PartitionDrops == 0 {
		t.Fatal("partition drop not counted")
	}

	n.Heal()
	if err := ep.Send([]byte("post")); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-got:
		if string(b) != "post" {
			t.Fatalf("post-heal datagram %q", b)
		}
	case <-time.After(time.Second):
		t.Fatal("healed link did not deliver")
	}
}

// KillSite cuts every endpoint touching the address and refuses new
// dials; a fresh Listen revives the address.
func TestKillSiteAndRevive(t *testing.T) {
	f := inproc.New(inproc.LinkProfile{})
	defer f.Close()
	n := NewNetwork(f, NetConfig{Seed: 1})

	l, err := n.Listen("victim")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	if _, err := n.Host("peer").Dial("victim"); err != nil {
		t.Fatal(err)
	}

	n.KillSite("victim")
	if _, err := n.Host("peer").Dial("victim"); err == nil {
		t.Fatal("dial to a killed site succeeded")
	}

	l2, err := n.Listen("victim")
	if err != nil {
		t.Fatalf("revive Listen: %v", err)
	}
	defer l2.Close()
	go func() {
		for {
			if _, err := l2.Accept(); err != nil {
				return
			}
		}
	}()
	if _, err := n.Host("peer").Dial("victim"); err != nil {
		t.Fatalf("dial after revive: %v", err)
	}
}

// Injected faults must surface in the site's metrics registry under the
// fault.* prefix, both per-site and per-link.
func TestFaultMetricsVisible(t *testing.T) {
	cfg := LinkFaults{DropProb: 1}
	f := inproc.New(inproc.LinkProfile{})
	defer f.Close()
	n := NewNetwork(f, NetConfig{Seed: 1, Default: cfg})

	reg := metrics.NewRegistry()
	n.BindMetrics("src", reg)

	l, err := n.Listen("dst")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	ep, err := n.Host("src").Dial("dst")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := ep.Send([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	byName := make(map[string]int64)
	for _, s := range snap {
		byName[s.Name] = s.Value
	}
	if byName["fault.drops"] != 8 {
		t.Fatalf("fault.drops = %v, want 8 (snapshot %v)", byName["fault.drops"], byName)
	}
	if byName["fault.link.dst.drops"] != 8 {
		t.Fatalf("fault.link.dst.drops = %v, want 8", byName["fault.link.dst.drops"])
	}
}
