package fault

import (
	"bytes"
	"encoding/json"
	"testing"
)

// The churn-storm scenario overlaps leaves, crashes, stalls and rejoins
// — the worst case for hidden schedule nondeterminism, because every
// recovery path (checkpoint restore, sender-log replay, help-request
// reissue) runs concurrently with live dispatch. Running it twice with
// one seed and byte-comparing the serialized reports is the regression
// gate behind the detpath analyzer: if anyone threads wall-clock time,
// global rand or map-iteration order into a //sdvm:deterministic path,
// this is the test that goes red.
func TestChurnStormDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("churn-storm runs a full 5-site chaos cluster twice")
	}
	sc, ok := Lookup("churn-storm")
	if !ok {
		t.Fatal("churn-storm scenario missing")
	}
	var blobs [2][]byte
	for i := range blobs {
		rep, err := Run(sc, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK {
			for _, ck := range rep.Invariants {
				if !ck.OK {
					t.Errorf("invariant %s: %s", ck.Name, ck.Detail)
				}
			}
			t.Fatalf("run %d failed its invariants", i)
		}
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		blobs[i] = b
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Fatalf("same scenario+seed produced different reports:\n--- run 0 ---\n%s\n--- run 1 ---\n%s", blobs[0], blobs[1])
	}
}
