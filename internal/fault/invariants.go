package fault

import (
	"fmt"
	"time"

	"repro/internal/trace"
	"repro/internal/types"
	"repro/internal/workloads"
)

// Check is one survivability invariant's verdict. Success details are
// constant strings so a passing report is byte-identical across runs.
type Check struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail"`
}

// settleWait bounds the post-termination polls (queue drain, roster
// convergence): generous under -race, irrelevant when healthy.
const settleWait = 10 * time.Second

// checkInvariants runs the survivability invariants against a finished
// scenario. The cluster is still up (zombies already fenced); result
// and terminated come from the submitter's WaitResult.
func checkInvariants(sc Scenario, c *Cluster, result []byte, terminated bool) []Check {
	checks := []Check{
		checkTerminated(sc, terminated),
		checkResult(sc, result, terminated),
		checkRoster(sc, c),
		checkDrained(c),
		checkNoDupPerSite(sc, c),
		checkExactlyOnce(sc, c),
		checkMonotoneCheckpoints(sc, c),
	}
	return checks
}

func checkTerminated(sc Scenario, terminated bool) Check {
	if !terminated {
		return Check{"terminated", false,
			fmt.Sprintf("no result within the %v deadline", sc.Deadline)}
	}
	return Check{"terminated", true, "result delivered before the deadline"}
}

func checkResult(sc Scenario, result []byte, terminated bool) Check {
	if !terminated {
		return Check{"result-correct", false, "no result to compare"}
	}
	want := workloads.SeqPrimes(sc.Primes, sc.Width, sc.Cost, func(float64) {})
	got := workloads.ParsePrimesResult(result)
	if len(got) != len(want) {
		return Check{"result-correct", false,
			fmt.Sprintf("got %d primes, want %d", len(got), len(want))}
	}
	for i := range want {
		if got[i] != want[i] {
			return Check{"result-correct", false,
				fmt.Sprintf("prime %d is %d, want %d", i, got[i], want[i])}
		}
	}
	return Check{"result-correct", true, "matches the sequential reference"}
}

// checkRoster asserts the cluster converged on the membership the
// timeline implies: crashes and leaves removed, rejoins admitted, and —
// crucially for the straggler scenario — no live site falsely buried.
func checkRoster(sc Scenario, c *Cluster) Check {
	want := sc.expectedLive()
	converged := poll(settleWait, func() bool {
		if !c.Sites[0].Alive {
			return false
		}
		return c.Sites[0].D.CM.Size() == want && c.LiveCount() == want
	})
	if !converged {
		return Check{"roster-converged", false,
			fmt.Sprintf("submitter sees %d sites, %d alive; want %d",
				c.Sites[0].D.CM.Size(), c.LiveCount(), want)}
	}
	return Check{"roster-converged", true, "membership matches the scripted timeline"}
}

// checkDrained asserts no microframe survived termination: after the
// program's result is out, every live site's attraction memory and
// scheduler queues must empty — a stuck frame is a lost or orphaned
// piece of the computation.
func checkDrained(c *Cluster) Check {
	drained := poll(settleWait, func() bool {
		for _, s := range c.Sites {
			if !s.Alive {
				continue
			}
			if s.D.Mem.FrameCount() != 0 || s.D.Sched.QueueLen() != 0 {
				return false
			}
		}
		return true
	})
	if !drained {
		for _, s := range c.Sites {
			if s.Alive && (s.D.Mem.FrameCount() != 0 || s.D.Sched.QueueLen() != 0) {
				return Check{"frames-drained", false,
					fmt.Sprintf("site %s still holds %d frames, %d queued",
						s.Addr, s.D.Mem.FrameCount(), s.D.Sched.QueueLen())}
			}
		}
	}
	return Check{"frames-drained", true, "no microframe survived termination on any live site"}
}

// executedFrames scans one site instance's trace for executed frames.
func executedFrames(s *Site) []types.FrameID {
	if s.D.Trace == nil {
		return nil
	}
	var out []types.FrameID
	for _, e := range s.D.Trace.Events() {
		if e.Kind == trace.EvExecuted {
			out = append(out, e.Frame)
		}
	}
	return out
}

// checkNoDupPerSite asserts no site instance executed the same
// microframe twice. Waived when the link profile duplicates datagrams
// (a duplicated one-way frame push can double-enqueue) and in
// disruptive scenarios (recovery replays a crashed site's checkpointed
// frames, which may re-execute work a survivor already ran): in both
// cases the architecture's contract is at-least-once execution with
// exactly-once effects via consumed parameter slots, which
// result-correct verifies end to end.
func checkNoDupPerSite(sc Scenario, c *Cluster) Check {
	if sc.duplicating() || sc.disruptive() {
		return Check{"no-dup-execution", true,
			"waived: at-least-once execution is expected here; correctness is carried by consumed-slot dedup (see result-correct)"}
	}
	for _, s := range c.Instances() {
		seen := make(map[types.FrameID]bool)
		for _, f := range executedFrames(s) {
			if seen[f] {
				return Check{"no-dup-execution", false,
					fmt.Sprintf("site %s executed frame %v twice", s.Addr, f)}
			}
			seen[f] = true
		}
	}
	return Check{"no-dup-execution", true, "no site instance executed a microframe twice"}
}

// checkExactlyOnce asserts cluster-wide exactly-once execution. Only
// meaningful on an undisturbed membership: crash recovery is
// at-least-once by design (checkpoints, grant-log and param-log replay
// may re-execute work the dead site finished but never reported), so
// disruptive scenarios waive it deterministically and rely on
// result-correct plus the per-site check.
func checkExactlyOnce(sc Scenario, c *Cluster) Check {
	if sc.disruptive() || sc.duplicating() {
		return Check{"exactly-once-cluster", true,
			"waived: crash/partition recovery is at-least-once by design; effects stay exactly-once via consumed-slot dedup"}
	}
	seen := make(map[types.FrameID]string)
	for _, s := range c.Instances() {
		for _, f := range executedFrames(s) {
			if prev, ok := seen[f]; ok && prev != s.Addr {
				return Check{"exactly-once-cluster", false,
					fmt.Sprintf("frame %v executed on both %s and %s", f, prev, s.Addr)}
			}
			seen[f] = s.Addr
		}
	}
	return Check{"exactly-once-cluster", true, "every executed microframe ran on exactly one site"}
}

// checkMonotoneCheckpoints asserts no replica ever let an older
// checkpoint epoch overwrite a newer one: for every stored (program,
// origin) key, the stored epoch equals the highest epoch ever received.
func checkMonotoneCheckpoints(sc Scenario, c *Cluster) Check {
	if !sc.Checkpoint {
		return Check{"checkpoint-monotone", true, "n/a: checkpointing disabled in this scenario"}
	}
	for _, s := range c.Sites {
		if !s.Alive {
			continue
		}
		for _, e := range s.D.Ckpt.StoreLedger() {
			if e.Epoch != e.MaxSeen {
				return Check{"checkpoint-monotone", false,
					fmt.Sprintf("site %s stores epoch %d for program %v origin %v but saw %d",
						s.Addr, e.Epoch, e.Program, e.Origin, e.MaxSeen)}
			}
		}
	}
	return Check{"checkpoint-monotone", true, "no stored checkpoint generation ever regressed"}
}
