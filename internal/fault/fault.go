// Package fault is the SDVM's deterministic fault-injection and
// chaos-testing subsystem.
//
// The paper's headline claims are survivability claims: sites "may join
// and leave the cluster at runtime" (§3.4) and crashes are survived via
// checkpointing (§2.2, [4]). This package turns those claims from
// asserted into continuously verified:
//
//   - Network, a transport.Network wrapper, injects drop / delay /
//     duplicate / reorder / bandwidth-cap faults per directed link from
//     a seeded PRNG, and doubles as the Partitioner: site groups split
//     and heal on a scripted timeline.
//   - Injector applies site-level faults through the daemon lifecycle:
//     hard crash (no sign-off), graceful leave, stall (the site stops
//     consuming bus messages for a while), and crash-then-rejoin.
//   - Scenario is the engine: ordered steps at offsets from scenario
//     start, run against a cluster of real daemons, followed by an
//     invariant sweep (exactly-once execution, no lost microframes,
//     monotone checkpoint generations, correct final result).
//
// Everything the subsystem decides is derived from the scenario seed,
// so a failing run is rerunnable: same seed, same fault schedule.
package fault

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/transport"
)

// LinkFaults configures the fault mix of one directed link. The zero
// value injects nothing (the wrapper is transparent).
type LinkFaults struct {
	// DropProb is the probability a datagram is silently dropped.
	DropProb float64
	// DupProb is the probability a datagram is delivered twice.
	DupProb float64
	// DelayProb is the probability a datagram is held back for a
	// duration drawn uniformly from [DelayMin, DelayMax].
	DelayProb float64
	DelayMin  time.Duration
	DelayMax  time.Duration
	// ReorderProb is the probability a datagram is held just long
	// enough (up to ReorderBy) to overtake later traffic on the link.
	ReorderProb float64
	ReorderBy   time.Duration
	// BytesPerSecond caps the link's bandwidth; senders block for the
	// serialization time of each datagram. 0 = unlimited.
	BytesPerSecond int64
}

// zero reports whether the config injects no faults at all.
func (lf LinkFaults) zero() bool {
	return lf.DropProb == 0 && lf.DupProb == 0 && lf.DelayProb == 0 &&
		lf.ReorderProb == 0 && lf.BytesPerSecond == 0
}

// Decision is the fault verdict for one datagram on one link — the unit
// of the deterministic fault schedule.
type Decision struct {
	Drop    bool          `json:"drop,omitempty"`
	Dup     bool          `json:"dup,omitempty"`
	Reorder bool          `json:"reorder,omitempty"`
	DelayUS int64         `json:"delay_us,omitempty"` // microseconds, JSON-stable
	delay   time.Duration // the live value used by Send
}

// decide draws one verdict. The draw sequence is fixed by the config,
// so for a given (seed, link, config) the Nth datagram always gets the
// Nth verdict — the property the determinism tests pin down.
//
//sdvm:deterministic
func (lf LinkFaults) decide(rng *rand.Rand) Decision {
	var d Decision
	if lf.DropProb > 0 && rng.Float64() < lf.DropProb {
		d.Drop = true
		return d
	}
	if lf.DupProb > 0 && rng.Float64() < lf.DupProb {
		d.Dup = true
	}
	if lf.DelayProb > 0 && rng.Float64() < lf.DelayProb {
		span := lf.DelayMax - lf.DelayMin
		d.delay = lf.DelayMin
		if span > 0 {
			d.delay += time.Duration(rng.Int63n(int64(span) + 1))
		}
	} else if lf.ReorderProb > 0 && rng.Float64() < lf.ReorderProb {
		d.Reorder = true
		if lf.ReorderBy > 0 {
			d.delay = time.Duration(rng.Int63n(int64(lf.ReorderBy)) + 1)
		}
	}
	d.DelayUS = d.delay.Microseconds()
	return d
}

// linkSeed derives one link's PRNG seed from the scenario seed and the
// directed link name, so links are decorrelated but reproducible.
//
//sdvm:deterministic
func linkSeed(seed int64, src, dst string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(src))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(dst))
	return seed ^ int64(h.Sum64())
}

// Schedule returns the first n fault decisions of the directed link
// src->dst under cfg and seed — the schedule a live Network would apply
// to that link's first n datagrams. Pure; used by the determinism tests
// and the scenario report's schedule preview.
//
//sdvm:deterministic
func Schedule(cfg LinkFaults, seed int64, src, dst string, n int) []Decision {
	rng := rand.New(rand.NewSource(linkSeed(seed, src, dst)))
	out := make([]Decision, n)
	for i := range out {
		out[i] = cfg.decide(rng)
	}
	return out
}

// NetConfig parameterizes a fault Network.
type NetConfig struct {
	// Seed feeds every per-link PRNG (via linkSeed).
	Seed int64
	// Default applies to every link without an override.
	Default LinkFaults
	// Links overrides the default per directed link.
	Links map[LinkKey]LinkFaults
}

// LinkKey names one directed link by physical addresses.
type LinkKey struct {
	Src, Dst string
}

// faultsFor resolves the config of one directed link.
func (c NetConfig) faultsFor(src, dst string) LinkFaults {
	if lf, ok := c.Links[LinkKey{src, dst}]; ok {
		return lf
	}
	return c.Default
}

// Totals is a snapshot of the injected-fault counters.
type Totals struct {
	Drops          uint64
	Dups           uint64
	Delays         uint64
	Reorders       uint64
	PartitionDrops uint64
}

// Network wraps any transport.Network with per-link fault injection and
// scripted partitions. Daemons must be given per-site views via Host so
// the wrapper knows each link's source; traffic through an un-hosted
// view (Dial on the Network itself) uses an empty source and still gets
// the default fault config.
//
// Partition semantics mirror the inproc fabric: sends across partition
// groups are silently black-holed (the realistic failure mode — TCP
// does not tell the sender a cable was cut), new dials across groups
// fail with transport.ErrPartitioned.
type Network struct {
	inner transport.Network
	cfg   NetConfig

	mu sync.Mutex
	// links holds per-directed-link PRNG state. guarded by mu
	links map[LinkKey]*link
	// islands maps addresses to partition groups; absent = group 0.
	// guarded by mu
	islands map[string]int
	// dead marks killed site addresses: their endpoints are closed and
	// new dials to or from them fail until a new Listen revives them.
	// guarded by mu
	dead map[string]bool
	// eps tracks open wrapped endpoints for KillSite. guarded by mu
	eps map[*endpoint]struct{}
	// lns tracks listeners by address for KillSite. guarded by mu
	lns map[string]transport.Listener
	// sites holds per-site metric instruments bound via BindMetrics,
	// keyed by source address. guarded by mu
	sites map[string]*siteMetrics

	drops          atomic.Uint64
	dups           atomic.Uint64
	delays         atomic.Uint64
	reorders       atomic.Uint64
	partitionDrops atomic.Uint64
}

// NewNetwork wraps inner with fault injection under cfg.
func NewNetwork(inner transport.Network, cfg NetConfig) *Network {
	return &Network{
		inner:   inner,
		cfg:     cfg,
		links:   make(map[LinkKey]*link),
		islands: make(map[string]int),
		dead:    make(map[string]bool),
		eps:     make(map[*endpoint]struct{}),
		lns:     make(map[string]transport.Listener),
		sites:   make(map[string]*siteMetrics),
	}
}

// siteMetrics holds one source site's fault instruments.
type siteMetrics struct {
	reg            *metrics.Registry
	drops          *metrics.Counter
	dups           *metrics.Counter
	delays         *metrics.Counter
	reorders       *metrics.Counter
	partitionDrops *metrics.Counter
}

// BindMetrics registers per-site fault counters in reg for faults
// injected on links originating at addr (fault.drops, fault.dups,
// fault.delays, fault.reorders, fault.partition_drops, plus per-link
// fault.link.<dst>.* as links come into use). The registry is the
// site's own, so the counters surface through sdvmstat -metrics like
// every other site metric.
func (n *Network) BindMetrics(addr string, reg *metrics.Registry) {
	if reg == nil {
		return
	}
	sm := &siteMetrics{
		reg:            reg,
		drops:          reg.Counter("fault.drops"),
		dups:           reg.Counter("fault.dups"),
		delays:         reg.Counter("fault.delays"),
		reorders:       reg.Counter("fault.reorders"),
		partitionDrops: reg.Counter("fault.partition_drops"),
	}
	n.mu.Lock()
	n.sites[addr] = sm
	// Links created before the bind pick up their instruments now.
	for key, lk := range n.links {
		if key.Src == addr {
			lk.bind(sm, key.Dst)
		}
	}
	n.mu.Unlock()
}

// link is the fault state of one directed link.
type link struct {
	faults LinkFaults

	// rngMu serializes decision draws so the per-link schedule is a
	// sequence, not a race.
	rngMu sync.Mutex
	rng   *rand.Rand

	// inst holds the per-link instruments; nil until the source site
	// binds a registry. Atomic because BindMetrics may run while
	// traffic is already flowing.
	inst atomic.Pointer[linkCounters]
}

// linkCounters are one link's instruments plus the source site's
// aggregates; every counter increments both.
type linkCounters struct {
	drops          *metrics.Counter
	dups           *metrics.Counter
	delays         *metrics.Counter
	reorders       *metrics.Counter
	partitionDrops *metrics.Counter
	site           *siteMetrics
}

// bind installs per-link and per-site instruments from the source
// site's registry.
func (lk *link) bind(sm *siteMetrics, dst string) {
	prefix := "fault.link." + dst + "."
	lk.inst.Store(&linkCounters{
		drops:          sm.reg.Counter(prefix + "drops"),
		dups:           sm.reg.Counter(prefix + "dups"),
		delays:         sm.reg.Counter(prefix + "delays"),
		reorders:       sm.reg.Counter(prefix + "reorders"),
		partitionDrops: sm.reg.Counter(prefix + "partition_drops"),
		site:           sm,
	})
}

func (lk *link) decide() Decision {
	lk.rngMu.Lock()
	defer lk.rngMu.Unlock()
	return lk.faults.decide(lk.rng)
}

// linkFor returns (creating on first use) the state of one link.
func (n *Network) linkFor(src, dst string) *link {
	key := LinkKey{src, dst}
	n.mu.Lock()
	defer n.mu.Unlock()
	if lk, ok := n.links[key]; ok {
		return lk
	}
	lk := &link{
		faults: n.cfg.faultsFor(src, dst),
		rng:    rand.New(rand.NewSource(linkSeed(n.cfg.Seed, src, dst))),
	}
	if sm, ok := n.sites[src]; ok {
		lk.bind(sm, dst)
	}
	n.links[key] = lk
	return lk
}

// Totals snapshots the network-wide injected-fault counters.
func (n *Network) Totals() Totals {
	return Totals{
		Drops:          n.drops.Load(),
		Dups:           n.dups.Load(),
		Delays:         n.delays.Load(),
		Reorders:       n.reorders.Load(),
		PartitionDrops: n.partitionDrops.Load(),
	}
}

// ---------------------------------------------------------------------------
// Partitioner.

// Partition assigns addrs to a partition group. Addresses never
// assigned are implicitly in group 0; sends between different groups
// black-hole and dials between them fail until Heal.
func (n *Network) Partition(group int, addrs ...string) {
	n.mu.Lock()
	for _, a := range addrs {
		n.islands[a] = group
	}
	n.mu.Unlock()
}

// Heal removes all partitions.
func (n *Network) Heal() {
	n.mu.Lock()
	n.islands = make(map[string]int)
	n.mu.Unlock()
}

// connected reports whether two addresses are in the same partition
// group and neither is killed.
func (n *Network) connected(a, b string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.dead[a] || n.dead[b] {
		return false
	}
	return n.islands[a] == n.islands[b]
}

// KillSite cuts a site off abruptly: its listener and every endpoint
// touching it close without goodbye, and dials to or from it fail until
// a new Listen on the address revives it. Combined with Daemon.Kill
// this emulates a machine losing power mid-conversation.
func (n *Network) KillSite(addr string) {
	n.mu.Lock()
	n.dead[addr] = true
	ln := n.lns[addr]
	delete(n.lns, addr)
	var victims []*endpoint
	for ep := range n.eps {
		if ep.src == addr || ep.dst == addr {
			victims = append(victims, ep)
			delete(n.eps, ep)
		}
	}
	n.mu.Unlock()

	if ln != nil {
		_ = ln.Close()
	}
	for _, ep := range victims {
		_ = ep.inner.Close()
	}
}

// ---------------------------------------------------------------------------
// transport.Network implementation.

// Host returns a view of the network bound to one site address: links
// dialed through the view are keyed (addr -> target), which is what
// makes per-link fault config and per-site fault metrics possible.
// Every daemon sharing one fault Network must use its own Host view.
func (n *Network) Host(addr string) transport.Network {
	return &hostView{n: n, src: addr}
}

type hostView struct {
	n   *Network
	src string
}

func (h *hostView) Listen(addr string) (transport.Listener, error) { return h.n.listen(addr) }
func (h *hostView) Dial(addr string) (transport.Endpoint, error)   { return h.n.dial(h.src, addr) }

// Listen binds a listener on the inner network. Listening on a killed
// address revives it (crash-then-rejoin).
func (n *Network) Listen(addr string) (transport.Listener, error) { return n.listen(addr) }

// Dial establishes a link with an unknown source; the link gets the
// default fault config. Prefer dialing through a Host view.
func (n *Network) Dial(addr string) (transport.Endpoint, error) { return n.dial("", addr) }

func (n *Network) listen(addr string) (transport.Listener, error) {
	ln, err := n.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	delete(n.dead, addr)
	n.lns[addr] = ln
	n.mu.Unlock()
	return &faultListener{n: n, inner: ln, addr: addr}, nil
}

func (n *Network) dial(src, dst string) (transport.Endpoint, error) {
	n.mu.Lock()
	if n.dead[src] || n.dead[dst] {
		n.mu.Unlock()
		return nil, transport.ErrNoListener
	}
	if n.islands[src] != n.islands[dst] {
		n.mu.Unlock()
		return nil, transport.ErrPartitioned
	}
	n.mu.Unlock()

	inner, err := n.inner.Dial(dst)
	if err != nil {
		return nil, err
	}
	ep := &endpoint{n: n, inner: inner, src: src, dst: dst, lk: n.linkFor(src, dst)}
	n.mu.Lock()
	n.eps[ep] = struct{}{}
	n.mu.Unlock()
	return ep, nil
}

// faultListener wraps accepted endpoints so KillSite can find them.
// Accepted endpoints never inject faults themselves: all SDVM sends go
// over dialed links (the network manager dials each peer's listen
// address), so injecting on the dialed side covers every real message
// while keeping the source attribution exact.
type faultListener struct {
	n     *Network
	inner transport.Listener
	addr  string
}

func (l *faultListener) Accept() (transport.Endpoint, error) {
	inner, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	ep := &endpoint{n: l.n, inner: inner, src: l.addr, dst: ""}
	l.n.mu.Lock()
	l.n.eps[ep] = struct{}{}
	l.n.mu.Unlock()
	return ep, nil
}

func (l *faultListener) Addr() string { return l.inner.Addr() }

func (l *faultListener) Close() error {
	l.n.mu.Lock()
	if l.n.lns[l.addr] == l.inner {
		delete(l.n.lns, l.addr)
	}
	l.n.mu.Unlock()
	return l.inner.Close()
}

// endpoint wraps one side of a link. Faults are injected in Send on
// dialed endpoints (lk != nil); accepted endpoints pass through.
type endpoint struct {
	n     *Network
	inner transport.Endpoint
	src   string
	dst   string // "" on accepted endpoints (peer address is synthetic)
	lk    *link
}

func (e *endpoint) Send(datagram []byte) error {
	if e.lk == nil {
		return e.inner.Send(datagram)
	}
	inst := e.lk.inst.Load()
	if e.dst != "" && !e.n.connected(e.src, e.dst) {
		// Black-hole, like a cut cable: the sender learns nothing.
		e.n.partitionDrops.Add(1)
		if inst != nil {
			inst.partitionDrops.Inc()
			inst.site.partitionDrops.Inc()
		}
		return nil
	}
	if e.lk.faults.zero() {
		return e.inner.Send(datagram)
	}

	dec := e.lk.decide()
	if dec.Drop {
		e.n.drops.Add(1)
		if inst != nil {
			inst.drops.Inc()
			inst.site.drops.Inc()
		}
		return nil
	}
	if dec.Dup {
		e.n.dups.Add(1)
		if inst != nil {
			inst.dups.Inc()
			inst.site.dups.Inc()
		}
	}
	if bps := e.lk.faults.BytesPerSecond; bps > 0 {
		// Bandwidth cap as sender backpressure: block for the
		// serialization time, like a saturated NIC queue.
		time.Sleep(time.Duration(float64(len(datagram)) / float64(bps) * float64(time.Second)))
	}
	if dec.delay > 0 {
		if dec.Reorder {
			e.n.reorders.Add(1)
			if inst != nil {
				inst.reorders.Inc()
				inst.site.reorders.Inc()
			}
		} else {
			e.n.delays.Add(1)
			if inst != nil {
				inst.delays.Inc()
				inst.site.delays.Inc()
			}
		}
		// Deliver late and asynchronously: later sends on this link
		// overtake the held datagram, which is exactly how a delay
		// spike reorders traffic. A send after the endpoint closed is
		// swallowed by the inner transport's ErrClosed.
		held := append([]byte(nil), datagram...)
		dup := dec.Dup
		time.AfterFunc(dec.delay, func() {
			_ = e.inner.Send(held)
			if dup {
				_ = e.inner.Send(held)
			}
		})
		return nil
	}
	if dec.Dup {
		if err := e.inner.Send(datagram); err != nil {
			return err
		}
	}
	return e.inner.Send(datagram)
}

func (e *endpoint) Recv() ([]byte, error) { return e.inner.Recv() }

func (e *endpoint) Close() error {
	e.n.mu.Lock()
	delete(e.n.eps, e)
	e.n.mu.Unlock()
	return e.inner.Close()
}

func (e *endpoint) RemoteAddr() string { return e.inner.RemoteAddr() }

// String names the network for diagnostics.
func (n *Network) String() string {
	return fmt.Sprintf("fault.Network(seed=%d)", n.cfg.Seed)
}
