// Scenario engine: scripted failure timelines run against a live chaos
// cluster, reported as deterministic JSON.
//
// A scenario is a workload (the primes program of paper §5) plus an
// ordered list of steps at fixed offsets from submission. The engine
// builds the cluster, submits, replays the timeline, waits for the
// result, then checks the survivability invariants (invariants.go).
//
// One design note on drops: the SDVM message layer assumes TCP-like
// links — delivery is reliable and FIFO per connection, and several
// messages (ApplyParam, frame pushes) are fire-and-forget on that
// assumption. Randomly dropping single datagrams therefore models a
// fault the deployed system can never see (TCP either delivers or
// breaks the whole connection). The canned scenarios respect that:
// sustained loss appears as partitions and crashes (connection-level
// faults the crash management layer is built for), while the lossy-link
// scenario degrades links with delay, reordering, duplication and a
// bandwidth cap — the faults a live TCP link really exhibits.
package fault

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/workloads"
)

// StepKind names one scripted fault action.
type StepKind string

const (
	StepCrash     StepKind = "crash"     // hard-kill a site (no sign-off)
	StepLeave     StepKind = "leave"     // graceful sign-off
	StepStall     StepKind = "stall"     // freeze dispatch for Dur
	StepRejoin    StepKind = "rejoin"    // replace a dead site with a fresh instance
	StepPartition StepKind = "partition" // split the network into Groups
	StepHeal      StepKind = "heal"      // remove all partitions
)

// Step is one timed action of a scenario.
type Step struct {
	At     time.Duration `json:"-"`
	AtMS   int64         `json:"at_ms"` // At, JSON-stable
	Kind   StepKind      `json:"kind"`
	Site   int           `json:"site,omitempty"`
	Dur    time.Duration `json:"-"`
	DurMS  int64         `json:"dur_ms,omitempty"` // Dur, JSON-stable
	Groups [][]int       `json:"groups,omitempty"` // partition: groups of site indices
}

// Scenario is a scripted chaos run.
type Scenario struct {
	Name string `json:"name"`
	Desc string `json:"desc"`

	Sites int        `json:"sites"`
	Link  LinkFaults `json:"-"` // default faults on every link
	Steps []Step     `json:"steps"`

	// Workload: find the first Primes primes, Width candidates in
	// parallel, Cost work units per candidate test.
	Primes int     `json:"primes"`
	Width  int     `json:"width"`
	Cost   float64 `json:"cost"`

	// Deadline bounds the wait for the program result.
	Deadline time.Duration `json:"-"`

	// Checkpoint enables the crash-management stack.
	Checkpoint bool `json:"checkpoint"`

	// Batched runs the cluster with the hot-path batching knobs on:
	// per-peer message coalescing and multi-frame help grants. Chaos
	// coverage for the fast path — batched grants must survive crashes
	// via the grant log, and coalesced envelopes must tolerate lossy
	// links.
	Batched bool `json:"batched,omitempty"`

	// Gossip runs the cluster on the epidemic membership layer: load,
	// joins, goodbyes and crash tombstones disseminate in bounded
	// digests instead of broadcasts, which is what lets the churn
	// scenarios scale past a handful of sites.
	Gossip bool `json:"gossip,omitempty"`
}

// disruptive reports whether the scenario kills or isolates sites —
// which makes recovery at-least-once, waiving cluster-wide
// exactly-once (effect-level dedup still guarantees the result).
func (sc Scenario) disruptive() bool {
	for _, st := range sc.Steps {
		switch st.Kind {
		case StepCrash, StepPartition, StepRejoin:
			return true
		}
	}
	return false
}

// duplicating reports whether the link profile can deliver a datagram
// twice, which waives the per-site duplicate-execution check (a
// duplicated one-way frame push may legitimately double-enqueue).
func (sc Scenario) duplicating() bool { return sc.Link.DupProb > 0 }

// expectedLive computes how many sites the final roster should hold.
func (sc Scenario) expectedLive() int {
	n := sc.Sites
	dead := make(map[int]bool)
	for _, st := range sc.Steps {
		switch st.Kind {
		case StepCrash, StepLeave:
			if !dead[st.Site] {
				dead[st.Site] = true
				n--
			}
		case StepRejoin:
			if dead[st.Site] {
				delete(dead, st.Site)
				n++
			}
		}
	}
	return n
}

// ms is the scenario tables' shorthand for millisecond timestamps. A
// declared function (not a closure) so detpath can resolve the calls.
//
//sdvm:deterministic
func ms(n int64) time.Duration { return time.Duration(n) * time.Millisecond }

// Scenarios returns the canned scenario suite, in run order.
//
//sdvm:deterministic
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name: "lossy-link",
			Desc: "every link jitters, reorders, duplicates and caps bandwidth; the dataflow must still converge",
			Link: LinkFaults{
				DelayProb: 0.25, DelayMin: 200 * time.Microsecond, DelayMax: 3 * time.Millisecond,
				ReorderProb: 0.10, ReorderBy: 2 * time.Millisecond,
				DupProb:        0.05,
				BytesPerSecond: 4 << 20,
			},
			Sites: 4, Primes: 40, Width: 8, Cost: 5,
			Batched:  true,
			Deadline: 30 * time.Second,
		},
		{
			Name:  "straggler-site",
			Desc:  "one site repeatedly freezes below the crash-declaration threshold; it must be waited out, not buried",
			Sites: 4, Primes: 50, Width: 8, Cost: 5,
			Checkpoint: true,
			Steps: []Step{
				{At: ms(50), Kind: StepStall, Site: 2, Dur: ms(300)},
				{At: ms(500), Kind: StepStall, Site: 2, Dur: ms(200)},
			},
			Deadline: 30 * time.Second,
		},
		{
			Name:  "split-brain-heal",
			Desc:  "a minority site is cut off, declared crashed and recovered; the network heals and a fresh site takes its slot",
			Sites: 4, Primes: 50, Width: 8, Cost: 10,
			Checkpoint: true,
			Steps: []Step{
				{At: ms(150), Kind: StepPartition, Groups: [][]int{{0, 1, 2}, {3}}},
				{At: ms(900), Kind: StepCrash, Site: 3},
				{At: ms(1000), Kind: StepHeal},
				{At: ms(1400), Kind: StepRejoin, Site: 3},
			},
			Deadline: 40 * time.Second,
		},
		{
			Name:  "rolling-restart",
			Desc:  "every non-submitter site is hard-crashed and replaced in turn while the program runs",
			Sites: 4, Primes: 60, Width: 8, Cost: 25,
			Checkpoint: true,
			Steps: []Step{
				{At: ms(300), Kind: StepCrash, Site: 1},
				{At: ms(1200), Kind: StepRejoin, Site: 1},
				{At: ms(2000), Kind: StepCrash, Site: 2},
				{At: ms(2900), Kind: StepRejoin, Site: 2},
				{At: ms(3700), Kind: StepCrash, Site: 3},
				{At: ms(4600), Kind: StepRejoin, Site: 3},
			},
			Deadline: 45 * time.Second,
		},
		{
			Name:  "crash-during-checkpoint",
			Desc:  "a site dies between checkpoint epochs; replicas plus sender logs must reconstruct its state",
			Sites: 4, Primes: 50, Width: 8, Cost: 20,
			Checkpoint: true,
			Steps: []Step{
				{At: ms(475), Kind: StepCrash, Site: 2},
				{At: ms(1600), Kind: StepRejoin, Site: 2},
			},
			Deadline: 40 * time.Second,
		},
		{
			Name: "replica-storm",
			Desc: "replica holders are cut off from the home mid-write-burst, declared crashed and replaced — twice; writes must wait out the invalidation deadline and the crash path must reclaim every replica and copyset entry",
			// Each squall isolates one helper past the crash threshold
			// (HeartbeatEvery × MissLimit ≈ 600 ms) while the dataflow is
			// writing hard: the home's invalidations to the lost site go
			// unacked (the 500 ms best-effort deadline is exercised, not
			// just configured), and the crash declaration must purge its
			// replicas, copyset entries and heat counters before the
			// replacement joins.
			Sites: 4, Primes: 50, Width: 8, Cost: 10,
			Checkpoint: true,
			Steps: []Step{
				{At: ms(150), Kind: StepPartition, Groups: [][]int{{0, 1, 2}, {3}}},
				{At: ms(900), Kind: StepCrash, Site: 3},
				{At: ms(1000), Kind: StepHeal},
				{At: ms(1400), Kind: StepRejoin, Site: 3},
				{At: ms(1900), Kind: StepPartition, Groups: [][]int{{0, 1, 3}, {2}}},
				{At: ms(2650), Kind: StepCrash, Site: 2},
				{At: ms(2750), Kind: StepHeal},
				{At: ms(3150), Kind: StepRejoin, Site: 2},
			},
			Deadline: 45 * time.Second,
		},
		{
			Name:  "churn-storm",
			Desc:  "leaves, crashes, stalls and rejoins overlap at gossip scale — the paper's adaptive-cluster claim under concurrent churn",
			Sites: 64, Primes: 60, Width: 8, Cost: 20,
			Checkpoint: true,
			Batched:    true,
			Gossip:     true,
			Steps: []Step{
				{At: ms(250), Kind: StepLeave, Site: 4},
				{At: ms(500), Kind: StepCrash, Site: 3},
				{At: ms(1400), Kind: StepRejoin, Site: 3},
				{At: ms(1600), Kind: StepStall, Site: 1, Dur: ms(250)},
				{At: ms(2000), Kind: StepRejoin, Site: 4},
				{At: ms(2500), Kind: StepCrash, Site: 2},
				{At: ms(3400), Kind: StepRejoin, Site: 2},
			},
			Deadline: 60 * time.Second,
		},
	}
}

// Lookup finds a canned scenario by name.
//
//sdvm:deterministic
func Lookup(name string) (Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// SchedulePreview is the first few fault decisions of one directed
// link, reproduced purely from (config, seed) — the report's proof that
// the schedule is a function of the seed, not the run.
type SchedulePreview struct {
	Src       string     `json:"src"`
	Dst       string     `json:"dst"`
	Decisions []Decision `json:"decisions"`
}

// Report is one scenario run's outcome. Every field is deterministic
// for a given (scenario, seed): wall-clock readings and fault-counter
// totals (which depend on goroutine interleaving) deliberately stay
// out, so two runs with the same seed produce byte-identical JSON.
type Report struct {
	Scenario   string           `json:"scenario"`
	Desc       string           `json:"desc"`
	Seed       int64            `json:"seed"`
	Sites      int              `json:"sites"`
	Steps      []Step           `json:"steps"`
	Workload   string           `json:"workload"`
	Schedule   *SchedulePreview `json:"schedule,omitempty"`
	Invariants []Check          `json:"invariants"`
	OK         bool             `json:"ok"`

	// Observed run data — varies run to run, excluded from the JSON.
	Elapsed time.Duration `json:"-"`
	Totals  Totals        `json:"-"`
}

// Run executes sc against a fresh chaos cluster under seed.
func Run(sc Scenario, seed int64) (*Report, error) {
	c, err := NewCluster(ClusterConfig{
		Sites:      sc.Sites,
		Seed:       seed,
		Link:       sc.Link,
		Checkpoint: sc.Checkpoint,
		Batched:    sc.Batched,
		Gossip:     sc.Gossip,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	inj := NewInjector(c)

	prog, err := c.Sites[0].D.Submit(workloads.PrimesApp(),
		workloads.PrimesArgs(sc.Primes, sc.Width, sc.Cost)...)
	if err != nil {
		return nil, fmt.Errorf("fault: submit: %w", err)
	}
	start := time.Now()

	steps := append([]Step(nil), sc.Steps...)
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].At < steps[j].At })
	for _, st := range steps {
		if d := time.Until(start.Add(st.At)); d > 0 {
			time.Sleep(d)
		}
		if err := applyStep(c, inj, st); err != nil {
			return nil, fmt.Errorf("fault: step %s at %v: %w", st.Kind, st.At, err)
		}
	}

	remaining := sc.Deadline - time.Since(start)
	if remaining < time.Second {
		remaining = time.Second
	}
	result, terminated := c.Sites[0].D.WaitResult(prog, remaining)
	inj.ResumeAll()
	killZombies(c)

	rep := &Report{
		Scenario:   sc.Name,
		Desc:       sc.Desc,
		Seed:       seed,
		Sites:      sc.Sites,
		Steps:      jsonSteps(steps),
		Workload:   fmt.Sprintf("primes p=%d width=%d cost=%g", sc.Primes, sc.Width, sc.Cost),
		Invariants: checkInvariants(sc, c, result, terminated),
		Elapsed:    time.Since(start),
		Totals:     c.Net.Totals(),
	}
	if !sc.Link.zero() {
		rep.Schedule = &SchedulePreview{
			Src:       siteAddr(0, 0),
			Dst:       siteAddr(1, 0),
			Decisions: Schedule(sc.Link, seed, siteAddr(0, 0), siteAddr(1, 0), 16),
		}
	}
	rep.OK = true
	for _, ck := range rep.Invariants {
		rep.OK = rep.OK && ck.OK
	}
	return rep, nil
}

// applyStep executes one scripted action.
func applyStep(c *Cluster, inj *Injector, st Step) error {
	switch st.Kind {
	case StepCrash:
		return inj.Crash(st.Site)
	case StepLeave:
		return inj.Leave(st.Site)
	case StepStall:
		return inj.Stall(st.Site, st.Dur)
	case StepRejoin:
		return inj.Rejoin(st.Site)
	case StepPartition:
		for g, members := range st.Groups {
			addrs := make([]string, 0, len(members))
			for _, idx := range members {
				if idx < 0 || idx >= len(c.Sites) {
					return fmt.Errorf("no site %d", idx)
				}
				addrs = append(addrs, c.Sites[idx].Addr)
			}
			c.Net.Partition(g, addrs...)
		}
		return nil
	case StepHeal:
		c.Net.Heal()
		return nil
	default:
		return fmt.Errorf("unknown step kind %q", st.Kind)
	}
}

// jsonSteps fills the JSON-stable millisecond mirrors of the duration
// fields.
//
//sdvm:deterministic
func jsonSteps(steps []Step) []Step {
	out := make([]Step, len(steps))
	for i, st := range steps {
		st.AtMS = st.At.Milliseconds()
		st.DurMS = st.Dur.Milliseconds()
		out[i] = st
	}
	return out
}

// killZombies hard-stops any site the cluster no longer lists — e.g. a
// partitioned minority the majority declared crashed. Leaving it
// running would let a stale roster leak traffic into the healed
// network; the real system's operator would have fenced the machine.
func killZombies(c *Cluster) {
	if !c.Sites[0].Alive {
		return
	}
	roster := make(map[string]bool)
	for _, id := range c.Sites[0].D.CM.SiteIDs() {
		roster[id.String()] = true
	}
	for _, s := range c.Sites {
		if !s.Alive || s.Index == 0 {
			continue
		}
		if roster[s.D.Self().String()] {
			continue
		}
		c.Net.KillSite(s.Addr)
		s.D.Kill()
		s.Alive = false
	}
}
