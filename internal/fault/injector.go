package fault

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/msgbus"
)

// Injector applies site-lifecycle faults to a chaos cluster: hard
// crashes (no sign-off), graceful leaves, dispatch stalls, and
// crash-then-rejoin. It is driven by the scenario engine but usable
// directly from tests.
//
// Counters land in site 0's metrics registry (the submitter, which
// scenarios never kill) so one `sdvmstat -metrics` against it shows the
// whole run's injected site faults next to the per-link fault.* series.
type Injector struct {
	c *Cluster

	crashes *metrics.Counter
	leaves  *metrics.Counter
	stalls  *metrics.Counter
	rejoins *metrics.Counter

	mu sync.Mutex
	// stalled tracks buses with a pending Resume so ResumeAll can
	// release them even if the scenario ends mid-stall. guarded by mu
	stalled map[*msgbus.Bus]bool
}

// NewInjector binds an injector (and its fault counters) to c.
func NewInjector(c *Cluster) *Injector {
	in := &Injector{c: c, stalled: make(map[*msgbus.Bus]bool)}
	if len(c.Sites) > 0 && c.Sites[0].D.Metrics != nil {
		reg := c.Sites[0].D.Metrics
		in.crashes = reg.Counter("fault.site_crashes")
		in.leaves = reg.Counter("fault.site_leaves")
		in.stalls = reg.Counter("fault.site_stalls")
		in.rejoins = reg.Counter("fault.site_rejoins")
	}
	return in
}

// site fetches slot i's current instance, requiring liveness want.
func (in *Injector) site(i int, want bool) (*Site, error) {
	if i < 0 || i >= len(in.c.Sites) {
		return nil, fmt.Errorf("fault: no site %d", i)
	}
	s := in.c.Sites[i]
	if s.Alive != want {
		state := "dead"
		if s.Alive {
			state = "alive"
		}
		return nil, fmt.Errorf("fault: site %d (%s) is %s", i, s.Addr, state)
	}
	return s, nil
}

// Crash kills site i like a machine death: its links are cut first (so
// in-flight sends black-hole, exactly as a yanked cable would) and the
// daemon is stopped with no sign-off. Peers find out via heartbeats.
func (in *Injector) Crash(i int) error {
	s, err := in.site(i, true)
	if err != nil {
		return err
	}
	in.c.Net.KillSite(s.Addr)
	s.D.Kill()
	s.Alive = false
	in.crashes.Inc()
	return nil
}

// Leave signs site i off gracefully: frames relocate, peers are told.
func (in *Injector) Leave(i int) error {
	s, err := in.site(i, true)
	if err != nil {
		return err
	}
	err = s.D.SignOff()
	s.Alive = false
	in.leaves.Inc()
	return err
}

// Stall freezes site i's message dispatch for d: the site stops
// consuming bus traffic (including heartbeat probes) but its own
// outstanding requests still complete — a GC pause or overloaded host,
// not a crash. Dispatch resumes automatically after d.
func (in *Injector) Stall(i int, d time.Duration) error {
	s, err := in.site(i, true)
	if err != nil {
		return err
	}
	bus := s.D.Bus
	bus.Pause()
	in.mu.Lock()
	in.stalled[bus] = true
	in.mu.Unlock()
	in.stalls.Inc()
	time.AfterFunc(d, func() {
		in.mu.Lock()
		delete(in.stalled, bus)
		in.mu.Unlock()
		bus.Resume()
	})
	return nil
}

// ResumeAll releases every stall still pending; the scenario engine
// calls it before checking invariants so a run never ends frozen.
func (in *Injector) ResumeAll() {
	in.mu.Lock()
	buses := make([]*msgbus.Bus, 0, len(in.stalled))
	for b := range in.stalled {
		buses = append(buses, b)
	}
	in.stalled = make(map[*msgbus.Bus]bool)
	in.mu.Unlock()
	for _, b := range buses {
		b.Resume()
	}
}

// Rejoin replaces dead site i with a fresh instance: a new address, a
// new logical id, an empty memory — the checkpoint/recovery machinery,
// not the newcomer, must restore the lost work.
func (in *Injector) Rejoin(i int) error {
	s, err := in.site(i, false)
	if err != nil {
		return err
	}
	fresh, err := in.c.startSite(i, s.Gen+1)
	if err != nil {
		return err
	}
	in.c.Retired = append(in.c.Retired, s)
	in.c.Sites[i] = fresh
	in.rejoins.Inc()
	return nil
}
