package types

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestSiteIDValid(t *testing.T) {
	cases := []struct {
		id   SiteID
		want bool
	}{
		{InvalidSite, false},
		{Broadcast, false},
		{1, true},
		{42, true},
		{math.MaxUint32 - 1, true},
	}
	for _, c := range cases {
		if got := c.id.Valid(); got != c.want {
			t.Errorf("%v.Valid() = %v, want %v", c.id, got, c.want)
		}
	}
}

func TestSiteIDString(t *testing.T) {
	if s := InvalidSite.String(); s != "site(invalid)" {
		t.Errorf("InvalidSite.String() = %q", s)
	}
	if s := Broadcast.String(); s != "site(broadcast)" {
		t.Errorf("Broadcast.String() = %q", s)
	}
	if s := SiteID(7).String(); s != "site(7)" {
		t.Errorf("SiteID(7).String() = %q", s)
	}
}

func TestProgramIDRoundTrip(t *testing.T) {
	f := func(site uint32, seq uint32) bool {
		p := MakeProgramID(SiteID(site), seq)
		return p.StartSite() == SiteID(site) && p.Seq() == seq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProgramIDUniqueAcrossSites(t *testing.T) {
	// Equal sequence numbers on different sites must give distinct ids.
	a := MakeProgramID(1, 9)
	b := MakeProgramID(2, 9)
	if a == b {
		t.Fatalf("program ids collide: %v == %v", a, b)
	}
}

func TestGlobalAddrNil(t *testing.T) {
	if !NilAddr.IsNil() {
		t.Error("NilAddr.IsNil() = false")
	}
	a := GlobalAddr{Home: 3, Local: 0}
	if a.IsNil() {
		t.Errorf("%v.IsNil() = true", a)
	}
	b := GlobalAddr{Home: 0, Local: 1}
	if b.IsNil() {
		t.Errorf("%v.IsNil() = true", b)
	}
}

func TestManagerIDValid(t *testing.T) {
	if MgrInvalid.Valid() {
		t.Error("MgrInvalid.Valid() = true")
	}
	for m := MgrProcessing; m < managerCount; m++ {
		if !m.Valid() {
			t.Errorf("%v.Valid() = false", m)
		}
	}
	if ManagerID(200).Valid() {
		t.Error("ManagerID(200).Valid() = true")
	}
}

func TestManagerIDNamesDistinct(t *testing.T) {
	seen := make(map[string]ManagerID)
	for m := MgrInvalid; m < managerCount; m++ {
		name := m.String()
		if prev, dup := seen[name]; dup {
			t.Errorf("managers %v and %v share the name %q", prev, m, name)
		}
		seen[name] = m
	}
}

func TestSchedulingClassString(t *testing.T) {
	if SchedFIFO.String() != "fifo" || SchedLIFO.String() != "lifo" || SchedPriority.String() != "priority" {
		t.Error("SchedulingClass names wrong")
	}
	if SchedulingClass(99).String() == "" {
		t.Error("unknown class should still format")
	}
}

func TestAddrErrorUnwrap(t *testing.T) {
	err := &AddrError{Err: ErrNoSuchObject, Addr: GlobalAddr{Home: 2, Local: 5}}
	if !errors.Is(err, ErrNoSuchObject) {
		t.Error("AddrError does not unwrap to ErrNoSuchObject")
	}
	if err.Error() == "" {
		t.Error("empty error string")
	}
}

func TestSiteErrorUnwrap(t *testing.T) {
	err := &SiteError{Err: ErrSiteUnknown, Site: 9}
	if !errors.Is(err, ErrSiteUnknown) {
		t.Error("SiteError does not unwrap to ErrSiteUnknown")
	}
	var se *SiteError
	if !errors.As(err, &se) || se.Site != 9 {
		t.Error("errors.As failed to recover SiteError")
	}
}

func TestPriorityOrdering(t *testing.T) {
	if !(PriorityLow < PriorityNormal && PriorityNormal < PriorityHigh && PriorityHigh < PriorityCritical) {
		t.Error("priority levels out of order")
	}
}

func TestPlatformString(t *testing.T) {
	if PlatformAny.String() != "platform(any)" {
		t.Errorf("PlatformAny.String() = %q", PlatformAny.String())
	}
	if PlatformID(3).String() != "platform(3)" {
		t.Errorf("PlatformID(3).String() = %q", PlatformID(3).String())
	}
}
