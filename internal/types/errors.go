package types

import (
	"errors"
	"fmt"
)

// Sentinel errors shared across managers. Wrapping (fmt.Errorf with %w)
// preserves them for errors.Is checks at the call sites.
var (
	// ErrSiteUnknown reports a logical site id with no cluster-list entry.
	ErrSiteUnknown = errors.New("sdvm: unknown site")
	// ErrSiteLeft reports a message for a site that has signed off.
	ErrSiteLeft = errors.New("sdvm: site has left the cluster")
	// ErrNoSuchObject reports a global address that resolves nowhere.
	ErrNoSuchObject = errors.New("sdvm: no such memory object")
	// ErrNoSuchFrame reports an unknown (or already consumed) microframe.
	ErrNoSuchFrame = errors.New("sdvm: no such microframe")
	// ErrNoSuchThread reports an unknown microthread id.
	ErrNoSuchThread = errors.New("sdvm: no such microthread")
	// ErrNoBinary reports that no executable artifact exists for the
	// requesting platform and no source is available to compile.
	ErrNoBinary = errors.New("sdvm: no binary artifact for platform")
	// ErrSlotFilled reports a parameter applied twice to the same slot.
	ErrSlotFilled = errors.New("sdvm: microframe parameter slot already filled")
	// ErrSlotRange reports a parameter slot outside the frame's arity.
	ErrSlotRange = errors.New("sdvm: microframe parameter slot out of range")
	// ErrCantHelp is a scheduling manager's reply when its queues are
	// empty too (paper §4: "can't-help-message").
	ErrCantHelp = errors.New("sdvm: can't help, queues empty")
	// ErrShutdown reports use of a manager after its site shut down.
	ErrShutdown = errors.New("sdvm: site is shut down")
	// ErrTimeout reports an expired request/reply exchange.
	ErrTimeout = errors.New("sdvm: request timed out")
	// ErrBadMessage reports a wire message that failed to decode.
	ErrBadMessage = errors.New("sdvm: malformed message")
	// ErrCrypto reports an authentication/decryption failure in the
	// security manager.
	ErrCrypto = errors.New("sdvm: message failed authentication")
	// ErrNoProgram reports an unknown program id.
	ErrNoProgram = errors.New("sdvm: unknown program")
	// ErrTerminated reports an operation on a terminated program.
	ErrTerminated = errors.New("sdvm: program has terminated")
	// ErrIDExhausted reports an id-allocation strategy that ran out of
	// ids and could not replenish (contingent strategy, paper §4).
	ErrIDExhausted = errors.New("sdvm: logical id contingent exhausted")
)

// AddrError decorates a sentinel error with the global address involved.
type AddrError struct {
	Err  error
	Addr GlobalAddr
}

func (e *AddrError) Error() string {
	return fmt.Sprintf("%v (%s)", e.Err, e.Addr)
}

// Unwrap supports errors.Is/errors.As.
func (e *AddrError) Unwrap() error { return e.Err }

// SiteError decorates a sentinel error with the site involved.
type SiteError struct {
	Err  error
	Site SiteID
}

func (e *SiteError) Error() string {
	return fmt.Sprintf("%v (%s)", e.Err, e.Site)
}

// Unwrap supports errors.Is/errors.As.
func (e *SiteError) Unwrap() error { return e.Err }
