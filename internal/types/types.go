// Package types defines the fundamental identifiers and addresses shared by
// every SDVM manager: site ids, program ids, microthread/microframe ids,
// global memory addresses, platform ids, and manager ids.
//
// The SDVM (Haase/Eschmann/Waldschmidt, IPPS 2005) distinguishes a site's
// logical id — assigned by the cluster manager at sign-on and used by every
// manager above the network layer — from its physical (network) address,
// known only to the network manager. Global memory addresses embed the
// logical id of the site that allocated the object (its "homesite"), which
// is what makes the attraction memory's homesite directory work: any site
// can route a request for an unknown object to its homesite by decoding the
// address alone.
package types

import (
	"fmt"
	"math"
)

// SiteID is the logical identifier of a site in the cluster. Logical ids
// are assigned during sign-on by one of the cluster manager's allocation
// strategies and are never reused for the lifetime of a cluster.
type SiteID uint32

// InvalidSite is the zero SiteID; no live site ever holds it.
const InvalidSite SiteID = 0

// Broadcast addresses a message to every site currently in the cluster
// list. It is only meaningful as a message destination.
const Broadcast SiteID = math.MaxUint32

func (s SiteID) String() string {
	switch s {
	case InvalidSite:
		return "site(invalid)"
	case Broadcast:
		return "site(broadcast)"
	default:
		return fmt.Sprintf("site(%d)", uint32(s))
	}
}

// Valid reports whether s identifies a single live site.
func (s SiteID) Valid() bool { return s != InvalidSite && s != Broadcast }

// ProgramID identifies one application running on the cluster. The SDVM is
// a multi-program machine: several applications may run simultaneously and
// the program manager keeps them apart by this id. The id embeds the site
// that started the program so that ids created on different sites never
// collide.
type ProgramID uint64

// MakeProgramID combines the starting site and a site-local counter value
// into a cluster-unique program id.
func MakeProgramID(start SiteID, seq uint32) ProgramID {
	return ProgramID(uint64(start)<<32 | uint64(seq))
}

// StartSite returns the site on which the program was started (its implicit
// code-distribution site, paper §4).
func (p ProgramID) StartSite() SiteID { return SiteID(p >> 32) }

// Seq returns the start site's local sequence number for this program.
func (p ProgramID) Seq() uint32 { return uint32(p) }

func (p ProgramID) String() string {
	return fmt.Sprintf("prog(%d@%d)", p.Seq(), uint32(p.StartSite()))
}

// ThreadID identifies a microthread within a program. Microthreads are the
// code fragments an application is partitioned into; the id is stable
// across sites and platforms (a site that lacks the platform-specific
// binary requests it by this id, paper §3.4).
type ThreadID struct {
	Program ProgramID
	Index   uint32
}

func (t ThreadID) String() string {
	return fmt.Sprintf("thread(%d/%s)", t.Index, t.Program)
}

// GlobalAddr is an address in the SDVM's global memory. The high part is
// the homesite — the site that allocated the object — and the low part a
// homesite-local counter. Microframes, application memory objects, and file
// handles all live in this address space.
type GlobalAddr struct {
	Home  SiteID
	Local uint64
}

// NilAddr is the zero GlobalAddr, used to mean "no address".
var NilAddr = GlobalAddr{}

// IsNil reports whether a is the nil address.
func (a GlobalAddr) IsNil() bool { return a == NilAddr }

func (a GlobalAddr) String() string {
	return fmt.Sprintf("@%d.%d", uint32(a.Home), a.Local)
}

// FrameID identifies a microframe. Microframes are global memory objects,
// so their identity is a global address.
type FrameID = GlobalAddr

// PlatformID identifies a (simulated) hardware/OS platform. A microthread
// binary artifact is only executable on sites with the same PlatformID;
// other sites must fetch a matching artifact or compile from source
// (paper §3.4). The real prototype used values like "linux-x86"; this
// reproduction assigns synthetic ids per site.
type PlatformID uint16

// PlatformAny marks an artifact (e.g. portable source code) usable on every
// platform.
const PlatformAny PlatformID = 0

func (p PlatformID) String() string {
	if p == PlatformAny {
		return "platform(any)"
	}
	return fmt.Sprintf("platform(%d)", uint16(p))
}

// ManagerID names one of the SDVM daemon's managers. Every SDMessage is
// addressed manager-to-manager (paper §4, message manager): the header
// carries source and destination manager ids and the message manager
// dispatches on them.
type ManagerID uint8

// Manager ids, one per manager in the paper's Figure 3.
const (
	MgrInvalid    ManagerID = iota
	MgrProcessing           // processing manager (execution layer)
	MgrScheduling           // scheduling manager (execution layer)
	MgrCode                 // code manager (execution layer)
	MgrMemory               // attraction memory (execution layer)
	MgrIO                   // input/output manager (execution layer)
	MgrCluster              // cluster manager (maintenance layer)
	MgrProgram              // program manager (maintenance layer)
	MgrSite                 // site manager (maintenance layer)
	MgrMessage              // message manager (communication layer)
	MgrSecurity             // security manager (communication layer)
	MgrNetwork              // network manager (communication layer)
	MgrCheckpoint           // crash management / checkpointing ([4])
	MgrAccounting           // accounting (paper §2.2/§6 commercial use)
	MgrGossip               // epidemic membership & load dissemination

	managerCount
)

// ManagerCount is the number of defined manager ids (including MgrInvalid).
const ManagerCount = int(managerCount)

var managerNames = [...]string{
	MgrInvalid:    "invalid",
	MgrProcessing: "processing",
	MgrScheduling: "scheduling",
	MgrCode:       "code",
	MgrMemory:     "memory",
	MgrIO:         "io",
	MgrCluster:    "cluster",
	MgrProgram:    "program",
	MgrSite:       "site",
	MgrMessage:    "message",
	MgrSecurity:   "security",
	MgrNetwork:    "network",
	MgrCheckpoint: "checkpoint",
	MgrAccounting: "accounting",
	MgrGossip:     "gossip",
}

func (m ManagerID) String() string {
	if int(m) < len(managerNames) {
		return managerNames[m]
	}
	return fmt.Sprintf("manager(%d)", uint8(m))
}

// Valid reports whether m names a defined manager.
func (m ManagerID) Valid() bool { return m > MgrInvalid && m < managerCount }

// Priority orders microframes for scheduling. Larger is more urgent. The
// CDAG analysis ([7]) assigns PriorityCritical to frames on the critical
// path; the programmer may attach explicit priorities as scheduling hints
// (paper §3.3).
type Priority int16

// Standard priority levels.
const (
	PriorityLow      Priority = -100
	PriorityNormal   Priority = 0
	PriorityHigh     Priority = 100
	PriorityCritical Priority = 1000
)

// SiteInfo is the cluster manager's knowledge about one site: the cluster
// list (paper §4) holds one entry per participating site and is partially
// replicated everywhere.
type SiteInfo struct {
	ID       SiteID
	PhysAddr string     // network-manager address ("host:port" or inproc name)
	Platform PlatformID // simulated platform type
	Speed    float64    // relative processing speed (1.0 = reference)

	// Statistics, refreshed by load reports; used to pick help-request
	// targets (ask a site that is probably not idle itself).
	Load       float64 // recent work ratio in [0,1]
	QueueLen   int32   // executable+ready microframes queued
	Programs   int32   // programs the site works on
	IsCodeDist bool    // acts as a code distribution site
	Reliable   bool    // member of the reliable core (paper §2.2): a
	// trustworthy machine that stores checkpoints for the unsafe sites
	// around it
}

// SchedulingClass partitions help-reply policies. The paper uses LIFO for
// replying to help requests (latency hiding) and FIFO locally (starvation
// avoidance); both are configurable for the A-1 ablation.
type SchedulingClass uint8

const (
	// SchedFIFO serves the oldest microframe first.
	SchedFIFO SchedulingClass = iota
	// SchedLIFO serves the newest microframe first.
	SchedLIFO
	// SchedPriority serves the highest-priority microframe first,
	// breaking ties FIFO.
	SchedPriority
)

func (c SchedulingClass) String() string {
	switch c {
	case SchedFIFO:
		return "fifo"
	case SchedLIFO:
		return "lifo"
	case SchedPriority:
		return "priority"
	default:
		return fmt.Sprintf("sched(%d)", uint8(c))
	}
}
