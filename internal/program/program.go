// Package program implements the SDVM's program manager (paper §4).
//
// "If the SDVM runs more than one program at the same time, the programs
// must be distinguished. The program manager maintains a list of all
// programs the local site currently works on," including each program's
// code home site (where microthread code can always be requested), its
// frontend site (where output goes), and a termination flag so that dead
// programs' state "can safely be deleted from memory".
//
// The list is updated lazily: when a help request hands this site a
// microframe of an unknown program, the program manager queries the
// granting site for the registration — "the site will always know at
// least one other site working on a program".
package program

import (
	"sync"
	"time"

	"repro/internal/msgbus"
	"repro/internal/types"
	"repro/internal/wire"
)

// Entry is one program-table row.
type Entry struct {
	Reg        wire.ProgramRegister
	Terminated bool
	Result     []byte
}

// Manager is one site's program manager.
type Manager struct {
	bus *msgbus.Bus

	mu      sync.Mutex
	table   map[types.ProgramID]*Entry
	nextSeq uint32
	waiters map[types.ProgramID][]chan []byte
	pending map[types.ProgramID]bool // registration fetch in flight

	// onTerminate hooks let the other managers GC a finished program.
	onTerminate []func(prog types.ProgramID, result []byte)
}

// New returns a program manager registered for MgrProgram.
func New(bus *msgbus.Bus) *Manager {
	m := &Manager{
		bus:     bus,
		table:   make(map[types.ProgramID]*Entry),
		waiters: make(map[types.ProgramID][]chan []byte),
		pending: make(map[types.ProgramID]bool),
	}
	bus.Register(types.MgrProgram, m)
	return m
}

// OnTerminate registers a garbage-collection hook invoked (once per
// program, on this site) when a program terminates.
func (m *Manager) OnTerminate(f func(prog types.ProgramID, result []byte)) {
	m.mu.Lock()
	m.onTerminate = append(m.onTerminate, f)
	m.mu.Unlock()
}

// NewProgram allocates a cluster-unique program id started at this site.
func (m *Manager) NewProgram() types.ProgramID {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextSeq++
	return types.MakeProgramID(m.bus.Self(), m.nextSeq)
}

// Register installs a program locally and announces it to the cluster.
// The submitting site is the program's code home and frontend by default.
func (m *Manager) Register(reg wire.ProgramRegister) {
	m.mu.Lock()
	if _, dup := m.table[reg.Program]; !dup {
		m.table[reg.Program] = &Entry{Reg: reg}
	}
	m.mu.Unlock()
	_ = m.bus.Send(types.Broadcast, types.MgrProgram, types.MgrProgram, &reg)
}

// Known reports whether this site has a program-table entry.
func (m *Manager) Known(prog types.ProgramID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.table[prog]
	return ok
}

// Terminated reports whether the program is known to be finished.
func (m *Manager) Terminated(prog types.ProgramID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.table[prog]
	return ok && e.Terminated
}

// CodeHome returns the site to request microthread code from.
func (m *Manager) CodeHome(prog types.ProgramID) types.SiteID {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.table[prog]; ok {
		return e.Reg.CodeHome
	}
	return types.InvalidSite
}

// Frontend returns the site whose frontend receives the program's output.
func (m *Manager) Frontend(prog types.ProgramID) types.SiteID {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.table[prog]; ok {
		return e.Reg.Frontend
	}
	return types.InvalidSite
}

// Programs returns the ids of all non-terminated programs on this site.
func (m *Manager) Programs() []types.ProgramID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]types.ProgramID, 0, len(m.table))
	for id, e := range m.table {
		if !e.Terminated {
			out = append(out, id)
		}
	}
	return out
}

// EnsureKnown fetches the registration of an unknown program from hint —
// the site that just handed us one of its microframes. Asynchronous and
// idempotent; called from the scheduling manager's adoption path.
func (m *Manager) EnsureKnown(prog types.ProgramID, hint types.SiteID) {
	m.mu.Lock()
	if _, ok := m.table[prog]; ok || m.pending[prog] || !hint.Valid() {
		m.mu.Unlock()
		return
	}
	m.pending[prog] = true
	m.mu.Unlock()

	go func() {
		defer func() {
			m.mu.Lock()
			delete(m.pending, prog)
			m.mu.Unlock()
		}()
		reply, err := m.bus.Request(hint, types.MgrProgram, types.MgrProgram,
			&wire.ProgramQuery{Program: prog}, 3*time.Second)
		if err != nil {
			return
		}
		info, ok := reply.Payload.(*wire.ProgramInfo)
		if !ok || !info.Known {
			return
		}
		m.mu.Lock()
		if _, dup := m.table[prog]; !dup {
			m.table[prog] = &Entry{Reg: info.Register, Terminated: info.Terminated}
		}
		m.mu.Unlock()
	}()
}

// Terminate finishes a program: records the result, notifies the cluster,
// wakes local waiters, and runs GC hooks. Safe to call more than once;
// only the first call has effect.
func (m *Manager) Terminate(prog types.ProgramID, result []byte) {
	if !m.markTerminated(prog, result) {
		return
	}
	_ = m.bus.Send(types.Broadcast, types.MgrProgram, types.MgrProgram,
		&wire.ProgramTerminated{Program: prog, Result: result})
}

// markTerminated updates local state; returns false if already done.
func (m *Manager) markTerminated(prog types.ProgramID, result []byte) bool {
	m.mu.Lock()
	e, ok := m.table[prog]
	if !ok {
		e = &Entry{Reg: wire.ProgramRegister{Program: prog}}
		m.table[prog] = e
	}
	if e.Terminated {
		m.mu.Unlock()
		return false
	}
	e.Terminated = true
	e.Result = result
	waiters := m.waiters[prog]
	delete(m.waiters, prog)
	hooks := append([]func(types.ProgramID, []byte){}, m.onTerminate...)
	m.mu.Unlock()

	for _, ch := range waiters {
		ch <- result
	}
	for _, h := range hooks {
		h(prog, result)
	}
	return true
}

// WaitResult blocks until the program terminates (anywhere in the
// cluster) and returns its result. ok is false on timeout.
func (m *Manager) WaitResult(prog types.ProgramID, timeout time.Duration) (result []byte, ok bool) {
	m.mu.Lock()
	if e, done := m.table[prog]; done && e.Terminated {
		m.mu.Unlock()
		return e.Result, true
	}
	ch := make(chan []byte, 1)
	m.waiters[prog] = append(m.waiters[prog], ch)
	m.mu.Unlock()

	if timeout <= 0 {
		return <-ch, true
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r, true
	case <-timer.C:
		return nil, false
	}
}

// HandleMessage implements msgbus.Handler.
func (m *Manager) HandleMessage(msg *wire.Message) {
	switch p := msg.Payload.(type) {
	case *wire.ProgramRegister:
		m.mu.Lock()
		if _, dup := m.table[p.Program]; !dup {
			m.table[p.Program] = &Entry{Reg: *p}
		}
		m.mu.Unlock()
	case *wire.ProgramTerminated:
		m.markTerminated(p.Program, p.Result)
	case *wire.ProgramQuery:
		m.mu.Lock()
		info := &wire.ProgramInfo{}
		if e, ok := m.table[p.Program]; ok {
			info.Known = true
			info.Terminated = e.Terminated
			info.Register = e.Reg
		}
		m.mu.Unlock()
		_ = m.bus.Reply(msg, types.MgrProgram, info)
	}
}
