package program

import (
	"testing"
	"time"

	"repro/internal/testnet"
	"repro/internal/types"
	"repro/internal/wire"
)

func progCluster(t *testing.T, n int) ([]*testnet.Node, []*Manager) {
	t.Helper()
	mgrs := make([]*Manager, n)
	nodes := testnet.NewCluster(t, n, func(i int, node *testnet.Node) {
		mgrs[i] = New(node.Bus)
	})
	return nodes, mgrs
}

func TestNewProgramEmbedsSite(t *testing.T) {
	_, mgrs := progCluster(t, 2)
	p0 := mgrs[0].NewProgram()
	p1 := mgrs[1].NewProgram()
	if p0.StartSite() == p1.StartSite() {
		t.Fatal("programs from different sites share a start site")
	}
	if mgrs[0].NewProgram() == p0 {
		t.Fatal("sequential programs collide")
	}
}

func TestRegisterBroadcasts(t *testing.T) {
	_, mgrs := progCluster(t, 3)
	prog := mgrs[0].NewProgram()
	mgrs[0].Register(wire.ProgramRegister{
		Program:  prog,
		CodeHome: mgrs[0].bus.Self(),
		Frontend: mgrs[0].bus.Self(),
		Name:     "test",
	})
	for i, m := range mgrs {
		m := m
		testnet.WaitFor(t, "registration propagated", func() bool { return m.Known(prog) })
		if m.CodeHome(prog) != mgrs[0].bus.Self() {
			t.Errorf("site %d: CodeHome = %v", i, m.CodeHome(prog))
		}
		if m.Frontend(prog) != mgrs[0].bus.Self() {
			t.Errorf("site %d: Frontend = %v", i, m.Frontend(prog))
		}
	}
}

func TestUnknownProgramDefaults(t *testing.T) {
	_, mgrs := progCluster(t, 1)
	bogus := types.MakeProgramID(9, 9)
	if mgrs[0].Known(bogus) || mgrs[0].Terminated(bogus) {
		t.Fatal("unknown program misreported")
	}
	if mgrs[0].CodeHome(bogus) != types.InvalidSite || mgrs[0].Frontend(bogus) != types.InvalidSite {
		t.Fatal("unknown program has homes")
	}
}

func TestTerminateWakesWaiters(t *testing.T) {
	_, mgrs := progCluster(t, 2)
	prog := mgrs[0].NewProgram()
	mgrs[0].Register(wire.ProgramRegister{Program: prog, CodeHome: 1, Frontend: 1})
	testnet.WaitFor(t, "registered everywhere", func() bool { return mgrs[1].Known(prog) })

	type res struct {
		r  []byte
		ok bool
	}
	ch := make(chan res, 2)
	for _, m := range mgrs {
		m := m
		go func() {
			r, ok := m.WaitResult(prog, 10*time.Second)
			ch <- res{r, ok}
		}()
	}
	time.Sleep(30 * time.Millisecond)
	// Termination can be triggered on any site; broadcast reaches all.
	mgrs[1].Terminate(prog, []byte("done"))
	for i := 0; i < 2; i++ {
		got := <-ch
		if !got.ok || string(got.r) != "done" {
			t.Fatalf("waiter %d got (%q,%v)", i, got.r, got.ok)
		}
	}
	if !mgrs[0].Terminated(prog) || !mgrs[1].Terminated(prog) {
		t.Fatal("termination flag missing")
	}
}

func TestWaitResultAfterTermination(t *testing.T) {
	_, mgrs := progCluster(t, 1)
	prog := mgrs[0].NewProgram()
	mgrs[0].Terminate(prog, []byte("r"))
	r, ok := mgrs[0].WaitResult(prog, time.Second)
	if !ok || string(r) != "r" {
		t.Fatal("late waiter did not get result")
	}
}

func TestWaitResultTimeout(t *testing.T) {
	_, mgrs := progCluster(t, 1)
	prog := mgrs[0].NewProgram()
	if _, ok := mgrs[0].WaitResult(prog, 30*time.Millisecond); ok {
		t.Fatal("WaitResult returned for unfinished program")
	}
}

func TestTerminateIdempotent(t *testing.T) {
	_, mgrs := progCluster(t, 1)
	prog := mgrs[0].NewProgram()
	hooks := 0
	mgrs[0].OnTerminate(func(types.ProgramID, []byte) { hooks++ })
	mgrs[0].Terminate(prog, []byte("first"))
	mgrs[0].Terminate(prog, []byte("second"))
	if hooks != 1 {
		t.Fatalf("OnTerminate ran %d times", hooks)
	}
	r, _ := mgrs[0].WaitResult(prog, time.Second)
	if string(r) != "first" {
		t.Fatalf("result = %q, want the first", r)
	}
}

func TestEnsureKnownFetchesRegistration(t *testing.T) {
	_, mgrs := progCluster(t, 2)
	prog := mgrs[0].NewProgram()
	// Register only locally (no broadcast): simulate a site that joined
	// after the announcement.
	mgrs[0].mu.Lock()
	mgrs[0].table[prog] = &Entry{Reg: wire.ProgramRegister{
		Program: prog, CodeHome: mgrs[0].bus.Self(), Frontend: mgrs[0].bus.Self(), Name: "late",
	}}
	mgrs[0].mu.Unlock()

	if mgrs[1].Known(prog) {
		t.Fatal("site 1 knows the program prematurely")
	}
	mgrs[1].EnsureKnown(prog, mgrs[0].bus.Self())
	testnet.WaitFor(t, "lazy registration", func() bool { return mgrs[1].Known(prog) })
	if mgrs[1].CodeHome(prog) != mgrs[0].bus.Self() {
		t.Fatal("fetched registration wrong")
	}
}

func TestEnsureKnownIgnoresInvalidHint(t *testing.T) {
	_, mgrs := progCluster(t, 1)
	prog := types.MakeProgramID(7, 7)
	mgrs[0].EnsureKnown(prog, types.InvalidSite) // must not panic or hang
	time.Sleep(20 * time.Millisecond)
	if mgrs[0].Known(prog) {
		t.Fatal("program appeared from nowhere")
	}
}

func TestProgramsListsRunningOnly(t *testing.T) {
	_, mgrs := progCluster(t, 1)
	m := mgrs[0]
	p1 := m.NewProgram()
	p2 := m.NewProgram()
	m.Register(wire.ProgramRegister{Program: p1})
	m.Register(wire.ProgramRegister{Program: p2})
	m.Terminate(p1, nil)
	progs := m.Programs()
	if len(progs) != 1 || progs[0] != p2 {
		t.Fatalf("Programs = %v", progs)
	}
}
