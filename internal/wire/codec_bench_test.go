package wire

import (
	"fmt"
	"testing"

	"repro/internal/types"
)

// benchMessages returns a representative hot-path message set: the
// payloads that dominate cluster traffic (parameters, help grants,
// invalidation batches) rather than one of everything.
func benchMessages() []*Message {
	prog := types.MakeProgramID(1, 1)
	tid := types.ThreadID{Program: prog, Index: 2}
	addr := types.GlobalAddr{Home: 3, Local: 41}
	frame := NewMicroframe(addr, tid, 3, Target{Addr: addr, Slot: 0})
	frame.Filled[0] = true
	frame.Params[0] = make([]byte, 64)

	addrs := make([]types.GlobalAddr, 16)
	for i := range addrs {
		addrs[i] = types.GlobalAddr{Home: 3, Local: uint64(i + 1)}
	}

	payloads := []Payload{
		&ApplyParam{Dst: Target{Addr: addr, Slot: 1}, Data: make([]byte, 128)},
		&HelpReply{Frames: []*Microframe{frame, frame.Clone(), frame.Clone(), frame.Clone()}},
		&MemInvalidateBatch{Addrs: addrs},
		&MemWrite{Addr: addr, Offset: 16, Data: make([]byte, 256)},
		&MemReadReplica{Addr: addr},
		&MemReplicaData{Found: true, Version: 9, Data: make([]byte, 256)},
	}
	out := make([]*Message, len(payloads))
	for i, p := range payloads {
		out[i] = &Message{Src: 1, Dst: 2, SrcMgr: types.MgrMemory,
			DstMgr: types.MgrMemory, Seq: uint64(i + 1), Payload: p}
	}
	return out
}

// BenchmarkEncode exercises the production encode path: a pooled
// Writer per message, released after the bytes are consumed. The CI
// allocation gate requires 0 allocs/op here.
func BenchmarkEncode(b *testing.B) {
	for _, m := range benchMessages() {
		b.Run(m.Payload.Kind().String(), func(b *testing.B) {
			// Warm the buffer pools so the first iterations' pool
			// misses don't smear into the per-op averages.
			w := GetWriter(0)
			m.Encode(w)
			w.Release()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := GetWriter(0)
				m.Encode(w)
				w.Release()
			}
		})
	}
}

// BenchmarkDecode exercises the zero-allocation decode path (Decoder
// with reused scratch and aliasing views). The CI allocation gate
// requires 0 allocs/op here.
func BenchmarkDecode(b *testing.B) {
	for _, m := range benchMessages() {
		buf := m.EncodeBytes()
		b.Run(m.Payload.Kind().String(), func(b *testing.B) {
			d := NewDecoder()
			if _, err := d.Decode(buf); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Decode(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecodeMaterialize tracks the bus-facing materializing decode
// for the trajectory log; it allocates by design (the bus retains what
// it decodes) and the gate only insists allocs/op never grow.
func BenchmarkDecodeMaterialize(b *testing.B) {
	for _, m := range benchMessages() {
		buf := m.EncodeBytes()
		b.Run(m.Payload.Kind().String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := DecodeBytes(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestHelpReplyBatchRoundTrip pins the batched help-reply codec beyond
// the generic sample sweep: empty, single and multi-frame batches must
// round-trip exactly, and CantHelp must carry no frame list.
func TestHelpReplyBatchRoundTrip(t *testing.T) {
	prog := types.MakeProgramID(2, 5)
	tid := types.ThreadID{Program: prog, Index: 0}
	mk := func(n int) []*Microframe {
		out := make([]*Microframe, n)
		for i := range out {
			out[i] = NewMicroframe(types.GlobalAddr{Home: 1, Local: uint64(i + 1)}, tid, 0)
		}
		return out
	}
	for n := 0; n <= 5; n++ {
		p := &HelpReply{Frames: mk(n)}
		if n == 0 {
			p.Frames = nil
		}
		w := NewWriter(0)
		p.MarshalWire(w)
		q := &HelpReply{}
		r := NewReader(w.Bytes())
		q.UnmarshalWire(r)
		if r.Err() != nil {
			t.Fatalf("n=%d: decode: %v", n, r.Err())
		}
		if len(q.Frames) != n {
			t.Fatalf("n=%d: got %d frames back", n, len(q.Frames))
		}
		for i, f := range q.Frames {
			if f.ID != p.Frames[i].ID {
				t.Fatalf("n=%d: frame %d id %v, want %v", n, i, f.ID, p.Frames[i].ID)
			}
		}
	}
	cant := &HelpReply{CantHelp: true}
	w := NewWriter(0)
	cant.MarshalWire(w)
	if len(w.Bytes()) != 1 {
		t.Fatalf("CantHelp encoding = %d bytes, want 1", len(w.Bytes()))
	}
}

// TestMemInvalidateBatchRoundTrip pins the batch-invalidation codec,
// including the empty batch and a large one.
func TestMemInvalidateBatchRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 3, 100} {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			p := &MemInvalidateBatch{}
			for i := 0; i < n; i++ {
				p.Addrs = append(p.Addrs, types.GlobalAddr{Home: types.SiteID(i % 7), Local: uint64(i)})
			}
			w := NewWriter(0)
			p.MarshalWire(w)
			q := &MemInvalidateBatch{}
			r := NewReader(w.Bytes())
			q.UnmarshalWire(r)
			if r.Err() != nil {
				t.Fatalf("decode: %v", r.Err())
			}
			if len(q.Addrs) != len(p.Addrs) {
				t.Fatalf("got %d addrs, want %d", len(q.Addrs), len(p.Addrs))
			}
			for i := range p.Addrs {
				if q.Addrs[i] != p.Addrs[i] {
					t.Fatalf("addr %d: %v != %v", i, q.Addrs[i], p.Addrs[i])
				}
			}
		})
	}
}
