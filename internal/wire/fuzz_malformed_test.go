package wire

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/types"
)

// This file fuzzes Decode with raw hostile bytes rather than round-trips:
// the property under test is not codec fidelity (FuzzDecode covers that)
// but resource safety — a peer-controlled length prefix must never make
// the decoder panic or allocate far beyond the datagram it was handed.
// The crafted seeds below are the exact shapes the wiretaint analyzer
// flagged before every decode loop was moved onto Reader.SliceLen.

// rawMsg frames payload bytes under numeric kind k behind a well-formed
// header, so the fuzzer's hostile bytes start at the payload parser
// instead of dying in the header read.
func rawMsg(k uint16, payload []byte) []byte {
	w := NewWriter(headerSize + len(payload))
	w.SiteID(1)
	w.SiteID(2)
	w.Uint8(uint8(types.MgrScheduling))
	w.Uint8(uint8(types.MgrMemory))
	w.Uint64(7)
	w.Uint64(0)
	w.Uint16(k)
	w.buf = append(w.buf, payload...)
	return w.Bytes()
}

func le32(v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return b[:]
}

// malformedSeeds returns the corpus: one valid encoding of every
// registered kind, plus hand-built messages whose length prefixes claim
// counts worth gigabytes while carrying almost no bytes.
func malformedSeeds() map[string][]byte {
	seeds := make(map[string][]byte)
	for _, p := range samplePayloads() {
		m := &Message{Src: 1, Dst: 2, SrcMgr: types.MgrScheduling,
			DstMgr: types.MgrMemory, Seq: 9, Payload: p}
		seeds[fmt.Sprintf("valid-kind-%d", p.Kind())] = m.EncodeBytes()
	}
	// MemMigrate: object count 0x0FFFFFFF × 32-byte records ≈ 8 GiB.
	seeds["memmigrate-huge-count"] = rawMsg(uint16(KindMemMigrate), le32(0x0FFFFFFF))
	// UsageReply: site count 0x0FFFFFFF × 60-byte records ≈ 15 GiB.
	seeds["usagereply-huge-count"] = rawMsg(uint16(KindUsageReply), le32(0x0FFFFFFF))
	// SignOnReply: assigned site, then a cluster list claiming 2^28 entries.
	seeds["signonreply-huge-cluster"] = rawMsg(uint16(KindSignOnReply),
		append(le32(5), le32(0x0FFFFFFF)...))
	// FramePush: 30 bytes of microframe prefix (ID 12 + Thread 12 +
	// prio 2 + hint 4), then an arity of 2^28 parameter slots.
	seeds["framepush-huge-arity"] = rawMsg(uint16(KindFramePush),
		append(make([]byte, 30), le32(0x0FFFFFFF)...))
	// MemWrite: Addr 12 + Offset 4, then a Bytes32 length of ~256 MiB
	// with no bytes behind it.
	seeds["memwrite-huge-data"] = rawMsg(uint16(KindMemWrite),
		append(make([]byte, 16), le32(0x0FFFFFF0)...))
	// MetricsReply: sample count 2^28 × 12-byte samples ≈ 3 GiB.
	seeds["metricsreply-huge-count"] = rawMsg(uint16(KindMetricsReply), le32(0x0FFFFFFF))
	// GossipDigest: From 4 + Round 4, then an entry count of 2^28
	// 29-byte rows ≈ 7.8 GiB with no bytes behind it.
	seeds["gossipdigest-huge-count"] = rawMsg(uint16(KindGossipDigest),
		append(make([]byte, 8), le32(0x0FFFFFFF)...))
	// MemReplicaData: Found=1, Redirect=0, Version 8, then a Bytes32
	// length of ~256 MiB with no bytes behind it.
	seeds["memreplicadata-huge-data"] = rawMsg(uint16(KindMemReplicaData),
		append(append([]byte{1}, make([]byte, 12)...), le32(0x0FFFFFF0)...))
	// MemHeatTransfer: Addr 12, then a heat-table count of 2^28
	// 8-byte (site, heat) pairs ≈ 2 GiB with no bytes behind it.
	seeds["memheattransfer-huge-count"] = rawMsg(uint16(KindMemHeatTransfer),
		append(make([]byte, 12), le32(0x0FFFFFFF)...))
	seeds["empty"] = []byte{}
	seeds["truncated-header"] = []byte{1, 2, 3, 4, 5}
	seeds["unknown-kind"] = rawMsg(0xFFFF, nil)
	seeds["kind-invalid-trailing"] = rawMsg(uint16(KindInvalid), []byte{0xAA, 0xBB})
	return seeds
}

// FuzzDecodeMalformed pins the decoder's resource discipline: on any
// input it must not panic, must not allocate slices wildly larger than
// the input (every count is validated against Reader.Remaining before
// it sizes a make), and anything it accepts must re-encode into no more
// bytes than it was decoded from.
func FuzzDecodeMalformed(f *testing.F) {
	for _, seed := range malformedSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // transport clamps datagrams long before this
		}
		// A decode may allocate the message, its payload struct, and
		// copies of the payload's variable-length fields — all bounded
		// by a small multiple of the input. The generous factor plus
		// fixed slack keeps incidental runtime allocation out of the
		// verdict while still catching a length-prefix make by orders
		// of magnitude. Retries absorb concurrent-allocation flakes.
		allowed := 64*uint64(len(data)) + 1<<16
		var (
			m     *Message
			err   error
			spent uint64
		)
		ok := false
		for attempt := 0; attempt < 3 && !ok; attempt++ {
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			m, err = DecodeBytes(data)
			runtime.ReadMemStats(&after)
			spent = after.TotalAlloc - before.TotalAlloc
			ok = spent <= allowed
		}
		if !ok {
			t.Fatalf("decoding %d bytes allocated %d bytes (allowed %d): length prefix not validated against remaining input",
				len(data), spent, allowed)
		}
		if err != nil {
			return // rejected: fine
		}
		// Accepted: the canonical re-encoding covers exactly the bytes
		// the decoder consumed, so it can never exceed the input.
		if n := len(m.EncodeBytes()); n > len(data) {
			t.Fatalf("decoded %d-byte input re-encodes to %d bytes: decoder invented data", len(data), n)
		}
	})
}

// TestWriteMalformedCorpus regenerates the committed seed corpus under
// testdata/fuzz/FuzzDecodeMalformed. Run with WRITE_FUZZ_CORPUS=1 after
// changing malformedSeeds or the wire format; otherwise it only checks
// the committed files are in sync with the generator.
func TestWriteMalformedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeMalformed")
	write := os.Getenv("WRITE_FUZZ_CORPUS") != ""
	if write {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for name, seed := range malformedSeeds() {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
		path := filepath.Join(dir, name)
		if write {
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("corpus seed %s missing (regenerate with WRITE_FUZZ_CORPUS=1): %v", name, err)
			continue
		}
		if string(got) != body {
			t.Errorf("corpus seed %s out of sync with malformedSeeds (regenerate with WRITE_FUZZ_CORPUS=1)", name)
		}
	}
}
