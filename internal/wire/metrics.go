package wire

import "repro/internal/types"

// ---------------------------------------------------------------------------
// Metrics payloads. The paper's site manager "provides the functionality to
// query the status of the local site" (§4); MetricsQuery extends that to the
// counter/histogram registry so one site can aggregate the whole cluster's
// statistics over the ordinary message bus (sdvmstat -metrics).

func init() {
	register(KindMetricsQuery, func() Payload { return &MetricsQuery{} })
	register(KindMetricsReply, func() Payload { return &MetricsReply{} })
}

// MetricSample is one named value from a site's metrics registry.
// Histograms arrive pre-flattened (name.count, name.sum_ns, name.le.*), so
// aggregation is a sum over equal names.
type MetricSample struct {
	Name  string
	Value int64
}

// MetricsQuery asks the site manager for a snapshot of the local metrics
// registry.
type MetricsQuery struct{}

func (*MetricsQuery) Kind() Kind { return KindMetricsQuery }

func (p *MetricsQuery) MarshalWire(w *Writer) {}

func (p *MetricsQuery) UnmarshalWire(r *Reader) {}

// MetricsReply carries the snapshot. Samples is empty when the queried site
// runs without a registry.
type MetricsReply struct {
	Site    types.SiteID
	Samples []MetricSample
}

func (*MetricsReply) Kind() Kind { return KindMetricsReply }

func (p *MetricsReply) MarshalWire(w *Writer) {
	w.SiteID(p.Site)
	w.Uint32(uint32(len(p.Samples)))
	for i := range p.Samples {
		w.String(p.Samples[i].Name)
		w.Int64(p.Samples[i].Value)
	}
}

func (p *MetricsReply) UnmarshalWire(r *Reader) {
	p.Site = r.SiteID()
	n := r.SliceLen(metricSampleWireSize, "metrics-reply sample count")
	p.Samples = grow(p.Samples, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		p.Samples[i].Name = r.String()
		p.Samples[i].Value = r.Int64()
	}
}
