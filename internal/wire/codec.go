// Package wire implements the SDVM's on-the-wire message format, the
// SDMessage (paper §4, message manager).
//
// An SDMessage is addressed manager-to-manager: its header carries the
// source and destination site ids and manager ids, a sequence number for
// request/reply correlation, and a payload kind tag. Payloads are encoded
// with an explicit little-endian binary codec — no reflection — so the
// format is deterministic, platform-independent, and cheap enough that
// serialization does not dominate the small messages the SDVM exchanges
// (the paper notes TCP setup overhead already dominates; the encoding must
// not add to it).
//
// The hot path is allocation-free: Writers draw pooled, size-classed
// buffers (GetWriter/Release, pool.go) and write with ensure-then-put
// primitives instead of append, and Decoder (message.go) reuses one
// scratch payload per kind with Reader views into the input buffer. The
// allocfree analyzer enforces this with an empty baseline; the CI bench
// job enforces 0 allocs/op on BenchmarkEncode/BenchmarkDecode.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/types"
)

// maxSliceLen bounds decoded slice lengths to keep a corrupt or malicious
// length prefix from provoking a huge allocation.
const maxSliceLen = 1 << 28

// Writer serializes values into a growing byte buffer. The zero value is
// ready to use. Writer never fails; the buffer grows as needed. Pooled
// Writers come from GetWriter and return their storage via Release.
type Writer struct {
	buf []byte
	pb  *pbuf // pooled backing storage; nil for unpooled writers
}

// NewWriter returns an unpooled Writer with the given initial capacity.
// Hot-path callers use GetWriter instead.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer. The slice aliases the Writer's
// internal storage and is invalidated by further writes — and, for
// pooled Writers, by Release.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset clears the buffer, retaining capacity.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// room extends the buffer by n bytes and returns the offset the caller
// writes at. This is the single growth point of the writer: everything
// else is a bounds-checked copy into already-owned storage.
func (w *Writer) room(n int) int {
	off := len(w.buf)
	if off+n > cap(w.buf) {
		w.grow(off + n)
	}
	w.buf = w.buf[:off+n]
	return off
}

// grow swaps the contents into a larger pooled buffer. Doubling keeps
// the number of swaps logarithmic; the outgrown buffer goes straight
// back to its pool.
func (w *Writer) grow(need int) {
	if need < 2*cap(w.buf) {
		need = 2 * cap(w.buf)
	}
	npb := getBuf(need)
	nb := npb.b[:len(w.buf)]
	copy(nb, w.buf)
	w.buf = nb
	putBuf(w.pb)
	w.pb = npb
}

// Reserve ensures at least n spare bytes of capacity beyond the current
// length, growing (and re-pooling) as needed. The length is unchanged.
// The network manager uses this to guarantee in-place seal headroom.
func (w *Writer) Reserve(n int) {
	if len(w.buf)+n > cap(w.buf) {
		w.grow(len(w.buf) + n)
	}
}

// Uint8 appends one byte.
func (w *Writer) Uint8(v uint8) {
	off := w.room(1)
	w.buf[off] = v
}

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.Uint8(1)
	} else {
		w.Uint8(0)
	}
}

// Uint16 appends a little-endian uint16.
func (w *Writer) Uint16(v uint16) {
	off := w.room(2)
	binary.LittleEndian.PutUint16(w.buf[off:], v)
}

// Uint32 appends a little-endian uint32.
func (w *Writer) Uint32(v uint32) {
	off := w.room(4)
	binary.LittleEndian.PutUint32(w.buf[off:], v)
}

// Uint64 appends a little-endian uint64.
func (w *Writer) Uint64(v uint64) {
	off := w.room(8)
	binary.LittleEndian.PutUint64(w.buf[off:], v)
}

// Uint32BE appends a big-endian uint32. Envelope framing (netmgr batch
// records, transport length prefixes) is big-endian by convention;
// message payloads stay little-endian.
func (w *Writer) Uint32BE(v uint32) {
	off := w.room(4)
	binary.BigEndian.PutUint32(w.buf[off:], v)
}

// Int16 appends a little-endian int16.
func (w *Writer) Int16(v int16) { w.Uint16(uint16(v)) }

// Int32 appends a little-endian int32.
func (w *Writer) Int32(v int32) { w.Uint32(uint32(v)) }

// Int64 appends a little-endian int64.
func (w *Writer) Int64(v int64) { w.Uint64(uint64(v)) }

// Float64 appends an IEEE-754 double.
func (w *Writer) Float64(v float64) { w.Uint64(math.Float64bits(v)) }

// Raw appends b verbatim, with no length prefix. Envelope assembly uses
// this for pre-encoded records.
func (w *Writer) Raw(b []byte) {
	off := w.room(len(b))
	copy(w.buf[off:], b)
}

// Zero appends n zero bytes (e.g. seal-prefix headroom).
func (w *Writer) Zero(n int) {
	off := w.room(n)
	clear(w.buf[off:])
}

// Bytes32 appends a uint32 length prefix followed by the bytes. A nil
// slice and an empty slice encode identically.
func (w *Writer) Bytes32(b []byte) {
	w.Uint32(uint32(len(b)))
	w.Raw(b)
}

// String appends a uint32 length prefix followed by the string bytes.
func (w *Writer) String(s string) {
	w.Uint32(uint32(len(s)))
	off := w.room(len(s))
	copy(w.buf[off:], s)
}

// SiteID appends a logical site id.
func (w *Writer) SiteID(s types.SiteID) { w.Uint32(uint32(s)) }

// ProgramID appends a program id.
func (w *Writer) ProgramID(p types.ProgramID) { w.Uint64(uint64(p)) }

// ThreadID appends a microthread id.
func (w *Writer) ThreadID(t types.ThreadID) {
	w.ProgramID(t.Program)
	w.Uint32(t.Index)
}

// Addr appends a global memory address.
func (w *Writer) Addr(a types.GlobalAddr) {
	w.SiteID(a.Home)
	w.Uint64(a.Local)
}

// decodeError is the Reader's allocation-free error value: it lives
// inside the Reader itself and is filled in without fmt on the failure
// path. Formatting happens lazily in Error, which only runs when
// somebody prints the error.
type decodeError struct {
	what string
	off  int
}

func (e *decodeError) Error() string {
	return fmt.Sprintf("%v: truncated %s at offset %d", types.ErrBadMessage, e.what, e.off)
}

func (e *decodeError) Unwrap() error { return types.ErrBadMessage }

// Reader decodes values from a byte buffer. Errors are sticky: after the
// first failure every subsequent read returns the zero value and Err()
// keeps reporting the failure, so calling code can decode a whole struct
// and check the error once.
//
// A Reader in alias mode (used by Decoder) returns byte slices that
// view the input buffer instead of copies; see Bytes32.
type Reader struct {
	buf   []byte
	off   int
	err   error
	alias bool
	errv  decodeError
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error, or nil. For Readers embedded in
// a reused Decoder the error is valid until the next Decode call.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.errv = decodeError{what: what, off: r.off}
		r.err = &r.errv
	}
}

func (r *Reader) take(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) || n < 0 {
		r.fail(what)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Uint8 reads one byte.
func (r *Reader) Uint8() uint8 {
	b := r.take(1, "uint8")
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.Uint8() != 0 }

// Uint16 reads a little-endian uint16.
func (r *Reader) Uint16() uint16 {
	b := r.take(2, "uint16")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// Uint32 reads a little-endian uint32.
func (r *Reader) Uint32() uint32 {
	b := r.take(4, "uint32")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Uint64 reads a little-endian uint64.
func (r *Reader) Uint64() uint64 {
	b := r.take(8, "uint64")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int16 reads a little-endian int16.
func (r *Reader) Int16() int16 { return int16(r.Uint16()) }

// Int32 reads a little-endian int32.
func (r *Reader) Int32() int32 { return int32(r.Uint32()) }

// Int64 reads a little-endian int64.
func (r *Reader) Int64() int64 { return int64(r.Uint64()) }

// Float64 reads an IEEE-754 double.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

// Bytes32 reads a uint32-length-prefixed byte slice. An empty slice
// decodes as nil. In the default mode the result is a copy, safe to
// retain; in alias mode (Decoder) it is a capacity-clamped view of the
// input buffer, valid only as long as the buffer is.
func (r *Reader) Bytes32() []byte {
	n := r.Uint32()
	if n == 0 {
		return nil
	}
	if n > maxSliceLen {
		r.fail("bytes length")
		return nil
	}
	b := r.take(int(n), "bytes body")
	if b == nil {
		return nil
	}
	if r.alias {
		return b[:n:n]
	}
	//sdvmlint:allow allocfree -- copy branch: at run time the hotpath root (Decoder.Decode) always sets alias and takes the view branch; only the materializing Decode, whose output is retained, copies
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String reads a uint32-length-prefixed string.
func (r *Reader) String() string {
	n := r.Uint32()
	if n == 0 {
		return ""
	}
	if n > maxSliceLen {
		r.fail("string length")
		return ""
	}
	b := r.take(int(n), "string body")
	//sdvmlint:allow allocfree -- Go strings are immutable, so decoding one costs a copy by definition; none of the hot message kinds (ApplyParam, HelpReply, MemWrite, MemInvalidateBatch) carry strings
	return string(b)
}

// SliceLen reads a uint32 element count and validates it against the
// bytes remaining in the buffer: a well-formed encoding carries at
// least elemSize bytes per element, so any larger count is a corrupt or
// malicious length prefix, failed here — before the caller allocates.
// This is the only sanctioned way to size a slice from wire data; the
// wiretaint analyzer treats its result as clean.
func (r *Reader) SliceLen(elemSize int, what string) int {
	n := r.Uint32()
	if r.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if int64(n)*int64(elemSize) > int64(r.Remaining()) {
		r.fail(what + " count")
		return 0
	}
	return int(n)
}

// SiteID reads a logical site id.
func (r *Reader) SiteID() types.SiteID { return types.SiteID(r.Uint32()) }

// ProgramID reads a program id.
func (r *Reader) ProgramID() types.ProgramID { return types.ProgramID(r.Uint64()) }

// ThreadID reads a microthread id.
func (r *Reader) ThreadID() types.ThreadID {
	return types.ThreadID{Program: r.ProgramID(), Index: r.Uint32()}
}

// Addr reads a global memory address.
func (r *Reader) Addr() types.GlobalAddr {
	return types.GlobalAddr{Home: r.SiteID(), Local: r.Uint64()}
}

// grow returns s with length n, reusing the backing array when it is
// large enough. Slots between the old and new length keep their previous
// contents (a new backing array is zeroed); decode loops overwrite every
// live element, and pointer-slice decoders reuse the surviving pointees.
// In a reused Decoder this allocates only until a payload's high-water
// size is reached.
func grow[T any](s []T, n int) []T {
	if n <= cap(s) {
		return s[:n]
	}
	//sdvmlint:allow allocfree -- grows once to the payload's high-water element count; steady-state decode reuses the backing array
	return make([]T, n)
}

// growFrames is grow for []*Microframe, additionally ensuring every slot
// holds a reusable frame instance.
func growFrames(s []*Microframe, n int) []*Microframe {
	s = grow(s, n)
	for i := range s {
		if s[i] == nil {
			//sdvmlint:allow allocfree -- fills empty frame slots once; steady-state decode reuses the instances
			s[i] = new(Microframe)
		}
	}
	return s
}
