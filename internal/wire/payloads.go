package wire

import "repro/internal/types"

// This file defines every payload type in the SDVM protocol, grouped by
// owning manager, together with its wire encoding. Each type registers a
// decode factory in init.

func init() {
	register(KindSignOnRequest, func() Payload { return &SignOnRequest{} })
	register(KindSignOnReply, func() Payload { return &SignOnReply{} })
	register(KindSiteAnnounce, func() Payload { return &SiteAnnounce{} })
	register(KindSignOffNotice, func() Payload { return &SignOffNotice{} })
	register(KindLoadReport, func() Payload { return &LoadReport{} })
	register(KindIDBlockRequest, func() Payload { return &IDBlockRequest{} })
	register(KindIDBlockReply, func() Payload { return &IDBlockReply{} })
	register(KindPing, func() Payload { return &Ping{} })
	register(KindPong, func() Payload { return &Pong{} })

	register(KindHelpRequest, func() Payload { return &HelpRequest{} })
	register(KindHelpReply, func() Payload { return &HelpReply{} })
	register(KindFramePush, func() Payload { return &FramePush{} })

	register(KindApplyParam, func() Payload { return &ApplyParam{} })
	register(KindMemRead, func() Payload { return &MemRead{} })
	register(KindMemReadReply, func() Payload { return &MemReadReply{} })
	register(KindMemWrite, func() Payload { return &MemWrite{} })
	register(KindMemWriteAck, func() Payload { return &MemWriteAck{} })
	register(KindMemMigrate, func() Payload { return &MemMigrate{} })
	register(KindHomeUpdate, func() Payload { return &HomeUpdate{} })
	register(KindFrameRelocate, func() Payload { return &FrameRelocate{} })

	register(KindCodeRequest, func() Payload { return &CodeRequest{} })
	register(KindCodeReply, func() Payload { return &CodeReply{} })
	register(KindCodePublish, func() Payload { return &CodePublish{} })

	register(KindIORequest, func() Payload { return &IORequest{} })
	register(KindIOReply, func() Payload { return &IOReply{} })
	register(KindFrontendOutput, func() Payload { return &FrontendOutput{} })

	register(KindProgramRegister, func() Payload { return &ProgramRegister{} })
	register(KindProgramTerminated, func() Payload { return &ProgramTerminated{} })
	register(KindProgramQuery, func() Payload { return &ProgramQuery{} })
	register(KindProgramInfo, func() Payload { return &ProgramInfo{} })

	register(KindCheckpointStore, func() Payload { return &CheckpointStore{} })
	register(KindCheckpointAck, func() Payload { return &CheckpointAck{} })
	register(KindCrashNotice, func() Payload { return &CrashNotice{} })
	register(KindRecoverRequest, func() Payload { return &RecoverRequest{} })
	//sdvmlint:allow wiredispatch -- pull-path reply: production recovery is push-based (the checkpoint holder restores); the pull protocol is exercised by the recovery tests
	register(KindRecoverReply, func() Payload { return &RecoverReply{} })

	register(KindError, func() Payload { return &ErrorReply{} })
	register(KindBarrier, func() Payload { return &Barrier{} })
}

// ---------------------------------------------------------------------------
// Cluster manager payloads (paper §3.4, §4).

// SignOnRequest announces a joining site to a site already in the cluster
// ("with the help request, site A gives information about itself").
type SignOnRequest struct {
	PhysAddr string           // where the network manager listens
	Platform types.PlatformID // simulated platform type
	Speed    float64          // relative processing speed
	Reliable bool             // joins the reliable core (paper §2.2)
}

func (*SignOnRequest) Kind() Kind { return KindSignOnRequest }

func (p *SignOnRequest) MarshalWire(w *Writer) {
	w.String(p.PhysAddr)
	w.Uint16(uint16(p.Platform))
	w.Float64(p.Speed)
	w.Bool(p.Reliable)
}

func (p *SignOnRequest) UnmarshalWire(r *Reader) {
	p.PhysAddr = r.String()
	p.Platform = types.PlatformID(r.Uint16())
	p.Speed = r.Float64()
	p.Reliable = r.Bool()
}

// SignOnReply assigns the new site its unique logical id and a snapshot of
// the current cluster composition. Gossip reports the cluster's
// dissemination mode: membership is a cluster-wide property, so the
// joiner adopts whatever the contact reports instead of trusting its own
// configuration.
type SignOnReply struct {
	Assigned types.SiteID
	Gossip   bool
	Cluster  []types.SiteInfo
}

func (*SignOnReply) Kind() Kind { return KindSignOnReply }

func (p *SignOnReply) MarshalWire(w *Writer) {
	w.SiteID(p.Assigned)
	w.Bool(p.Gossip)
	w.Uint32(uint32(len(p.Cluster)))
	for i := range p.Cluster {
		marshalSiteInfo(w, &p.Cluster[i])
	}
}

func (p *SignOnReply) UnmarshalWire(r *Reader) {
	p.Assigned = r.SiteID()
	p.Gossip = r.Bool()
	n := r.SliceLen(siteInfoWireSize, "cluster list")
	p.Cluster = grow(p.Cluster, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		p.Cluster[i] = unmarshalSiteInfo(r)
	}
}

// SiteAnnounce propagates knowledge of a site "by and by" (paper §3.4):
// whenever two sites talk, they can piggyback entries the peer may lack.
type SiteAnnounce struct {
	Sites []types.SiteInfo
}

func (*SiteAnnounce) Kind() Kind { return KindSiteAnnounce }

func (p *SiteAnnounce) MarshalWire(w *Writer) {
	w.Uint32(uint32(len(p.Sites)))
	for i := range p.Sites {
		marshalSiteInfo(w, &p.Sites[i])
	}
}

func (p *SiteAnnounce) UnmarshalWire(r *Reader) {
	n := r.SliceLen(siteInfoWireSize, "announce list")
	p.Sites = grow(p.Sites, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		p.Sites[i] = unmarshalSiteInfo(r)
	}
}

// SignOffNotice announces a controlled sign-off (paper §3.4): after
// relocating its frames and memory the leaving site tells the cluster.
type SignOffNotice struct {
	Leaving types.SiteID
}

func (*SignOffNotice) Kind() Kind { return KindSignOffNotice }

func (p *SignOffNotice) MarshalWire(w *Writer) { w.SiteID(p.Leaving) }

func (p *SignOffNotice) UnmarshalWire(r *Reader) { p.Leaving = r.SiteID() }

// LoadReport refreshes a site's statistics in peers' cluster lists; the
// cluster manager uses these to choose help-request targets (paper §4).
type LoadReport struct {
	Site     types.SiteID
	Load     float64
	QueueLen int32
	Programs int32
}

func (*LoadReport) Kind() Kind { return KindLoadReport }

func (p *LoadReport) MarshalWire(w *Writer) {
	w.SiteID(p.Site)
	w.Float64(p.Load)
	w.Int32(p.QueueLen)
	w.Int32(p.Programs)
}

func (p *LoadReport) UnmarshalWire(r *Reader) {
	p.Site = r.SiteID()
	p.Load = r.Float64()
	p.QueueLen = r.Int32()
	p.Programs = r.Int32()
}

// IDBlockRequest asks an id server for a contingent of free logical ids
// (paper §4, cluster manager: "provide several site id servers, which are
// given a contingent of free ids").
type IDBlockRequest struct {
	Want uint32 // number of ids requested
}

func (*IDBlockRequest) Kind() Kind { return KindIDBlockRequest }

func (p *IDBlockRequest) MarshalWire(w *Writer) { w.Uint32(p.Want) }

func (p *IDBlockRequest) UnmarshalWire(r *Reader) { p.Want = r.Uint32() }

// IDBlockReply grants a half-open range [First, First+Count) of logical ids.
type IDBlockReply struct {
	First types.SiteID
	Count uint32
}

func (*IDBlockReply) Kind() Kind { return KindIDBlockReply }

func (p *IDBlockReply) MarshalWire(w *Writer) {
	w.SiteID(p.First)
	w.Uint32(p.Count)
}

func (p *IDBlockReply) UnmarshalWire(r *Reader) {
	p.First = r.SiteID()
	p.Count = r.Uint32()
}

// Ping is a liveness probe from the crash-detection heartbeat ([4]).
type Ping struct {
	Nonce uint64
}

func (*Ping) Kind() Kind { return KindPing }

func (p *Ping) MarshalWire(w *Writer) { w.Uint64(p.Nonce) }

func (p *Ping) UnmarshalWire(r *Reader) { p.Nonce = r.Uint64() }

// Pong answers a Ping, carrying the same nonce.
type Pong struct {
	Nonce uint64
}

func (*Pong) Kind() Kind { return KindPong }

func (p *Pong) MarshalWire(w *Writer) { w.Uint64(p.Nonce) }

func (p *Pong) UnmarshalWire(r *Reader) { p.Nonce = r.Uint64() }

// ---------------------------------------------------------------------------
// Scheduling manager payloads (paper §3.3, §4).

// HelpRequest is an idle site's plea for work: "the scheduling manager
// will then contact other sites to request executable microframes".
type HelpRequest struct {
	Requester types.SiteID
	Load      float64 // requester's load, for the peer's cluster list
	Speed     float64 // requester's relative speed
}

func (*HelpRequest) Kind() Kind { return KindHelpRequest }

func (p *HelpRequest) MarshalWire(w *Writer) {
	w.SiteID(p.Requester)
	w.Float64(p.Load)
	w.Float64(p.Speed)
}

func (p *HelpRequest) UnmarshalWire(r *Reader) {
	p.Requester = r.SiteID()
	p.Load = r.Float64()
	p.Speed = r.Float64()
}

// HelpReply answers a HelpRequest: either a batch of executable
// microframes or a can't-help flag (paper §4). Carrying several frames
// per round-trip amortizes the request latency when the granter's queue
// is deep (bulk work transfer, as in work-stealing VMs).
type HelpReply struct {
	CantHelp bool
	Frames   []*Microframe // non-empty when CantHelp is false
}

func (*HelpReply) Kind() Kind { return KindHelpReply }

func (p *HelpReply) MarshalWire(w *Writer) {
	w.Bool(p.CantHelp)
	if p.CantHelp {
		return
	}
	w.Uint32(uint32(len(p.Frames)))
	for _, f := range p.Frames {
		f.MarshalWire(w)
	}
}

func (p *HelpReply) UnmarshalWire(r *Reader) {
	p.CantHelp = r.Bool()
	if p.CantHelp {
		p.Frames = p.Frames[:0]
		return
	}
	n := r.SliceLen(microframeWireSize, "help reply batch")
	p.Frames = growFrames(p.Frames, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		p.Frames[i].UnmarshalWire(r)
	}
}

// FramePush proactively migrates an executable microframe to another site
// (load balancing, sign-off relocation of executable frames).
type FramePush struct {
	Frame *Microframe
}

func (*FramePush) Kind() Kind { return KindFramePush }

func (p *FramePush) MarshalWire(w *Writer) { p.Frame.MarshalWire(w) }

func (p *FramePush) UnmarshalWire(r *Reader) {
	if p.Frame == nil {
		//sdvmlint:allow allocfree -- fills the reusable frame slot once; steady-state decode reuses the instance
		p.Frame = &Microframe{}
	}
	p.Frame.UnmarshalWire(r)
}

// ---------------------------------------------------------------------------
// Attraction memory payloads (paper §3.1, §4).

// ApplyParam delivers one microthread result to a waiting microframe's
// parameter slot — the SDVM's fundamental dataflow message.
type ApplyParam struct {
	Dst  Target
	Data []byte
}

func (*ApplyParam) Kind() Kind { return KindApplyParam }

func (p *ApplyParam) MarshalWire(w *Writer) {
	p.Dst.marshal(w)
	w.Bytes32(p.Data)
}

func (p *ApplyParam) UnmarshalWire(r *Reader) {
	p.Dst.unmarshal(r)
	p.Data = r.Bytes32()
}

// MemRead asks for the current contents of a memory object. Sent first to
// the object's homesite (decoded from the address); the homesite either
// answers or redirects to the current owner.
type MemRead struct {
	Addr    types.GlobalAddr
	Migrate bool // true = attract the object here (write intent), false = copy
}

func (*MemRead) Kind() Kind { return KindMemRead }

func (p *MemRead) MarshalWire(w *Writer) {
	w.Addr(p.Addr)
	w.Bool(p.Migrate)
}

func (p *MemRead) UnmarshalWire(r *Reader) {
	p.Addr = r.Addr()
	p.Migrate = r.Bool()
}

// MemReadReply answers MemRead: the object, a redirect to its current
// owner, or not-found.
type MemReadReply struct {
	Found    bool
	Redirect types.SiteID // nonzero: ask this site instead
	Object   MemObject    // valid when Found and Redirect==0
}

func (*MemReadReply) Kind() Kind { return KindMemReadReply }

func (p *MemReadReply) MarshalWire(w *Writer) {
	w.Bool(p.Found)
	w.SiteID(p.Redirect)
	if p.Found && p.Redirect == types.InvalidSite {
		p.Object.marshal(w)
	}
}

func (p *MemReadReply) UnmarshalWire(r *Reader) {
	p.Found = r.Bool()
	p.Redirect = r.SiteID()
	if p.Found && p.Redirect == types.InvalidSite {
		p.Object.unmarshal(r)
	}
}

// MemWrite updates a remote memory object in place (sent to its current
// owner or homesite).
type MemWrite struct {
	Addr   types.GlobalAddr
	Offset uint32
	Data   []byte
}

func (*MemWrite) Kind() Kind { return KindMemWrite }

func (p *MemWrite) MarshalWire(w *Writer) {
	w.Addr(p.Addr)
	w.Uint32(p.Offset)
	w.Bytes32(p.Data)
}

func (p *MemWrite) UnmarshalWire(r *Reader) {
	p.Addr = r.Addr()
	p.Offset = r.Uint32()
	p.Data = r.Bytes32()
}

// MemWriteAck confirms a MemWrite (or reports redirect/not-found).
type MemWriteAck struct {
	OK       bool
	Redirect types.SiteID
}

func (*MemWriteAck) Kind() Kind { return KindMemWriteAck }

func (p *MemWriteAck) MarshalWire(w *Writer) {
	w.Bool(p.OK)
	w.SiteID(p.Redirect)
}

func (p *MemWriteAck) UnmarshalWire(r *Reader) {
	p.OK = r.Bool()
	p.Redirect = r.SiteID()
}

// MemMigrate transfers ownership of memory objects to the destination
// site (attraction on write intent, sign-off relocation).
type MemMigrate struct {
	Objects []MemObject
}

func (*MemMigrate) Kind() Kind { return KindMemMigrate }

func (p *MemMigrate) MarshalWire(w *Writer) {
	w.Uint32(uint32(len(p.Objects)))
	for i := range p.Objects {
		p.Objects[i].marshal(w)
	}
}

func (p *MemMigrate) UnmarshalWire(r *Reader) {
	n := r.SliceLen(memObjectWireSize, "migrate list")
	p.Objects = grow(p.Objects, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		p.Objects[i].unmarshal(r)
	}
}

// HomeUpdate informs an object's homesite that ownership moved, keeping
// the homesite directory (paper §4, [5]) current.
type HomeUpdate struct {
	Addr  types.GlobalAddr
	Owner types.SiteID
}

func (*HomeUpdate) Kind() Kind { return KindHomeUpdate }

func (p *HomeUpdate) MarshalWire(w *Writer) {
	w.Addr(p.Addr)
	w.SiteID(p.Owner)
}

func (p *HomeUpdate) UnmarshalWire(r *Reader) {
	p.Addr = r.Addr()
	p.Owner = r.SiteID()
}

// FrameRelocate moves incomplete (waiting) microframes to another site —
// used at sign-off: "all microframes ... have to be relocated to other
// sites before shutdown" (paper §3.4).
type FrameRelocate struct {
	Frames []*Microframe
}

func (*FrameRelocate) Kind() Kind { return KindFrameRelocate }

func (p *FrameRelocate) MarshalWire(w *Writer) {
	w.Uint32(uint32(len(p.Frames)))
	for _, f := range p.Frames {
		f.MarshalWire(w)
	}
}

func (p *FrameRelocate) UnmarshalWire(r *Reader) {
	n := r.SliceLen(microframeWireSize, "relocate list")
	p.Frames = growFrames(p.Frames, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		p.Frames[i].UnmarshalWire(r)
	}
}

// ---------------------------------------------------------------------------
// Code manager payloads (paper §3.4, §4).

// CodeRequest asks a peer for the microthread artifact matching the
// requesting site's platform; "the request to other sites contains
// information about the local platform id".
type CodeRequest struct {
	Thread   types.ThreadID
	Platform types.PlatformID
}

func (*CodeRequest) Kind() Kind { return KindCodeRequest }

func (p *CodeRequest) MarshalWire(w *Writer) {
	w.ThreadID(p.Thread)
	w.Uint16(uint16(p.Platform))
}

func (p *CodeRequest) UnmarshalWire(r *Reader) {
	p.Thread = r.ThreadID()
	p.Platform = types.PlatformID(r.Uint16())
}

// CodeReply answers a CodeRequest: a platform-matching binary artifact,
// the portable source (to be compiled on the fly), or not-found.
type CodeReply struct {
	Found    bool
	IsSource bool             // true: Artifact is source, compile locally
	Platform types.PlatformID // platform of the artifact (PlatformAny for source)
	Artifact []byte           // opaque artifact token / source text
	FuncName string           // registry name of the implementation
}

func (*CodeReply) Kind() Kind { return KindCodeReply }

func (p *CodeReply) MarshalWire(w *Writer) {
	w.Bool(p.Found)
	w.Bool(p.IsSource)
	w.Uint16(uint16(p.Platform))
	w.Bytes32(p.Artifact)
	w.String(p.FuncName)
}

func (p *CodeReply) UnmarshalWire(r *Reader) {
	p.Found = r.Bool()
	p.IsSource = r.Bool()
	p.Platform = types.PlatformID(r.Uint16())
	p.Artifact = r.Bytes32()
	p.FuncName = r.String()
}

// CodePublish uploads a freshly compiled artifact to a code-distribution
// site "so that other sites will receive the binary code at first go".
type CodePublish struct {
	Thread   types.ThreadID
	Platform types.PlatformID
	Artifact []byte
	FuncName string
}

func (*CodePublish) Kind() Kind { return KindCodePublish }

func (p *CodePublish) MarshalWire(w *Writer) {
	w.ThreadID(p.Thread)
	w.Uint16(uint16(p.Platform))
	w.Bytes32(p.Artifact)
	w.String(p.FuncName)
}

func (p *CodePublish) UnmarshalWire(r *Reader) {
	p.Thread = r.ThreadID()
	p.Platform = types.PlatformID(r.Uint16())
	p.Artifact = r.Bytes32()
	p.FuncName = r.String()
}

// ---------------------------------------------------------------------------
// I/O manager payloads (paper §4).

// IOOp enumerates remote file operations.
type IOOp uint8

// File operations routed by global file handle.
const (
	IOOpOpen IOOp = iota
	IOOpRead
	IOOpWrite
	IOOpClose
)

// IORequest accesses a file through its global handle; "the access is
// automatically rerouted to the appropriate site".
type IORequest struct {
	Op     IOOp
	Handle types.GlobalAddr // file handle (encodes the owning site)
	Name   string           // for IOOpOpen
	Offset int64
	Length int32 // for IOOpRead
	Data   []byte
}

func (*IORequest) Kind() Kind { return KindIORequest }

func (p *IORequest) MarshalWire(w *Writer) {
	w.Uint8(uint8(p.Op))
	w.Addr(p.Handle)
	w.String(p.Name)
	w.Int64(p.Offset)
	w.Int32(p.Length)
	w.Bytes32(p.Data)
}

func (p *IORequest) UnmarshalWire(r *Reader) {
	p.Op = IOOp(r.Uint8())
	p.Handle = r.Addr()
	p.Name = r.String()
	p.Offset = r.Int64()
	p.Length = r.Int32()
	p.Data = r.Bytes32()
}

// IOReply answers an IORequest.
type IOReply struct {
	OK     bool
	Errmsg string
	Handle types.GlobalAddr // for IOOpOpen
	Data   []byte           // for IOOpRead
	N      int32            // bytes read/written
}

func (*IOReply) Kind() Kind { return KindIOReply }

func (p *IOReply) MarshalWire(w *Writer) {
	w.Bool(p.OK)
	w.String(p.Errmsg)
	w.Addr(p.Handle)
	w.Bytes32(p.Data)
	w.Int32(p.N)
}

func (p *IOReply) UnmarshalWire(r *Reader) {
	p.OK = r.Bool()
	p.Errmsg = r.String()
	p.Handle = r.Addr()
	p.Data = r.Bytes32()
	p.N = r.Int32()
}

// FrontendOutput routes program output to the user's frontend site
// (paper §4: "the I/O manager sends all output and input requests to the
// front end").
type FrontendOutput struct {
	Program types.ProgramID
	Text    string
}

func (*FrontendOutput) Kind() Kind { return KindFrontendOutput }

func (p *FrontendOutput) MarshalWire(w *Writer) {
	w.ProgramID(p.Program)
	w.String(p.Text)
}

func (p *FrontendOutput) UnmarshalWire(r *Reader) {
	p.Program = r.ProgramID()
	p.Text = r.String()
}

// ---------------------------------------------------------------------------
// Program manager payloads (paper §4).

// ProgramRegister introduces a program to a site (piggybacked on the first
// frame of an unknown program, or sent at submission).
type ProgramRegister struct {
	Program  types.ProgramID
	CodeHome types.SiteID // site to request microthread code from
	Frontend types.SiteID // site whose frontend receives output
	Name     string
}

func (*ProgramRegister) Kind() Kind { return KindProgramRegister }

func (p *ProgramRegister) MarshalWire(w *Writer) {
	w.ProgramID(p.Program)
	w.SiteID(p.CodeHome)
	w.SiteID(p.Frontend)
	w.String(p.Name)
}

func (p *ProgramRegister) UnmarshalWire(r *Reader) {
	p.Program = r.ProgramID()
	p.CodeHome = r.SiteID()
	p.Frontend = r.SiteID()
	p.Name = r.String()
}

// ProgramTerminated flags a program as finished so "its microthreads can
// safely be deleted from memory".
type ProgramTerminated struct {
	Program types.ProgramID
	Result  []byte
}

func (*ProgramTerminated) Kind() Kind { return KindProgramTerminated }

func (p *ProgramTerminated) MarshalWire(w *Writer) {
	w.ProgramID(p.Program)
	w.Bytes32(p.Result)
}

func (p *ProgramTerminated) UnmarshalWire(r *Reader) {
	p.Program = r.ProgramID()
	p.Result = r.Bytes32()
}

// ProgramQuery asks a peer for its program-table entry.
type ProgramQuery struct {
	Program types.ProgramID
}

func (*ProgramQuery) Kind() Kind { return KindProgramQuery }

func (p *ProgramQuery) MarshalWire(w *Writer) { w.ProgramID(p.Program) }

func (p *ProgramQuery) UnmarshalWire(r *Reader) { p.Program = r.ProgramID() }

// ProgramInfo answers a ProgramQuery.
type ProgramInfo struct {
	Known      bool
	Terminated bool
	Register   ProgramRegister
}

func (*ProgramInfo) Kind() Kind { return KindProgramInfo }

func (p *ProgramInfo) MarshalWire(w *Writer) {
	w.Bool(p.Known)
	w.Bool(p.Terminated)
	p.Register.MarshalWire(w)
}

func (p *ProgramInfo) UnmarshalWire(r *Reader) {
	p.Known = r.Bool()
	p.Terminated = r.Bool()
	p.Register.UnmarshalWire(r)
}

// ---------------------------------------------------------------------------
// Checkpoint / crash management payloads ([4], paper §2.2/§6).

// CheckpointStore replicates a checkpoint of program state to a
// checkpoint site.
type CheckpointStore struct {
	Program types.ProgramID
	Epoch   uint64
	Origin  types.SiteID
	Frames  []*Microframe
	Objects []MemObject
}

func (*CheckpointStore) Kind() Kind { return KindCheckpointStore }

func (p *CheckpointStore) MarshalWire(w *Writer) {
	w.ProgramID(p.Program)
	w.Uint64(p.Epoch)
	w.SiteID(p.Origin)
	w.Uint32(uint32(len(p.Frames)))
	for _, f := range p.Frames {
		f.MarshalWire(w)
	}
	w.Uint32(uint32(len(p.Objects)))
	for i := range p.Objects {
		p.Objects[i].marshal(w)
	}
}

func (p *CheckpointStore) UnmarshalWire(r *Reader) {
	p.Program = r.ProgramID()
	p.Epoch = r.Uint64()
	p.Origin = r.SiteID()
	nf := r.SliceLen(microframeWireSize, "checkpoint frames")
	p.Frames = growFrames(p.Frames, nf)
	for i := 0; i < nf && r.Err() == nil; i++ {
		p.Frames[i].UnmarshalWire(r)
	}
	no := r.SliceLen(memObjectWireSize, "checkpoint objects")
	p.Objects = grow(p.Objects, no)
	for i := 0; i < no && r.Err() == nil; i++ {
		p.Objects[i].unmarshal(r)
	}
}

// CheckpointAck confirms storage of a checkpoint epoch.
type CheckpointAck struct {
	Program types.ProgramID
	Epoch   uint64
}

func (*CheckpointAck) Kind() Kind { return KindCheckpointAck }

func (p *CheckpointAck) MarshalWire(w *Writer) {
	w.ProgramID(p.Program)
	w.Uint64(p.Epoch)
}

func (p *CheckpointAck) UnmarshalWire(r *Reader) {
	p.Program = r.ProgramID()
	p.Epoch = r.Uint64()
}

// CrashNotice broadcasts a detected crash so every site can drop the dead
// site from its cluster list and start recovery if it holds a checkpoint.
type CrashNotice struct {
	Dead types.SiteID
}

func (*CrashNotice) Kind() Kind { return KindCrashNotice }

func (p *CrashNotice) MarshalWire(w *Writer) { w.SiteID(p.Dead) }

func (p *CrashNotice) UnmarshalWire(r *Reader) { p.Dead = r.SiteID() }

// RecoverRequest asks a checkpoint site to restore the state a dead site
// held for a program.
type RecoverRequest struct {
	Program types.ProgramID
	Dead    types.SiteID
}

func (*RecoverRequest) Kind() Kind { return KindRecoverRequest }

func (p *RecoverRequest) MarshalWire(w *Writer) {
	w.ProgramID(p.Program)
	w.SiteID(p.Dead)
}

func (p *RecoverRequest) UnmarshalWire(r *Reader) {
	p.Program = r.ProgramID()
	p.Dead = r.SiteID()
}

// RecoverReply carries the recovered state.
type RecoverReply struct {
	Found   bool
	Epoch   uint64
	Frames  []*Microframe
	Objects []MemObject
}

func (*RecoverReply) Kind() Kind { return KindRecoverReply }

func (p *RecoverReply) MarshalWire(w *Writer) {
	w.Bool(p.Found)
	w.Uint64(p.Epoch)
	w.Uint32(uint32(len(p.Frames)))
	for _, f := range p.Frames {
		f.MarshalWire(w)
	}
	w.Uint32(uint32(len(p.Objects)))
	for i := range p.Objects {
		p.Objects[i].marshal(w)
	}
}

func (p *RecoverReply) UnmarshalWire(r *Reader) {
	p.Found = r.Bool()
	p.Epoch = r.Uint64()
	nf := r.SliceLen(microframeWireSize, "recover frames")
	p.Frames = growFrames(p.Frames, nf)
	for i := 0; i < nf && r.Err() == nil; i++ {
		p.Frames[i].UnmarshalWire(r)
	}
	no := r.SliceLen(memObjectWireSize, "recover objects")
	p.Objects = grow(p.Objects, no)
	for i := 0; i < no && r.Err() == nil; i++ {
		p.Objects[i].unmarshal(r)
	}
}

// ---------------------------------------------------------------------------
// Generic payloads.

// ErrorReply reports a failed request back to its sender.
type ErrorReply struct {
	Code    uint16
	Message string
}

// Error codes carried in ErrorReply.
const (
	ErrCodeGeneric uint16 = iota
	ErrCodeNoSuchObject
	ErrCodeNoSuchFrame
	ErrCodeNoSuchThread
	ErrCodeNoBinary
	ErrCodeNoProgram
	ErrCodeShutdown
)

func (*ErrorReply) Kind() Kind { return KindError }

func (p *ErrorReply) MarshalWire(w *Writer) {
	w.Uint16(p.Code)
	w.String(p.Message)
}

func (p *ErrorReply) UnmarshalWire(r *Reader) {
	p.Code = r.Uint16()
	p.Message = r.String()
}

// Err converts the reply into a Go error rooted at the matching sentinel.
func (p *ErrorReply) Err() error {
	var base error
	switch p.Code {
	case ErrCodeNoSuchObject:
		base = types.ErrNoSuchObject
	case ErrCodeNoSuchFrame:
		base = types.ErrNoSuchFrame
	case ErrCodeNoSuchThread:
		base = types.ErrNoSuchThread
	case ErrCodeNoBinary:
		base = types.ErrNoBinary
	case ErrCodeNoProgram:
		base = types.ErrNoProgram
	case ErrCodeShutdown:
		base = types.ErrShutdown
	default:
		base = types.ErrBadMessage
	}
	if p.Message == "" {
		return base
	}
	return &remoteError{base: base, msg: p.Message}
}

type remoteError struct {
	base error
	msg  string
}

func (e *remoteError) Error() string { return e.msg }

func (e *remoteError) Unwrap() error { return e.base }

// Barrier is a test/maintenance payload used to flush in-flight traffic:
// the receiver replies with an identical Barrier.
type Barrier struct {
	Token uint64
}

func (*Barrier) Kind() Kind { return KindBarrier }

func (p *Barrier) MarshalWire(w *Writer) { w.Uint64(p.Token) }

func (p *Barrier) UnmarshalWire(r *Reader) { p.Token = r.Uint64() }

// ---------------------------------------------------------------------------
// Accounting payloads (paper §2.2/§6: "the SDVM could act as a service
// provider ... the accounting functionality needed for this can be
// integrated into the SDVM").

func init() {
	register(KindUsageQuery, func() Payload { return &UsageQuery{} })
	register(KindUsageReply, func() Payload { return &UsageReply{} })
	register(KindStatusQuery, func() Payload { return &StatusQuery{} })
	register(KindStatusReply, func() Payload { return &StatusReply{} })
	register(KindInputRequest, func() Payload { return &InputRequest{} })
	register(KindInputReply, func() Payload { return &InputReply{} })
	register(KindMemInvalidate, func() Payload { return &MemInvalidate{} })
	register(KindMemInvalidateBatch, func() Payload { return &MemInvalidateBatch{} })
	register(KindGossipDigest, func() Payload { return &GossipDigest{} })
	register(KindGossipDelta, func() Payload { return &GossipDelta{} })
}

// ---------------------------------------------------------------------------
// Gossip payloads (internal/gossip): epidemic membership & load
// dissemination. The digest/delta pair replaces the broadcast
// LoadReport/SignOffNotice paths on large clusters — every send is
// O(fanout), never O(cluster).

// GossipEntry is one row of a site's membership view: who the row is
// about, how alive the sender believes it is, and the load vector the
// scheduler's power-of-two-choices targeting samples from. Incarnation
// numbers implement SWIM-style refutation: only the subject site may
// bump its own incarnation, so a higher incarnation always wins a merge
// and a falsely suspected site can overrule its accusers.
type GossipEntry struct {
	Site        types.SiteID
	Incarnation uint32
	Status      uint8   // gossip.Status: alive / suspect / dead / left
	OriginRound uint32  // subject's own round counter when it refreshed the row
	Load        float64 // load vector: cpu load ...
	QueueLen    int32   // ... executable queue depth ...
	Programs    int32   // ... and resident program count
}

// gossipEntryWireSize is the encoded size of one GossipEntry:
// Site (4) + Incarnation (4) + Status (1) + OriginRound (4) +
// Load (8) + QueueLen (4) + Programs (4).
const gossipEntryWireSize = 4 + 4 + 1 + 4 + 8 + 4 + 4

func marshalGossipEntry(w *Writer, e *GossipEntry) {
	w.SiteID(e.Site)
	w.Uint32(e.Incarnation)
	w.Uint8(e.Status)
	w.Uint32(e.OriginRound)
	w.Float64(e.Load)
	w.Int32(e.QueueLen)
	w.Int32(e.Programs)
}

func unmarshalGossipEntry(r *Reader) GossipEntry {
	return GossipEntry{
		Site:        r.SiteID(),
		Incarnation: r.Uint32(),
		Status:      r.Uint8(),
		OriginRound: r.Uint32(),
		Load:        r.Float64(),
		QueueLen:    r.Int32(),
		Programs:    r.Int32(),
	}
}

// GossipDigest is one anti-entropy push: a bounded window of the
// sender's membership view (its own row, recently changed rows, and a
// rotating slice of the rest). Sites carries full cluster-list entries
// for the non-tombstone rows, so a receiver that learns a site from a
// digest can immediately route to it — no separate introduction round.
type GossipDigest struct {
	From    types.SiteID
	Round   uint32 // sender's local round counter (diagnostic)
	Entries []GossipEntry
	Sites   []types.SiteInfo
}

func (*GossipDigest) Kind() Kind { return KindGossipDigest }

func (p *GossipDigest) MarshalWire(w *Writer) {
	w.SiteID(p.From)
	w.Uint32(p.Round)
	w.Uint32(uint32(len(p.Entries)))
	for i := range p.Entries {
		marshalGossipEntry(w, &p.Entries[i])
	}
	w.Uint32(uint32(len(p.Sites)))
	for i := range p.Sites {
		marshalSiteInfo(w, &p.Sites[i])
	}
}

func (p *GossipDigest) UnmarshalWire(r *Reader) {
	p.From = r.SiteID()
	p.Round = r.Uint32()
	n := r.SliceLen(gossipEntryWireSize, "gossip entries")
	p.Entries = grow(p.Entries, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		p.Entries[i] = unmarshalGossipEntry(r)
	}
	n = r.SliceLen(siteInfoWireSize, "gossip sites")
	p.Sites = grow(p.Sites, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		p.Sites[i] = unmarshalSiteInfo(r)
	}
}

// GossipDelta is the anti-entropy reply: the rows of an incoming digest
// the receiver knows strictly fresher state for, sent back so the
// staler side converges in one exchange instead of waiting for the
// epidemic to wash back. Deltas are never answered (no ping-pong).
type GossipDelta struct {
	From    types.SiteID
	Entries []GossipEntry
	Sites   []types.SiteInfo
}

func (*GossipDelta) Kind() Kind { return KindGossipDelta }

func (p *GossipDelta) MarshalWire(w *Writer) {
	w.SiteID(p.From)
	w.Uint32(uint32(len(p.Entries)))
	for i := range p.Entries {
		marshalGossipEntry(w, &p.Entries[i])
	}
	w.Uint32(uint32(len(p.Sites)))
	for i := range p.Sites {
		marshalSiteInfo(w, &p.Sites[i])
	}
}

func (p *GossipDelta) UnmarshalWire(r *Reader) {
	p.From = r.SiteID()
	n := r.SliceLen(gossipEntryWireSize, "gossip entries")
	p.Entries = grow(p.Entries, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		p.Entries[i] = unmarshalGossipEntry(r)
	}
	n = r.SliceLen(siteInfoWireSize, "gossip sites")
	p.Sites = grow(p.Sites, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		p.Sites[i] = unmarshalSiteInfo(r)
	}
}

// Usage is one site's resource account for one program.
type Usage struct {
	Program    types.ProgramID
	Site       types.SiteID
	Executed   uint64  // microthreads run
	WorkUnits  float64 // Context.Work cost spent
	BusyNanos  int64   // wall-clock execution time
	MsgsSent   uint64  // messages this program caused
	BytesMoved uint64  // parameter/memory bytes shipped
	Outputs    uint64  // frontend lines produced
}

// Add accumulates o into u (ids are kept from u).
func (u *Usage) Add(o Usage) {
	u.Executed += o.Executed
	u.WorkUnits += o.WorkUnits
	u.BusyNanos += o.BusyNanos
	u.MsgsSent += o.MsgsSent
	u.BytesMoved += o.BytesMoved
	u.Outputs += o.Outputs
}

func (u *Usage) marshal(w *Writer) {
	w.ProgramID(u.Program)
	w.SiteID(u.Site)
	w.Uint64(u.Executed)
	w.Float64(u.WorkUnits)
	w.Int64(u.BusyNanos)
	w.Uint64(u.MsgsSent)
	w.Uint64(u.BytesMoved)
	w.Uint64(u.Outputs)
}

func (u *Usage) unmarshal(r *Reader) {
	u.Program = r.ProgramID()
	u.Site = r.SiteID()
	u.Executed = r.Uint64()
	u.WorkUnits = r.Float64()
	u.BusyNanos = r.Int64()
	u.MsgsSent = r.Uint64()
	u.BytesMoved = r.Uint64()
	u.Outputs = r.Uint64()
}

// UsageQuery asks a site for its local account of one program (or all
// programs, when Program is zero).
type UsageQuery struct {
	Program types.ProgramID
}

func (*UsageQuery) Kind() Kind { return KindUsageQuery }

func (p *UsageQuery) MarshalWire(w *Writer) { w.ProgramID(p.Program) }

func (p *UsageQuery) UnmarshalWire(r *Reader) { p.Program = r.ProgramID() }

// UsageReply returns the requested accounts.
type UsageReply struct {
	Accounts []Usage
}

func (*UsageReply) Kind() Kind { return KindUsageReply }

func (p *UsageReply) MarshalWire(w *Writer) {
	w.Uint32(uint32(len(p.Accounts)))
	for i := range p.Accounts {
		p.Accounts[i].marshal(w)
	}
}

func (p *UsageReply) UnmarshalWire(r *Reader) {
	n := r.SliceLen(usageWireSize, "usage list")
	p.Accounts = grow(p.Accounts, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		p.Accounts[i].unmarshal(r)
	}
}

// MemInvalidate tells sites holding read copies of an object that it
// changed: drop the copy, re-fetch on next use (write-invalidate
// coherence for COMA read replication).
type MemInvalidate struct {
	Addr types.GlobalAddr
}

func (*MemInvalidate) Kind() Kind { return KindMemInvalidate }

func (p *MemInvalidate) MarshalWire(w *Writer) { w.Addr(p.Addr) }

func (p *MemInvalidate) UnmarshalWire(r *Reader) { p.Addr = r.Addr() }

// MemInvalidateBatch carries every address one replica holder must drop
// in a single round-trip. The owner groups invalidations per holder site
// and the holder acknowledges the whole batch with one Barrier, so a
// write (or migration) pays at most one round-trip per holder site
// instead of one per (address, holder) pair.
type MemInvalidateBatch struct {
	Addrs []types.GlobalAddr
}

func (*MemInvalidateBatch) Kind() Kind { return KindMemInvalidateBatch }

func (p *MemInvalidateBatch) MarshalWire(w *Writer) {
	w.Uint32(uint32(len(p.Addrs)))
	for _, a := range p.Addrs {
		w.Addr(a)
	}
}

func (p *MemInvalidateBatch) UnmarshalWire(r *Reader) {
	n := r.SliceLen(addrWireSize, "invalidate batch")
	p.Addrs = grow(p.Addrs, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		p.Addrs[i] = r.Addr()
	}
}

// ---------------------------------------------------------------------------
// Site status payloads (paper §4, site manager).

// StatusQuery asks the site manager for a snapshot of the local site.
type StatusQuery struct{}

func (*StatusQuery) Kind() Kind { return KindStatusQuery }

func (p *StatusQuery) MarshalWire(w *Writer) {}

func (p *StatusQuery) UnmarshalWire(r *Reader) {}

// StatusReply is a compact remote view of one site's managers.
type StatusReply struct {
	Site     types.SiteID
	Load     float64
	QueueLen int32
	Programs int32
	Executed uint64
	Running  int32
	Frames   int32
	Objects  int32
	BusSent  uint64
	BusRecv  uint64
	UptimeNs int64
}

func (*StatusReply) Kind() Kind { return KindStatusReply }

func (p *StatusReply) MarshalWire(w *Writer) {
	w.SiteID(p.Site)
	w.Float64(p.Load)
	w.Int32(p.QueueLen)
	w.Int32(p.Programs)
	w.Uint64(p.Executed)
	w.Int32(p.Running)
	w.Int32(p.Frames)
	w.Int32(p.Objects)
	w.Uint64(p.BusSent)
	w.Uint64(p.BusRecv)
	w.Int64(p.UptimeNs)
}

func (p *StatusReply) UnmarshalWire(r *Reader) {
	p.Site = r.SiteID()
	p.Load = r.Float64()
	p.QueueLen = r.Int32()
	p.Programs = r.Int32()
	p.Executed = r.Uint64()
	p.Running = r.Int32()
	p.Frames = r.Int32()
	p.Objects = r.Int32()
	p.BusSent = r.Uint64()
	p.BusRecv = r.Uint64()
	p.UptimeNs = r.Int64()
}

// ---------------------------------------------------------------------------
// Frontend input payloads (paper §4, I/O manager).

// InputRequest asks the program's frontend site for one line of user
// input; Prompt is shown to the user.
type InputRequest struct {
	Program types.ProgramID
	Prompt  string
}

func (*InputRequest) Kind() Kind { return KindInputRequest }

func (p *InputRequest) MarshalWire(w *Writer) {
	w.ProgramID(p.Program)
	w.String(p.Prompt)
}

func (p *InputRequest) UnmarshalWire(r *Reader) {
	p.Program = r.ProgramID()
	p.Prompt = r.String()
}

// InputReply returns the user's input line (OK=false: no input source).
type InputReply struct {
	OK   bool
	Line string
}

func (*InputReply) Kind() Kind { return KindInputReply }

func (p *InputReply) MarshalWire(w *Writer) {
	w.Bool(p.OK)
	w.String(p.Line)
}

func (p *InputReply) UnmarshalWire(r *Reader) {
	p.OK = r.Bool()
	p.Line = r.String()
}

// ---------------------------------------------------------------------------
// Home-based coherence payloads (attraction memory v2): read replicas
// fault in via MemReadReplica/MemReplicaData instead of migrating the
// object, and MemHeatTransfer ships the owner's decayed access-heat
// table alongside a heat-triggered ownership push so the new owner does
// not restart its migration decision from a cold counter.

func init() {
	register(KindMemReadReplica, func() Payload { return &MemReadReplica{} })
	register(KindMemReplicaData, func() Payload { return &MemReplicaData{} })
	register(KindMemHeatTransfer, func() Payload { return &MemHeatTransfer{} })
}

// MemReadReplica asks the owning site for a cached read replica of one
// object. Unlike MemRead{Migrate:false} the owner registers the
// requester in the object's replica set under the same lock that
// serves the data, so a later write cannot commit without invalidating
// this copy first.
type MemReadReplica struct {
	Addr types.GlobalAddr
}

func (*MemReadReplica) Kind() Kind { return KindMemReadReplica }

func (p *MemReadReplica) MarshalWire(w *Writer) { w.Addr(p.Addr) }

func (p *MemReadReplica) UnmarshalWire(r *Reader) { p.Addr = r.Addr() }

// MemReplicaData answers MemReadReplica: the object bytes plus the
// version they correspond to, a redirect to the current owner, or
// not-found. Version lets the requester tag its replica so stale
// installs racing an invalidation can be detected and discarded.
type MemReplicaData struct {
	Found    bool
	Redirect types.SiteID // nonzero: ask this site instead
	Version  uint64       // valid when Found and Redirect==0
	Data     []byte       // valid when Found and Redirect==0
}

func (*MemReplicaData) Kind() Kind { return KindMemReplicaData }

func (p *MemReplicaData) MarshalWire(w *Writer) {
	w.Bool(p.Found)
	w.SiteID(p.Redirect)
	if p.Found && p.Redirect == types.InvalidSite {
		w.Uint64(p.Version)
		w.Bytes32(p.Data)
	}
}

func (p *MemReplicaData) UnmarshalWire(r *Reader) {
	p.Found = r.Bool()
	p.Redirect = r.SiteID()
	if p.Found && p.Redirect == types.InvalidSite {
		p.Version = r.Uint64()
		p.Data = r.Bytes32()
	}
}

// heatEntryWireSize is the encoded size of one (site, heat) pair.
const heatEntryWireSize = 4 + 4

// MemHeatTransfer accompanies a heat-triggered MemMigrate: the decayed
// per-writer access counters the old owner accumulated for the object,
// so the new owner seeds its own heat table instead of needing a full
// window of writes before it can judge the next migration.
type MemHeatTransfer struct {
	Addr  types.GlobalAddr
	Sites []types.SiteID
	Heats []uint32 // parallel to Sites
}

func (*MemHeatTransfer) Kind() Kind { return KindMemHeatTransfer }

func (p *MemHeatTransfer) MarshalWire(w *Writer) {
	w.Addr(p.Addr)
	n := len(p.Sites)
	if len(p.Heats) < n {
		n = len(p.Heats)
	}
	w.Uint32(uint32(n))
	for i := 0; i < n; i++ {
		w.SiteID(p.Sites[i])
		w.Uint32(p.Heats[i])
	}
}

func (p *MemHeatTransfer) UnmarshalWire(r *Reader) {
	p.Addr = r.Addr()
	n := r.SliceLen(heatEntryWireSize, "heat table")
	p.Sites = grow(p.Sites, n)
	p.Heats = grow(p.Heats, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		p.Sites[i] = r.SiteID()
		p.Heats[i] = r.Uint32()
	}
}
