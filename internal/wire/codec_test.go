package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestWriterReaderScalars(t *testing.T) {
	w := NewWriter(0)
	w.Uint8(0xAB)
	w.Bool(true)
	w.Bool(false)
	w.Uint16(0xBEEF)
	w.Uint32(0xDEADBEEF)
	w.Uint64(0x0123456789ABCDEF)
	w.Int16(-7)
	w.Int32(-70000)
	w.Int64(-7e15)
	w.Float64(3.14159)
	w.Float64(math.Inf(-1))

	r := NewReader(w.Bytes())
	if got := r.Uint8(); got != 0xAB {
		t.Errorf("Uint8 = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool roundtrip failed")
	}
	if got := r.Uint16(); got != 0xBEEF {
		t.Errorf("Uint16 = %#x", got)
	}
	if got := r.Uint32(); got != 0xDEADBEEF {
		t.Errorf("Uint32 = %#x", got)
	}
	if got := r.Uint64(); got != 0x0123456789ABCDEF {
		t.Errorf("Uint64 = %#x", got)
	}
	if got := r.Int16(); got != -7 {
		t.Errorf("Int16 = %d", got)
	}
	if got := r.Int32(); got != -70000 {
		t.Errorf("Int32 = %d", got)
	}
	if got := r.Int64(); got != -7e15 {
		t.Errorf("Int64 = %d", got)
	}
	if got := r.Float64(); got != 3.14159 {
		t.Errorf("Float64 = %v", got)
	}
	if got := r.Float64(); !math.IsInf(got, -1) {
		t.Errorf("Float64 inf = %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestBytesAndString(t *testing.T) {
	w := NewWriter(0)
	w.Bytes32([]byte{1, 2, 3})
	w.Bytes32(nil)
	w.Bytes32([]byte{})
	w.String("hello, SDVM")
	w.String("")

	r := NewReader(w.Bytes())
	if got := r.Bytes32(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes32 = %v", got)
	}
	if got := r.Bytes32(); got != nil {
		t.Errorf("nil Bytes32 = %v", got)
	}
	if got := r.Bytes32(); got != nil {
		t.Errorf("empty Bytes32 = %v, want nil", got)
	}
	if got := r.String(); got != "hello, SDVM" {
		t.Errorf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestBytes32CopyIsIndependent(t *testing.T) {
	w := NewWriter(0)
	w.Bytes32([]byte{9, 9, 9})
	buf := append([]byte(nil), w.Bytes()...)
	r := NewReader(buf)
	got := r.Bytes32()
	buf[4] = 0 // mutate the source buffer
	if got[0] != 9 {
		t.Error("Bytes32 result aliases the input buffer")
	}
}

func TestReaderTruncation(t *testing.T) {
	w := NewWriter(0)
	w.Uint64(42)
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.Uint64()
		if r.Err() == nil {
			t.Errorf("cut=%d: expected truncation error", cut)
		}
		if !errors.Is(r.Err(), types.ErrBadMessage) {
			t.Errorf("cut=%d: error %v does not wrap ErrBadMessage", cut, r.Err())
		}
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{1})
	r.Uint32() // fails
	first := r.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	r.Uint64()
	_ = r.String()
	if r.Err() != first {
		t.Error("error not sticky")
	}
}

func TestReaderBogusLength(t *testing.T) {
	w := NewWriter(0)
	w.Uint32(math.MaxUint32) // absurd length prefix
	r := NewReader(w.Bytes())
	if got := r.Bytes32(); got != nil {
		t.Errorf("Bytes32 with bogus length = %v", got)
	}
	if r.Err() == nil {
		t.Error("expected error for bogus length")
	}
}

func TestIDRoundTrips(t *testing.T) {
	f := func(site uint32, prog uint64, idx uint32, home uint32, local uint64) bool {
		w := NewWriter(0)
		w.SiteID(types.SiteID(site))
		w.ProgramID(types.ProgramID(prog))
		w.ThreadID(types.ThreadID{Program: types.ProgramID(prog), Index: idx})
		w.Addr(types.GlobalAddr{Home: types.SiteID(home), Local: local})
		r := NewReader(w.Bytes())
		okSite := r.SiteID() == types.SiteID(site)
		okProg := r.ProgramID() == types.ProgramID(prog)
		tid := r.ThreadID()
		okThread := tid.Program == types.ProgramID(prog) && tid.Index == idx
		addr := r.Addr()
		okAddr := addr.Home == types.SiteID(home) && addr.Local == local
		return r.Err() == nil && okSite && okProg && okThread && okAddr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesRoundTripProperty(t *testing.T) {
	f := func(chunks [][]byte) bool {
		w := NewWriter(0)
		for _, c := range chunks {
			w.Bytes32(c)
		}
		r := NewReader(w.Bytes())
		for _, c := range chunks {
			got := r.Bytes32()
			if len(c) == 0 {
				if got != nil {
					return false
				}
			} else if !bytes.Equal(got, c) {
				return false
			}
		}
		return r.Err() == nil && r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(16)
	w.Uint64(1)
	if w.Len() != 8 {
		t.Fatalf("Len = %d", w.Len())
	}
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d", w.Len())
	}
	w.Uint8(5)
	if w.Bytes()[0] != 5 {
		t.Error("write after Reset wrong")
	}
}
