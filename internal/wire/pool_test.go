package wire

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/types"
)

// TestGetWriterRelease pins the pooled-writer lifecycle: a fresh writer
// is empty, usable, and a released writer's storage is recycled without
// leaking the previous contents into the next user's view.
func TestGetWriterRelease(t *testing.T) {
	w := GetWriter(0)
	if w.Len() != 0 {
		t.Fatalf("fresh pooled writer has %d bytes", w.Len())
	}
	w.Uint32(0xdeadbeef)
	w.String("pooled")
	got := append([]byte(nil), w.Bytes()...)
	w.Release()

	w2 := GetWriter(0)
	defer w2.Release()
	if w2.Len() != 0 {
		t.Fatalf("recycled writer starts with %d bytes", w2.Len())
	}
	w2.Uint32(0xdeadbeef)
	w2.String("pooled")
	if !bytes.Equal(w2.Bytes(), got) {
		t.Fatal("recycled writer encodes differently")
	}
}

// TestWriterGrowAcrossClasses writes through several size-class
// boundaries and checks no byte is lost in the pool-to-pool copies.
func TestWriterGrowAcrossClasses(t *testing.T) {
	w := GetWriter(16) // deliberately undersized hint
	defer w.Release()
	const total = 300 << 10 // beyond the 256 KiB class
	pattern := make([]byte, 1024)
	for i := range pattern {
		pattern[i] = byte(i)
	}
	for w.Len() < total {
		w.Raw(pattern)
	}
	b := w.Bytes()
	for i := 0; i+1024 <= len(b); i += 1024 {
		if !bytes.Equal(b[i:i+1024], pattern) {
			t.Fatalf("pattern corrupted at offset %d after growth", i)
		}
	}
}

// TestWriterOversizeFallback exercises the beyond-largest-class path:
// the buffer must still work, and Release must not panic.
func TestWriterOversizeFallback(t *testing.T) {
	w := GetWriter(2 << 20) // above the largest (1 MiB) class
	w.Zero(2 << 20)
	if w.Len() != 2<<20 {
		t.Fatalf("oversize writer length %d", w.Len())
	}
	w.Release()
}

// TestWriterReserve checks Reserve adds spare capacity without touching
// the length — the in-place seal headroom contract.
func TestWriterReserve(t *testing.T) {
	w := GetWriter(0)
	defer w.Release()
	w.Uint8(0x7f)
	w.Reserve(64)
	if w.Len() != 1 {
		t.Fatalf("Reserve changed length to %d", w.Len())
	}
	b := w.Bytes()
	if cap(b)-len(b) < 64 {
		t.Fatalf("Reserve left only %d spare bytes", cap(b)-len(b))
	}
	// The reserved capacity must belong to the same backing array, so a
	// seal can extend into it in place.
	ext := b[:len(b)+64]
	_ = ext
}

// TestWriterPrimitives pins the envelope-assembly primitives introduced
// for the zero-allocation path.
func TestWriterPrimitives(t *testing.T) {
	w := NewWriter(0)
	w.Zero(3)
	w.Uint8(0xab)
	w.Uint32BE(0x01020304)
	w.Raw([]byte{9, 8})
	want := []byte{0, 0, 0, 0xab, 1, 2, 3, 4, 9, 8}
	if !bytes.Equal(w.Bytes(), want) {
		t.Fatalf("encoded % x, want % x", w.Bytes(), want)
	}
}

// TestDecoderReuse decodes different kinds back-to-back through one
// Decoder and checks no state leaks between messages — the reused
// scratch payloads must not carry stale slices or counts across kinds.
func TestDecoderReuse(t *testing.T) {
	d := NewDecoder()
	for round := 0; round < 3; round++ {
		for _, m := range benchMessages() {
			buf := m.EncodeBytes()
			got, err := d.Decode(buf)
			if err != nil {
				t.Fatalf("round %d %v: %v", round, m.Payload.Kind(), err)
			}
			// Re-encoding the decoded view must reproduce the input
			// byte-for-byte: a full-fidelity equality check that never
			// trips over aliasing-vs-copy representation differences.
			back := got.EncodeBytes()
			if !bytes.Equal(back, buf) {
				t.Fatalf("round %d %v: re-encode mismatch", round, m.Payload.Kind())
			}
		}
	}
}

// TestDecoderShrinkingBatches is the stale-state check: a large batch
// followed by a small one must not resurrect elements of the former.
func TestDecoderShrinkingBatches(t *testing.T) {
	mk := func(n int) []byte {
		addrs := make([]types.GlobalAddr, n)
		for i := range addrs {
			addrs[i] = types.GlobalAddr{Home: 9, Local: uint64(100 + i)}
		}
		m := &Message{Src: 1, Dst: 2, SrcMgr: types.MgrMemory, DstMgr: types.MgrMemory,
			Seq: uint64(n), Payload: &MemInvalidateBatch{Addrs: addrs}}
		return m.EncodeBytes()
	}
	d := NewDecoder()
	big, err := d.Decode(mk(32))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(big.Payload.(*MemInvalidateBatch).Addrs); got != 32 {
		t.Fatalf("big batch decoded %d addrs", got)
	}
	small, err := d.Decode(mk(2))
	if err != nil {
		t.Fatal(err)
	}
	p := small.Payload.(*MemInvalidateBatch)
	if len(p.Addrs) != 2 {
		t.Fatalf("small batch decoded %d addrs, want 2", len(p.Addrs))
	}
	for i, a := range p.Addrs {
		if a.Local != uint64(100+i) {
			t.Fatalf("addr %d = %v: stale element leaked", i, a)
		}
	}
}

// TestDecoderAliasesInput proves the Decoder really does return views:
// mutating the input buffer after Decode must show through, which is
// exactly why the output is only valid until the buffer is reused.
func TestDecoderAliasesInput(t *testing.T) {
	m := &Message{Src: 1, Dst: 2, SrcMgr: types.MgrMemory, DstMgr: types.MgrMemory,
		Seq: 7, Payload: &MemWrite{Addr: types.GlobalAddr{Home: 1, Local: 2}, Data: []byte{1, 1, 1, 1}}}
	buf := m.EncodeBytes()
	d := NewDecoder()
	got, err := d.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	data := got.Payload.(*MemWrite).Data
	for i := range buf {
		buf[i] = 0xff
	}
	if data[0] != 0xff {
		t.Fatal("decoded data is a copy; Decoder should alias the input")
	}
}

// TestDecoderErrors pins error behavior of the reused decoder: garbage
// fails with ErrBadMessage, and a failure does not poison the next
// decode.
func TestDecoderErrors(t *testing.T) {
	d := NewDecoder()
	if _, err := d.Decode([]byte{1, 2, 3}); !errors.Is(err, types.ErrBadMessage) {
		t.Fatalf("truncated decode error = %v", err)
	}
	m := benchMessages()[0]
	got, err := d.Decode(m.EncodeBytes())
	if err != nil {
		t.Fatalf("decode after failure: %v", err)
	}
	if got.Payload.Kind() != m.Payload.Kind() {
		t.Fatalf("decoded kind %v", got.Payload.Kind())
	}
}

// TestReaderErrorIsErrBadMessage pins the allocation-free decode error:
// it must still satisfy errors.Is(err, types.ErrBadMessage) and render
// a useful message.
func TestReaderErrorIsErrBadMessage(t *testing.T) {
	r := NewReader([]byte{1})
	_ = r.Uint32()
	err := r.Err()
	if err == nil {
		t.Fatal("truncated read did not fail")
	}
	if !errors.Is(err, types.ErrBadMessage) {
		t.Fatalf("error %v does not wrap ErrBadMessage", err)
	}
	if err.Error() == "" {
		t.Fatal("empty error text")
	}
}
