package wire

import (
	"fmt"

	"repro/internal/types"
)

// Minimum encoded sizes of the repeated wire elements, used to validate
// decoded element counts (Reader.SliceLen) against the remaining payload
// before sizing allocations. A value below the real minimum is safe (the
// count bound just gets looser); one above it would reject valid
// messages.
const (
	targetWireSize       = 16 // Addr (12) + Slot (4)
	memObjectWireSize    = 32 // Addr (12) + ProgramID (8) + Version (8) + Bytes32 length (4)
	microframeWireSize   = 38 // ID (12) + Thread (12) + Prio (2) + Hint (4) + arity (4) + target count (4)
	siteInfoWireSize     = 36 // SiteID (4) + empty String (4) + Platform (2) + Speed+Load (16) + QueueLen+Programs (8) + two bools
	usageWireSize        = 60 // ProgramID (8) + SiteID (4) + six 8-byte counters
	addrWireSize         = 12 // SiteID (4) + Local (8)
	metricSampleWireSize = 12 // empty String (4) + Int64 (8)
)

// Canonical non-nil empty slices for arity-0 frame decodes.
var (
	emptyParams = make([][]byte, 0)
	emptyFilled = make([]bool, 0)
)

// Target is one pre-wired result destination of a microframe: when the
// microthread produces result i, the processing manager sends it to
// Targets[i] — the parameter slot Slot of the microframe at Addr
// (paper §3.1: "addresses to microframes where the results of the
// microthread have to be applied to").
type Target struct {
	Addr types.GlobalAddr // destination microframe
	Slot int32            // parameter slot in the destination
}

// IsNil reports whether the target is unset.
func (t Target) IsNil() bool { return t.Addr.IsNil() }

func (t Target) String() string {
	return fmt.Sprintf("%v[%d]", t.Addr, t.Slot)
}

func (t *Target) marshal(w *Writer) {
	w.Addr(t.Addr)
	w.Int32(t.Slot)
}

func (t *Target) unmarshal(r *Reader) {
	t.Addr = r.Addr()
	t.Slot = r.Int32()
}

// Microframe is the SDVM's dataflow argument container (paper §3.1). It
// holds the input parameters for one execution of its microthread, the
// pre-wired destinations for the results, and scheduling metadata. A frame
// is allocated with all slots empty, fills up as results arrive through
// the attraction memory, becomes *executable* when the last slot fills,
// and is consumed by the execution.
//
// Microframes are global memory objects: ID is a global address and the
// frame can migrate between sites (help requests, sign-off relocation),
// so it carries full wire encoding.
type Microframe struct {
	ID     types.FrameID  // global identity (home-site encoded)
	Thread types.ThreadID // the microthread to run
	Params [][]byte       // parameter values; meaningful only where Filled
	Filled []bool         // slot i has received its parameter
	Target []Target       // result destinations (may be empty; threads may Send explicitly)
	Prio   types.Priority // scheduling hint: priority (CDAG critical path or programmer)
	Hint   uint32         // opaque scheduling hint (paper §3.3)
}

// NewMicroframe returns a frame for thread with arity empty parameter
// slots and the given result targets.
func NewMicroframe(id types.FrameID, thread types.ThreadID, arity int, targets ...Target) *Microframe {
	return &Microframe{
		ID:     id,
		Thread: thread,
		Params: make([][]byte, arity),
		Filled: make([]bool, arity),
		Target: targets,
	}
}

// Arity returns the number of parameter slots.
func (f *Microframe) Arity() int { return len(f.Params) }

// Missing returns the number of unfilled parameter slots.
func (f *Microframe) Missing() int {
	n := 0
	for _, filled := range f.Filled {
		if !filled {
			n++
		}
	}
	return n
}

// Executable reports whether every parameter slot has been filled
// (paper §3.1: "as soon as a microframe has all its parameters, it
// becomes executable").
func (f *Microframe) Executable() bool { return f.Missing() == 0 }

// Apply fills parameter slot with data. It returns true when this was the
// last missing parameter, i.e. the frame just became executable. Applying
// to a filled slot or out-of-range slot is an error: dataflow programs
// must produce each parameter exactly once.
func (f *Microframe) Apply(slot int, data []byte) (nowExecutable bool, err error) {
	if slot < 0 || slot >= len(f.Params) {
		return false, &types.AddrError{Err: types.ErrSlotRange, Addr: f.ID}
	}
	if f.Filled[slot] {
		return false, &types.AddrError{Err: types.ErrSlotFilled, Addr: f.ID}
	}
	f.Params[slot] = data
	f.Filled[slot] = true
	return f.Executable(), nil
}

// Clone returns a deep copy of the frame. Parameter byte slices are
// copied, so mutating the clone never aliases the original.
func (f *Microframe) Clone() *Microframe {
	c := &Microframe{
		ID:     f.ID,
		Thread: f.Thread,
		Params: make([][]byte, len(f.Params)),
		Filled: make([]bool, len(f.Filled)),
		Target: make([]Target, len(f.Target)),
		Prio:   f.Prio,
		Hint:   f.Hint,
	}
	for i, p := range f.Params {
		if p != nil {
			c.Params[i] = append([]byte(nil), p...)
		}
	}
	copy(c.Filled, f.Filled)
	copy(c.Target, f.Target)
	return c
}

func (f *Microframe) String() string {
	return fmt.Sprintf("frame(%v %v %d/%d filled)", f.ID, f.Thread, f.Arity()-f.Missing(), f.Arity())
}

// MarshalWire encodes the frame.
func (f *Microframe) MarshalWire(w *Writer) {
	w.Addr(f.ID)
	w.ThreadID(f.Thread)
	w.Int16(int16(f.Prio))
	w.Uint32(f.Hint)
	w.Uint32(uint32(len(f.Params)))
	for i := range f.Params {
		w.Bool(f.Filled[i])
		if f.Filled[i] {
			w.Bytes32(f.Params[i])
		}
	}
	w.Uint32(uint32(len(f.Target)))
	for i := range f.Target {
		f.Target[i].marshal(w)
	}
}

// UnmarshalWire decodes the frame.
func (f *Microframe) UnmarshalWire(r *Reader) {
	f.ID = r.Addr()
	f.Thread = r.ThreadID()
	f.Prio = types.Priority(r.Int16())
	f.Hint = r.Uint32()
	arity := r.SliceLen(1, "frame arity") // one Filled byte per slot, minimum
	f.Params = grow(f.Params, arity)
	f.Filled = grow(f.Filled, arity)
	if arity == 0 {
		// Match NewMicroframe, which always builds non-nil Params and
		// Filled: decode(encode(f)) must DeepEqual f. The shared
		// canonical empties cost nothing and are never written to
		// (appending to a cap-0 slice allocates fresh backing).
		if f.Params == nil {
			f.Params = emptyParams
		}
		if f.Filled == nil {
			f.Filled = emptyFilled
		}
	}
	for i := 0; i < arity && r.Err() == nil; i++ {
		f.Filled[i] = r.Bool()
		if f.Filled[i] {
			f.Params[i] = r.Bytes32()
		} else {
			f.Params[i] = nil // a reused slot must not leak a stale parameter
		}
	}
	ntgt := r.SliceLen(targetWireSize, "frame targets")
	f.Target = grow(f.Target, ntgt)
	for i := 0; i < ntgt && r.Err() == nil; i++ {
		f.Target[i].unmarshal(r)
	}
}

// MemObject is one migratable object in the attraction memory: a chunk of
// application global memory (paper §4: "if an SDVM application requests a
// certain amount of memory ... it will receive a global memory address").
type MemObject struct {
	Addr    types.GlobalAddr
	Program types.ProgramID // owning program (for checkpointing and GC)
	Data    []byte
	Version uint64 // incremented on every write; used by checkpointing
}

// Clone returns a deep copy of the object.
func (o *MemObject) Clone() *MemObject {
	return &MemObject{
		Addr:    o.Addr,
		Program: o.Program,
		Data:    append([]byte(nil), o.Data...),
		Version: o.Version,
	}
}

func (o *MemObject) marshal(w *Writer) {
	w.Addr(o.Addr)
	w.ProgramID(o.Program)
	w.Uint64(o.Version)
	w.Bytes32(o.Data)
}

func (o *MemObject) unmarshal(r *Reader) {
	o.Addr = r.Addr()
	o.Program = r.ProgramID()
	o.Version = r.Uint64()
	o.Data = r.Bytes32()
}

// SiteInfo wire helpers (cluster list entries travel in sign-on replies
// and announcements).

func marshalSiteInfo(w *Writer, s *types.SiteInfo) {
	w.SiteID(s.ID)
	w.String(s.PhysAddr)
	w.Uint16(uint16(s.Platform))
	w.Float64(s.Speed)
	w.Float64(s.Load)
	w.Int32(s.QueueLen)
	w.Int32(s.Programs)
	w.Bool(s.IsCodeDist)
	w.Bool(s.Reliable)
}

func unmarshalSiteInfo(r *Reader) types.SiteInfo {
	return types.SiteInfo{
		ID:         r.SiteID(),
		PhysAddr:   r.String(),
		Platform:   types.PlatformID(r.Uint16()),
		Speed:      r.Float64(),
		Load:       r.Float64(),
		QueueLen:   r.Int32(),
		Programs:   r.Int32(),
		IsCodeDist: r.Bool(),
		Reliable:   r.Bool(),
	}
}
