package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func testFrame() *Microframe {
	prog := types.MakeProgramID(1, 1)
	return NewMicroframe(
		types.GlobalAddr{Home: 1, Local: 10},
		types.ThreadID{Program: prog, Index: 2},
		3,
		Target{Addr: types.GlobalAddr{Home: 2, Local: 20}, Slot: 1},
	)
}

func TestMicroframeApplyFiresOnce(t *testing.T) {
	f := testFrame()
	if f.Executable() {
		t.Fatal("fresh frame must not be executable")
	}
	if f.Missing() != 3 {
		t.Fatalf("Missing = %d, want 3", f.Missing())
	}

	fire, err := f.Apply(0, []byte("a"))
	if err != nil || fire {
		t.Fatalf("Apply(0): fire=%v err=%v", fire, err)
	}
	fire, err = f.Apply(2, []byte("c"))
	if err != nil || fire {
		t.Fatalf("Apply(2): fire=%v err=%v", fire, err)
	}
	fire, err = f.Apply(1, []byte("b"))
	if err != nil {
		t.Fatalf("Apply(1): %v", err)
	}
	if !fire {
		t.Fatal("last Apply must report executable")
	}
	if !f.Executable() {
		t.Fatal("frame should be executable")
	}
}

func TestMicroframeApplyErrors(t *testing.T) {
	f := testFrame()
	if _, err := f.Apply(-1, nil); !errors.Is(err, types.ErrSlotRange) {
		t.Errorf("Apply(-1) err = %v", err)
	}
	if _, err := f.Apply(3, nil); !errors.Is(err, types.ErrSlotRange) {
		t.Errorf("Apply(3) err = %v", err)
	}
	if _, err := f.Apply(0, []byte("x")); err != nil {
		t.Fatalf("Apply(0): %v", err)
	}
	if _, err := f.Apply(0, []byte("y")); !errors.Is(err, types.ErrSlotFilled) {
		t.Errorf("double Apply err = %v", err)
	}
	// The original value must survive the rejected second application.
	if !bytes.Equal(f.Params[0], []byte("x")) {
		t.Error("rejected Apply clobbered the slot")
	}
}

func TestMicroframeNilParamCountsAsFilled(t *testing.T) {
	// A nil []byte is a legitimate parameter value (e.g. a pure trigger
	// token); Filled, not Params, tracks arrival.
	f := NewMicroframe(types.GlobalAddr{Home: 1, Local: 1}, types.ThreadID{}, 1)
	fire, err := f.Apply(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !fire {
		t.Fatal("nil parameter must still fire the frame")
	}
}

func TestMicroframeZeroArityExecutableImmediately(t *testing.T) {
	f := NewMicroframe(types.GlobalAddr{Home: 1, Local: 1}, types.ThreadID{}, 0)
	if !f.Executable() {
		t.Fatal("zero-arity frame must be executable at once")
	}
}

func TestMicroframeWireRoundTrip(t *testing.T) {
	f := testFrame()
	if _, err := f.Apply(1, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Prio = types.PriorityCritical
	f.Hint = 0xABCD

	w := NewWriter(0)
	f.MarshalWire(w)
	var g Microframe
	r := NewReader(w.Bytes())
	g.UnmarshalWire(r)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&g, f) {
		t.Errorf("roundtrip mismatch:\n got %#v\nwant %#v", &g, f)
	}
}

func TestMicroframeWireProperty(t *testing.T) {
	f := func(home uint32, local uint64, idx uint32, prio int16, hint uint32, params [][]byte) bool {
		if len(params) > 32 {
			params = params[:32]
		}
		fr := NewMicroframe(
			types.GlobalAddr{Home: types.SiteID(home), Local: local},
			types.ThreadID{Program: types.MakeProgramID(1, 1), Index: idx},
			len(params),
		)
		fr.Prio = types.Priority(prio)
		fr.Hint = hint
		for i, p := range params {
			if i%2 == 0 {
				if _, err := fr.Apply(i, p); err != nil {
					return false
				}
			}
		}
		w := NewWriter(0)
		fr.MarshalWire(w)
		var g Microframe
		r := NewReader(w.Bytes())
		g.UnmarshalWire(r)
		if r.Err() != nil || r.Remaining() != 0 {
			return false
		}
		if g.Missing() != fr.Missing() || g.Arity() != fr.Arity() {
			return false
		}
		for i := range params {
			if g.Filled[i] != fr.Filled[i] {
				return false
			}
			if g.Filled[i] && !bytes.Equal(normalize(g.Params[i]), normalize(fr.Params[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// normalize maps empty and nil slices to nil for comparison, matching the
// codec's empty==nil convention.
func normalize(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	return b
}

func TestMicroframeCloneIndependence(t *testing.T) {
	f := testFrame()
	if _, err := f.Apply(0, []byte{7}); err != nil {
		t.Fatal(err)
	}
	c := f.Clone()
	c.Params[0][0] = 9
	if _, err := c.Apply(1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	c.Target[0].Slot = 99

	if f.Params[0][0] != 7 {
		t.Error("clone aliases parameter data")
	}
	if f.Filled[1] {
		t.Error("clone aliases Filled")
	}
	if f.Target[0].Slot == 99 {
		t.Error("clone aliases Target")
	}
}

func TestMemObjectClone(t *testing.T) {
	o := &MemObject{Addr: types.GlobalAddr{Home: 1, Local: 2}, Data: []byte{1, 2}, Version: 5}
	c := o.Clone()
	c.Data[0] = 9
	if o.Data[0] != 1 {
		t.Error("MemObject clone aliases data")
	}
	if c.Version != 5 || c.Addr != o.Addr {
		t.Error("MemObject clone lost fields")
	}
}

func TestTargetString(t *testing.T) {
	tg := Target{Addr: types.GlobalAddr{Home: 1, Local: 2}, Slot: 3}
	if tg.String() == "" || tg.IsNil() {
		t.Error("target formatting / IsNil wrong")
	}
	if !(Target{}).IsNil() {
		t.Error("zero Target should be nil")
	}
}
