package wire

import "sync"

// Size-classed buffer pooling for the hot encode path.
//
// Encoding a message allocates nothing in steady state: the Writer's
// backing storage comes from one of a handful of size-classed
// sync.Pools and goes back when the caller Releases the Writer. The
// pools traffic in *pbuf (a pointer-shaped wrapper), so neither Get nor
// Put boxes a slice header into an interface.
//
// Ownership contract (see also DESIGN.md §9):
//
//   - GetWriter hands the caller exclusive ownership of the Writer and
//     its buffer.
//   - Writer.Bytes aliases the pooled storage. The slice is valid until
//     Release; after Release another goroutine may receive the same
//     backing array from GetWriter, so a retained Bytes result is
//     corruption waiting to happen. Callers that need the encoding
//     beyond Release must copy first.
//   - Release must be called at most once. Dropping a Writer without
//     Release is safe (the garbage collector reclaims it); the pool
//     just loses one buffer.

// classSizes are the pooled buffer capacities, smallest first. The
// smallest class comfortably fits the dominant SDVM messages (header +
// a small payload); the largest covers a full coalescing envelope and
// sizeable memory migrations. Anything bigger falls through to a plain
// allocation.
var classSizes = [...]int{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}

// pbuf is one pooled backing buffer. cls remembers the owning size
// class so putBuf can return it without searching; -1 marks an oversize
// buffer that bypasses the pool.
type pbuf struct {
	b   []byte
	cls int8
}

var bufPools [len(classSizes)]sync.Pool

func init() {
	for i := range bufPools {
		size := classSizes[i]
		cls := int8(i)
		bufPools[i].New = func() any { return &pbuf{b: make([]byte, 0, size), cls: cls} }
	}
}

// getBuf returns a buffer with capacity at least n, pooled when n fits
// a size class.
func getBuf(n int) *pbuf {
	for i := range classSizes {
		if n <= classSizes[i] {
			pb, _ := bufPools[i].Get().(*pbuf)
			return pb
		}
	}
	//sdvmlint:allow allocfree -- oversize (>1 MiB) buffers bypass the pool; bounded by transport.MaxDatagram and rare
	return &pbuf{b: make([]byte, 0, n), cls: -1}
}

// putBuf returns a buffer to its pool. Oversize buffers are dropped for
// the garbage collector, so one huge message cannot pin a huge pool
// entry forever.
func putBuf(pb *pbuf) {
	if pb == nil || pb.cls < 0 {
		return
	}
	pb.b = pb.b[:0]
	bufPools[pb.cls].Put(pb)
}

// writerPool recycles the Writer structs themselves, so GetWriter
// allocates neither the Writer nor its buffer in steady state.
var writerPool = sync.Pool{New: func() any { return new(Writer) }}

// GetWriter returns an empty pooled Writer whose initial capacity is at
// least sizeHint (a zero hint selects the smallest class). The caller
// owns the Writer until Release.
func GetWriter(sizeHint int) *Writer {
	w, _ := writerPool.Get().(*Writer)
	w.pb = getBuf(sizeHint)
	w.buf = w.pb.b[:0]
	return w
}

// Release returns the Writer and its buffer to their pools. The buffer
// returned by Bytes is invalid from this point on: the same backing
// array may immediately be handed to another goroutine. Release on a
// Writer not obtained from GetWriter returns only what is poolable and
// is always safe.
func (w *Writer) Release() {
	pb := w.pb
	w.pb = nil
	w.buf = nil
	putBuf(pb)
	writerPool.Put(w)
}
