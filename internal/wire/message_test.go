package wire

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/types"
)

// samplePayloads returns one populated instance of every payload kind, so
// round-trip tests cover the entire protocol.
func samplePayloads() []Payload {
	prog := types.MakeProgramID(3, 7)
	tid := types.ThreadID{Program: prog, Index: 4}
	addr := types.GlobalAddr{Home: 2, Local: 99}
	frame := NewMicroframe(addr, tid, 3, Target{Addr: types.GlobalAddr{Home: 5, Local: 1}, Slot: 0})
	frame.Filled[1] = true
	frame.Params[1] = []byte{0xCA, 0xFE}
	frame.Prio = types.PriorityHigh
	frame.Hint = 77

	sites := []types.SiteInfo{
		{ID: 1, PhysAddr: "10.0.0.1:7000", Platform: 1, Speed: 1.0, Load: 0.5, QueueLen: 3, Programs: 1, IsCodeDist: true},
		{ID: 2, PhysAddr: "inproc-2", Platform: 2, Speed: 1.7},
	}

	return []Payload{
		&SignOnRequest{PhysAddr: "10.1.2.3:9999", Platform: 5, Speed: 2.5},
		&SignOnReply{Assigned: 9, Gossip: true, Cluster: sites},
		&SiteAnnounce{Sites: sites},
		&SignOffNotice{Leaving: 4},
		&LoadReport{Site: 2, Load: 0.75, QueueLen: 10, Programs: 2},
		&IDBlockRequest{Want: 16},
		&IDBlockReply{First: 100, Count: 16},
		&Ping{Nonce: 1234567},
		&Pong{Nonce: 1234567},
		&HelpRequest{Requester: 6, Load: 0.0, Speed: 1.2},
		&HelpReply{CantHelp: false, Frames: []*Microframe{frame}},
		&HelpReply{CantHelp: false, Frames: []*Microframe{frame, NewMicroframe(addr, tid, 1)}},
		&HelpReply{CantHelp: true},
		&FramePush{Frame: frame},
		&ApplyParam{Dst: Target{Addr: addr, Slot: 2}, Data: []byte("result")},
		&MemRead{Addr: addr, Migrate: true},
		&MemReadReply{Found: true, Object: MemObject{Addr: addr, Data: []byte{1, 2}, Version: 3}},
		&MemReadReply{Found: true, Redirect: 7},
		&MemReadReply{Found: false},
		&MemWrite{Addr: addr, Offset: 8, Data: []byte{9}},
		&MemWriteAck{OK: true},
		&MemWriteAck{OK: false, Redirect: 3},
		&MemMigrate{Objects: []MemObject{{Addr: addr, Data: []byte{5}, Version: 1}}},
		&MemInvalidate{Addr: addr},
		&MemInvalidateBatch{Addrs: []types.GlobalAddr{addr, {Home: 4, Local: 12}}},
		&HomeUpdate{Addr: addr, Owner: 8},
		&FrameRelocate{Frames: []*Microframe{frame, NewMicroframe(addr, tid, 0)}},
		&CodeRequest{Thread: tid, Platform: 3},
		&CodeReply{Found: true, IsSource: false, Platform: 3, Artifact: []byte("bin"), FuncName: "primes.test"},
		&CodeReply{Found: true, IsSource: true, Platform: types.PlatformAny, Artifact: []byte("src"), FuncName: "primes.test"},
		&CodeReply{Found: false},
		&CodePublish{Thread: tid, Platform: 3, Artifact: []byte("bin"), FuncName: "f"},
		&IORequest{Op: IOOpOpen, Name: "/tmp/x", Handle: addr, Offset: 5, Length: 10, Data: []byte("d")},
		&IOReply{OK: true, Handle: addr, Data: []byte("read"), N: 4},
		&IOReply{OK: false, Errmsg: "no such file"},
		&FrontendOutput{Program: prog, Text: "hello"},
		&ProgramRegister{Program: prog, CodeHome: 1, Frontend: 2, Name: "primes"},
		&ProgramTerminated{Program: prog, Result: []byte("42")},
		&ProgramQuery{Program: prog},
		&ProgramInfo{Known: true, Terminated: false, Register: ProgramRegister{Program: prog, CodeHome: 1, Frontend: 1, Name: "p"}},
		&CheckpointStore{Program: prog, Epoch: 2, Origin: 3, Frames: []*Microframe{frame}, Objects: []MemObject{{Addr: addr, Data: []byte{1}}}},
		&CheckpointAck{Program: prog, Epoch: 2},
		&CrashNotice{Dead: 5},
		&RecoverRequest{Program: prog, Dead: 5},
		&RecoverReply{Found: true, Epoch: 2, Frames: []*Microframe{frame}, Objects: []MemObject{{Addr: addr}}},
		&RecoverReply{Found: false},
		&ErrorReply{Code: ErrCodeNoSuchFrame, Message: "gone"},
		&Barrier{Token: 55},
		&UsageQuery{Program: prog},
		&UsageReply{Accounts: []Usage{{
			Program: prog, Site: 2, Executed: 9, WorkUnits: 3.5,
			BusyNanos: 123456, MsgsSent: 7, BytesMoved: 4096, Outputs: 2,
		}}},
		&UsageReply{},
		&StatusQuery{},
		&StatusReply{Site: 3, Load: 0.5, QueueLen: 4, Programs: 1, Executed: 100,
			Running: 2, Frames: 5, Objects: 6, BusSent: 10, BusRecv: 11, UptimeNs: 999},
		&InputRequest{Program: prog, Prompt: "name?"},
		&InputReply{OK: true, Line: "alice"},
		&InputReply{},
		&MetricsQuery{},
		&MetricsReply{Site: 2, Samples: []MetricSample{
			{Name: "exec.executed", Value: 12},
			{Name: "sched.dispatch_latency.sum_ns", Value: 345678},
		}},
		&MetricsReply{},
		&GossipDigest{From: 3, Round: 17, Entries: []GossipEntry{
			{Site: 1, Incarnation: 2, Status: 0, OriginRound: 16, Load: 0.25, QueueLen: 4, Programs: 1},
			{Site: 4, Incarnation: 1, Status: 2, OriginRound: 9},
		}, Sites: sites},
		&GossipDigest{From: 5, Round: 1},
		&GossipDelta{From: 2, Entries: []GossipEntry{
			{Site: 6, Incarnation: 7, Status: 1, OriginRound: 30, Load: 0.9, QueueLen: 12, Programs: 2},
		}, Sites: sites[:1]},
		&GossipDelta{From: 9},
		&MemReadReplica{Addr: addr},
		&MemReplicaData{Found: true, Version: 5, Data: []byte{7, 8, 9}},
		&MemReplicaData{Found: true, Redirect: 6},
		&MemReplicaData{Found: false},
		&MemHeatTransfer{Addr: addr, Sites: []types.SiteID{1, 4}, Heats: []uint32{12, 3}},
		&MemHeatTransfer{Addr: addr},
	}
}

// TestSamplePayloadsCoverAllKinds pins the property the fuzz seeds rely
// on: samplePayloads produces at least one instance of every registered
// kind, so FuzzPayloadRoundTrip and the round-trip tests cover the
// entire protocol. Registering a new kind without extending
// samplePayloads fails here, not silently.
func TestSamplePayloadsCoverAllKinds(t *testing.T) {
	seen := map[Kind]bool{}
	for _, p := range samplePayloads() {
		seen[p.Kind()] = true
	}
	for k := KindInvalid + 1; k < kindCount; k++ {
		if !seen[k] {
			t.Errorf("samplePayloads has no instance of kind %v", k)
		}
	}
}

func TestMessageRoundTripAllKinds(t *testing.T) {
	for _, p := range samplePayloads() {
		m := &Message{
			Src:     1,
			Dst:     2,
			SrcMgr:  types.MgrScheduling,
			DstMgr:  types.MgrMemory,
			Seq:     42,
			Reply:   7,
			Payload: p,
		}
		buf := m.EncodeBytes()
		got, err := DecodeBytes(buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", p.Kind(), err)
		}
		if got.Src != m.Src || got.Dst != m.Dst || got.SrcMgr != m.SrcMgr ||
			got.DstMgr != m.DstMgr || got.Seq != m.Seq || got.Reply != m.Reply {
			t.Errorf("%v: header mismatch: %v vs %v", p.Kind(), got, m)
		}
		if !reflect.DeepEqual(got.Payload, p) {
			t.Errorf("%v: payload mismatch:\n got %#v\nwant %#v", p.Kind(), got.Payload, p)
		}
	}
}

func TestMessageRoundTripNilPayload(t *testing.T) {
	m := &Message{Src: 1, Dst: 2, SrcMgr: types.MgrSite, DstMgr: types.MgrSite, Seq: 1}
	got, err := DecodeBytes(m.EncodeBytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Payload != nil {
		t.Errorf("payload = %v, want nil", got.Payload)
	}
}

func TestDecodeTruncatedAllKinds(t *testing.T) {
	// Every proper prefix of every encoded message must fail to decode
	// cleanly (never panic, never succeed with garbage) — except prefixes
	// that happen to end exactly at a payload boundary, which cannot
	// exist because the kind tag precedes the payload.
	for _, p := range samplePayloads() {
		m := &Message{Src: 1, Dst: 2, SrcMgr: 1, DstMgr: 2, Seq: 1, Payload: p}
		buf := m.EncodeBytes()
		for cut := 0; cut < len(buf); cut++ {
			if _, err := DecodeBytes(buf[:cut]); err == nil {
				// A cut inside trailing optional data may decode if the
				// payload is self-delimiting; verify it at least returned
				// a message of the right kind rather than garbage.
				got, _ := DecodeBytes(buf[:cut])
				if got == nil || got.Payload == nil || got.Payload.Kind() != p.Kind() {
					t.Errorf("%v cut=%d: silent bad decode", p.Kind(), cut)
				}
			}
		}
	}
}

func TestDecodeUnknownKind(t *testing.T) {
	w := NewWriter(0)
	m := &Message{Src: 1, Dst: 2, Payload: &Ping{}}
	m.Encode(w)
	buf := w.Bytes()
	// Corrupt the kind tag (last 2 header bytes before payload).
	buf[headerSize-2] = 0xFF
	buf[headerSize-1] = 0xFF
	if _, err := DecodeBytes(buf); err == nil {
		t.Fatal("expected error for unknown kind")
	} else if !errors.Is(err, types.ErrBadMessage) {
		t.Fatalf("error %v does not wrap ErrBadMessage", err)
	}
}

func TestKindStringsUnique(t *testing.T) {
	seen := map[string]Kind{}
	for k := KindInvalid; k < kindCount; k++ {
		name := k.String()
		if prev, dup := seen[name]; dup {
			t.Errorf("kinds %d and %d share name %q", prev, k, name)
		}
		seen[name] = k
	}
}

func TestAllKindsRegistered(t *testing.T) {
	for k := KindInvalid + 1; k < kindCount; k++ {
		if NewPayload(k) == nil {
			t.Errorf("kind %v has no registered factory", k)
		}
	}
	if NewPayload(KindInvalid) != nil {
		t.Error("KindInvalid should have no factory")
	}
	if NewPayload(Kind(9999)) != nil {
		t.Error("out-of-range kind should have no factory")
	}
}

func TestErrorReplyErrMapping(t *testing.T) {
	cases := []struct {
		code uint16
		want error
	}{
		{ErrCodeNoSuchObject, types.ErrNoSuchObject},
		{ErrCodeNoSuchFrame, types.ErrNoSuchFrame},
		{ErrCodeNoSuchThread, types.ErrNoSuchThread},
		{ErrCodeNoBinary, types.ErrNoBinary},
		{ErrCodeNoProgram, types.ErrNoProgram},
		{ErrCodeShutdown, types.ErrShutdown},
		{ErrCodeGeneric, types.ErrBadMessage},
	}
	for _, c := range cases {
		e := &ErrorReply{Code: c.code, Message: "ctx"}
		if !errors.Is(e.Err(), c.want) {
			t.Errorf("code %d: %v does not wrap %v", c.code, e.Err(), c.want)
		}
		if e.Err().Error() != "ctx" {
			t.Errorf("code %d: message lost", c.code)
		}
		bare := &ErrorReply{Code: c.code}
		if !errors.Is(bare.Err(), c.want) {
			t.Errorf("code %d bare: wrong sentinel", c.code)
		}
	}
}
