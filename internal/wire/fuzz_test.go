package wire

import (
	"bytes"
	"testing"

	"repro/internal/types"
)

// FuzzDecode hardens the SDMessage parser against arbitrary bytes: it
// must never panic, and anything it accepts must re-encode and re-decode
// to an equivalent message (decode∘encode is a projection).
func FuzzDecode(f *testing.F) {
	for _, p := range samplePayloads() {
		m := &Message{Src: 1, Dst: 2, SrcMgr: types.MgrScheduling,
			DstMgr: types.MgrMemory, Seq: 9, Payload: p}
		f.Add(m.EncodeBytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeBytes(data)
		if err != nil {
			return // rejected: fine
		}
		// Accepted: round-trip must be stable.
		re := m.EncodeBytes()
		m2, err := DecodeBytes(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		re2 := m2.EncodeBytes()
		if !bytes.Equal(re, re2) {
			t.Fatalf("encode not stable:\n first %x\nsecond %x", re, re2)
		}
	})
}

// FuzzPayloadRoundTrip fuzzes each payload codec directly, below the
// message framing: a (kind, bytes) pair is decoded through the kind's
// registered factory, and anything accepted must re-encode and
// re-decode to the same bytes. The corpus is seeded with the golden
// encoding of every registered kind (TestSamplePayloadsCoverAllKinds in
// message_test.go pins that completeness), so the fuzzer starts from a
// valid instance of each codec rather than having to discover the
// formats from zero.
func FuzzPayloadRoundTrip(f *testing.F) {
	for _, p := range samplePayloads() {
		w := NewWriter(0)
		p.MarshalWire(w)
		f.Add(uint16(p.Kind()), append([]byte(nil), w.Bytes()...))
	}
	f.Add(uint16(0), []byte{})
	f.Add(uint16(9999), []byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, k uint16, data []byte) {
		kind := Kind(k)
		if kind <= KindInvalid || kind >= kindCount {
			return
		}
		p := NewPayload(kind)
		if p == nil {
			return
		}
		r := NewReader(data)
		p.UnmarshalWire(r)
		if r.Err() != nil {
			return // rejected: fine
		}
		w1 := NewWriter(0)
		p.MarshalWire(w1)
		q := NewPayload(kind)
		r2 := NewReader(w1.Bytes())
		q.UnmarshalWire(r2)
		if r2.Err() != nil {
			t.Fatalf("%v: re-decode failed: %v", kind, r2.Err())
		}
		w2 := NewWriter(0)
		q.MarshalWire(w2)
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("%v: encode not stable:\n first %x\nsecond %x", kind, w1.Bytes(), w2.Bytes())
		}
	})
}

// FuzzMicroframe does the same for the standalone frame codec (frames
// travel inside several payloads and via checkpoints).
func FuzzMicroframe(f *testing.F) {
	fr := NewMicroframe(types.GlobalAddr{Home: 1, Local: 2},
		types.ThreadID{Program: types.MakeProgramID(1, 1), Index: 3}, 2,
		Target{Addr: types.GlobalAddr{Home: 4, Local: 5}, Slot: 1})
	if _, err := fr.Apply(0, []byte("x")); err != nil {
		f.Fatal(err)
	}
	w := NewWriter(0)
	fr.MarshalWire(w)
	f.Add(w.Bytes())
	f.Add([]byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		var g Microframe
		r := NewReader(data)
		g.UnmarshalWire(r)
		if r.Err() != nil {
			return
		}
		// Accepted frames must re-encode stably.
		w1 := NewWriter(0)
		g.MarshalWire(w1)
		var h Microframe
		r2 := NewReader(w1.Bytes())
		h.UnmarshalWire(r2)
		if r2.Err() != nil {
			t.Fatalf("re-decode failed: %v", r2.Err())
		}
		w2 := NewWriter(0)
		h.MarshalWire(w2)
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatal("frame encode not stable")
		}
	})
}
