package wire

import (
	"fmt"

	"repro/internal/types"
)

// Kind tags the payload type of an SDMessage.
type Kind uint16

// Payload kinds, grouped by owning manager. The numbering is part of the
// wire format; append only.
const (
	KindInvalid Kind = iota

	// Cluster manager (sign-on, cluster list, id allocation, liveness).
	KindSignOnRequest
	KindSignOnReply
	KindSiteAnnounce
	KindSignOffNotice
	KindLoadReport
	KindIDBlockRequest
	KindIDBlockReply
	KindPing
	KindPong

	// Scheduling manager (help requests, frame migration).
	KindHelpRequest
	KindHelpReply
	KindFramePush

	// Attraction memory (parameter application, object migration).
	KindApplyParam
	KindMemRead
	KindMemReadReply
	KindMemWrite
	KindMemWriteAck
	KindMemMigrate
	KindHomeUpdate
	KindFrameRelocate

	// Code manager (artifact distribution, on-the-fly compilation).
	KindCodeRequest
	KindCodeReply
	KindCodePublish

	// I/O manager (remote files, frontend).
	KindIORequest
	KindIOReply
	KindFrontendOutput

	// Program manager (registration, termination).
	KindProgramRegister
	KindProgramTerminated
	KindProgramQuery
	KindProgramInfo

	// Checkpoint / crash management.
	KindCheckpointStore
	KindCheckpointAck
	KindCrashNotice
	KindRecoverRequest
	KindRecoverReply

	// Generic.
	KindError
	KindBarrier

	// Accounting manager (paper §2.2/§6: renting out cluster time).
	KindUsageQuery
	KindUsageReply

	// Site manager status queries (paper §4: "query the status of the
	// local site").
	KindStatusQuery
	KindStatusReply

	// Frontend input (paper §4: "the I/O manager sends all output and
	// input requests to the front end").
	KindInputRequest
	KindInputReply

	// Attraction memory read replication (COMA copies, paper §4: the
	// memory object "can then migrate or even be copied to other
	// sites").
	KindMemInvalidate

	// Cluster-wide observability (paper §4: the site manager "provides
	// the functionality to query the status of the local site").
	KindMetricsQuery
	KindMetricsReply

	// Batched write-invalidation: all addresses one holder site must
	// drop travel in one round-trip instead of one per address.
	KindMemInvalidateBatch

	// Epidemic membership & load dissemination (internal/gossip): a
	// bounded digest of the sender's membership view pushed to a few
	// random peers per tick, and the anti-entropy delta a receiver
	// answers with when it knows fresher rows.
	KindGossipDigest
	KindGossipDelta

	// Home-based coherence (attraction memory v2): a reader faults in
	// a cached read replica from the owning site instead of migrating
	// the object, the owner answers with data + version (or a
	// redirect), and when ownership moves because a remote writer's
	// access heat dominates, the decayed heat table travels with the
	// object so the new owner does not restart cold.
	KindMemReadReplica
	KindMemReplicaData
	KindMemHeatTransfer

	kindCount
)

// NumKinds reports the number of defined message kinds (including
// KindInvalid), letting callers size per-kind lookup tables.
func NumKinds() int { return int(kindCount) }

var kindNames = map[Kind]string{
	KindInvalid:            "invalid",
	KindSignOnRequest:      "sign-on-request",
	KindSignOnReply:        "sign-on-reply",
	KindSiteAnnounce:       "site-announce",
	KindSignOffNotice:      "sign-off-notice",
	KindLoadReport:         "load-report",
	KindIDBlockRequest:     "id-block-request",
	KindIDBlockReply:       "id-block-reply",
	KindPing:               "ping",
	KindPong:               "pong",
	KindHelpRequest:        "help-request",
	KindHelpReply:          "help-reply",
	KindFramePush:          "frame-push",
	KindApplyParam:         "apply-param",
	KindMemRead:            "mem-read",
	KindMemReadReply:       "mem-read-reply",
	KindMemWrite:           "mem-write",
	KindMemWriteAck:        "mem-write-ack",
	KindMemMigrate:         "mem-migrate",
	KindHomeUpdate:         "home-update",
	KindFrameRelocate:      "frame-relocate",
	KindCodeRequest:        "code-request",
	KindCodeReply:          "code-reply",
	KindCodePublish:        "code-publish",
	KindIORequest:          "io-request",
	KindIOReply:            "io-reply",
	KindFrontendOutput:     "frontend-output",
	KindProgramRegister:    "program-register",
	KindProgramTerminated:  "program-terminated",
	KindProgramQuery:       "program-query",
	KindProgramInfo:        "program-info",
	KindCheckpointStore:    "checkpoint-store",
	KindCheckpointAck:      "checkpoint-ack",
	KindCrashNotice:        "crash-notice",
	KindRecoverRequest:     "recover-request",
	KindRecoverReply:       "recover-reply",
	KindError:              "error",
	KindBarrier:            "barrier",
	KindUsageQuery:         "usage-query",
	KindUsageReply:         "usage-reply",
	KindStatusQuery:        "status-query",
	KindStatusReply:        "status-reply",
	KindInputRequest:       "input-request",
	KindInputReply:         "input-reply",
	KindMemInvalidate:      "mem-invalidate",
	KindMetricsQuery:       "metrics-query",
	KindMetricsReply:       "metrics-reply",
	KindMemInvalidateBatch: "mem-invalidate-batch",
	KindGossipDigest:       "gossip-digest",
	KindGossipDelta:        "gossip-delta",
	KindMemReadReplica:     "mem-read-replica",
	KindMemReplicaData:     "mem-replica-data",
	KindMemHeatTransfer:    "mem-heat-transfer",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", uint16(k))
}

// Payload is one SDMessage body. Implementations marshal themselves with
// the explicit codec; decoding goes through the kind registry.
type Payload interface {
	Kind() Kind
	MarshalWire(w *Writer)
	UnmarshalWire(r *Reader)
}

// payloadFactories maps each kind to a constructor for decoding.
var payloadFactories [kindCount]func() Payload

// register installs the factory for a payload kind. Called from init;
// panics on duplicates to catch wiring errors at startup.
func register(k Kind, f func() Payload) {
	if payloadFactories[k] != nil {
		panic(fmt.Sprintf("wire: duplicate payload registration for %v", k))
	}
	payloadFactories[k] = f
}

// NewPayload returns a zero payload value for kind k, or nil if k is not a
// registered payload kind.
func NewPayload(k Kind) Payload {
	if int(k) >= len(payloadFactories) || payloadFactories[k] == nil {
		return nil
	}
	return payloadFactories[k]()
}

// Message is a complete SDMessage: routing header plus payload. All
// inter-site (and, through the message manager, inter-manager)
// communication in the SDVM is carried by values of this type.
type Message struct {
	Src    types.SiteID    // logical source site
	Dst    types.SiteID    // logical destination site (may be Broadcast)
	SrcMgr types.ManagerID // sending manager
	DstMgr types.ManagerID // receiving manager
	Seq    uint64          // sender-unique sequence number
	Reply  uint64          // sequence number this message answers; 0 = unsolicited

	Payload Payload
}

func (m *Message) String() string {
	k := KindInvalid
	if m.Payload != nil {
		k = m.Payload.Kind()
	}
	return fmt.Sprintf("msg(%v %v→%v %v→%v seq=%d reply=%d)",
		k, m.Src, m.SrcMgr, m.Dst, m.DstMgr, m.Seq, m.Reply)
}

// headerSize is the fixed encoded size of the message header:
// src(4) dst(4) srcMgr(1) dstMgr(1) seq(8) reply(8) kind(2).
const headerSize = 4 + 4 + 1 + 1 + 8 + 8 + 2

// Encode serializes m into w.
//
//sdvm:hotpath
func (m *Message) Encode(w *Writer) {
	w.SiteID(m.Src)
	w.SiteID(m.Dst)
	w.Uint8(uint8(m.SrcMgr))
	w.Uint8(uint8(m.DstMgr))
	w.Uint64(m.Seq)
	w.Uint64(m.Reply)
	if m.Payload == nil {
		w.Uint16(uint16(KindInvalid))
		return
	}
	w.Uint16(uint16(m.Payload.Kind()))
	m.Payload.MarshalWire(w)
}

// EncodeBytes serializes m into a fresh buffer.
func (m *Message) EncodeBytes() []byte {
	w := NewWriter(headerSize + 64)
	m.Encode(w)
	return w.Bytes()
}

// Decode parses one message from r, materializing a fresh Message whose
// payload owns all of its memory — safe to retain and hand across
// goroutines, which is what the message bus does with it.
//
// Deliberately not //sdvm:hotpath: materializing costs per-message
// allocations by design (the bus retains decoded messages in reply
// waiters, the inbox, and handlers). The allocation-free decode path is
// Decoder.Decode, which reuses scratch and returns views.
func Decode(r *Reader) (*Message, error) {
	m := &Message{
		Src:    r.SiteID(),
		Dst:    r.SiteID(),
		SrcMgr: types.ManagerID(r.Uint8()),
		DstMgr: types.ManagerID(r.Uint8()),
		Seq:    r.Uint64(),
		Reply:  r.Uint64(),
	}
	kind := Kind(r.Uint16())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if kind == KindInvalid {
		return m, nil
	}
	p := NewPayload(kind)
	if p == nil {
		return nil, fmt.Errorf("%w: unknown payload kind %d", types.ErrBadMessage, kind)
	}
	p.UnmarshalWire(r)
	if err := r.Err(); err != nil {
		return nil, err
	}
	m.Payload = p
	return m, nil
}

// DecodeBytes parses one message from buf.
func DecodeBytes(buf []byte) (*Message, error) {
	return Decode(NewReader(buf))
}

// errUnknownKind is Decoder's static unknown-kind error. Unlike Decode's
// it carries no kind number — the trade for an allocation-free failure
// path on hostile input.
var errUnknownKind = fmt.Errorf("%w: unknown payload kind", types.ErrBadMessage)

// Decoder decodes messages without allocating: it keeps one reusable
// payload instance per kind, one Message, and an embedded alias-mode
// Reader, so steady-state decoding of well-formed traffic costs zero
// allocations (the wire benchmarks and the CI allocation gate pin this).
//
// Ownership contract: the returned Message, its payload, and every
// slice field — including byte fields, which are views of buf itself —
// are valid only until the next Decode call. Callers that retain
// anything (the message bus does) must use Decode/DecodeBytes instead,
// or deep-copy first. A Decoder is not safe for concurrent use; use one
// per goroutine.
type Decoder struct {
	r        Reader
	msg      Message
	payloads [kindCount]Payload
}

// NewDecoder returns a Decoder with its per-kind scratch payloads
// preallocated.
func NewDecoder() *Decoder {
	d := &Decoder{}
	for k := Kind(1); k < kindCount; k++ {
		d.payloads[k] = NewPayload(k)
	}
	return d
}

// Decode parses one message from buf into the Decoder's reused scratch.
// See the type comment for the aliasing contract.
//
//sdvm:hotpath
func (d *Decoder) Decode(buf []byte) (*Message, error) {
	d.r = Reader{buf: buf, alias: true}
	r := &d.r
	m := &d.msg
	m.Src = r.SiteID()
	m.Dst = r.SiteID()
	m.SrcMgr = types.ManagerID(r.Uint8())
	m.DstMgr = types.ManagerID(r.Uint8())
	m.Seq = r.Uint64()
	m.Reply = r.Uint64()
	kind := Kind(r.Uint16())
	if err := r.Err(); err != nil {
		return nil, err
	}
	m.Payload = nil
	if kind == KindInvalid {
		return m, nil
	}
	if int(kind) >= len(d.payloads) || d.payloads[kind] == nil {
		return nil, errUnknownKind
	}
	p := d.payloads[kind]
	p.UnmarshalWire(r)
	if err := r.Err(); err != nil {
		return nil, err
	}
	m.Payload = p
	return m, nil
}
