package sitemgr_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/daemon"
	"repro/internal/exec"
	"repro/internal/transport/inproc"
	"repro/internal/types"
	"repro/internal/wire"
	"repro/internal/workloads"
)

// siteCluster builds daemons (the site manager needs the full stack).
func siteCluster(t *testing.T, n int) []*daemon.Daemon {
	t.Helper()
	fab := inproc.New(inproc.LinkProfile{})
	t.Cleanup(fab.Close)
	ds := make([]*daemon.Daemon, n)
	for i := 0; i < n; i++ {
		ds[i] = daemon.New(daemon.Config{
			PhysAddr:        fmt.Sprintf("site-%d", i),
			Network:         fab,
			WorkModel:       exec.WorkSimulated,
			WorkUnit:        time.Millisecond,
			LoadReportEvery: 20 * time.Millisecond,
			Seed:            int64(i + 1),
		})
		if i == 0 {
			if err := ds[0].Bootstrap(); err != nil {
				t.Fatal(err)
			}
		} else if err := ds[i].Join("site-0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ds[i].Kill)
	}
	return ds
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestLoadReportsPropagate(t *testing.T) {
	ds := siteCluster(t, 2)
	// Start a long-ish program on site 0 so it reports real load.
	prog, err := ds[0].Submit(workloads.PrimesApp(), workloads.PrimesArgs(40, 8, 5)...)
	if err != nil {
		t.Fatal(err)
	}
	// Site 1 must observe nonzero statistics about site 0 while the
	// program runs (load or queue length).
	waitFor(t, "load report visible", func() bool {
		info, ok := ds[1].CM.Lookup(ds[0].Self())
		return ok && (info.Load > 0 || info.QueueLen > 0 || info.Programs > 0)
	})
	if _, ok := ds[0].WaitResult(prog, 60*time.Second); !ok {
		t.Fatal("program did not terminate")
	}
}

func TestStatusSnapshot(t *testing.T) {
	ds := siteCluster(t, 1)
	prog, err := ds[0].Submit(workloads.PrimesApp(), workloads.PrimesArgs(10, 5, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ds[0].WaitResult(prog, 60*time.Second); !ok {
		t.Fatal("no result")
	}
	st := ds[0].Site.Status()
	if st.Executed == 0 {
		// A single-site run routes everything through direct manager
		// calls, so bus counters may legitimately be zero — but
		// microthreads must have executed.
		t.Fatalf("implausible status: %+v", st)
	}
	if st.Memory.FramesFired == 0 {
		t.Fatal("status lost memory stats")
	}
	if ds[0].Site.Uptime() <= 0 {
		t.Fatal("no uptime")
	}
}

func TestPickSuccessorPrefersIdle(t *testing.T) {
	ds := siteCluster(t, 3)
	waitFor(t, "cluster complete", func() bool { return ds[0].CM.Size() == 3 })

	// Report site 1 as busy, site 2 as idle.
	ds[1].CM.UpdateSelf(0.9, 5, 1)
	ds[1].CM.BroadcastLoad()
	ds[2].CM.UpdateSelf(0.0, 0, 0)
	ds[2].CM.BroadcastLoad()
	waitFor(t, "loads visible", func() bool {
		a, ok1 := ds[0].CM.Lookup(ds[1].Self())
		b, ok2 := ds[0].CM.Lookup(ds[2].Self())
		return ok1 && ok2 && a.Load > 0.8 && b.Load < 0.1
	})

	if got := ds[0].Site.PickSuccessor(); got != ds[2].Self() {
		t.Fatalf("PickSuccessor = %v, want the idle site %v", got, ds[2].Self())
	}
}

func TestSignOffRelocatesQueuedFrames(t *testing.T) {
	ds := siteCluster(t, 2)
	waitFor(t, "cluster complete", func() bool { return ds[1].CM.Size() == 2 })

	// Queue frames directly on site 1's scheduler (a program the other
	// site knows how to resolve is unnecessary — we only check motion).
	prog := ds[1].PM.NewProgram()
	ds[1].PM.Register(wire.ProgramRegister{Program: prog, CodeHome: ds[1].Self(), Frontend: ds[1].Self()})
	for i := 0; i < 3; i++ {
		f := wire.NewMicroframe(
			types.GlobalAddr{Home: ds[1].Self(), Local: uint64(i + 1)},
			types.ThreadID{Program: prog, Index: 0}, 0)
		ds[1].Sched.Enqueue(f)
	}
	// Also one waiting frame and one object in the attraction memory.
	ds[1].Mem.Alloc(prog, []byte("obj"))
	ds[1].Mem.NewFrame(types.ThreadID{Program: prog, Index: 0}, 1, types.PriorityNormal, 0)

	if err := ds[1].SignOff(); err != nil {
		t.Fatalf("sign-off: %v", err)
	}

	// Everything must now live on site 0. (The pushed executable frames
	// can't resolve code — the func name is unregistered — but they
	// must arrive; check memory first, which is deterministic.)
	waitFor(t, "memory relocated", func() bool {
		return ds[0].Mem.ObjectCount() == 1 && ds[0].Mem.FrameCount() == 1
	})
	waitFor(t, "site removed from list", func() bool {
		_, known := ds[0].CM.Lookup(ds[1].Self())
		return !known
	})
}

func TestLastSiteSignOffIsClean(t *testing.T) {
	ds := siteCluster(t, 1)
	if err := ds[0].SignOff(); err != nil {
		t.Fatalf("single-site sign-off: %v", err)
	}
}

// TestQueryStatusDepartedSite exercises the gap a monitor lives in: a
// site is discovered, then vanishes before the status query reaches it.
// The query must come back with an error (timeout/unreachable), not hang
// and not panic.
func TestQueryStatusDepartedSite(t *testing.T) {
	ds := siteCluster(t, 2)
	waitFor(t, "cluster complete", func() bool { return ds[0].CM.Size() == 2 })

	victim := ds[1].Self()
	ds[1].Kill() // abrupt: no goodbye broadcast, roster still lists it

	start := time.Now()
	_, err := ds[0].Site.QueryStatus(victim)
	if err == nil {
		t.Fatal("QueryStatus against a dead site succeeded")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("QueryStatus took %v; the 3s request timeout did not bound it", elapsed)
	}
}

// metricsCluster is siteCluster with every daemon's registry enabled.
func metricsCluster(t *testing.T, n int) []*daemon.Daemon {
	t.Helper()
	fab := inproc.New(inproc.LinkProfile{})
	t.Cleanup(fab.Close)
	ds := make([]*daemon.Daemon, n)
	for i := 0; i < n; i++ {
		ds[i] = daemon.New(daemon.Config{
			PhysAddr:        fmt.Sprintf("site-%d", i),
			Network:         fab,
			WorkModel:       exec.WorkSimulated,
			WorkUnit:        time.Millisecond,
			LoadReportEvery: 20 * time.Millisecond,
			Metrics:         true,
			Seed:            int64(i + 1),
		})
		if i == 0 {
			if err := ds[0].Bootstrap(); err != nil {
				t.Fatal(err)
			}
		} else if err := ds[i].Join("site-0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ds[i].Kill)
	}
	return ds
}

// TestMetricsAggregationThreeSites is the tentpole's acceptance check:
// query every member of a 3-site cluster over the bus and aggregate —
// every site must answer with a non-empty snapshot, and the merged view
// must show cluster-wide message traffic and executed microthreads.
func TestMetricsAggregationThreeSites(t *testing.T) {
	ds := metricsCluster(t, 3)
	waitFor(t, "cluster complete", func() bool { return ds[0].CM.Size() == 3 })

	prog, err := ds[0].Submit(workloads.PrimesApp(), workloads.PrimesArgs(60, 10, 2)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ds[0].WaitResult(prog, 60*time.Second); !ok {
		t.Fatal("program did not terminate")
	}

	totals := map[string]int64{}
	for _, d := range ds {
		mr, qerr := ds[0].Site.QueryMetrics(d.Self())
		if qerr != nil {
			t.Fatalf("QueryMetrics(%v): %v", d.Self(), qerr)
		}
		if mr.Site != d.Self() {
			t.Fatalf("reply from %v carries site %v", d.Self(), mr.Site)
		}
		if len(mr.Samples) == 0 {
			t.Fatalf("site %v answered an empty snapshot", d.Self())
		}
		perSite := map[string]int64{}
		for _, s := range mr.Samples {
			perSite[s.Name] += s.Value
			totals[s.Name] += s.Value
		}
		// Every member — bootstrapper and joiners alike — has at least
		// sent bus traffic (sign-on, load reports).
		if perSite["bus.sent_msgs"] == 0 {
			t.Fatalf("site %v reports no bus traffic: %v", d.Self(), perSite["bus.sent_msgs"])
		}
	}
	for _, name := range []string{"bus.sent_msgs", "bus.recv_msgs", "exec.executed",
		"sched.enqueued", "mem.frames_fired"} {
		if totals[name] <= 0 {
			t.Fatalf("aggregated %s = %d, want > 0", name, totals[name])
		}
	}
}
