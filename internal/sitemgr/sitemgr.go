// Package sitemgr implements the SDVM's site manager (paper §4).
//
// "In contrast to the cluster manager, the site manager focuses on the
// local site. It offers the functionality to start and end the local
// site, and to sign on to an existing SDVM cluster. It also collects
// performance data about the local site, e.g. the workload, memory load,
// number of executable microframes in the queue, the number of programs
// the local site works on. Moreover, it provides the functionality to
// query the status of the local site, i.e. all local managers."
package sitemgr

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/exec"
	"repro/internal/gossip"
	"repro/internal/iomgr"
	"repro/internal/memory"
	"repro/internal/metrics"
	"repro/internal/msgbus"
	"repro/internal/program"
	"repro/internal/sched"
	"repro/internal/types"
	"repro/internal/wire"
)

// Status is a point-in-time view of every local manager.
type Status struct {
	Site     types.SiteInfo
	Load     float64
	QueueLen int
	Programs int
	Executed uint64
	ExecErrs uint64
	Running  int
	Memory   memory.Stats
	Sched    sched.Stats
	BusSent  uint64
	BusRecv  uint64
	BusDrop  uint64
	Frames   int
	Objects  int
}

func (s Status) String() string {
	return fmt.Sprintf("%v load=%.2f queue=%d progs=%d executed=%d running=%d frames=%d objects=%d",
		s.Site.ID, s.Load, s.QueueLen, s.Programs, s.Executed, s.Running, s.Frames, s.Objects)
}

// Manager is one site's site manager.
type Manager struct {
	bus   *msgbus.Bus
	cm    *cluster.Manager
	sched *sched.Manager
	exec  *exec.Manager
	mem   *memory.Manager
	io    *iomgr.Manager
	pm    *program.Manager

	// gsp, when set, replaces the per-tick LoadReport broadcast with one
	// epidemic round and the goodbye broadcast with a gossip tombstone.
	gsp *gossip.Manager

	interval time.Duration
	window   int

	// reg is the daemon's metrics registry (nil when metrics are
	// disabled). Written once by SetMetrics before Start.
	reg *metrics.Registry

	mu        sync.Mutex
	lastBusy  int64
	lastTick  time.Time
	load      float64
	startedAt time.Time
	successor types.SiteID // picked at SignOff; inherits local state

	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// New returns a site manager. interval is the load-report period.
func New(bus *msgbus.Bus, cm *cluster.Manager, s *sched.Manager, e *exec.Manager,
	mem *memory.Manager, io *iomgr.Manager, pm *program.Manager,
	interval time.Duration, window int) *Manager {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	if window <= 0 {
		window = exec.DefaultWindow
	}
	m := &Manager{
		bus:       bus,
		cm:        cm,
		sched:     s,
		exec:      e,
		mem:       mem,
		io:        io,
		pm:        pm,
		interval:  interval,
		window:    window,
		startedAt: time.Now(),
		done:      make(chan struct{}),
	}
	bus.Register(types.MgrSite, m)
	return m
}

// SetMetrics hands the site manager the daemon's registry so remote
// MetricsQuery messages can be answered. Must be called before Start; a
// nil registry answers with an empty snapshot.
func (m *Manager) SetMetrics(reg *metrics.Registry) { m.reg = reg }

// SetGossip switches load dissemination and the sign-off goodbye from
// roster-wide broadcast onto the epidemic layer. Must be called before
// Start; the gossip tick piggybacks on the statistics ticker, so gossip
// needs no goroutine of its own.
func (m *Manager) SetGossip(g *gossip.Manager) { m.gsp = g }

// Start launches the statistics loop that refreshes and broadcasts this
// site's load — the data peers use to aim help requests.
func (m *Manager) Start() {
	m.mu.Lock()
	m.lastTick = time.Now()
	m.lastBusy = m.exec.BusyNanos()
	m.mu.Unlock()

	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		ticker := time.NewTicker(m.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				m.tick()
			case <-m.done:
				return
			}
		}
	}()
}

// Close stops the statistics loop.
func (m *Manager) Close() {
	m.once.Do(func() { close(m.done) })
	m.wg.Wait()
}

// tick recomputes the load over the last interval and disseminates it:
// one bounded gossip round when the epidemic layer is wired, a
// roster-wide LoadReport broadcast in legacy mode.
func (m *Manager) tick() {
	now := time.Now()
	busy := m.exec.BusyNanos()

	m.mu.Lock()
	wall := now.Sub(m.lastTick)
	delta := busy - m.lastBusy
	m.lastTick = now
	m.lastBusy = busy
	load := 0.0
	if wall > 0 {
		load = float64(delta) / (float64(wall) * float64(m.window))
		if load > 1 {
			load = 1
		}
	}
	m.load = load
	m.mu.Unlock()

	queueLen := int32(m.sched.QueueLen())
	programs := int32(len(m.pm.Programs()))
	m.cm.UpdateSelf(load, queueLen, programs)
	if m.gsp != nil {
		m.gsp.Tick(load, queueLen, programs)
		return
	}
	m.cm.BroadcastLoad()
}

// Load returns the most recent load estimate in [0,1].
func (m *Manager) Load() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.load
}

// Uptime returns how long the site has been running.
func (m *Manager) Uptime() time.Duration { return time.Since(m.startedAt) }

// Status snapshots every local manager.
func (m *Manager) Status() Status {
	sent, recv, drop := m.bus.Stats()
	return Status{
		Site:     m.cm.Self(),
		Load:     m.Load(),
		QueueLen: m.sched.QueueLen(),
		Programs: len(m.pm.Programs()),
		Executed: m.exec.Executed(),
		ExecErrs: m.exec.Errors(),
		Running:  m.exec.Running(),
		Memory:   m.mem.Stats(),
		Sched:    m.sched.Stats(),
		BusSent:  sent,
		BusRecv:  recv,
		BusDrop:  drop,
		Frames:   m.mem.FrameCount(),
		Objects:  m.mem.ObjectCount(),
	}
}

// PickSuccessor chooses the site that inherits this site's state at
// sign-off: the least-loaded live peer.
func (m *Manager) PickSuccessor() types.SiteID {
	var best types.SiteID
	bestLoad := 2.0
	for _, s := range m.cm.Sites() {
		if s.Load < bestLoad {
			bestLoad = s.Load
			best = s.ID
		}
	}
	return best
}

// SignOff executes the paper's controlled leave (§3.4): stop taking new
// work, finish running microthreads, relocate every queued frame and the
// local part of the global memory to other sites, then announce the
// departure. The caller closes the bus and network afterwards.
func (m *Manager) SignOff() error {
	// 1. Stop the statistics loop; stale load reports would attract
	//    help requests to a dying site.
	m.Close()

	// 2. Stop the scheduler — no new work is accepted or handed out —
	//    and let in-flight microthreads finish. The successor is picked
	//    (and told to the scheduler) first: frames that arrive after
	//    Close — late help replies, pushes drained from the bus inbox
	//    after the goodbye empties the roster — fall back to it instead
	//    of being dropped.
	successor := m.PickSuccessor()
	m.mu.Lock()
	m.successor = successor
	m.mu.Unlock()
	if successor != types.InvalidSite {
		m.sched.SetFallback(successor)
	}
	m.sched.Close()
	m.exec.Wait()
	if successor == types.InvalidSite {
		// Last site standing: nothing to relocate to.
		m.goodbye()
		m.io.CloseAll()
		return nil
	}

	// 3. Relocate queued executable frames.
	for _, f := range m.sched.DrainAll() {
		if err := m.sched.PushFrame(successor, f); err != nil {
			return fmt.Errorf("sitemgr: relocate frame %v: %w", f.ID, err)
		}
	}

	// 4. Relocate waiting frames and memory objects.
	if err := m.mem.EvacuateTo(successor); err != nil {
		return err
	}

	// 5. Say goodbye.
	m.goodbye()
	m.io.CloseAll()
	return nil
}

// goodbye announces the departure: a Left tombstone pushed to a gossip
// fanout's worth of peers when the epidemic layer is wired (it carries
// the sign-off from there in O(log N) rounds), a roster-wide
// SignOffNotice broadcast in legacy mode.
func (m *Manager) goodbye() {
	if m.gsp != nil {
		m.gsp.Leave()
		return
	}
	m.cm.AnnounceSignOff()
}

// Successor returns the site SignOff picked to inherit local state
// (InvalidSite before sign-off, or when this was the last site).
func (m *Manager) Successor() types.SiteID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.successor
}

// HandleMessage implements msgbus.Handler. The site manager answers
// liveness probes and remote status queries — "it provides the
// functionality to query the status of the local site, i.e. all local
// managers" (paper §4).
func (m *Manager) HandleMessage(msg *wire.Message) {
	switch p := msg.Payload.(type) {
	case *wire.Ping:
		_ = m.bus.Reply(msg, types.MgrSite, &wire.Pong{Nonce: p.Nonce})
	case *wire.StatusQuery:
		st := m.Status()
		_ = m.bus.Reply(msg, types.MgrSite, &wire.StatusReply{
			Site:     st.Site.ID,
			Load:     st.Load,
			QueueLen: int32(st.QueueLen),
			Programs: int32(st.Programs),
			Executed: st.Executed,
			Running:  int32(st.Running),
			Frames:   int32(st.Frames),
			Objects:  int32(st.Objects),
			BusSent:  st.BusSent,
			BusRecv:  st.BusRecv,
			UptimeNs: int64(m.Uptime()),
		})
	case *wire.MetricsQuery:
		snap := m.reg.Snapshot()
		samples := make([]wire.MetricSample, len(snap))
		for i, s := range snap {
			samples[i] = wire.MetricSample{Name: s.Name, Value: s.Value}
		}
		_ = m.bus.Reply(msg, types.MgrSite, &wire.MetricsReply{
			Site:    m.bus.Self(),
			Samples: samples,
		})
	}
}

// QueryStatus fetches a remote site's status snapshot.
func (m *Manager) QueryStatus(site types.SiteID) (*wire.StatusReply, error) {
	m.introduce(site)
	reply, err := m.bus.Request(site, types.MgrSite, types.MgrSite,
		&wire.StatusQuery{}, 3*time.Second)
	if err != nil {
		return nil, err
	}
	sr, ok := reply.Payload.(*wire.StatusReply)
	if !ok {
		return nil, fmt.Errorf("%w: status reply %T", types.ErrBadMessage, reply.Payload)
	}
	return sr, nil
}

// introduce pushes this site's own gossip row to the peer ahead of a
// request on the same FIFO connection: a fresh joiner can query the
// whole cluster immediately, before the epidemic has spread its row —
// without the introduction, a peer that never heard of this site could
// not route the reply and the request would time out.
func (m *Manager) introduce(site types.SiteID) {
	if m.gsp != nil {
		m.gsp.Introduce(site)
	}
}

// QueryMetrics fetches a remote site's metrics snapshot. Querying the
// local site works too (the bus loops it back).
func (m *Manager) QueryMetrics(site types.SiteID) (*wire.MetricsReply, error) {
	m.introduce(site)
	reply, err := m.bus.Request(site, types.MgrSite, types.MgrSite,
		&wire.MetricsQuery{}, 3*time.Second)
	if err != nil {
		return nil, err
	}
	mr, ok := reply.Payload.(*wire.MetricsReply)
	if !ok {
		return nil, fmt.Errorf("%w: metrics reply %T", types.ErrBadMessage, reply.Payload)
	}
	return mr, nil
}
