// Package udp carries SDVM datagrams over UDP with a small reliability
// layer: sequencing, reordering, acknowledgements, retransmission, and
// fragmentation.
//
// The paper's network manager section (§4) rejects raw UDP — "UDP does
// not guarantee the delivery of packets in the same order as they were
// sent ... as the SDVM contains not yet a functionality to collect and
// sort incoming UDP-packages and rerequest lost packages, it is not
// viable at present" — and eyes T/TCP because "TCP needs a lot of
// communication to establish and end a connection". This package builds
// precisely the missing functionality: an ordered, reliable datagram
// stream over UDP with *zero-round-trip* stream setup (a stream is
// identified by a random id carried in every packet, T/TCP-style), so
// the many small inter-site messages the paper worries about pay no
// per-connection handshake.
//
// Wire format of one UDP packet (little-endian):
//
//	stream id  uint64   random per dialer; demultiplexes streams
//	kind       uint8    data | ack | fin
//	seq        uint64   data: packet sequence; ack: cumulative ack
//	dgram seq  uint32   data: which SDVM datagram this fragment belongs to
//	frag idx   uint16   data: fragment index within the datagram
//	frag total uint16   data: fragments in the datagram
//	payload    bytes    data: fragment contents
package udp

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/transport"
)

// Tunables of the reliability layer.
const (
	// maxPayload keeps fragments under typical MTU-ish limits while
	// staying far below UDP's 64 KiB ceiling.
	maxPayload = 32 * 1024
	// window bounds unacknowledged packets in flight per stream.
	window = 64
	// retransmitAfter is the initial retransmission timeout.
	retransmitAfter = 40 * time.Millisecond
	// maxRetransmits gives up on a peer after this many resends of one
	// packet (the endpoint then fails like a broken TCP connection).
	maxRetransmits = 60
	// retransmitBurst bounds how many packets one timer tick resends;
	// blasting the whole window again is how loss turns into collapse.
	retransmitBurst = 8
	// socketBuffer sizes the UDP socket buffers: a full send window of
	// max-size fragments must fit, or loopback bursts drop packets.
	socketBuffer = 4 << 20
	// ackDelay batches acknowledgements slightly.
	ackDelay = 2 * time.Millisecond
)

// packet kinds.
const (
	kindData uint8 = iota + 1
	kindAck
	kindFin
	kindHello    // stream announcement (dial)
	kindHelloAck // listener's answer; completes Dial
)

const headerLen = 8 + 1 + 8 + 4 + 2 + 2

// Net is the UDP implementation of transport.Network. The zero value is
// ready to use.
type Net struct{}

// New returns a UDP network.
func New() *Net { return &Net{} }

// Listen binds a UDP socket and serves inbound streams.
func (*Net) Listen(addr string) (transport.Listener, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udp listen %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("udp listen %s: %w", addr, err)
	}
	_ = conn.SetReadBuffer(socketBuffer)
	_ = conn.SetWriteBuffer(socketBuffer)
	l := &listener{
		conn:    conn,
		backlog: make(chan *endpoint, 64),
		streams: make(map[string]*endpoint),
		done:    make(chan struct{}),
	}
	go l.readLoop()
	return l, nil
}

// Dial opens a zero-RTT stream to a listening site: the first data
// packet simply shows up with a fresh stream id.
func (*Net) Dial(addr string) (transport.Endpoint, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", transport.ErrNoListener, addr, err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", transport.ErrNoListener, addr, err)
	}
	_ = conn.SetReadBuffer(socketBuffer)
	_ = conn.SetWriteBuffer(socketBuffer)
	var idb [8]byte
	if _, err := rand.Read(idb[:]); err != nil {
		conn.Close()
		return nil, err
	}
	ep := newEndpoint(binary.LittleEndian.Uint64(idb[:]), ua.String(),
		func(b []byte) error { _, err := conn.Write(b); return err })
	go func() {
		buf := make([]byte, maxPayload+headerLen)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				ep.Close()
				return
			}
			ep.handlePacket(buf[:n])
		}
	}()
	ep.onClose = func() { conn.Close() }

	// Stream announcement: one small round trip so the listener's
	// Accept fires before any data and a dead address is detected.
	// (A full T/TCP-style design would piggyback the first datagram on
	// the hello; the round trip here costs once per cached connection.)
	var hello [headerLen]byte
	ep.header(hello[:], kindHello, 0, 0, 0, 0)
	for attempt := 0; attempt < 5; attempt++ {
		_ = ep.sendRaw(hello[:])
		select {
		case <-ep.helloed:
			return ep, nil
		case <-ep.done:
			return nil, transport.ErrClosed
		case <-time.After(200 * time.Millisecond):
		}
	}
	ep.Close()
	return nil, fmt.Errorf("%w: %s: no hello ack", transport.ErrNoListener, addr)
}

// listener demultiplexes inbound packets by (peer address, stream id).
type listener struct {
	conn    *net.UDPConn
	backlog chan *endpoint

	mu      sync.Mutex
	streams map[string]*endpoint
	closed  bool
	done    chan struct{}
}

func (l *listener) readLoop() {
	buf := make([]byte, maxPayload+headerLen)
	for {
		n, from, err := l.conn.ReadFromUDP(buf)
		if err != nil {
			l.Close()
			return
		}
		if n < headerLen {
			continue
		}
		stream := binary.LittleEndian.Uint64(buf[:8])
		kind := buf[8]
		key := fmt.Sprintf("%s/%d", from.String(), stream)

		l.mu.Lock()
		ep, ok := l.streams[key]
		if !ok {
			if l.closed {
				l.mu.Unlock()
				continue
			}
			peer := *from
			//sdvmlint:allow lockhold -- newEndpoint only sends on its own fresh buffered channel, filling exactly its capacity
			ep = newEndpoint(stream, from.String(), func(b []byte) error {
				_, err := l.conn.WriteToUDP(b, &peer)
				return err
			})
			epRef := ep
			ep.onClose = func() {
				l.mu.Lock()
				delete(l.streams, key)
				l.mu.Unlock()
				_ = epRef
			}
			l.streams[key] = ep
			select {
			case l.backlog <- ep:
			default:
				// Backlog full: drop the stream; the dialer retransmits
				// and will be accepted once there is room.
				delete(l.streams, key)
				l.mu.Unlock()
				continue
			}
		}
		l.mu.Unlock()
		if kind == kindHello {
			var ack [headerLen]byte
			ep.header(ack[:], kindHelloAck, 0, 0, 0, 0)
			_ = ep.sendRaw(ack[:])
			continue
		}
		ep.handlePacket(buf[:n])
	}
}

func (l *listener) Accept() (transport.Endpoint, error) {
	select {
	case ep, ok := <-l.backlog:
		if !ok {
			return nil, transport.ErrClosed
		}
		return ep, nil
	case <-l.done:
		return nil, transport.ErrClosed
	}
}

func (l *listener) Addr() string { return l.conn.LocalAddr().String() }

func (l *listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	eps := make([]*endpoint, 0, len(l.streams))
	for _, ep := range l.streams {
		eps = append(eps, ep)
	}
	l.mu.Unlock()

	close(l.done)
	l.conn.Close()
	for _, ep := range eps {
		ep.Close()
	}
	return nil
}

// outPacket is one unacknowledged data packet.
type outPacket struct {
	seq     uint64
	buf     []byte
	sentAt  time.Time
	resends int
}

// endpoint is one reliable stream.
type endpoint struct {
	stream  uint64
	remote  string
	sendRaw func([]byte) error
	onClose func()

	mu        sync.Mutex
	sendSeq   uint64 // next data packet seq
	dgramSeq  uint32 // next datagram id
	inflight  map[uint64]*outPacket
	sendSlots chan struct{} // window tokens

	recvNext   uint64              // next packet seq to deliver
	recvOOO    map[uint64][]byte   // out-of-order packet payloads (header included)
	assembling map[uint32][][]byte // dgram seq -> fragments
	assembled  chan []byte         // complete datagrams, in order
	ackPending bool
	failed     error

	helloOnce sync.Once
	helloed   chan struct{}
	closeOnce sync.Once
	done      chan struct{}
}

func newEndpoint(stream uint64, remote string, sendRaw func([]byte) error) *endpoint {
	ep := &endpoint{
		stream:     stream,
		remote:     remote,
		sendRaw:    sendRaw,
		inflight:   make(map[uint64]*outPacket),
		sendSlots:  make(chan struct{}, window),
		recvOOO:    make(map[uint64][]byte),
		assembling: make(map[uint32][][]byte),
		assembled:  make(chan []byte, 256),
		helloed:    make(chan struct{}),
		done:       make(chan struct{}),
	}
	for i := 0; i < window; i++ {
		ep.sendSlots <- struct{}{}
	}
	go ep.retransmitLoop()
	return ep
}

// header assembles a packet header into b (len >= headerLen).
func (ep *endpoint) header(b []byte, kind uint8, seq uint64, dgram uint32, idx, total uint16) {
	binary.LittleEndian.PutUint64(b[0:], ep.stream)
	b[8] = kind
	binary.LittleEndian.PutUint64(b[9:], seq)
	binary.LittleEndian.PutUint32(b[17:], dgram)
	binary.LittleEndian.PutUint16(b[21:], idx)
	binary.LittleEndian.PutUint16(b[23:], total)
}

// Send fragments one datagram into sequenced packets and transmits them,
// blocking on the send window.
func (ep *endpoint) Send(datagram []byte) error {
	if len(datagram) > transport.MaxDatagram {
		return transport.ErrTooLarge
	}
	nfrags := (len(datagram) + maxPayload - 1) / maxPayload
	if nfrags == 0 {
		nfrags = 1
	}
	ep.mu.Lock()
	if ep.failed != nil {
		err := ep.failed
		ep.mu.Unlock()
		return err
	}
	dgram := ep.dgramSeq
	ep.dgramSeq++
	ep.mu.Unlock()

	for i := 0; i < nfrags; i++ {
		lo := i * maxPayload
		hi := lo + maxPayload
		if hi > len(datagram) {
			hi = len(datagram)
		}
		select {
		case <-ep.sendSlots:
		case <-ep.done:
			return ep.err()
		}

		buf := make([]byte, headerLen+hi-lo)
		ep.mu.Lock()
		seq := ep.sendSeq
		ep.sendSeq++
		ep.header(buf, kindData, seq, dgram, uint16(i), uint16(nfrags))
		copy(buf[headerLen:], datagram[lo:hi])
		ep.inflight[seq] = &outPacket{seq: seq, buf: buf, sentAt: time.Now()}
		ep.mu.Unlock()

		if err := ep.sendRaw(buf); err != nil {
			// First transmission failed; the retransmit loop retries.
			continue
		}
	}
	return nil
}

// Recv returns the next complete datagram in order.
func (ep *endpoint) Recv() ([]byte, error) {
	select {
	case d, ok := <-ep.assembled:
		if !ok {
			return nil, ep.err()
		}
		return d, nil
	case <-ep.done:
		// Drain a datagram racing with close.
		select {
		case d, ok := <-ep.assembled:
			if ok {
				return d, nil
			}
		default:
		}
		return nil, ep.err()
	}
}

func (ep *endpoint) err() error {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.failed != nil {
		return ep.failed
	}
	return transport.ErrClosed
}

// handlePacket processes one raw packet from the socket.
func (ep *endpoint) handlePacket(raw []byte) {
	if len(raw) < headerLen {
		return
	}
	kind := raw[8]
	seq := binary.LittleEndian.Uint64(raw[9:])

	switch kind {
	case kindAck:
		ep.handleAck(seq)
	case kindHelloAck:
		ep.helloOnce.Do(func() { close(ep.helloed) })
	case kindFin:
		ep.Close()
	case kindData:
		// Copy: raw aliases the socket read buffer.
		pkt := append([]byte(nil), raw...)
		ep.handleData(seq, pkt)
	}
}

// handleAck releases every packet up to and including ack (cumulative).
func (ep *endpoint) handleAck(ack uint64) {
	ep.mu.Lock()
	released := 0
	for seq := range ep.inflight {
		if seq <= ack {
			delete(ep.inflight, seq)
			released++
		}
	}
	ep.mu.Unlock()
	for i := 0; i < released; i++ {
		select {
		case ep.sendSlots <- struct{}{}:
		default:
		}
	}
}

// handleData buffers/reorders one data packet and delivers completed
// datagrams.
func (ep *endpoint) handleData(seq uint64, pkt []byte) {
	ep.mu.Lock()
	if seq >= ep.recvNext {
		if _, dup := ep.recvOOO[seq]; !dup {
			ep.recvOOO[seq] = pkt
		}
	}
	// Deliver the contiguous prefix.
	var ready [][]byte
	for {
		p, ok := ep.recvOOO[ep.recvNext]
		if !ok {
			break
		}
		delete(ep.recvOOO, ep.recvNext)
		ep.recvNext++
		ready = append(ready, p)
	}
	// Assemble fragments into datagrams.
	var complete [][]byte
	for _, p := range ready {
		dgram := binary.LittleEndian.Uint32(p[17:])
		total := int(binary.LittleEndian.Uint16(p[23:]))
		frags := append(ep.assembling[dgram], p[headerLen:])
		if len(frags) < total {
			ep.assembling[dgram] = frags
			continue
		}
		delete(ep.assembling, dgram)
		var full []byte
		for _, f := range frags {
			full = append(full, f...)
		}
		complete = append(complete, full)
	}
	needAck := !ep.ackPending
	ep.ackPending = true
	ep.mu.Unlock()

	for _, d := range complete {
		select {
		case ep.assembled <- d:
		case <-ep.done:
			return
		}
	}
	if needAck {
		time.AfterFunc(ackDelay, ep.flushAck)
	}
}

// flushAck sends a cumulative acknowledgement.
func (ep *endpoint) flushAck() {
	ep.mu.Lock()
	ep.ackPending = false
	ack := ep.recvNext
	ep.mu.Unlock()
	if ack == 0 {
		return
	}
	var buf [headerLen]byte
	ep.header(buf[:], kindAck, ack-1, 0, 0, 0)
	_ = ep.sendRaw(buf[:])
}

// retransmitLoop resends unacknowledged packets — the paper's missing
// "rerequest lost packages" (sender-driven here).
func (ep *endpoint) retransmitLoop() {
	ticker := time.NewTicker(retransmitAfter)
	defer ticker.Stop()
	for {
		select {
		case <-ep.done:
			return
		case <-ticker.C:
		}
		now := time.Now()
		ep.mu.Lock()
		var resend [][]byte
		dead := false
		for _, p := range ep.inflight {
			if now.Sub(p.sentAt) < retransmitAfter {
				continue
			}
			if len(resend) >= retransmitBurst {
				break
			}
			p.resends++
			p.sentAt = now
			if p.resends > maxRetransmits {
				dead = true
				break
			}
			resend = append(resend, p.buf)
		}
		if dead && ep.failed == nil {
			ep.failed = fmt.Errorf("%w: peer %s not acknowledging", transport.ErrClosed, ep.remote)
		}
		ep.mu.Unlock()
		if dead {
			ep.Close()
			return
		}
		for _, buf := range resend {
			_ = ep.sendRaw(buf)
		}
	}
}

func (ep *endpoint) Close() error {
	ep.closeOnce.Do(func() {
		// Best-effort goodbye so the peer tears down promptly.
		var buf [headerLen]byte
		ep.header(buf[:], kindFin, 0, 0, 0, 0)
		_ = ep.sendRaw(buf[:])
		close(ep.done)
		if ep.onClose != nil {
			ep.onClose()
		}
	})
	return nil
}

func (ep *endpoint) RemoteAddr() string { return ep.remote }

// Compile-time interface checks.
var (
	_ transport.Network  = (*Net)(nil)
	_ transport.Listener = (*listener)(nil)
	_ transport.Endpoint = (*endpoint)(nil)
)
