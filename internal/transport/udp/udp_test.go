package udp

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/transport/transporttest"
)

func TestConformance(t *testing.T) {
	transporttest.Run(t, func(t *testing.T) (transport.Network, func() string) {
		return New(), func() string { return "127.0.0.1:0" }
	})
}

func TestFragmentationRoundTrip(t *testing.T) {
	n := New()
	l, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan transport.Endpoint, 1)
	go func() {
		ep, err := l.Accept()
		if err == nil {
			accepted <- ep
		}
	}()
	c, err := n.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// 5x the fragment size: forces multi-fragment reassembly.
	big := make([]byte, 5*maxPayload+1234)
	for i := range big {
		big[i] = byte(i * 31)
	}
	done := make(chan error, 1)
	go func() { done <- c.Send(big) }()
	s := <-accepted
	defer s.Close()
	got, err := s.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("fragmented datagram corrupted")
	}
}

func TestManySmallMessagesOrdered(t *testing.T) {
	// The SDVM's complaint about UDP was ordering; this layer must fix
	// it even under load.
	n := New()
	l, _ := n.Listen("127.0.0.1:0")
	defer l.Close()
	accepted := make(chan transport.Endpoint, 1)
	go func() {
		ep, _ := l.Accept()
		accepted <- ep
	}()
	c, err := n.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const count = 1000
	go func() {
		for i := 0; i < count; i++ {
			msg := []byte{byte(i), byte(i >> 8)}
			if err := c.Send(msg); err != nil {
				return
			}
		}
	}()
	s := <-accepted
	defer s.Close()
	for i := 0; i < count; i++ {
		got, err := s.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if int(got[0])|int(got[1])<<8 != i {
			t.Fatalf("message %d out of order: % x", i, got)
		}
	}
}

func TestStreamsAreIndependent(t *testing.T) {
	// Two dialers to one listener must not interleave datagrams.
	n := New()
	l, _ := n.Listen("127.0.0.1:0")
	defer l.Close()

	go func() {
		for {
			ep, err := l.Accept()
			if err != nil {
				return
			}
			go func(ep transport.Endpoint) {
				for {
					m, err := ep.Recv()
					if err != nil {
						return
					}
					if err := ep.Send(m); err != nil { // echo
						return
					}
				}
			}(ep)
		}
	}()

	for _, tag := range []string{"alpha", "beta"} {
		tag := tag
		c, err := n.Dial(l.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for i := 0; i < 20; i++ {
			if err := c.Send([]byte(tag)); err != nil {
				t.Fatal(err)
			}
			got, err := c.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != tag {
				t.Fatalf("stream cross-talk: got %q want %q", got, tag)
			}
		}
	}
}

func TestPeerDeathDetectedByRetransmitGiveup(t *testing.T) {
	n := New()
	l, _ := n.Listen("127.0.0.1:0")
	accepted := make(chan transport.Endpoint, 1)
	go func() {
		ep, _ := l.Accept()
		accepted <- ep
	}()
	c, err := n.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	s := <-accepted
	if _, err := s.Recv(); err != nil {
		t.Fatal(err)
	}

	// Kill the listener (no FIN reaches anyone new); keep sending.
	l.Close()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if err := c.Send([]byte("into the void")); err != nil {
			return // sender noticed the dead peer
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("sender never detected the dead peer")
}
