package tcp

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/transport"
)

// fakeConn is a scriptable net.Conn for exercising the vectored send
// path without a real socket. Each entry of script controls one Write
// call: how many bytes to accept (-1 = all) and what error to return.
type writeStep struct {
	accept int // bytes to report written; -1 accepts the whole slice
	err    error
}

type fakeConn struct {
	script []writeStep
	calls  int
	wrote  bytes.Buffer
}

func (c *fakeConn) Write(b []byte) (int, error) {
	step := writeStep{accept: -1}
	if c.calls < len(c.script) {
		step = c.script[c.calls]
	}
	c.calls++
	n := len(b)
	if step.accept >= 0 && step.accept < n {
		n = step.accept
	}
	c.wrote.Write(b[:n])
	return n, step.err
}

func (c *fakeConn) Read(b []byte) (int, error)         { return 0, net.ErrClosed }
func (c *fakeConn) Close() error                       { return nil }
func (c *fakeConn) LocalAddr() net.Addr                { return fakeAddr{} }
func (c *fakeConn) RemoteAddr() net.Addr               { return fakeAddr{} }
func (c *fakeConn) SetDeadline(t time.Time) error      { return nil }
func (c *fakeConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *fakeConn) SetWriteDeadline(t time.Time) error { return nil }

type fakeAddr struct{}

func (fakeAddr) Network() string { return "fake" }
func (fakeAddr) String() string  { return "fake" }

// TestVectoredSendFramesCorrectly checks the header and body leave the
// endpoint as one correctly framed byte stream, and that the endpoint
// drops its reference to the caller's buffer after the call (the Send
// no-retention contract).
func TestVectoredSendFramesCorrectly(t *testing.T) {
	c := &fakeConn{}
	e := newEndpoint(c)
	payload := []byte("vectored payload")
	if err := e.Send(payload); err != nil {
		t.Fatal(err)
	}
	want := append([]byte{0, 0, 0, byte(len(payload))}, payload...)
	if !bytes.Equal(c.wrote.Bytes(), want) {
		t.Fatalf("wire bytes % x, want % x", c.wrote.Bytes(), want)
	}
	if e.vecArr[1] != nil {
		t.Fatal("endpoint retained the caller's datagram after Send")
	}
}

// TestVectoredSendShortWrite models a wrapped conn that under-reports
// written bytes without returning an error — a contract violation that
// would silently desynchronize the framing stream. Send must detect the
// byte deficit and fail.
func TestVectoredSendShortWrite(t *testing.T) {
	c := &fakeConn{script: []writeStep{{accept: 3}}} // header loses a byte
	e := newEndpoint(c)
	err := e.Send([]byte("payload"))
	if err == nil {
		t.Fatal("short write went undetected")
	}
	if e.vecArr[1] != nil {
		t.Fatal("endpoint retained the datagram after a failed Send")
	}
}

// TestVectoredSendMidBuffersFailure kills the connection after the
// 4-byte header but before the payload — the mid-net.Buffers failure
// case. Send must surface transport.ErrClosed and keep no reference to
// the half-sent datagram.
func TestVectoredSendMidBuffersFailure(t *testing.T) {
	c := &fakeConn{script: []writeStep{
		{accept: -1},                    // header goes through
		{accept: 0, err: net.ErrClosed}, // connection dies mid-vector
	}}
	e := newEndpoint(c)
	err := e.Send(make([]byte, 64))
	if !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("mid-vector failure error = %v, want ErrClosed", err)
	}
	if e.vecArr[1] != nil {
		t.Fatal("endpoint retained the datagram after a failed Send")
	}
}

// TestRecvBufferReused pins the Recv contract: the returned slice is
// the endpoint's reused buffer, so it is valid only until the next
// Recv. Two frames through a pipe must come back correct while sharing
// backing storage once capacity allows.
func TestRecvBufferReused(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	e := newEndpoint(srv)

	send := func(p []byte) {
		hdr := []byte{0, 0, 0, byte(len(p))}
		if _, err := cli.Write(append(hdr, p...)); err != nil {
			t.Error(err)
		}
	}
	go send([]byte("first-frame-data"))
	got1, err := e.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got1) != "first-frame-data" {
		t.Fatalf("first frame %q", got1)
	}
	first := string(got1) // copy before the next Recv invalidates it

	go send([]byte("second")) // shorter: must reuse the same backing array
	got2, err := e.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got2) != "second" {
		t.Fatalf("second frame %q", got2)
	}
	if &got1[0] != &got2[0] {
		t.Fatal("Recv allocated a fresh buffer for a smaller frame; expected reuse")
	}
	if first != "first-frame-data" {
		t.Fatal("copied first frame changed")
	}
}
