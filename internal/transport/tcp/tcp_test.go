package tcp

import (
	"testing"

	"repro/internal/transport"
	"repro/internal/transport/transporttest"
)

func TestConformance(t *testing.T) {
	transporttest.Run(t, func(t *testing.T) (transport.Network, func() string) {
		return New(), func() string { return "127.0.0.1:0" }
	})
}

func TestAddrResolvesEphemeralPort(t *testing.T) {
	n := New()
	l, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Addr() == "127.0.0.1:0" {
		t.Error("Addr did not resolve the ephemeral port")
	}
}
