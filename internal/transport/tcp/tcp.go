// Package tcp carries SDVM datagrams over real TCP connections.
//
// The 2005 prototype settled on TCP after rejecting UDP (no ordering or
// delivery guarantee) and experimenting with T/TCP (paper §4, network
// manager). This implementation keeps one long-lived connection per peer
// pair — amortizing TCP's setup cost that the paper complains about — and
// frames datagrams with a 4-byte big-endian length prefix.
package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/transport"
)

// Net is the TCP implementation of transport.Network. The zero value is
// ready to use.
type Net struct{}

// New returns a TCP network.
func New() *Net { return &Net{} }

// Listen binds a TCP listener on addr (e.g. "127.0.0.1:0").
func (*Net) Listen(addr string) (transport.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp listen %s: %w", addr, err)
	}
	return &listener{l: l}, nil
}

// Dial connects to a listening SDVM site.
func (*Net) Dial(addr string) (transport.Endpoint, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", transport.ErrNoListener, addr, err)
	}
	if tc, ok := c.(*net.TCPConn); ok {
		// Small protocol messages must not sit in Nagle buffers; the
		// SDVM's help-request latency is end-to-end visible.
		_ = tc.SetNoDelay(true)
	}
	return newEndpoint(c), nil
}

type listener struct {
	l net.Listener
}

func (l *listener) Accept() (transport.Endpoint, error) {
	c, err := l.l.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, transport.ErrClosed
		}
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return newEndpoint(c), nil
}

func (l *listener) Addr() string { return l.l.Addr().String() }

func (l *listener) Close() error { return l.l.Close() }

type endpoint struct {
	c net.Conn

	sendMu  sync.Mutex
	sendLen [4]byte   // guarded by sendMu; length-prefix scratch
	vecArr  [2][]byte // guarded by sendMu; net.Buffers scratch

	recvMu  sync.Mutex
	lenBuf  [4]byte // guarded by recvMu
	recvBuf []byte  // guarded by recvMu; reused across Recv calls
}

func newEndpoint(c net.Conn) *endpoint { return &endpoint{c: c} }

// Send frames the datagram with its length prefix and writes both in
// one vectored net.Buffers write (one writev syscall on a real TCP
// conn, instead of two sequential Writes). The scratch vector lives in
// the endpoint, so a send performs no allocations; WriteTo consumes
// the vector, nilling its entries, so no reference to the caller's
// buffer survives the call — Send never retains the datagram.
func (e *endpoint) Send(datagram []byte) error {
	if len(datagram) > transport.MaxDatagram {
		return transport.ErrTooLarge
	}
	e.sendMu.Lock()
	defer e.sendMu.Unlock()
	binary.BigEndian.PutUint32(e.sendLen[:], uint32(len(datagram)))
	e.vecArr[0] = e.sendLen[:]
	e.vecArr[1] = datagram //sdvm:allow poolowner -- vecArr[1] is nilled below before Send returns, so no reference outlives the call
	bufs := net.Buffers(e.vecArr[:])
	want := int64(4 + len(datagram))
	n, err := bufs.WriteTo(e.c)
	e.vecArr[1] = nil // drop the datagram reference even on a partial write
	if err != nil {
		return mapNetErr(err)
	}
	if n != want {
		// A conn that under-reports without erroring (possible with
		// wrapped conns) would silently corrupt the framing stream.
		return fmt.Errorf("%w: short write (%d of %d bytes)", transport.ErrClosed, n, want)
	}
	return nil
}

// Recv reads the next length-prefixed datagram into the endpoint's
// reused receive buffer. Per the transport.Endpoint contract the
// returned slice is valid only until the next Recv; the buffer grows
// to the connection's high-water datagram size and is then reused
// allocation-free.
func (e *endpoint) Recv() ([]byte, error) {
	e.recvMu.Lock()
	defer e.recvMu.Unlock()
	if _, err := io.ReadFull(e.c, e.lenBuf[:]); err != nil {
		return nil, mapNetErr(err)
	}
	n := binary.BigEndian.Uint32(e.lenBuf[:])
	if n > transport.MaxDatagram {
		return nil, transport.ErrTooLarge
	}
	if uint64(cap(e.recvBuf)) < uint64(n) {
		e.recvBuf = make([]byte, n)
	}
	buf := e.recvBuf[:n]
	if _, err := io.ReadFull(e.c, buf); err != nil {
		return nil, mapNetErr(err)
	}
	return buf, nil
}

func (e *endpoint) Close() error { return e.c.Close() }

func (e *endpoint) RemoteAddr() string { return e.c.RemoteAddr().String() }

// mapNetErr folds the various ways a TCP connection reports teardown into
// transport.ErrClosed so callers handle one error.
func mapNetErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return transport.ErrClosed
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return fmt.Errorf("%w: %v", transport.ErrClosed, err)
	}
	return err
}

// Compile-time interface checks.
var (
	_ transport.Network  = (*Net)(nil)
	_ transport.Listener = (*listener)(nil)
	_ transport.Endpoint = (*endpoint)(nil)
)
