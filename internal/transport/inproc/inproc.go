// Package inproc implements a virtual network inside one OS process.
//
// A Fabric is a set of named listening points connected by simulated
// links. Every datagram is delayed by a configurable per-hop latency plus
// a size-proportional bandwidth term, so cluster-wide timing behaves like
// a LAN rather than like function calls. The Fabric also injects faults:
// individual sites can be killed (all their links drop instantly, as in a
// crash) and the network can be partitioned into groups that cannot reach
// each other — both needed by the crash-management and churn experiments.
//
// With zero latency the Fabric degenerates to plain buffered channels and
// adds only sub-microsecond overhead, which keeps the Table 1 speedup
// benches honest: time is spent in application work and protocol logic,
// not in the simulator.
package inproc

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/transport"
)

// LinkProfile describes the simulated link characteristics of a Fabric.
type LinkProfile struct {
	// Latency is the fixed one-way delay per datagram.
	Latency time.Duration
	// BytesPerSecond throttles by datagram size; 0 = infinite bandwidth.
	BytesPerSecond float64
}

// delay returns the simulated one-way transfer time for n bytes.
func (p LinkProfile) delay(n int) time.Duration {
	d := p.Latency
	if p.BytesPerSecond > 0 {
		d += time.Duration(float64(n) / p.BytesPerSecond * float64(time.Second))
	}
	return d
}

// Fabric is a virtual network. The zero value is not usable; call New.
type Fabric struct {
	profile LinkProfile

	mu        sync.Mutex
	listeners map[string]*listener
	endpoints map[string][]*endpoint // live endpoints by local address
	partition map[string]int         // address -> partition group; absent = group 0
	killed    map[string]bool
	closed    bool
}

// New returns an empty Fabric with the given link profile.
func New(profile LinkProfile) *Fabric {
	return &Fabric{
		profile:   profile,
		listeners: make(map[string]*listener),
		endpoints: make(map[string][]*endpoint),
		partition: make(map[string]int),
		killed:    make(map[string]bool),
	}
}

// Listen binds a named listening point.
func (f *Fabric) Listen(addr string) (transport.Listener, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, transport.ErrClosed
	}
	if _, taken := f.listeners[addr]; taken {
		return nil, fmt.Errorf("inproc: address %q already bound", addr)
	}
	l := &listener{
		fabric:  f,
		addr:    addr,
		backlog: make(chan *endpoint, 64),
	}
	f.listeners[addr] = l
	delete(f.killed, addr) // rebinding revives a killed address
	return l, nil
}

// Dial connects to a listening point. The local address of the resulting
// endpoint is synthesized from the remote name.
func (f *Fabric) Dial(addr string) (transport.Endpoint, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, transport.ErrClosed
	}
	l, ok := f.listeners[addr]
	if !ok || f.killed[addr] {
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", transport.ErrNoListener, addr)
	}
	local := fmt.Sprintf("dial->%s#%p", addr, &struct{}{})
	a, b := f.newPair(local, addr)
	f.mu.Unlock()

	// Hand the passive side to the listener; if its backlog is full the
	// dial fails rather than blocking the fabric lock.
	select {
	case l.backlog <- b:
		return a, nil
	default:
		a.Close()
		b.Close()
		return nil, fmt.Errorf("inproc: listener %q backlog full", addr)
	}
}

// newPair creates two connected endpoints. Caller holds f.mu.
func (f *Fabric) newPair(addrA, addrB string) (*endpoint, *endpoint) {
	ab := make(chan delivery, 4096)
	ba := make(chan delivery, 4096)
	a := &endpoint{fabric: f, local: addrA, remote: addrB, in: ba, out: ab, done: make(chan struct{})}
	b := &endpoint{fabric: f, local: addrB, remote: addrA, in: ab, out: ba, done: make(chan struct{})}
	a.peer, b.peer = b, a
	f.endpoints[addrA] = append(f.endpoints[addrA], a)
	f.endpoints[addrB] = append(f.endpoints[addrB], b)
	return a, b
}

// KillSite simulates a crash of the site listening at addr: its listener
// stops accepting and every link touching it drops without any goodbye —
// exactly what the crash-detection heartbeat must notice.
func (f *Fabric) KillSite(addr string) {
	f.mu.Lock()
	f.killed[addr] = true
	l := f.listeners[addr]
	eps := append([]*endpoint(nil), f.endpoints[addr]...)
	f.mu.Unlock()

	if l != nil {
		l.Close()
	}
	for _, e := range eps {
		e.Close()
		e.peer.Close()
	}
}

// Partition splits the fabric: addresses in group live in their own
// network island. Dials and sends crossing island boundaries fail or
// black-hole (sends already in flight are dropped). Group 0 is the
// default island.
func (f *Fabric) Partition(group int, addrs ...string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, a := range addrs {
		f.partition[a] = group
	}
}

// Heal removes all partitions.
func (f *Fabric) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.partition = make(map[string]int)
}

// sameIsland reports whether two addresses may currently communicate.
// Caller need not hold f.mu.
func (f *Fabric) sameIsland(a, b string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.partition[a] == f.partition[b]
}

// Close tears the whole fabric down.
func (f *Fabric) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	ls := make([]*listener, 0, len(f.listeners))
	for _, l := range f.listeners {
		ls = append(ls, l)
	}
	var eps []*endpoint
	for _, list := range f.endpoints {
		eps = append(eps, list...)
	}
	f.mu.Unlock()

	for _, l := range ls {
		l.Close()
	}
	for _, e := range eps {
		e.Close()
	}
}

// delivery is one datagram in flight with its simulated arrival time.
type delivery struct {
	data    []byte
	readyAt time.Time
}

type listener struct {
	fabric  *Fabric
	addr    string
	backlog chan *endpoint

	mu     sync.Mutex
	closed bool
}

func (l *listener) Accept() (transport.Endpoint, error) {
	e, ok := <-l.backlog
	if !ok {
		return nil, transport.ErrClosed
	}
	return e, nil
}

func (l *listener) Addr() string { return l.addr }

func (l *listener) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.fabric.mu.Lock()
	if l.fabric.listeners[l.addr] == l {
		delete(l.fabric.listeners, l.addr)
	}
	l.fabric.mu.Unlock()
	close(l.backlog)
	// Drain endpoints already queued but never accepted.
	for e := range l.backlog {
		e.Close()
	}
	return nil
}

type endpoint struct {
	fabric *Fabric
	local  string
	remote string
	peer   *endpoint
	in     <-chan delivery
	out    chan<- delivery
	done   chan struct{}

	closeOnce sync.Once
	sendMu    sync.Mutex
}

func (e *endpoint) Send(datagram []byte) error {
	if len(datagram) > transport.MaxDatagram {
		return transport.ErrTooLarge
	}
	select {
	case <-e.done:
		return transport.ErrClosed
	case <-e.peer.done:
		// The peer endpoint is gone; enqueueing would silently
		// black-hole the datagram. Fail so the network manager redials.
		return transport.ErrClosed
	default:
	}
	if !e.fabric.sameIsland(e.local, e.remote) {
		// Black-hole across a partition: the bytes vanish, like a
		// physical cable cut mid-stream. The caller learns through
		// timeouts, as on a real network.
		return nil
	}
	// Copy: the caller may reuse its buffer.
	buf := append([]byte(nil), datagram...)
	d := delivery{data: buf, readyAt: time.Now().Add(e.fabric.profile.delay(len(buf)))}
	e.sendMu.Lock()
	defer e.sendMu.Unlock()
	//sdvmlint:allow lockhold -- sendMu orders concurrent senders into the link; blocking under it is the modeled back-pressure of a full pipe
	select {
	case e.out <- d:
		return nil
	case <-e.done:
		return transport.ErrClosed
	case <-e.peer.done:
		return transport.ErrClosed
	}
}

func (e *endpoint) Recv() ([]byte, error) {
	select {
	case d, ok := <-e.in:
		if !ok {
			return nil, transport.ErrClosed
		}
		e.holdUntil(d.readyAt)
		return d.data, nil
	case <-e.done:
		// Drain any datagram racing with close.
		select {
		case d, ok := <-e.in:
			if ok {
				e.holdUntil(d.readyAt)
				return d.data, nil
			}
		default:
		}
		return nil, transport.ErrClosed
	}
}

// holdUntil sleeps until the simulated arrival time.
func (e *endpoint) holdUntil(t time.Time) {
	if d := time.Until(t); d > 0 {
		time.Sleep(d)
	}
}

func (e *endpoint) Close() error {
	e.closeOnce.Do(func() {
		close(e.done)
		e.fabric.mu.Lock()
		list := e.fabric.endpoints[e.local]
		for i, x := range list {
			if x == e {
				list[i] = list[len(list)-1]
				e.fabric.endpoints[e.local] = list[:len(list)-1]
				break
			}
		}
		e.fabric.mu.Unlock()
	})
	return nil
}

func (e *endpoint) RemoteAddr() string { return e.remote }

// Compile-time interface checks.
var (
	_ transport.Network  = (*Fabric)(nil)
	_ transport.Listener = (*listener)(nil)
	_ transport.Endpoint = (*endpoint)(nil)
)
