package inproc

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/transport/transporttest"
)

func TestConformance(t *testing.T) {
	n := 0
	transporttest.Run(t, func(t *testing.T) (transport.Network, func() string) {
		f := New(LinkProfile{})
		t.Cleanup(f.Close)
		return f, func() string {
			n++
			return fmt.Sprintf("site-%d", n)
		}
	})
}

func TestLatencyIsApplied(t *testing.T) {
	const lat = 30 * time.Millisecond
	f := New(LinkProfile{Latency: lat})
	defer f.Close()

	l, err := f.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan transport.Endpoint, 1)
	go func() {
		ep, err := l.Accept()
		if err == nil {
			accepted <- ep
		}
	}()
	c, err := f.Dial("a")
	if err != nil {
		t.Fatal(err)
	}
	s := <-accepted

	start := time.Now()
	if err := c.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recv(); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < lat {
		t.Errorf("delivery took %v, want >= %v", got, lat)
	}
}

func TestBandwidthDelaysLargeMessages(t *testing.T) {
	// 1 MiB at 10 MiB/s must take at least ~100ms.
	f := New(LinkProfile{BytesPerSecond: 10 << 20})
	defer f.Close()

	l, _ := f.Listen("a")
	accepted := make(chan transport.Endpoint, 1)
	go func() {
		ep, _ := l.Accept()
		accepted <- ep
	}()
	c, err := f.Dial("a")
	if err != nil {
		t.Fatal(err)
	}
	s := <-accepted

	start := time.Now()
	if err := c.Send(make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recv(); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < 90*time.Millisecond {
		t.Errorf("1MiB at 10MiB/s took %v, want >= 90ms", got)
	}
}

func TestKillSiteDropsLinksAndListener(t *testing.T) {
	f := New(LinkProfile{})
	defer f.Close()

	l, _ := f.Listen("victim")
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	c, err := f.Dial("victim")
	if err != nil {
		t.Fatal(err)
	}

	f.KillSite("victim")

	// Existing link must be dead.
	if _, err := c.Recv(); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("Recv after kill = %v, want ErrClosed", err)
	}
	// New dials must fail.
	if _, err := f.Dial("victim"); err == nil {
		t.Error("Dial to killed site succeeded")
	}
}

func TestKilledSiteCanRebind(t *testing.T) {
	f := New(LinkProfile{})
	defer f.Close()
	if _, err := f.Listen("s"); err != nil {
		t.Fatal(err)
	}
	f.KillSite("s")
	// A crashed site that restarts (recovery) may bind again.
	if _, err := f.Listen("s"); err != nil {
		t.Fatalf("rebind after kill: %v", err)
	}
	if _, err := f.Dial("s"); err != nil {
		t.Fatalf("dial after rebind: %v", err)
	}
}

func TestPartitionBlocksDial(t *testing.T) {
	f := New(LinkProfile{})
	defer f.Close()
	_, _ = f.Listen("a")
	_, _ = f.Listen("b")
	f.Partition(1, "b")

	// a (group 0) sends to b (group 1): established link black-holes.
	lb, _ := f.Listen("c")
	_ = lb
	c, err := f.Dial("b") // dialing still works (connection exists)...
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte("lost")); err != nil {
		t.Fatalf("Send across partition should black-hole, got %v", err)
	}
	// ...but nothing arrives: verified via Heal + timing would race, so
	// instead check sameIsland directly.
	if f.sameIsland("dial->b#x", "b") {
		t.Error("dialer (group 0) and b (group 1) should be split")
	}
	f.Heal()
	if !f.sameIsland("anything", "b") {
		t.Error("Heal did not reunify the network")
	}
}

func TestDuplicateBindFails(t *testing.T) {
	f := New(LinkProfile{})
	defer f.Close()
	if _, err := f.Listen("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Listen("x"); err == nil {
		t.Fatal("duplicate Listen succeeded")
	}
}

func TestFabricCloseStopsEverything(t *testing.T) {
	f := New(LinkProfile{})
	l, _ := f.Listen("x")
	acceptErr := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		acceptErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	f.Close()
	select {
	case err := <-acceptErr:
		if err == nil {
			t.Error("Accept survived fabric close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept blocked after fabric close")
	}
	if _, err := f.Listen("y"); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("Listen after close = %v", err)
	}
	if _, err := f.Dial("x"); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("Dial after close = %v", err)
	}
	f.Close() // idempotent
}

func TestZeroLatencyFastPath(t *testing.T) {
	// With a zero profile, a round trip should be well under a millisecond
	// — this guards the overhead experiment against accidental sleeps in
	// the fast path.
	f := New(LinkProfile{})
	defer f.Close()
	l, _ := f.Listen("a")
	go func() {
		ep, err := l.Accept()
		if err != nil {
			return
		}
		for {
			m, err := ep.Recv()
			if err != nil {
				return
			}
			if ep.Send(m) != nil {
				return
			}
		}
	}()
	c, err := f.Dial("a")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	const rounds = 100
	for i := 0; i < rounds; i++ {
		if err := c.Send([]byte("ping")); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	perRT := time.Since(start) / rounds
	if perRT > 2*time.Millisecond {
		t.Errorf("zero-profile round trip = %v, want < 2ms", perRT)
	}
}
