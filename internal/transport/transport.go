// Package transport abstracts the byte-level links between SDVM sites.
//
// The paper's network manager "represents the lowest layer of the SDVM,
// working with physical (ip) addresses only" (§4). This package is that
// layer's substrate: it moves opaque datagrams (already-serialized,
// possibly encrypted SDMessages) between physical addresses. Two
// implementations exist:
//
//   - tcp: real TCP sockets with length-prefixed framing — what the 2005
//     prototype used.
//   - inproc: a virtual network inside one process with configurable
//     latency and bandwidth, plus fault injection (site kill, partition).
//     It lets one machine host large deterministic clusters for the
//     benchmark harness.
//
// Both speak the same interface, so every layer above is identical no
// matter which network carries the bytes.
package transport

import (
	"errors"
)

// Common transport errors.
var (
	// ErrClosed reports use of a closed endpoint, listener or network.
	ErrClosed = errors.New("transport: closed")
	// ErrNoListener reports a dial to an address nobody listens on.
	ErrNoListener = errors.New("transport: no listener at address")
	// ErrPartitioned reports a dial or send across an injected network
	// partition.
	ErrPartitioned = errors.New("transport: network partitioned")
	// ErrTooLarge reports a datagram exceeding MaxDatagram.
	ErrTooLarge = errors.New("transport: datagram too large")
)

// MaxDatagram bounds a single framed message (16 MiB). Large payloads
// (checkpoints, migrations) stay far below this; the bound protects the
// receiver from corrupt length prefixes.
const MaxDatagram = 16 << 20

// Endpoint is one side of an established bidirectional link. Send and
// Recv move whole datagrams; Send is safe for concurrent use, Recv is not
// (one receive loop per endpoint, as in the paper's listener threads).
type Endpoint interface {
	// Send transmits one datagram. It may block for flow control.
	// Send must not retain the slice after it returns: callers (the
	// network manager) recycle the backing buffer immediately, so an
	// implementation that queues the datagram must copy it first.
	//
	//sdvm:borrowed datagram
	Send(datagram []byte) error
	// Recv returns the next datagram. It blocks until data arrives or
	// the endpoint closes, in which case it returns ErrClosed. The
	// returned slice is valid only until the next Recv on the same
	// endpoint — implementations may reuse one receive buffer; a
	// caller that retains the datagram must copy it.
	Recv() ([]byte, error)
	// Close tears the link down; pending Recv calls return ErrClosed.
	Close() error
	// RemoteAddr returns the peer's physical address as dialed/accepted.
	RemoteAddr() string
}

// Listener accepts inbound links at one physical address.
type Listener interface {
	// Accept blocks for the next inbound link.
	Accept() (Endpoint, error)
	// Addr returns the physical address the listener is bound to.
	Addr() string
	// Close stops accepting; blocked Accepts return ErrClosed.
	Close() error
}

// Network creates listeners and dials peers. Implementations must allow
// concurrent use.
type Network interface {
	// Listen binds a listener. For tcp, addr is "host:port" (":0" picks
	// a free port — read the actual address from Listener.Addr). For
	// inproc, addr is any unique name.
	Listen(addr string) (Listener, error)
	// Dial establishes a link to a listening address.
	Dial(addr string) (Endpoint, error)
}
