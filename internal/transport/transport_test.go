package transport_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/transport"
	"repro/internal/transport/inproc"
	"repro/internal/transport/tcp"
	"repro/internal/transport/udp"
)

// Compile-time conformance: every shipped transport satisfies Network.
// (The behavioral contract is exercised per-implementation through
// transporttest.Run; this file checks the interface seam itself.)
var (
	_ transport.Network = (*tcp.Net)(nil)
	_ transport.Network = (*inproc.Fabric)(nil)
	_ transport.Network = (*udp.Net)(nil)
)

// networks enumerates the implementations behind the interface, the way
// the daemon consumes them: as a bare transport.Network.
func networks() map[string]func() (transport.Network, func(i int) string) {
	return map[string]func() (transport.Network, func(i int) string){
		"tcp": func() (transport.Network, func(i int) string) {
			return tcp.New(), func(int) string { return "127.0.0.1:0" }
		},
		"inproc": func() (transport.Network, func(i int) string) {
			return inproc.New(inproc.LinkProfile{}), func(i int) string { return fmt.Sprintf("site-%d", i) }
		},
	}
}

// TestRoundTripThroughInterface moves a datagram both ways over each
// implementation using only the transport.Network interface.
func TestRoundTripThroughInterface(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			net, addr := mk()
			l, err := net.Listen(addr(0))
			if err != nil {
				t.Fatalf("Listen: %v", err)
			}
			defer l.Close()
			accepted := make(chan transport.Endpoint, 1)
			go func() {
				ep, err := l.Accept()
				if err != nil {
					return
				}
				accepted <- ep
			}()
			client, err := net.Dial(l.Addr())
			if err != nil {
				t.Fatalf("Dial: %v", err)
			}
			defer client.Close()
			server := <-accepted
			defer server.Close()

			msg := []byte("sdvm datagram")
			if err := client.Send(msg); err != nil {
				t.Fatalf("client send: %v", err)
			}
			got, err := server.Recv()
			if err != nil {
				t.Fatalf("server recv: %v", err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatalf("recv = %q, want %q", got, msg)
			}
			if err := server.Send(got); err != nil {
				t.Fatalf("server send: %v", err)
			}
			echo, err := client.Recv()
			if err != nil {
				t.Fatalf("client recv: %v", err)
			}
			if !bytes.Equal(echo, msg) {
				t.Fatalf("echo = %q, want %q", echo, msg)
			}
		})
	}
}

// TestErrClosedSemantics checks that every implementation reports closed
// endpoints and listeners with transport.ErrClosed, which the network
// manager relies on to tell shutdown from failure.
func TestErrClosedSemantics(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			net, addr := mk()
			l, err := net.Listen(addr(1))
			if err != nil {
				t.Fatalf("Listen: %v", err)
			}
			go func() {
				for {
					ep, err := l.Accept()
					if err != nil {
						return
					}
					ep.Close()
				}
			}()
			client, err := net.Dial(l.Addr())
			if err != nil {
				t.Fatalf("Dial: %v", err)
			}
			if err := client.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if _, err := client.Recv(); !errors.Is(err, transport.ErrClosed) {
				t.Fatalf("Recv on closed endpoint = %v, want ErrClosed", err)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("listener Close: %v", err)
			}
			if _, err := l.Accept(); !errors.Is(err, transport.ErrClosed) {
				t.Fatalf("Accept on closed listener = %v, want ErrClosed", err)
			}
		})
	}
}
