// Package transporttest provides a conformance suite run against every
// transport.Network implementation, so tcp and inproc provably offer the
// same contract to the network manager.
package transporttest

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

// Factory creates a fresh network and returns it with a generator for
// listen addresses valid on that network.
type Factory func(t *testing.T) (net transport.Network, nextAddr func() string)

// Run exercises the full Network/Listener/Endpoint contract.
func Run(t *testing.T, factory Factory) {
	t.Run("EchoRoundTrip", func(t *testing.T) { testEcho(t, factory) })
	t.Run("LargeDatagram", func(t *testing.T) { testLarge(t, factory) })
	t.Run("ManyMessagesInOrder", func(t *testing.T) { testOrder(t, factory) })
	t.Run("ConcurrentSenders", func(t *testing.T) { testConcurrent(t, factory) })
	t.Run("DialNoListener", func(t *testing.T) { testNoListener(t, factory) })
	t.Run("CloseUnblocksRecv", func(t *testing.T) { testCloseUnblocks(t, factory) })
	t.Run("ListenerCloseUnblocksAccept", func(t *testing.T) { testListenerClose(t, factory) })
	t.Run("OversizeRejected", func(t *testing.T) { testOversize(t, factory) })
	t.Run("MultipleClients", func(t *testing.T) { testMultipleClients(t, factory) })
	t.Run("BurstOfSizes", func(t *testing.T) { testBurstOfSizes(t, factory) })
	t.Run("SendAfterCloseFails", func(t *testing.T) { testSendAfterClose(t, factory) })
}

// pair establishes a connected client/server endpoint pair.
func pair(t *testing.T, net transport.Network, addr string) (client, server transport.Endpoint, cleanup func()) {
	t.Helper()
	l, err := net.Listen(addr)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	type res struct {
		ep  transport.Endpoint
		err error
	}
	ch := make(chan res, 1)
	go func() {
		ep, err := l.Accept()
		ch <- res{ep, err}
	}()
	c, err := net.Dial(l.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatalf("Accept: %v", r.err)
	}
	return c, r.ep, func() {
		c.Close()
		r.ep.Close()
		l.Close()
	}
}

func testEcho(t *testing.T, factory Factory) {
	net, next := factory(t)
	c, s, cleanup := pair(t, net, next())
	defer cleanup()

	msg := []byte("help request")
	if err := c.Send(msg); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := s.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("Recv = %q, want %q", got, msg)
	}
	// And back.
	if err := s.Send([]byte("can't help")); err != nil {
		t.Fatalf("reply Send: %v", err)
	}
	got, err = c.Recv()
	if err != nil {
		t.Fatalf("reply Recv: %v", err)
	}
	if string(got) != "can't help" {
		t.Fatalf("reply = %q", got)
	}
}

func testLarge(t *testing.T, factory Factory) {
	net, next := factory(t)
	c, s, cleanup := pair(t, net, next())
	defer cleanup()

	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i * 7)
	}
	done := make(chan error, 1)
	go func() { done <- c.Send(big) }()
	got, err := s.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Send: %v", err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("large datagram corrupted")
	}
}

func testOrder(t *testing.T, factory Factory) {
	net, next := factory(t)
	c, s, cleanup := pair(t, net, next())
	defer cleanup()

	const n = 500
	go func() {
		for i := 0; i < n; i++ {
			if err := c.Send([]byte(fmt.Sprintf("m%d", i))); err != nil {
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		got, err := s.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if want := fmt.Sprintf("m%d", i); string(got) != want {
			t.Fatalf("message %d = %q, want %q (order violated)", i, got, want)
		}
	}
}

func testConcurrent(t *testing.T, factory Factory) {
	net, next := factory(t)
	c, s, cleanup := pair(t, net, next())
	defer cleanup()

	const senders, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := c.Send([]byte("x")); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
			}
		}()
	}
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for i := 0; i < senders*per; i++ {
			if _, err := s.Recv(); err != nil {
				t.Errorf("Recv: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	select {
	case <-recvDone:
	case <-time.After(10 * time.Second):
		t.Fatal("receiver did not see all datagrams")
	}
}

func testNoListener(t *testing.T, factory Factory) {
	net, next := factory(t)
	if _, err := net.Dial(next() + "-nobody-home"); err == nil {
		t.Fatal("Dial to unbound address succeeded")
	}
}

func testCloseUnblocks(t *testing.T, factory Factory) {
	net, next := factory(t)
	c, s, cleanup := pair(t, net, next())
	defer cleanup()

	errCh := make(chan error, 1)
	go func() {
		_, err := s.Recv()
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.Close()
	s.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("Recv returned nil error after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv still blocked after close")
	}
}

func testListenerClose(t *testing.T, factory Factory) {
	net, next := factory(t)
	l, err := net.Listen(next())
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	l.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("Accept returned nil error after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Accept still blocked after listener close")
	}
}

func testOversize(t *testing.T, factory Factory) {
	net, next := factory(t)
	c, _, cleanup := pair(t, net, next())
	defer cleanup()
	huge := make([]byte, transport.MaxDatagram+1)
	if err := c.Send(huge); err == nil {
		t.Fatal("oversize Send succeeded")
	}
}

// testBurstOfSizes drives rapidly varying datagram sizes through one
// connection and checks framing integrity end to end: header and body
// must never tear or interleave (the tcp implementation sends them as
// one vectored write), and since Recv may reuse its buffer, each
// datagram is verified before the next Recv — exactly how a contract-
// respecting caller behaves.
func testBurstOfSizes(t *testing.T, factory Factory) {
	net, next := factory(t)
	c, s, cleanup := pair(t, net, next())
	defer cleanup()

	sizes := []int{1, 3, 4096, 1, 65537, 2, 100000, 5, 512, 1}
	go func() {
		buf := make([]byte, 100000)
		for i, n := range sizes {
			for j := 0; j < n; j++ {
				buf[j] = byte(i*31 + j)
			}
			if err := c.Send(buf[:n]); err != nil {
				t.Errorf("Send size %d: %v", n, err)
				return
			}
		}
	}()
	for i, n := range sizes {
		got, err := s.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if len(got) != n {
			t.Fatalf("datagram %d: %d bytes, want %d (framing torn)", i, len(got), n)
		}
		for j, b := range got {
			if b != byte(i*31+j) {
				t.Fatalf("datagram %d corrupted at byte %d", i, j)
			}
		}
	}
}

// testSendAfterClose checks a closed endpoint eventually refuses to
// send. "Eventually" tolerates transports that only notice the
// teardown on a later attempt (real sockets buffer; reliable-UDP
// retries), but a transport that accepts datagrams forever after Close
// would make the network manager's redial logic unreachable.
func testSendAfterClose(t *testing.T, factory Factory) {
	net, next := factory(t)
	c, _, cleanup := pair(t, net, next())
	defer cleanup()
	c.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := c.Send([]byte("after close")); err != nil {
			return // contract satisfied
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("Send kept succeeding on a closed endpoint")
}

func testMultipleClients(t *testing.T, factory Factory) {
	net, next := factory(t)
	l, err := net.Listen(next())
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()

	const clients = 5
	var wg sync.WaitGroup
	// Server: accept each client, echo its single message back.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < clients; i++ {
			ep, err := l.Accept()
			if err != nil {
				t.Errorf("Accept: %v", err)
				return
			}
			go func() {
				defer ep.Close()
				msg, err := ep.Recv()
				if err != nil {
					t.Errorf("server Recv: %v", err)
					return
				}
				if err := ep.Send(msg); err != nil {
					t.Errorf("server Send: %v", err)
				}
			}()
		}
	}()

	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep, err := net.Dial(l.Addr())
			if err != nil {
				t.Errorf("client %d Dial: %v", i, err)
				return
			}
			defer ep.Close()
			want := fmt.Sprintf("client-%d", i)
			if err := ep.Send([]byte(want)); err != nil {
				t.Errorf("client %d Send: %v", i, err)
				return
			}
			got, err := ep.Recv()
			if err != nil {
				t.Errorf("client %d Recv: %v", i, err)
				return
			}
			if string(got) != want {
				t.Errorf("client %d echo = %q, want %q", i, got, want)
			}
		}(i)
	}
	wg.Wait()
}
