package exec

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/memory"
	"repro/internal/mthread"
	"repro/internal/sched"
	"repro/internal/testnet"
	"repro/internal/types"
	"repro/internal/wire"
)

// execNode is a single-site execution stack with a controllable registry.
type execNode struct {
	node  *testnet.Node
	sched *sched.Manager
	mem   *memory.Manager
	exec  *Manager
	reg   *mthread.Registry

	mu      sync.Mutex
	outputs []string
	exits   [][]byte
}

type regResolver struct{ reg *mthread.Registry }

func (r regResolver) Resolve(thread types.ThreadID) (mthread.Func, error) {
	// Thread names in these tests are "t<Index>".
	name := "t" + string(rune('0'+thread.Index))
	fn, ok := r.reg.Lookup(name)
	if !ok {
		return nil, types.ErrNoSuchThread
	}
	return fn, nil
}

func newExecNode(t *testing.T, cfg Config) *execNode {
	t.Helper()
	en := &execNode{reg: mthread.NewRegistry()}
	nodes := testnet.NewCluster(t, 1, func(i int, node *testnet.Node) {
		en.node = node
		en.sched = sched.New(node.Bus, node.CM, regResolver{en.reg}, sched.Config{})
		en.mem = memory.New(node.Bus, en.sched.Enqueue)
		en.sched.SetAdopter(en.mem)
	})
	_ = nodes
	en.exec = New(en.sched, en.mem, en.node.Bus.Self,
		func(_ types.ProgramID, text string) {
			en.mu.Lock()
			en.outputs = append(en.outputs, text)
			en.mu.Unlock()
		},
		func(_ types.ProgramID, result []byte) {
			en.mu.Lock()
			en.exits = append(en.exits, result)
			en.mu.Unlock()
		}, cfg)
	en.sched.Start()
	en.exec.Start()
	t.Cleanup(func() {
		en.sched.Close()
		en.exec.Wait()
	})
	return en
}

func (en *execNode) spawn(threadIdx uint32) types.FrameID {
	prog := types.MakeProgramID(1, 1)
	return en.mem.NewFrame(types.ThreadID{Program: prog, Index: threadIdx}, 0, types.PriorityNormal, 0)
}

func TestExecutesFrame(t *testing.T) {
	en := newExecNode(t, Config{})
	done := make(chan struct{}, 1)
	en.reg.Register("t0", func(ctx mthread.Context) error {
		done <- struct{}{}
		return nil
	})
	en.spawn(0)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("microthread never ran")
	}
	testnet.WaitFor(t, "executed counter", func() bool { return en.exec.Executed() == 1 })
}

func TestContextBasics(t *testing.T) {
	en := newExecNode(t, Config{Speed: 2.0})
	done := make(chan error, 1)
	en.reg.Register("t0", func(ctx mthread.Context) error {
		switch {
		case ctx.Arity() != 0:
			t.Error("Arity wrong")
		case ctx.Thread().Index != 0:
			t.Error("Thread wrong")
		case ctx.Site() != en.node.Bus.Self():
			t.Error("Site wrong")
		case ctx.Speed() != 2.0:
			t.Error("Speed wrong")
		case !ctx.Target(99).IsNil():
			t.Error("out-of-range Target should be nil")
		case ctx.Param(99) != nil:
			t.Error("out-of-range Param should be nil")
		}
		done <- nil
		return nil
	})
	en.spawn(0)
	<-done
}

func TestContextMemoryOps(t *testing.T) {
	en := newExecNode(t, Config{})
	done := make(chan error, 1)
	en.reg.Register("t0", func(ctx mthread.Context) error {
		addr := ctx.Alloc([]byte("abc"))
		if err := ctx.Write(addr, 1, []byte("X")); err != nil {
			return err
		}
		got, err := ctx.Read(addr)
		if err != nil {
			return err
		}
		if string(got) != "aXc" {
			t.Errorf("Read = %q", got)
		}
		got, err = ctx.Attract(addr)
		if err != nil {
			return err
		}
		if string(got) != "aXc" {
			t.Errorf("Attract = %q", got)
		}
		done <- nil
		return nil
	})
	en.spawn(0)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestContextDataflowChain(t *testing.T) {
	en := newExecNode(t, Config{})
	result := make(chan uint64, 1)
	en.reg.Register("t0", func(ctx mthread.Context) error {
		// Create a t1 frame and feed it.
		f := ctx.NewFrame(1, 1)
		return ctx.Send(wire.Target{Addr: f, Slot: 0}, mthread.U64(21))
	})
	en.reg.Register("t1", func(ctx mthread.Context) error {
		result <- 2 * mthread.ParseU64(ctx.Param(0))
		return nil
	})
	en.spawn(0)
	select {
	case v := <-result:
		if v != 42 {
			t.Fatalf("chained result = %d", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("chain never completed")
	}
}

func TestExitHookFires(t *testing.T) {
	en := newExecNode(t, Config{})
	en.reg.Register("t0", func(ctx mthread.Context) error {
		ctx.Exit([]byte("bye"))
		return nil
	})
	en.spawn(0)
	testnet.WaitFor(t, "exit hook", func() bool {
		en.mu.Lock()
		defer en.mu.Unlock()
		return len(en.exits) == 1 && string(en.exits[0]) == "bye"
	})
}

func TestOutputHookFires(t *testing.T) {
	en := newExecNode(t, Config{})
	en.reg.Register("t0", func(ctx mthread.Context) error {
		ctx.Output("report")
		return nil
	})
	en.spawn(0)
	testnet.WaitFor(t, "output hook", func() bool {
		en.mu.Lock()
		defer en.mu.Unlock()
		return len(en.outputs) == 1 && en.outputs[0] == "report"
	})
}

func TestErrorCountedAndReported(t *testing.T) {
	en := newExecNode(t, Config{})
	en.reg.Register("t0", func(ctx mthread.Context) error {
		return types.ErrNoSuchObject
	})
	en.spawn(0)
	testnet.WaitFor(t, "error counted", func() bool { return en.exec.Errors() == 1 })
	en.mu.Lock()
	defer en.mu.Unlock()
	if len(en.outputs) != 1 || !strings.Contains(en.outputs[0], "failed") {
		t.Fatalf("outputs = %v", en.outputs)
	}
}

func TestPanicDoesNotKillDaemon(t *testing.T) {
	en := newExecNode(t, Config{})
	en.reg.Register("t0", func(ctx mthread.Context) error {
		panic("application bug")
	})
	en.reg.Register("t1", func(ctx mthread.Context) error { return nil })
	en.spawn(0)
	testnet.WaitFor(t, "panic counted", func() bool { return en.exec.Errors() == 1 })
	// The daemon keeps executing other microthreads.
	en.spawn(1)
	testnet.WaitFor(t, "survivor ran", func() bool { return en.exec.Executed() >= 2 })
}

func TestSimulatedWorkSleeps(t *testing.T) {
	en := newExecNode(t, Config{Model: WorkSimulated, WorkUnit: 10 * time.Millisecond})
	done := make(chan time.Duration, 1)
	en.reg.Register("t0", func(ctx mthread.Context) error {
		start := time.Now()
		ctx.Work(3) // 30ms at speed 1
		done <- time.Since(start)
		return nil
	})
	en.spawn(0)
	if d := <-done; d < 25*time.Millisecond {
		t.Fatalf("Work(3) took %v, want ≈30ms", d)
	}
}

func TestSpeedScalesWork(t *testing.T) {
	en := newExecNode(t, Config{Model: WorkSimulated, WorkUnit: 10 * time.Millisecond, Speed: 3.0})
	done := make(chan time.Duration, 1)
	en.reg.Register("t0", func(ctx mthread.Context) error {
		start := time.Now()
		ctx.Work(3) // 30ms / speed 3 = 10ms
		done <- time.Since(start)
		return nil
	})
	en.spawn(0)
	d := <-done
	if d < 8*time.Millisecond || d > 25*time.Millisecond {
		t.Fatalf("Work(3) at speed 3 took %v, want ≈10ms", d)
	}
}

func TestRealWorkBurns(t *testing.T) {
	en := newExecNode(t, Config{Model: WorkReal, WorkUnit: time.Millisecond})
	done := make(chan time.Duration, 1)
	en.reg.Register("t0", func(ctx mthread.Context) error {
		start := time.Now()
		ctx.Work(5)
		done <- time.Since(start)
		return nil
	})
	en.spawn(0)
	if d := <-done; d < 4*time.Millisecond {
		t.Fatalf("real Work(5) took %v", d)
	}
	if en.exec.BusyNanos() == 0 {
		t.Fatal("BusyNanos not accumulated")
	}
}

func TestSimulatedWorkSerializesPerSite(t *testing.T) {
	// A site models one processor: 4 frames of 30ms simulated Work on
	// one site must take ≈120ms even with a window of 4 — otherwise a
	// 1-site baseline would falsely run window-times faster and every
	// speedup experiment would be skewed.
	en := newExecNode(t, Config{Window: 4, Model: WorkSimulated, WorkUnit: time.Millisecond})
	var wg sync.WaitGroup
	wg.Add(4)
	en.reg.Register("t0", func(ctx mthread.Context) error {
		defer wg.Done()
		ctx.Work(30)
		return nil
	})
	start := time.Now()
	for i := 0; i < 4; i++ {
		en.spawn(0)
	}
	wgDone := make(chan struct{})
	go func() { wg.Wait(); close(wgDone) }()
	select {
	case <-wgDone:
	case <-time.After(10 * time.Second):
		t.Fatal("frames never finished")
	}
	if d := time.Since(start); d < 110*time.Millisecond {
		t.Fatalf("window-4 batch of 4x30ms took %v; simulated work must serialize per site", d)
	}
}

func TestWindowOverlapsWorkWithBlockedSiblings(t *testing.T) {
	// The window's purpose (paper §4): while one microthread computes,
	// siblings may sit blocked without occupying the processor. Frames
	// that only wait (no Work) must not extend the makespan.
	en := newExecNode(t, Config{Window: 4, Model: WorkSimulated, WorkUnit: time.Millisecond})
	var wg sync.WaitGroup
	wg.Add(3)
	en.reg.Register("t0", func(ctx mthread.Context) error { // computes
		defer wg.Done()
		ctx.Work(40)
		return nil
	})
	en.reg.Register("t1", func(ctx mthread.Context) error { // only blocks
		defer wg.Done()
		time.Sleep(40 * time.Millisecond) // stands in for a remote read
		return nil
	})
	start := time.Now()
	en.spawn(0)
	en.spawn(1)
	en.spawn(1)
	wgDone := make(chan struct{})
	go func() { wg.Wait(); close(wgDone) }()
	select {
	case <-wgDone:
	case <-time.After(10 * time.Second):
		t.Fatal("frames never finished")
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("blocked siblings serialized with computation: %v", d)
	}
}

func TestZeroWorkIsFree(t *testing.T) {
	en := newExecNode(t, Config{Model: WorkSimulated, WorkUnit: time.Second})
	done := make(chan time.Duration, 1)
	en.reg.Register("t0", func(ctx mthread.Context) error {
		start := time.Now()
		ctx.Work(0)
		ctx.Work(-5)
		done <- time.Since(start)
		return nil
	})
	en.spawn(0)
	if d := <-done; d > 100*time.Millisecond {
		t.Fatalf("zero work took %v", d)
	}
}
