// Package exec implements the SDVM's processing manager (paper §4).
//
// "The processing manager is responsible for the execution of
// microthreads. If it is idle, it requests a pair of an executable
// microframe and its corresponding microthread from the scheduling
// manager." Microthreads run to completion, uninterrupted (§3.2: they are
// the atomic execution unit); only their *start* is dataflow-triggered.
//
// Latency hiding: "when a microthread has to wait for data due to an
// access to the memory, the processing manager can hide the latency by
// switching to another microthread run in parallel. ... Tests showed that
// a number of about 5 microthreads run in (virtual) parallel produce good
// results." Here each slot of that window is a goroutine pulling from the
// scheduling manager; a microthread blocking in a remote read yields the
// processor to its siblings exactly as in the paper. The window size is
// configurable for the A-2 ablation.
package exec

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/memory"
	"repro/internal/metrics"
	"repro/internal/mthread"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/types"
	"repro/internal/wire"
)

// DefaultWindow is the paper's empirically good latency-hiding window.
const DefaultWindow = 5

// WorkModel selects how mthread.Context.Work spends its cost.
type WorkModel uint8

const (
	// WorkReal burns CPU for the scaled duration — faithful to the
	// paper's testbed, but only exhibits speedup with real cores.
	WorkReal WorkModel = iota
	// WorkSimulated sleeps for the scaled duration. Sleeping
	// microthreads across sites overlap even on a single-core host, so
	// cluster benches reproduce the paper's speedup *shape* without an
	// 8-core machine. All protocol work (scheduling, migration,
	// messages) remains real either way.
	WorkSimulated
)

// Config parameterizes a processing manager.
type Config struct {
	// Window is the latency-hiding window (paper: ≈5).
	Window int
	// Model selects real or simulated computation for Context.Work.
	Model WorkModel
	// WorkUnit is the wall-clock equivalent of Work(1.0) at speed 1.0.
	WorkUnit time.Duration
	// Speed is this site's relative speed; Work cost divides by it.
	Speed float64
}

// Manager is one site's processing manager.
type Manager struct {
	sched  *sched.Manager
	mem    *memory.Manager
	output func(types.ProgramID, string)
	exit   func(types.ProgramID, []byte)
	input  func(types.ProgramID, string) (string, bool)
	acct   func(prog types.ProgramID, busy time.Duration, workUnits float64)
	tr     *trace.Tracer
	cfg    Config
	site   func() types.SiteID

	executed  atomic.Uint64
	errs      atomic.Uint64
	busyNanos atomic.Int64
	running   atomic.Int32

	// met holds the metrics instruments. The zero value is inert; written
	// once by SetMetrics before Start.
	met execMetrics

	// cpuMu/cpuFree serialize simulated Work per site: a site models
	// one processor, so the latency-hiding window may overlap
	// computation with *blocked* siblings (remote reads, parameter
	// waits) but never computation with computation. Workers also gate
	// *fetching* on a free CPU ("it should leave enough work for other
	// sites", paper §4): surplus ready frames stay in the scheduling
	// manager's queue where help requests can steal them, instead of
	// being hoarded by the window. Real-work mode needs neither — the
	// OS arbitrates actual CPUs.
	cpuMu   sync.Mutex
	cpuCond *sync.Cond
	cpuBusy bool

	wg sync.WaitGroup
}

// New returns a processing manager. output and exit are wired to the I/O
// and program managers by the daemon.
func New(s *sched.Manager, mem *memory.Manager, site func() types.SiteID,
	output func(types.ProgramID, string), exit func(types.ProgramID, []byte), cfg Config) *Manager {
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.WorkUnit <= 0 {
		cfg.WorkUnit = time.Millisecond
	}
	if cfg.Speed <= 0 {
		cfg.Speed = 1.0
	}
	if output == nil {
		output = func(types.ProgramID, string) {}
	}
	if exit == nil {
		exit = func(types.ProgramID, []byte) {}
	}
	m := &Manager{
		sched:  s,
		mem:    mem,
		output: output,
		exit:   exit,
		input:  func(types.ProgramID, string) (string, bool) { return "", false },
		acct:   func(types.ProgramID, time.Duration, float64) {},
		cfg:    cfg,
		site:   site,
	}
	m.cpuCond = sync.NewCond(&m.cpuMu)
	return m
}

// SetTracer installs the event tracer (nil = off).
func (m *Manager) SetTracer(t *trace.Tracer) { m.tr = t }

// execMetrics bundles the processing manager's instruments; the zero value
// (nil pointers) disables collection.
type execMetrics struct {
	executed *metrics.Counter
	errors   *metrics.Counter
	runTime  *metrics.Histogram // microthread execution time
	waitTime *metrics.Histogram // worker idle time between microthreads
}

// SetMetrics installs the instruments. Must be called before Start; a nil
// registry leaves metrics disabled.
func (m *Manager) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	m.met = execMetrics{
		executed: reg.Counter("exec.executed"),
		errors:   reg.Counter("exec.errors"),
		runTime:  reg.Histogram("exec.run_time", nil),
		waitTime: reg.Histogram("exec.wait_time", nil),
	}
	reg.GaugeFunc("exec.running", func() int64 { return int64(m.running.Load()) })
}

// SetAccountant wires the accounting manager's per-execution hook.
func (m *Manager) SetAccountant(f func(prog types.ProgramID, busy time.Duration, workUnits float64)) {
	if f != nil {
		m.acct = f
	}
}

// SetInput wires the I/O manager's frontend-input request path.
func (m *Manager) SetInput(f func(prog types.ProgramID, prompt string) (string, bool)) {
	if f != nil {
		m.input = f
	}
}

// Start launches the latency-hiding window of worker slots.
func (m *Manager) Start() {
	for i := 0; i < m.cfg.Window; i++ {
		m.wg.Add(1)
		go m.worker()
	}
}

// Wait blocks until all workers exited (after sched.Close unblocks them).
func (m *Manager) Wait() { m.wg.Wait() }

// Executed returns the number of microthreads run.
func (m *Manager) Executed() uint64 { return m.executed.Load() }

// Errors returns the number of microthreads that returned an error.
func (m *Manager) Errors() uint64 { return m.errs.Load() }

// Running returns the number of microthreads executing right now.
func (m *Manager) Running() int { return int(m.running.Load()) }

// BusyNanos returns cumulative execution time across the window,
// for load computation by the site manager.
func (m *Manager) BusyNanos() int64 { return m.busyNanos.Load() }

func (m *Manager) worker() {
	defer m.wg.Done()
	measureWait := m.met.waitTime != nil
	for {
		m.waitCPUFree()
		var idleStart time.Time
		if measureWait {
			idleStart = time.Now()
		}
		r, ok := m.sched.GetWork()
		if !ok {
			return
		}
		if measureWait {
			m.met.waitTime.Observe(time.Since(idleStart))
		}
		m.run(r)
	}
}

// waitCPUFree blocks (in simulated mode) until no sibling holds the
// simulated processor, so this worker doesn't pull work it cannot start.
func (m *Manager) waitCPUFree() {
	if m.cfg.Model != WorkSimulated {
		return
	}
	m.cpuMu.Lock()
	for m.cpuBusy {
		m.cpuCond.Wait()
	}
	m.cpuMu.Unlock()
}

// run executes one ready microframe to completion.
func (m *Manager) run(r *sched.Ready) {
	m.running.Add(1)
	start := time.Now()
	ctx := &execContext{mgr: m, frame: r.Frame}
	defer func() {
		busy := time.Since(start)
		m.busyNanos.Add(int64(busy))
		m.running.Add(-1)
		m.executed.Add(1)
		m.met.executed.Inc()
		m.met.runTime.Observe(busy)
		m.acct(r.Frame.Thread.Program, busy, ctx.worked)
		m.tr.Record(trace.EvExecuted, r.Frame.ID, r.Frame.Thread,
			fmt.Sprintf("in %v", busy.Round(time.Microsecond)))
		if p := recover(); p != nil {
			// A panicking microthread must not take the daemon down;
			// the paper's goal 2 (fault tolerance) applies to buggy
			// application code, too.
			m.errs.Add(1)
			m.met.errors.Inc()
			m.output(r.Frame.Thread.Program,
				fmt.Sprintf("microthread %v panicked: %v", r.Frame.Thread, p))
		}
	}()

	if err := r.Fn(ctx); err != nil {
		m.errs.Add(1)
		m.met.errors.Inc()
		m.output(r.Frame.Thread.Program,
			fmt.Sprintf("microthread %v failed: %v", r.Frame.Thread, err))
	}
}

// spend realizes one Work call under the configured model.
func (m *Manager) spend(cost float64) {
	if cost <= 0 {
		return
	}
	d := time.Duration(cost / m.cfg.Speed * float64(m.cfg.WorkUnit))
	if d <= 0 {
		return
	}
	switch m.cfg.Model {
	case WorkSimulated:
		m.cpuMu.Lock()
		for m.cpuBusy {
			m.cpuCond.Wait()
		}
		m.cpuBusy = true
		m.cpuMu.Unlock()

		//sdvmlint:allow sleepfree -- the sleep IS the model: simulated work occupies the virtual CPU for d
		time.Sleep(d)

		m.cpuMu.Lock()
		m.cpuBusy = false
		m.cpuCond.Broadcast()
		m.cpuMu.Unlock()
	default:
		// Busy-burn: spin until the deadline, touching a sink so the
		// loop is not optimized away.
		deadline := time.Now().Add(d)
		var sink uint64
		for time.Now().Before(deadline) {
			for i := 0; i < 1024; i++ {
				sink = sink*6364136223846793005 + 1442695040888963407
			}
		}
		_ = sink
	}
}

// execContext implements mthread.Context for one microthread execution.
type execContext struct {
	mgr    *Manager
	frame  *wire.Microframe
	worked float64 // accumulated Work cost, for accounting
}

var _ mthread.Context = (*execContext)(nil)

func (c *execContext) Param(i int) []byte {
	if i < 0 || i >= len(c.frame.Params) {
		return nil
	}
	return c.frame.Params[i]
}

func (c *execContext) Arity() int { return c.frame.Arity() }

func (c *execContext) Target(i int) wire.Target {
	if i < 0 || i >= len(c.frame.Target) {
		return wire.Target{}
	}
	return c.frame.Target[i]
}

func (c *execContext) Targets() []wire.Target { return c.frame.Target }

func (c *execContext) Program() types.ProgramID { return c.frame.Thread.Program }

func (c *execContext) Thread() types.ThreadID { return c.frame.Thread }

func (c *execContext) Frame() types.FrameID { return c.frame.ID }

func (c *execContext) Site() types.SiteID { return c.mgr.site() }

func (c *execContext) Speed() float64 { return c.mgr.cfg.Speed }

func (c *execContext) NewFrame(threadIdx uint32, arity int, targets ...wire.Target) types.FrameID {
	return c.NewFramePrio(threadIdx, arity, c.frame.Prio, 0, targets...)
}

func (c *execContext) NewFramePrio(threadIdx uint32, arity int, prio types.Priority, hint uint32, targets ...wire.Target) types.FrameID {
	thread := types.ThreadID{Program: c.frame.Thread.Program, Index: threadIdx}
	return c.mgr.mem.NewFrame(thread, arity, prio, hint, targets...)
}

func (c *execContext) Send(target wire.Target, data []byte) error {
	return c.mgr.mem.SendFor(c.frame.Thread.Program, target, data)
}

func (c *execContext) Alloc(data []byte) types.GlobalAddr {
	return c.mgr.mem.Alloc(c.frame.Thread.Program, data)
}

func (c *execContext) Read(addr types.GlobalAddr) ([]byte, error) {
	return c.mgr.mem.Read(addr)
}

func (c *execContext) Write(addr types.GlobalAddr, offset int, data []byte) error {
	return c.mgr.mem.Write(addr, offset, data)
}

func (c *execContext) Attract(addr types.GlobalAddr) ([]byte, error) {
	return c.mgr.mem.Attract(addr)
}

func (c *execContext) Output(text string) {
	c.mgr.output(c.frame.Thread.Program, text)
}

func (c *execContext) Work(cpuCost float64) {
	if cpuCost > 0 {
		c.worked += cpuCost
	}
	c.mgr.spend(cpuCost)
}

func (c *execContext) Input(prompt string) (string, bool) {
	return c.mgr.input(c.frame.Thread.Program, prompt)
}

func (c *execContext) Exit(result []byte) {
	c.mgr.exit(c.frame.Thread.Program, result)
}
