// Package accounting implements the SDVM's accounting manager — the
// feature the paper proposes for commercial operation: "the SDVM could
// act as a service provider, letting customers run calculation-intensive
// applications on external computer clusters. ... The accounting
// functionality needed for this can be integrated into the SDVM" (§2.2),
// and §6: "for a commercial use of the SDVM as an application layer like
// a middleware, methods to distinguish users and accounting functions
// should be implemented."
//
// Every site keeps a local account per program: microthreads executed,
// Work units spent, busy wall-clock time, messages, bytes of parameters
// moved, and frontend output lines. ClusterUsage aggregates the accounts
// from every live site, and Invoice prices them with a configurable
// rate card.
package accounting

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/msgbus"
	"repro/internal/types"
	"repro/internal/wire"
)

// Rates is the price card for Invoice. All rates may be zero.
type Rates struct {
	PerMicrothread float64 // per executed microthread
	PerWorkUnit    float64 // per Context.Work unit
	PerBusySecond  float64 // per second of processor time
	PerMessage     float64 // per SDMessage the program caused
	PerMegabyte    float64 // per MiB of parameter data moved
}

// Manager is one site's accounting manager.
type Manager struct {
	bus *msgbus.Bus
	cm  *cluster.Manager

	mu sync.Mutex
	// accounts is the per-program meter. guarded by mu
	accounts map[types.ProgramID]*wire.Usage
}

// New returns an accounting manager registered for MgrAccounting.
func New(bus *msgbus.Bus, cm *cluster.Manager) *Manager {
	m := &Manager{
		bus:      bus,
		cm:       cm,
		accounts: make(map[types.ProgramID]*wire.Usage),
	}
	bus.Register(types.MgrAccounting, m)
	return m
}

// account returns (creating if needed) the local account of prog.
// Caller holds m.mu.
func (m *Manager) accountLocked(prog types.ProgramID) *wire.Usage {
	u, ok := m.accounts[prog]
	if !ok {
		u = &wire.Usage{Program: prog, Site: m.bus.Self()}
		m.accounts[prog] = u
	}
	return u
}

// RecordExecution books one finished microthread.
func (m *Manager) RecordExecution(prog types.ProgramID, busy time.Duration) {
	m.mu.Lock()
	u := m.accountLocked(prog)
	u.Executed++
	u.BusyNanos += int64(busy)
	m.mu.Unlock()
}

// RecordExecution2 is the processing manager's combined per-execution
// hook: one microthread finished after busy wall-clock time, having
// spent workUnits of Context.Work.
func (m *Manager) RecordExecution2(prog types.ProgramID, busy time.Duration, workUnits float64) {
	m.mu.Lock()
	u := m.accountLocked(prog)
	u.Executed++
	u.BusyNanos += int64(busy)
	u.WorkUnits += workUnits
	m.mu.Unlock()
}

// RecordWork books Context.Work cost.
func (m *Manager) RecordWork(prog types.ProgramID, cost float64) {
	if cost <= 0 {
		return
	}
	m.mu.Lock()
	m.accountLocked(prog).WorkUnits += cost
	m.mu.Unlock()
}

// RecordTraffic books one outgoing message with payload bytes on behalf
// of prog.
func (m *Manager) RecordTraffic(prog types.ProgramID, bytes int) {
	m.mu.Lock()
	u := m.accountLocked(prog)
	u.MsgsSent++
	u.BytesMoved += uint64(bytes)
	m.mu.Unlock()
}

// RecordOutput books one frontend line.
func (m *Manager) RecordOutput(prog types.ProgramID) {
	m.mu.Lock()
	m.accountLocked(prog).Outputs++
	m.mu.Unlock()
}

// LocalUsage returns this site's account of prog.
func (m *Manager) LocalUsage(prog types.ProgramID) wire.Usage {
	m.mu.Lock()
	defer m.mu.Unlock()
	if u, ok := m.accounts[prog]; ok {
		return *u
	}
	return wire.Usage{Program: prog, Site: m.bus.Self()}
}

// LocalPrograms lists the programs with a local account, sorted.
func (m *Manager) LocalPrograms() []types.ProgramID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]types.ProgramID, 0, len(m.accounts))
	for p := range m.accounts {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DropProgram discards the account of a settled program. Accounts
// survive program termination on purpose (the invoice comes after the
// run); dropping is an explicit settlement step.
func (m *Manager) DropProgram(prog types.ProgramID) {
	m.mu.Lock()
	delete(m.accounts, prog)
	m.mu.Unlock()
}

// ClusterUsage aggregates prog's accounts from every live site. Sites
// that fail to answer are skipped (their share is simply missing, as on
// any metered system with a dead meter); the per-site breakdown is
// returned alongside the total.
func (m *Manager) ClusterUsage(prog types.ProgramID) (total wire.Usage, perSite []wire.Usage) {
	total = wire.Usage{Program: prog}
	for _, id := range m.cm.SiteIDs() {
		var u wire.Usage
		if id == m.bus.Self() {
			u = m.LocalUsage(prog)
		} else {
			reply, err := m.bus.Request(id, types.MgrAccounting, types.MgrAccounting,
				&wire.UsageQuery{Program: prog}, 3*time.Second)
			if err != nil {
				continue
			}
			ur, ok := reply.Payload.(*wire.UsageReply)
			if !ok || len(ur.Accounts) == 0 {
				continue
			}
			u = ur.Accounts[0]
		}
		perSite = append(perSite, u)
		total.Add(u)
	}
	return total, perSite
}

// Invoice prices a usage under the rate card.
func Invoice(u wire.Usage, r Rates) float64 {
	return float64(u.Executed)*r.PerMicrothread +
		u.WorkUnits*r.PerWorkUnit +
		time.Duration(u.BusyNanos).Seconds()*r.PerBusySecond +
		float64(u.MsgsSent)*r.PerMessage +
		float64(u.BytesMoved)/(1<<20)*r.PerMegabyte
}

// FormatUsage renders a usage line for operator tools.
func FormatUsage(u wire.Usage) string {
	return fmt.Sprintf("%v on %v: %d microthreads, %.1f work units, %v busy, %d msgs, %.2f MiB, %d output lines",
		u.Program, u.Site, u.Executed, u.WorkUnits,
		time.Duration(u.BusyNanos).Round(time.Millisecond),
		u.MsgsSent, float64(u.BytesMoved)/(1<<20), u.Outputs)
}

// HandleMessage implements msgbus.Handler.
func (m *Manager) HandleMessage(msg *wire.Message) {
	q, ok := msg.Payload.(*wire.UsageQuery)
	if !ok {
		return
	}
	m.mu.Lock()
	var accounts []wire.Usage
	if q.Program != 0 {
		if u, found := m.accounts[q.Program]; found {
			accounts = append(accounts, *u)
		} else {
			accounts = append(accounts, wire.Usage{Program: q.Program, Site: m.bus.Self()})
		}
	} else {
		for _, u := range m.accounts {
			accounts = append(accounts, *u)
		}
	}
	m.mu.Unlock()
	sort.Slice(accounts, func(i, j int) bool { return accounts[i].Program < accounts[j].Program })
	_ = m.bus.Reply(msg, types.MgrAccounting, &wire.UsageReply{Accounts: accounts})
}
