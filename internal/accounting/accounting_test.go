package accounting

import (
	"testing"
	"time"

	"repro/internal/testnet"
	"repro/internal/types"
	"repro/internal/wire"
)

func acctCluster(t *testing.T, n int) ([]*testnet.Node, []*Manager) {
	t.Helper()
	mgrs := make([]*Manager, n)
	nodes := testnet.NewCluster(t, n, func(i int, node *testnet.Node) {
		mgrs[i] = New(node.Bus, node.CM)
	})
	return nodes, mgrs
}

func prog() types.ProgramID { return types.MakeProgramID(1, 1) }

func TestLocalRecording(t *testing.T) {
	_, mgrs := acctCluster(t, 1)
	m := mgrs[0]

	m.RecordExecution2(prog(), 10*time.Millisecond, 2.5)
	m.RecordExecution2(prog(), 5*time.Millisecond, 1.5)
	m.RecordTraffic(prog(), 100)
	m.RecordTraffic(prog(), 50)
	m.RecordOutput(prog())

	u := m.LocalUsage(prog())
	if u.Executed != 2 {
		t.Errorf("Executed = %d", u.Executed)
	}
	if u.WorkUnits != 4.0 {
		t.Errorf("WorkUnits = %v", u.WorkUnits)
	}
	if u.BusyNanos != int64(15*time.Millisecond) {
		t.Errorf("BusyNanos = %d", u.BusyNanos)
	}
	if u.MsgsSent != 2 || u.BytesMoved != 150 {
		t.Errorf("traffic = %d msgs %d bytes", u.MsgsSent, u.BytesMoved)
	}
	if u.Outputs != 1 {
		t.Errorf("Outputs = %d", u.Outputs)
	}
	if u.Site != m.bus.Self() || u.Program != prog() {
		t.Error("usage ids wrong")
	}
}

func TestUnknownProgramIsZero(t *testing.T) {
	_, mgrs := acctCluster(t, 1)
	u := mgrs[0].LocalUsage(types.MakeProgramID(9, 9))
	if u.Executed != 0 || u.WorkUnits != 0 {
		t.Error("phantom usage")
	}
}

func TestClusterUsageAggregates(t *testing.T) {
	_, mgrs := acctCluster(t, 3)
	for i, m := range mgrs {
		for j := 0; j <= i; j++ {
			m.RecordExecution2(prog(), time.Millisecond, 1)
		}
	}
	total, perSite := mgrs[0].ClusterUsage(prog())
	if total.Executed != 1+2+3 {
		t.Fatalf("total.Executed = %d, want 6", total.Executed)
	}
	if total.WorkUnits != 6 {
		t.Fatalf("total.WorkUnits = %v", total.WorkUnits)
	}
	if len(perSite) != 3 {
		t.Fatalf("perSite = %d entries", len(perSite))
	}
}

func TestClusterUsageSkipsZeroSilently(t *testing.T) {
	_, mgrs := acctCluster(t, 2)
	mgrs[0].RecordExecution2(prog(), time.Millisecond, 1)
	// Site 1 never saw the program; its zero account still aggregates.
	total, perSite := mgrs[1].ClusterUsage(prog())
	if total.Executed != 1 {
		t.Fatalf("total.Executed = %d", total.Executed)
	}
	if len(perSite) != 2 {
		t.Fatalf("perSite = %d", len(perSite))
	}
}

func TestUsageQueryAllPrograms(t *testing.T) {
	_, mgrs := acctCluster(t, 2)
	p2 := types.MakeProgramID(1, 2)
	mgrs[1].RecordExecution2(prog(), time.Millisecond, 1)
	mgrs[1].RecordExecution2(p2, time.Millisecond, 1)

	reply, err := mgrs[0].bus.Request(mgrs[1].bus.Self(), types.MgrAccounting, types.MgrAccounting,
		&wire.UsageQuery{Program: 0}, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ur := reply.Payload.(*wire.UsageReply)
	if len(ur.Accounts) != 2 {
		t.Fatalf("accounts = %d", len(ur.Accounts))
	}
	if ur.Accounts[0].Program > ur.Accounts[1].Program {
		t.Error("accounts not sorted")
	}
}

func TestDropProgram(t *testing.T) {
	_, mgrs := acctCluster(t, 1)
	mgrs[0].RecordExecution2(prog(), time.Millisecond, 1)
	mgrs[0].DropProgram(prog())
	if got := mgrs[0].LocalUsage(prog()); got.Executed != 0 {
		t.Error("usage survived DropProgram")
	}
	if len(mgrs[0].LocalPrograms()) != 0 {
		t.Error("program list not empty")
	}
}

func TestInvoice(t *testing.T) {
	u := wire.Usage{
		Executed:   100,
		WorkUnits:  50,
		BusyNanos:  int64(2 * time.Second),
		MsgsSent:   1000,
		BytesMoved: 2 << 20, // 2 MiB
	}
	r := Rates{
		PerMicrothread: 0.01,
		PerWorkUnit:    0.1,
		PerBusySecond:  1.0,
		PerMessage:     0.001,
		PerMegabyte:    0.5,
	}
	want := 100*0.01 + 50*0.1 + 2*1.0 + 1000*0.001 + 2*0.5
	if got := Invoice(u, r); got != want {
		t.Fatalf("Invoice = %v, want %v", got, want)
	}
	if Invoice(u, Rates{}) != 0 {
		t.Fatal("zero rates must invoice zero")
	}
}

func TestUsageAdd(t *testing.T) {
	a := wire.Usage{Executed: 1, WorkUnits: 2, BusyNanos: 3, MsgsSent: 4, BytesMoved: 5, Outputs: 6}
	b := a
	a.Add(b)
	if a.Executed != 2 || a.WorkUnits != 4 || a.BusyNanos != 6 || a.MsgsSent != 8 || a.BytesMoved != 10 || a.Outputs != 12 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestFormatUsage(t *testing.T) {
	u := wire.Usage{Program: prog(), Site: 1, Executed: 5}
	if FormatUsage(u) == "" {
		t.Fatal("empty format")
	}
}
