package netmgr

import (
	"sync"
	"testing"
	"time"

	"repro/internal/security"
	"repro/internal/transport"
	"repro/internal/wire"
)

// discardNet is a minimal transport whose endpoints swallow datagrams,
// isolating the manager's own send-path cost from any real link.
type discardNet struct{}

type discardEndpoint struct {
	closed chan struct{}
	once   sync.Once
}

func (discardNet) Listen(addr string) (transport.Listener, error) {
	return nil, transport.ErrClosed // benches never listen
}

func (discardNet) Dial(addr string) (transport.Endpoint, error) {
	return &discardEndpoint{closed: make(chan struct{})}, nil
}

func (e *discardEndpoint) Send(datagram []byte) error { return nil }

func (e *discardEndpoint) Recv() ([]byte, error) {
	<-e.closed
	return nil, transport.ErrClosed
}

func (e *discardEndpoint) Close() error {
	e.once.Do(func() { close(e.closed) })
	return nil
}

func (e *discardEndpoint) RemoteAddr() string { return "discard" }

// BenchmarkEnvelopeAppend measures the per-message coalescing work in
// isolation: one length-prefixed record copied into a pooled envelope.
// Steady state must be 0 allocs/op (the CI alloc gate tracks it).
func BenchmarkEnvelopeAppend(b *testing.B) {
	datagram := make([]byte, 128)
	env := wire.GetWriter(64 << 10)
	defer env.Release()
	// Warm the writer up to its working size so growth happens before
	// the measurement.
	for env.Len() < 60<<10 {
		appendRecord(env, datagram)
	}
	env.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if env.Len() > 60<<10 {
			env.Reset()
		}
		appendRecord(env, datagram)
	}
}

// BenchmarkCoalesce measures the full coalescing send path: enqueue,
// size-triggered flush, in-place seal, transport hand-off, envelope
// release. The flush timer is parked far out so the size threshold
// drives batching deterministically.
func BenchmarkCoalesce(b *testing.B) {
	m := New(discardNet{}, security.Plaintext{}, func([]byte) {})
	defer m.Close()
	m.SetCoalescing(Coalesce{Enabled: true, MaxBytes: 4096, MaxDelay: time.Hour})
	datagram := make([]byte, 128)
	// Warm: dial the cached connection and cycle one full batch.
	for i := 0; i < 64; i++ {
		if err := m.Send("peer", datagram); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Send("peer", datagram); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoalesceAESGCM is BenchmarkCoalesce with the real cipher, so
// the in-place seal's allocation behavior is tracked too.
func BenchmarkCoalesceAESGCM(b *testing.B) {
	sec, err := security.NewAESGCM("bench-pw")
	if err != nil {
		b.Fatal(err)
	}
	m := New(discardNet{}, sec, func([]byte) {})
	defer m.Close()
	m.SetCoalescing(Coalesce{Enabled: true, MaxBytes: 4096, MaxDelay: time.Hour})
	datagram := make([]byte, 128)
	for i := 0; i < 64; i++ {
		if err := m.Send("peer", datagram); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Send("peer", datagram); err != nil {
			b.Fatal(err)
		}
	}
}
