// Package netmgr implements the SDVM's network manager (paper §4).
//
// The network manager "sends and receives packets to and from the
// network. To receive, it features a listener, which spawns a new thread
// every time an incoming connection is established." It is the lowest
// layer of the SDVM and "works with physical (ip) addresses only" — it
// knows nothing about logical site ids, managers, or message contents.
//
// Outgoing datagrams pass through the security layer's Seal, incoming
// ones through Open, realizing the paper's placement of the security
// manager between message manager and network manager. Connections are
// cached per physical address and re-dialed transparently after failures,
// amortizing TCP's connection-setup overhead (the paper's main complaint
// about TCP for SDVM-sized messages).
package netmgr

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/security"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Envelope tags. Every plaintext datagram on the wire starts with one
// tag byte so a receiver can always tell a single message from a
// coalesced batch, regardless of whether its own sender coalesces.
const (
	tagSingle = 0x00
	tagBatch  = 0x01 // followed by uint32-length-prefixed messages
)

// Coalesce configures per-peer small-message batching. Several logical
// datagrams headed for the same peer are packed into one sealed
// envelope, amortizing the per-datagram seal + syscall cost that
// dominates for SDVM-sized messages. Off by default.
type Coalesce struct {
	Enabled  bool
	MaxBytes int           // flush when a peer's pending batch reaches this size; default 8192
	MaxDelay time.Duration // longest a message may wait for companions; default 500µs
}

// peerBatch accumulates not-yet-flushed datagrams for one peer. The
// envelope is built incrementally in a pooled wire.Writer: each Send
// copies its datagram into env at enqueue time (so callers may reuse
// their buffer the moment Send returns) and the flush hands the whole
// writer — seal headroom, tag, and records — to the transport without
// a repack. The flush timer is allocated once per peer and re-armed
// with Reset, not re-created per batch.
type peerBatch struct {
	mu    sync.Mutex
	env   *wire.Writer // guarded by mu; nil between batches
	count int          // guarded by mu; records in env
	timer *time.Timer  // guarded by mu; created on first use, then reused
	armed bool         // guarded by mu; a flush is scheduled
}

// Handler consumes one verified incoming datagram. It is called from a
// per-connection receive goroutine; implementations hand off long work.
type Handler func(datagram []byte)

// Manager moves sealed datagrams between this site and peers.
type Manager struct {
	net     transport.Network
	sec     security.Layer
	handler Handler

	mu       sync.Mutex
	listener transport.Listener
	conns    map[string]transport.Endpoint // dialed, by remote listen address
	live     map[transport.Endpoint]bool   // every endpoint with a recv loop
	closed   bool
	wg       sync.WaitGroup

	// met holds the metrics instruments; nil when metrics are disabled.
	// Written once by SetMetrics before Listen, read-only afterwards.
	met *netMetrics
	// peerBytes caches per-peer byte counters by physical address.
	// guarded by mu
	peerBytes map[string]*metrics.Counter

	// co holds the coalescing knobs. Written once by SetCoalescing
	// before Listen, read-only afterwards.
	co Coalesce
	// batches holds the per-peer pending batches by physical address.
	// guarded by mu
	batches map[string]*peerBatch

	// ip is sec when the security layer supports in-place sealing
	// (both shipped layers do); nil forces the copying Seal/Open
	// fallback. secPrefix/secSuffix cache its overheads so every
	// envelope is laid out with exactly the headroom the seal needs.
	ip        security.InPlace
	secPrefix int
	secSuffix int
}

// netMetrics bundles the datagram-level instruments.
type netMetrics struct {
	reg         *metrics.Registry
	sendDgrams  *metrics.Counter
	recvDgrams  *metrics.Counter
	sendBytes   *metrics.Counter
	recvBytes   *metrics.Counter
	sendErrs    *metrics.Counter
	openRejects *metrics.Counter
	coalesced   *metrics.Counter
}

// SetMetrics installs the instruments. Must be called before Listen; a nil
// registry leaves metrics disabled.
func (m *Manager) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	m.met = &netMetrics{
		reg:         reg,
		sendDgrams:  reg.Counter("net.send_datagrams"),
		recvDgrams:  reg.Counter("net.recv_datagrams"),
		sendBytes:   reg.Counter("net.send_bytes"),
		recvBytes:   reg.Counter("net.recv_bytes"),
		sendErrs:    reg.Counter("net.send_errors"),
		openRejects: reg.Counter("net.open_rejects"),
		coalesced:   reg.Counter("net.coalesced"),
	}
	m.mu.Lock()
	m.peerBytes = make(map[string]*metrics.Counter)
	m.mu.Unlock()
}

// peerCounter returns the per-peer byte counter for physAddr, creating it
// on first use. Returns nil when metrics are disabled.
func (m *Manager) peerCounter(physAddr string) *metrics.Counter {
	if m.met == nil {
		return nil
	}
	m.mu.Lock()
	c, ok := m.peerBytes[physAddr]
	if !ok {
		c = m.met.reg.Counter("net.peer_bytes." + physAddr)
		m.peerBytes[physAddr] = c
	}
	m.mu.Unlock()
	return c
}

// New returns a network manager using net for links and sec for sealing.
func New(net transport.Network, sec security.Layer, handler Handler) *Manager {
	m := &Manager{
		net:     net,
		sec:     sec,
		handler: handler,
		conns:   make(map[string]transport.Endpoint),
		live:    make(map[transport.Endpoint]bool),
		batches: make(map[string]*peerBatch),
	}
	if ip, ok := sec.(security.InPlace); ok {
		m.ip = ip
		m.secPrefix = ip.PrefixOverhead()
		m.secSuffix = ip.SuffixOverhead()
	}
	return m
}

// SetCoalescing installs the batching knobs. Must be called before
// Listen. With coalescing enabled, Send becomes fire-and-forget: the
// datagram is queued and transmitted within MaxDelay (or sooner, once
// MaxBytes of traffic for that peer accumulates); transmission errors
// surface through the net.send_errors counter instead of the return
// value. Receivers decode batches unconditionally, so coalescing may
// be enabled per site.
func (m *Manager) SetCoalescing(c Coalesce) {
	if c.MaxBytes <= 0 {
		c.MaxBytes = 8192
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 500 * time.Microsecond
	}
	m.co = c
}

// batch returns the pending-batch accumulator for physAddr, creating
// it on first use.
func (m *Manager) batch(physAddr string) *peerBatch {
	m.mu.Lock()
	pb, ok := m.batches[physAddr]
	if !ok {
		pb = &peerBatch{}
		m.batches[physAddr] = pb
	}
	m.mu.Unlock()
	return pb
}

// Listen binds the site's listening point and starts the accept loop.
// It returns the bound physical address (resolving ":0" style requests).
func (m *Manager) Listen(addr string) (string, error) {
	l, err := m.net.Listen(addr)
	if err != nil {
		return "", err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		l.Close()
		return "", transport.ErrClosed
	}
	m.listener = l
	m.mu.Unlock()

	m.wg.Add(1)
	go m.acceptLoop(l)
	return l.Addr(), nil
}

func (m *Manager) acceptLoop(l transport.Listener) {
	defer m.wg.Done()
	for {
		ep, err := l.Accept()
		if err != nil {
			return
		}
		m.track(ep)
	}
}

// track registers an endpoint and starts its receive loop; endpoints of
// a closed manager are closed immediately.
func (m *Manager) track(ep transport.Endpoint) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		ep.Close()
		return
	}
	m.live[ep] = true
	m.mu.Unlock()
	m.wg.Add(1)
	go m.recvLoop(ep)
}

// recvLoop drains one endpoint, opening and delivering each datagram.
// Datagrams that fail authentication are dropped silently — an attacker
// must not learn which guesses came close (and a cluster-config mistake
// shows up as timeouts, which the managers already handle).
func (m *Manager) recvLoop(ep transport.Endpoint) {
	defer m.wg.Done()
	defer func() {
		ep.Close()
		m.mu.Lock()
		delete(m.live, ep)
		m.mu.Unlock()
	}()
	for {
		sealed, err := ep.Recv()
		if err != nil {
			return
		}
		if mm := m.met; mm != nil {
			mm.recvDgrams.Inc()
			mm.recvBytes.Add(uint64(len(sealed)))
		}
		// The receive loop exclusively owns sealed until the next Recv
		// (the Endpoint contract), and deliver hands every record to
		// the handler synchronously — so the destructive in-place open
		// is safe and saves a full-datagram copy per receive.
		var plain []byte
		if m.ip != nil {
			plain, err = m.ip.OpenInPlace(sealed)
		} else {
			plain, err = m.sec.Open(sealed)
		}
		if err != nil {
			if mm := m.met; mm != nil {
				mm.openRejects.Inc()
			}
			continue
		}
		m.deliver(plain)
	}
}

// deliver unpacks one opened envelope and hands each contained message
// to the handler. Batches are decoded unconditionally: whether a peer
// coalesces is its own business. The unpacking itself is allocation-free
// (each record is a subslice of the envelope).
//
//sdvm:hotpath
//sdvm:borrowed plain
func (m *Manager) deliver(plain []byte) {
	if len(plain) == 0 {
		return
	}
	switch plain[0] {
	case tagSingle:
		m.handler(plain[1:]) //sdvmlint:allow allocfree -- handler is the bus dispatch hook; its cost is the receive path's, not the envelope decoder's
	case tagBatch:
		buf := plain[1:]
		for len(buf) >= 4 {
			n := binary.BigEndian.Uint32(buf[:4])
			buf = buf[4:]
			if uint64(n) > uint64(len(buf)) {
				return // truncated batch: drop the remainder
			}
			m.handler(buf[:n]) //sdvmlint:allow allocfree -- handler is the bus dispatch hook; its cost is the receive path's, not the envelope decoder's
			buf = buf[n:]
		}
	default:
		// Unknown envelope tag (future protocol revision): drop.
	}
}

// Send seals and transmits one datagram to the peer listening at
// physAddr. A cached connection is reused; on send failure one fresh
// dial is attempted before giving up (the peer may have restarted).
// With coalescing enabled the datagram is queued for the peer's next
// batch instead and nil is returned immediately.
func (m *Manager) Send(physAddr string, datagram []byte) error {
	if m.co.Enabled {
		m.enqueue(physAddr, datagram)
		if mm := m.met; mm != nil {
			mm.sendDgrams.Inc()
			mm.sendBytes.Add(uint64(len(datagram)))
			m.peerCounter(physAddr).Add(uint64(len(datagram)))
		}
		return nil
	}
	return m.SendUrgent(physAddr, datagram)
}

// SendUrgent transmits one datagram immediately, bypassing any
// coalescing queue. Liveness probes use this: a ping that waits out a
// flush timer measures the timer, not the network.
func (m *Manager) SendUrgent(physAddr string, datagram []byte) error {
	env := wire.GetWriter(m.secPrefix + 1 + len(datagram) + m.secSuffix)
	env.Zero(m.secPrefix)
	env.Uint8(tagSingle)
	env.Raw(datagram)
	if err := m.send(physAddr, env); err != nil {
		if mm := m.met; mm != nil {
			mm.sendErrs.Inc()
		}
		return err
	}
	if mm := m.met; mm != nil {
		mm.sendDgrams.Inc()
		mm.sendBytes.Add(uint64(len(datagram)))
		m.peerCounter(physAddr).Add(uint64(len(datagram)))
	}
	return nil
}

// startEnvelope lays out a fresh batch envelope in a pooled writer:
// seal headroom, then the batch tag. Records follow via appendRecord.
// A batch of one simply travels as a one-record batch — receivers
// decode both tags unconditionally.
func (m *Manager) startEnvelope() *wire.Writer {
	env := wire.GetWriter(m.secPrefix + 1 + m.co.MaxBytes + m.secSuffix)
	env.Zero(m.secPrefix)
	env.Uint8(tagBatch)
	return env
}

// appendRecord copies one length-prefixed datagram into the envelope.
// This is the coalescing path's per-message work: a bounds-checked
// copy into pooled storage, nothing else. The copy is also the
// aliasing firewall — once enqueue returns, the caller may reuse or
// release its datagram buffer without corrupting the in-flight batch.
//
//sdvm:hotpath
func appendRecord(env *wire.Writer, datagram []byte) {
	env.Uint32BE(uint32(len(datagram)))
	env.Raw(datagram)
}

// enqueue appends datagram to physAddr's pending batch, flushing when
// the batch is full and arming the delay timer otherwise.
func (m *Manager) enqueue(physAddr string, datagram []byte) {
	pb := m.batch(physAddr)
	pb.mu.Lock()
	if pb.env == nil {
		pb.env = m.startEnvelope()
		pb.count = 0
	}
	appendRecord(pb.env, datagram)
	pb.count++
	if pb.env.Len()-m.secPrefix-1 >= m.co.MaxBytes {
		env, count := pb.env, pb.count
		pb.env, pb.count = nil, 0
		if pb.armed {
			pb.timer.Stop()
			pb.armed = false
		}
		pb.mu.Unlock()
		m.flush(physAddr, env, count)
		return
	}
	if !pb.armed {
		if pb.timer == nil {
			pb.timer = time.AfterFunc(m.co.MaxDelay, func() { m.flushPeer(physAddr, pb) })
		} else {
			pb.timer.Reset(m.co.MaxDelay)
		}
		pb.armed = true
	}
	pb.mu.Unlock()
}

// flushPeer drains pb's pending batch (fired by the delay timer). A
// stale firing — the size threshold already flushed, or Reset raced
// with an expiry — finds no envelope and does nothing.
func (m *Manager) flushPeer(physAddr string, pb *peerBatch) {
	pb.mu.Lock()
	env, count := pb.env, pb.count
	pb.env, pb.count = nil, 0
	pb.armed = false
	pb.mu.Unlock()
	if env != nil {
		m.flush(physAddr, env, count)
	}
}

// flush seals and transmits one stolen batch envelope. Called with no
// locks held; takes ownership of env.
func (m *Manager) flush(physAddr string, env *wire.Writer, count int) {
	if count > 1 {
		if mm := m.met; mm != nil {
			mm.coalesced.Add(uint64(count))
		}
	}
	if err := m.send(physAddr, env); err != nil {
		if mm := m.met; mm != nil {
			mm.sendErrs.Inc()
		}
	}
}

// send seals and transmits one envelope, taking ownership of env: its
// pooled buffer is released once the transport no longer references it
// (Endpoint.Send must not retain the slice after returning). With an
// in-place layer the seal happens inside env's own storage — nonce
// into the headroom, ciphertext over the records, tag into spare
// capacity — so the whole send path performs zero allocations.
func (m *Manager) send(physAddr string, env *wire.Writer) error {
	defer env.Release()

	var sealed []byte
	var err error
	if m.ip != nil {
		env.Reserve(m.secSuffix)
		sealed, err = m.ip.SealInPlace(env.Bytes())
	} else {
		sealed, err = m.sec.Seal(env.Bytes())
	}
	if err != nil {
		return err
	}

	ep, err := m.conn(physAddr, false)
	if err != nil {
		return err
	}
	if err := ep.Send(sealed); err == nil {
		return nil
	}
	// Stale connection: drop it and retry over a fresh one.
	ep, err = m.conn(physAddr, true)
	if err != nil {
		return err
	}
	if err := ep.Send(sealed); err != nil {
		m.drop(physAddr, ep)
		return fmt.Errorf("netmgr send to %s: %w", physAddr, err)
	}
	return nil
}

// conn returns the cached connection to physAddr, dialing if absent or
// if fresh is set.
func (m *Manager) conn(physAddr string, fresh bool) (transport.Endpoint, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, transport.ErrClosed
	}
	if !fresh {
		if ep, ok := m.conns[physAddr]; ok {
			m.mu.Unlock()
			return ep, nil
		}
	}
	m.mu.Unlock()

	ep, err := m.net.Dial(physAddr)
	if err != nil {
		return nil, err
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		ep.Close()
		return nil, transport.ErrClosed
	}
	if old, ok := m.conns[physAddr]; ok && !fresh {
		// Lost a race with a concurrent dial; keep the existing one.
		m.mu.Unlock()
		ep.Close()
		return old, nil
	}
	if old, ok := m.conns[physAddr]; ok {
		old.Close()
	}
	m.conns[physAddr] = ep
	m.mu.Unlock()

	// Replies and peer-initiated traffic can arrive on our dialed
	// connection too; drain it like an accepted one.
	m.track(ep)
	return ep, nil
}

// drop removes a dead connection from the cache.
func (m *Manager) drop(physAddr string, ep transport.Endpoint) {
	m.mu.Lock()
	if m.conns[physAddr] == ep {
		delete(m.conns, physAddr)
	}
	m.mu.Unlock()
	ep.Close()
}

// Forget closes and forgets the cached connection to physAddr (used when
// a peer signs off or is declared crashed).
func (m *Manager) Forget(physAddr string) {
	m.mu.Lock()
	ep, ok := m.conns[physAddr]
	if ok {
		delete(m.conns, physAddr)
	}
	pb := m.batches[physAddr]
	delete(m.batches, physAddr)
	m.mu.Unlock()
	if pb != nil {
		dropBatch(pb)
	}
	if ok {
		ep.Close()
	}
}

// dropBatch discards a peer's pending messages, returning the pooled
// envelope, and disarms its timer.
func dropBatch(pb *peerBatch) {
	pb.mu.Lock()
	if pb.env != nil {
		pb.env.Release()
		pb.env = nil
	}
	pb.count = 0
	if pb.timer != nil {
		pb.timer.Stop()
	}
	pb.armed = false
	pb.mu.Unlock()
}

// Close shuts the manager down: the listener stops, all connections
// close, and Close blocks until every receive goroutine exited.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	l := m.listener
	conns := make([]transport.Endpoint, 0, len(m.conns)+len(m.live))
	for _, ep := range m.conns {
		conns = append(conns, ep)
	}
	for ep := range m.live {
		conns = append(conns, ep)
	}
	m.conns = make(map[string]transport.Endpoint)
	batches := m.batches
	m.batches = make(map[string]*peerBatch)
	m.mu.Unlock()

	for _, pb := range batches {
		dropBatch(pb)
	}
	if l != nil {
		l.Close()
	}
	// Close connections concurrently: a large site holds hundreds of
	// endpoints, and each Close may briefly contend with live peer
	// traffic — serialized, that contention compounds into a teardown
	// measured in tens of seconds at 256 sites.
	var cwg sync.WaitGroup
	for _, ep := range conns {
		cwg.Add(1)
		go func(ep transport.Endpoint) {
			defer cwg.Done()
			ep.Close()
		}(ep)
	}
	cwg.Wait()
	m.wg.Wait()
}
