// Package netmgr implements the SDVM's network manager (paper §4).
//
// The network manager "sends and receives packets to and from the
// network. To receive, it features a listener, which spawns a new thread
// every time an incoming connection is established." It is the lowest
// layer of the SDVM and "works with physical (ip) addresses only" — it
// knows nothing about logical site ids, managers, or message contents.
//
// Outgoing datagrams pass through the security layer's Seal, incoming
// ones through Open, realizing the paper's placement of the security
// manager between message manager and network manager. Connections are
// cached per physical address and re-dialed transparently after failures,
// amortizing TCP's connection-setup overhead (the paper's main complaint
// about TCP for SDVM-sized messages).
package netmgr

import (
	"fmt"
	"sync"

	"repro/internal/metrics"
	"repro/internal/security"
	"repro/internal/transport"
)

// Handler consumes one verified incoming datagram. It is called from a
// per-connection receive goroutine; implementations hand off long work.
type Handler func(datagram []byte)

// Manager moves sealed datagrams between this site and peers.
type Manager struct {
	net     transport.Network
	sec     security.Layer
	handler Handler

	mu       sync.Mutex
	listener transport.Listener
	conns    map[string]transport.Endpoint // dialed, by remote listen address
	live     map[transport.Endpoint]bool   // every endpoint with a recv loop
	closed   bool
	wg       sync.WaitGroup

	// met holds the metrics instruments; nil when metrics are disabled.
	// Written once by SetMetrics before Listen, read-only afterwards.
	met *netMetrics
	// peerBytes caches per-peer byte counters by physical address.
	// guarded by mu
	peerBytes map[string]*metrics.Counter
}

// netMetrics bundles the datagram-level instruments.
type netMetrics struct {
	reg         *metrics.Registry
	sendDgrams  *metrics.Counter
	recvDgrams  *metrics.Counter
	sendBytes   *metrics.Counter
	recvBytes   *metrics.Counter
	sendErrs    *metrics.Counter
	openRejects *metrics.Counter
}

// SetMetrics installs the instruments. Must be called before Listen; a nil
// registry leaves metrics disabled.
func (m *Manager) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	m.met = &netMetrics{
		reg:         reg,
		sendDgrams:  reg.Counter("net.send_datagrams"),
		recvDgrams:  reg.Counter("net.recv_datagrams"),
		sendBytes:   reg.Counter("net.send_bytes"),
		recvBytes:   reg.Counter("net.recv_bytes"),
		sendErrs:    reg.Counter("net.send_errors"),
		openRejects: reg.Counter("net.open_rejects"),
	}
	m.mu.Lock()
	m.peerBytes = make(map[string]*metrics.Counter)
	m.mu.Unlock()
}

// peerCounter returns the per-peer byte counter for physAddr, creating it
// on first use. Returns nil when metrics are disabled.
func (m *Manager) peerCounter(physAddr string) *metrics.Counter {
	if m.met == nil {
		return nil
	}
	m.mu.Lock()
	c, ok := m.peerBytes[physAddr]
	if !ok {
		c = m.met.reg.Counter("net.peer_bytes." + physAddr)
		m.peerBytes[physAddr] = c
	}
	m.mu.Unlock()
	return c
}

// New returns a network manager using net for links and sec for sealing.
func New(net transport.Network, sec security.Layer, handler Handler) *Manager {
	return &Manager{
		net:     net,
		sec:     sec,
		handler: handler,
		conns:   make(map[string]transport.Endpoint),
		live:    make(map[transport.Endpoint]bool),
	}
}

// Listen binds the site's listening point and starts the accept loop.
// It returns the bound physical address (resolving ":0" style requests).
func (m *Manager) Listen(addr string) (string, error) {
	l, err := m.net.Listen(addr)
	if err != nil {
		return "", err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		l.Close()
		return "", transport.ErrClosed
	}
	m.listener = l
	m.mu.Unlock()

	m.wg.Add(1)
	go m.acceptLoop(l)
	return l.Addr(), nil
}

func (m *Manager) acceptLoop(l transport.Listener) {
	defer m.wg.Done()
	for {
		ep, err := l.Accept()
		if err != nil {
			return
		}
		m.track(ep)
	}
}

// track registers an endpoint and starts its receive loop; endpoints of
// a closed manager are closed immediately.
func (m *Manager) track(ep transport.Endpoint) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		ep.Close()
		return
	}
	m.live[ep] = true
	m.mu.Unlock()
	m.wg.Add(1)
	go m.recvLoop(ep)
}

// recvLoop drains one endpoint, opening and delivering each datagram.
// Datagrams that fail authentication are dropped silently — an attacker
// must not learn which guesses came close (and a cluster-config mistake
// shows up as timeouts, which the managers already handle).
func (m *Manager) recvLoop(ep transport.Endpoint) {
	defer m.wg.Done()
	defer func() {
		ep.Close()
		m.mu.Lock()
		delete(m.live, ep)
		m.mu.Unlock()
	}()
	for {
		sealed, err := ep.Recv()
		if err != nil {
			return
		}
		if mm := m.met; mm != nil {
			mm.recvDgrams.Inc()
			mm.recvBytes.Add(uint64(len(sealed)))
		}
		plain, err := m.sec.Open(sealed)
		if err != nil {
			if mm := m.met; mm != nil {
				mm.openRejects.Inc()
			}
			continue
		}
		m.handler(plain)
	}
}

// Send seals and transmits one datagram to the peer listening at
// physAddr. A cached connection is reused; on send failure one fresh
// dial is attempted before giving up (the peer may have restarted).
func (m *Manager) Send(physAddr string, datagram []byte) error {
	if err := m.send(physAddr, datagram); err != nil {
		if mm := m.met; mm != nil {
			mm.sendErrs.Inc()
		}
		return err
	}
	if mm := m.met; mm != nil {
		mm.sendDgrams.Inc()
		mm.sendBytes.Add(uint64(len(datagram)))
		m.peerCounter(physAddr).Add(uint64(len(datagram)))
	}
	return nil
}

func (m *Manager) send(physAddr string, datagram []byte) error {
	sealed, err := m.sec.Seal(datagram)
	if err != nil {
		return err
	}

	ep, err := m.conn(physAddr, false)
	if err != nil {
		return err
	}
	if err := ep.Send(sealed); err == nil {
		return nil
	}
	// Stale connection: drop it and retry over a fresh one.
	ep, err = m.conn(physAddr, true)
	if err != nil {
		return err
	}
	if err := ep.Send(sealed); err != nil {
		m.drop(physAddr, ep)
		return fmt.Errorf("netmgr send to %s: %w", physAddr, err)
	}
	return nil
}

// conn returns the cached connection to physAddr, dialing if absent or
// if fresh is set.
func (m *Manager) conn(physAddr string, fresh bool) (transport.Endpoint, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, transport.ErrClosed
	}
	if !fresh {
		if ep, ok := m.conns[physAddr]; ok {
			m.mu.Unlock()
			return ep, nil
		}
	}
	m.mu.Unlock()

	ep, err := m.net.Dial(physAddr)
	if err != nil {
		return nil, err
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		ep.Close()
		return nil, transport.ErrClosed
	}
	if old, ok := m.conns[physAddr]; ok && !fresh {
		// Lost a race with a concurrent dial; keep the existing one.
		m.mu.Unlock()
		ep.Close()
		return old, nil
	}
	if old, ok := m.conns[physAddr]; ok {
		old.Close()
	}
	m.conns[physAddr] = ep
	m.mu.Unlock()

	// Replies and peer-initiated traffic can arrive on our dialed
	// connection too; drain it like an accepted one.
	m.track(ep)
	return ep, nil
}

// drop removes a dead connection from the cache.
func (m *Manager) drop(physAddr string, ep transport.Endpoint) {
	m.mu.Lock()
	if m.conns[physAddr] == ep {
		delete(m.conns, physAddr)
	}
	m.mu.Unlock()
	ep.Close()
}

// Forget closes and forgets the cached connection to physAddr (used when
// a peer signs off or is declared crashed).
func (m *Manager) Forget(physAddr string) {
	m.mu.Lock()
	ep, ok := m.conns[physAddr]
	if ok {
		delete(m.conns, physAddr)
	}
	m.mu.Unlock()
	if ok {
		ep.Close()
	}
}

// Close shuts the manager down: the listener stops, all connections
// close, and Close blocks until every receive goroutine exited.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	l := m.listener
	conns := make([]transport.Endpoint, 0, len(m.conns)+len(m.live))
	for _, ep := range m.conns {
		conns = append(conns, ep)
	}
	for ep := range m.live {
		conns = append(conns, ep)
	}
	m.conns = make(map[string]transport.Endpoint)
	m.mu.Unlock()

	if l != nil {
		l.Close()
	}
	for _, ep := range conns {
		ep.Close()
	}
	m.wg.Wait()
}
