package netmgr

import (
	"sync"
	"testing"
	"time"

	"repro/internal/security"
	"repro/internal/transport/inproc"
	"repro/internal/wire"
)

// TestPooledAliasReleaseDuringCoalescing is the pooled-buffer aliasing
// regression test. The ownership contract says enqueue copies the
// datagram into the batch envelope before Send returns, so a caller may
// Release its pooled encode buffer — and another goroutine may
// immediately reuse that storage — while the envelope is still waiting
// to flush. If the copy were ever skipped (queueing the caller's slice
// instead), this test corrupts in-flight batches deterministically:
// every sender scribbles over its released buffer's pool class right
// after Send, and the receiver checks each delivered datagram is still
// uniformly filled with its sender's tag. Run under -race in the CI
// stress job.
func TestPooledAliasReleaseDuringCoalescing(t *testing.T) {
	fab := inproc.New(inproc.LinkProfile{})
	t.Cleanup(fab.Close)

	const (
		senders   = 8
		perSender = 300
		size      = 32
	)

	type result struct {
		mu  sync.Mutex
		bad []string
		n   int
	}
	var res result
	done := make(chan struct{})

	b := New(fab, security.Plaintext{}, func(d []byte) {
		res.mu.Lock()
		defer res.mu.Unlock()
		if len(d) != size {
			res.bad = append(res.bad, "wrong length")
		} else {
			tag := d[0]
			for _, c := range d {
				if c != tag {
					res.bad = append(res.bad, "mixed bytes in one datagram")
					break
				}
			}
		}
		res.n++
		if res.n == senders*perSender {
			close(done)
		}
	})
	t.Cleanup(b.Close)
	addrB, err := b.Listen("site-b")
	if err != nil {
		t.Fatal(err)
	}

	a := New(fab, security.Plaintext{}, func([]byte) {})
	a.SetCoalescing(Coalesce{Enabled: true, MaxBytes: 1024, MaxDelay: 200 * time.Microsecond})
	t.Cleanup(a.Close)
	if _, err := a.Listen("site-a"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		tag := byte(s + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				w := wire.GetWriter(size)
				for j := 0; j < size; j++ {
					w.Uint8(tag)
				}
				if err := a.Send(addrB, w.Bytes()); err != nil {
					t.Errorf("send: %v", err)
					return
				}
				w.Release()
				// Reuse the pool class immediately and overwrite it —
				// exactly what an unrelated goroutine grabbing the
				// recycled buffer would do. With correct
				// copy-on-enqueue this cannot touch the batch.
				w2 := wire.GetWriter(size)
				w2.Zero(size)
				w2.Release()
			}
		}()
	}
	wg.Wait()

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		res.mu.Lock()
		n := res.n
		res.mu.Unlock()
		t.Fatalf("only %d/%d datagrams delivered", n, senders*perSender)
	}
	res.mu.Lock()
	defer res.mu.Unlock()
	if len(res.bad) > 0 {
		t.Fatalf("%d corrupted datagrams, first: %s", len(res.bad), res.bad[0])
	}
}
