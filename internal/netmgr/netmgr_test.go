package netmgr

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/security"
	"repro/internal/transport"
	"repro/internal/transport/inproc"
)

// collect buffers delivered datagrams for assertions.
type collect struct {
	mu   sync.Mutex
	msgs [][]byte
	ch   chan []byte
}

func newCollect() *collect {
	return &collect{ch: make(chan []byte, 128)}
}

func (c *collect) handler(d []byte) {
	c.mu.Lock()
	c.msgs = append(c.msgs, d)
	c.mu.Unlock()
	c.ch <- d
}

func (c *collect) wait(t *testing.T) []byte {
	t.Helper()
	select {
	case d := <-c.ch:
		return d
	case <-time.After(5 * time.Second):
		t.Fatal("no datagram delivered")
		return nil
	}
}

func newPairT(t *testing.T, sec security.Layer) (a, b *Manager, ca, cb *collect, addrA, addrB string) {
	t.Helper()
	fab := inproc.New(inproc.LinkProfile{})
	t.Cleanup(fab.Close)

	ca, cb = newCollect(), newCollect()
	a = New(fab, sec, ca.handler)
	b = New(fab, sec, cb.handler)
	t.Cleanup(a.Close)
	t.Cleanup(b.Close)

	var err error
	addrA, err = a.Listen("site-a")
	if err != nil {
		t.Fatal(err)
	}
	addrB, err = b.Listen("site-b")
	if err != nil {
		t.Fatal(err)
	}
	return
}

func TestSendDeliversPlaintext(t *testing.T) {
	a, _, _, cb, _, addrB := newPairT(t, security.Plaintext{})
	if err := a.Send(addrB, []byte("help request")); err != nil {
		t.Fatal(err)
	}
	if got := cb.wait(t); string(got) != "help request" {
		t.Fatalf("delivered %q", got)
	}
}

func TestSendDeliversEncrypted(t *testing.T) {
	sec, err := security.NewAESGCM("cluster-pw")
	if err != nil {
		t.Fatal(err)
	}
	a, b, ca, cb, addrA, addrB := newPairT(t, sec)

	if err := a.Send(addrB, []byte("secret")); err != nil {
		t.Fatal(err)
	}
	if got := cb.wait(t); string(got) != "secret" {
		t.Fatalf("delivered %q", got)
	}
	// Reverse direction over b's own dial.
	if err := b.Send(addrA, []byte("reply")); err != nil {
		t.Fatal(err)
	}
	if got := ca.wait(t); string(got) != "reply" {
		t.Fatalf("delivered %q", got)
	}
}

func TestMismatchedKeysDropSilently(t *testing.T) {
	secA, _ := security.NewAESGCM("alpha")
	secB, _ := security.NewAESGCM("beta")
	fab := inproc.New(inproc.LinkProfile{})
	defer fab.Close()

	cb := newCollect()
	a := New(fab, secA, func([]byte) {})
	b := New(fab, secB, cb.handler)
	defer a.Close()
	defer b.Close()
	if _, err := a.Listen("a"); err != nil {
		t.Fatal(err)
	}
	addrB, err := b.Listen("b")
	if err != nil {
		t.Fatal(err)
	}

	if err := a.Send(addrB, []byte("noise")); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-cb.ch:
		t.Fatalf("foreign-key datagram delivered: %q", d)
	case <-time.After(100 * time.Millisecond):
		// Correct: dropped.
	}
}

func TestConnectionReuse(t *testing.T) {
	a, _, _, cb, _, addrB := newPairT(t, security.Plaintext{})
	for i := 0; i < 50; i++ {
		if err := a.Send(addrB, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		cb.wait(t)
	}
	a.mu.Lock()
	n := len(a.conns)
	a.mu.Unlock()
	if n != 1 {
		t.Fatalf("%d cached connections, want 1", n)
	}
}

func TestRepliesArriveOnDialedConnection(t *testing.T) {
	// a dials b; b answers over its own Send — and a must also receive
	// traffic b initiates, without b ever dialing (beyond its own cache).
	a, b, ca, cb, addrA, addrB := newPairT(t, security.Plaintext{})
	if err := a.Send(addrB, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	cb.wait(t)
	if err := b.Send(addrA, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	ca.wait(t)
}

func TestSendToDeadPeerFails(t *testing.T) {
	fab := inproc.New(inproc.LinkProfile{})
	defer fab.Close()
	a := New(fab, security.Plaintext{}, func([]byte) {})
	defer a.Close()
	if err := a.Send("nobody", []byte("x")); err == nil {
		t.Fatal("Send to unbound address succeeded")
	}
}

func TestRedialAfterPeerRestart(t *testing.T) {
	fab := inproc.New(inproc.LinkProfile{})
	defer fab.Close()

	cb := newCollect()
	a := New(fab, security.Plaintext{}, func([]byte) {})
	defer a.Close()
	b1 := New(fab, security.Plaintext{}, cb.handler)
	addrB, err := b1.Listen("b")
	if err != nil {
		t.Fatal(err)
	}

	if err := a.Send(addrB, []byte("one")); err != nil {
		t.Fatal(err)
	}
	cb.wait(t)

	// Restart b: old connections die, a's cache goes stale.
	b1.Close()
	b2 := New(fab, security.Plaintext{}, cb.handler)
	defer b2.Close()
	if _, err := b2.Listen("b"); err != nil {
		t.Fatal(err)
	}

	// Allow close to propagate, then Send must transparently redial.
	time.Sleep(20 * time.Millisecond)
	if err := a.Send(addrB, []byte("two")); err != nil {
		t.Fatalf("Send after peer restart: %v", err)
	}
	if got := cb.wait(t); string(got) != "two" {
		t.Fatalf("delivered %q", got)
	}
}

func TestForgetDropsConnection(t *testing.T) {
	a, _, _, cb, _, addrB := newPairT(t, security.Plaintext{})
	if err := a.Send(addrB, []byte("x")); err != nil {
		t.Fatal(err)
	}
	cb.wait(t)
	a.Forget(addrB)
	a.mu.Lock()
	n := len(a.conns)
	a.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d cached connections after Forget, want 0", n)
	}
}

func TestCloseIsIdempotentAndTerminal(t *testing.T) {
	a, _, _, _, _, addrB := newPairT(t, security.Plaintext{})
	a.Close()
	a.Close()
	if err := a.Send(addrB, []byte("x")); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("Send after Close = %v", err)
	}
	if _, err := a.Listen("again"); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("Listen after Close = %v", err)
	}
}

func TestCoalescingDeliversAll(t *testing.T) {
	fab := inproc.New(inproc.LinkProfile{})
	t.Cleanup(fab.Close)
	cb := newCollect()
	a := New(fab, security.Plaintext{}, func([]byte) {})
	a.SetCoalescing(Coalesce{Enabled: true, MaxDelay: time.Millisecond})
	b := New(fab, security.Plaintext{}, cb.handler)
	t.Cleanup(a.Close)
	t.Cleanup(b.Close)
	if _, err := a.Listen("a"); err != nil {
		t.Fatal(err)
	}
	addrB, err := b.Listen("b")
	if err != nil {
		t.Fatal(err)
	}

	const n = 20
	for i := 0; i < n; i++ {
		if err := a.Send(addrB, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := map[byte]bool{}
	for i := 0; i < n; i++ {
		d := cb.wait(t)
		if len(d) != 1 {
			t.Fatalf("datagram %q, want one byte", d)
		}
		if got[d[0]] {
			t.Fatalf("byte %d delivered twice", d[0])
		}
		got[d[0]] = true
	}
}

func TestCoalescingFlushesOnSize(t *testing.T) {
	fab := inproc.New(inproc.LinkProfile{})
	t.Cleanup(fab.Close)
	cb := newCollect()
	a := New(fab, security.Plaintext{}, func([]byte) {})
	// A long MaxDelay proves the size threshold, not the timer, flushed.
	a.SetCoalescing(Coalesce{Enabled: true, MaxBytes: 64, MaxDelay: time.Minute})
	b := New(fab, security.Plaintext{}, cb.handler)
	t.Cleanup(a.Close)
	t.Cleanup(b.Close)
	if _, err := a.Listen("a"); err != nil {
		t.Fatal(err)
	}
	addrB, err := b.Listen("b")
	if err != nil {
		t.Fatal(err)
	}

	// 3 × (20+4) = 72 ≥ 64: the third Send crosses the threshold.
	for i := 0; i < 3; i++ {
		if err := a.Send(addrB, make([]byte, 20)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		cb.wait(t)
	}
}

func TestSendUrgentBypassesQueue(t *testing.T) {
	fab := inproc.New(inproc.LinkProfile{})
	t.Cleanup(fab.Close)
	cb := newCollect()
	a := New(fab, security.Plaintext{}, func([]byte) {})
	// With an hour-long flush delay, only the bypass path can deliver.
	a.SetCoalescing(Coalesce{Enabled: true, MaxDelay: time.Hour})
	b := New(fab, security.Plaintext{}, cb.handler)
	t.Cleanup(a.Close)
	t.Cleanup(b.Close)
	if _, err := a.Listen("a"); err != nil {
		t.Fatal(err)
	}
	addrB, err := b.Listen("b")
	if err != nil {
		t.Fatal(err)
	}

	if err := a.SendUrgent(addrB, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	if got := cb.wait(t); string(got) != "ping" {
		t.Fatalf("delivered %q", got)
	}
}

func TestConcurrentCoalescedSends(t *testing.T) {
	fab := inproc.New(inproc.LinkProfile{})
	t.Cleanup(fab.Close)
	cb := newCollect()
	a := New(fab, security.Plaintext{}, func([]byte) {})
	a.SetCoalescing(Coalesce{Enabled: true, MaxBytes: 256, MaxDelay: time.Millisecond})
	b := New(fab, security.Plaintext{}, cb.handler)
	t.Cleanup(a.Close)
	t.Cleanup(b.Close)
	if _, err := a.Listen("a"); err != nil {
		t.Fatal(err)
	}
	addrB, err := b.Listen("b")
	if err != nil {
		t.Fatal(err)
	}

	const n = 100
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.Send(addrB, []byte("m")); err != nil {
				t.Errorf("Send: %v", err)
			}
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		cb.wait(t)
	}
}

func TestConcurrentSendsOneTarget(t *testing.T) {
	a, _, _, cb, _, addrB := newPairT(t, security.Plaintext{})
	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.Send(addrB, []byte("m")); err != nil {
				t.Errorf("Send: %v", err)
			}
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		cb.wait(t)
	}
}
