package msgbus

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/types"
	"repro/internal/wire"
)

// fakeNet wires buses together by physical address, delivering serialized
// bytes to the target bus's OnDatagram — a stand-in for netmgr.
type fakeNet struct {
	mu    sync.Mutex
	buses map[string]*Bus
	drop  map[string]bool // physAddr -> black-hole sends
}

func newFakeNet() *fakeNet {
	return &fakeNet{buses: make(map[string]*Bus), drop: make(map[string]bool)}
}

func (n *fakeNet) Send(physAddr string, datagram []byte) error {
	n.mu.Lock()
	b, ok := n.buses[physAddr]
	dropped := n.drop[physAddr]
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("fakeNet: no bus at %q", physAddr)
	}
	if dropped {
		return nil // black-hole, like a partition
	}
	// Copy to model the network boundary.
	b.OnDatagram(append([]byte(nil), datagram...))
	return nil
}

// fakeResolver maps logical ids to fakeNet addresses.
type fakeResolver struct {
	mu    sync.Mutex
	addrs map[types.SiteID]string
}

func (r *fakeResolver) PhysAddr(id types.SiteID) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.addrs[id]
	if !ok {
		return "", &types.SiteError{Err: types.ErrSiteUnknown, Site: id}
	}
	return a, nil
}

func (r *fakeResolver) SiteIDs() []types.SiteID {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]types.SiteID, 0, len(r.addrs))
	for id := range r.addrs {
		out = append(out, id)
	}
	return out
}

// cluster builds n connected buses with ids 1..n.
func cluster(t *testing.T, n int) ([]*Bus, *fakeNet, *fakeResolver) {
	t.Helper()
	net := newFakeNet()
	res := &fakeResolver{addrs: make(map[types.SiteID]string)}
	buses := make([]*Bus, n)
	for i := 0; i < n; i++ {
		id := types.SiteID(i + 1)
		addr := fmt.Sprintf("addr-%d", id)
		b := New(res, net)
		b.SetSelf(id)
		b.Start()
		t.Cleanup(b.Close)
		buses[i] = b
		net.mu.Lock()
		net.buses[addr] = b
		net.mu.Unlock()
		res.mu.Lock()
		res.addrs[id] = addr
		res.mu.Unlock()
	}
	return buses, net, res
}

func TestLocalSendDispatches(t *testing.T) {
	buses, _, _ := cluster(t, 1)
	b := buses[0]
	got := make(chan *wire.Message, 1)
	b.Register(types.MgrScheduling, HandlerFunc(func(m *wire.Message) { got <- m }))

	if err := b.Send(b.Self(), types.MgrScheduling, types.MgrProcessing, &wire.Ping{Nonce: 7}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.Payload.(*wire.Ping).Nonce != 7 {
			t.Fatal("wrong payload")
		}
		if m.Src != b.Self() || m.Dst != b.Self() {
			t.Fatal("wrong local routing")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("local message not dispatched")
	}
}

func TestRemoteRequestReply(t *testing.T) {
	buses, _, _ := cluster(t, 2)
	a, b := buses[0], buses[1]

	b.Register(types.MgrCluster, HandlerFunc(func(m *wire.Message) {
		ping := m.Payload.(*wire.Ping)
		if err := b.Reply(m, types.MgrCluster, &wire.Pong{Nonce: ping.Nonce}); err != nil {
			t.Errorf("Reply: %v", err)
		}
	}))

	reply, err := a.Request(b.Self(), types.MgrCluster, types.MgrCluster, &wire.Ping{Nonce: 99}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Payload.(*wire.Pong).Nonce != 99 {
		t.Fatal("wrong pong")
	}
	if reply.Src != b.Self() {
		t.Fatalf("reply.Src = %v", reply.Src)
	}
}

func TestRequestToSelf(t *testing.T) {
	buses, _, _ := cluster(t, 1)
	b := buses[0]
	b.Register(types.MgrMemory, HandlerFunc(func(m *wire.Message) {
		_ = b.Reply(m, types.MgrMemory, &wire.Pong{Nonce: 1})
	}))
	if _, err := b.Request(b.Self(), types.MgrMemory, types.MgrProcessing, &wire.Ping{Nonce: 1}, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRequestTimeout(t *testing.T) {
	buses, _, _ := cluster(t, 2)
	a, b := buses[0], buses[1]
	// b has no handler: request must time out.
	_, err := a.Request(b.Self(), types.MgrCode, types.MgrCode, &wire.Ping{}, 50*time.Millisecond)
	if !errors.Is(err, types.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

// A reply that lands after the requester gave up must not be destroyed:
// it is dispatched to the destination manager like an ordinary one-way
// message, because replies can carry cargo (a HelpReply hands over a
// whole microframe) whose loss would strand a computation.
func TestLateReplyDispatched(t *testing.T) {
	buses, _, _ := cluster(t, 2)
	a, b := buses[0], buses[1]
	b.Register(types.MgrScheduling, HandlerFunc(func(m *wire.Message) {
		time.Sleep(150 * time.Millisecond) // outlive the requester's patience
		_ = b.Reply(m, types.MgrScheduling, &wire.HelpReply{CantHelp: true})
	}))
	late := make(chan *wire.Message, 1)
	a.Register(types.MgrScheduling, HandlerFunc(func(m *wire.Message) {
		late <- m
	}))
	_, err := a.Request(b.Self(), types.MgrScheduling, types.MgrScheduling,
		&wire.HelpRequest{Requester: a.Self()}, 30*time.Millisecond)
	if !errors.Is(err, types.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	select {
	case m := <-late:
		if _, ok := m.Payload.(*wire.HelpReply); !ok {
			t.Fatalf("late dispatch carried %T, want *wire.HelpReply", m.Payload)
		}
		if m.Reply == 0 {
			t.Fatal("dispatched message lost its reply correlation id")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("late reply was dropped instead of dispatched")
	}
}

func TestErrorReplyBecomesError(t *testing.T) {
	buses, _, _ := cluster(t, 2)
	a, b := buses[0], buses[1]
	b.Register(types.MgrMemory, HandlerFunc(func(m *wire.Message) {
		_ = b.ReplyErr(m, types.MgrMemory, wire.ErrCodeNoSuchObject, "object gone")
	}))
	_, err := a.Request(b.Self(), types.MgrMemory, types.MgrMemory, &wire.MemRead{}, 0)
	if !errors.Is(err, types.ErrNoSuchObject) {
		t.Fatalf("err = %v, want ErrNoSuchObject", err)
	}
}

func TestBroadcastReachesAllOthers(t *testing.T) {
	buses, _, _ := cluster(t, 4)
	var mu sync.Mutex
	got := map[types.SiteID]int{}
	var wg sync.WaitGroup
	wg.Add(3)
	for _, b := range buses[1:] {
		b := b
		b.Register(types.MgrCluster, HandlerFunc(func(m *wire.Message) {
			mu.Lock()
			got[b.Self()]++
			mu.Unlock()
			wg.Done()
		}))
	}
	// Sender must not receive its own broadcast.
	buses[0].Register(types.MgrCluster, HandlerFunc(func(m *wire.Message) {
		t.Error("broadcast delivered to sender")
	}))

	if err := buses[0].Send(types.Broadcast, types.MgrCluster, types.MgrCluster, &wire.CrashNotice{Dead: 9}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("broadcast incomplete")
	}
	mu.Lock()
	defer mu.Unlock()
	for id, n := range got {
		if n != 1 {
			t.Errorf("site %v received %d copies", id, n)
		}
	}
}

func TestUnknownDestinationErrors(t *testing.T) {
	buses, _, _ := cluster(t, 1)
	err := buses[0].Send(types.SiteID(77), types.MgrCluster, types.MgrCluster, &wire.Ping{})
	if !errors.Is(err, types.ErrSiteUnknown) {
		t.Fatalf("err = %v, want ErrSiteUnknown", err)
	}
}

func TestRequestAddrBootstrap(t *testing.T) {
	// A joining site (no logical id yet) asks a known physical address
	// to sign on; the responder's reply is matched by sequence number
	// even though the requester's id is InvalidSite.
	buses, net, res := cluster(t, 1)
	contact := buses[0]

	joiner := New(res, net)
	joiner.Start()
	t.Cleanup(joiner.Close)
	net.mu.Lock()
	net.buses["addr-joiner"] = joiner
	net.mu.Unlock()

	contact.Register(types.MgrCluster, HandlerFunc(func(m *wire.Message) {
		req := m.Payload.(*wire.SignOnRequest)
		// Cluster manager behaviour: learn the joiner's address, then
		// reply to the newly assigned id (the request's Src is
		// InvalidSite — unroutable — so a plain Reply cannot work).
		res.mu.Lock()
		res.addrs[types.SiteID(5)] = req.PhysAddr
		res.mu.Unlock()
		_ = contact.SendMsg(&wire.Message{
			Src:     contact.Self(),
			Dst:     5,
			SrcMgr:  types.MgrCluster,
			DstMgr:  m.SrcMgr,
			Seq:     contact.NextSeq(),
			Reply:   m.Seq,
			Payload: &wire.SignOnReply{Assigned: 5},
		})
	}))

	reply, err := joiner.RequestAddr("addr-1", types.MgrCluster, types.MgrCluster,
		&wire.SignOnRequest{PhysAddr: "addr-joiner"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	assigned := reply.Payload.(*wire.SignOnReply).Assigned
	if assigned != 5 {
		t.Fatalf("assigned = %v", assigned)
	}
	joiner.SetSelf(assigned)
	if joiner.Self() != 5 {
		t.Fatal("SetSelf failed")
	}
}

func TestCloseFailsOutstandingRequests(t *testing.T) {
	buses, _, _ := cluster(t, 2)
	a, b := buses[0], buses[1]
	// No handler at b: the request would hang. Close a midway.
	errCh := make(chan error, 1)
	go func() {
		_, err := a.Request(b.Self(), types.MgrCode, types.MgrCode, &wire.Ping{}, 10*time.Second)
		errCh <- err
	}()
	time.Sleep(30 * time.Millisecond)
	a.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, types.ErrShutdown) {
			t.Fatalf("err = %v, want ErrShutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request still blocked after Close")
	}
}

// A late reply whose destination manager has no handler registered
// still ends in the drop counter — dispatch, not the reply path, makes
// that call.
func TestLateReplyWithoutHandlerIsDropped(t *testing.T) {
	buses, _, _ := cluster(t, 2)
	a, b := buses[0], buses[1]
	b.Register(types.MgrCode, HandlerFunc(func(m *wire.Message) {
		go func() {
			time.Sleep(150 * time.Millisecond) // answer after the timeout
			_ = b.Reply(m, types.MgrCode, &wire.Pong{})
		}()
	}))
	// a registers no MgrCode handler, so the dispatched late reply has
	// nowhere to go.
	_, err := a.Request(b.Self(), types.MgrCode, types.MgrCode, &wire.Ping{}, 30*time.Millisecond)
	if !errors.Is(err, types.ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	time.Sleep(250 * time.Millisecond)
	_, _, dropped := a.Stats()
	if dropped == 0 {
		t.Error("unhandled late reply not counted as dropped")
	}
}

func TestStatsCount(t *testing.T) {
	buses, _, _ := cluster(t, 2)
	a, b := buses[0], buses[1]
	b.Register(types.MgrCluster, HandlerFunc(func(m *wire.Message) {}))
	for i := 0; i < 5; i++ {
		if err := a.Send(b.Self(), types.MgrCluster, types.MgrCluster, &wire.Ping{}); err != nil {
			t.Fatal(err)
		}
	}
	sent, _, _ := a.Stats()
	if sent != 5 {
		t.Fatalf("sent = %d", sent)
	}
}

func TestMalformedDatagramDropped(t *testing.T) {
	buses, _, _ := cluster(t, 1)
	b := buses[0]
	b.OnDatagram([]byte{1, 2, 3})
	_, _, dropped := b.Stats()
	if dropped != 1 {
		t.Fatalf("dropped = %d", dropped)
	}
}

func TestHandlerFuncAdapter(t *testing.T) {
	called := false
	h := HandlerFunc(func(m *wire.Message) { called = true })
	h.HandleMessage(&wire.Message{})
	if !called {
		t.Fatal("HandlerFunc did not call through")
	}
}

func TestRegisterInvalidPanics(t *testing.T) {
	buses, _, _ := cluster(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Register(MgrInvalid) did not panic")
		}
	}()
	buses[0].Register(types.MgrInvalid, HandlerFunc(func(*wire.Message) {}))
}

// departedResolver simulates the goodbye window: the roster snapshot
// still lists a site that has since signed off, and resolving it yields
// ErrSiteLeft (exactly what cluster.PhysAddr reports for departed ids).
type departedResolver struct {
	*fakeResolver
	left types.SiteID
}

func (r *departedResolver) PhysAddr(id types.SiteID) (string, error) {
	if id == r.left {
		return "", &types.SiteError{Err: types.ErrSiteLeft, Site: id}
	}
	return r.fakeResolver.PhysAddr(id)
}

func (r *departedResolver) SiteIDs() []types.SiteID {
	return append(r.fakeResolver.SiteIDs(), r.left)
}

// A peer that departs between the roster snapshot and the fanout send
// must be skipped, not turned into a broadcast error: the site
// manager's stats tick broadcasts every period and a goodbye processed
// mid-fanout is routine, not a fault.
func TestBroadcastSkipsDepartedPeer(t *testing.T) {
	net := newFakeNet()
	inner := &fakeResolver{addrs: make(map[types.SiteID]string)}
	res := &departedResolver{fakeResolver: inner, left: types.SiteID(3)}
	var buses []*Bus
	for _, id := range []types.SiteID{1, 2} {
		addr := fmt.Sprintf("addr-%d", id)
		b := New(res, net)
		b.SetSelf(id)
		b.Start()
		t.Cleanup(b.Close)
		net.mu.Lock()
		net.buses[addr] = b
		net.mu.Unlock()
		inner.mu.Lock()
		inner.addrs[id] = addr
		inner.mu.Unlock()
		buses = append(buses, b)
	}
	got := make(chan *wire.Message, 1)
	buses[1].Register(types.MgrCluster, HandlerFunc(func(m *wire.Message) { got <- m }))

	if err := buses[0].Send(types.Broadcast, types.MgrCluster, types.MgrCluster, &wire.LoadReport{}); err != nil {
		t.Fatalf("broadcast over a departed peer errored: %v", err)
	}
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("live peer missed the broadcast")
	}

	// Direct sends still surface the departure — only the fanout skips.
	if err := buses[0].Send(types.SiteID(3), types.MgrCluster, types.MgrCluster, &wire.Ping{}); !errors.Is(err, types.ErrSiteLeft) {
		t.Fatalf("direct send to departed site: got %v, want ErrSiteLeft", err)
	}
}
