// Package msgbus implements the SDVM's message manager (paper §4).
//
// The message manager "is the central hub for information interchange
// with other sites. All communication is done between managers only":
// a manager builds an SDMessage, the message manager resolves the target
// site's logical id to a physical address by querying the cluster
// manager's cluster list, serializes the message, and passes it through
// the security layer to the network manager. Incoming datagrams are
// deserialized and dispatched to the addressed manager.
//
// On top of the paper's design the bus offers request/reply correlation
// (sequence numbers with waiter registration), which the prototype's
// managers implemented ad hoc.
package msgbus

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/types"
	"repro/internal/wire"
)

// DefaultTimeout bounds a Request when the caller passes zero.
const DefaultTimeout = 5 * time.Second

// Handler consumes messages addressed to one manager. Handlers run on
// the bus's dispatcher goroutine and must not block; long work is handed
// to the owning manager's goroutines.
type Handler interface {
	HandleMessage(m *wire.Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(m *wire.Message)

// HandleMessage calls f(m).
func (f HandlerFunc) HandleMessage(m *wire.Message) { f(m) }

// Resolver maps logical site ids to physical addresses — the cluster
// manager's cluster list seen through the message manager's eyes.
type Resolver interface {
	// PhysAddr resolves a logical id to a network address.
	PhysAddr(id types.SiteID) (string, error)
	// SiteIDs lists all known live sites (for Broadcast).
	SiteIDs() []types.SiteID
}

// Sender transmits one serialized datagram to a physical address — the
// network manager seen from above. Send must not retain the datagram
// after it returns: the bus serializes into pooled wire.Writer buffers
// and releases them the moment Send comes back, so an implementation
// that defers transmission must copy first (the network manager's
// coalescing path does exactly that).
type Sender interface {
	//sdvm:borrowed datagram
	Send(physAddr string, datagram []byte) error
}

// HintedSender is optionally implemented by senders that coalesce
// small messages: SendUrgent bypasses the batching queue. The bus uses
// it for liveness probes (Ping/Pong), whose round-trip time must
// measure the network rather than a flush timer.
type HintedSender interface {
	//sdvm:borrowed datagram
	SendUrgent(physAddr string, datagram []byte) error
}

// transmit sends buf to physAddr, routing liveness probes around any
// coalescing queue the sender may have.
func (b *Bus) transmit(kind wire.Kind, physAddr string, buf []byte) error {
	if kind == wire.KindPing || kind == wire.KindPong {
		if hs, ok := b.sender.(HintedSender); ok {
			return hs.SendUrgent(physAddr, buf)
		}
	}
	return b.sender.Send(physAddr, buf)
}

// Bus is one site's message manager.
type Bus struct {
	self     atomic.Uint32 // logical id; updates once at sign-on
	resolver Resolver
	sender   Sender

	seq atomic.Uint64
	mu  sync.Mutex
	// waiters holds one reply channel per in-flight request. guarded by mu
	waiters map[uint64]chan *wire.Message
	// closed marks the bus shut down for new requests. guarded by mu
	closed bool
	// pauseCh gates the dispatcher while non-nil (fault injection:
	// a stalled site stops consuming bus messages; Resume closes the
	// channel). Replies still complete — they bypass the dispatcher —
	// so a stalled site looks slow, not dead, to its own requests.
	// guarded by mu
	pauseCh chan struct{}

	handlersMu sync.RWMutex
	handlers   [types.ManagerCount]Handler

	inbox chan *wire.Message
	done  chan struct{}
	wg    sync.WaitGroup

	// Counters for the site manager's statistics.
	sent     atomic.Uint64
	received atomic.Uint64
	dropped  atomic.Uint64

	// met holds the metrics instruments; nil when metrics are disabled.
	// Written once by SetMetrics before Start, read-only afterwards.
	met *busMetrics
}

// busMetrics bundles the bus's instruments so the hot paths test a single
// pointer. Per-kind counters are preallocated into kind-indexed tables,
// keeping the per-message cost to one atomic add without a map lookup.
type busMetrics struct {
	sentMsgs  *metrics.Counter
	recvMsgs  *metrics.Counter
	sentBytes *metrics.Counter
	recvBytes *metrics.Counter
	dropped   *metrics.Counter
	outByKind []*metrics.Counter // indexed by wire.Kind
	inByKind  []*metrics.Counter // indexed by wire.Kind
}

// SetMetrics installs the instruments. Must be called before Start (like
// Register); a nil registry leaves metrics disabled.
func (b *Bus) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	bm := &busMetrics{
		sentMsgs:  reg.Counter("bus.sent_msgs"),
		recvMsgs:  reg.Counter("bus.recv_msgs"),
		sentBytes: reg.Counter("bus.sent_bytes"),
		recvBytes: reg.Counter("bus.recv_bytes"),
		dropped:   reg.Counter("bus.dropped"),
		outByKind: make([]*metrics.Counter, wire.NumKinds()),
		inByKind:  make([]*metrics.Counter, wire.NumKinds()),
	}
	for k := 1; k < wire.NumKinds(); k++ {
		name := wire.Kind(k).String()
		bm.outByKind[k] = reg.Counter("bus.out." + name)
		bm.inByKind[k] = reg.Counter("bus.in." + name)
	}
	b.met = bm
}

// countOut records one outgoing serialized message of n bytes.
func (bm *busMetrics) countOut(k wire.Kind, n int) {
	if bm == nil {
		return
	}
	bm.sentMsgs.Inc()
	bm.sentBytes.Add(uint64(n))
	if int(k) < len(bm.outByKind) {
		bm.outByKind[k].Inc()
	}
}

// countIn records one incoming (or loopback) message.
func (bm *busMetrics) countIn(k wire.Kind) {
	if bm == nil {
		return
	}
	bm.recvMsgs.Inc()
	if int(k) < len(bm.inByKind) {
		bm.inByKind[k].Inc()
	}
}

func (bm *busMetrics) countDropped() {
	if bm == nil {
		return
	}
	bm.dropped.Inc()
}

// New returns a bus. SetSelf must be called once the site's logical id is
// known; Start launches the dispatcher.
func New(resolver Resolver, sender Sender) *Bus {
	return &Bus{
		resolver: resolver,
		sender:   sender,
		waiters:  make(map[uint64]chan *wire.Message),
		inbox:    make(chan *wire.Message, 1024),
		done:     make(chan struct{}),
	}
}

// SetSelf records this site's logical id (assigned at sign-on).
func (b *Bus) SetSelf(id types.SiteID) { b.self.Store(uint32(id)) }

// Self returns this site's logical id (InvalidSite before sign-on).
func (b *Bus) Self() types.SiteID { return types.SiteID(b.self.Load()) }

// Register installs the handler for a manager id. Must be called before
// Start; a second registration for the same manager replaces the first.
func (b *Bus) Register(id types.ManagerID, h Handler) {
	if !id.Valid() {
		panic(fmt.Sprintf("msgbus: registering invalid manager id %v", id))
	}
	b.handlersMu.Lock()
	b.handlers[id] = h
	b.handlersMu.Unlock()
}

// Start launches the dispatcher goroutine.
func (b *Bus) Start() {
	b.wg.Add(1)
	go b.dispatchLoop()
}

// Close stops the dispatcher and fails all outstanding requests.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	waiters := b.waiters
	b.waiters = make(map[uint64]chan *wire.Message)
	b.mu.Unlock()

	close(b.done)
	for _, ch := range waiters {
		close(ch)
	}
	b.wg.Wait()
}

// Pause stalls the dispatcher before its next message: handlers stop
// consuming until Resume. Messages keep queueing in the inbox (bounded),
// exactly like a site whose event loop stopped being scheduled. Used by
// the fault injector's stall fault; idempotent.
func (b *Bus) Pause() {
	b.mu.Lock()
	if b.pauseCh == nil && !b.closed {
		b.pauseCh = make(chan struct{})
	}
	b.mu.Unlock()
}

// Resume lifts a Pause. Idempotent; safe without a matching Pause.
func (b *Bus) Resume() {
	b.mu.Lock()
	ch := b.pauseCh
	b.pauseCh = nil
	b.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// gate blocks while the bus is paused; Close unblocks it too so a
// stalled site can still shut down.
func (b *Bus) gate() {
	b.mu.Lock()
	ch := b.pauseCh
	b.mu.Unlock()
	if ch == nil {
		return
	}
	select {
	case <-ch:
	case <-b.done:
	}
}

// Stats returns message counters (sent, received, dropped).
func (b *Bus) Stats() (sent, received, dropped uint64) {
	return b.sent.Load(), b.received.Load(), b.dropped.Load()
}

// NextSeq issues a fresh sender-unique sequence number.
func (b *Bus) NextSeq() uint64 { return b.seq.Add(1) }

// Send transmits a fire-and-forget message from srcMgr to dstMgr on site
// dst. dst == Self() delivers locally without serialization; Broadcast
// fans out to every site in the cluster list except this one.
func (b *Bus) Send(dst types.SiteID, dstMgr, srcMgr types.ManagerID, p wire.Payload) error {
	m := &wire.Message{
		Src:     b.Self(),
		Dst:     dst,
		SrcMgr:  srcMgr,
		DstMgr:  dstMgr,
		Seq:     b.NextSeq(),
		Payload: p,
	}
	return b.route(m)
}

// SendMsg transmits a prebuilt message (used for replies with Reply set).
func (b *Bus) SendMsg(m *wire.Message) error { return b.route(m) }

// Reply answers req with payload p from srcMgr, correlating by sequence
// number so the requester's waiter fires.
func (b *Bus) Reply(req *wire.Message, srcMgr types.ManagerID, p wire.Payload) error {
	return b.route(&wire.Message{
		Src:     b.Self(),
		Dst:     req.Src,
		SrcMgr:  srcMgr,
		DstMgr:  req.SrcMgr,
		Seq:     b.NextSeq(),
		Reply:   req.Seq,
		Payload: p,
	})
}

// ReplyErr answers req with a typed error.
func (b *Bus) ReplyErr(req *wire.Message, srcMgr types.ManagerID, code uint16, msg string) error {
	return b.Reply(req, srcMgr, &wire.ErrorReply{Code: code, Message: msg})
}

// Request sends p to dstMgr on site dst and waits for the correlated
// reply. A zero timeout means DefaultTimeout. An ErrorReply payload is
// converted into the corresponding Go error.
func (b *Bus) Request(dst types.SiteID, dstMgr, srcMgr types.ManagerID, p wire.Payload, timeout time.Duration) (*wire.Message, error) {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	m := &wire.Message{
		Src:     b.Self(),
		Dst:     dst,
		SrcMgr:  srcMgr,
		DstMgr:  dstMgr,
		Seq:     b.NextSeq(),
		Payload: p,
	}
	ch := make(chan *wire.Message, 1)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, types.ErrShutdown
	}
	b.waiters[m.Seq] = ch
	b.mu.Unlock()

	cleanup := func() {
		b.mu.Lock()
		delete(b.waiters, m.Seq)
		b.mu.Unlock()
	}

	if err := b.route(m); err != nil {
		cleanup()
		return nil, err
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case reply, ok := <-ch:
		cleanup()
		if !ok {
			return nil, types.ErrShutdown
		}
		if e, isErr := reply.Payload.(*wire.ErrorReply); isErr {
			return reply, e.Err()
		}
		return reply, nil
	case <-timer.C:
		cleanup()
		return nil, fmt.Errorf("%w: %v to %v/%v after %v",
			types.ErrTimeout, p.Kind(), dst, dstMgr, timeout)
	case <-b.done:
		cleanup()
		return nil, types.ErrShutdown
	}
}

// RequestAddr is Request aimed at a raw physical address, used only
// during sign-on when the target's logical id is not yet known.
func (b *Bus) RequestAddr(physAddr string, dstMgr, srcMgr types.ManagerID, p wire.Payload, timeout time.Duration) (*wire.Message, error) {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	m := &wire.Message{
		Src:     b.Self(),
		Dst:     types.InvalidSite,
		SrcMgr:  srcMgr,
		DstMgr:  dstMgr,
		Seq:     b.NextSeq(),
		Payload: p,
	}
	ch := make(chan *wire.Message, 1)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, types.ErrShutdown
	}
	b.waiters[m.Seq] = ch
	b.mu.Unlock()
	cleanup := func() {
		b.mu.Lock()
		delete(b.waiters, m.Seq)
		b.mu.Unlock()
	}

	b.sent.Add(1)
	w := wire.GetWriter(0)
	m.Encode(w)
	b.met.countOut(m.Payload.Kind(), w.Len())
	err := b.transmit(m.Payload.Kind(), physAddr, w.Bytes())
	w.Release()
	if err != nil {
		cleanup()
		return nil, err
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case reply, ok := <-ch:
		cleanup()
		if !ok {
			return nil, types.ErrShutdown
		}
		if e, isErr := reply.Payload.(*wire.ErrorReply); isErr {
			return reply, e.Err()
		}
		return reply, nil
	case <-timer.C:
		cleanup()
		return nil, fmt.Errorf("%w: %v to %s after %v",
			types.ErrTimeout, p.Kind(), physAddr, timeout)
	case <-b.done:
		cleanup()
		return nil, types.ErrShutdown
	}
}

// route delivers m: locally for self, via the network otherwise,
// fanning out for Broadcast.
func (b *Bus) route(m *wire.Message) error {
	switch m.Dst {
	case b.Self():
		b.enqueue(m)
		return nil
	case types.Broadcast:
		var firstErr error
		for _, id := range b.resolver.SiteIDs() {
			if id == b.Self() {
				continue
			}
			clone := *m
			clone.Dst = id
			if err := b.sendRemote(&clone); err != nil && firstErr == nil {
				// A peer that departed between the roster snapshot and
				// this send (goodbye processed mid-fanout) is skipped,
				// not an error: the stats tick and other periodic
				// broadcasts must not fail over a site that is simply
				// gone.
				if errors.Is(err, types.ErrSiteLeft) {
					continue
				}
				firstErr = err
			}
		}
		return firstErr
	default:
		return b.sendRemote(m)
	}
}

// sendRemote serializes m into a pooled writer and hands the bytes to
// the sender. The buffer is released as soon as transmit returns — the
// Sender no-retention contract makes that sound.
func (b *Bus) sendRemote(m *wire.Message) error {
	addr, err := b.resolver.PhysAddr(m.Dst)
	if err != nil {
		return err
	}
	b.sent.Add(1)
	w := wire.GetWriter(0)
	m.Encode(w)
	b.met.countOut(m.Payload.Kind(), w.Len())
	err = b.transmit(m.Payload.Kind(), addr, w.Bytes())
	w.Release()
	return err
}

// OnDatagram is the network manager's delivery callback: parse and
// enqueue. Malformed datagrams are counted and dropped. The slice is
// only valid for the duration of the call (the network manager reuses
// its receive buffer); DecodeBytes copies what the message keeps.
//
//sdvm:borrowed datagram
func (b *Bus) OnDatagram(datagram []byte) {
	if bm := b.met; bm != nil {
		bm.recvBytes.Add(uint64(len(datagram)))
	}
	m, err := wire.DecodeBytes(datagram)
	if err != nil {
		b.dropped.Add(1)
		b.met.countDropped()
		return
	}
	b.enqueue(m)
}

func (b *Bus) enqueue(m *wire.Message) {
	b.received.Add(1)
	b.met.countIn(m.Payload.Kind())

	// Replies complete waiting requests directly, bypassing the
	// dispatcher so a blocked handler can never deadlock a reply.
	if m.Reply != 0 {
		b.mu.Lock()
		ch, ok := b.waiters[m.Reply]
		if ok {
			delete(b.waiters, m.Reply)
		}
		b.mu.Unlock()
		if ok {
			ch <- m
			return
		}
		// Late reply after timeout: fall through to the dispatcher
		// instead of dropping. Replies can carry cargo that must not be
		// destroyed (a HelpReply hands over a whole microframe); the
		// destination manager decides whether a stale reply is salvage
		// or noise. Handlers' type switches ignore reply payloads they
		// don't expect.
	}

	select {
	case b.inbox <- m:
	case <-b.done:
	}
}

func (b *Bus) dispatchLoop() {
	defer b.wg.Done()
	for {
		select {
		case m := <-b.inbox:
			b.gate()
			b.dispatch(m)
		case <-b.done:
			// Drain what is already queued, then stop.
			for {
				select {
				case m := <-b.inbox:
					b.dispatch(m)
				default:
					return
				}
			}
		}
	}
}

func (b *Bus) dispatch(m *wire.Message) {
	if !m.DstMgr.Valid() {
		b.dropped.Add(1)
		b.met.countDropped()
		return
	}
	b.handlersMu.RLock()
	h := b.handlers[m.DstMgr]
	b.handlersMu.RUnlock()
	if h == nil {
		b.dropped.Add(1)
		b.met.countDropped()
		return
	}
	h.HandleMessage(m)
}
