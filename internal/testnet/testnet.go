// Package testnet assembles minimal multi-site SDVM stacks (virtual
// network + network manager + message bus + cluster manager) for the
// manager test suites. It is the shared scaffolding those tests hang
// their manager-under-test onto.
package testnet

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/msgbus"
	"repro/internal/netmgr"
	"repro/internal/security"
	"repro/internal/transport"
	"repro/internal/transport/inproc"
	"repro/internal/types"
)

// Node is one wired site without execution-layer managers.
type Node struct {
	Name string
	Net  *netmgr.Manager
	Bus  *msgbus.Bus
	CM   *cluster.Manager
}

// Close tears the node down.
func (n *Node) Close() {
	n.Bus.Close()
	n.Net.Close()
}

type forwardResolver struct{ m *cluster.Manager }

func (f *forwardResolver) PhysAddr(id types.SiteID) (string, error) { return f.m.PhysAddr(id) }
func (f *forwardResolver) SiteIDs() []types.SiteID                  { return f.m.SiteIDs() }

// NewNode wires a single site onto net — usually an *inproc.Fabric, but
// any transport.Network works (the chaos suite passes a fault-injecting
// wrapper). The bus is started; the caller attaches its
// manager-under-test and then Bootstrap()s or Join()s.
func NewNode(t testing.TB, net transport.Network, name string, cfg cluster.Config) *Node {
	t.Helper()
	n := &Node{Name: name}
	cfg.PhysAddr = name
	fwd := &forwardResolver{}
	n.Net = netmgr.New(net, security.Plaintext{}, func(d []byte) { n.Bus.OnDatagram(d) })
	n.Bus = msgbus.New(fwd, n.Net)
	n.CM = cluster.New(n.Bus, cfg)
	fwd.m = n.CM
	if _, err := n.Net.Listen(name); err != nil {
		t.Fatal(err)
	}
	n.Bus.Start()
	t.Cleanup(n.Close)
	return n
}

// NewCluster builds a fabric with n signed-on sites; nodes[0] is the
// bootstrap. attach, if non-nil, runs on each node before it signs on —
// this is where tests register their manager-under-test so it can observe
// every message from the first sign-on onwards.
func NewCluster(t testing.TB, n int, attach func(i int, node *Node)) []*Node {
	t.Helper()
	fab := inproc.New(inproc.LinkProfile{})
	t.Cleanup(fab.Close)

	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = NewNode(t, fab, fmt.Sprintf("site-%d", i), cluster.Config{})
		if attach != nil {
			attach(i, nodes[i])
		}
		if i == 0 {
			nodes[0].CM.Bootstrap()
		} else if err := nodes[i].CM.Join("site-0", 5*time.Second); err != nil {
			t.Fatalf("site %d join: %v", i, err)
		}
	}
	// Wait until every site knows every other (announcements are async).
	WaitFor(t, "cluster lists complete", func() bool {
		for _, nd := range nodes {
			if nd.CM.Size() != n {
				return false
			}
		}
		return true
	})
	return nodes
}

// WaitFor polls cond until it holds or a 10s deadline expires.
func WaitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	if !Poll(10*time.Second, cond) {
		t.Fatalf("timed out waiting for %s", what)
	}
}

// Poll polls cond every 2ms until it holds (true) or timeout expires
// (false). Exported for non-test harnesses (the chaos runner) that need
// the same settle-wait without a testing.TB.
func Poll(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}
