// Package sched implements the SDVM's scheduling manager (paper §3.3, §4).
//
// The scheduling manager "maintains a queue of executable microframes and
// a queue of ready microframes" (Figure 5). A microframe arriving from
// the attraction memory (all parameters present) is *executable*; the
// scheduling manager then "will request the corresponding microthread
// from the code manager as soon as it decides that it should eventually
// be executed on the local site", and once the code pointer arrives the
// frame is *ready*. The processing manager pulls ready frames.
//
// When both queues are empty and the processing manager asks for work,
// the scheduling manager sends *help requests* to other sites — chosen by
// the cluster manager as "probably not idle" — which answer with a frame
// or a can't-help message. Per the paper, help replies use a LIFO pick
// (hide the communication latency behind the freshest work, which has the
// best chance of spawning more) while local dispatch is FIFO ("to avoid
// starving of microframes"); both policies are configurable for the A-1
// ablation.
package sched

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/backoff"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/msgbus"
	"repro/internal/mthread"
	"repro/internal/trace"
	"repro/internal/types"
	"repro/internal/wire"
)

// parkedTTL bounds how long a parked help requester is remembered; a
// site that found work elsewhere meanwhile simply re-begs.
const parkedTTL = time.Second

// Resolver turns a thread id into executable code (the code manager).
type Resolver interface {
	Resolve(thread types.ThreadID) (mthread.Func, error)
}

// Adopter registers migrated frames (the attraction memory).
type Adopter interface {
	AdoptFrame(f *wire.Microframe)
}

// grantLogger is implemented by the attraction memory to record frames
// handed to peers, for crash-recovery replay.
type grantLogger interface {
	RecordGrant(grantee types.SiteID, f *wire.Microframe)
}

// HelpTargeter picks one help-request donor from a disseminated load
// table — internal/gossip implements it with power-of-two-choices over
// the gossiped load vectors, O(1) per pick where the cluster list's
// PickHelpTarget scans the whole roster. The scheduler passes its own
// seeded rng so targeting stays deterministic per site; implementations
// must never return departed or suspected sites, and return InvalidSite
// when no eligible donor is known.
type HelpTargeter interface {
	PickHelpTarget(rng *rand.Rand, exclude map[types.SiteID]bool) types.SiteID
}

// grantReclaimer takes logged grants back when the reply carrying them
// could not be delivered (the requester signed off between asking and
// receiving). Reclaiming must be atomic with crash replay so a batch is
// either replayed by OnSiteCrashed or re-queued here — never both.
type grantReclaimer interface {
	ReclaimGrants(grantee types.SiteID, ids []types.FrameID) []*wire.Microframe
}

// Ready pairs an executable microframe with its resolved code pointer —
// what the scheduling manager hands the processing manager.
type Ready struct {
	Frame *wire.Microframe
	Fn    mthread.Func
}

// Config parameterizes a scheduling manager.
type Config struct {
	// LocalPolicy orders the ready queue for local execution
	// (paper default: FIFO).
	LocalPolicy types.SchedulingClass
	// HelpPolicy picks the frame surrendered to a help request
	// (paper default: LIFO).
	HelpPolicy types.SchedulingClass
	// HelpRetryMin/Max bound the idle site's backoff between help
	// request rounds.
	HelpRetryMin time.Duration
	HelpRetryMax time.Duration
	// MaxHelpFanout bounds how many distinct sites one help round asks.
	MaxHelpFanout int
	// HelpBatch bounds how many frames one help reply may carry. The
	// granter surrenders up to half its surplus, capped here, so one
	// round-trip moves a batch sized by queue depth (bulk work transfer
	// amortizes the request latency). 0 means the default of 4; 1
	// restores single-frame grants.
	HelpBatch int
	// Seed drives the help-retry jitter RNG, so idle sites that went
	// hungry in the same round don't re-beg in lockstep. Zero means
	// seed 1; the daemon passes a per-site seed for reproducible runs.
	Seed int64
	// NoCriticalPinning disables the §3.3 critical-path treatment
	// (critical frames dispatch first and never migrate) for the A-7
	// ablation.
	NoCriticalPinning bool
	// CentralSite, when valid, switches this site into the *central
	// scheduling* baseline (A-5 ablation): every frame that becomes
	// executable anywhere is forwarded to the central site's queue, and
	// idle sites direct every help request there — reproducing the
	// master/worker systems (Condor et al.) the paper argues against.
	CentralSite types.SiteID
}

// Stats counts scheduler activity.
type Stats struct {
	Enqueued       uint64 // frames that became executable here
	Dispatched     uint64 // frames handed to the processing manager
	HelpAsked      uint64 // help requests sent
	HelpGranted    uint64 // frames received from peers
	HelpDenied     uint64 // can't-help replies received
	HelpServed     uint64 // frames given away to peers
	HelpRefused    uint64 // can't-help replies sent
	ResolveErrs    uint64 // code resolution failures
	FramesInFlight int32  // executable+ready right now
}

// Manager is one site's scheduling manager.
type Manager struct {
	bus      *msgbus.Bus
	cm       *cluster.Manager
	resolver Resolver
	adopter  Adopter
	targeter HelpTargeter // nil: fall back to the cluster-list scan
	cfg      Config
	tr       *trace.Tracer

	mu         sync.Mutex
	executable *frameQueue // awaiting code resolution
	ready      []*Ready    // awaiting the processing manager
	stats      Stats
	closed     bool
	begging    bool // one help round in flight per site

	// fallback is where frames arriving after Close are pushed. The site
	// manager sets it to the sign-off successor before closing the
	// scheduler: late help replies and pushes keep trickling in while
	// the daemon drains its bus inbox, and they should follow the queue
	// and memory to the site that inherited them rather than go to a
	// random roster pick. guarded by mu
	fallback types.SiteID

	// terminated programs: frames of these are dropped on sight.
	dead map[types.ProgramID]bool

	// resolveKick wakes the resolve loop (executable queue grew);
	// readyKick wakes GetWork waiters (ready queue grew).
	resolveKick chan struct{}
	readyKick   chan struct{}
	done        chan struct{}
	wg          sync.WaitGroup

	// help paces the idle-site help-request poll; rng jitters it so
	// starved sites spread out instead of re-begging in lockstep.
	// guarded by rngMu (GetWork runs on every worker goroutine)
	help  backoff.Policy
	rngMu sync.Mutex
	rng   *rand.Rand

	// lastGrantor is the peer that most recently gave this site work;
	// it is the first target of the next help round (work begets work:
	// the site that just spawned a burst of frames very likely still
	// has some).
	lastGrantor types.SiteID

	// scatterRR round-robins proactive pushes over the cluster list —
	// the paper's automatic spatial distribution: a burst of locally
	// created frames spreads immediately instead of waiting to be
	// begged for one by one.
	scatterRR int

	// parked remembers help requesters this site had to turn away;
	// the next executable frames are pushed to them instead of waiting
	// for their next poll. This turns the idle-site polling loop into
	// push-based distribution (the polling stays as a fallback).
	parked map[types.SiteID]time.Time

	// unknownProg is invoked when a frame of an unknown program arrives
	// from a peer (help reply); the program manager uses it to fetch the
	// program's registration lazily. May be nil.
	unknownProg func(prog types.ProgramID, hint types.SiteID)
	knownProg   func(prog types.ProgramID) bool

	// met holds the metrics instruments; nil when metrics are disabled.
	// Written once by SetMetrics before Start, read-only afterwards.
	met *schedMetrics
	// enqueuedAt remembers when each queued frame entered the executable
	// queue, feeding the dispatch-latency histogram. Only populated while
	// metrics are enabled. guarded by mu
	enqueuedAt map[types.FrameID]time.Time
}

// schedMetrics bundles the scheduler's instruments.
type schedMetrics struct {
	enqueued        *metrics.Counter
	dispatched      *metrics.Counter
	helpAsked       *metrics.Counter
	helpGranted     *metrics.Counter
	helpDenied      *metrics.Counter
	helpServed      *metrics.Counter
	helpRefused     *metrics.Counter
	surrendered     *metrics.Counter
	resolveErrs     *metrics.Counter
	dispatchLatency *metrics.Histogram
	grantBatch      *metrics.Histogram
}

// grantBatchBounds buckets the help-grant batch-size histogram. The
// histogram counts frames, not time; sizes are encoded as durations
// because the metrics package has a single histogram type.
var grantBatchBounds = []time.Duration{1, 2, 4, 8, 16}

// SetMetrics installs the instruments and queue-depth gauges. Must be
// called before Start; a nil registry leaves metrics disabled.
func (m *Manager) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	m.met = &schedMetrics{
		enqueued:        reg.Counter("sched.enqueued"),
		dispatched:      reg.Counter("sched.dispatched"),
		helpAsked:       reg.Counter("sched.help_asked"),
		helpGranted:     reg.Counter("sched.help_granted"),
		helpDenied:      reg.Counter("sched.help_denied"),
		helpServed:      reg.Counter("sched.help_served"),
		helpRefused:     reg.Counter("sched.help_refused"),
		surrendered:     reg.Counter("sched.frames_surrendered"),
		resolveErrs:     reg.Counter("sched.resolve_errs"),
		dispatchLatency: reg.Histogram("sched.dispatch_latency", nil),
		grantBatch:      reg.Histogram("sched.grant.batch", grantBatchBounds),
	}
	m.mu.Lock()
	m.enqueuedAt = make(map[types.FrameID]time.Time)
	m.mu.Unlock()
	reg.GaugeFunc("sched.executable_depth", func() int64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return int64(m.executable.len())
	})
	reg.GaugeFunc("sched.ready_depth", func() int64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return int64(len(m.ready))
	})
}

// observeDispatchLocked feeds the dispatch-latency histogram for a frame
// leaving the queues toward a processor. Caller holds m.mu.
func (m *Manager) observeDispatchLocked(id types.FrameID) {
	if m.met == nil {
		return
	}
	if t0, ok := m.enqueuedAt[id]; ok {
		delete(m.enqueuedAt, id)
		m.met.dispatchLatency.Observe(time.Since(t0))
	}
}

// forgetEnqueueLocked drops the latency bookkeeping for a frame that left
// the queues without being dispatched locally (surrender, push, drop).
// Caller holds m.mu.
func (m *Manager) forgetEnqueueLocked(id types.FrameID) {
	if m.met != nil {
		delete(m.enqueuedAt, id)
	}
}

// New returns a scheduling manager registered for MgrScheduling.
func New(bus *msgbus.Bus, cm *cluster.Manager, resolver Resolver, cfg Config) *Manager {
	if cfg.HelpRetryMin <= 0 {
		cfg.HelpRetryMin = time.Millisecond
	}
	if cfg.HelpRetryMax <= 0 {
		// Polling is only the fallback: a turned-away requester is
		// parked at the target, which pushes it the next executable
		// frame (and the push wakes the sleeping worker immediately).
		// The poll period therefore only bounds how fast an idle site
		// discovers *new* busy sites, so it can be lazy.
		cfg.HelpRetryMax = 25 * time.Millisecond
	}
	if cfg.MaxHelpFanout <= 0 {
		cfg.MaxHelpFanout = 3
	}
	if cfg.HelpBatch <= 0 {
		cfg.HelpBatch = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	m := &Manager{
		bus:         bus,
		cm:          cm,
		resolver:    resolver,
		cfg:         cfg,
		executable:  newFrameQueue(),
		parked:      make(map[types.SiteID]time.Time),
		dead:        make(map[types.ProgramID]bool),
		resolveKick: make(chan struct{}, 1),
		readyKick:   make(chan struct{}, 1),
		done:        make(chan struct{}),
		knownProg:   func(types.ProgramID) bool { return true },
		help:        backoff.Policy{Min: cfg.HelpRetryMin, Max: cfg.HelpRetryMax, Jitter: 0.5},
		rng:         rand.New(rand.NewSource(cfg.Seed)),
	}
	bus.Register(types.MgrScheduling, m)
	return m
}

// SetAdopter wires the attraction memory (for incomplete frames arriving
// in relocations).
func (m *Manager) SetAdopter(a Adopter) { m.adopter = a }

// SetHelpTargeter switches help-request targeting from the cluster
// list's roster scan onto the given load table (power-of-two-choices
// over gossiped load vectors). Must be called before Start.
func (m *Manager) SetHelpTargeter(t HelpTargeter) { m.targeter = t }

// SetTracer installs the event tracer (nil = off).
func (m *Manager) SetTracer(t *trace.Tracer) { m.tr = t }

// SetProgramHooks wires the program manager's lazy registration lookup.
func (m *Manager) SetProgramHooks(known func(types.ProgramID) bool, unknown func(types.ProgramID, types.SiteID)) {
	m.knownProg = known
	m.unknownProg = unknown
}

// Start launches the code-resolution worker.
func (m *Manager) Start() {
	m.wg.Add(1)
	go m.resolveLoop()
}

// Close stops the scheduler; blocked GetWork calls return false.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.done)
	m.wg.Wait()
}

// SetFallback names the site that inherits frames arriving after Close.
// The site manager calls it with the sign-off successor before closing
// the scheduler, so late pushes and help replies that drain from the
// bus inbox still find a home once the goodbye broadcast has emptied
// the roster.
func (m *Manager) SetFallback(dst types.SiteID) {
	m.mu.Lock()
	m.fallback = dst
	m.mu.Unlock()
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.FramesInFlight = int32(m.executable.len() + len(m.ready))
	return s
}

// QueueLen returns executable+ready counts for load reports.
func (m *Manager) QueueLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.executable.len() + len(m.ready)
}

// notifyResolve wakes the resolve loop without blocking.
func (m *Manager) notifyResolve() {
	select {
	case m.resolveKick <- struct{}{}:
	default:
	}
}

// notifyReady wakes one GetWork waiter without blocking.
func (m *Manager) notifyReady() {
	select {
	case m.readyKick <- struct{}{}:
	default:
	}
}

// Enqueue accepts a microframe that just became executable — the
// attraction memory's fire callback for locally created frames. It never
// blocks. In central mode (A-5 baseline) frames are forwarded to the
// central site instead of queueing locally. Surplus local frames scatter
// round-robin across the cluster (spatial distribution, paper §2.1);
// frames received from peers enter through enqueueForeign and never
// bounce onward.
func (m *Manager) Enqueue(f *wire.Microframe) {
	m.enqueue(f, true)
}

// enqueueForeign accepts an executable frame granted by a peer.
func (m *Manager) enqueueForeign(f *wire.Microframe) {
	m.enqueue(f, false)
}

func (m *Manager) enqueue(f *wire.Microframe, allowScatter bool) {
	m.mu.Lock()
	if m.dead[f.Thread.Program] {
		m.mu.Unlock()
		return
	}
	if m.closed {
		fb := m.fallback
		m.mu.Unlock()
		// Signing off (or shut down): this frame must not die with us.
		// Prefer the designated sign-off successor — the site that just
		// inherited our queue and memory — over a random roster pick, so
		// late arrivals drained from the bus inbox follow the rest of
		// the state. Each push is grant-logged, so a crash of the target
		// replays it. If the successor itself is unreachable, fall back
		// to any roster pick rather than dropping the frame.
		target := fb
		if !target.Valid() || target == m.bus.Self() {
			target = m.cm.PickHelpTarget(nil)
		}
		if target.Valid() && target != m.bus.Self() {
			if m.PushFrame(target, f) == nil {
				return
			}
			if alt := m.cm.PickHelpTarget(map[types.SiteID]bool{target: true}); alt.Valid() && alt != m.bus.Self() {
				_ = m.PushFrame(alt, f)
			}
		}
		return
	}
	if m.cfg.CentralSite.Valid() && m.cfg.CentralSite != m.bus.Self() && allowScatter {
		// Central baseline: locally fired frames go to the master's
		// queue. Frames the master granted us (allowScatter=false) stay
		// here — bouncing them back would ping-pong forever.
		m.mu.Unlock()
		_ = m.bus.Send(m.cfg.CentralSite, types.MgrScheduling, types.MgrScheduling,
			&wire.FramePush{Frame: f})
		return
	}
	// Scatter: keep a couple of frames for the local processor, ship
	// the rest to peers immediately. Critical-path frames stay local,
	// and the central baseline distributes by pull only.
	if allowScatter && !m.cfg.CentralSite.Valid() &&
		(m.cfg.NoCriticalPinning || f.Prio < types.PriorityCritical) &&
		m.executable.len()+len(m.ready) >= 2 {
		if dst := m.scatterTargetLocked(); dst.Valid() {
			m.mu.Unlock()
			m.pushGranted(dst, f, "scatter")
			return
		}
	}
	m.executable.push(f, m.cfg.LocalPolicy)
	m.stats.Enqueued++
	if m.met != nil {
		m.met.enqueued.Inc()
		m.enqueuedAt[f.ID] = time.Now()
	}
	push := m.feedParkedLocked()
	m.mu.Unlock()
	m.tr.Record(trace.EvEnqueued, f.ID, f.Thread, "")
	m.notifyResolve()
	if push != nil {
		m.pushGranted(push.dst, push.frame, "parked push")
	}
}

// pushGranted grant-logs f and ships it to dst. A push that cannot be
// delivered must not lose the frame: the target was picked from stale
// state (a parked help requester, a scatter round-robin slot) and may
// have signed off since — gracefully, so no crash declaration will ever
// replay the logged grant. The send error is the only signal; on it the
// grant is taken back from the log and the frame requeued locally.
func (m *Manager) pushGranted(dst types.SiteID, f *wire.Microframe, why string) {
	g, logged := m.adopter.(grantLogger)
	if logged {
		g.RecordGrant(dst, f)
	}
	m.tr.Record(trace.EvGranted, f.ID, f.Thread, why+" to "+dst.String())
	m.mu.Lock()
	m.stats.HelpServed++
	m.mu.Unlock()
	if m.met != nil {
		m.met.helpServed.Inc()
	}
	err := m.bus.Send(dst, types.MgrScheduling, types.MgrScheduling, &wire.FramePush{Frame: f})
	if err == nil {
		return
	}
	// dst is gone; stop feeding it.
	m.mu.Lock()
	delete(m.parked, dst)
	m.mu.Unlock()
	salvage := []*wire.Microframe{f}
	if rec, ok := m.adopter.(grantReclaimer); ok && logged {
		// Atomic with crash replay: if a racing crash declaration for
		// dst already consumed the log entry, the reclaim comes back
		// empty and the frame is not injected twice.
		salvage = rec.ReclaimGrants(dst, []types.FrameID{f.ID})
	}
	for _, r := range salvage {
		m.tr.Record(trace.EvReceived, r.ID, r.Thread, "undeliverable "+why+" to "+dst.String()+" reclaimed")
		m.enqueueForeign(r)
	}
}

// scatterTargetLocked picks the next peer in round-robin order for a
// proactive push. Caller holds m.mu.
func (m *Manager) scatterTargetLocked() types.SiteID {
	sites := m.cm.SiteIDs()
	self := m.bus.Self()
	if len(sites) < 2 {
		return types.InvalidSite
	}
	for range sites {
		m.scatterRR++
		dst := sites[m.scatterRR%len(sites)]
		if dst != self {
			return dst
		}
	}
	return types.InvalidSite
}

// pendingPush is a frame owed to a parked help requester.
type pendingPush struct {
	dst   types.SiteID
	frame *wire.Microframe
}

// feedParkedLocked hands a surplus executable frame to one parked
// requester, if any. Caller holds m.mu.
func (m *Manager) feedParkedLocked() *pendingPush {
	if len(m.parked) == 0 {
		return nil
	}
	// Keep one frame for ourselves, as with help replies.
	if m.executable.len()+len(m.ready) <= 1 {
		return nil
	}
	now := time.Now()
	var dst types.SiteID
	for id, since := range m.parked {
		if now.Sub(since) > parkedTTL {
			delete(m.parked, id)
			continue
		}
		dst = id
		break
	}
	if dst == types.InvalidSite {
		return nil
	}
	f := m.executable.popSurrender(m.cfg.HelpPolicy)
	if f == nil {
		if r := m.takeReadySurrenderLocked(m.cfg.HelpPolicy); r != nil {
			f = r.Frame
		}
	}
	if f == nil {
		return nil
	}
	m.forgetEnqueueLocked(f.ID)
	delete(m.parked, dst)
	return &pendingPush{dst: dst, frame: f}
}

// resolveLoop drains the executable queue into the ready queue by
// resolving code pointers. Resolution can block on the network (code
// requests) and on simulated compiles, which is exactly why the paper
// separates the two queues.
func (m *Manager) resolveLoop() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		f := m.executable.pop(m.cfg.LocalPolicy)
		m.mu.Unlock()

		if f == nil {
			select {
			case <-m.resolveKick:
				continue
			case <-m.done:
				return
			}
		}

		fn, err := m.resolver.Resolve(f.Thread)
		if err != nil {
			m.mu.Lock()
			m.stats.ResolveErrs++
			m.forgetEnqueueLocked(f.ID)
			m.mu.Unlock()
			if m.met != nil {
				m.met.resolveErrs.Inc()
			}
			continue
		}
		m.mu.Lock()
		if m.dead[f.Thread.Program] {
			m.mu.Unlock()
			continue
		}
		m.ready = append(m.ready, &Ready{Frame: f, Fn: fn})
		m.mu.Unlock()
		m.tr.Record(trace.EvCodeResolved, f.ID, f.Thread, "")
		m.notifyReady()
	}
}

// GetWork blocks until a ready microframe is available and returns it,
// issuing help requests to peers while idle. ok is false after Close.
// The idle-poll timer is allocated once per call and re-armed with
// Reset, so an idle worker's begging loop does not churn a timer (plus
// its runtime state) per empty-handed round.
func (m *Manager) GetWork() (r *Ready, ok bool) {
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	attempt := 0
	for {
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return nil, false
		}
		if len(m.ready) > 0 {
			r := m.takeReadyLocked(m.cfg.LocalPolicy)
			m.stats.Dispatched++
			m.observeDispatchLocked(r.Frame.ID)
			m.mu.Unlock()
			if m.met != nil {
				m.met.dispatched.Inc()
			}
			m.tr.Record(trace.EvDispatched, r.Frame.ID, r.Frame.Thread, "")
			return r, true
		}
		idle := m.executable.len() == 0
		m.mu.Unlock()

		if idle {
			// Only one worker begs at a time: a site-wide storm of
			// concurrent help requests would flood the cluster (and a
			// single request suffices — any granted frame lands in the
			// shared queues anyway).
			m.mu.Lock()
			beg := !m.begging
			if beg {
				m.begging = true
			}
			m.mu.Unlock()
			if beg {
				helped := m.askForHelp()
				m.mu.Lock()
				m.begging = false
				m.mu.Unlock()
				if helped {
					attempt = 0
					continue
				}
			}
		}

		if timer == nil {
			timer = time.NewTimer(m.helpDelay(attempt))
		} else {
			timer.Reset(m.helpDelay(attempt))
		}
		select {
		case <-m.readyKick:
			// Drain a concurrent expiry so the next Reset cannot fire
			// stale (pre-1.23 timer semantics; harmless after).
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			attempt = 0
		case <-timer.C:
			attempt++
		case <-m.done:
			return nil, false
		}
	}
}

// helpDelay computes the jittered poll delay for an idle worker's n-th
// consecutive empty-handed round.
func (m *Manager) helpDelay(attempt int) time.Duration {
	m.rngMu.Lock()
	defer m.rngMu.Unlock()
	return m.help.Delay(attempt, m.rng)
}

// TryGetWork returns a ready frame if one is queued, without blocking or
// asking peers.
func (m *Manager) TryGetWork() (*Ready, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || len(m.ready) == 0 {
		return nil, false
	}
	r := m.takeReadyLocked(m.cfg.LocalPolicy)
	m.stats.Dispatched++
	m.observeDispatchLocked(r.Frame.ID)
	if m.met != nil {
		m.met.dispatched.Inc()
	}
	return r, true
}

// takeReadyLocked removes one entry from the ready queue per policy;
// critical-path frames always dispatch first (paper §3.3). Caller holds
// m.mu. This is the dispatch inner loop: it must not allocate.
//
//sdvm:hotpath
func (m *Manager) takeReadyLocked(policy types.SchedulingClass) *Ready {
	idx := -1
	for i, r := range m.ready {
		if r.Frame.Prio >= types.PriorityCritical {
			idx = i
			break
		}
	}
	if idx < 0 {
		//sdvmlint:allow allocfree -- closure does not escape pickIndex and stays on the stack
		idx = pickIndex(len(m.ready), policy, func(i int) types.Priority {
			return m.ready[i].Frame.Prio
		})
	}
	r := m.ready[idx]
	m.ready = append(m.ready[:idx], m.ready[idx+1:]...) //sdvmlint:allow allocfree -- removal append shrinks, never grows
	return r
}

// takeReadySurrenderLocked removes the lowest-priority non-critical
// ready entry for a help grant, or nil. Ties break by the help policy,
// mirroring frameQueue.popSurrender — a LIFO help reply surrenders the
// newest equal-priority frame regardless of which queue the resolver
// has moved it to. Caller holds m.mu. Runs on the dispatch path, so the
// k-th matching index is found by a second scan instead of collecting
// matches into a slice.
//
//sdvm:hotpath
func (m *Manager) takeReadySurrenderLocked(policy types.SchedulingClass) *Ready {
	if len(m.ready) == 0 {
		return nil
	}
	lowest := m.ready[0].Frame.Prio
	for _, r := range m.ready[1:] {
		if r.Frame.Prio < lowest {
			lowest = r.Frame.Prio
		}
	}
	if lowest >= types.PriorityCritical {
		return nil
	}
	count := 0
	for _, r := range m.ready {
		if r.Frame.Prio == lowest {
			count++
		}
	}
	//sdvmlint:allow allocfree -- closure does not escape pickIndex and stays on the stack
	k := pickIndex(count, policy, func(int) types.Priority { return 0 })
	idx := -1
	for i, r := range m.ready {
		if r.Frame.Prio == lowest {
			if k == 0 {
				idx = i
				break
			}
			k--
		}
	}
	r := m.ready[idx]
	m.ready = append(m.ready[:idx], m.ready[idx+1:]...) //sdvmlint:allow allocfree -- removal append shrinks, never grows
	return r
}

// askForHelp runs one help-request round: ask up to MaxHelpFanout
// distinct peers, stop at the first grant. Reports whether work arrived.
// In central mode the only target is the central site.
func (m *Manager) askForHelp() bool {
	self := m.cm.Self()
	exclude := make(map[types.SiteID]bool)
	for i := 0; i < m.cfg.MaxHelpFanout; i++ {
		var target types.SiteID
		switch {
		case m.cfg.CentralSite.Valid():
			if i > 0 || m.cfg.CentralSite == self.ID {
				return false
			}
			target = m.cfg.CentralSite
		case i == 0 && m.grantorTarget(exclude) != types.InvalidSite:
			target = m.grantorTarget(exclude)
		default:
			target = m.pickHelpTarget(exclude)
		}
		if target == types.InvalidSite {
			return false
		}
		exclude[target] = true

		// Local work may have arrived (a parked push, a fired frame)
		// while we were begging; stop immediately.
		m.mu.Lock()
		if len(m.ready) > 0 || m.executable.len() > 0 {
			m.mu.Unlock()
			return true
		}
		m.stats.HelpAsked++
		m.mu.Unlock()
		if m.met != nil {
			m.met.helpAsked.Inc()
		}

		reply, err := m.bus.Request(target, types.MgrScheduling, types.MgrScheduling,
			&wire.HelpRequest{Requester: self.ID, Load: self.Load, Speed: self.Speed}, 250*time.Millisecond)
		if err != nil {
			continue
		}
		hr, ok := reply.Payload.(*wire.HelpReply)
		if !ok || hr.CantHelp || len(hr.Frames) == 0 {
			m.mu.Lock()
			m.stats.HelpDenied++
			m.mu.Unlock()
			if m.met != nil {
				m.met.helpDenied.Inc()
			}
			continue
		}

		m.mu.Lock()
		m.stats.HelpGranted += uint64(len(hr.Frames))
		m.mu.Unlock()
		if m.met != nil {
			m.met.helpGranted.Add(uint64(len(hr.Frames)))
		}
		for _, f := range hr.Frames {
			if f != nil {
				m.acceptForeignFrame(f, reply.Src)
			}
		}
		return true
	}
	return false
}

// acceptForeignFrame routes a frame received from a peer: executable
// frames enter the local queues, incomplete ones (sign-off relocations)
// go to the attraction memory.
func (m *Manager) acceptForeignFrame(f *wire.Microframe, from types.SiteID) {
	if from.Valid() && from != m.bus.Self() {
		m.mu.Lock()
		m.lastGrantor = from
		m.mu.Unlock()
		m.tr.Record(trace.EvReceived, f.ID, f.Thread, "from "+from.String())
	}
	if m.unknownProg != nil && !m.knownProg(f.Thread.Program) {
		m.unknownProg(f.Thread.Program, from)
	}
	if f.Executable() {
		m.enqueueForeign(f)
		return
	}
	if m.adopter != nil {
		m.adopter.AdoptFrame(f)
	}
}

// pickHelpTarget chooses the next help-request donor: two random
// choices over the gossiped load table when a targeter is wired (the
// heavier queue wins — the work-stealing dual of p2c placement), the
// cluster list's full-roster scan otherwise.
func (m *Manager) pickHelpTarget(exclude map[types.SiteID]bool) types.SiteID {
	if m.targeter != nil {
		m.rngMu.Lock()
		defer m.rngMu.Unlock()
		return m.targeter.PickHelpTarget(m.rng, exclude)
	}
	return m.cm.PickHelpTarget(exclude)
}

// grantorTarget returns the last grantor if it is usable as a target.
func (m *Manager) grantorTarget(exclude map[types.SiteID]bool) types.SiteID {
	m.mu.Lock()
	g := m.lastGrantor
	m.mu.Unlock()
	if !g.Valid() || g == m.bus.Self() || exclude[g] {
		return types.InvalidSite
	}
	if _, known := m.cm.Lookup(g); !known {
		return types.InvalidSite
	}
	return g
}

// surrenderFrame picks a frame to give away per the help policy:
// executable queue first (no code resolution invested yet), then the
// ready queue (strip the code pointer; the peer resolves it again).
func (m *Manager) surrenderFrame() *wire.Microframe {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Keep the last frame for ourselves: handing away our only work
	// would just bounce the idleness to this site. (A central-mode
	// master is a pure dispatcher and gives everything away.)
	total := m.executable.len() + len(m.ready)
	keep := 1
	if m.cfg.CentralSite.Valid() && m.cfg.CentralSite == m.bus.Self() {
		keep = 0
	}
	if total <= keep {
		return nil
	}
	if m.cfg.NoCriticalPinning {
		if f := m.executable.pop(m.cfg.HelpPolicy); f != nil {
			m.stats.HelpServed++
			m.surrenderedLocked(f.ID)
			return f
		}
		if len(m.ready) > 0 {
			r := m.takeReadyLocked(m.cfg.HelpPolicy)
			m.stats.HelpServed++
			m.surrenderedLocked(r.Frame.ID)
			return r.Frame
		}
		return nil
	}
	if f := m.executable.popSurrender(m.cfg.HelpPolicy); f != nil {
		m.stats.HelpServed++
		m.surrenderedLocked(f.ID)
		return f
	}
	if r := m.takeReadySurrenderLocked(m.cfg.HelpPolicy); r != nil {
		m.stats.HelpServed++
		m.surrenderedLocked(r.Frame.ID)
		return r.Frame
	}
	return nil
}

// surrenderBatch picks up to HelpBatch frames to give away in one help
// reply: half the current surplus (beyond the keep-one rule), so a deep
// queue sheds work in bulk while a shallow one still grants a single
// frame. surrenderFrame re-checks the keep rule on every pick, so a
// concurrent dispatch can only shrink the batch, never under-keep.
func (m *Manager) surrenderBatch() []*wire.Microframe {
	m.mu.Lock()
	total := m.executable.len() + len(m.ready)
	keep := 1
	if m.cfg.CentralSite.Valid() && m.cfg.CentralSite == m.bus.Self() {
		keep = 0
	}
	m.mu.Unlock()
	surplus := total - keep
	if surplus <= 0 {
		return nil
	}
	n := (surplus + 1) / 2
	if n > m.cfg.HelpBatch {
		n = m.cfg.HelpBatch
	}
	var out []*wire.Microframe
	for len(out) < n {
		f := m.surrenderFrame()
		if f == nil {
			break
		}
		out = append(out, f)
	}
	return out
}

// surrenderedLocked counts one frame given away to a peer. Caller holds
// m.mu.
func (m *Manager) surrenderedLocked(id types.FrameID) {
	if m.met == nil {
		return
	}
	m.met.helpServed.Inc()
	m.met.surrendered.Inc()
	delete(m.enqueuedAt, id)
}

// PushFrame proactively migrates an executable frame to another site
// (sign-off relocation of queued work).
func (m *Manager) PushFrame(dst types.SiteID, f *wire.Microframe) error {
	if g, ok := m.adopter.(grantLogger); ok {
		g.RecordGrant(dst, f)
	}
	return m.bus.Send(dst, types.MgrScheduling, types.MgrScheduling, &wire.FramePush{Frame: f})
}

// DrainAll removes and returns every queued frame (sign-off).
func (m *Manager) DrainAll() []*wire.Microframe {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := m.executable.drain()
	for _, r := range m.ready {
		out = append(out, r.Frame)
	}
	m.ready = nil
	if m.met != nil {
		m.enqueuedAt = make(map[types.FrameID]time.Time)
	}
	return out
}

// DropProgram discards all queued frames of a terminated program.
func (m *Manager) DropProgram(prog types.ProgramID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dead[prog] = true
	m.executable.dropProgram(prog)
	kept := m.ready[:0]
	for _, r := range m.ready {
		if r.Frame.Thread.Program != prog {
			kept = append(kept, r)
		}
	}
	m.ready = kept
	if m.met != nil {
		// Latency entries are keyed by frame id only, so the dropped
		// program's entries cannot be picked out; reset the whole table
		// (termination is rare, losing a few pending samples is fine).
		m.enqueuedAt = make(map[types.FrameID]time.Time)
	}
}

// SnapshotFrames returns copies of all queued frames of one program
// (checkpointing: queued frames are no longer in the attraction memory).
func (m *Manager) SnapshotFrames(prog types.ProgramID) []*wire.Microframe {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []*wire.Microframe
	for _, f := range m.executable.all() {
		if f.Thread.Program == prog {
			out = append(out, f.Clone())
		}
	}
	for _, r := range m.ready {
		if r.Frame.Thread.Program == prog {
			out = append(out, r.Frame.Clone())
		}
	}
	return out
}

// HandleMessage implements msgbus.Handler.
func (m *Manager) HandleMessage(msg *wire.Message) {
	switch p := msg.Payload.(type) {
	case *wire.HelpRequest:
		// Refresh the requester's statistics while we are at it (the
		// paper piggybacks status propagation on normal actions).
		if frames := m.surrenderBatch(); len(frames) > 0 {
			g, logged := m.adopter.(grantLogger)
			for _, f := range frames {
				if logged {
					g.RecordGrant(p.Requester, f)
				}
				m.tr.Record(trace.EvGranted, f.ID, f.Thread, "help reply to "+p.Requester.String())
			}
			if m.met != nil {
				m.met.grantBatch.Observe(time.Duration(len(frames)))
			}
			if err := m.bus.Reply(msg, types.MgrScheduling, &wire.HelpReply{Frames: frames}); err != nil {
				// The requester vanished between asking and receiving
				// (graceful sign-off closes its endpoint without a crash
				// declaration, so nothing would ever replay the batch).
				// Take the grants back and run them here. ReclaimGrants
				// shares the grant log's mutex with OnSiteCrashed, so a
				// racing crash declaration replays a frame or we requeue
				// it — never both.
				salvage := frames
				if rec, ok := m.adopter.(grantReclaimer); ok && logged {
					ids := make([]types.FrameID, len(frames))
					for i, f := range frames {
						ids[i] = f.ID
					}
					salvage = rec.ReclaimGrants(p.Requester, ids)
				}
				for _, f := range salvage {
					m.tr.Record(trace.EvGranted, f.ID, f.Thread, "help reply undeliverable, reclaimed")
					m.enqueueForeign(f)
				}
			}
		} else {
			m.mu.Lock()
			m.stats.HelpRefused++
			if m.met != nil {
				m.met.helpRefused.Inc()
			}
			// Remember the hungry site: the next surplus frame goes to
			// it without waiting for its next poll.
			if p.Requester.Valid() && p.Requester != m.bus.Self() {
				m.parked[p.Requester] = time.Now()
			}
			m.mu.Unlock()
			_ = m.bus.Reply(msg, types.MgrScheduling, &wire.HelpReply{CantHelp: true})
		}
	case *wire.HelpReply:
		// A reply that arrived after the requester's timeout: the bus
		// dispatches it here rather than dropping it. The granter has
		// already surrendered the whole batch and logged the grants, so
		// losing it now would strand the computation — salvage every
		// frame exactly like a push.
		for _, f := range p.Frames {
			if f != nil {
				m.acceptForeignFrame(f, msg.Src)
			}
		}
	case *wire.FramePush:
		m.acceptForeignFrame(p.Frame, msg.Src)
	}
}
