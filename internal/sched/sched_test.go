package sched

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/mthread"
	"repro/internal/testnet"
	"repro/internal/types"
	"repro/internal/wire"
)

// fakeResolver resolves every thread to a no-op function, optionally
// with delay (to exercise the executable→ready pipeline).
type fakeResolver struct {
	delay time.Duration
	fail  map[types.ThreadID]bool
	mu    sync.Mutex
	calls int
}

func (r *fakeResolver) Resolve(thread types.ThreadID) (mthread.Func, error) {
	r.mu.Lock()
	r.calls++
	r.mu.Unlock()
	if r.delay > 0 {
		time.Sleep(r.delay)
	}
	if r.fail[thread] {
		return nil, types.ErrNoBinary
	}
	return func(mthread.Context) error { return nil }, nil
}

// fakeAdopter collects adopted frames and grant records.
type fakeAdopter struct {
	mu      sync.Mutex
	adopted []*wire.Microframe
	grants  map[types.SiteID]int
}

func newFakeAdopter() *fakeAdopter {
	return &fakeAdopter{grants: make(map[types.SiteID]int)}
}

func (a *fakeAdopter) AdoptFrame(f *wire.Microframe) {
	a.mu.Lock()
	a.adopted = append(a.adopted, f)
	a.mu.Unlock()
}

func (a *fakeAdopter) RecordGrant(grantee types.SiteID, f *wire.Microframe) {
	a.mu.Lock()
	a.grants[grantee]++
	a.mu.Unlock()
}

// schedCluster builds n sites each with a scheduling manager.
func schedCluster(t *testing.T, n int, cfg Config) ([]*testnet.Node, []*Manager) {
	t.Helper()
	mgrs := make([]*Manager, n)
	nodes := testnet.NewCluster(t, n, func(i int, node *testnet.Node) {
		mgrs[i] = New(node.Bus, node.CM, &fakeResolver{}, cfg)
		mgrs[i].SetAdopter(newFakeAdopter())
		mgrs[i].Start()
	})
	for _, m := range mgrs {
		t.Cleanup(m.Close)
	}
	return nodes, mgrs
}

func frameFor(home types.SiteID, local uint64, prio types.Priority) *wire.Microframe {
	f := wire.NewMicroframe(
		types.GlobalAddr{Home: home, Local: local},
		types.ThreadID{Program: types.MakeProgramID(1, 1), Index: 0},
		0,
	)
	f.Prio = prio
	return f
}

func TestEnqueueGetWork(t *testing.T) {
	_, mgrs := schedCluster(t, 1, Config{})
	m := mgrs[0]
	f := frameFor(1, 1, types.PriorityNormal)
	m.Enqueue(f)

	r, ok := m.GetWork()
	if !ok {
		t.Fatal("GetWork failed")
	}
	if r.Frame.ID != f.ID || r.Fn == nil {
		t.Fatal("wrong ready frame")
	}
	s := m.Stats()
	if s.Enqueued != 1 || s.Dispatched != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLocalFIFOOrder(t *testing.T) {
	_, mgrs := schedCluster(t, 1, Config{LocalPolicy: types.SchedFIFO})
	m := mgrs[0]
	for i := uint64(1); i <= 5; i++ {
		m.Enqueue(frameFor(1, i, types.PriorityNormal))
	}
	for i := uint64(1); i <= 5; i++ {
		r, ok := m.GetWork()
		if !ok || r.Frame.ID.Local != i {
			t.Fatalf("FIFO violated: got %v, want local %d", r.Frame.ID, i)
		}
	}
}

func TestLocalPriorityOrder(t *testing.T) {
	_, mgrs := schedCluster(t, 1, Config{LocalPolicy: types.SchedPriority})
	m := mgrs[0]
	m.Enqueue(frameFor(1, 1, types.PriorityLow))
	m.Enqueue(frameFor(1, 2, types.PriorityCritical))
	m.Enqueue(frameFor(1, 3, types.PriorityNormal))
	// Let the resolver drain everything into the ready queue first, so
	// the priority pick sees all three.
	testnet.WaitFor(t, "resolved", func() bool {
		m.mu.Lock()
		defer m.mu.Unlock()
		return len(m.ready) == 3
	})

	r, _ := m.GetWork()
	if r.Frame.ID.Local != 2 {
		t.Fatalf("priority pick = %v, want the critical frame", r.Frame.ID)
	}
}

func TestTryGetWork(t *testing.T) {
	_, mgrs := schedCluster(t, 1, Config{})
	m := mgrs[0]
	if _, ok := m.TryGetWork(); ok {
		t.Fatal("TryGetWork on empty queue succeeded")
	}
	m.Enqueue(frameFor(1, 1, types.PriorityNormal))
	testnet.WaitFor(t, "ready", func() bool {
		_, ok := m.TryGetWork()
		return ok
	})
}

func TestHelpRequestMovesWork(t *testing.T) {
	_, mgrs := schedCluster(t, 2, Config{})
	busy, idle := mgrs[0], mgrs[1]

	// Load the busy site with exactly two frames: more than one (the
	// keep-one rule refuses to surrender the last frame) but few enough
	// that proactive scatter can never fire — scatter only ships frames
	// once the local depth is already ≥ 2, and whether the peer is
	// visible that early depends on membership-propagation timing. With
	// three or more frames the surplus may be scattered to the idle
	// site, which then finds local work and never issues the help
	// request this test exists to exercise.
	for i := uint64(1); i <= 2; i++ {
		busy.Enqueue(frameFor(1, i, types.PriorityNormal))
	}
	// The idle site's GetWork should obtain one via a help request.
	done := make(chan *Ready, 1)
	go func() {
		r, ok := idle.GetWork()
		if ok {
			done <- r
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("help request did not deliver work")
	}
	if s := idle.Stats(); s.HelpGranted == 0 {
		t.Fatalf("idle stats = %+v", s)
	}
	if s := busy.Stats(); s.HelpServed == 0 {
		t.Fatalf("busy stats = %+v", s)
	}
}

func TestHelpReplyLIFO(t *testing.T) {
	_, mgrs := schedCluster(t, 2, Config{HelpPolicy: types.SchedLIFO})
	busy, idle := mgrs[0], mgrs[1]
	for i := uint64(1); i <= 4; i++ {
		busy.Enqueue(frameFor(1, i, types.PriorityNormal))
	}
	// Ask directly (bypassing PickHelpTarget randomness).
	self := idle.cm.Self()
	reply, err := idle.bus.Request(busy.bus.Self(), types.MgrScheduling, types.MgrScheduling,
		&wire.HelpRequest{Requester: self.ID}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	hr := reply.Payload.(*wire.HelpReply)
	if hr.CantHelp || len(hr.Frames) == 0 {
		t.Fatal("unexpected can't-help")
	}
	// LIFO must surrender the newest executable frame (local 4) first —
	// unless the resolver already moved some to ready; the newest
	// still-queued frame is what LIFO yields. Accept local >= 2 but
	// assert the first surrendered frame is not the oldest.
	if hr.Frames[0].ID.Local == 1 {
		t.Fatalf("LIFO help reply returned the oldest frame first")
	}
}

func TestHelpReplyBatchesDeepQueue(t *testing.T) {
	// Central mode pins all frames at the master and never scatters, so
	// the queue depth at help-request time is deterministic.
	_, mgrs := schedCluster(t, 2, Config{CentralSite: 1, HelpBatch: 4})
	master, worker := mgrs[0], mgrs[1] // bootstrap has id 1
	for i := uint64(1); i <= 8; i++ {
		master.Enqueue(frameFor(1, i, types.PriorityNormal))
	}
	reply, err := worker.bus.Request(master.bus.Self(), types.MgrScheduling, types.MgrScheduling,
		&wire.HelpRequest{Requester: worker.bus.Self()}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	hr := reply.Payload.(*wire.HelpReply)
	if hr.CantHelp {
		t.Fatal("deep queue refused to help")
	}
	// Surplus is 8 (a central master keeps nothing); half of it capped
	// by HelpBatch=4 must arrive in one reply.
	if len(hr.Frames) != 4 {
		t.Fatalf("got %d frames in one help reply, want 4", len(hr.Frames))
	}
	seen := map[types.GlobalAddr]bool{}
	for _, f := range hr.Frames {
		if f == nil {
			t.Fatal("nil frame in batch")
		}
		if seen[f.ID] {
			t.Fatalf("frame %v granted twice in one batch", f.ID)
		}
		seen[f.ID] = true
	}
	if s := master.Stats(); s.HelpServed != 4 {
		t.Fatalf("HelpServed = %d, want 4", s.HelpServed)
	}
}

func TestHelpBatchOneRestoresSingleGrants(t *testing.T) {
	_, mgrs := schedCluster(t, 2, Config{CentralSite: 1, HelpBatch: 1})
	master, worker := mgrs[0], mgrs[1]
	for i := uint64(1); i <= 6; i++ {
		master.Enqueue(frameFor(1, i, types.PriorityNormal))
	}
	reply, err := worker.bus.Request(master.bus.Self(), types.MgrScheduling, types.MgrScheduling,
		&wire.HelpRequest{Requester: worker.bus.Self()}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	hr := reply.Payload.(*wire.HelpReply)
	if hr.CantHelp || len(hr.Frames) != 1 {
		t.Fatalf("HelpBatch=1 granted %d frames, want exactly 1", len(hr.Frames))
	}
}

func TestCantHelpWhenEmpty(t *testing.T) {
	_, mgrs := schedCluster(t, 2, Config{})
	a, b := mgrs[0], mgrs[1]
	reply, err := a.bus.Request(b.bus.Self(), types.MgrScheduling, types.MgrScheduling,
		&wire.HelpRequest{Requester: a.bus.Self()}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !reply.Payload.(*wire.HelpReply).CantHelp {
		t.Fatal("empty site helped")
	}
}

func TestKeepsLastFrame(t *testing.T) {
	_, mgrs := schedCluster(t, 2, Config{})
	a, b := mgrs[0], mgrs[1]
	a.Enqueue(frameFor(1, 1, types.PriorityNormal))
	reply, err := b.bus.Request(a.bus.Self(), types.MgrScheduling, types.MgrScheduling,
		&wire.HelpRequest{Requester: b.bus.Self()}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !reply.Payload.(*wire.HelpReply).CantHelp {
		t.Fatal("site gave away its only frame")
	}
}

func TestFramePushAccepted(t *testing.T) {
	_, mgrs := schedCluster(t, 2, Config{})
	a, b := mgrs[0], mgrs[1]
	f := frameFor(a.bus.Self(), 7, types.PriorityNormal)
	if err := a.PushFrame(b.bus.Self(), f); err != nil {
		t.Fatal(err)
	}
	r, ok := b.GetWork()
	if !ok || r.Frame.ID != f.ID {
		t.Fatal("pushed frame not received")
	}
}

func TestIncompleteFrameGoesToAdopter(t *testing.T) {
	_, mgrs := schedCluster(t, 2, Config{})
	a, b := mgrs[0], mgrs[1]
	ad := newFakeAdopter()
	b.SetAdopter(ad)

	incomplete := wire.NewMicroframe(
		types.GlobalAddr{Home: a.bus.Self(), Local: 9},
		types.ThreadID{Program: types.MakeProgramID(1, 1), Index: 0},
		2,
	)
	if err := a.PushFrame(b.bus.Self(), incomplete); err != nil {
		t.Fatal(err)
	}
	testnet.WaitFor(t, "adoption", func() bool {
		ad.mu.Lock()
		defer ad.mu.Unlock()
		return len(ad.adopted) == 1
	})
}

func TestGrantsAreRecorded(t *testing.T) {
	_, mgrs := schedCluster(t, 2, Config{})
	a, b := mgrs[0], mgrs[1]
	ad := newFakeAdopter()
	a.SetAdopter(ad)
	for i := uint64(1); i <= 3; i++ {
		a.Enqueue(frameFor(1, i, types.PriorityNormal))
	}
	reply, err := b.bus.Request(a.bus.Self(), types.MgrScheduling, types.MgrScheduling,
		&wire.HelpRequest{Requester: b.bus.Self()}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Payload.(*wire.HelpReply).CantHelp {
		t.Fatal("no grant")
	}
	ad.mu.Lock()
	defer ad.mu.Unlock()
	// At least one grant to b: the help reply itself, plus possibly a
	// proactive scatter of the surplus third frame.
	if ad.grants[b.bus.Self()] == 0 {
		t.Fatalf("grants = %v", ad.grants)
	}
}

// reclaimAdopter extends fakeAdopter with the grant-log hand-back the
// attraction memory offers: ReclaimGrants returns the stored frames so
// the scheduler can requeue a batch whose reply bounced.
type reclaimAdopter struct {
	fakeAdopter
	stored    map[types.SiteID][]*wire.Microframe
	reclaimed int
}

func newReclaimAdopter() *reclaimAdopter {
	return &reclaimAdopter{
		fakeAdopter: fakeAdopter{grants: make(map[types.SiteID]int)},
		stored:      make(map[types.SiteID][]*wire.Microframe),
	}
}

func (a *reclaimAdopter) RecordGrant(grantee types.SiteID, f *wire.Microframe) {
	a.fakeAdopter.RecordGrant(grantee, f)
	a.mu.Lock()
	a.stored[grantee] = append(a.stored[grantee], f.Clone())
	a.mu.Unlock()
}

func (a *reclaimAdopter) ReclaimGrants(grantee types.SiteID, ids []types.FrameID) []*wire.Microframe {
	want := make(map[types.FrameID]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var out, kept []*wire.Microframe
	for _, f := range a.stored[grantee] {
		if want[f.ID] {
			out = append(out, f)
		} else {
			kept = append(kept, f)
		}
	}
	a.stored[grantee] = kept
	a.reclaimed += len(out)
	return out
}

// TestHelpReplyUndeliverableReclaimed models the sign-off race that used
// to strand computations: a site asks for help and then leaves before
// the reply arrives. The reply cannot be delivered, no crash is ever
// declared (the leave was graceful), so without the salvage path the
// whole granted batch would be lost. The granter must take the grants
// back from the log and requeue every frame locally.
func TestHelpReplyUndeliverableReclaimed(t *testing.T) {
	// Central mode keeps all frames at the master, so the queue depth is
	// deterministic (see TestHelpReplyBatchesDeepQueue).
	_, mgrs := schedCluster(t, 2, Config{CentralSite: 1, HelpBatch: 4})
	master := mgrs[0]
	ad := newReclaimAdopter()
	master.SetAdopter(ad)

	const n = 8
	for i := uint64(1); i <= n; i++ {
		master.Enqueue(frameFor(1, i, types.PriorityNormal))
	}
	testnet.WaitFor(t, "queued", func() bool { return master.QueueLen() == n })

	// A help request from a site no longer in the roster: the reply's
	// address lookup fails, which is exactly what a granter sees when
	// the requester signed off between asking and receiving.
	ghost := types.SiteID(4242)
	master.HandleMessage(&wire.Message{
		Src:     ghost,
		Dst:     master.bus.Self(),
		SrcMgr:  types.MgrScheduling,
		DstMgr:  types.MgrScheduling,
		Seq:     999,
		Payload: &wire.HelpRequest{Requester: ghost},
	})

	// The batch was surrendered, the reply bounced, and every frame must
	// be back in the queue with its grant-log entries consumed.
	testnet.WaitFor(t, "requeued", func() bool { return master.QueueLen() == n })
	ad.mu.Lock()
	defer ad.mu.Unlock()
	if ad.grants[ghost] != 4 {
		t.Fatalf("grants logged to ghost = %d, want 4", ad.grants[ghost])
	}
	if ad.reclaimed != 4 {
		t.Fatalf("reclaimed = %d, want 4", ad.reclaimed)
	}
	if len(ad.stored[ghost]) != 0 {
		t.Fatalf("%d grant-log entries left for the ghost, want 0", len(ad.stored[ghost]))
	}
}

// TestParkedPushUndeliverableReclaimed pins the loss channel behind the
// long-standing TestSignOffMidRun flake: a hungry site gets parked, then
// signs off; the next surplus frame is pushed to it, the send fails, and
// the frame used to vanish — grant-logged to a site that never crashes,
// so nothing ever replayed it. The push must reclaim the grant and
// requeue the frame locally.
func TestParkedPushUndeliverableReclaimed(t *testing.T) {
	_, mgrs := schedCluster(t, 2, Config{})
	m := mgrs[0]
	ad := newReclaimAdopter()
	m.SetAdopter(ad)

	// A help request from a site that departs right after: refused
	// (empty queue), so the requester is parked for the next surplus.
	ghost := types.SiteID(4242)
	m.HandleMessage(&wire.Message{
		Src:     ghost,
		Dst:     m.bus.Self(),
		SrcMgr:  types.MgrScheduling,
		DstMgr:  types.MgrScheduling,
		Seq:     1,
		Payload: &wire.HelpRequest{Requester: ghost},
	})

	// The second enqueue makes a surplus and feeds the parked ghost;
	// that push bounces and the frame must come back.
	m.Enqueue(frameFor(1, 1, types.PriorityNormal))
	m.Enqueue(frameFor(1, 2, types.PriorityNormal))
	testnet.WaitFor(t, "requeued", func() bool { return m.QueueLen() == 2 })

	ad.mu.Lock()
	defer ad.mu.Unlock()
	if ad.reclaimed != 1 {
		t.Fatalf("reclaimed = %d, want 1", ad.reclaimed)
	}
	if len(ad.stored[ghost]) != 0 {
		t.Fatalf("%d grant-log entries left for the ghost, want 0", len(ad.stored[ghost]))
	}
}

// TestClosedEnqueueFollowsSuccessor pins the other half of the sign-off
// fix: a frame arriving after Close must be pushed to the designated
// sign-off successor — the site that inherited the leaver's queue and
// memory — not to a random roster pick (and never dropped).
func TestClosedEnqueueFollowsSuccessor(t *testing.T) {
	_, mgrs := schedCluster(t, 3, Config{})
	leaver, other, heir := mgrs[0], mgrs[1], mgrs[2]

	leaver.SetFallback(heir.bus.Self())
	leaver.Close()

	// A late help reply drains from the leaver's bus inbox after Close.
	f := frameFor(1, 77, types.PriorityNormal)
	leaver.enqueueForeign(f)

	r, ok := heir.GetWork()
	if !ok || r.Frame.ID != f.ID {
		t.Fatal("late frame did not reach the sign-off successor")
	}
	if n := other.QueueLen(); n != 0 {
		t.Fatalf("%d frames at a non-successor site", n)
	}
}

func TestDropProgramDiscardsFrames(t *testing.T) {
	_, mgrs := schedCluster(t, 1, Config{})
	m := mgrs[0]
	prog := types.MakeProgramID(1, 1)
	m.Enqueue(frameFor(1, 1, types.PriorityNormal))
	testnet.WaitFor(t, "queued", func() bool { return m.QueueLen() == 1 })
	m.DropProgram(prog)
	if m.QueueLen() != 0 {
		t.Fatal("frames survived DropProgram")
	}
	// Frames of a dead program are rejected on arrival, too.
	m.Enqueue(frameFor(1, 2, types.PriorityNormal))
	if m.QueueLen() != 0 {
		t.Fatal("dead program's frame enqueued")
	}
}

func TestSnapshotFrames(t *testing.T) {
	_, mgrs := schedCluster(t, 1, Config{})
	m := mgrs[0]
	m.Enqueue(frameFor(1, 1, types.PriorityNormal))
	m.Enqueue(frameFor(1, 2, types.PriorityNormal))
	testnet.WaitFor(t, "queued", func() bool { return m.QueueLen() == 2 })
	snap := m.SnapshotFrames(types.MakeProgramID(1, 1))
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d frames", len(snap))
	}
	// Snapshot must be deep copies.
	snap[0].Prio = types.PriorityCritical
	again := m.SnapshotFrames(types.MakeProgramID(1, 1))
	for _, f := range again {
		if f.Prio == types.PriorityCritical {
			t.Fatal("snapshot aliases queue frames")
		}
	}
}

func TestDrainAll(t *testing.T) {
	_, mgrs := schedCluster(t, 1, Config{})
	m := mgrs[0]
	for i := uint64(1); i <= 4; i++ {
		m.Enqueue(frameFor(1, i, types.PriorityNormal))
	}
	testnet.WaitFor(t, "queued", func() bool { return m.QueueLen() == 4 })
	frames := m.DrainAll()
	if len(frames) != 4 {
		t.Fatalf("DrainAll returned %d frames", len(frames))
	}
	if m.QueueLen() != 0 {
		t.Fatal("queue not empty after drain")
	}
}

func TestCloseUnblocksGetWork(t *testing.T) {
	_, mgrs := schedCluster(t, 1, Config{})
	m := mgrs[0]
	done := make(chan bool, 1)
	go func() {
		_, ok := m.GetWork()
		done <- ok
	}()
	time.Sleep(20 * time.Millisecond)
	m.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("GetWork returned work after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("GetWork blocked after Close")
	}
}

func TestResolveErrorDropsFrame(t *testing.T) {
	res := &fakeResolver{fail: map[types.ThreadID]bool{
		{Program: types.MakeProgramID(1, 1), Index: 0}: true,
	}}
	nodes := testnet.NewCluster(t, 1, nil)
	m := New(nodes[0].Bus, nodes[0].CM, res, Config{})
	m.Start()
	t.Cleanup(m.Close)

	m.Enqueue(frameFor(1, 1, types.PriorityNormal))
	testnet.WaitFor(t, "resolve error", func() bool {
		return m.Stats().ResolveErrs == 1
	})
	if _, ok := m.TryGetWork(); ok {
		t.Fatal("unresolvable frame became ready")
	}
}

func TestCentralModeForwardsFrames(t *testing.T) {
	_, mgrs := schedCluster(t, 2, Config{CentralSite: 1})
	master, worker := mgrs[0], mgrs[1] // bootstrap has id 1

	// A frame enqueued at the worker must land in the master's queue.
	worker.Enqueue(frameFor(worker.bus.Self(), 1, types.PriorityNormal))
	testnet.WaitFor(t, "frame at master", func() bool {
		return master.QueueLen() > 0 || master.Stats().Enqueued > 0
	})
	if worker.Stats().Enqueued != 0 {
		t.Fatal("central mode queued locally at a worker")
	}

	// The master (pure dispatcher) surrenders even its only frame.
	reply, err := worker.bus.Request(master.bus.Self(), types.MgrScheduling, types.MgrScheduling,
		&wire.HelpRequest{Requester: worker.bus.Self()}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Payload.(*wire.HelpReply).CantHelp {
		t.Fatal("central master refused its only frame")
	}
}

func TestPickIndexPolicies(t *testing.T) {
	prios := []types.Priority{0, 5, 5, 1}
	at := func(i int) types.Priority { return prios[i] }
	if pickIndex(4, types.SchedFIFO, at) != 0 {
		t.Error("FIFO pick wrong")
	}
	if pickIndex(4, types.SchedLIFO, at) != 3 {
		t.Error("LIFO pick wrong")
	}
	if pickIndex(4, types.SchedPriority, at) != 1 {
		t.Error("priority pick must take first-highest (FIFO tie-break)")
	}
}

// fakeTargeter aims every help request at one fixed site, standing in
// for the gossip manager's p2c pick.
type fakeTargeter struct {
	mu     sync.Mutex
	target types.SiteID
	calls  int
}

func (ft *fakeTargeter) PickHelpTarget(_ *rand.Rand, exclude map[types.SiteID]bool) types.SiteID {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.calls++
	if exclude[ft.target] {
		return types.InvalidSite
	}
	return ft.target
}

// A wired HelpTargeter replaces the cluster list's full-roster scan:
// help requests go where it points, and its InvalidSite verdict is
// final — no fallback that could resurrect a departed target.
func TestHelpTargeterDirectsRequests(t *testing.T) {
	_, mgrs := schedCluster(t, 3, Config{})
	busy, idle := mgrs[0], mgrs[2]
	ft := &fakeTargeter{target: busy.bus.Self()}
	idle.SetHelpTargeter(ft)
	for i := uint64(1); i <= 2; i++ {
		busy.Enqueue(frameFor(1, i, types.PriorityNormal))
	}

	done := make(chan struct{})
	go func() {
		if _, ok := idle.GetWork(); ok {
			close(done)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("targeted help request did not deliver work")
	}
	ft.mu.Lock()
	calls := ft.calls
	ft.mu.Unlock()
	if calls == 0 {
		t.Fatal("help path never consulted the targeter")
	}
	if s := busy.Stats(); s.HelpServed == 0 {
		t.Fatalf("busy stats = %+v", s)
	}

	none := &fakeTargeter{target: types.InvalidSite}
	mgrs[1].SetHelpTargeter(none)
	if got := mgrs[1].pickHelpTarget(nil); got != types.InvalidSite {
		t.Fatalf("InvalidSite verdict not final: picked %v", got)
	}
}
