package sched

import (
	"repro/internal/types"
	"repro/internal/wire"
)

// frameQueue is a deque of microframes supporting the FIFO, LIFO and
// priority disciplines of the scheduling manager. It is not safe for
// concurrent use; the Manager's mutex guards it.
type frameQueue struct {
	frames []*wire.Microframe
}

func newFrameQueue() *frameQueue { return &frameQueue{} }

func (q *frameQueue) len() int { return len(q.frames) }

// push appends a frame. Arrival order is the queue order; the policy is
// applied at pop time so one queue can serve local FIFO dispatch and
// LIFO help replies simultaneously, as the paper prescribes.
func (q *frameQueue) push(f *wire.Microframe, _ types.SchedulingClass) {
	q.frames = append(q.frames, f)
}

// pop removes one frame per the given discipline; nil when empty.
// Critical-path frames (paper §3.3 scheduling hints) always dispatch
// first, whatever the policy; with no critical frame queued the policy
// applies unchanged.
func (q *frameQueue) pop(policy types.SchedulingClass) *wire.Microframe {
	n := len(q.frames)
	if n == 0 {
		return nil
	}
	idx := -1
	for i, f := range q.frames {
		if f.Prio >= types.PriorityCritical {
			idx = i
			break
		}
	}
	if idx < 0 {
		idx = pickIndex(n, policy, func(i int) types.Priority { return q.frames[i].Prio })
	}
	f := q.frames[idx]
	q.frames = append(q.frames[:idx], q.frames[idx+1:]...)
	return f
}

// popSurrender removes the frame best suited to give away to a peer:
// the *lowest*-priority frame (ties broken by policy), and never a
// critical-path frame — shipping the frame that unfolds the next stage
// of the program detaches every peer's knowledge of where work spawns.
func (q *frameQueue) popSurrender(policy types.SchedulingClass) *wire.Microframe {
	n := len(q.frames)
	if n == 0 {
		return nil
	}
	lowest := q.frames[0].Prio
	for _, f := range q.frames[1:] {
		if f.Prio < lowest {
			lowest = f.Prio
		}
	}
	if lowest >= types.PriorityCritical {
		return nil
	}
	// Pick among the lowest-priority frames by policy order.
	var idxs []int
	for i, f := range q.frames {
		if f.Prio == lowest {
			idxs = append(idxs, i)
		}
	}
	pick := idxs[pickIndex(len(idxs), policy, func(int) types.Priority { return 0 })]
	f := q.frames[pick]
	q.frames = append(q.frames[:pick], q.frames[pick+1:]...)
	return f
}

// drain removes and returns everything, oldest first.
func (q *frameQueue) drain() []*wire.Microframe {
	out := q.frames
	q.frames = nil
	return out
}

// all returns the queued frames without removing them.
func (q *frameQueue) all() []*wire.Microframe { return q.frames }

// dropProgram removes all frames of one program.
func (q *frameQueue) dropProgram(prog types.ProgramID) {
	kept := q.frames[:0]
	for _, f := range q.frames {
		if f.Thread.Program != prog {
			kept = append(kept, f)
		}
	}
	q.frames = kept
}

// pickIndex chooses the element index a policy selects from a queue of
// length n whose elements arrived in index order. prio exposes element
// priorities for SchedPriority (ties break FIFO).
func pickIndex(n int, policy types.SchedulingClass, prio func(i int) types.Priority) int {
	switch policy {
	case types.SchedLIFO:
		return n - 1
	case types.SchedPriority:
		best := 0
		for i := 1; i < n; i++ {
			//sdvmlint:allow allocfree -- prio is a caller-stack closure invoked inline, not stored
			if prio(i) > prio(best) {
				best = i
			}
		}
		return best
	default: // SchedFIFO
		return 0
	}
}
