package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/types"
	"repro/internal/wire"
)

func qframe(local uint64, prio types.Priority) *wire.Microframe {
	f := wire.NewMicroframe(
		types.GlobalAddr{Home: 1, Local: local},
		types.ThreadID{Program: types.MakeProgramID(1, 1), Index: 0}, 0)
	f.Prio = prio
	return f
}

func TestQueueFIFO(t *testing.T) {
	q := newFrameQueue()
	for i := uint64(1); i <= 5; i++ {
		q.push(qframe(i, types.PriorityNormal), types.SchedFIFO)
	}
	for i := uint64(1); i <= 5; i++ {
		if got := q.pop(types.SchedFIFO); got.ID.Local != i {
			t.Fatalf("FIFO pop = %v, want %d", got.ID, i)
		}
	}
	if q.pop(types.SchedFIFO) != nil {
		t.Fatal("pop from empty queue")
	}
}

func TestQueueLIFO(t *testing.T) {
	q := newFrameQueue()
	for i := uint64(1); i <= 5; i++ {
		q.push(qframe(i, types.PriorityNormal), types.SchedLIFO)
	}
	for i := uint64(5); i >= 1; i-- {
		if got := q.pop(types.SchedLIFO); got.ID.Local != i {
			t.Fatalf("LIFO pop = %v, want %d", got.ID, i)
		}
	}
}

func TestQueueCriticalJumpsAnyPolicy(t *testing.T) {
	for _, policy := range []types.SchedulingClass{types.SchedFIFO, types.SchedLIFO, types.SchedPriority} {
		q := newFrameQueue()
		q.push(qframe(1, types.PriorityNormal), policy)
		q.push(qframe(2, types.PriorityCritical), policy)
		q.push(qframe(3, types.PriorityHigh), policy)
		if got := q.pop(policy); got.ID.Local != 2 {
			t.Fatalf("policy %v: critical frame not dispatched first (got %v)", policy, got.ID)
		}
	}
}

func TestQueueSurrenderNeverGivesCritical(t *testing.T) {
	q := newFrameQueue()
	q.push(qframe(1, types.PriorityCritical), types.SchedLIFO)
	if got := q.popSurrender(types.SchedLIFO); got != nil {
		t.Fatalf("surrendered a critical frame: %v", got.ID)
	}
	q.push(qframe(2, types.PriorityLow), types.SchedLIFO)
	q.push(qframe(3, types.PriorityNormal), types.SchedLIFO)
	got := q.popSurrender(types.SchedLIFO)
	if got == nil || got.ID.Local != 2 {
		t.Fatalf("surrender must pick the lowest-priority frame, got %v", got)
	}
	if q.len() != 2 {
		t.Fatalf("queue len = %d", q.len())
	}
}

func TestQueueDropProgram(t *testing.T) {
	q := newFrameQueue()
	p2 := types.MakeProgramID(2, 2)
	q.push(qframe(1, 0), types.SchedFIFO)
	other := wire.NewMicroframe(types.GlobalAddr{Home: 1, Local: 9},
		types.ThreadID{Program: p2, Index: 0}, 0)
	q.push(other, types.SchedFIFO)
	q.dropProgram(types.MakeProgramID(1, 1))
	if q.len() != 1 || q.all()[0].Thread.Program != p2 {
		t.Fatalf("dropProgram kept wrong frames: %v", q.all())
	}
}

// TestQueueConservation property-checks that any sequence of pushes and
// policy pops conserves frames: nothing is lost, nothing duplicated.
func TestQueueConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		q := newFrameQueue()
		pushed := map[uint64]bool{}
		popped := map[uint64]bool{}
		next := uint64(1)
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // push with a pseudo-random priority
				prio := types.Priority(int16(op) - 60)
				q.push(qframe(next, prio), types.SchedFIFO)
				pushed[next] = true
				next++
			case 2: // policy pop
				if fr := q.pop(types.SchedulingClass(op % 3)); fr != nil {
					if popped[fr.ID.Local] {
						return false // duplicate
					}
					popped[fr.ID.Local] = true
				}
			case 3: // surrender pop
				if fr := q.popSurrender(types.SchedLIFO); fr != nil {
					if popped[fr.ID.Local] {
						return false
					}
					popped[fr.ID.Local] = true
				}
			}
		}
		// drain the rest
		for {
			fr := q.pop(types.SchedFIFO)
			if fr == nil {
				break
			}
			if popped[fr.ID.Local] {
				return false
			}
			popped[fr.ID.Local] = true
		}
		if len(popped) != len(pushed) {
			return false
		}
		for id := range pushed {
			if !popped[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
