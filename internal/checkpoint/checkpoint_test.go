package checkpoint

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/memory"
	"repro/internal/msgbus"
	"repro/internal/mthread"
	"repro/internal/netmgr"
	"repro/internal/program"
	"repro/internal/sched"
	"repro/internal/security"
	"repro/internal/testnet"
	"repro/internal/transport/inproc"
	"repro/internal/types"
	"repro/internal/wire"
)

// ckptNode is a site with the full maintenance stack the crash manager
// needs: memory, scheduler, program manager, checkpoint manager.
type ckptNode struct {
	*testnet.Node
	mem   *memory.Manager
	sched *sched.Manager
	pm    *program.Manager
	ckpt  *Manager
}

type noopResolver struct{}

func (noopResolver) Resolve(types.ThreadID) (mthread.Func, error) {
	return func(mthread.Context) error { return nil }, nil
}

func ckptCluster(t *testing.T, n int, cfg Config) []*ckptNode {
	t.Helper()
	out := make([]*ckptNode, n)
	testnet.NewCluster(t, n, func(i int, node *testnet.Node) {
		cn := &ckptNode{Node: node}
		cn.pm = program.New(node.Bus)
		cn.sched = sched.New(node.Bus, node.CM, noopResolver{}, sched.Config{})
		cn.mem = memory.New(node.Bus, cn.sched.Enqueue)
		cn.sched.SetAdopter(cn.mem)
		cn.ckpt = New(node.Bus, node.CM, cn.mem, cn.sched, cn.pm, cfg)
		cn.sched.Start()
		cn.ckpt.Start()
		t.Cleanup(cn.ckpt.Close)
		t.Cleanup(cn.sched.Close)
		out[i] = cn
	})
	return out
}

func registerProg(t *testing.T, nodes []*ckptNode, origin int) types.ProgramID {
	t.Helper()
	prog := nodes[origin].pm.NewProgram()
	nodes[origin].pm.Register(wire.ProgramRegister{
		Program:  prog,
		CodeHome: nodes[origin].Bus.Self(),
		Frontend: nodes[origin].Bus.Self(),
	})
	for _, n := range nodes {
		n := n
		testnet.WaitFor(t, "program known", func() bool { return n.pm.Known(prog) })
	}
	return prog
}

func TestCheckpointReplicates(t *testing.T) {
	nodes := ckptCluster(t, 2, Config{})
	prog := registerProg(t, nodes, 0)

	// State on site 0: one waiting frame, one object.
	nodes[0].mem.Alloc(prog, []byte("obj"))
	nodes[0].mem.NewFrame(types.ThreadID{Program: prog, Index: 0}, 2, types.PriorityNormal, 0)

	nodes[0].ckpt.CheckpointNow()
	testnet.WaitFor(t, "checkpoint stored at peer", func() bool {
		return nodes[1].ckpt.StoredFor(prog, nodes[0].Bus.Self())
	})
	if nodes[0].ckpt.Taken() != 1 {
		t.Fatalf("Taken = %d", nodes[0].ckpt.Taken())
	}
}

func TestCheckpointSkipsEmptyPrograms(t *testing.T) {
	nodes := ckptCluster(t, 2, Config{})
	registerProg(t, nodes, 0)
	nodes[0].ckpt.CheckpointNow()
	time.Sleep(50 * time.Millisecond)
	if nodes[0].ckpt.Taken() != 0 {
		t.Fatal("empty program checkpointed")
	}
}

func TestSingleSiteHasNowhereToCheckpoint(t *testing.T) {
	nodes := ckptCluster(t, 1, Config{})
	prog := registerProg(t, nodes, 0)
	nodes[0].mem.Alloc(prog, []byte("x"))
	nodes[0].ckpt.CheckpointNow() // must not panic or block
	if nodes[0].ckpt.Taken() != 0 {
		t.Fatal("single-site cluster claims to have replicated a checkpoint")
	}
}

func TestHeartbeatDeclaresCrash(t *testing.T) {
	nodes := ckptCluster(t, 3, Config{
		HeartbeatEvery:   25 * time.Millisecond,
		HeartbeatTimeout: 60 * time.Millisecond,
		MissLimit:        2,
	})
	dead := nodes[2]
	deadID := dead.Bus.Self()

	// Kill site 2 abruptly: its links drop, pings start failing.
	dead.Bus.Close()
	dead.Net.Close()

	for i, n := range nodes[:2] {
		n := n
		testnet.WaitFor(t, "crash detected", func() bool {
			_, known := n.CM.Lookup(deadID)
			return !known
		})
		_ = i
	}
}

func TestRecoveryRestoresState(t *testing.T) {
	nodes := ckptCluster(t, 3, Config{})
	prog := registerProg(t, nodes, 0)

	// Site 1 holds a half-filled frame and an object; checkpoint goes
	// to the next site in id order (site 2).
	victim := nodes[1]
	addr := victim.mem.Alloc(prog, []byte("precious"))
	fid := victim.mem.NewFrame(types.ThreadID{Program: prog, Index: 0}, 2, types.PriorityNormal, 0)
	if err := victim.mem.Send(wire.Target{Addr: fid, Slot: 0}, []byte("p0")); err != nil {
		t.Fatal(err)
	}
	victim.ckpt.CheckpointNow()

	holder := nodes[2]
	testnet.WaitFor(t, "checkpoint replicated", func() bool {
		return holder.ckpt.StoredFor(prog, victim.Bus.Self())
	})

	// Declare the victim crashed (as the heartbeat would).
	victimID := victim.Bus.Self()
	victim.Bus.Close()
	victim.Net.Close()
	nodes[0].CM.Remove(victimID, true)
	holder.CM.Remove(victimID, true)

	testnet.WaitFor(t, "state recovered", func() bool {
		return holder.mem.FrameCount() == 1 && holder.mem.ObjectCount() == 1
	})
	if holder.ckpt.Recovered() != 1 {
		t.Fatalf("Recovered = %d", holder.ckpt.Recovered())
	}

	// The recovered object must be readable from site 0 again.
	got, err := nodes[0].mem.Read(addr)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "precious" {
		t.Fatalf("recovered object = %q", got)
	}

	// Completing the recovered frame fires it on the holder.
	if err := nodes[0].mem.Send(wire.Target{Addr: fid, Slot: 1}, []byte("p1")); err != nil {
		t.Fatal(err)
	}
	testnet.WaitFor(t, "recovered frame fired", func() bool {
		return holder.sched.Stats().Enqueued == 1
	})
}

func TestCleanSignOffDropsCheckpoints(t *testing.T) {
	nodes := ckptCluster(t, 2, Config{})
	prog := registerProg(t, nodes, 0)
	nodes[0].mem.Alloc(prog, []byte("x"))
	nodes[0].ckpt.CheckpointNow()
	testnet.WaitFor(t, "replicated", func() bool {
		return nodes[1].ckpt.StoredFor(prog, nodes[0].Bus.Self())
	})
	// A clean sign-off relocated everything; stale checkpoints go.
	nodes[1].CM.Remove(nodes[0].Bus.Self(), false)
	if nodes[1].ckpt.StoredFor(prog, nodes[0].Bus.Self()) {
		t.Fatal("checkpoint survived clean sign-off")
	}
}

func TestDropProgramDiscardsCheckpoints(t *testing.T) {
	nodes := ckptCluster(t, 2, Config{})
	prog := registerProg(t, nodes, 0)
	nodes[0].mem.Alloc(prog, []byte("x"))
	nodes[0].ckpt.CheckpointNow()
	testnet.WaitFor(t, "replicated", func() bool {
		return nodes[1].ckpt.StoredFor(prog, nodes[0].Bus.Self())
	})
	nodes[1].ckpt.DropProgram(prog)
	if nodes[1].ckpt.StoredFor(prog, nodes[0].Bus.Self()) {
		t.Fatal("checkpoint survived DropProgram")
	}
}

func TestRecoverRequestProtocol(t *testing.T) {
	nodes := ckptCluster(t, 2, Config{})
	prog := registerProg(t, nodes, 0)
	nodes[0].mem.Alloc(prog, []byte("x"))
	nodes[0].ckpt.CheckpointNow()
	testnet.WaitFor(t, "replicated", func() bool {
		return nodes[1].ckpt.StoredFor(prog, nodes[0].Bus.Self())
	})

	reply, err := nodes[0].Bus.Request(nodes[1].Bus.Self(), types.MgrCheckpoint, types.MgrCheckpoint,
		&wire.RecoverRequest{Program: prog, Dead: nodes[0].Bus.Self()}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rr := reply.Payload.(*wire.RecoverReply)
	if !rr.Found || len(rr.Objects) != 1 {
		t.Fatalf("recover reply = %+v", rr)
	}

	// Unknown program: not found.
	reply, err = nodes[0].Bus.Request(nodes[1].Bus.Self(), types.MgrCheckpoint, types.MgrCheckpoint,
		&wire.RecoverRequest{Program: types.MakeProgramID(9, 9), Dead: nodes[0].Bus.Self()}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Payload.(*wire.RecoverReply).Found {
		t.Fatal("found a checkpoint for an unknown program")
	}
}

func TestNewerEpochWins(t *testing.T) {
	nodes := ckptCluster(t, 2, Config{})
	prog := registerProg(t, nodes, 0)
	nodes[0].mem.Alloc(prog, []byte("v1"))
	nodes[0].ckpt.CheckpointNow()
	testnet.WaitFor(t, "epoch 1", func() bool {
		return nodes[1].ckpt.StoredFor(prog, nodes[0].Bus.Self())
	})
	// Second checkpoint with more state.
	nodes[0].mem.Alloc(prog, []byte("v2"))
	nodes[0].ckpt.CheckpointNow()
	testnet.WaitFor(t, "epoch 2 replaces", func() bool {
		nodes[1].ckpt.mu.Lock()
		defer nodes[1].ckpt.mu.Unlock()
		cp := nodes[1].ckpt.store[storeKey{prog, nodes[0].Bus.Self()}]
		return cp != nil && len(cp.objects) == 2
	})
}

func TestReliableCoreViaCluster(t *testing.T) {
	// Build the cluster by hand so the reliable flag is present at
	// sign-on: node 0 bootstraps unreliable, node 1 joins unreliable,
	// node 2 joins reliable.
	fab := inproc.New(inproc.LinkProfile{})
	t.Cleanup(fab.Close)

	mk := func(name string, reliable bool) *ckptNode {
		cn := &ckptNode{}
		cfgC := cluster.Config{PhysAddr: name, Reliable: reliable}
		node := testnetNode(t, fab, name, cfgC)
		cn.Node = node
		cn.pm = program.New(node.Bus)
		cn.sched = sched.New(node.Bus, node.CM, noopResolver{}, sched.Config{})
		cn.mem = memory.New(node.Bus, cn.sched.Enqueue)
		cn.sched.SetAdopter(cn.mem)
		cn.ckpt = New(node.Bus, node.CM, cn.mem, cn.sched, cn.pm, Config{})
		cn.sched.Start()
		t.Cleanup(cn.ckpt.Close)
		t.Cleanup(cn.sched.Close)
		return cn
	}

	boot := mk("site-0", false)
	boot.CM.Bootstrap()
	peer := mk("site-1", false)
	if err := peer.CM.Join("site-0", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	core := mk("site-2", true)
	if err := core.CM.Join("site-0", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	nodes := []*ckptNode{boot, peer, core}
	testnet.WaitFor(t, "full lists", func() bool {
		for _, n := range nodes {
			if n.CM.Size() != 3 {
				return false
			}
		}
		return true
	})

	prog := registerProg(t, nodes, 0)
	// State on the two unsafe sites.
	boot.mem.Alloc(prog, []byte("a"))
	peer.mem.Alloc(prog, []byte("b"))
	boot.ckpt.CheckpointNow()
	peer.ckpt.CheckpointNow()

	coreID := core.Bus.Self()
	testnet.WaitFor(t, "checkpoints on the reliable core", func() bool {
		return core.ckpt.StoredFor(prog, boot.Bus.Self()) &&
			core.ckpt.StoredFor(prog, peer.Bus.Self())
	})
	// The unsafe peer must hold neither.
	if peer.ckpt.StoredFor(prog, boot.Bus.Self()) {
		t.Fatal("checkpoint landed on an unsafe site despite a reliable core")
	}
	_ = coreID
}

// testnetNode builds one testnet-style node with an explicit cluster
// config (the stock helper hardwires the default config).
func testnetNode(t *testing.T, fab *inproc.Fabric, name string, cfg cluster.Config) *testnet.Node {
	t.Helper()
	n := &testnet.Node{Name: name}
	fwd := &fwdResolver{}
	n.Net = netmgr.New(fab, security.Plaintext{}, func(d []byte) { n.Bus.OnDatagram(d) })
	n.Bus = msgbus.New(fwd, n.Net)
	n.CM = cluster.New(n.Bus, cfg)
	fwd.m = n.CM
	if _, err := n.Net.Listen(name); err != nil {
		t.Fatal(err)
	}
	n.Bus.Start()
	t.Cleanup(n.Close)
	return n
}

type fwdResolver struct{ m *cluster.Manager }

func (f *fwdResolver) PhysAddr(id types.SiteID) (string, error) { return f.m.PhysAddr(id) }
func (f *fwdResolver) SiteIDs() []types.SiteID                  { return f.m.SiteIDs() }
