// Package checkpoint implements the SDVM's crash management
// (paper §2.2, §6 and reference [4]: Haase/Eschmann, "Crash management
// for distributed parallel systems").
//
// Two cooperating mechanisms live here:
//
//   - Checkpointing: each site periodically snapshots the local state of
//     every running program — waiting microframes in the attraction
//     memory, queued frames in the scheduler, resident memory objects —
//     and replicates it to a checkpoint site.
//
//   - Crash detection: a heartbeat pings peers; a site that misses
//     several consecutive probes is declared crashed with a CrashNotice
//     broadcast. Sites holding checkpoints of the dead site's state then
//     restore it locally, re-entering the lost microframes into the
//     dataflow.
//
// Recovery is at-least-once: frames executed after the last checkpoint
// re-execute, and their (re-)sent results land on already-consumed
// microframes, where the attraction memory drops them. Applications
// therefore observe a correct final result, paid for with some duplicated
// work — the paper's "a recovery costs time and resources nonetheless".
package checkpoint

import (
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/memory"
	"repro/internal/metrics"
	"repro/internal/msgbus"
	"repro/internal/program"
	"repro/internal/sched"
	"repro/internal/types"
	"repro/internal/wire"
)

// Config parameterizes crash management.
type Config struct {
	// Interval between checkpoints; 0 disables checkpointing.
	Interval time.Duration
	// HeartbeatEvery is the probe period; 0 disables crash detection.
	HeartbeatEvery time.Duration
	// HeartbeatTimeout bounds one probe.
	HeartbeatTimeout time.Duration
	// MissLimit is how many consecutive missed probes declare a crash.
	MissLimit int
	// GossipMode bounds crash detection for large clusters: instead of
	// pinging every peer each period (O(N²) probes cluster-wide), each
	// site probes only its ring successors on the sorted roster, and a
	// declared crash is not broadcast — the local removal feeds the
	// gossip layer, whose tombstone disseminates in O(log N) rounds.
	GossipMode bool
}

// ringProbes is how many sorted-roster successors a site probes per
// heartbeat period in gossip mode. Three keeps every site covered by
// three independent detectors, so one slow prober doesn't stall
// detection, while cluster-wide probe traffic stays O(N).
const ringProbes = 3

// ackTimeout bounds the wait for a remote CheckpointAck; a missed ack
// only costs one interval — the next checkpoint supersedes the epoch.
const ackTimeout = time.Second

// stored is one replicated checkpoint: origin site's state for a program.
type stored struct {
	epoch   uint64
	frames  []*wire.Microframe
	objects []wire.MemObject
}

type storeKey struct {
	prog   types.ProgramID
	origin types.SiteID
}

// Manager is one site's crash manager.
type Manager struct {
	bus   *msgbus.Bus
	cm    *cluster.Manager
	mem   *memory.Manager
	sched *sched.Manager
	pm    *program.Manager
	cfg   Config

	mu     sync.Mutex
	store  map[storeKey]*stored
	epoch  uint64
	misses map[types.SiteID]int
	// maxSeen tracks the highest epoch ever received per store key.
	// The chaos invariant checker compares it against the stored epoch:
	// if they ever diverge, an older checkpoint overwrote a newer one —
	// a monotonicity violation that recovery would silently amplify.
	// Entries die with their store entry (a departed origin's next
	// incarnation starts a fresh epoch sequence). guarded by mu
	maxSeen map[storeKey]uint64

	recovered uint64 // programs restored after crashes
	taken     uint64 // checkpoints taken
	acked     uint64 // checkpoints confirmed stored by the remote site

	// met holds the metrics instruments. The zero value is inert; written
	// once by SetMetrics before Start.
	met ckptMetrics

	// accuse, when set (gossip mode), receives heartbeat crash verdicts
	// as suspicion instead of this manager removing the site directly.
	// Written once by SetAccuser before Start.
	accuse func(types.SiteID)

	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// New returns a crash manager registered for MgrCheckpoint. It hooks the
// cluster manager's OnLeave to trigger recovery for crashed sites.
func New(bus *msgbus.Bus, cm *cluster.Manager, mem *memory.Manager, s *sched.Manager, pm *program.Manager, cfg Config) *Manager {
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 500 * time.Millisecond
	}
	if cfg.MissLimit <= 0 {
		cfg.MissLimit = 3
	}
	m := &Manager{
		bus:     bus,
		cm:      cm,
		mem:     mem,
		sched:   s,
		pm:      pm,
		cfg:     cfg,
		store:   make(map[storeKey]*stored),
		maxSeen: make(map[storeKey]uint64),
		misses:  make(map[types.SiteID]int),
		done:    make(chan struct{}),
	}
	bus.Register(types.MgrCheckpoint, m)
	cm.OnLeave(func(id types.SiteID, crashed bool) {
		if crashed {
			go m.recover(id)
		} else {
			// A controlled sign-off relocated its state already; its
			// checkpoints here are stale.
			m.dropOrigin(id)
		}
	})
	return m
}

// Start launches the checkpoint and heartbeat loops.
func (m *Manager) Start() {
	if m.cfg.Interval > 0 {
		m.wg.Add(1)
		go m.checkpointLoop()
	}
	if m.cfg.HeartbeatEvery > 0 {
		m.wg.Add(1)
		go m.heartbeatLoop()
	}
}

// Close stops the loops.
func (m *Manager) Close() {
	m.once.Do(func() { close(m.done) })
	m.wg.Wait()
}

// Acked returns the number of checkpoints confirmed stored remotely.
func (m *Manager) Acked() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.acked
}

// Taken returns the number of checkpoints this site has taken.
func (m *Manager) Taken() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.taken
}

// Recovered returns the number of crash recoveries this site performed.
func (m *Manager) Recovered() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recovered
}

// Epoch returns this site's own checkpoint epoch counter (monotone by
// construction; exposed so the chaos invariant checker can observe it).
func (m *Manager) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// LedgerEntry describes one stored remote checkpoint alongside the
// highest epoch ever received for the same (program, origin) key.
type LedgerEntry struct {
	Program types.ProgramID
	Origin  types.SiteID
	Epoch   uint64 // epoch of the checkpoint currently stored
	MaxSeen uint64 // highest epoch ever received for this key
}

// StoreLedger snapshots the stored checkpoints with their high-water
// epochs. The chaos invariant "monotone checkpoint generations" asserts
// Epoch == MaxSeen for every entry: the replica never let an older
// generation overwrite a newer one.
func (m *Manager) StoreLedger() []LedgerEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]LedgerEntry, 0, len(m.store))
	for key, cp := range m.store {
		out = append(out, LedgerEntry{
			Program: key.prog,
			Origin:  key.origin,
			Epoch:   cp.epoch,
			MaxSeen: m.maxSeen[key],
		})
	}
	return out
}

// ckptMetrics bundles the crash manager's instruments; the zero value
// (nil pointers) disables collection.
type ckptMetrics struct {
	taken     *metrics.Counter
	acked     *metrics.Counter
	recovered *metrics.Counter
	stored    *metrics.Counter // checkpoints accepted from peers
}

// SetMetrics installs the instruments. Must be called before Start; a nil
// registry leaves metrics disabled.
func (m *Manager) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	m.met = ckptMetrics{
		taken:     reg.Counter("ckpt.taken"),
		acked:     reg.Counter("ckpt.acked"),
		recovered: reg.Counter("ckpt.recovered"),
		stored:    reg.Counter("ckpt.stored"),
	}
}

// SetAccuser routes heartbeat crash verdicts into the epidemic layer
// as suspicion (gossip.Manager.Accuse) instead of removing the site
// from the roster directly. Must be called before Start.
func (m *Manager) SetAccuser(fn func(types.SiteID)) { m.accuse = fn }

// SetGossipMode flips Config.GossipMode after construction: a joiner
// learns the cluster's dissemination mode only from the sign-on reply,
// after every manager has been wired. Must be called before Start.
func (m *Manager) SetGossipMode(on bool) { m.cfg.GossipMode = on }

// StoredFor reports whether this site holds a checkpoint of origin's
// state for prog (test/diagnostic hook).
func (m *Manager) StoredFor(prog types.ProgramID, origin types.SiteID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.store[storeKey{prog, origin}]
	return ok
}

// CheckpointNow takes and replicates a checkpoint of every running
// program immediately (also used by tests and before risky operations).
func (m *Manager) CheckpointNow() {
	for _, prog := range m.pm.Programs() {
		m.checkpointProgram(prog)
	}
}

func (m *Manager) checkpointLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			m.CheckpointNow()
		case <-m.done:
			return
		}
	}
}

// checkpointProgram snapshots local state of prog and ships it to the
// checkpoint site.
func (m *Manager) checkpointProgram(prog types.ProgramID) {
	frames, objects := m.mem.Snapshot(prog)
	frames = append(frames, m.sched.SnapshotFrames(prog)...)
	if len(frames) == 0 && len(objects) == 0 {
		return
	}
	dst := m.checkpointSite()
	if dst == types.InvalidSite {
		return // single-site cluster: nowhere to replicate
	}

	m.mu.Lock()
	m.epoch++
	epoch := m.epoch
	m.taken++
	m.mu.Unlock()
	m.met.taken.Inc()

	// Request, not Send: a checkpoint that never reached the replica is
	// worthless, so wait (bounded) for the CheckpointAck and count only
	// confirmed epochs. A timeout is tolerable — the next interval
	// re-ships a fresher snapshot anyway.
	reply, err := m.bus.Request(dst, types.MgrCheckpoint, types.MgrCheckpoint, &wire.CheckpointStore{
		Program: prog,
		Epoch:   epoch,
		Origin:  m.bus.Self(),
		Frames:  frames,
		Objects: objects,
	}, ackTimeout)
	if err != nil {
		return
	}
	if ack, ok := reply.Payload.(*wire.CheckpointAck); ok && ack.Program == prog && ack.Epoch == epoch {
		m.mu.Lock()
		m.acked++
		m.mu.Unlock()
		m.met.acked.Inc()
	}
}

// checkpointSite picks where this site's checkpoints go. Reliable-core
// sites (paper §2.2: "a core of reliable sites which each act as servers
// for a number of unsafe sites") are preferred — the next reliable site
// in id order after self; without a core, the next live site in id
// order. Deterministic, spreads load, never self.
func (m *Manager) checkpointSite() types.SiteID {
	self := m.bus.Self()
	if reliable := m.cm.ReliableSites(); len(reliable) > 0 {
		for _, id := range reliable {
			if id > self {
				return id
			}
		}
		if reliable[0] != self {
			return reliable[0]
		}
		if len(reliable) > 1 {
			return reliable[1]
		}
		// Self is the only reliable site; fall through to any peer.
	}
	sites := m.cm.SiteIDs()
	if len(sites) < 2 {
		return types.InvalidSite
	}
	for i, id := range sites {
		if id == self {
			return sites[(i+1)%len(sites)]
		}
	}
	return sites[0]
}

func (m *Manager) heartbeatLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.HeartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			m.probeAll()
		case <-m.done:
			return
		}
	}
}

// probeAll pings this period's probe set once, bumping miss counters on
// silence: every peer in legacy mode, the ring successors in gossip
// mode.
func (m *Manager) probeAll() {
	self := m.bus.Self()
	for _, id := range m.probeSet(self) {
		id := id
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			_, err := m.bus.Request(id, types.MgrCluster, types.MgrCheckpoint,
				&wire.Ping{Nonce: uint64(time.Now().UnixNano())}, m.cfg.HeartbeatTimeout)
			m.mu.Lock()
			if err != nil {
				m.misses[id]++
				missed := m.misses[id]
				m.mu.Unlock()
				if missed >= m.cfg.MissLimit {
					m.declareCrash(id)
				}
				return
			}
			delete(m.misses, id)
			m.mu.Unlock()
		}()
	}
}

// probeSet returns the peers to ping this period. Legacy mode probes
// the whole roster; gossip mode probes ringProbes successors of the
// local id on the sorted roster — every site is watched by its
// predecessors, and the tombstone a detector produces reaches the rest
// of the cluster epidemically.
func (m *Manager) probeSet(self types.SiteID) []types.SiteID {
	ids := m.cm.SiteIDs() // sorted, self included
	peers := ids[:0]
	for _, id := range ids {
		if id != self {
			peers = append(peers, id)
		}
	}
	if !m.cfg.GossipMode || len(peers) <= ringProbes {
		return peers
	}
	// First ringProbes ids after self in ring order.
	start := 0
	for start < len(peers) && peers[start] < self {
		start++
	}
	out := make([]types.SiteID, 0, ringProbes)
	for i := 0; i < ringProbes; i++ {
		out = append(out, peers[(start+i)%len(peers)])
	}
	return out
}

// declareCrash removes the site locally, which triggers recovery
// through the OnLeave hook. In legacy mode the death is broadcast as a
// CrashNotice first; in gossip mode the removal feeds the epidemic
// layer instead and the tombstone spreads from there.
func (m *Manager) declareCrash(dead types.SiteID) {
	m.mu.Lock()
	delete(m.misses, dead)
	m.mu.Unlock()
	if _, known := m.cm.Lookup(dead); !known {
		return // someone else already declared it
	}
	if m.accuse != nil {
		// Gossip mode: heartbeat evidence is only an accusation. A
		// falsely accused site refutes it epidemically (probes fail
		// routinely during join waves, when the target cannot yet route
		// its Pong back to a brand-new prober); a dead one ages to a
		// tombstone after DeadAfter rounds and is removed then.
		m.accuse(dead)
		return
	}
	if !m.cfg.GossipMode {
		_ = m.bus.Send(types.Broadcast, types.MgrCluster, types.MgrCheckpoint,
			&wire.CrashNotice{Dead: dead})
	}
	m.cm.Remove(dead, true)
}

// recover restores every checkpoint this site holds for the dead site.
func (m *Manager) recover(dead types.SiteID) {
	m.mu.Lock()
	var restores []*stored
	for key, cp := range m.store {
		if key.origin == dead {
			restores = append(restores, cp)
			delete(m.store, key)
			delete(m.maxSeen, key)
		}
	}
	if len(restores) > 0 {
		m.recovered += uint64(len(restores))
		m.met.recovered.Add(uint64(len(restores)))
	}
	m.mu.Unlock()

	for _, cp := range restores {
		m.mem.Restore(cp.frames, cp.objects)
	}
}

// dropOrigin discards checkpoints from a site that signed off cleanly.
func (m *Manager) dropOrigin(origin types.SiteID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for key := range m.store {
		if key.origin == origin {
			delete(m.store, key)
			delete(m.maxSeen, key)
		}
	}
}

// DropProgram discards stored checkpoints of a terminated program.
func (m *Manager) DropProgram(prog types.ProgramID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for key := range m.store {
		if key.prog == prog {
			delete(m.store, key)
			delete(m.maxSeen, key)
		}
	}
}

// HandleMessage implements msgbus.Handler.
func (m *Manager) HandleMessage(msg *wire.Message) {
	switch p := msg.Payload.(type) {
	case *wire.CheckpointStore:
		key := storeKey{p.Program, p.Origin}
		m.mu.Lock()
		if p.Epoch > m.maxSeen[key] {
			m.maxSeen[key] = p.Epoch
		}
		if cur, ok := m.store[key]; !ok || p.Epoch > cur.epoch {
			m.store[key] = &stored{epoch: p.Epoch, frames: p.Frames, objects: p.Objects}
		}
		m.mu.Unlock()
		m.met.stored.Inc()
		_ = m.bus.Reply(msg, types.MgrCheckpoint, &wire.CheckpointAck{Program: p.Program, Epoch: p.Epoch})
	case *wire.RecoverRequest:
		key := storeKey{p.Program, p.Dead}
		m.mu.Lock()
		cp, ok := m.store[key]
		m.mu.Unlock()
		reply := &wire.RecoverReply{}
		if ok {
			reply.Found = true
			reply.Epoch = cp.epoch
			reply.Frames = cp.frames
			reply.Objects = cp.objects
		}
		_ = m.bus.Reply(msg, types.MgrCheckpoint, reply)
	}
}
