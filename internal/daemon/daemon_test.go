package daemon_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/daemon"

	"repro/internal/checkpoint"
	"repro/internal/exec"
	"repro/internal/mthread"
	"repro/internal/security"
	"repro/internal/transport/inproc"
	"repro/internal/types"
	"repro/internal/workloads"
)

// testCluster spins up n daemons on a fresh fabric. mutate, if non-nil,
// can adjust each site's config before construction.
func testCluster(t testing.TB, n int, mutate func(i int, cfg *daemon.Config)) (*inproc.Fabric, []*daemon.Daemon) {
	t.Helper()
	fab := inproc.New(inproc.LinkProfile{})
	t.Cleanup(fab.Close)

	ds := make([]*daemon.Daemon, n)
	for i := 0; i < n; i++ {
		cfg := daemon.Config{
			PhysAddr:  fmt.Sprintf("site-%d", i),
			Network:   fab,
			WorkModel: exec.WorkSimulated,
			WorkUnit:  time.Millisecond,
			Seed:      int64(i + 1),
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		ds[i] = daemon.New(cfg)
		if i == 0 {
			if err := ds[0].Bootstrap(); err != nil {
				t.Fatal(err)
			}
		} else if err := ds[i].Join("site-0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ds[i].Kill)
	}
	return fab, ds
}

func checkPrimesResult(t testing.TB, raw []byte, p int) {
	t.Helper()
	primes := workloads.ParsePrimesResult(raw)
	if len(primes) != p {
		t.Fatalf("got %d primes, want %d", len(primes), p)
	}
	want := workloads.NthPrime(p)
	if primes[p-1] != want {
		t.Fatalf("p-th prime = %d, want %d", primes[p-1], want)
	}
	for i := 1; i < len(primes); i++ {
		if primes[i] <= primes[i-1] {
			t.Fatalf("primes out of order at %d: %v", i, primes[i-1:i+1])
		}
	}
}

func TestSingleSitePrimes(t *testing.T) {
	_, ds := testCluster(t, 1, nil)
	prog, err := ds[0].Submit(workloads.PrimesApp(), workloads.PrimesArgs(20, 5, 0)...)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := ds[0].WaitResult(prog, 30*time.Second)
	if !ok {
		t.Fatal("program did not terminate")
	}
	checkPrimesResult(t, raw, 20)
}

func TestFourSitePrimesDistributes(t *testing.T) {
	_, ds := testCluster(t, 4, nil)
	prog, err := ds[0].Submit(workloads.PrimesApp(), workloads.PrimesArgs(60, 12, 2)...)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := ds[0].WaitResult(prog, 60*time.Second)
	if !ok {
		t.Fatal("program did not terminate")
	}
	checkPrimesResult(t, raw, 60)

	// The decentralized scheduler must have spread real work: every
	// site should have executed at least one microthread.
	for i, d := range ds {
		if d.Exec.Executed() == 0 {
			t.Errorf("site %d executed nothing", i)
		}
	}
}

func TestResultDeliveredOnRemoteTermination(t *testing.T) {
	// The round that finds the last prime usually runs on a remote
	// site; the submitter must still observe the result.
	_, ds := testCluster(t, 3, nil)
	prog, err := ds[0].Submit(workloads.PrimesApp(), workloads.PrimesArgs(30, 10, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range ds {
		raw, ok := d.WaitResult(prog, 60*time.Second)
		if !ok {
			t.Fatalf("site %d did not observe termination", i)
		}
		if i == 0 {
			checkPrimesResult(t, raw, 30)
		}
	}
}

func TestFibTwoSites(t *testing.T) {
	_, ds := testCluster(t, 2, nil)
	prog, err := ds[0].Submit(workloads.FibApp(), workloads.FibArgs(12, 0.2)...)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := ds[0].WaitResult(prog, 60*time.Second)
	if !ok {
		t.Fatal("fib did not terminate")
	}
	if got := mthread.ParseU64(raw); got != 144 {
		t.Fatalf("fib(12) = %d, want 144", got)
	}
}

func TestMatMulThreeSites(t *testing.T) {
	_, ds := testCluster(t, 3, nil)
	n, grid := 24, 3
	prog, err := ds[0].Submit(workloads.MatMulApp(), workloads.MatMulArgs(n, grid, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := ds[0].WaitResult(prog, 60*time.Second)
	if !ok {
		t.Fatal("matmul did not terminate")
	}
	want := workloads.SeqMatMul(n, grid, 0, func(float64) {})
	got := mthread.ParseF64(raw)
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("checksum = %v, want %v", got, want)
	}
}

func TestMonteCarloMatchesSequential(t *testing.T) {
	_, ds := testCluster(t, 2, nil)
	prog, err := ds[0].Submit(workloads.PiApp(), workloads.PiArgs(8, 2000, 0.5, 42)...)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := ds[0].WaitResult(prog, 60*time.Second)
	if !ok {
		t.Fatal("pi did not terminate")
	}
	want := workloads.SeqPi(8, 2000, 0, 42, func(float64) {})
	if got := mthread.ParseF64(raw); got != want {
		t.Fatalf("pi = %v, want %v (deterministic sampling must agree)", got, want)
	}
}

func TestPipeline(t *testing.T) {
	_, ds := testCluster(t, 2, nil)
	items, stages := 6, 5
	prog, err := ds[0].Submit(workloads.PipeApp(), workloads.PipeArgs(items, stages, 0.5)...)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := ds[0].WaitResult(prog, 60*time.Second)
	if !ok {
		t.Fatal("pipeline did not terminate")
	}
	want := workloads.SeqPipeline(items, stages, 0, func(float64) {})
	if got := mthread.ParseU64(raw); got != want {
		t.Fatalf("pipeline checksum = %d, want %d", got, want)
	}
}

func TestMultiProgram(t *testing.T) {
	// "Multiple users can run programs uninfluenced" (goals 10/11).
	_, ds := testCluster(t, 3, nil)
	p1, err := ds[0].Submit(workloads.PrimesApp(), workloads.PrimesArgs(25, 5, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ds[1].Submit(workloads.FibApp(), workloads.FibArgs(10, 0.3)...)
	if err != nil {
		t.Fatal(err)
	}

	raw1, ok := ds[0].WaitResult(p1, 60*time.Second)
	if !ok {
		t.Fatal("primes did not terminate")
	}
	checkPrimesResult(t, raw1, 25)

	raw2, ok := ds[1].WaitResult(p2, 60*time.Second)
	if !ok {
		t.Fatal("fib did not terminate")
	}
	if got := mthread.ParseU64(raw2); got != 55 {
		t.Fatalf("fib(10) = %d, want 55", got)
	}
}

func TestDynamicJoinMidRun(t *testing.T) {
	// Paper §3.4: "new sites can be added at runtime, which will
	// quickly get work and then assist executing the running programs."
	fab, ds := testCluster(t, 2, nil)
	prog, err := ds[0].Submit(workloads.PrimesApp(), workloads.PrimesArgs(80, 16, 3)...)
	if err != nil {
		t.Fatal(err)
	}

	// Let the program get going, then add two more sites.
	time.Sleep(100 * time.Millisecond)
	late := make([]*daemon.Daemon, 2)
	for i := range late {
		cfg := daemon.Config{
			PhysAddr:  fmt.Sprintf("late-%d", i),
			Network:   fab,
			WorkModel: exec.WorkSimulated,
			WorkUnit:  time.Millisecond,
			Seed:      int64(100 + i),
		}
		late[i] = daemon.New(cfg)
		if err := late[i].Join("site-0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(late[i].Kill)
	}

	raw, ok := ds[0].WaitResult(prog, 90*time.Second)
	if !ok {
		t.Fatal("program did not terminate")
	}
	checkPrimesResult(t, raw, 80)

	// The latecomers must have been drafted into the computation.
	helped := late[0].Exec.Executed() + late[1].Exec.Executed()
	if helped == 0 {
		t.Error("late-joining sites never received work")
	}
}

func TestSignOffMidRun(t *testing.T) {
	// Paper §3.4: a site leaves, relocating microframes and memory;
	// the program finishes correctly without it.
	_, ds := testCluster(t, 3, nil)
	prog, err := ds[0].Submit(workloads.PrimesApp(), workloads.PrimesArgs(60, 12, 3)...)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	if err := ds[2].SignOff(); err != nil {
		t.Fatalf("sign-off: %v", err)
	}

	raw, ok := ds[0].WaitResult(prog, 90*time.Second)
	if !ok {
		t.Fatal("program did not terminate after sign-off")
	}
	checkPrimesResult(t, raw, 60)
}

func TestCrashRecovery(t *testing.T) {
	// Paper §2.2/§6: a crashed site's state is recovered from
	// checkpoints; the program still completes with a correct result.
	fab, ds := testCluster(t, 3, func(i int, cfg *daemon.Config) {
		cfg.Checkpoint = checkpoint.Config{
			Interval:         40 * time.Millisecond,
			HeartbeatEvery:   40 * time.Millisecond,
			HeartbeatTimeout: 100 * time.Millisecond,
			MissLimit:        3,
		}
	})
	prog, err := ds[0].Submit(workloads.PrimesApp(), workloads.PrimesArgs(60, 12, 4)...)
	if err != nil {
		t.Fatal(err)
	}

	// Let work spread and checkpoints happen, then crash site 2 hard.
	time.Sleep(300 * time.Millisecond)
	fab.KillSite("site-2")
	ds[2].Kill()

	raw, ok := ds[0].WaitResult(prog, 120*time.Second)
	if !ok {
		t.Fatal("program did not survive the crash")
	}
	checkPrimesResult(t, raw, 60)
}

func TestHeterogeneousPlatformsCompileOnTheFly(t *testing.T) {
	// Paper §3.4: sites of a platform unknown at submission receive
	// source and compile it on the fly, then publish the binary.
	_, ds := testCluster(t, 3, func(i int, cfg *daemon.Config) {
		cfg.Platform = types.PlatformID(i + 1) // all distinct
		cfg.CompileCost = time.Millisecond
	})
	prog, err := ds[0].Submit(workloads.PrimesApp(), workloads.PrimesArgs(40, 10, 2)...)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := ds[0].WaitResult(prog, 90*time.Second)
	if !ok {
		t.Fatal("program did not terminate")
	}
	checkPrimesResult(t, raw, 40)

	compiles := uint64(0)
	for _, d := range ds[1:] {
		compiles += d.Code.Stats().Compiles
	}
	if compiles == 0 {
		t.Error("no on-the-fly compilation happened on foreign platforms")
	}
}

func TestEncryptedCluster(t *testing.T) {
	// Paper §4, security manager: all traffic AES-sealed; the cluster
	// still computes correctly.
	mk := func() security.Layer {
		l, err := security.NewAESGCM("cluster-secret")
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	_, ds := testCluster(t, 2, func(i int, cfg *daemon.Config) { cfg.Security = mk() })
	prog, err := ds[0].Submit(workloads.PrimesApp(), workloads.PrimesArgs(25, 5, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := ds[0].WaitResult(prog, 60*time.Second)
	if !ok {
		t.Fatal("encrypted cluster did not terminate")
	}
	checkPrimesResult(t, raw, 25)
}

func TestFrontendOutputReachesSubmitter(t *testing.T) {
	_, ds := testCluster(t, 2, nil)
	app := workloads.PrimesApp()
	// Subscribe before submitting so no output is missed.
	prog := ds[0].PM.NewProgram()
	_ = prog // Submit creates its own id; subscribe after instead.
	progID, err := ds[0].Submit(app, workloads.PrimesArgs(15, 5, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	ch := ds[0].SubscribeOutput(progID)
	if _, ok := ds[0].WaitResult(progID, 60*time.Second); !ok {
		t.Fatal("did not terminate")
	}
	// At least the final "found N primes" line must have arrived (the
	// subscription raced program start but not the final round).
	select {
	case line, open := <-ch:
		if !open {
			t.Fatal("no output delivered before close")
		}
		if line == "" {
			t.Fatal("empty output line")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no frontend output")
	}
}

func TestProgramGCAfterTermination(t *testing.T) {
	_, ds := testCluster(t, 2, nil)
	prog, err := ds[0].Submit(workloads.PrimesApp(), workloads.PrimesArgs(20, 5, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ds[0].WaitResult(prog, 60*time.Second); !ok {
		t.Fatal("did not terminate")
	}
	// GC propagates asynchronously with termination broadcast.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		clean := true
		for _, d := range ds {
			if d.Mem.FrameCount() != 0 || d.Sched.QueueLen() != 0 {
				clean = false
			}
		}
		if clean {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i, d := range ds {
		t.Logf("site %d: frames=%d queue=%d", i, d.Mem.FrameCount(), d.Sched.QueueLen())
	}
	t.Fatal("program state not garbage-collected")
}

func TestCentralModeStillComputes(t *testing.T) {
	// A-5 baseline sanity: central scheduling completes correctly.
	_, ds := testCluster(t, 3, func(i int, cfg *daemon.Config) {
		cfg.LocalPolicy = types.SchedFIFO
	})
	// Reconfigure is construction-time; rebuild with central site 1.
	// (testCluster already built normal daemons; build a fresh cluster.)
	_ = ds
	fab2 := inproc.New(inproc.LinkProfile{})
	t.Cleanup(fab2.Close)
	central := make([]*daemon.Daemon, 3)
	for i := 0; i < 3; i++ {
		cfg := daemon.Config{
			PhysAddr:  fmt.Sprintf("c-%d", i),
			Network:   fab2,
			WorkModel: exec.WorkSimulated,
			WorkUnit:  time.Millisecond,
			Seed:      int64(i + 1),
		}
		cfg.CentralSched = true
		central[i] = daemon.New(cfg)
		if i == 0 {
			if err := central[0].Bootstrap(); err != nil {
				t.Fatal(err)
			}
		} else if err := central[i].Join("c-0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(central[i].Kill)
	}
	prog, err := central[0].Submit(workloads.PrimesApp(), workloads.PrimesArgs(30, 10, 2)...)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := central[0].WaitResult(prog, 90*time.Second)
	if !ok {
		t.Fatal("central-mode cluster did not terminate")
	}
	checkPrimesResult(t, raw, 30)
}

func TestStatusReflectsActivity(t *testing.T) {
	_, ds := testCluster(t, 1, nil)
	prog, err := ds[0].Submit(workloads.PrimesApp(), workloads.PrimesArgs(10, 5, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ds[0].WaitResult(prog, 60*time.Second); !ok {
		t.Fatal("did not terminate")
	}
	st := ds[0].Status()
	if st.Executed == 0 {
		t.Error("status shows no executions")
	}
	if st.Site.ID != ds[0].Self() {
		t.Error("status site mismatch")
	}
	if st.String() == "" {
		t.Error("empty status string")
	}
}
