package daemon_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/accounting"
	"repro/internal/daemon"
	"repro/internal/mthread"
	tracepkg "repro/internal/trace"
	"repro/internal/types"
	"repro/internal/wire"
	"repro/internal/workloads"
)

// Tests for the paper's proposed extensions: accounting (§2.2/§6),
// remote status queries (§4 site manager), and frontend input (§4 I/O
// manager).

func TestAccountingMetersARun(t *testing.T) {
	_, ds := testCluster(t, 3, nil)
	prog, err := ds[0].Submit(workloads.PrimesApp(), workloads.PrimesArgs(40, 10, 2)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ds[0].WaitResult(prog, 60*time.Second); !ok {
		t.Fatal("did not terminate")
	}

	total, perSite := ds[0].Acct.ClusterUsage(prog)
	if total.Executed == 0 {
		t.Fatal("no executions accounted")
	}
	// Every candidate test spends 2 Work units; rounds and start spend 0.
	// Pipelining overshoots at most a couple of batches past the find.
	if total.WorkUnits < 2*100 {
		t.Fatalf("WorkUnits = %v, implausibly low", total.WorkUnits)
	}
	if total.BusyNanos <= 0 {
		t.Fatal("no busy time accounted")
	}
	if total.MsgsSent == 0 || total.BytesMoved == 0 {
		t.Fatal("no parameter traffic accounted")
	}
	if len(perSite) != 3 {
		t.Fatalf("perSite = %d entries", len(perSite))
	}
	// The executed sum across sites must equal the total.
	var sum uint64
	for _, u := range perSite {
		sum += u.Executed
	}
	if sum != total.Executed {
		t.Fatalf("per-site sum %d != total %d", sum, total.Executed)
	}

	// And an invoice prices it.
	bill := accounting.Invoice(total, accounting.Rates{PerWorkUnit: 0.01, PerBusySecond: 1})
	if bill <= 0 {
		t.Fatal("zero invoice for real work")
	}
}

func TestRemoteStatusQuery(t *testing.T) {
	_, ds := testCluster(t, 2, nil)
	prog, err := ds[0].Submit(workloads.PrimesApp(), workloads.PrimesArgs(20, 5, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ds[0].WaitResult(prog, 60*time.Second); !ok {
		t.Fatal("did not terminate")
	}

	sr, err := ds[0].Site.QueryStatus(ds[1].Self())
	if err != nil {
		t.Fatal(err)
	}
	if sr.Site != ds[1].Self() {
		t.Fatalf("status from wrong site: %v", sr.Site)
	}
	if sr.UptimeNs <= 0 {
		t.Fatal("no uptime in remote status")
	}
	if sr.Executed != ds[1].Exec.Executed() {
		t.Fatalf("remote executed %d != local truth %d", sr.Executed, ds[1].Exec.Executed())
	}
}

func TestFrontendInputReachesRemoteMicrothread(t *testing.T) {
	mthread.Global.Register("inputtest.start", func(ctx mthread.Context) error {
		// Force the asking microthread onto a non-frontend site by
		// spawning a child that the scatter mechanism may move; the
		// Input path works identically either way, and the remote case
		// is covered by running the child on site 1 via direct push.
		line, ok := ctx.Input("what is the answer?")
		if !ok {
			ctx.Exit([]byte("no-input"))
			return nil
		}
		ctx.Exit([]byte("got:" + line))
		return nil
	})

	_, ds := testCluster(t, 2, nil)
	// The submitter's frontend answers input requests.
	ds[0].IO.SetInputProvider(func(prog types.ProgramID, prompt string) (string, bool) {
		if !strings.Contains(prompt, "answer") {
			t.Errorf("prompt = %q", prompt)
		}
		return "42", true
	})

	app := daemon.App{Name: "inputtest", Threads: []daemon.AppThread{
		{Index: 0, FuncName: "inputtest.start"},
	}}
	prog, err := ds[0].Submit(app)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := ds[0].WaitResult(prog, 30*time.Second)
	if !ok {
		t.Fatal("did not terminate")
	}
	if string(raw) != "got:42" {
		t.Fatalf("result = %q", raw)
	}
}

func TestFrontendInputWithoutProvider(t *testing.T) {
	mthread.Global.Register("inputtest.none", func(ctx mthread.Context) error {
		_, ok := ctx.Input("anyone?")
		if ok {
			ctx.Exit([]byte("unexpected"))
		} else {
			ctx.Exit([]byte("no-provider"))
		}
		return nil
	})
	_, ds := testCluster(t, 1, nil)
	app := daemon.App{Name: "inputtest2", Threads: []daemon.AppThread{
		{Index: 0, FuncName: "inputtest.none"},
	}}
	prog, err := ds[0].Submit(app)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := ds[0].WaitResult(prog, 30*time.Second)
	if !ok {
		t.Fatal("did not terminate")
	}
	if string(raw) != "no-provider" {
		t.Fatalf("result = %q", raw)
	}
}

func TestInputCrossSite(t *testing.T) {
	// Directly exercise the remote input path: site 1 asks for input of
	// a program whose frontend is site 0.
	_, ds := testCluster(t, 2, nil)
	prog := ds[0].PM.NewProgram()
	ds[0].IO.SetInputProvider(func(types.ProgramID, string) (string, bool) {
		return "remote-line", true
	})
	// Register the program cluster-wide so site 1 knows the frontend.
	ds[0].PM.Register(programRegister(prog, ds[0].Self()))
	deadline := time.Now().Add(5 * time.Second)
	for !ds[1].PM.Known(prog) {
		if time.Now().After(deadline) {
			t.Fatal("registration did not propagate")
		}
		time.Sleep(5 * time.Millisecond)
	}

	line, ok := ds[1].IO.Input(prog, "over the wire?")
	if !ok || line != "remote-line" {
		t.Fatalf("Input = (%q,%v)", line, ok)
	}
}

// programRegister builds a registration for tests.
func programRegister(prog types.ProgramID, home types.SiteID) wire.ProgramRegister {
	return wire.ProgramRegister{Program: prog, CodeHome: home, Frontend: home, Name: "t"}
}

func TestTracerRecordsFrameCareers(t *testing.T) {
	_, ds := testCluster(t, 2, func(i int, cfg *daemon.Config) {
		cfg.TraceCapacity = 8192
	})
	prog, err := ds[0].Submit(workloads.PrimesApp(), workloads.PrimesArgs(20, 5, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ds[0].WaitResult(prog, 60*time.Second); !ok {
		t.Fatal("did not terminate")
	}

	if ds[0].Trace.Total() == 0 {
		t.Fatal("tracer recorded nothing")
	}
	// Find a frame that was granted away and verify its merged career
	// crosses sites in a sane order: created somewhere, received on the
	// other site, executed there.
	var granted *tracepkg.Event
	for _, e := range ds[0].Trace.Events() {
		if e.Kind == tracepkg.EvGranted {
			e := e
			granted = &e
			break
		}
	}
	if granted == nil {
		t.Skip("no frame migrated in this run")
	}
	career := tracepkg.MergeCareers(granted.Frame, ds[0].Trace, ds[1].Trace)
	if len(career) < 2 {
		t.Fatalf("career too short: %v", career)
	}
	// The career must contain an execution event exactly once.
	executions := 0
	for _, e := range career {
		if e.Kind == tracepkg.EvExecuted {
			executions++
		}
	}
	if executions != 1 {
		t.Fatalf("frame executed %d times according to the trace", executions)
	}
}
