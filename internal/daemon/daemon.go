// Package daemon assembles the SDVM managers into one site daemon — the
// process "to be run on every participating machine" (paper §4, Figure 3).
//
// The daemon owns the manager stack in the paper's layering:
//
//	execution layer:     processing, scheduling, code, attraction memory, I/O
//	maintenance layer:   cluster, program, site, crash management
//	communication layer: message (bus), security, network
//
// and the lifecycle: bootstrap or sign-on at start, application
// submission, controlled sign-off or abrupt kill (for crash experiments).
package daemon

import (
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/accounting"
	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/code"
	"repro/internal/exec"
	"repro/internal/gossip"
	"repro/internal/iomgr"
	"repro/internal/memory"
	"repro/internal/metrics"
	"repro/internal/msgbus"
	"repro/internal/mthread"
	"repro/internal/netmgr"
	"repro/internal/program"
	"repro/internal/sched"
	"repro/internal/security"
	"repro/internal/sitemgr"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wire"
)

// Config assembles a site daemon.
type Config struct {
	// PhysAddr is the network listen address ("host:port" for tcp,
	// any unique name for inproc).
	PhysAddr string
	// Network carries the datagrams (tcp or inproc).
	Network transport.Network
	// Security seals inter-site traffic; nil means plaintext.
	Security security.Layer

	// Platform is the site's simulated platform id.
	Platform types.PlatformID
	// Speed is the relative processing speed (1.0 = reference).
	Speed float64
	// Reliable marks the site as part of the reliable core
	// (paper §2.2): peers prefer it for checkpoint storage.
	Reliable bool
	// Window is the processing manager's latency-hiding window.
	Window int
	// WorkModel selects real or simulated computation.
	WorkModel exec.WorkModel
	// WorkUnit is the wall-clock span of Work(1.0) at speed 1.0.
	WorkUnit time.Duration
	// CompileCost simulates on-the-fly compilation of one microthread.
	CompileCost time.Duration
	// IDStrategy picks the logical-id allocation concept.
	IDStrategy cluster.Strategy
	// LocalPolicy / HelpPolicy configure the scheduling manager
	// (paper defaults: FIFO locally, LIFO for help replies).
	LocalPolicy types.SchedulingClass
	HelpPolicy  types.SchedulingClass
	// CentralSched switches the site into the central-scheduling
	// baseline (A-5 ablation): the cluster's bootstrap site becomes the
	// single master queue all frames and help requests funnel through.
	CentralSched bool
	// Checkpoint configures crash management; zero disables it.
	Checkpoint checkpoint.Config
	// Gossip replaces broadcast membership and load dissemination with
	// the epidemic layer (internal/gossip): load vectors and sign-off
	// tombstones travel in bounded per-tick digests, help requests are
	// aimed by power-of-two-choices over the gossiped load table, and
	// crash probing shrinks to the heartbeat ring. Broadcast mode
	// remains the default for small (≤4 site) clusters and tests.
	Gossip bool
	// GossipFanout is how many peers receive a digest per statistics
	// tick (0 = gossip default).
	GossipFanout int
	// LoadReportEvery is the site manager's statistics period.
	LoadReportEvery time.Duration
	// NoReadReplication disables COMA read replication (A-6 ablation).
	NoReadReplication bool
	// Coalesce enables per-peer small-message batching in the network
	// manager: several datagrams to one peer travel in one sealed
	// envelope. Liveness probes bypass the queue.
	Coalesce bool
	// HelpBatch caps how many frames one help reply may grant (0 =
	// scheduler default; 1 restores single-frame grants).
	HelpBatch int
	// NoCriticalPinning disables the critical-path scheduling hints
	// (A-7 ablation).
	NoCriticalPinning bool
	// RestartGrace is the submitter-side last-resort recovery: if a
	// crash was declared and a locally submitted program has not
	// terminated this long afterwards, its entry frame is re-fired.
	// Checkpoints plus sender-side logs recover most crashes without
	// it, but a frame chain created and consumed entirely on the dead
	// site between two checkpoints is unrecoverable from logs alone
	// (the classic orphan problem of uncoordinated checkpointing);
	// deterministic re-execution from the root closes that hole.
	// 0 = default (5s); negative = disabled.
	RestartGrace time.Duration
	// TraceCapacity enables the event tracer with a ring of this many
	// events per site (0 = tracing off). The tracer records the career
	// of every microframe (paper Figures 4/5).
	TraceCapacity int
	// Metrics enables the per-daemon metrics registry (counters, gauges,
	// latency histograms across every manager). Off by default: a site
	// without a registry pays only a nil check per event.
	Metrics bool
	// MetricsAddr optionally serves the registry as expvar-style JSON
	// over HTTP ("host:port"). A non-empty address implies Metrics.
	MetricsAddr string
	// Registry resolves microthread names; nil means mthread.Global.
	Registry *mthread.Registry
	// Seed makes scheduling tie-breaks deterministic in tests.
	Seed int64
}

// Daemon is one running SDVM site.
type Daemon struct {
	cfg Config

	Net   *netmgr.Manager
	Bus   *msgbus.Bus
	CM    *cluster.Manager
	PM    *program.Manager
	Code  *code.Manager
	Sched *sched.Manager
	Mem   *memory.Manager
	IO    *iomgr.Manager
	Exec  *exec.Manager
	Site  *sitemgr.Manager
	Ckpt  *checkpoint.Manager
	Acct  *accounting.Manager
	// Gossip is the epidemic membership layer; nil unless Config.Gossip.
	Gossip *gossip.Manager
	Trace  *trace.Tracer
	// Metrics is the site's registry; nil unless Config.Metrics (or
	// MetricsAddr) enabled it.
	Metrics *metrics.Registry

	// metricsSrv serves the registry over HTTP when MetricsAddr is set.
	metricsSrv *http.Server

	mu          sync.Mutex
	outSubs     map[types.ProgramID][]chan string
	submissions map[types.ProgramID]submission
	started     bool
	stopped     bool
}

// submission remembers what Submit installed, for restart recovery.
type submission struct {
	app  App
	args [][]byte
}

type busResolver struct{ cm *cluster.Manager }

func (r *busResolver) PhysAddr(id types.SiteID) (string, error) { return r.cm.PhysAddr(id) }
func (r *busResolver) SiteIDs() []types.SiteID                  { return r.cm.SiteIDs() }

// siteSeed derives the per-site RNG seed for retry jitter (memory
// fetches, help-request polls). An explicit cfg.Seed wins so chaos and
// ablation runs are reproducible; otherwise the listen address is hashed
// so distinct sites never share a jitter stream by accident.
func siteSeed(cfg Config) int64 {
	if cfg.Seed != 0 {
		return cfg.Seed
	}
	h := fnv.New64a()
	h.Write([]byte(cfg.PhysAddr))
	seed := int64(h.Sum64())
	if seed == 0 {
		seed = 1
	}
	return seed
}

// New wires a daemon; Start (or Bootstrap/Join) brings it onto the
// network.
func New(cfg Config) *Daemon {
	if cfg.Security == nil {
		cfg.Security = security.Plaintext{}
	}
	if cfg.Speed <= 0 {
		cfg.Speed = 1.0
	}
	if cfg.Registry == nil {
		cfg.Registry = mthread.Global
	}

	if cfg.RestartGrace == 0 {
		cfg.RestartGrace = 5 * time.Second
	}
	d := &Daemon{
		cfg:         cfg,
		outSubs:     make(map[types.ProgramID][]chan string),
		submissions: make(map[types.ProgramID]submission),
	}

	if cfg.Metrics || cfg.MetricsAddr != "" {
		d.Metrics = metrics.NewRegistry()
	}

	resolver := &busResolver{}
	d.Net = netmgr.New(cfg.Network, cfg.Security, func(datagram []byte) { d.Bus.OnDatagram(datagram) })
	if cfg.Coalesce {
		d.Net.SetCoalescing(netmgr.Coalesce{Enabled: true})
	}
	d.Bus = msgbus.New(resolver, d.Net)
	d.Net.SetMetrics(d.Metrics)
	d.Bus.SetMetrics(d.Metrics)
	d.CM = cluster.New(d.Bus, cluster.Config{
		PhysAddr: cfg.PhysAddr,
		Platform: cfg.Platform,
		Speed:    cfg.Speed,
		Strategy: cfg.IDStrategy,
		Reliable: cfg.Reliable,
		Seed:     cfg.Seed,
	})
	resolver.cm = d.CM

	d.PM = program.New(d.Bus)
	d.Code = code.New(d.Bus, d.CM, code.Config{
		Platform:    cfg.Platform,
		CompileCost: cfg.CompileCost,
		Registry:    cfg.Registry,
	})
	d.Code.SetCodeHomeFn(d.PM.CodeHome)

	schedCfg := sched.Config{
		LocalPolicy:       cfg.LocalPolicy,
		HelpPolicy:        cfg.HelpPolicy,
		NoCriticalPinning: cfg.NoCriticalPinning,
		HelpBatch:         cfg.HelpBatch,
		Seed:              siteSeed(cfg),
	}
	if cfg.CentralSched {
		schedCfg.CentralSite = cluster.BootstrapID
	}
	d.Sched = sched.New(d.Bus, d.CM, d.Code, schedCfg)
	d.Mem = memory.New(d.Bus, d.Sched.Enqueue)
	d.Mem.SetSeed(siteSeed(cfg))
	if cfg.NoReadReplication {
		d.Mem.SetReadReplication(false)
	}
	d.Sched.SetAdopter(d.Mem)
	d.Sched.SetProgramHooks(d.PM.Known, d.PM.EnsureKnown)

	d.IO = iomgr.New(d.Bus)
	d.IO.SetFrontendSite(d.PM.Frontend)
	d.IO.SetSink(d.deliverOutput)

	d.Exec = exec.New(d.Sched, d.Mem, d.Bus.Self, d.IO.Output, d.exitProgram, exec.Config{
		Window:   cfg.Window,
		Model:    cfg.WorkModel,
		WorkUnit: cfg.WorkUnit,
		Speed:    cfg.Speed,
	})
	d.Site = sitemgr.New(d.Bus, d.CM, d.Sched, d.Exec, d.Mem, d.IO, d.PM,
		cfg.LoadReportEvery, cfg.Window)

	d.Ckpt = checkpoint.New(d.Bus, d.CM, d.Mem, d.Sched, d.PM, cfg.Checkpoint)
	if cfg.Gossip {
		d.enableGossip()
	}

	if cfg.TraceCapacity > 0 {
		d.Trace = trace.New(cfg.TraceCapacity, d.Bus.Self)
		d.Mem.SetTracer(d.Trace)
		d.Sched.SetTracer(d.Trace)
		d.Exec.SetTracer(d.Trace)
	}

	// Metrics wiring mirrors the tracer: every manager receives the same
	// per-daemon registry (a nil registry disables collection everywhere).
	d.Sched.SetMetrics(d.Metrics)
	d.Mem.SetMetrics(d.Metrics)
	d.Exec.SetMetrics(d.Metrics)
	d.Ckpt.SetMetrics(d.Metrics)
	d.Site.SetMetrics(d.Metrics)

	// Accounting (paper §2.2/§6): meter execution, Work, parameter
	// traffic, and frontend output per program.
	d.Acct = accounting.New(d.Bus, d.CM)
	d.Exec.SetAccountant(d.Acct.RecordExecution2)
	d.Exec.SetInput(d.IO.Input)
	d.Mem.SetTrafficHook(d.Acct.RecordTraffic)
	d.IO.SetOutputHook(d.Acct.RecordOutput)

	// Crash-recovery replay: when a peer is declared crashed, replay the
	// sender-side logs for programs still running ([4]), and arm the
	// submitter-side restart watchdog for locally submitted programs.
	d.CM.OnLeave(func(id types.SiteID, crashed bool) {
		if !crashed {
			// Graceful sign-off still severs coherence ties: replicas the
			// leaver served move with evacuation, not with the leaver's
			// identity, and its copyset entries would stall future
			// writes' invalidation round-trips. (OnSiteCrashed does the
			// same purge itself on the crash path.)
			d.Mem.DropSiteReplicas(id)
			return
		}
		go d.Mem.OnSiteCrashed(id, func(p types.ProgramID) bool {
			return !d.PM.Terminated(p)
		})
		if d.cfg.RestartGrace > 0 {
			d.armRestartWatchdogs()
		}
	})

	// Program termination GC: every manager drops the dead program.
	d.PM.OnTerminate(func(prog types.ProgramID, result []byte) {
		d.mu.Lock()
		delete(d.submissions, prog)
		d.mu.Unlock()
		d.Sched.DropProgram(prog)
		d.Mem.DropProgram(prog)
		d.Code.DropProgram(prog)
		d.Ckpt.DropProgram(prog)
		d.closeOutputSubs(prog)
	})

	return d
}

// enableGossip wires the epidemic membership layer into every manager:
// bounded digests replace the LoadReport / SignOffNotice / SiteAnnounce
// broadcasts, help requests are aimed by power-of-two-choices over the
// gossiped load table, and the heartbeat probes only the ring
// successors. Called during construction when the configuration asks for
// gossip, or right after Join when the sign-on reply reports a
// gossip-mode cluster; must run before the manager loops start.
func (d *Daemon) enableGossip() {
	if d.Gossip != nil {
		return
	}
	// The seed is decorrelated from the scheduler's so the two random
	// streams never walk in lockstep.
	d.Gossip = gossip.New(d.Bus, d.CM, gossip.Config{
		Fanout: d.cfg.GossipFanout,
		Seed:   siteSeed(d.cfg) ^ 0x676f7373, // "goss"
	})
	d.CM.SetGossipMode(true)
	d.CM.OnJoin(d.Gossip.AddSite)
	d.CM.OnLeave(d.Gossip.MarkGone)
	d.Site.SetGossip(d.Gossip)
	d.Sched.SetHelpTargeter(d.Gossip)
	d.Ckpt.SetGossipMode(true)
	d.Ckpt.SetAccuser(d.Gossip.Accuse)
}

// disableGossip reverts to broadcast mode when the sign-on reply reports
// a broadcast cluster: a digest-emitting minority would talk past its
// peers (sites without the layer drop MgrGossip traffic) while its own
// load reports stopped flowing. The roster hooks stay registered — they
// feed the orphaned row table, which never transmits.
func (d *Daemon) disableGossip() {
	if d.Gossip == nil {
		return
	}
	d.Site.SetGossip(nil)
	d.Sched.SetHelpTargeter(nil)
	d.Ckpt.SetGossipMode(false)
	d.Ckpt.SetAccuser(nil)
	d.Gossip = nil
}

// listenAndRun binds the network and starts every manager loop.
func (d *Daemon) listenAndRun() error {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return fmt.Errorf("daemon: already started")
	}
	d.started = true
	d.mu.Unlock()

	addr, err := d.Net.Listen(d.cfg.PhysAddr)
	if err != nil {
		return fmt.Errorf("daemon: listen: %w", err)
	}
	// TCP ":0"-style requests resolve to a concrete port only now; the
	// cluster list must carry the reachable address.
	d.CM.SetPhysAddr(addr)
	d.Bus.Start()
	if d.cfg.MetricsAddr != "" {
		if err := d.serveMetrics(d.cfg.MetricsAddr); err != nil {
			d.Bus.Close()
			d.Net.Close()
			return err
		}
	}
	return nil
}

// serveMetrics exposes the registry as JSON over HTTP, for scraping a
// live daemon without going through the bus.
func (d *Daemon) serveMetrics(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("daemon: metrics listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler(d.Metrics))
	d.metricsSrv = &http.Server{Handler: mux}
	go func() { _ = d.metricsSrv.Serve(ln) }()
	return nil
}

// closeMetricsSrv stops the HTTP endpoint, if one was started.
func (d *Daemon) closeMetricsSrv() {
	if d.metricsSrv != nil {
		_ = d.metricsSrv.Close()
	}
}

// Bootstrap starts this daemon as the first site of a new cluster.
func (d *Daemon) Bootstrap() error {
	if err := d.listenAndRun(); err != nil {
		return err
	}
	d.CM.Bootstrap()
	d.runExecution()
	return nil
}

// Join starts this daemon and signs on via a known site's address.
func (d *Daemon) Join(contactAddr string) error {
	if err := d.listenAndRun(); err != nil {
		return err
	}
	if err := d.CM.Join(contactAddr, 10*time.Second); err != nil {
		d.Net.Close()
		return err
	}
	// The sign-on reply carried the cluster's dissemination mode, which
	// overrules the local flag: gossip only works cluster-wide, so a
	// joiner adopts whatever the cluster runs. This also covers thin
	// observer sites (sdvmstat) that join with default options — in a
	// gossip cluster they must announce themselves epidemically or peers
	// could never route replies back to them.
	if d.CM.GossipMode() {
		d.enableGossip()
	} else {
		d.disableGossip()
	}
	d.runExecution()
	return nil
}

func (d *Daemon) runExecution() {
	if d.Gossip != nil {
		// The local id and the sign-on roster snapshot exist now;
		// gossip seeds its row table from them and starts announcing
		// this site with the next statistics tick.
		d.Gossip.Start()
	}
	d.Sched.Start()
	d.Exec.Start()
	d.Site.Start()
	d.Ckpt.Start()
}

// Self returns this site's logical id.
func (d *Daemon) Self() types.SiteID { return d.Bus.Self() }

// Status snapshots the local managers.
func (d *Daemon) Status() sitemgr.Status { return d.Site.Status() }

// ---------------------------------------------------------------------------
// Application submission.

// AppThread describes one microthread of an application.
type AppThread struct {
	// Index is the thread's stable index within the program.
	Index uint32
	// FuncName is the registry name of the implementation.
	FuncName string
	// SrcSize models the source artifact size in bytes (0 = small).
	SrcSize int
}

// App describes a submittable application.
type App struct {
	// Name labels the program.
	Name string
	// Threads lists every microthread. Thread 0 is the entry point.
	Threads []AppThread
}

// Submit installs app's code on this site (making it the program's code
// home), registers the program cluster-wide, and fires the entry frame
// with the given arguments. It returns the program id.
func (d *Daemon) Submit(app App, args ...[]byte) (types.ProgramID, error) {
	if len(app.Threads) == 0 {
		return 0, fmt.Errorf("daemon: app %q has no microthreads", app.Name)
	}
	prog := d.PM.NewProgram()
	for _, t := range app.Threads {
		tid := types.ThreadID{Program: prog, Index: t.Index}
		d.Code.InstallSource(tid, t.FuncName, t.SrcSize)
	}
	// The submitting site is the code home, the frontend, and (paper §4)
	// implicitly a code distribution site.
	d.CM.SetCodeDist(true)
	d.PM.Register(wire.ProgramRegister{
		Program:  prog,
		CodeHome: d.Bus.Self(),
		Frontend: d.Bus.Self(),
		Name:     app.Name,
	})

	d.mu.Lock()
	d.submissions[prog] = submission{app: app, args: args}
	d.mu.Unlock()

	if err := d.fireEntry(prog, app, args); err != nil {
		return prog, err
	}
	return prog, nil
}

// fireEntry creates and feeds the program's entry frame.
func (d *Daemon) fireEntry(prog types.ProgramID, app App, args [][]byte) error {
	entry := types.ThreadID{Program: prog, Index: app.Threads[0].Index}
	frameID := d.Mem.NewFrame(entry, len(args), types.PriorityNormal, 0)
	for i, arg := range args {
		if err := d.Mem.Send(wire.Target{Addr: frameID, Slot: int32(i)}, arg); err != nil {
			return fmt.Errorf("daemon: submit arg %d: %w", i, err)
		}
	}
	return nil
}

// armRestartWatchdogs schedules the last-resort restart for every
// locally submitted program that is still running after a crash.
func (d *Daemon) armRestartWatchdogs() {
	d.mu.Lock()
	progs := make(map[types.ProgramID]submission, len(d.submissions))
	for prog, sub := range d.submissions {
		progs[prog] = sub
	}
	grace := d.cfg.RestartGrace
	d.mu.Unlock()

	for prog, sub := range progs {
		if d.PM.Terminated(prog) {
			continue
		}
		prog, sub := prog, sub
		time.AfterFunc(grace, func() {
			d.mu.Lock()
			stopped := d.stopped
			d.mu.Unlock()
			if stopped || d.PM.Terminated(prog) {
				return
			}
			// Deterministic re-execution from the root: stale results
			// land on consumed frames and are dropped; the first Exit
			// wins either way.
			d.IO.Output(prog, "sdvm: crash recovery stalled; re-executing from the entry frame")
			_ = d.fireEntry(prog, sub.app, sub.args)
		})
	}
}

// WaitResult blocks until prog terminates and returns its result.
func (d *Daemon) WaitResult(prog types.ProgramID, timeout time.Duration) ([]byte, bool) {
	return d.PM.WaitResult(prog, timeout)
}

// SubscribeOutput returns a channel of the program's frontend output
// (only useful on the program's frontend site). The channel closes when
// the program terminates.
func (d *Daemon) SubscribeOutput(prog types.ProgramID) <-chan string {
	ch := make(chan string, 256)
	d.mu.Lock()
	d.outSubs[prog] = append(d.outSubs[prog], ch)
	d.mu.Unlock()
	return ch
}

func (d *Daemon) deliverOutput(prog types.ProgramID, text string) {
	d.mu.Lock()
	subs := append([]chan string{}, d.outSubs[prog]...)
	d.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- text:
		default: // slow consumer: drop rather than stall the cluster
		}
	}
}

func (d *Daemon) closeOutputSubs(prog types.ProgramID) {
	d.mu.Lock()
	subs := d.outSubs[prog]
	delete(d.outSubs, prog)
	d.mu.Unlock()
	for _, ch := range subs {
		close(ch)
	}
}

func (d *Daemon) exitProgram(prog types.ProgramID, result []byte) {
	d.PM.Terminate(prog, result)
}

// ---------------------------------------------------------------------------
// Lifecycle end.

// SignOff leaves the cluster in a controlled manner (paper §3.4): all
// local state is relocated before the daemon goes away.
func (d *Daemon) SignOff() error {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return nil
	}
	d.stopped = true
	d.mu.Unlock()

	d.closeMetricsSrv()
	d.Ckpt.Close()
	peers := d.CM.SiteIDs() // capture before SignOff empties the roster
	err := d.Site.SignOff()
	if d.Gossip != nil {
		// O(fanout) flush: only the farewell burst targets and the
		// sign-off successor (which just received our queue and memory)
		// saw traffic that must land before teardown; the tombstone
		// reaches everyone else epidemically.
		peers = append(d.Gossip.BurstPeers(), d.Site.Successor())
	}
	// Flush the goodbye before cutting links: a Ping/Pong round-trip
	// per peer proves (FIFO per connection, FIFO bus inbox) that
	// everything sent earlier has been dispatched there.
	d.flushPeers(peers)
	d.Mem.Close()
	d.Bus.Close()
	d.Net.Close()
	return err
}

// flushPeers performs a bounded Ping round-trip to every given peer and
// reports how many answered. Both transports deliver in order per
// connection and the bus inbox preserves arrival order, so a matching
// Pong guarantees the peer has already dispatched every message this
// site sent before the Ping — the sign-off broadcast included. An
// unreachable or garbled peer is skipped: it gets the goodbye (or a
// crash declaration) through the normal paths.
func (d *Daemon) flushPeers(peers []types.SiteID) int {
	self := d.Bus.Self()
	flushed := 0
	for i, id := range peers {
		if id == self || !id.Valid() {
			continue
		}
		nonce := uint64(i) + 1
		reply, err := d.Bus.Request(id, types.MgrCluster, types.MgrCluster,
			&wire.Ping{Nonce: nonce}, 250*time.Millisecond)
		if err != nil {
			continue
		}
		if pong, ok := reply.Payload.(*wire.Pong); ok && pong.Nonce == nonce {
			flushed++
		}
	}
	return flushed
}

// Kill stops the daemon abruptly — no relocation, no goodbye — to
// emulate a crash for the recovery experiments.
func (d *Daemon) Kill() {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return
	}
	d.stopped = true
	d.mu.Unlock()

	d.closeMetricsSrv()
	d.Net.Close()
	d.Bus.Close()
	d.Mem.Close()
	d.Sched.Close()
	d.Exec.Wait()
	d.Site.Close()
	d.Ckpt.Close()
	d.IO.CloseAll()
}
