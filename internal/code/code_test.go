package code

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mthread"
	"repro/internal/testnet"
	"repro/internal/types"
)

// codeCluster builds n sites each with a code manager; site i gets
// platform platforms[i] (or 1 if platforms is nil).
func codeCluster(t *testing.T, n int, platforms []types.PlatformID, compileCost time.Duration) ([]*testnet.Node, []*Manager, *mthread.Registry) {
	t.Helper()
	reg := mthread.NewRegistry()
	mgrs := make([]*Manager, n)
	nodes := testnet.NewCluster(t, n, func(i int, node *testnet.Node) {
		plat := types.PlatformID(1)
		if platforms != nil {
			plat = platforms[i]
		}
		mgrs[i] = New(node.Bus, node.CM, Config{
			Platform:    plat,
			CompileCost: compileCost,
			Registry:    reg,
		})
	})
	return nodes, mgrs, reg
}

func testThread() types.ThreadID {
	return types.ThreadID{Program: types.MakeProgramID(1, 1), Index: 0}
}

func TestResolveLocal(t *testing.T) {
	_, mgrs, reg := codeCluster(t, 1, nil, 0)
	var ran atomic.Bool
	reg.Register("t.f", func(mthread.Context) error { ran.Store(true); return nil })
	mgrs[0].InstallSource(testThread(), "t.f", 100)

	fn, err := mgrs[0].Resolve(testThread())
	if err != nil {
		t.Fatal(err)
	}
	if err := fn(nil); err != nil || !ran.Load() {
		t.Fatal("wrong function resolved")
	}
	if s := mgrs[0].Stats(); s.LocalHits != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if !mgrs[0].Has(testThread()) {
		t.Fatal("Has = false after install")
	}
}

func TestResolveRemoteBinarySamePlatform(t *testing.T) {
	_, mgrs, reg := codeCluster(t, 2, nil, 0)
	reg.Register("t.f", func(mthread.Context) error { return nil })
	mgrs[0].InstallSource(testThread(), "t.f", 100)

	if mgrs[1].Has(testThread()) {
		t.Fatal("site 1 has the binary before requesting")
	}
	if _, err := mgrs[1].Resolve(testThread()); err != nil {
		t.Fatal(err)
	}
	if !mgrs[1].Has(testThread()) {
		t.Fatal("binary not cached after remote fetch")
	}
	s := mgrs[1].Stats()
	if s.RemoteBinary != 1 || s.Compiles != 0 {
		t.Fatalf("stats = %+v (want a binary fetch, no compile)", s)
	}
	// Second resolve is a local hit.
	if _, err := mgrs[1].Resolve(testThread()); err != nil {
		t.Fatal(err)
	}
	if s := mgrs[1].Stats(); s.LocalHits != 1 {
		t.Fatalf("stats after second resolve = %+v", s)
	}
}

func TestResolveForeignPlatformCompiles(t *testing.T) {
	// Site 1 has a different platform: it must receive source and
	// compile on the fly (paper §3.4).
	_, mgrs, reg := codeCluster(t, 2, []types.PlatformID{1, 2}, 5*time.Millisecond)
	reg.Register("t.f", func(mthread.Context) error { return nil })
	mgrs[0].InstallSource(testThread(), "t.f", 100)

	start := time.Now()
	if _, err := mgrs[1].Resolve(testThread()); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Error("compile cost not applied")
	}
	s := mgrs[1].Stats()
	if s.RemoteSource != 1 || s.Compiles != 1 {
		t.Fatalf("stats = %+v (want source fetch + compile)", s)
	}
}

func TestCompiledBinaryPublishedToDistSite(t *testing.T) {
	// After site 1 (platform 2) compiles, it publishes the binary to a
	// code distribution site so site 2 (also platform 2) gets a binary
	// "at first go".
	_, mgrs, reg := codeCluster(t, 3, []types.PlatformID{1, 2, 2}, time.Millisecond)
	reg.Register("t.f", func(mthread.Context) error { return nil })
	mgrs[0].InstallSource(testThread(), "t.f", 100)
	// Site 0 (bootstrap) is implicitly a code distribution site.
	testnet.WaitFor(t, "dist sites known", func() bool {
		return len(mgrs[1].cm.CodeDistSites()) >= 1
	})

	if _, err := mgrs[1].Resolve(testThread()); err != nil {
		t.Fatal(err)
	}
	// The publish is asynchronous; wait for the dist site to hold the
	// platform-2 binary, then verify site 2 resolves without compiling.
	testnet.WaitFor(t, "binary published", func() bool {
		mgrs[0].mu.Lock()
		defer mgrs[0].mu.Unlock()
		_, ok := mgrs[0].binaries[testThread()][types.PlatformID(2)]
		return ok
	})

	if _, err := mgrs[2].Resolve(testThread()); err != nil {
		t.Fatal(err)
	}
	s := mgrs[2].Stats()
	if s.Compiles != 0 {
		t.Fatalf("site 2 compiled although a published binary existed: %+v", s)
	}
	if s.RemoteBinary != 1 {
		t.Fatalf("site 2 stats = %+v", s)
	}
}

func TestResolveUnknownThreadFails(t *testing.T) {
	_, mgrs, _ := codeCluster(t, 2, nil, 0)
	missing := types.ThreadID{Program: types.MakeProgramID(1, 9), Index: 3}
	if _, err := mgrs[1].Resolve(missing); !errors.Is(err, types.ErrNoBinary) {
		t.Fatalf("Resolve unknown = %v", err)
	}
}

func TestResolveUnregisteredFuncFails(t *testing.T) {
	_, mgrs, _ := codeCluster(t, 1, nil, 0)
	mgrs[0].InstallSource(testThread(), "never.registered", 10)
	if _, err := mgrs[0].Resolve(testThread()); !errors.Is(err, types.ErrNoSuchThread) {
		t.Fatalf("Resolve unregistered = %v", err)
	}
}

func TestCodeHomePreferred(t *testing.T) {
	_, mgrs, reg := codeCluster(t, 3, nil, 0)
	reg.Register("t.f", func(mthread.Context) error { return nil })
	// Only site 2 has the code; the code-home lookup points there.
	mgrs[2].InstallSource(testThread(), "t.f", 100)
	home := mgrs[2].bus.Self()
	mgrs[1].SetCodeHomeFn(func(types.ProgramID) types.SiteID { return home })

	if _, err := mgrs[1].Resolve(testThread()); err != nil {
		t.Fatal(err)
	}
	if s := mgrs[2].Stats(); s.RequestsServed == 0 {
		t.Fatal("code home was not asked")
	}
}

func TestDropProgram(t *testing.T) {
	_, mgrs, reg := codeCluster(t, 1, nil, 0)
	reg.Register("t.f", func(mthread.Context) error { return nil })
	mgrs[0].InstallSource(testThread(), "t.f", 100)
	mgrs[0].DropProgram(testThread().Program)
	if mgrs[0].Has(testThread()) {
		t.Fatal("binary survived DropProgram")
	}
}

func TestBlobSizeModelsArtifact(t *testing.T) {
	b := makeBlob("bin", "f", 1, 5000)
	if len(b) != 5000 {
		t.Fatalf("blob size = %d", len(b))
	}
	if len(makeBlob("bin", "f", 1, 0)) == 0 {
		t.Fatal("zero-size blob should get a default size")
	}
}
