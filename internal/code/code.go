// Package code implements the SDVM's code manager (paper §3.4, §4).
//
// "When requested by the scheduling manager, the code manager provides
// the corresponding microthread to a given microframe. If the microthread
// is not found in its local memory, it requests it from another site's
// code manager, resulting in a local copy of the microthread."
//
// The full distribution protocol is reproduced:
//
//   - artifacts are platform-specific: a site only executes binaries
//     matching its PlatformID;
//   - a request carries the requester's platform id; a peer that cannot
//     supply a matching binary sends the portable source instead;
//   - the requester then "compiles on the fly" (a configurable simulated
//     cost — Go cannot JIT native code, see the mthread package) and
//     uploads the result to a code distribution site "so that other sites
//     will receive the binary code at first go";
//   - designated code distribution sites store every artifact; the site
//     where a program was started is implicitly one.
package code

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/msgbus"
	"repro/internal/mthread"
	"repro/internal/types"
	"repro/internal/wire"
)

// Artifact is one stored microthread representation: either a
// platform-specific binary or portable source (Platform == PlatformAny).
// Blob is an opaque token whose size models transfer cost; FuncName is
// resolved against the local mthread.Registry at execution time.
type Artifact struct {
	Thread   types.ThreadID
	Platform types.PlatformID
	FuncName string
	Blob     []byte
}

// Config parameterizes a code manager.
type Config struct {
	// Platform is this site's platform id; binaries of other platforms
	// are rejected for execution.
	Platform types.PlatformID
	// CompileCost is the simulated wall-clock cost of compiling one
	// microthread from source on the fly. The paper found this "fast
	// enough not to slow the system too much, mainly since microthreads
	// are short code fragments only and don't have to be linked".
	CompileCost time.Duration
	// Registry resolves function names; defaults to mthread.Global.
	Registry *mthread.Registry
}

// Stats counts code-manager activity.
type Stats struct {
	LocalHits      uint64 // resolved from the local store
	RemoteBinary   uint64 // binary fetched from a peer
	RemoteSource   uint64 // only source available: compiled on the fly
	Compiles       uint64
	PublishedUp    uint64 // artifacts uploaded to distribution sites
	RequestsServed uint64
}

// Manager is one site's code manager.
type Manager struct {
	bus *msgbus.Bus
	cm  *cluster.Manager
	cfg Config

	// codeHome maps a program to the site that is guaranteed to hold
	// its code (the program manager supplies this).
	codeHome func(types.ProgramID) types.SiteID

	mu sync.Mutex
	// binaries by thread, then platform. guarded by mu
	binaries map[types.ThreadID]map[types.PlatformID]*Artifact
	// sources by thread (PlatformAny artifacts). guarded by mu
	sources map[types.ThreadID]*Artifact
	stats   Stats
}

// New returns a code manager registered for MgrCode on bus.
func New(bus *msgbus.Bus, cm *cluster.Manager, cfg Config) *Manager {
	if cfg.Registry == nil {
		cfg.Registry = mthread.Global
	}
	m := &Manager{
		bus:      bus,
		cm:       cm,
		cfg:      cfg,
		codeHome: func(types.ProgramID) types.SiteID { return types.InvalidSite },
		binaries: make(map[types.ThreadID]map[types.PlatformID]*Artifact),
		sources:  make(map[types.ThreadID]*Artifact),
	}
	bus.Register(types.MgrCode, m)
	return m
}

// SetCodeHomeFn wires the program manager's code-home lookup.
func (m *Manager) SetCodeHomeFn(f func(types.ProgramID) types.SiteID) {
	m.codeHome = f
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// InstallSource stores the portable source of a microthread locally —
// what happens on the site where an application is submitted. It also
// immediately "compiles" a binary for the local platform (cost-free at
// submission: the paper's applications arrive precompiled for the start
// site).
func (m *Manager) InstallSource(thread types.ThreadID, funcName string, srcSize int) {
	src := &Artifact{
		Thread:   thread,
		Platform: types.PlatformAny,
		FuncName: funcName,
		Blob:     makeBlob("src", funcName, types.PlatformAny, srcSize),
	}
	bin := &Artifact{
		Thread:   thread,
		Platform: m.cfg.Platform,
		FuncName: funcName,
		Blob:     makeBlob("bin", funcName, m.cfg.Platform, srcSize),
	}
	m.mu.Lock()
	m.sources[thread] = src
	m.storeBinaryLocked(bin)
	m.mu.Unlock()
}

// storeBinaryLocked indexes a binary artifact. Caller holds m.mu.
func (m *Manager) storeBinaryLocked(a *Artifact) {
	byPlat, ok := m.binaries[a.Thread]
	if !ok {
		byPlat = make(map[types.PlatformID]*Artifact)
		m.binaries[a.Thread] = byPlat
	}
	byPlat[a.Platform] = a
}

// makeBlob fabricates a deterministic artifact token of roughly size
// bytes; only its length matters (transfer cost modeling).
func makeBlob(kind, funcName string, plat types.PlatformID, size int) []byte {
	if size <= 0 {
		size = 64
	}
	blob := make([]byte, size)
	seed := fmt.Sprintf("%s/%s/%d", kind, funcName, plat)
	for i := range blob {
		blob[i] = seed[i%len(seed)] ^ byte(i)
	}
	return blob
}

// Resolve returns the executable implementation of thread for this
// site's platform, running the paper's lookup chain: local store →
// remote binary → remote source + on-the-fly compile + publish. It may
// block on network traffic and the compile cost; callers (the scheduling
// manager's resolver goroutine) are prepared for that.
func (m *Manager) Resolve(thread types.ThreadID) (mthread.Func, error) {
	// 1. Local binary for our platform?
	m.mu.Lock()
	if a, ok := m.binaries[thread][m.cfg.Platform]; ok {
		m.stats.LocalHits++
		m.mu.Unlock()
		return m.lookup(a.FuncName)
	}
	// 1b. Local source? Compile without a network round trip.
	if src, ok := m.sources[thread]; ok {
		m.mu.Unlock()
		return m.compileAndPublish(src)
	}
	m.mu.Unlock()

	// 2. Ask remote code managers: the program's code home first, then
	// the known code distribution sites, then any other site.
	for _, site := range m.requestOrder(thread.Program) {
		reply, err := m.bus.Request(site, types.MgrCode, types.MgrCode,
			&wire.CodeRequest{Thread: thread, Platform: m.cfg.Platform}, 0)
		if err != nil {
			continue
		}
		cr, ok := reply.Payload.(*wire.CodeReply)
		if !ok || !cr.Found {
			continue
		}
		art := &Artifact{
			Thread:   thread,
			Platform: cr.Platform,
			FuncName: cr.FuncName,
			Blob:     cr.Artifact,
		}
		if !cr.IsSource && cr.Platform == m.cfg.Platform {
			m.mu.Lock()
			m.storeBinaryLocked(art)
			m.stats.RemoteBinary++
			m.mu.Unlock()
			return m.lookup(cr.FuncName)
		}
		if cr.IsSource {
			art.Platform = types.PlatformAny
			m.mu.Lock()
			m.sources[thread] = art
			m.stats.RemoteSource++
			m.mu.Unlock()
			return m.compileAndPublish(art)
		}
	}
	return nil, &types.AddrError{Err: types.ErrNoBinary, Addr: types.GlobalAddr{Home: types.SiteID(thread.Index)}}
}

// requestOrder lists the sites to ask for code, best first.
func (m *Manager) requestOrder(prog types.ProgramID) []types.SiteID {
	self := m.bus.Self()
	seen := map[types.SiteID]bool{self: true, types.InvalidSite: true}
	var order []types.SiteID
	add := func(id types.SiteID) {
		if !seen[id] {
			seen[id] = true
			order = append(order, id)
		}
	}
	add(m.codeHome(prog))
	add(prog.StartSite())
	for _, id := range m.cm.CodeDistSites() {
		add(id)
	}
	for _, s := range m.cm.Sites() {
		add(s.ID)
	}
	return order
}

// compileAndPublish simulates the on-the-fly compilation of source and
// uploads the fresh binary to a code distribution site.
func (m *Manager) compileAndPublish(src *Artifact) (mthread.Func, error) {
	fn, err := m.lookup(src.FuncName)
	if err != nil {
		return nil, err
	}
	if m.cfg.CompileCost > 0 {
		//sdvmlint:allow sleepfree -- the sleep IS the model: simulated JIT compile cost (paper §3.2)
		time.Sleep(m.cfg.CompileCost)
	}
	bin := &Artifact{
		Thread:   src.Thread,
		Platform: m.cfg.Platform,
		FuncName: src.FuncName,
		Blob:     makeBlob("bin", src.FuncName, m.cfg.Platform, len(src.Blob)),
	}
	m.mu.Lock()
	m.storeBinaryLocked(bin)
	m.stats.Compiles++
	m.mu.Unlock()

	// "After a compilation procedure, the local site will send a copy of
	// the compiled code to the code distribution site."
	for _, dist := range m.cm.CodeDistSites() {
		if dist == m.bus.Self() {
			continue
		}
		if err := m.bus.Send(dist, types.MgrCode, types.MgrCode, &wire.CodePublish{
			Thread:   bin.Thread,
			Platform: bin.Platform,
			Artifact: bin.Blob,
			FuncName: bin.FuncName,
		}); err == nil {
			m.mu.Lock()
			m.stats.PublishedUp++
			m.mu.Unlock()
			break
		}
	}
	return fn, nil
}

// lookup resolves a function name against the registry.
func (m *Manager) lookup(name string) (mthread.Func, error) {
	fn, ok := m.cfg.Registry.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q not in registry", types.ErrNoSuchThread, name)
	}
	return fn, nil
}

// Has reports whether a binary for this site's platform is stored
// locally (no network traffic).
func (m *Manager) Has(thread types.ThreadID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.binaries[thread][m.cfg.Platform]
	return ok
}

// DropProgram discards all artifacts of a terminated program.
func (m *Manager) DropProgram(prog types.ProgramID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for t := range m.binaries {
		if t.Program == prog {
			delete(m.binaries, t)
		}
	}
	for t := range m.sources {
		if t.Program == prog {
			delete(m.sources, t)
		}
	}
}

// HandleMessage implements msgbus.Handler.
func (m *Manager) HandleMessage(msg *wire.Message) {
	switch p := msg.Payload.(type) {
	case *wire.CodeRequest:
		m.handleRequest(msg, p)
	case *wire.CodePublish:
		m.mu.Lock()
		m.storeBinaryLocked(&Artifact{
			Thread:   p.Thread,
			Platform: p.Platform,
			FuncName: p.FuncName,
			Blob:     p.Artifact,
		})
		m.mu.Unlock()
	}
}

// handleRequest serves a peer's code request: matching binary first,
// source as fallback ("if the other site cannot supply the microthread
// in the desired binary format, the C source code will be sent instead").
func (m *Manager) handleRequest(msg *wire.Message, p *wire.CodeRequest) {
	m.mu.Lock()
	m.stats.RequestsServed++
	var reply *wire.CodeReply
	if a, ok := m.binaries[p.Thread][p.Platform]; ok {
		reply = &wire.CodeReply{
			Found:    true,
			Platform: a.Platform,
			Artifact: a.Blob,
			FuncName: a.FuncName,
		}
	} else if src, ok := m.sources[p.Thread]; ok {
		reply = &wire.CodeReply{
			Found:    true,
			IsSource: true,
			Platform: types.PlatformAny,
			Artifact: src.Blob,
			FuncName: src.FuncName,
		}
	} else {
		reply = &wire.CodeReply{Found: false}
	}
	m.mu.Unlock()
	_ = m.bus.Reply(msg, types.MgrCode, reply)
}
