package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/types"
)

func tid() types.ThreadID {
	return types.ThreadID{Program: types.MakeProgramID(1, 1), Index: 0}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(EvFrameCreated, types.GlobalAddr{Home: 1, Local: 1}, tid(), "x")
	if tr.Events() != nil || tr.Total() != 0 {
		t.Fatal("nil tracer not inert")
	}
	if tr.Career(types.GlobalAddr{Home: 1, Local: 1}) != nil {
		t.Fatal("nil tracer career not empty")
	}
}

func TestRecordAndEventsOrder(t *testing.T) {
	tr := New(16, func() types.SiteID { return 3 })
	for i := 0; i < 5; i++ {
		tr.Record(EvEnqueued, types.GlobalAddr{Home: 1, Local: uint64(i)}, tid(), "")
	}
	evs := tr.Events()
	if len(evs) != 5 {
		t.Fatalf("events = %d", len(evs))
	}
	for i, e := range evs {
		if e.Frame.Local != uint64(i) {
			t.Fatalf("order wrong at %d: %v", i, e.Frame)
		}
		if e.Site != 3 {
			t.Fatalf("site = %v", e.Site)
		}
	}
	if tr.Total() != 5 {
		t.Fatalf("Total = %d", tr.Total())
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(4, nil)
	for i := 0; i < 10; i++ {
		tr.Record(EvEnqueued, types.GlobalAddr{Home: 1, Local: uint64(i)}, tid(), "")
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	if evs[0].Frame.Local != 6 || evs[3].Frame.Local != 9 {
		t.Fatalf("eviction kept wrong window: %v..%v", evs[0].Frame, evs[3].Frame)
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d", tr.Total())
	}
}

func TestCareerFilters(t *testing.T) {
	tr := New(64, nil)
	target := types.GlobalAddr{Home: 1, Local: 42}
	tr.Record(EvFrameCreated, target, tid(), "")
	tr.Record(EvEnqueued, types.GlobalAddr{Home: 1, Local: 7}, tid(), "")
	tr.Record(EvFrameFired, target, tid(), "")
	tr.Record(EvExecuted, target, tid(), "")

	career := tr.Career(target)
	if len(career) != 3 {
		t.Fatalf("career = %d events", len(career))
	}
	want := []EventKind{EvFrameCreated, EvFrameFired, EvExecuted}
	for i, k := range want {
		if career[i].Kind != k {
			t.Fatalf("career[%d] = %v, want %v", i, career[i].Kind, k)
		}
	}
}

func TestMergeCareersOrdersByTime(t *testing.T) {
	a := New(8, func() types.SiteID { return 1 })
	b := New(8, func() types.SiteID { return 2 })
	frame := types.GlobalAddr{Home: 1, Local: 1}

	a.Record(EvFrameCreated, frame, tid(), "")
	time.Sleep(2 * time.Millisecond)
	a.Record(EvGranted, frame, tid(), "to site(2)")
	time.Sleep(2 * time.Millisecond)
	b.Record(EvReceived, frame, tid(), "from site(1)")
	time.Sleep(2 * time.Millisecond)
	b.Record(EvExecuted, frame, tid(), "")

	merged := MergeCareers(frame, a, b)
	if len(merged) != 4 {
		t.Fatalf("merged = %d", len(merged))
	}
	wantKinds := []EventKind{EvFrameCreated, EvGranted, EvReceived, EvExecuted}
	wantSites := []types.SiteID{1, 1, 2, 2}
	for i := range merged {
		if merged[i].Kind != wantKinds[i] || merged[i].Site != wantSites[i] {
			t.Fatalf("merged[%d] = %v@%v", i, merged[i].Kind, merged[i].Site)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New(1024, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Record(EvEnqueued, types.GlobalAddr{Home: types.SiteID(g), Local: uint64(i)}, tid(), "")
			}
		}(g)
	}
	wg.Wait()
	if tr.Total() != 800 {
		t.Fatalf("Total = %d", tr.Total())
	}
	if len(tr.Events()) != 800 {
		t.Fatalf("retained = %d", len(tr.Events()))
	}
}

func TestSetEnabledStopsRecording(t *testing.T) {
	tr := New(16, nil)
	if !tr.Enabled() {
		t.Fatal("new tracer should start enabled")
	}
	tr.SetEnabled(false)
	tr.Record(EvEnqueued, types.GlobalAddr{Home: 1, Local: 1}, tid(), "")
	if tr.Total() != 0 {
		t.Fatalf("disabled tracer recorded %d events", tr.Total())
	}
	tr.SetEnabled(true)
	tr.Record(EvEnqueued, types.GlobalAddr{Home: 1, Local: 2}, tid(), "")
	if tr.Total() != 1 {
		t.Fatalf("re-enabled tracer Total = %d", tr.Total())
	}

	var nilTr *Tracer
	nilTr.SetEnabled(true) // must not panic
	if nilTr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
}

// TestConcurrentEnableDisable races recorders against a goroutine
// toggling the tracer, the way a live daemon would flip tracing on a
// running cluster. Run under -race this proves the toggle needs no
// external synchronization.
func TestConcurrentEnableDisable(t *testing.T) {
	tr := New(1024, nil)
	stop := make(chan struct{})
	var toggler sync.WaitGroup
	toggler.Add(1)
	go func() {
		defer toggler.Done()
		on := false
		for {
			select {
			case <-stop:
				return
			default:
				tr.SetEnabled(on)
				on = !on
			}
		}
	}()

	var recorders sync.WaitGroup
	for g := 0; g < 8; g++ {
		recorders.Add(1)
		go func(g int) {
			defer recorders.Done()
			for i := 0; i < 500; i++ {
				tr.Record(EvEnqueued, types.GlobalAddr{Home: types.SiteID(g), Local: uint64(i)}, tid(), "")
				_ = tr.Career(types.GlobalAddr{Home: types.SiteID(g), Local: uint64(i)})
			}
		}(g)
	}
	recorders.Wait()
	close(stop)
	toggler.Wait()

	tr.SetEnabled(true)
	total := tr.Total()
	tr.Record(EvExecuted, types.GlobalAddr{Home: 1, Local: 9999}, tid(), "")
	if tr.Total() != total+1 {
		t.Fatalf("tracer wedged after concurrent toggling: %d -> %d", total, tr.Total())
	}
	if got := len(tr.Events()); got > 1024 {
		t.Fatalf("ring overflowed: %d", got)
	}
}

func TestEventStrings(t *testing.T) {
	for k := EvFrameCreated; k <= EvRestored; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if EventKind(99).String() == "" {
		t.Fatal("unknown kind should format")
	}
	e := Event{At: time.Now(), Site: 1, Kind: EvExecuted,
		Frame: types.GlobalAddr{Home: 1, Local: 2}, Detail: "fast"}
	if e.String() == "" {
		t.Fatal("empty event string")
	}
	_ = fmt.Sprintf("%v", e)
}
