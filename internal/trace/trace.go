// Package trace records the life of microframes and microthreads — the
// observable counterpart of the paper's Figure 4 (execution cycle) and
// Figure 5 (the "career of microframes": incomplete → executable →
// ready → executing, possibly detouring over other sites via help
// requests).
//
// Each site keeps a bounded ring of events; the managers record into it
// through nil-safe hooks so tracing costs nothing when disabled. The
// Career query reassembles one frame's path through the machine.
package trace

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/types"
)

// EventKind classifies one step in a microframe's career.
type EventKind uint8

// The stations of Figure 4/5.
const (
	EvFrameCreated EventKind = iota // allocated in the attraction memory
	EvParamApplied                  // one parameter arrived
	EvFrameFired                    // last parameter: incomplete → executable
	EvEnqueued                      // entered the scheduling manager's queue
	EvCodeResolved                  // executable → ready (microthread present)
	EvDispatched                    // handed to the processing manager
	EvExecuted                      // microthread ran to completion
	EvGranted                       // given to another site (help/scatter/push)
	EvReceived                      // arrived from another site
	EvMigrated                      // memory object moved here
	EvCheckpointed                  // captured in a checkpoint
	EvRestored                      // restored from a checkpoint
)

var kindNames = map[EventKind]string{
	EvFrameCreated: "created",
	EvParamApplied: "param-applied",
	EvFrameFired:   "fired",
	EvEnqueued:     "enqueued",
	EvCodeResolved: "code-resolved",
	EvDispatched:   "dispatched",
	EvExecuted:     "executed",
	EvGranted:      "granted",
	EvReceived:     "received",
	EvMigrated:     "migrated",
	EvCheckpointed: "checkpointed",
	EvRestored:     "restored",
}

func (k EventKind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one recorded step.
type Event struct {
	At     time.Time
	Site   types.SiteID
	Kind   EventKind
	Frame  types.FrameID
	Thread types.ThreadID
	Detail string
}

func (e Event) String() string {
	s := fmt.Sprintf("%s %v %v %v", e.At.Format("15:04:05.000"), e.Site, e.Kind, e.Frame)
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	return s
}

// Tracer is a bounded per-site event ring. A nil *Tracer is valid and
// records nothing, so managers can hold one unconditionally.
type Tracer struct {
	site func() types.SiteID

	// disabled gates Record without the ring lock, so tracing can be
	// toggled at runtime while every manager keeps recording into the
	// same tracer (managers' tracer fields are set once before Start
	// and never rewritten — swapping pointers mid-run would race).
	disabled atomic.Bool

	mu    sync.Mutex
	ring  []Event
	next  int
	full  bool
	total uint64
}

// New returns a tracer holding up to capacity events (FIFO eviction).
func New(capacity int, site func() types.SiteID) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	if site == nil {
		site = func() types.SiteID { return types.InvalidSite }
	}
	return &Tracer{site: site, ring: make([]Event, capacity)}
}

// SetEnabled turns recording on or off at runtime. Safe on a nil
// tracer and safe to call concurrently with Record from any goroutine.
func (t *Tracer) SetEnabled(on bool) {
	if t == nil {
		return
	}
	t.disabled.Store(!on)
}

// Enabled reports whether the tracer currently records events. A nil
// tracer reports false.
func (t *Tracer) Enabled() bool { return t != nil && !t.disabled.Load() }

// Record appends one event. Safe on a nil tracer.
func (t *Tracer) Record(kind EventKind, frame types.FrameID, thread types.ThreadID, detail string) {
	if t == nil || t.disabled.Load() {
		return
	}
	t.mu.Lock()
	t.ring[t.next] = Event{
		At:     time.Now(),
		Site:   t.site(),
		Kind:   kind,
		Frame:  frame,
		Thread: thread,
		Detail: detail,
	}
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.total++
	t.mu.Unlock()
}

// Total returns how many events were ever recorded (including evicted).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Event
	if t.full {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	return out
}

// Career returns the retained events of one frame, oldest first — the
// paper's Figure 5 for a concrete microframe.
func (t *Tracer) Career(frame types.FrameID) []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.Frame == frame {
			out = append(out, e)
		}
	}
	return out
}

// MergeCareers combines the careers of one frame across several sites'
// tracers into one time-ordered sequence — a frame's cluster-wide path.
func MergeCareers(frame types.FrameID, tracers ...*Tracer) []Event {
	var out []Event
	for _, t := range tracers {
		out = append(out, t.Career(frame)...)
	}
	// Insertion sort: careers are short and mostly ordered already.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].At.Before(out[j-1].At); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
