// Protocol core: a pure, deterministic state machine over membership
// rows. All I/O (bus sends, cluster-roster side effects) lives in the
// Manager; the State only transforms rows and reports what changed, so
// the 256-site convergence tests can drive hundreds of instances in a
// single goroutine with no network at all.
package gossip

import (
	"math/rand"

	"repro/internal/types"
	"repro/internal/wire"
)

// Status is a row's liveness verdict. The order encodes merge
// precedence at equal incarnation: a tombstone overrules suspicion
// overrules liveness, and nothing short of a higher incarnation (which
// only the subject site itself can issue) revives a tombstoned row.
type Status uint8

const (
	StatusAlive   Status = iota
	StatusSuspect        // silent too long; the subject can refute
	StatusDead           // crash tombstone
	StatusLeft           // controlled sign-off tombstone
)

func (s Status) String() string {
	switch s {
	case StatusAlive:
		return "alive"
	case StatusSuspect:
		return "suspect"
	case StatusDead:
		return "dead"
	case StatusLeft:
		return "left"
	}
	return "status(?)"
}

// Tombstone reports whether s marks a permanently departed site.
func (s Status) Tombstone() bool { return s == StatusDead || s == StatusLeft }

// Config parameterizes the protocol. Zero values select defaults tuned
// for a 50–100ms tick: suspicion after ~1.5s of silence, a crash
// tombstone ~3s later — deliberately lazier than the checkpoint
// heartbeat (600ms), which stays the primary crash detector; gossip
// suspicion is the backstop and the disseminator.
type Config struct {
	// Fanout is how many peers receive this site's digest per tick.
	Fanout int
	// DigestMax bounds the rows one digest carries: the own row, hot
	// (recently changed) rows, and a rotating window over the rest.
	DigestMax int
	// SuspectAfter is the rounds of silence before an alive row turns
	// suspect, at a table small enough for every digest to cover it.
	// Larger tables scale this by the refresh lag — see refreshLag.
	SuspectAfter uint32
	// DeadAfter is the additional rounds of silence before a suspect
	// row becomes a crash tombstone.
	DeadAfter uint32
	// TombstoneTTL is how many rounds a tombstone keeps riding digests
	// after its last change. The row itself is kept forever (it fences
	// stale revivals); only its airtime is bounded.
	TombstoneTTL uint32
	// Seed drives peer selection; 0 falls back to 1.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Fanout <= 0 {
		c.Fanout = 3
	}
	if c.DigestMax <= 0 {
		c.DigestMax = 16
	}
	if c.SuspectAfter == 0 {
		c.SuspectAfter = 30
	}
	if c.DeadAfter == 0 {
		c.DeadAfter = 60
	}
	if c.TombstoneTTL == 0 {
		c.TombstoneTTL = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// hotRides is how many outgoing digests a changed row rides before it
// falls back to the rotating window. Rides, not rounds: during a flood
// (a churn storm, the seeding wave after a mass sign-on) more rows turn
// hot than one digest can carry, and a round-based expiry would drop
// the backlog unsent. A ride budget keeps every rumor queued until it
// has actually been transmitted, which is what the epidemic's O(log N)
// spread assumes.
const hotRides = 3

// EventKind tags a membership side effect a merge or tick decided.
type EventKind uint8

const (
	// EventJoin introduces a site (full cluster-list entry attached).
	EventJoin EventKind = iota
	// EventLeave removes a site (tombstone adopted or aged into).
	EventLeave
	// EventStats refreshes a known site's load vector.
	EventStats
)

// Event is one membership side effect for the caller to apply to the
// cluster roster after releasing the protocol lock (the roster fires
// user callbacks that may call back into gossip).
type Event struct {
	Kind     EventKind
	Site     types.SiteID
	Info     types.SiteInfo // EventJoin only
	Crashed  bool           // EventLeave: crash vs sign-off
	Load     float64        // EventStats
	QueueLen int32          // EventStats
	Programs int32          // EventStats
}

// row is the per-site protocol state.
type row struct {
	entry      wire.GossipEntry
	info       types.SiteInfo // zero ID = no routing info yet
	lastHeard  uint32         // local round the row last advanced
	changed    uint32         // local round of the last membership change
	includedAt uint32         // local round the row last rode a digest (dedup)
	hotLeft    int            // digest rides left before going cold
	queued     bool           // already on the hot queue
}

// State is one site's protocol instance. It is not safe for concurrent
// use; the Manager serializes access, and the convergence tests drive
// it single-threaded.
type State struct {
	self types.SiteID
	cfg  Config
	rng  *rand.Rand

	round uint32
	left  bool // Leave() was called; stop refuting our own tombstone

	rows      map[types.SiteID]*row
	ids       []types.SiteID // sorted; every row, tombstones included
	cursor    int            // rotating digest window position
	ageCursor int            // rotating suspicion window position
	hot       []types.SiteID // FIFO of rows with digest rides left
}

// NewState builds a protocol instance for the given site. selfInfo is
// this site's own cluster-list entry (the ID must be set).
func NewState(selfInfo types.SiteInfo, cfg Config) *State {
	cfg = cfg.withDefaults()
	s := &State{
		self: selfInfo.ID,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		rows: make(map[types.SiteID]*row),
	}
	s.insert(&row{
		entry: wire.GossipEntry{Site: selfInfo.ID, Status: uint8(StatusAlive)},
		info:  selfInfo,
	})
	return s
}

// Round returns the local round counter.
func (s *State) Round() uint32 { return s.round }

// Size returns the number of rows, tombstones included.
func (s *State) Size() int { return len(s.ids) }

// AliveIDs returns the ids of all non-tombstone rows in sorted order
// (tests and diagnostics; O(N), not used on any dissemination path).
func (s *State) AliveIDs() []types.SiteID {
	out := make([]types.SiteID, 0, len(s.ids))
	for _, id := range s.ids {
		if !Status(s.rows[id].entry.Status).Tombstone() {
			out = append(out, id)
		}
	}
	return out
}

// Lookup returns the current entry for id.
func (s *State) Lookup(id types.SiteID) (wire.GossipEntry, bool) {
	r, ok := s.rows[id]
	if !ok {
		return wire.GossipEntry{}, false
	}
	return r.entry, true
}

// insert adds a new row keeping ids sorted (binary insertion; merge
// paths are not size-critical, digest paths never sort).
func (s *State) insert(r *row) {
	id := r.entry.Site
	s.rows[id] = r
	lo, hi := 0, len(s.ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s.ids = append(s.ids, 0)
	copy(s.ids[lo+1:], s.ids[lo:])
	s.ids[lo] = id
}

// markHot records a membership change, granting the row hotRides
// priority slots in upcoming digests. Re-marking a queued row refreshes
// its budget without duplicating its queue entry.
func (s *State) markHot(r *row) {
	r.changed = s.round
	r.lastHeard = s.round
	r.hotLeft = hotRides
	if !r.queued {
		r.queued = true
		s.hot = append(s.hot, r.entry.Site)
	}
}

// SeedPeer installs an alive row for a site learned out of band (the
// sign-on snapshot, or the roster's OnJoin hook). Seeded rows start
// cold: a snapshot is information its source already disseminated, and
// hot-marking a 256-row snapshot would bury genuine rumors behind a
// flood of redundant rides. The rumor path proper — mergeEntry
// inserting a site this table had never heard of — stays hot.
// Idempotent: an existing row only gains missing routing info.
func (s *State) SeedPeer(info types.SiteInfo) {
	if !info.ID.Valid() || info.ID == s.self {
		return
	}
	if r, ok := s.rows[info.ID]; ok {
		if !r.info.ID.Valid() {
			r.info = info
		}
		return
	}
	r := &row{
		entry: wire.GossipEntry{
			Site:     info.ID,
			Status:   uint8(StatusAlive),
			Load:     info.Load,
			QueueLen: info.QueueLen,
			Programs: info.Programs,
		},
		info:      info,
		lastHeard: s.round,
		changed:   s.round,
	}
	s.insert(r)
}

// Announce installs a peer like SeedPeer but marks the row hot: the
// sign-on contact may be the only site that knows a newcomer exists —
// a joiner's own digests spread slowly right after sign-on, and a thin
// client session may never gossip at all — so the newcomer's existence
// is a rumor this site must spread, not old news.
func (s *State) Announce(info types.SiteInfo) {
	if !info.ID.Valid() || info.ID == s.self {
		return
	}
	s.SeedPeer(info)
	r, ok := s.rows[info.ID]
	if !ok || Status(r.entry.Status).Tombstone() {
		return
	}
	s.markHot(r)
}

// MarkGone tombstones a row on local authority — the checkpoint
// heartbeat declared a crash, or a legacy broadcast goodbye arrived.
// Idempotent; a no-op for rows already tombstoned.
func (s *State) MarkGone(id types.SiteID, crashed bool) {
	if id == s.self {
		return
	}
	st := StatusLeft
	if crashed {
		st = StatusDead
	}
	r, ok := s.rows[id]
	if !ok {
		r = &row{entry: wire.GossipEntry{Site: id, Status: uint8(st)}}
		s.insert(r)
		s.markHot(r)
		return
	}
	if Status(r.entry.Status).Tombstone() {
		return
	}
	r.entry.Status = uint8(st)
	s.markHot(r)
}

// Accuse marks a live row suspect on external evidence — a failed
// heartbeat probe. The accusation spreads as a hot row; a falsely
// accused subject refutes it with a higher incarnation, a dead one
// ages to a tombstone after DeadAfter rounds. A no-op for rows already
// suspect or tombstoned, so repeated probe failures cannot keep
// resetting the death clock.
func (s *State) Accuse(id types.SiteID) {
	if id == s.self {
		return
	}
	r, ok := s.rows[id]
	if !ok || Status(r.entry.Status) != StatusAlive {
		return
	}
	r.entry.Status = uint8(StatusSuspect)
	s.markHot(r)
}

// SetLocalStats refreshes the load vector of this site's own row; the
// next Tick stamps and disseminates it.
func (s *State) SetLocalStats(load float64, queueLen, programs int32) {
	r := s.rows[s.self]
	r.entry.Load = load
	r.entry.QueueLen = queueLen
	r.entry.Programs = programs
}

// Leave marks this site's own row as a sign-off tombstone (with a
// bumped incarnation, so it overrules every alive copy in flight) and
// returns the farewell burst: the digest and the peers it goes to.
func (s *State) Leave() ([]types.SiteID, *wire.GossipDigest) {
	s.round++
	r := s.rows[s.self]
	r.entry.Incarnation++
	r.entry.Status = uint8(StatusLeft)
	r.entry.OriginRound = s.round
	s.markHot(r)
	s.left = true
	return s.pickPeers(s.cfg.Fanout), s.buildDigest()
}

// Tick advances one protocol round: refresh the own row, age the
// current window, and produce this round's digest and its targets. The
// returned events are tombstones aging decided (apply to the roster
// outside the lock). Targets is empty when no routable peer is known.
//
//sdvm:deterministic
func (s *State) Tick() (targets []types.SiteID, digest *wire.GossipDigest, events []Event) {
	s.round++
	self := s.rows[s.self]
	self.entry.OriginRound = s.round
	self.lastHeard = s.round

	events = s.age(events)
	return s.pickPeers(s.cfg.Fanout), s.buildDigest(), events
}

// refreshLag is the expected number of rounds between fresher copies
// of any given row reaching this site: a site receives about
// Fanout·DigestMax row-copies per round, spread across the whole
// table. The suspicion clock scales by this factor so the silence
// budget stays a constant number of expected refreshes at any cluster
// size — with a fixed clock, a 256-site table's ~N/(Fanout·DigestMax)
// refresh interval turns ordinary gossip jitter into a steady drizzle
// of false accusations.
//
//sdvm:deterministic
func (s *State) refreshLag() uint32 {
	per := s.cfg.Fanout * s.cfg.DigestMax
	lag := (len(s.ids) + per - 1) / per
	if lag < 1 {
		lag = 1
	}
	return uint32(lag)
}

// age applies the suspicion clock to a rotating window of rows —
// bounded work per tick; its own cursor (independent of the digest
// window, which stalls when hot rows fill the digest) sweeps the whole
// table every len(ids)/DigestMax ticks, which only stretches detection
// by that many rounds. Alive→suspect scales with refreshLag;
// suspect→dead stays at the configured DeadAfter, because a refutation
// travels the hot path (O(log N) rounds), not the rotating window.
//
//sdvm:deterministic
func (s *State) age(events []Event) []Event {
	if len(s.ids) == 0 {
		return events
	}
	n := s.cfg.DigestMax
	if n > len(s.ids) {
		n = len(s.ids)
	}
	suspectAfter := s.cfg.SuspectAfter * s.refreshLag()
	for i := 0; i < n; i++ {
		id := s.ids[s.ageCursor%len(s.ids)]
		s.ageCursor = (s.ageCursor + 1) % len(s.ids)
		r := s.rows[id]
		if id == s.self || Status(r.entry.Status).Tombstone() {
			continue
		}
		switch {
		case Status(r.entry.Status) == StatusAlive && s.round-r.lastHeard > suspectAfter:
			r.entry.Status = uint8(StatusSuspect)
			s.markHot(r) // stamps changed: the suspicion round starts the death clock
		case Status(r.entry.Status) == StatusSuspect && s.round-r.changed > s.cfg.DeadAfter:
			r.entry.Status = uint8(StatusDead)
			s.markHot(r)
			events = append(events, Event{Kind: EventLeave, Site: id, Crashed: true})
		}
	}
	return events
}

// buildDigest assembles this round's bounded digest: own row first,
// then hot rows, then the rotating window. Every non-tombstone row
// travels with its cluster-list entry so receivers can route to sites
// they just learned.
//
//sdvm:deterministic
func (s *State) buildDigest() *wire.GossipDigest {
	d := &wire.GossipDigest{
		From:    s.self,
		Round:   s.round,
		Entries: make([]wire.GossipEntry, 0, s.cfg.DigestMax),
		Sites:   make([]types.SiteInfo, 0, s.cfg.DigestMax),
	}
	s.include(d, s.rows[s.self])

	// Hot rows: serve the FIFO front, capped below DigestMax so a burst
	// of changes (a churn storm, the seeding flood right after a mass
	// sign-on) can never starve the rotation window — the window is
	// what guarantees every row eventually rides. Served rows with
	// budget left rotate to the back; unserved backlog keeps its place,
	// so no rumor is ever dropped unsent, only delayed.
	hotCap := s.cfg.DigestMax - s.cfg.DigestMax/4
	served := 0
	kept := s.hot[:0]
	var again []types.SiteID
	for _, id := range s.hot {
		r, ok := s.rows[id]
		if !ok || r.hotLeft <= 0 {
			if ok {
				r.queued = false
			}
			continue
		}
		if served < hotCap {
			s.include(d, r)
			r.hotLeft--
			served++
			if r.hotLeft > 0 {
				again = append(again, id)
			} else {
				r.queued = false
			}
			continue
		}
		kept = append(kept, id)
	}
	s.hot = append(kept, again...)

	// Rotating window over everything else.
	if len(s.ids) > 0 {
		steps := len(s.ids)
		for i := 0; i < steps && len(d.Entries) < s.cfg.DigestMax; i++ {
			r := s.rows[s.ids[s.cursor%len(s.ids)]]
			s.cursor = (s.cursor + 1) % len(s.ids)
			if Status(r.entry.Status).Tombstone() && s.round-r.changed > s.cfg.TombstoneTTL {
				continue // fenced forever locally, but off the air
			}
			s.include(d, r)
		}
	}
	return d
}

// SelfDigest builds a one-entry digest carrying only this site's row
// and routing info — an introduction, pushed ahead of a request to a
// peer that may not have heard of this site yet. It advances no round,
// consumes no ride budget, and leaves the per-round dedup untouched.
//
//sdvm:deterministic
func (s *State) SelfDigest() *wire.GossipDigest {
	r := s.rows[s.self]
	d := &wire.GossipDigest{
		From:    s.self,
		Round:   s.round,
		Entries: []wire.GossipEntry{r.entry},
	}
	if r.info.ID.Valid() {
		d.Sites = []types.SiteInfo{r.info}
	}
	return d
}

// include appends one row (and its routing info, if any) to d unless it
// already rode this round's digest.
//
//sdvm:deterministic
func (s *State) include(d *wire.GossipDigest, r *row) {
	if r.includedAt == s.round {
		return
	}
	r.includedAt = s.round
	d.Entries = append(d.Entries, r.entry)
	if r.info.ID.Valid() && !Status(r.entry.Status).Tombstone() {
		d.Sites = append(d.Sites, r.info)
	}
}

// pickPeers samples up to n distinct routable, non-tombstone peers
// uniformly from the row table. O(n) probes, never a roster sweep.
//
//sdvm:deterministic
func (s *State) pickPeers(n int) []types.SiteID {
	if len(s.ids) <= 1 || n <= 0 {
		return nil
	}
	out := make([]types.SiteID, 0, n)
	attempts := 4*n + 4
	for i := 0; i < attempts && len(out) < n; i++ {
		id := s.ids[s.rng.Intn(len(s.ids))]
		if id == s.self {
			continue
		}
		r := s.rows[id]
		if Status(r.entry.Status).Tombstone() || !r.info.ID.Valid() {
			continue
		}
		dup := false
		for _, seen := range out {
			if seen == id {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, id)
		}
	}
	return out
}

// PickTwoChoices is the scheduler's targeted help selection: sample two
// distinct alive candidates from the gossiped load table and return the
// better donor — the one with the longer executable queue (ties by
// load). This is the work-stealing dual of classic power-of-two-choices
// placement: choosing the busier of two random donors spreads help
// requests as evenly as placing work on the lighter of two random
// servers. Departed and suspected sites are never candidates. rng is
// caller-owned (the scheduler's seeded stream), keeping the decision
// deterministic per site.
//
//sdvm:deterministic
func (s *State) PickTwoChoices(rng *rand.Rand, exclude map[types.SiteID]bool) types.SiteID {
	if len(s.ids) <= 1 {
		return types.InvalidSite
	}
	var a, b *row
	for i := 0; i < 16 && b == nil; i++ {
		r := s.donor(s.ids[rng.Intn(len(s.ids))], exclude)
		switch {
		case r == nil:
		case a == nil:
			a = r
		case r != a:
			b = r
		}
	}
	if a == nil {
		// Unlucky probes (small cluster, most peers excluded): a
		// bounded sweep from a random offset still finds a lone
		// eligible donor without ever scanning a large roster.
		start := rng.Intn(len(s.ids))
		limit := len(s.ids)
		if limit > 16 {
			limit = 16
		}
		for i := 0; i < limit && a == nil; i++ {
			a = s.donor(s.ids[(start+i)%len(s.ids)], exclude)
		}
	}
	if a == nil {
		return types.InvalidSite
	}
	if b == nil {
		return a.entry.Site
	}
	if b.entry.QueueLen > a.entry.QueueLen ||
		(b.entry.QueueLen == a.entry.QueueLen && b.entry.Load > a.entry.Load) {
		return b.entry.Site
	}
	return a.entry.Site
}

// donor returns id's row if it is an eligible help donor — alive,
// routable, not the local site, not excluded, and advertising queued
// work — and nil otherwise. The queue check is what makes idle help
// polling free at scale: when the gossiped load table shows an idle
// cluster, the scheduler's beg round returns empty-handed without
// sending a single message, instead of N idle sites hammering each
// other with can't-help traffic every backoff period.
//
//sdvm:deterministic
func (s *State) donor(id types.SiteID, exclude map[types.SiteID]bool) *row {
	if id == s.self || exclude[id] {
		return nil
	}
	r := s.rows[id]
	if Status(r.entry.Status) != StatusAlive || !r.info.ID.Valid() {
		return nil
	}
	if r.entry.QueueLen <= 0 {
		return nil
	}
	return r
}

// fresher reports whether candidate (inc, st, originRound) strictly
// supersedes the current row state. Higher incarnation always wins;
// at equal incarnation a worse status wins; at equal status a higher
// origin round carries fresher statistics.
func fresher(cur wire.GossipEntry, inc uint32, st Status, origin uint32) bool {
	if inc != cur.Incarnation {
		return inc > cur.Incarnation
	}
	if st != Status(cur.Status) {
		return st > Status(cur.Status)
	}
	return origin > cur.OriginRound
}

// findInfo returns the cluster-list entry for id carried by a digest or
// delta, if any (linear scan; both lists are digest-bounded).
func findInfo(sites []types.SiteInfo, id types.SiteID) *types.SiteInfo {
	for i := range sites {
		if sites[i].ID == id {
			return &sites[i]
		}
	}
	return nil
}

// HandleDigest merges an incoming digest and returns the anti-entropy
// delta (rows we know strictly fresher state for; nil when none) plus
// the membership events the merge decided.
func (s *State) HandleDigest(d *wire.GossipDigest) (*wire.GossipDelta, []Event) {
	var delta *wire.GossipDelta
	var events []Event
	answer := func(r *row) {
		if delta == nil {
			delta = &wire.GossipDelta{From: s.self}
		}
		delta.Entries = append(delta.Entries, r.entry)
		if r.info.ID.Valid() && !Status(r.entry.Status).Tombstone() {
			delta.Sites = append(delta.Sites, r.info)
		}
	}
	for i := range d.Entries {
		e := &d.Entries[i]
		if e.Site == s.self {
			// A rumor about us: merge refutes it (incarnation bump) if
			// it claims anything short of alive. When the rumor got our
			// status or incarnation wrong, push the truth straight back
			// so the accuser corrects without waiting for the epidemic.
			events = s.mergeEntry(*e, nil, events)
			cur := s.rows[s.self]
			if e.Incarnation != cur.entry.Incarnation || Status(e.Status) != Status(cur.entry.Status) {
				answer(cur)
			}
			continue
		}
		if cur, ok := s.rows[e.Site]; ok &&
			fresher(*e, cur.entry.Incarnation, Status(cur.entry.Status), cur.entry.OriginRound) {
			// We are strictly fresher: answer with our version so the
			// sender converges without waiting for the epidemic.
			answer(cur)
			continue
		}
		events = s.mergeEntry(*e, findInfo(d.Sites, e.Site), events)
	}
	return delta, events
}

// HandleDelta merges an anti-entropy reply. Deltas are never answered.
func (s *State) HandleDelta(d *wire.GossipDelta) []Event {
	var events []Event
	for i := range d.Entries {
		events = s.mergeEntry(d.Entries[i], findInfo(d.Sites, d.Entries[i].Site), events)
	}
	return events
}

// mergeEntry applies one remote row under the SWIM ordering rules.
func (s *State) mergeEntry(e wire.GossipEntry, info *types.SiteInfo, events []Event) []Event {
	if !e.Site.Valid() {
		return events
	}
	if e.Site == s.self {
		// Somebody is talking about us. Refute anything short of alive
		// with a higher incarnation — unless we initiated the sign-off
		// ourselves, in which case the tombstone is the truth.
		self := s.rows[s.self]
		if !s.left && Status(e.Status) != StatusAlive && e.Incarnation >= self.entry.Incarnation {
			self.entry.Incarnation = e.Incarnation + 1
			self.entry.Status = uint8(StatusAlive)
			s.markHot(self)
		}
		return events
	}

	r, ok := s.rows[e.Site]
	if !ok {
		r = &row{entry: e}
		if info != nil {
			r.info = *info
		}
		s.insert(r)
		s.markHot(r)
		if Status(e.Status).Tombstone() {
			return append(events, Event{Kind: EventLeave, Site: e.Site, Crashed: Status(e.Status) == StatusDead})
		}
		if info != nil {
			return append(events, Event{Kind: EventJoin, Site: e.Site, Info: *info})
		}
		return events
	}

	if info != nil && !r.info.ID.Valid() {
		r.info = *info
		if !Status(r.entry.Status).Tombstone() {
			events = append(events, Event{Kind: EventJoin, Site: e.Site, Info: *info})
		}
	}
	if !fresher(r.entry, e.Incarnation, Status(e.Status), e.OriginRound) {
		return events
	}

	wasTombstone := Status(r.entry.Status).Tombstone()
	membership := e.Incarnation != r.entry.Incarnation || e.Status != r.entry.Status
	r.entry = e
	r.lastHeard = s.round
	if membership {
		s.markHot(r)
	}
	switch {
	case Status(e.Status).Tombstone() && !wasTombstone:
		events = append(events, Event{Kind: EventLeave, Site: e.Site, Crashed: Status(e.Status) == StatusDead})
	case !Status(e.Status).Tombstone():
		if wasTombstone {
			// A site only ever revives itself (higher incarnation);
			// reintroduce it to the roster if we can route to it.
			if r.info.ID.Valid() {
				events = append(events, Event{Kind: EventJoin, Site: e.Site, Info: r.info})
			}
		} else {
			events = append(events, Event{
				Kind: EventStats, Site: e.Site,
				Load: e.Load, QueueLen: e.QueueLen, Programs: e.Programs,
			})
		}
	}
	return events
}
