package gossip

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/types"
	"repro/internal/wire"
)

// simConfig uses the default protocol clocks: at 256 sites a given
// row's stats refresh only every handful of rounds, so an aggressive
// suspicion clock would drown the cluster in false accusations.
func simConfig(seed int64) Config {
	return Config{Fanout: 3, DigestMax: 16, Seed: seed}
}

func siteInfo(id types.SiteID) types.SiteInfo {
	return types.SiteInfo{ID: id, PhysAddr: fmt.Sprintf("sim-%d", id), Speed: 1}
}

// sim drives N pure protocol instances with synchronous synthetic
// routing — no bus, no goroutines, one deterministic seed.
type sim struct {
	states map[types.SiteID]*State
	order  []types.SiteID // stable tick order
}

func newSim(n int) *sim {
	s := &sim{states: make(map[types.SiteID]*State)}
	for i := 1; i <= n; i++ {
		id := types.SiteID(i)
		st := NewState(siteInfo(id), simConfig(int64(i)))
		for j := 1; j <= n; j++ {
			if j != i {
				st.SeedPeer(siteInfo(types.SiteID(j)))
			}
		}
		s.states[id] = st
		s.order = append(s.order, id)
	}
	return s
}

// step runs one round: every live site ticks and its digest is
// delivered synchronously, anti-entropy deltas flowing straight back.
func (s *sim) step() {
	for _, id := range s.order {
		src, ok := s.states[id]
		if !ok {
			continue // crashed
		}
		targets, digest, _ := src.Tick()
		for _, t := range targets {
			dst, ok := s.states[t]
			if !ok {
				continue // message to a dead site is lost
			}
			delta, _ := dst.HandleDigest(digest)
			if delta != nil {
				src.HandleDelta(delta)
			}
		}
	}
}

// crash removes a site without ceremony: it simply stops ticking and
// answering.
func (s *sim) crash(id types.SiteID) { delete(s.states, id) }

// join starts a fresh site knowing only the contact, and tells the
// contact about it — the sign-on handshake in miniature.
func (s *sim) join(id, contact types.SiteID) {
	st := NewState(siteInfo(id), simConfig(int64(id)))
	st.SeedPeer(siteInfo(contact))
	s.states[id] = st
	s.order = append(s.order, id)
	s.states[contact].Announce(siteInfo(id))
}

// converged reports whether every live site's view of site id matches
// the predicate.
func (s *sim) converged(check func(st *State) bool) bool {
	for _, st := range s.states {
		if !check(st) {
			return false
		}
	}
	return true
}

// stepsUntil runs rounds until every live state satisfies check,
// failing the test past limit.
func (s *sim) stepsUntil(t *testing.T, limit int, what string, check func(st *State) bool) int {
	t.Helper()
	for r := 1; r <= limit; r++ {
		s.step()
		if s.converged(check) {
			return r
		}
	}
	t.Fatalf("%s: not converged after %d rounds", what, limit)
	return 0
}

// TestConvergence256 is the scale acceptance test: a 256-site cluster
// disseminates a join and then a crash to every member within a bounded
// number of gossip rounds, with every digest staying within DigestMax.
func TestConvergence256(t *testing.T) {
	const n = 256
	s := newSim(n)
	// Warm up: drain the hot flood the all-at-once seeding created, as
	// a real cluster would have long before a join arrives.
	for r := 0; r < 5; r++ {
		s.step()
	}

	// A fresh site joins knowing only site 1.
	joiner := types.SiteID(n + 1)
	s.join(joiner, 1)
	rounds := s.stepsUntil(t, 40, "join dissemination", func(st *State) bool {
		_, ok := st.Lookup(joiner)
		return ok
	})
	t.Logf("join reached all %d sites in %d rounds", n, rounds)

	// The joiner must likewise learn the whole roster, one digest
	// window at a time, once peers start picking it as a target.
	s.stepsUntil(t, 120, "joiner roster fill", func(st *State) bool {
		return st.Size() >= n
	})

	// Site 7 crashes silently. Suspicion ages it out and the tombstone
	// spreads; bounded by the aging-cursor sweep (n/DigestMax) plus the
	// two suspicion clocks plus dissemination.
	s.crash(7)
	cfg := simConfig(1).withDefaults()
	// The alive→suspect clock scales with the table's refresh lag (see
	// refreshLag); the death clock and the sweep cursor do not.
	lag := (n + 1 + cfg.Fanout*cfg.DigestMax - 1) / (cfg.Fanout * cfg.DigestMax)
	limit := n/cfg.DigestMax + int(cfg.SuspectAfter)*lag + int(cfg.DeadAfter) + 60
	rounds = s.stepsUntil(t, limit, "crash tombstone", func(st *State) bool {
		e, ok := st.Lookup(7)
		return ok && Status(e.Status).Tombstone()
	})
	t.Logf("crash of site 7 tombstoned everywhere in %d rounds (limit %d)", rounds, limit)
}

// TestDigestBounded pins the O(fanout) property: no digest ever carries
// more than DigestMax entries or targets more than Fanout peers, even
// from a site that knows hundreds of rows.
func TestDigestBounded(t *testing.T) {
	s := newSim(128)
	for r := 0; r < 30; r++ {
		for _, id := range s.order {
			st := s.states[id]
			targets, digest, _ := st.Tick()
			if len(targets) > 3 {
				t.Fatalf("round %d: %d targets, fanout is 3", r, len(targets))
			}
			if len(digest.Entries) > 16 {
				t.Fatalf("round %d: digest carries %d entries, max 16", r, len(digest.Entries))
			}
			if len(digest.Sites) > len(digest.Entries) {
				t.Fatalf("round %d: %d site infos for %d entries", r, len(digest.Sites), len(digest.Entries))
			}
			for _, tgt := range targets {
				if dst, ok := s.states[tgt]; ok {
					if delta, _ := dst.HandleDigest(digest); delta != nil {
						if len(delta.Entries) > 16 {
							t.Fatalf("delta carries %d entries", len(delta.Entries))
						}
						st.HandleDelta(delta)
					}
				}
			}
		}
	}
}

// TestRefutation pins the SWIM incarnation rule: a falsely suspected
// site that hears its own obituary bumps its incarnation, and the
// refutation wins over the accusation everywhere.
func TestRefutation(t *testing.T) {
	a := NewState(siteInfo(1), simConfig(1))
	b := NewState(siteInfo(2), simConfig(2))
	a.SeedPeer(siteInfo(2))
	b.SeedPeer(siteInfo(1))

	// a accuses b at incarnation 0.
	accusation := &wire.GossipDigest{From: 1, Round: 9, Entries: []wire.GossipEntry{
		{Site: 2, Incarnation: 0, Status: uint8(StatusSuspect), OriginRound: 9},
	}}
	delta, _ := b.HandleDigest(accusation)
	self, _ := b.Lookup(2)
	if Status(self.Status) != StatusAlive || self.Incarnation != 1 {
		t.Fatalf("suspected site did not refute: %+v", self)
	}
	// The refutation flows straight back as an anti-entropy delta...
	if delta == nil {
		t.Fatal("no delta answering a stale accusation")
	}
	a.HandleDelta(delta)
	got, _ := a.Lookup(2)
	if Status(got.Status) != StatusAlive || got.Incarnation != 1 {
		t.Fatalf("accuser did not adopt the refutation: %+v", got)
	}
	// ...and a re-played accusation at the old incarnation loses.
	a.HandleDigest(accusation)
	got, _ = a.Lookup(2)
	if Status(got.Status) != StatusAlive {
		t.Fatalf("stale accusation resurrected suspicion: %+v", got)
	}
}

// TestTombstoneFencing pins that a departed site stays departed: alive
// rows at any incarnation the site actually used cannot overwrite its
// tombstone, only the site itself could (with a higher incarnation).
func TestTombstoneFencing(t *testing.T) {
	a := NewState(siteInfo(1), simConfig(1))
	a.SeedPeer(siteInfo(2))
	a.MarkGone(2, false)

	stale := &wire.GossipDigest{From: 3, Round: 4, Entries: []wire.GossipEntry{
		{Site: 2, Incarnation: 0, Status: uint8(StatusAlive), OriginRound: 99, Load: 0.5},
	}, Sites: []types.SiteInfo{siteInfo(2)}}
	delta, events := a.HandleDigest(stale)
	e, _ := a.Lookup(2)
	if Status(e.Status) != StatusLeft {
		t.Fatalf("stale alive row revived a tombstone: %+v", e)
	}
	for _, ev := range events {
		if ev.Kind == EventJoin {
			t.Fatal("tombstoned site produced a join event")
		}
	}
	// The sender holding the stale row gets corrected by delta.
	if delta == nil || len(delta.Entries) != 1 || Status(delta.Entries[0].Status) != StatusLeft {
		t.Fatalf("no corrective delta for stale alive row: %+v", delta)
	}
}

// TestLeavePropagates pins the sign-off path: Leave bumps the own
// incarnation so the Left tombstone overrules every alive copy already
// in flight, and other sites adopt it with a leave event.
func TestLeavePropagates(t *testing.T) {
	a := NewState(siteInfo(1), simConfig(1))
	b := NewState(siteInfo(2), simConfig(2))
	a.SeedPeer(siteInfo(2))
	b.SeedPeer(siteInfo(1))

	targets, farewell := a.Leave()
	if len(targets) == 0 {
		t.Fatal("leave produced no farewell targets")
	}
	_, events := b.HandleDigest(farewell)
	var left bool
	for _, ev := range events {
		if ev.Kind == EventLeave && ev.Site == 1 && !ev.Crashed {
			left = true
		}
	}
	if !left {
		t.Fatalf("no leave event from farewell digest: %+v", events)
	}
	e, _ := b.Lookup(1)
	if Status(e.Status) != StatusLeft || e.Incarnation == 0 {
		t.Fatalf("farewell row not adopted: %+v", e)
	}
	// The leaver never refutes its own tombstone.
	echo := &wire.GossipDigest{From: 2, Round: 1, Entries: []wire.GossipEntry{e}}
	a.HandleDigest(echo)
	own, _ := a.Lookup(1)
	if Status(own.Status) != StatusLeft {
		t.Fatalf("leaver refuted its own sign-off: %+v", own)
	}
}

// TestStatsDisseminate pins load-vector flow: a queue-depth change on
// one site reaches another through digests alone, carried as a stats
// event for the roster.
func TestStatsDisseminate(t *testing.T) {
	s := newSim(8)
	s.states[3].SetLocalStats(0.75, 42, 2)
	for r := 0; r < 20; r++ {
		s.step()
		e, ok := s.states[6].Lookup(3)
		if ok && e.QueueLen == 42 {
			return
		}
	}
	e, _ := s.states[6].Lookup(3)
	t.Fatalf("site 6 never saw site 3's queue depth: %+v", e)
}

// TestMarkGoneIdempotent pins the re-entrancy contract: the roster's
// OnLeave hook loops back into MarkGone for removals gossip itself
// initiated, which must be a no-op.
func TestMarkGoneIdempotent(t *testing.T) {
	a := NewState(siteInfo(1), simConfig(1))
	a.SeedPeer(siteInfo(2))
	a.MarkGone(2, true)
	before, _ := a.Lookup(2)
	a.MarkGone(2, false) // second removal with a different flavor
	after, _ := a.Lookup(2)
	if before != after {
		t.Fatalf("second MarkGone changed the row: %+v -> %+v", before, after)
	}
	if a.Size() != 2 {
		t.Fatalf("size %d after duplicate MarkGone", a.Size())
	}
}

// TestPickTwoChoicesEligibility pins the candidate filter: departed,
// suspected, excluded, unroutable and empty-queued sites are never
// picked — even when the ineligible ones advertise the deepest queues —
// and with two candidates the heavier queue wins.
func TestPickTwoChoicesEligibility(t *testing.T) {
	a := NewState(siteInfo(1), simConfig(1))
	for i := 2; i <= 6; i++ {
		a.SeedPeer(siteInfo(types.SiteID(i)))
	}
	// Sites 2 and 3 advertise modest queued work; the soon-poisoned
	// sites 4–6 advertise far deeper queues, which a liveness-blind
	// picker would chase.
	a.HandleDigest(&wire.GossipDigest{From: 2, Round: 1, Entries: []wire.GossipEntry{
		{Site: 2, Status: uint8(StatusAlive), OriginRound: 1, QueueLen: 1},
		{Site: 3, Status: uint8(StatusAlive), OriginRound: 1, QueueLen: 1},
		{Site: 4, Status: uint8(StatusAlive), OriginRound: 1, QueueLen: 70},
		{Site: 5, Status: uint8(StatusAlive), OriginRound: 1, QueueLen: 80},
		{Site: 6, Status: uint8(StatusAlive), OriginRound: 1, QueueLen: 90},
	}})
	a.MarkGone(4, true) // tombstone
	// Suspect site 5 via a digest.
	a.HandleDigest(&wire.GossipDigest{From: 2, Round: 2, Entries: []wire.GossipEntry{
		{Site: 5, Incarnation: 0, Status: uint8(StatusSuspect), OriginRound: 1, QueueLen: 80},
	}})
	exclude := map[types.SiteID]bool{6: true}

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		got := a.PickTwoChoices(rng, exclude)
		switch got {
		case 4, 5, 6, 1:
			t.Fatalf("picked ineligible site %v", got)
		case types.InvalidSite:
			t.Fatal("no candidate found despite eligible peers")
		}
	}

	// Bias: give site 3 a deep queue; it must win almost every sample
	// against site 2's single queued frame.
	a.HandleDigest(&wire.GossipDigest{From: 3, Round: 3, Entries: []wire.GossipEntry{
		{Site: 3, Incarnation: 0, Status: uint8(StatusAlive), OriginRound: 50, QueueLen: 40},
	}})
	wins := 0
	for i := 0; i < 400; i++ {
		if a.PickTwoChoices(rng, exclude) == 3 {
			wins++
		}
	}
	if wins < 300 {
		t.Fatalf("heavy-queue site won only %d/400 picks", wins)
	}
}

// TestPickTwoChoicesBiasProperty is the seeded property test behind
// targeted help requests: across seeds and thousands of rounds, picks
// land on heavier queues with the power-of-two-choices bias and never
// on departed, suspected, excluded or local sites — even though the
// ineligible sites advertise the deepest queues in the cluster, which
// is exactly what a bias-only implementation would chase.
func TestPickTwoChoicesBiasProperty(t *testing.T) {
	const n = 24
	for _, seed := range []int64{1, 7, 42} {
		st := NewState(siteInfo(1), simConfig(1))
		entries := make([]wire.GossipEntry, 0, n-1)
		for i := 2; i <= n; i++ {
			st.SeedPeer(siteInfo(types.SiteID(i)))
			entries = append(entries, wire.GossipEntry{
				Site: types.SiteID(i), Status: uint8(StatusAlive),
				OriginRound: 1, QueueLen: int32(i * 4),
			})
		}
		st.HandleDigest(&wire.GossipDigest{From: 2, Round: 1, Entries: entries})
		// Poison the top of the queue-depth order.
		st.MarkGone(n, true)    // crashed
		st.MarkGone(n-1, false) // signed off
		st.HandleDigest(&wire.GossipDigest{From: 2, Round: 2, Entries: []wire.GossipEntry{
			{Site: n - 2, Status: uint8(StatusSuspect), OriginRound: 1, QueueLen: (n - 2) * 4},
		}})
		exclude := map[types.SiteID]bool{n - 3: true}

		rng := rand.New(rand.NewSource(seed))
		counts := make(map[types.SiteID]int)
		const rounds = 4000
		for i := 0; i < rounds; i++ {
			got := st.PickTwoChoices(rng, exclude)
			if got == types.InvalidSite {
				t.Fatalf("seed %d: no candidate despite eligible peers", seed)
			}
			if got == 1 || got > n-4 {
				t.Fatalf("seed %d: picked ineligible site %v", seed, got)
			}
			counts[got]++
		}
		// Eligible donors are 2..n-4 with queue depth rising in id
		// order. Split them in half: the heavy half must dominate.
		mid := types.SiteID((2 + n - 4) / 2)
		light, heavy := 0, 0
		for id, c := range counts {
			if id <= mid {
				light += c
			} else {
				heavy += c
			}
		}
		if heavy < 2*light {
			t.Fatalf("seed %d: p2c bias too weak: heavy half %d picks, light half %d", seed, heavy, light)
		}
	}
}
