// Package gossip implements the SDVM's epidemic membership and load
// dissemination layer. Instead of every site broadcasting LoadReport
// and SignOffNotice to the whole roster (O(N) messages per site per
// tick — the scaling wall the paper's broadcast cluster list hits),
// each site pushes a bounded digest of its membership view to Fanout
// random peers per tick. Rumors — joins, sign-offs, crashes, load
// changes — reach every site in O(log N) rounds, and no dissemination
// path ever iterates the full roster.
//
// Liveness follows SWIM: a site that falls silent turns suspect, then
// dead; a suspected site that sees its own obituary refutes it by
// bumping its incarnation number, which only the subject itself may
// do. Tombstones (dead or left) ride digests for TombstoneTTL rounds
// and are retained forever locally so stale alive copies can never
// resurrect a departed site.
package gossip

import (
	"math/rand"
	"sync"

	"repro/internal/cluster"
	"repro/internal/msgbus"
	"repro/internal/types"
	"repro/internal/wire"
)

// Manager wires the protocol State to the message bus and the cluster
// roster. The State is pure and lock-free; the Manager owns the mutex
// and applies roster side effects only after releasing it, because the
// roster fires user callbacks (OnJoin/OnLeave) that re-enter gossip.
type Manager struct {
	bus *msgbus.Bus
	cm  *cluster.Manager
	cfg Config

	mu    sync.Mutex
	st    *State         // nil until Start (self id unknown before sign-on)
	burst []types.SiteID // farewell targets recorded by Leave
}

// New creates the gossip manager and registers it on the bus. Start
// must be called once the local site id is known (after Bootstrap or
// Join).
func New(bus *msgbus.Bus, cm *cluster.Manager, cfg Config) *Manager {
	m := &Manager{bus: bus, cm: cm, cfg: cfg.withDefaults()}
	bus.Register(types.MgrGossip, m)
	return m
}

// Start seeds the protocol state from the roster snapshot the sign-on
// handshake delivered. Digests arriving before Start are dropped — the
// epidemic retries every tick, so nothing is lost.
func (m *Manager) Start() {
	self := m.cm.Self()
	peers := m.cm.Sites()
	m.mu.Lock()
	m.st = NewState(self, m.cfg)
	for _, p := range peers {
		m.st.SeedPeer(p)
	}
	m.mu.Unlock()
}

// AddSite installs (or completes) a peer row and marks it hot. Wired to
// the roster's OnJoin hook: when this site is the sign-on contact it may
// be the only site that knows the newcomer exists, so the row must ride
// outgoing digests immediately (Announce) rather than wait for the
// newcomer's own gossip. Idempotent, so merges that originated from
// gossip itself loop back harmlessly — at worst refreshing a ride budget.
func (m *Manager) AddSite(info types.SiteInfo) {
	m.mu.Lock()
	if m.st != nil {
		m.st.Announce(info)
	}
	m.mu.Unlock()
}

// MarkGone tombstones a peer on local authority (heartbeat crash
// declaration, legacy goodbye broadcast). Wired to the roster's
// OnLeave hook; idempotent.
func (m *Manager) MarkGone(id types.SiteID, crashed bool) {
	m.mu.Lock()
	if m.st != nil {
		m.st.MarkGone(id, crashed)
	}
	m.mu.Unlock()
}

// Accuse feeds external liveness evidence (a failed heartbeat probe)
// into the protocol as suspicion instead of removing the site
// outright: a falsely accused site refutes epidemically — a routine
// event during join waves, when a probe target cannot yet route its
// Pong back to a brand-new prober — while a dead one ages out.
func (m *Manager) Accuse(id types.SiteID) {
	m.mu.Lock()
	if m.st != nil {
		m.st.Accuse(id)
	}
	m.mu.Unlock()
}

// Tick runs one protocol round: refresh the local load vector, age the
// current window, and push this round's digest to Fanout random peers.
// Called from the site manager's stats ticker, so gossip needs no
// goroutine of its own.
func (m *Manager) Tick(load float64, queueLen, programs int32) {
	m.mu.Lock()
	if m.st == nil {
		m.mu.Unlock()
		return
	}
	m.st.SetLocalStats(load, queueLen, programs)
	targets, digest, events := m.st.Tick()
	m.mu.Unlock()

	m.apply(events)
	for _, t := range targets {
		_ = m.bus.Send(t, types.MgrGossip, types.MgrGossip, digest)
	}
}

// Introduce pushes a one-entry digest carrying only this site's row
// directly to target, ahead of a request on the same connection. Both
// transports deliver FIFO per peer and the bus inbox preserves arrival
// order, so the peer merges this site's routing info before it
// dispatches the request — it can route the reply even if it had never
// heard of this site (a fresh joiner querying the cluster before the
// epidemic spread its row).
func (m *Manager) Introduce(target types.SiteID) {
	m.mu.Lock()
	if m.st == nil {
		m.mu.Unlock()
		return
	}
	d := m.st.SelfDigest()
	m.mu.Unlock()
	_ = m.bus.Send(target, types.MgrGossip, types.MgrGossip, d)
}

// Leave marks the local site's own row as a sign-off tombstone and
// pushes the farewell digest to a final burst of peers. The epidemic
// carries the goodbye from there; returns immediately.
func (m *Manager) Leave() {
	m.mu.Lock()
	if m.st == nil {
		m.mu.Unlock()
		return
	}
	targets, digest := m.st.Leave()
	m.burst = targets
	m.mu.Unlock()

	for _, t := range targets {
		_ = m.bus.Send(t, types.MgrGossip, types.MgrGossip, digest)
	}
}

// BurstPeers returns the targets of the sign-off farewell burst — the
// only peers worth flushing before teardown, replacing the O(N)
// every-peer ping round the broadcast path needed.
func (m *Manager) BurstPeers() []types.SiteID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]types.SiteID, len(m.burst))
	copy(out, m.burst)
	return out
}

// PickHelpTarget selects a help-request donor by power-of-two-choices
// over the gossiped load table, using the caller's seeded rng so the
// scheduler's decisions stay deterministic per site. Returns
// InvalidSite when no eligible candidate is known.
func (m *Manager) PickHelpTarget(rng *rand.Rand, exclude map[types.SiteID]bool) types.SiteID {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.st == nil {
		return types.InvalidSite
	}
	return m.st.PickTwoChoices(rng, exclude)
}

// Round returns the local protocol round (diagnostics, tests).
func (m *Manager) Round() uint32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.st == nil {
		return 0
	}
	return m.st.Round()
}

// HandleMessage implements msgbus.Handler: merge incoming digests
// (answering with an anti-entropy delta when we know fresher state)
// and deltas (never answered, so there is no reply ping-pong).
func (m *Manager) HandleMessage(msg *wire.Message) {
	switch p := msg.Payload.(type) {
	case *wire.GossipDigest:
		if !p.From.Valid() {
			return
		}
		m.mu.Lock()
		if m.st == nil {
			m.mu.Unlock()
			return
		}
		delta, events := m.st.HandleDigest(p)
		m.mu.Unlock()
		m.apply(events)
		if delta != nil {
			_ = m.bus.Send(p.From, types.MgrGossip, types.MgrGossip, delta)
		}
	case *wire.GossipDelta:
		m.mu.Lock()
		if m.st == nil {
			m.mu.Unlock()
			return
		}
		events := m.st.HandleDelta(p)
		m.mu.Unlock()
		m.apply(events)
	}
}

// apply pushes merge-decided membership events into the cluster roster.
// Runs without the gossip lock: Remove and MergeSite fire OnLeave and
// OnJoin hooks that call straight back into MarkGone and AddSite.
func (m *Manager) apply(events []Event) {
	for _, ev := range events {
		switch ev.Kind {
		case EventJoin:
			m.cm.MergeSite(ev.Info)
		case EventLeave:
			m.cm.Remove(ev.Site, ev.Crashed)
		case EventStats:
			m.cm.UpdateStats(ev.Site, ev.Load, ev.QueueLen, ev.Programs)
		}
	}
}
