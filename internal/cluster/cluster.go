// Package cluster implements the SDVM's cluster manager (paper §4).
//
// The cluster manager "maintains a list containing information about
// every site participating in the cluster": logical and physical
// addresses, platform id, relative speed, and load statistics. It runs
// the sign-on protocol (paper §3.4), allocates logical ids with one of
// three strategies, propagates membership knowledge, and answers the
// scheduling manager's question "which site should I send a help request
// to?" based on the statistics it holds about other sites.
package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/msgbus"
	"repro/internal/types"
	"repro/internal/wire"
)

// BootstrapID is the logical id the first site of a cluster assigns
// itself.
const BootstrapID types.SiteID = 1

// Config parameterizes a cluster manager.
type Config struct {
	// PhysAddr is this site's network-manager listen address.
	PhysAddr string
	// Platform is the site's (simulated) platform id.
	Platform types.PlatformID
	// Speed is the site's relative processing speed (1.0 = reference).
	Speed float64
	// Strategy selects the logical-id allocation concept.
	Strategy Strategy
	// ContingentBlock is the block size for StrategyContingent.
	ContingentBlock uint32
	// Reliable marks this site as part of the reliable core
	// (paper §2.2): checkpoints of unsafe sites are stored here.
	Reliable bool
	// Seed makes help-target tie-breaking deterministic in tests;
	// 0 derives a seed from the physical address.
	Seed int64
}

// Manager is one site's cluster manager.
type Manager struct {
	bus  *msgbus.Bus
	cfg  Config
	rand *rand.Rand

	mu        sync.RWMutex
	self      types.SiteInfo
	sites     map[types.SiteID]types.SiteInfo // excludes self
	departed  map[types.SiteID]bool           // signed-off or crashed
	alloc     IDAllocator
	bootstrap bool

	// onJoin/onLeave observers; the site and checkpoint managers hook
	// membership changes.
	onChangeMu sync.Mutex
	onJoin     []func(types.SiteInfo)
	onLeave    []func(types.SiteID, bool) // crashed?

	// gossipMode suppresses the broadcast membership paths (newcomer
	// announcements) — the gossip manager carries them instead. Set once
	// during daemon wiring, before the bus starts.
	gossipMode bool
}

// New returns a cluster manager bound to bus. It registers itself as the
// bus handler for MgrCluster.
func New(bus *msgbus.Bus, cfg Config) *Manager {
	if cfg.Speed <= 0 {
		cfg.Speed = 1.0
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = int64(len(cfg.PhysAddr) + 1)
		for _, c := range cfg.PhysAddr {
			seed = seed*131 + int64(c)
		}
	}
	m := &Manager{
		bus:      bus,
		cfg:      cfg,
		rand:     rand.New(rand.NewSource(seed)),
		sites:    make(map[types.SiteID]types.SiteInfo),
		departed: make(map[types.SiteID]bool),
	}
	bus.Register(types.MgrCluster, m)
	return m
}

// SetPhysAddr records the actually bound listen address (the configured
// one may have been ":0"-style). Must be called before Bootstrap or Join.
func (m *Manager) SetPhysAddr(addr string) {
	m.mu.Lock()
	m.cfg.PhysAddr = addr
	m.self.PhysAddr = addr
	m.mu.Unlock()
}

// Bootstrap starts a brand-new cluster: this site takes BootstrapID and
// becomes the root of the id space (and, implicitly, a code distribution
// site — the paper notes the application's start site always is one).
func (m *Manager) Bootstrap() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bootstrap = true
	m.self = types.SiteInfo{
		ID:         BootstrapID,
		PhysAddr:   m.cfg.PhysAddr,
		Platform:   m.cfg.Platform,
		Speed:      m.cfg.Speed,
		IsCodeDist: true,
		Reliable:   m.cfg.Reliable,
	}
	m.bus.SetSelf(BootstrapID)
	m.installAllocatorLocked()
}

// Join signs on to an existing cluster through the site listening at
// contactAddr (paper §3.4: the joining site knows exactly one address,
// supplied "by a configuration file or direct input").
func (m *Manager) Join(contactAddr string, timeout time.Duration) error {
	req := &wire.SignOnRequest{
		PhysAddr: m.cfg.PhysAddr,
		Platform: m.cfg.Platform,
		Speed:    m.cfg.Speed,
		Reliable: m.cfg.Reliable,
	}
	reply, err := m.bus.RequestAddr(contactAddr, types.MgrCluster, types.MgrCluster, req, timeout)
	if err != nil {
		return fmt.Errorf("cluster: sign-on via %s: %w", contactAddr, err)
	}
	ack, ok := reply.Payload.(*wire.SignOnReply)
	if !ok {
		return fmt.Errorf("%w: sign-on reply %T", types.ErrBadMessage, reply.Payload)
	}

	m.mu.Lock()
	m.self = types.SiteInfo{
		ID:       ack.Assigned,
		PhysAddr: m.cfg.PhysAddr,
		Platform: m.cfg.Platform,
		Speed:    m.cfg.Speed,
		Reliable: m.cfg.Reliable,
	}
	// Dissemination mode is a cluster property, not a site flag: adopt
	// whatever the contact reports, overruling the local configuration
	// (the daemon re-wires its managers from GossipMode after Join).
	m.gossipMode = ack.Gossip
	m.bus.SetSelf(ack.Assigned)
	for _, s := range ack.Cluster {
		if s.ID != ack.Assigned && s.PhysAddr != m.cfg.PhysAddr {
			m.sites[s.ID] = s
		}
	}
	// Drop any phantom self entry a racing announcement created before
	// the assigned id was known.
	delete(m.sites, ack.Assigned)
	m.installAllocatorLocked()
	m.mu.Unlock()
	return nil
}

// installAllocatorLocked wires the id-allocation strategy once the local
// id is known. Caller holds m.mu.
func (m *Manager) installAllocatorLocked() {
	switch m.cfg.Strategy {
	case StrategyCentral:
		if m.bootstrap {
			m.alloc = newCounterAllocator(BootstrapID + 1)
		} else {
			m.alloc = &remoteAllocator{bus: m.bus, server: BootstrapID}
		}
	case StrategyContingent:
		if m.bootstrap {
			m.alloc = newCounterAllocator(BootstrapID + 1)
		} else {
			m.alloc = newContingentAllocator(m.bus, BootstrapID, m.cfg.ContingentBlock)
		}
	case StrategyModulo:
		m.alloc = newModuloAllocator(m.self.ID)
	}
}

// Self returns this site's current cluster-list entry.
func (m *Manager) Self() types.SiteInfo {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.self
}

// SelfID returns this site's logical id.
func (m *Manager) SelfID() types.SiteID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.self.ID
}

// UpdateSelf refreshes the local statistics that travel in load reports.
func (m *Manager) UpdateSelf(load float64, queueLen, programs int32) {
	m.mu.Lock()
	m.self.Load = load
	m.self.QueueLen = queueLen
	m.self.Programs = programs
	m.mu.Unlock()
}

// SetCodeDist marks this site as a code distribution site.
func (m *Manager) SetCodeDist(v bool) {
	m.mu.Lock()
	m.self.IsCodeDist = v
	m.mu.Unlock()
}

// PhysAddr implements msgbus.Resolver using the cluster list.
func (m *Manager) PhysAddr(id types.SiteID) (string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if id == m.self.ID {
		return m.self.PhysAddr, nil
	}
	if s, ok := m.sites[id]; ok {
		return s.PhysAddr, nil
	}
	if m.departed[id] {
		return "", &types.SiteError{Err: types.ErrSiteLeft, Site: id}
	}
	return "", &types.SiteError{Err: types.ErrSiteUnknown, Site: id}
}

// SiteIDs implements msgbus.Resolver: all known live sites, self included.
func (m *Manager) SiteIDs() []types.SiteID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]types.SiteID, 0, len(m.sites)+1)
	if m.self.ID.Valid() {
		out = append(out, m.self.ID)
	}
	for id := range m.sites {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Sites returns a snapshot of all known peer entries (excluding self).
func (m *Manager) Sites() []types.SiteInfo {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]types.SiteInfo, 0, len(m.sites))
	for _, s := range m.sites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup returns the cluster-list entry for id.
func (m *Manager) Lookup(id types.SiteID) (types.SiteInfo, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if id == m.self.ID {
		return m.self, true
	}
	s, ok := m.sites[id]
	return s, ok
}

// Size returns the number of live sites known, including self.
func (m *Manager) Size() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := len(m.sites)
	if m.self.ID.Valid() {
		n++
	}
	return n
}

// ReliableSites returns the known reliable-core sites (paper §2.2).
func (m *Manager) ReliableSites() []types.SiteID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []types.SiteID
	if m.self.Reliable && m.self.ID.Valid() {
		out = append(out, m.self.ID)
	}
	for id, s := range m.sites {
		if s.Reliable {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CodeDistSites returns the known code distribution sites.
func (m *Manager) CodeDistSites() []types.SiteID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []types.SiteID
	if m.self.IsCodeDist && m.self.ID.Valid() {
		out = append(out, m.self.ID)
	}
	for id, s := range m.sites {
		if s.IsCodeDist {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OnJoin registers a callback fired when a new site appears in the list.
func (m *Manager) OnJoin(f func(types.SiteInfo)) {
	m.onChangeMu.Lock()
	m.onJoin = append(m.onJoin, f)
	m.onChangeMu.Unlock()
}

// OnLeave registers a callback fired when a site departs; crashed tells
// a controlled sign-off (false) from a detected crash (true).
func (m *Manager) OnLeave(f func(id types.SiteID, crashed bool)) {
	m.onChangeMu.Lock()
	m.onLeave = append(m.onLeave, f)
	m.onChangeMu.Unlock()
}

// SetGossipMode turns off the broadcast membership paths: newcomer
// announcements ride the gossip digests instead of a cluster-wide
// SiteAnnounce. Must be set during wiring, before any traffic flows.
func (m *Manager) SetGossipMode(on bool) {
	m.mu.Lock()
	m.gossipMode = on
	m.mu.Unlock()
}

// GossipMode reports the cluster's dissemination mode: the local wiring
// for the bootstrap site, the contact's sign-on answer for a joiner.
func (m *Manager) GossipMode() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.gossipMode
}

// Departed reports whether id is known to have signed off or crashed.
// Send paths use it to skip peers the roster has marked gone.
func (m *Manager) Departed(id types.SiteID) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.departed[id]
}

// MergeSite adds or refreshes a peer entry learned out of band — the
// gossip manager's path into the roster for sites introduced by a
// digest. Fires OnJoin exactly like an announcement would. Gossip
// events are incarnation-fenced, so a merge for a departed id is an
// authoritative revival (the subject itself outbid its tombstone) and
// clears the departed mark that blocks ordinary announcements.
func (m *Manager) MergeSite(s types.SiteInfo) {
	if s.ID.Valid() {
		m.mu.Lock()
		delete(m.departed, s.ID)
		m.mu.Unlock()
	}
	m.merge(s)
}

// UpdateStats refreshes the load vector of a known peer (the gossip
// equivalent of handleLoadReport). Unknown or departed ids are ignored.
func (m *Manager) UpdateStats(id types.SiteID, load float64, queueLen, programs int32) {
	m.mu.Lock()
	if s, ok := m.sites[id]; ok {
		s.Load = load
		s.QueueLen = queueLen
		s.Programs = programs
		m.sites[id] = s
	}
	m.mu.Unlock()
}

// merge adds or refreshes a peer entry, firing OnJoin for new sites.
func (m *Manager) merge(s types.SiteInfo) {
	if !s.ID.Valid() {
		return
	}
	m.mu.Lock()
	// The physical-address check covers the sign-on race: the cluster's
	// announcement of *this* site can arrive before Join has recorded
	// the assigned id, and must not create a phantom peer.
	if s.ID == m.self.ID || s.PhysAddr == m.cfg.PhysAddr || m.departed[s.ID] {
		m.mu.Unlock()
		return
	}
	_, known := m.sites[s.ID]
	m.sites[s.ID] = s
	m.mu.Unlock()

	if !known {
		m.onChangeMu.Lock()
		cbs := append([]func(types.SiteInfo){}, m.onJoin...)
		m.onChangeMu.Unlock()
		for _, f := range cbs {
			f(s)
		}
	}
}

// Remove drops a site from the list (sign-off or crash).
func (m *Manager) Remove(id types.SiteID, crashed bool) {
	m.mu.Lock()
	_, known := m.sites[id]
	delete(m.sites, id)
	m.departed[id] = true
	m.mu.Unlock()
	if !known {
		return
	}
	m.onChangeMu.Lock()
	cbs := append([]func(types.SiteID, bool){}, m.onLeave...)
	m.onChangeMu.Unlock()
	for _, f := range cbs {
		f(id, crashed)
	}
}

// PickHelpTarget chooses a site for a help request: "choose a site which
// is probably not idle itself" (paper §4). Sites with queued work are
// preferred, then higher load; ties break randomly so simultaneous idle
// sites do not stampede one victim.
func (m *Manager) PickHelpTarget(exclude map[types.SiteID]bool) types.SiteID {
	m.mu.RLock()
	type cand struct {
		id    types.SiteID
		queue int32
		load  float64
	}
	cands := make([]cand, 0, len(m.sites))
	for id, s := range m.sites {
		if exclude[id] || id == m.self.ID {
			continue
		}
		cands = append(cands, cand{id, s.QueueLen, s.Load})
	}
	m.mu.RUnlock()
	if len(cands) == 0 {
		return types.InvalidSite
	}

	best := make([]cand, 0, len(cands))
	// Prefer sites known to have queued frames.
	for _, c := range cands {
		if c.queue > 0 {
			best = append(best, c)
		}
	}
	if len(best) == 0 {
		// Fall back to busiest by load.
		maxLoad := -1.0
		for _, c := range cands {
			if c.load > maxLoad {
				maxLoad = c.load
			}
		}
		for _, c := range cands {
			if c.load >= maxLoad-1e-9 {
				best = append(best, c)
			}
		}
	}
	m.mu.Lock()
	pick := best[m.rand.Intn(len(best))]
	m.mu.Unlock()
	return pick.id
}

// BroadcastLoad sends this site's statistics to every peer.
func (m *Manager) BroadcastLoad() {
	self := m.Self()
	if !self.ID.Valid() {
		return
	}
	_ = m.bus.Send(types.Broadcast, types.MgrCluster, types.MgrCluster, &wire.LoadReport{
		Site:     self.ID,
		Load:     self.Load,
		QueueLen: self.QueueLen,
		Programs: self.Programs,
	})
}

// AnnounceSignOff tells every peer this site is leaving (after the site
// manager relocated all state).
func (m *Manager) AnnounceSignOff() {
	_ = m.bus.Send(types.Broadcast, types.MgrCluster, types.MgrCluster,
		&wire.SignOffNotice{Leaving: m.SelfID()})
}

// HandleMessage implements msgbus.Handler.
func (m *Manager) HandleMessage(msg *wire.Message) {
	switch p := msg.Payload.(type) {
	case *wire.SignOnRequest:
		// Allocation may call out to the id server; never block the
		// dispatcher.
		go m.handleSignOn(msg, p)
	case *wire.IDBlockRequest:
		m.handleIDBlock(msg, p)
	case *wire.SiteAnnounce:
		for _, s := range p.Sites {
			m.merge(s)
		}
	case *wire.SignOffNotice:
		m.Remove(p.Leaving, false)
	case *wire.CrashNotice:
		m.Remove(p.Dead, true)
	case *wire.LoadReport:
		m.handleLoadReport(p)
	case *wire.Ping:
		_ = m.bus.Reply(msg, types.MgrCluster, &wire.Pong{Nonce: p.Nonce})
	}
}

func (m *Manager) handleSignOn(msg *wire.Message, req *wire.SignOnRequest) {
	m.mu.RLock()
	alloc := m.alloc
	m.mu.RUnlock()
	if alloc == nil {
		_ = m.bus.ReplyErr(msg, types.MgrCluster, wire.ErrCodeShutdown, "site not signed on itself")
		return
	}
	id, err := alloc.Next()
	if err != nil {
		_ = m.bus.ReplyErr(msg, types.MgrCluster, wire.ErrCodeGeneric, err.Error())
		return
	}

	newcomer := types.SiteInfo{
		ID:       id,
		PhysAddr: req.PhysAddr,
		Platform: req.Platform,
		Speed:    req.Speed,
		Reliable: req.Reliable,
	}
	m.merge(newcomer)

	// Snapshot includes us, the newcomer, and everyone we know.
	m.mu.RLock()
	snapshot := make([]types.SiteInfo, 0, len(m.sites)+1)
	snapshot = append(snapshot, m.self)
	for _, s := range m.sites {
		snapshot = append(snapshot, s)
	}
	gossiping := m.gossipMode
	m.mu.RUnlock()

	// The requester had no logical id when it sent the sign-on (its Src
	// is InvalidSite), so a plain Reply could not be routed. Address the
	// reply to the id just assigned — the cluster list already maps it
	// to the requester's physical address — and correlate by sequence
	// number as usual.
	reply := &wire.Message{
		Src:     m.SelfID(),
		Dst:     id,
		SrcMgr:  types.MgrCluster,
		DstMgr:  msg.SrcMgr,
		Seq:     m.bus.NextSeq(),
		Reply:   msg.Seq,
		Payload: &wire.SignOnReply{Assigned: id, Gossip: gossiping, Cluster: snapshot},
	}
	if err := m.bus.SendMsg(reply); err != nil {
		return
	}
	// Propagate the newcomer to everyone else (paper: "A's id and status
	// information is then propagated to the other sites of the cluster").
	// In gossip mode the merge above already seeded a hot row via the
	// OnJoin hook; the epidemic spreads it in O(log N) rounds, so the
	// O(cluster) broadcast is skipped.
	if gossiping {
		return
	}
	_ = m.bus.Send(types.Broadcast, types.MgrCluster, types.MgrCluster,
		&wire.SiteAnnounce{Sites: []types.SiteInfo{newcomer}})
}

func (m *Manager) handleIDBlock(msg *wire.Message, req *wire.IDBlockRequest) {
	m.mu.RLock()
	alloc := m.alloc
	bootstrap := m.bootstrap
	m.mu.RUnlock()
	if !bootstrap || alloc == nil {
		_ = m.bus.ReplyErr(msg, types.MgrCluster, wire.ErrCodeGeneric, "not an id server")
		return
	}
	want := req.Want
	if want == 0 {
		want = 1
	}
	first, err := alloc.Grant(want)
	if err != nil {
		_ = m.bus.ReplyErr(msg, types.MgrCluster, wire.ErrCodeGeneric, err.Error())
		return
	}
	_ = m.bus.Reply(msg, types.MgrCluster, &wire.IDBlockReply{First: first, Count: want})
}

func (m *Manager) handleLoadReport(p *wire.LoadReport) {
	m.mu.Lock()
	if s, ok := m.sites[p.Site]; ok {
		s.Load = p.Load
		s.QueueLen = p.QueueLen
		s.Programs = p.Programs
		m.sites[p.Site] = s
	}
	m.mu.Unlock()
}
