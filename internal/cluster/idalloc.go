package cluster

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/msgbus"
	"repro/internal/types"
	"repro/internal/wire"
)

// IDAllocator produces cluster-unique logical site ids for sign-ons.
//
// The paper (§4, cluster manager) discusses three concepts, all of which
// are implemented here and compared in the A-4 ablation:
//
//   - a central contact site that is "always asked for new ids" — simple
//     but a single point of failure (Central);
//   - id servers holding a contingent of free ids handed out in blocks
//     (Contingent);
//   - a fixed number of id servers that each emit "any multiple of their
//     own id (like a modulo function)" — no communication at all after
//     setup (Modulo).
type IDAllocator interface {
	// Next returns a fresh cluster-unique logical id. It may perform
	// network requests (and thus block) depending on the strategy.
	Next() (types.SiteID, error)
	// Grant carves a block of ids out of this allocator's space for a
	// peer (contingent replenishment). Allocators that do not own id
	// space return an error.
	Grant(count uint32) (first types.SiteID, err error)
}

// Strategy selects an id-allocation concept.
type Strategy uint8

// Allocation strategies (paper §4).
const (
	// StrategyCentral asks the cluster's bootstrap site for every id.
	StrategyCentral Strategy = iota
	// StrategyContingent asks the bootstrap site for blocks of ids and
	// serves sign-ons locally from the current block.
	StrategyContingent
	// StrategyModulo derives ids arithmetically from the local id with
	// a fixed stride; no communication after sign-on.
	StrategyModulo
)

func (s Strategy) String() string {
	switch s {
	case StrategyCentral:
		return "central"
	case StrategyContingent:
		return "contingent"
	case StrategyModulo:
		return "modulo"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// counterAllocator owns a contiguous id space starting above the ids it
// has already handed out. The bootstrap site uses one as the root of both
// the central and the contingent strategies.
type counterAllocator struct {
	mu   sync.Mutex
	next uint32
}

func newCounterAllocator(first types.SiteID) *counterAllocator {
	return &counterAllocator{next: uint32(first)}
}

func (a *counterAllocator) Next() (types.SiteID, error) {
	id, err := a.Grant(1)
	return id, err
}

func (a *counterAllocator) Grant(count uint32) (types.SiteID, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	first := a.next
	a.next += count
	if a.next < first { // wrapped
		a.next = first
		return types.InvalidSite, types.ErrIDExhausted
	}
	return types.SiteID(first), nil
}

// remoteAllocator forwards every allocation to the id server (central
// strategy on a non-bootstrap site).
type remoteAllocator struct {
	bus    *msgbus.Bus
	server types.SiteID
}

func (a *remoteAllocator) Next() (types.SiteID, error) {
	id, err := a.request(1)
	return id, err
}

func (a *remoteAllocator) Grant(uint32) (types.SiteID, error) {
	return types.InvalidSite, fmt.Errorf("cluster: central strategy: only the id server grants blocks")
}

func (a *remoteAllocator) request(count uint32) (types.SiteID, error) {
	reply, err := a.bus.Request(a.server, types.MgrCluster, types.MgrCluster,
		&wire.IDBlockRequest{Want: count}, 10*time.Second)
	if err != nil {
		return types.InvalidSite, fmt.Errorf("cluster: id request: %w", err)
	}
	grant, ok := reply.Payload.(*wire.IDBlockReply)
	if !ok {
		return types.InvalidSite, fmt.Errorf("%w: unexpected id reply %T", types.ErrBadMessage, reply.Payload)
	}
	if grant.Count < count {
		return types.InvalidSite, types.ErrIDExhausted
	}
	return grant.First, nil
}

// contingentAllocator serves ids from a locally held block, replenishing
// from the id server when the block runs dry (paper: "if the contingent
// is used up ... generate and distribute new id contingents").
type contingentAllocator struct {
	remote    remoteAllocator
	blockSize uint32

	mu    sync.Mutex
	next  uint32
	limit uint32 // exclusive
}

func newContingentAllocator(bus *msgbus.Bus, server types.SiteID, blockSize uint32) *contingentAllocator {
	if blockSize == 0 {
		blockSize = 16
	}
	return &contingentAllocator{
		remote:    remoteAllocator{bus: bus, server: server},
		blockSize: blockSize,
	}
}

func (a *contingentAllocator) Next() (types.SiteID, error) {
	a.mu.Lock()
	if a.next < a.limit {
		id := types.SiteID(a.next)
		a.next++
		a.mu.Unlock()
		return id, nil
	}
	a.mu.Unlock()

	// Replenish outside the lock; concurrent callers may fetch blocks
	// in parallel, which only costs unused ids, never uniqueness.
	first, err := a.remote.request(a.blockSize)
	if err != nil {
		return types.InvalidSite, err
	}
	a.mu.Lock()
	a.next = uint32(first) + 1
	a.limit = uint32(first) + a.blockSize
	a.mu.Unlock()
	return first, nil
}

func (a *contingentAllocator) Grant(uint32) (types.SiteID, error) {
	return types.InvalidSite, fmt.Errorf("cluster: contingent strategy: only the id server grants blocks")
}

// ModuloStride is the fixed spacing of the modulo strategy: a site with
// id s emits s + k*ModuloStride for k = 1, 2, ... Ids stay unique as long
// as every emitting site's own id is below the stride, which holds for
// any cluster bootstrapped below 1024 sites.
const ModuloStride = 1024

// moduloAllocator emits ids arithmetically — zero communication.
type moduloAllocator struct {
	mu   sync.Mutex
	self types.SiteID
	k    uint32
}

func newModuloAllocator(self types.SiteID) *moduloAllocator {
	return &moduloAllocator{self: self}
}

func (a *moduloAllocator) Next() (types.SiteID, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.k++
	id := uint64(a.self) + uint64(a.k)*ModuloStride
	if id >= uint64(types.Broadcast) {
		return types.InvalidSite, types.ErrIDExhausted
	}
	return types.SiteID(id), nil
}

func (a *moduloAllocator) Grant(uint32) (types.SiteID, error) {
	return types.InvalidSite, fmt.Errorf("cluster: modulo strategy has no grantable id space")
}
