package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/msgbus"
	"repro/internal/netmgr"
	"repro/internal/security"
	"repro/internal/transport/inproc"
	"repro/internal/types"
	"repro/internal/wire"
)

// node is a minimal site: network manager + bus + cluster manager.
type node struct {
	net *netmgr.Manager
	bus *msgbus.Bus
	cm  *Manager
}

func (n *node) close() {
	n.bus.Close()
	n.net.Close()
}

// newNode wires one site onto the fabric. The cluster manager doubles as
// the bus's resolver, exactly as in the daemon.
func newNode(t *testing.T, fab *inproc.Fabric, name string, cfg Config) *node {
	t.Helper()
	n := &node{}
	cfg.PhysAddr = name
	var resolver msgbus.Resolver
	// Indirection: the bus needs the resolver at construction, the
	// cluster manager needs the bus. Use a late-bound forwarder.
	fwd := &forwardResolver{}
	resolver = fwd

	n.net = netmgr.New(fab, security.Plaintext{}, func(d []byte) { n.bus.OnDatagram(d) })
	n.bus = msgbus.New(resolver, n.net)
	n.cm = New(n.bus, cfg)
	fwd.m = n.cm
	if _, err := n.net.Listen(name); err != nil {
		t.Fatal(err)
	}
	n.bus.Start()
	t.Cleanup(n.close)
	return n
}

type forwardResolver struct{ m *Manager }

func (f *forwardResolver) PhysAddr(id types.SiteID) (string, error) { return f.m.PhysAddr(id) }
func (f *forwardResolver) SiteIDs() []types.SiteID                  { return f.m.SiteIDs() }

// buildCluster bootstraps one site and joins n-1 more, all through the
// bootstrap site as contact.
func buildCluster(t *testing.T, n int, strategy Strategy) []*node {
	t.Helper()
	fab := inproc.New(inproc.LinkProfile{})
	t.Cleanup(fab.Close)

	nodes := make([]*node, n)
	nodes[0] = newNode(t, fab, "site-0", Config{Strategy: strategy})
	nodes[0].cm.Bootstrap()
	for i := 1; i < n; i++ {
		nodes[i] = newNode(t, fab, fmt.Sprintf("site-%d", i), Config{Strategy: strategy})
		if err := nodes[i].cm.Join("site-0", 5*time.Second); err != nil {
			t.Fatalf("site %d join: %v", i, err)
		}
	}
	return nodes
}

// waitFor polls until cond holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestBootstrapTakesID1(t *testing.T) {
	nodes := buildCluster(t, 1, StrategyCentral)
	if got := nodes[0].cm.SelfID(); got != BootstrapID {
		t.Fatalf("bootstrap id = %v", got)
	}
	if nodes[0].cm.Size() != 1 {
		t.Fatalf("Size = %d", nodes[0].cm.Size())
	}
	if !nodes[0].cm.Self().IsCodeDist {
		t.Error("bootstrap site must be a code distribution site")
	}
}

func TestJoinAssignsUniqueIDs(t *testing.T) {
	for _, strat := range []Strategy{StrategyCentral, StrategyContingent, StrategyModulo} {
		t.Run(strat.String(), func(t *testing.T) {
			nodes := buildCluster(t, 5, strat)
			seen := map[types.SiteID]bool{}
			for i, n := range nodes {
				id := n.cm.SelfID()
				if !id.Valid() {
					t.Fatalf("site %d has invalid id", i)
				}
				if seen[id] {
					t.Fatalf("duplicate id %v", id)
				}
				seen[id] = true
			}
		})
	}
}

func TestJoinPropagatesClusterList(t *testing.T) {
	nodes := buildCluster(t, 4, StrategyCentral)
	// Announcements are asynchronous; every site must eventually know
	// all 4 members.
	for i, n := range nodes {
		n := n
		waitFor(t, fmt.Sprintf("site %d full list", i), func() bool {
			return n.cm.Size() == 4
		})
	}
}

func TestJoinViaNonBootstrapSite(t *testing.T) {
	// With the central strategy, a sign-on handled by a non-bootstrap
	// site must forward the id allocation to the bootstrap site.
	nodes := buildCluster(t, 2, StrategyCentral)
	fabNode := nodes[1]
	waitFor(t, "site-1 knows both", func() bool { return fabNode.cm.Size() == 2 })

	// New site joins via site-1, not the bootstrap.
	fab := fabNode.net // reuse? no — need the fabric. Rebuild instead:
	_ = fab
	// Simpler: join through site-1's address on the same fabric used by
	// buildCluster. We reach it via a fresh node on that fabric.
	// buildCluster's fabric is captured by the nodes' transports, so we
	// recreate the scenario from scratch here.
	fab2 := inproc.New(inproc.LinkProfile{})
	t.Cleanup(fab2.Close)
	a := newNode(t, fab2, "a", Config{Strategy: StrategyCentral})
	a.cm.Bootstrap()
	b := newNode(t, fab2, "b", Config{Strategy: StrategyCentral})
	if err := b.cm.Join("a", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	c := newNode(t, fab2, "c", Config{Strategy: StrategyCentral})
	if err := c.cm.Join("b", 5*time.Second); err != nil {
		t.Fatalf("join via non-bootstrap: %v", err)
	}
	ids := map[types.SiteID]bool{a.cm.SelfID(): true, b.cm.SelfID(): true, c.cm.SelfID(): true}
	if len(ids) != 3 {
		t.Fatalf("ids not unique: %v", ids)
	}
}

func TestConcurrentJoins(t *testing.T) {
	for _, strat := range []Strategy{StrategyCentral, StrategyContingent, StrategyModulo} {
		t.Run(strat.String(), func(t *testing.T) {
			fab := inproc.New(inproc.LinkProfile{})
			t.Cleanup(fab.Close)
			boot := newNode(t, fab, "boot", Config{Strategy: strat})
			boot.cm.Bootstrap()

			const n = 12
			joiners := make([]*node, n)
			for i := range joiners {
				joiners[i] = newNode(t, fab, fmt.Sprintf("j-%d", i), Config{Strategy: strat})
			}
			var wg sync.WaitGroup
			errs := make([]error, n)
			for i := range joiners {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					errs[i] = joiners[i].cm.Join("boot", 10*time.Second)
				}(i)
			}
			wg.Wait()
			seen := map[types.SiteID]bool{boot.cm.SelfID(): true}
			for i, err := range errs {
				if err != nil {
					t.Fatalf("join %d: %v", i, err)
				}
				id := joiners[i].cm.SelfID()
				if seen[id] {
					t.Fatalf("duplicate id %v under concurrency", id)
				}
				seen[id] = true
			}
		})
	}
}

func TestModuloIDsFollowStride(t *testing.T) {
	fab := inproc.New(inproc.LinkProfile{})
	t.Cleanup(fab.Close)
	boot := newNode(t, fab, "boot", Config{Strategy: StrategyModulo})
	boot.cm.Bootstrap()
	a := newNode(t, fab, "a", Config{Strategy: StrategyModulo})
	if err := a.cm.Join("boot", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := a.cm.SelfID(); got != BootstrapID+ModuloStride {
		t.Fatalf("first modulo id = %v, want %v", got, BootstrapID+ModuloStride)
	}
	// A site that joined can itself emit: join via a.
	b := newNode(t, fab, "b", Config{Strategy: StrategyModulo})
	if err := b.cm.Join("a", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	want := types.SiteID(uint64(a.cm.SelfID()) + ModuloStride)
	if got := b.cm.SelfID(); got != want {
		t.Fatalf("id via emitter a = %v, want %v", got, want)
	}
}

func TestSignOffRemovesSite(t *testing.T) {
	nodes := buildCluster(t, 3, StrategyCentral)
	for _, n := range nodes {
		n := n
		waitFor(t, "full list", func() bool { return n.cm.Size() == 3 })
	}
	leaving := nodes[2]
	leavingID := leaving.cm.SelfID()
	leaving.cm.AnnounceSignOff()
	for i, n := range nodes[:2] {
		n := n
		waitFor(t, fmt.Sprintf("site %d drops leaver", i), func() bool {
			_, ok := n.cm.Lookup(leavingID)
			return !ok
		})
	}
	// Messaging the departed site now fails with ErrSiteLeft.
	_, err := nodes[0].cm.PhysAddr(leavingID)
	if !errors.Is(err, types.ErrSiteLeft) {
		t.Fatalf("PhysAddr after sign-off = %v", err)
	}
}

func TestOnJoinOnLeaveCallbacks(t *testing.T) {
	fab := inproc.New(inproc.LinkProfile{})
	t.Cleanup(fab.Close)
	boot := newNode(t, fab, "boot", Config{Strategy: StrategyCentral})

	var mu sync.Mutex
	joins := 0
	var left types.SiteID
	var crashed bool
	boot.cm.OnJoin(func(types.SiteInfo) { mu.Lock(); joins++; mu.Unlock() })
	boot.cm.OnLeave(func(id types.SiteID, c bool) { mu.Lock(); left, crashed = id, c; mu.Unlock() })
	boot.cm.Bootstrap()

	a := newNode(t, fab, "a", Config{Strategy: StrategyCentral})
	if err := a.cm.Join("boot", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "join callback", func() bool { mu.Lock(); defer mu.Unlock(); return joins == 1 })

	boot.cm.Remove(a.cm.SelfID(), true)
	mu.Lock()
	if left != a.cm.SelfID() || !crashed {
		t.Fatalf("leave callback got (%v,%v)", left, crashed)
	}
	mu.Unlock()
}

func TestLoadReportsUpdateList(t *testing.T) {
	nodes := buildCluster(t, 2, StrategyCentral)
	a, b := nodes[0], nodes[1]
	waitFor(t, "b in a's list", func() bool { return a.cm.Size() == 2 })

	b.cm.UpdateSelf(0.9, 12, 1)
	b.cm.BroadcastLoad()
	waitFor(t, "load report applied", func() bool {
		s, ok := a.cm.Lookup(b.cm.SelfID())
		return ok && s.Load > 0.8 && s.QueueLen == 12
	})
}

func TestPickHelpTargetPrefersQueuedWork(t *testing.T) {
	nodes := buildCluster(t, 4, StrategyCentral)
	a := nodes[0]
	waitFor(t, "full list", func() bool { return a.cm.Size() == 4 })

	// Site 3 reports queued work, others are idle.
	busy := nodes[2]
	busy.cm.UpdateSelf(1.0, 8, 1)
	busy.cm.BroadcastLoad()
	waitFor(t, "stats visible", func() bool {
		s, ok := a.cm.Lookup(busy.cm.SelfID())
		return ok && s.QueueLen == 8
	})

	for i := 0; i < 10; i++ {
		if got := a.cm.PickHelpTarget(nil); got != busy.cm.SelfID() {
			t.Fatalf("PickHelpTarget = %v, want %v", got, busy.cm.SelfID())
		}
	}
}

func TestPickHelpTargetHonorsExclusions(t *testing.T) {
	nodes := buildCluster(t, 3, StrategyCentral)
	a := nodes[0]
	waitFor(t, "full list", func() bool { return a.cm.Size() == 3 })
	excl := map[types.SiteID]bool{nodes[1].cm.SelfID(): true}
	for i := 0; i < 10; i++ {
		got := a.cm.PickHelpTarget(excl)
		if got == nodes[1].cm.SelfID() {
			t.Fatal("excluded site picked")
		}
		if got == types.InvalidSite {
			t.Fatal("no target found")
		}
	}
	// Excluding everyone yields InvalidSite.
	excl[nodes[2].cm.SelfID()] = true
	if got := a.cm.PickHelpTarget(excl); got != types.InvalidSite {
		t.Fatalf("PickHelpTarget with all excluded = %v", got)
	}
}

func TestCodeDistSites(t *testing.T) {
	nodes := buildCluster(t, 3, StrategyCentral)
	waitFor(t, "lists", func() bool { return nodes[2].cm.Size() == 3 })
	// Bootstrap is implicitly code-dist; others learn it via the
	// sign-on snapshot.
	dist := nodes[2].cm.CodeDistSites()
	if len(dist) != 1 || dist[0] != BootstrapID {
		t.Fatalf("CodeDistSites = %v", dist)
	}
}

func TestPingPong(t *testing.T) {
	nodes := buildCluster(t, 2, StrategyCentral)
	a, b := nodes[0], nodes[1]
	reply, err := a.bus.Request(b.cm.SelfID(), types.MgrCluster, types.MgrCluster,
		&wire.Ping{Nonce: 77}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	pong, ok := reply.Payload.(*wire.Pong)
	if !ok || pong.Nonce != 77 {
		t.Fatalf("reply = %#v", reply.Payload)
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyCentral.String() != "central" ||
		StrategyContingent.String() != "contingent" ||
		StrategyModulo.String() != "modulo" {
		t.Error("strategy names wrong")
	}
}
