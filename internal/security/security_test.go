package security

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestPlaintextPassthrough(t *testing.T) {
	var l Plaintext
	msg := []byte("hello")
	sealed, err := l.Seal(msg)
	if err != nil {
		t.Fatal(err)
	}
	opened, err := l.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(opened, msg) {
		t.Fatal("plaintext mangled the message")
	}
	if l.Overhead() != 0 {
		t.Errorf("Overhead = %d", l.Overhead())
	}
}

func TestAESGCMRoundTrip(t *testing.T) {
	l, err := NewAESGCM("start-password")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("secret SDMessage bytes")
	sealed, err := l.Seal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed, msg) {
		t.Error("ciphertext contains plaintext")
	}
	opened, err := l.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(opened, msg) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestAESGCMRoundTripProperty(t *testing.T) {
	l, err := NewAESGCM("pw")
	if err != nil {
		t.Fatal(err)
	}
	f := func(msg []byte) bool {
		sealed, err := l.Seal(msg)
		if err != nil {
			return false
		}
		if len(sealed) > len(msg)+l.Overhead() {
			return false
		}
		opened, err := l.Open(sealed)
		if err != nil {
			return false
		}
		return bytes.Equal(opened, msg) || (len(msg) == 0 && len(opened) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAESGCMTamperDetected(t *testing.T) {
	l, _ := NewAESGCM("pw")
	sealed, _ := l.Seal([]byte("authentic"))
	for i := 0; i < len(sealed); i += 5 {
		corrupt := append([]byte(nil), sealed...)
		corrupt[i] ^= 0x01
		if _, err := l.Open(corrupt); err == nil {
			t.Fatalf("tampering at byte %d not detected", i)
		} else if !errors.Is(err, types.ErrCrypto) {
			t.Fatalf("tamper error %v does not wrap ErrCrypto", err)
		}
	}
}

func TestAESGCMWrongPasswordRejected(t *testing.T) {
	a, _ := NewAESGCM("alpha")
	b, _ := NewAESGCM("beta")
	sealed, _ := a.Seal([]byte("for alpha peers only"))
	if _, err := b.Open(sealed); !errors.Is(err, types.ErrCrypto) {
		t.Fatalf("foreign cluster opened the message: %v", err)
	}
}

func TestAESGCMSamePasswordInterops(t *testing.T) {
	// Two sites of the same cluster (same start secret, different layer
	// instances) must understand each other.
	a, _ := NewAESGCM("shared")
	b, _ := NewAESGCM("shared")
	sealed, _ := a.Seal([]byte("site-to-site"))
	opened, err := b.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if string(opened) != "site-to-site" {
		t.Fatal("interop roundtrip mismatch")
	}
}

func TestAESGCMNoncesUnique(t *testing.T) {
	l, _ := NewAESGCM("pw")
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		sealed, _ := l.Seal([]byte("x"))
		n := string(sealed[:12])
		if seen[n] {
			t.Fatal("nonce reuse detected")
		}
		seen[n] = true
	}
}

func TestAESGCMShortDatagram(t *testing.T) {
	l, _ := NewAESGCM("pw")
	if _, err := l.Open([]byte("short")); !errors.Is(err, types.ErrCrypto) {
		t.Fatalf("short datagram: %v", err)
	}
}

func BenchmarkSealOpen1K(b *testing.B) {
	l, _ := NewAESGCM("pw")
	msg := make([]byte, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sealed, _ := l.Seal(msg)
		if _, err := l.Open(sealed); err != nil {
			b.Fatal(err)
		}
	}
}

// TestInPlaceRoundTrip checks the in-place layer interoperates with
// the copying one in both directions: what SealInPlace produces, Open
// must accept, and what Seal produces, OpenInPlace must accept.
func TestInPlaceRoundTrip(t *testing.T) {
	l, err := NewAESGCM("pw")
	if err != nil {
		t.Fatal(err)
	}
	pt := []byte("payload under the envelope tag")

	// SealInPlace -> Open.
	env := make([]byte, l.PrefixOverhead()+len(pt), l.PrefixOverhead()+len(pt)+l.SuffixOverhead())
	copy(env[l.PrefixOverhead():], pt)
	sealed, err := l.SealInPlace(env)
	if err != nil {
		t.Fatal(err)
	}
	if &sealed[0] != &env[0] {
		t.Fatal("SealInPlace moved the buffer despite reserved capacity")
	}
	got, err := l.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(pt) {
		t.Fatalf("Open(SealInPlace(...)) = %q", got)
	}

	// Seal -> OpenInPlace.
	sealed2, err := l.Seal(pt)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := l.OpenInPlace(sealed2)
	if err != nil {
		t.Fatal(err)
	}
	if string(got2) != string(pt) {
		t.Fatalf("OpenInPlace(Seal(...)) = %q", got2)
	}
	if &got2[0] != &sealed2[12] {
		t.Fatal("OpenInPlace did not decrypt into the input buffer")
	}
}

func TestInPlaceTamperRejected(t *testing.T) {
	l, _ := NewAESGCM("pw")
	env := make([]byte, l.PrefixOverhead()+8, l.PrefixOverhead()+8+l.SuffixOverhead())
	sealed, err := l.SealInPlace(env)
	if err != nil {
		t.Fatal(err)
	}
	sealed[len(sealed)-1] ^= 1
	if _, err := l.OpenInPlace(sealed); !errors.Is(err, types.ErrCrypto) {
		t.Fatalf("tampered OpenInPlace error = %v, want ErrCrypto", err)
	}
	if _, err := l.SealInPlace(make([]byte, 4)); err == nil {
		t.Fatal("SealInPlace accepted an envelope shorter than its prefix")
	}
}

// TestPlaintextInPlace pins the no-op layer: zero overhead, identity
// transform, same backing array.
func TestPlaintextInPlace(t *testing.T) {
	var l InPlace = Plaintext{}
	if l.PrefixOverhead() != 0 || l.SuffixOverhead() != 0 {
		t.Fatal("Plaintext reports nonzero overhead")
	}
	buf := []byte("as-is")
	sealed, err := l.SealInPlace(buf)
	if err != nil || &sealed[0] != &buf[0] || len(sealed) != len(buf) {
		t.Fatalf("SealInPlace = %q, %v", sealed, err)
	}
	opened, err := l.OpenInPlace(buf)
	if err != nil || &opened[0] != &buf[0] {
		t.Fatalf("OpenInPlace = %q, %v", opened, err)
	}
}

// BenchmarkSealInPlace1K tracks that the in-place seal itself is
// allocation-free once the envelope exists.
func BenchmarkSealInPlace1K(b *testing.B) {
	l, _ := NewAESGCM("pw")
	env := make([]byte, 12+1024, 12+1024+l.SuffixOverhead())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sealed, err := l.SealInPlace(env[:12+1024])
		if err != nil {
			b.Fatal(err)
		}
		env = sealed[:12+1024]
	}
}
