package security

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestPlaintextPassthrough(t *testing.T) {
	var l Plaintext
	msg := []byte("hello")
	sealed, err := l.Seal(msg)
	if err != nil {
		t.Fatal(err)
	}
	opened, err := l.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(opened, msg) {
		t.Fatal("plaintext mangled the message")
	}
	if l.Overhead() != 0 {
		t.Errorf("Overhead = %d", l.Overhead())
	}
}

func TestAESGCMRoundTrip(t *testing.T) {
	l, err := NewAESGCM("start-password")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("secret SDMessage bytes")
	sealed, err := l.Seal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed, msg) {
		t.Error("ciphertext contains plaintext")
	}
	opened, err := l.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(opened, msg) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestAESGCMRoundTripProperty(t *testing.T) {
	l, err := NewAESGCM("pw")
	if err != nil {
		t.Fatal(err)
	}
	f := func(msg []byte) bool {
		sealed, err := l.Seal(msg)
		if err != nil {
			return false
		}
		if len(sealed) > len(msg)+l.Overhead() {
			return false
		}
		opened, err := l.Open(sealed)
		if err != nil {
			return false
		}
		return bytes.Equal(opened, msg) || (len(msg) == 0 && len(opened) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAESGCMTamperDetected(t *testing.T) {
	l, _ := NewAESGCM("pw")
	sealed, _ := l.Seal([]byte("authentic"))
	for i := 0; i < len(sealed); i += 5 {
		corrupt := append([]byte(nil), sealed...)
		corrupt[i] ^= 0x01
		if _, err := l.Open(corrupt); err == nil {
			t.Fatalf("tampering at byte %d not detected", i)
		} else if !errors.Is(err, types.ErrCrypto) {
			t.Fatalf("tamper error %v does not wrap ErrCrypto", err)
		}
	}
}

func TestAESGCMWrongPasswordRejected(t *testing.T) {
	a, _ := NewAESGCM("alpha")
	b, _ := NewAESGCM("beta")
	sealed, _ := a.Seal([]byte("for alpha peers only"))
	if _, err := b.Open(sealed); !errors.Is(err, types.ErrCrypto) {
		t.Fatalf("foreign cluster opened the message: %v", err)
	}
}

func TestAESGCMSamePasswordInterops(t *testing.T) {
	// Two sites of the same cluster (same start secret, different layer
	// instances) must understand each other.
	a, _ := NewAESGCM("shared")
	b, _ := NewAESGCM("shared")
	sealed, _ := a.Seal([]byte("site-to-site"))
	opened, err := b.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if string(opened) != "site-to-site" {
		t.Fatal("interop roundtrip mismatch")
	}
}

func TestAESGCMNoncesUnique(t *testing.T) {
	l, _ := NewAESGCM("pw")
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		sealed, _ := l.Seal([]byte("x"))
		n := string(sealed[:12])
		if seen[n] {
			t.Fatal("nonce reuse detected")
		}
		seen[n] = true
	}
}

func TestAESGCMShortDatagram(t *testing.T) {
	l, _ := NewAESGCM("pw")
	if _, err := l.Open([]byte("short")); !errors.Is(err, types.ErrCrypto) {
		t.Fatalf("short datagram: %v", err)
	}
}

func BenchmarkSealOpen1K(b *testing.B) {
	l, _ := NewAESGCM("pw")
	msg := make([]byte, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sealed, _ := l.Seal(msg)
		if _, err := l.Open(sealed); err != nil {
			b.Fatal(err)
		}
	}
}
