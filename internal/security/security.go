// Package security implements the SDVM's security manager (paper §4).
//
// The security manager "is placed between the message manager and the
// network manager": every outgoing serialized SDMessage passes through
// Seal before the network manager transmits it, and every incoming
// datagram passes through Open before the message manager parses it. The
// paper's design — a key table of known communication partners, a first
// contact secured by a hand-supplied start password, and the option to
// disable encryption entirely inside trusted clusters "in favor of a
// performance gain" — maps here onto AES-GCM with per-cluster keys
// derived from a start secret, and a plaintext mode.
package security

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"sync"

	"repro/internal/types"
)

// Layer seals and opens datagrams. Implementations must be safe for
// concurrent use — the network manager sends from many goroutines.
type Layer interface {
	// Seal protects a serialized message for transmission.
	Seal(plaintext []byte) ([]byte, error)
	// Open verifies and decrypts a received datagram.
	Open(sealed []byte) ([]byte, error)
	// Overhead returns the maximum number of bytes Seal adds.
	Overhead() int
}

// InPlace is implemented by layers that can seal and open inside a
// caller-owned buffer, so the hot send path never allocates for
// cryptography. The caller lays the envelope out as
//
//	[ PrefixOverhead() bytes of headroom | plaintext ]
//
// with at least SuffixOverhead() bytes of spare capacity, and the layer
// transforms it in place. The network manager type-asserts for this at
// construction and falls back to Seal/Open copies otherwise.
type InPlace interface {
	// PrefixOverhead is the number of bytes the layer writes before the
	// ciphertext (the AES-GCM nonce; zero for plaintext).
	PrefixOverhead() int
	// SuffixOverhead is the number of bytes the layer appends after the
	// ciphertext (the AES-GCM tag; zero for plaintext).
	SuffixOverhead() int
	// SealInPlace seals env[PrefixOverhead():] in place. cap(env) must
	// be at least len(env)+SuffixOverhead(). The result aliases env's
	// backing array.
	SealInPlace(env []byte) ([]byte, error)
	// OpenInPlace verifies and decrypts sealed destructively: the
	// returned plaintext is a subslice of sealed's backing array and
	// sealed's contents are consumed. Only the exclusive owner of
	// sealed (the receive loop owns its buffer) may use this.
	OpenInPlace(sealed []byte) ([]byte, error)
}

// Plaintext is the disabled security manager: datagrams pass through
// untouched. For insular clusters the paper recommends exactly this.
type Plaintext struct{}

// Seal returns the input unchanged.
func (Plaintext) Seal(p []byte) ([]byte, error) { return p, nil }

// Open returns the input unchanged.
func (Plaintext) Open(p []byte) ([]byte, error) { return p, nil }

// Overhead returns 0.
func (Plaintext) Overhead() int { return 0 }

// PrefixOverhead returns 0.
func (Plaintext) PrefixOverhead() int { return 0 }

// SuffixOverhead returns 0.
func (Plaintext) SuffixOverhead() int { return 0 }

// SealInPlace returns the envelope unchanged.
func (Plaintext) SealInPlace(env []byte) ([]byte, error) { return env, nil }

// OpenInPlace returns the datagram unchanged.
func (Plaintext) OpenInPlace(sealed []byte) ([]byte, error) { return sealed, nil }

// AESGCM encrypts every datagram with AES-256-GCM under a key derived
// from the cluster's start secret. GCM gives confidentiality and
// integrity in one pass: a tampered or foreign datagram fails Open with
// types.ErrCrypto, which is how "protection against spying and
// corruption" (goal 12) is realized.
type AESGCM struct {
	aead cipher.AEAD

	mu      sync.Mutex
	counter uint64
	prefix  [4]byte // random per-instance nonce prefix
}

// NewAESGCM derives a key from the start secret and returns the layer.
// Every site of a cluster must be started with the same secret — the
// paper's "supplying a start password by hand".
func NewAESGCM(startSecret string) (*AESGCM, error) {
	key := sha256.Sum256([]byte("sdvm-cluster-key/" + startSecret))
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("security: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("security: %w", err)
	}
	l := &AESGCM{aead: aead}
	if _, err := rand.Read(l.prefix[:]); err != nil {
		return nil, fmt.Errorf("security: nonce prefix: %w", err)
	}
	return l, nil
}

// nonceInto writes a fresh unique nonce into n (len 12): 4 random
// prefix bytes (distinct per site with overwhelming probability) plus a
// 64-bit counter. Allocation-free so the in-place seal path stays so.
func (l *AESGCM) nonceInto(n []byte) {
	l.mu.Lock()
	l.counter++
	c := l.counter
	l.mu.Unlock()

	copy(n, l.prefix[:])
	for i := 0; i < 8; i++ {
		n[4+i] = byte(c >> (8 * i))
	}
}

// Seal encrypts and authenticates plaintext into a fresh buffer. The
// nonce is prepended.
func (l *AESGCM) Seal(plaintext []byte) ([]byte, error) {
	env := make([]byte, 12+len(plaintext), 12+len(plaintext)+l.aead.Overhead())
	copy(env[12:], plaintext)
	return l.SealInPlace(env)
}

// SealInPlace seals env[12:] in place: the nonce lands in the 12-byte
// headroom and the ciphertext overwrites the plaintext exactly (GCM
// supports perfectly overlapping dst and plaintext), with the tag in
// env's spare capacity — cap(env) must be at least len(env)+16.
func (l *AESGCM) SealInPlace(env []byte) ([]byte, error) {
	if len(env) < 12 {
		return nil, fmt.Errorf("%w: envelope shorter than nonce headroom", types.ErrCrypto)
	}
	nonce := env[:12]
	l.nonceInto(nonce)
	return l.aead.Seal(nonce, nonce, env[12:], nil), nil
}

// Open decrypts and verifies a sealed datagram into a fresh buffer,
// leaving sealed untouched.
func (l *AESGCM) Open(sealed []byte) ([]byte, error) {
	if len(sealed) < 12 {
		return nil, fmt.Errorf("%w: datagram shorter than nonce", types.ErrCrypto)
	}
	n, ct := sealed[:12], sealed[12:]
	pt, err := l.aead.Open(nil, n, ct, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", types.ErrCrypto, err)
	}
	return pt, nil
}

// OpenInPlace decrypts sealed destructively: the plaintext overwrites
// the ciphertext in sealed's backing array (verification happens before
// any byte is released, so a tampered datagram never yields partial
// plaintext).
func (l *AESGCM) OpenInPlace(sealed []byte) ([]byte, error) {
	if len(sealed) < 12 {
		return nil, fmt.Errorf("%w: datagram shorter than nonce", types.ErrCrypto)
	}
	n, ct := sealed[:12], sealed[12:]
	pt, err := l.aead.Open(ct[:0], n, ct, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", types.ErrCrypto, err)
	}
	return pt, nil
}

// Overhead returns nonce plus GCM tag size.
func (l *AESGCM) Overhead() int { return 12 + l.aead.Overhead() }

// PrefixOverhead returns the nonce size.
func (l *AESGCM) PrefixOverhead() int { return 12 }

// SuffixOverhead returns the GCM tag size.
func (l *AESGCM) SuffixOverhead() int { return l.aead.Overhead() }

// Compile-time interface checks.
var (
	_ Layer   = Plaintext{}
	_ Layer   = (*AESGCM)(nil)
	_ InPlace = Plaintext{}
	_ InPlace = (*AESGCM)(nil)
)
