// Package security implements the SDVM's security manager (paper §4).
//
// The security manager "is placed between the message manager and the
// network manager": every outgoing serialized SDMessage passes through
// Seal before the network manager transmits it, and every incoming
// datagram passes through Open before the message manager parses it. The
// paper's design — a key table of known communication partners, a first
// contact secured by a hand-supplied start password, and the option to
// disable encryption entirely inside trusted clusters "in favor of a
// performance gain" — maps here onto AES-GCM with per-cluster keys
// derived from a start secret, and a plaintext mode.
package security

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"sync"

	"repro/internal/types"
)

// Layer seals and opens datagrams. Implementations must be safe for
// concurrent use — the network manager sends from many goroutines.
type Layer interface {
	// Seal protects a serialized message for transmission.
	Seal(plaintext []byte) ([]byte, error)
	// Open verifies and decrypts a received datagram.
	Open(sealed []byte) ([]byte, error)
	// Overhead returns the maximum number of bytes Seal adds.
	Overhead() int
}

// Plaintext is the disabled security manager: datagrams pass through
// untouched. For insular clusters the paper recommends exactly this.
type Plaintext struct{}

// Seal returns the input unchanged.
func (Plaintext) Seal(p []byte) ([]byte, error) { return p, nil }

// Open returns the input unchanged.
func (Plaintext) Open(p []byte) ([]byte, error) { return p, nil }

// Overhead returns 0.
func (Plaintext) Overhead() int { return 0 }

// AESGCM encrypts every datagram with AES-256-GCM under a key derived
// from the cluster's start secret. GCM gives confidentiality and
// integrity in one pass: a tampered or foreign datagram fails Open with
// types.ErrCrypto, which is how "protection against spying and
// corruption" (goal 12) is realized.
type AESGCM struct {
	aead cipher.AEAD

	mu      sync.Mutex
	counter uint64
	prefix  [4]byte // random per-instance nonce prefix
}

// NewAESGCM derives a key from the start secret and returns the layer.
// Every site of a cluster must be started with the same secret — the
// paper's "supplying a start password by hand".
func NewAESGCM(startSecret string) (*AESGCM, error) {
	key := sha256.Sum256([]byte("sdvm-cluster-key/" + startSecret))
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("security: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("security: %w", err)
	}
	l := &AESGCM{aead: aead}
	if _, err := rand.Read(l.prefix[:]); err != nil {
		return nil, fmt.Errorf("security: nonce prefix: %w", err)
	}
	return l, nil
}

// nonce returns a fresh unique nonce: 4 random prefix bytes (distinct per
// site with overwhelming probability) plus a 64-bit counter.
func (l *AESGCM) nonce() []byte {
	l.mu.Lock()
	l.counter++
	c := l.counter
	l.mu.Unlock()

	n := make([]byte, 12)
	copy(n, l.prefix[:])
	for i := 0; i < 8; i++ {
		n[4+i] = byte(c >> (8 * i))
	}
	return n
}

// Seal encrypts and authenticates plaintext. The nonce is prepended.
func (l *AESGCM) Seal(plaintext []byte) ([]byte, error) {
	n := l.nonce()
	out := make([]byte, 0, len(n)+len(plaintext)+l.aead.Overhead())
	out = append(out, n...)
	return l.aead.Seal(out, n, plaintext, nil), nil
}

// Open decrypts and verifies a sealed datagram.
func (l *AESGCM) Open(sealed []byte) ([]byte, error) {
	if len(sealed) < 12 {
		return nil, fmt.Errorf("%w: datagram shorter than nonce", types.ErrCrypto)
	}
	n, ct := sealed[:12], sealed[12:]
	pt, err := l.aead.Open(nil, n, ct, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", types.ErrCrypto, err)
	}
	return pt, nil
}

// Overhead returns nonce plus GCM tag size.
func (l *AESGCM) Overhead() int { return 12 + l.aead.Overhead() }

// Compile-time interface checks.
var (
	_ Layer = Plaintext{}
	_ Layer = (*AESGCM)(nil)
)
