// Package cdag implements the Controlflow-Dataflow-Allocation-Graph, the
// data structure the SDVM's toolchain uses for automatic parallelization
// and scheduling hints (paper §3.3, reference [7] Klauer/Eschmann/Moore/
// Waldschmidt, PDP 2002).
//
// A CDAG node is one microthread instantiation with an estimated
// execution cost; edges are dataflow dependencies (a result of the source
// becomes a parameter of the sink). From the graph the analyses the paper
// names are derived:
//
//   - "the application's structures like microthread-blocks having many
//     data dependencies can be extracted from the CDAG";
//   - "microthreads in the critical path of the application can be
//     identified, which are then executed with higher priority";
//   - "it is possible to attach scheduling hints to microframes using
//     information from the CDAG".
//
// Hints computes a priority per node from its *slack* (how much the node
// can be delayed without lengthening the makespan): zero-slack nodes are
// critical.
package cdag

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/types"
)

// Node is one microthread instantiation in the graph.
type Node struct {
	ID     string
	Thread uint32  // microthread index the node instantiates
	Cost   float64 // estimated execution cost (Work units)

	succ []*Node
	pred []*Node
}

// Graph is a CDAG under construction or analysis.
type Graph struct {
	nodes map[string]*Node
	order []*Node // insertion order, for deterministic output
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{nodes: make(map[string]*Node)}
}

// AddNode inserts a node. Duplicate ids are an error.
func (g *Graph) AddNode(id string, thread uint32, cost float64) (*Node, error) {
	if _, dup := g.nodes[id]; dup {
		return nil, fmt.Errorf("cdag: duplicate node %q", id)
	}
	if cost < 0 {
		return nil, fmt.Errorf("cdag: node %q has negative cost", id)
	}
	n := &Node{ID: id, Thread: thread, Cost: cost}
	g.nodes[id] = n
	g.order = append(g.order, n)
	return n, nil
}

// AddEdge records a dataflow dependency from -> to.
func (g *Graph) AddEdge(from, to string) error {
	a, ok := g.nodes[from]
	if !ok {
		return fmt.Errorf("cdag: unknown node %q", from)
	}
	b, ok := g.nodes[to]
	if !ok {
		return fmt.Errorf("cdag: unknown node %q", to)
	}
	if a == b {
		return fmt.Errorf("cdag: self edge on %q", from)
	}
	a.succ = append(a.succ, b)
	b.pred = append(b.pred, a)
	return nil
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.order) }

// Node returns a node by id.
func (g *Graph) Node(id string) (*Node, bool) {
	n, ok := g.nodes[id]
	return n, ok
}

// TopoSort returns the nodes in a topological order, or an error naming
// a node on a dependency cycle — a cyclic CDAG describes a program whose
// microframes can never all fire.
func (g *Graph) TopoSort() ([]*Node, error) {
	indeg := make(map[*Node]int, len(g.order))
	for _, n := range g.order {
		indeg[n] = len(n.pred)
	}
	var queue []*Node
	for _, n := range g.order {
		if indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	out := make([]*Node, 0, len(g.order))
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		for _, s := range n.succ {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(out) != len(g.order) {
		for _, n := range g.order {
			if indeg[n] > 0 {
				return nil, fmt.Errorf("cdag: dependency cycle through %q", n.ID)
			}
		}
	}
	return out, nil
}

// Analysis holds the results of the scheduling analyses.
type Analysis struct {
	// Makespan is the critical path length (with unlimited sites).
	Makespan float64
	// CriticalPath lists the node ids of one longest path, in order.
	CriticalPath []string
	// EarliestStart / LatestStart per node id; slack = latest-earliest.
	EarliestStart map[string]float64
	LatestStart   map[string]float64
	// TotalWork is the cost sum — the 1-site makespan.
	TotalWork float64
	// MaxWidth is the peak number of nodes whose execution windows
	// overlap — an upper bound on exploitable parallelism.
	MaxWidth int
}

// Slack returns a node's scheduling slack.
func (a *Analysis) Slack(id string) float64 {
	return a.LatestStart[id] - a.EarliestStart[id]
}

// IdealSpeedup returns TotalWork/Makespan — the speedup bound the graph
// structure permits regardless of cluster size.
func (a *Analysis) IdealSpeedup() float64 {
	if a.Makespan == 0 {
		return 1
	}
	return a.TotalWork / a.Makespan
}

// Analyze runs the full analysis.
func (g *Graph) Analyze() (*Analysis, error) {
	topo, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	a := &Analysis{
		EarliestStart: make(map[string]float64, len(topo)),
		LatestStart:   make(map[string]float64, len(topo)),
	}

	// Forward pass: earliest starts.
	finish := make(map[*Node]float64, len(topo))
	for _, n := range topo {
		es := 0.0
		for _, p := range n.pred {
			if f := finish[p]; f > es {
				es = f
			}
		}
		a.EarliestStart[n.ID] = es
		finish[n] = es + n.Cost
		if finish[n] > a.Makespan {
			a.Makespan = finish[n]
		}
		a.TotalWork += n.Cost
	}

	// Backward pass: latest starts without stretching the makespan.
	for i := len(topo) - 1; i >= 0; i-- {
		n := topo[i]
		lf := a.Makespan
		for _, s := range n.succ {
			if ls := a.LatestStart[s.ID]; ls < lf {
				lf = ls
			}
		}
		a.LatestStart[n.ID] = lf - n.Cost
	}

	// Critical path: walk zero-slack nodes greedily from a source.
	a.CriticalPath = g.criticalPath(a)

	// Peak width by sweeping execution windows at earliest schedule.
	a.MaxWidth = g.maxWidth(topo, a, finish)
	return a, nil
}

func (g *Graph) criticalPath(a *Analysis) []string {
	const eps = 1e-9
	var cur *Node
	for _, n := range g.order {
		if len(n.pred) == 0 && math.Abs(a.Slack(n.ID)) < eps {
			cur = n
			break
		}
	}
	var path []string
	for cur != nil {
		path = append(path, cur.ID)
		var next *Node
		for _, s := range cur.succ {
			if math.Abs(a.Slack(s.ID)) < eps &&
				math.Abs(a.EarliestStart[s.ID]-(a.EarliestStart[cur.ID]+cur.Cost)) < eps {
				next = s
				break
			}
		}
		cur = next
	}
	return path
}

func (g *Graph) maxWidth(topo []*Node, a *Analysis, finish map[*Node]float64) int {
	type event struct {
		t     float64
		delta int
	}
	var events []event
	for _, n := range topo {
		start := a.EarliestStart[n.ID]
		end := finish[n]
		if end <= start { // zero-cost node: count as instantaneous unit
			end = start + 1e-12
		}
		events = append(events, event{start, +1}, event{end, -1})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return events[i].delta < events[j].delta // ends before starts
	})
	cur, max := 0, 0
	for _, e := range events {
		cur += e.delta
		if cur > max {
			max = cur
		}
	}
	return max
}

// Hint is the scheduling metadata the CDAG derives for one node; it maps
// directly onto a microframe's Prio and Hint fields.
type Hint struct {
	Prio types.Priority
	// Order is a hint about the local execution order: smaller runs
	// earlier (the node's earliest start rank).
	Order uint32
}

// Hints derives per-node scheduling hints: critical nodes get
// PriorityCritical, others a priority decreasing with slack.
func (g *Graph) Hints() (map[string]Hint, *Analysis, error) {
	a, err := g.Analyze()
	if err != nil {
		return nil, nil, err
	}
	// Rank nodes by earliest start for the order hint.
	ids := make([]string, 0, len(g.order))
	for _, n := range g.order {
		ids = append(ids, n.ID)
	}
	sort.SliceStable(ids, func(i, j int) bool {
		return a.EarliestStart[ids[i]] < a.EarliestStart[ids[j]]
	})
	rank := make(map[string]uint32, len(ids))
	for i, id := range ids {
		rank[id] = uint32(i)
	}

	maxSlack := 0.0
	for _, n := range g.order {
		if s := a.Slack(n.ID); s > maxSlack {
			maxSlack = s
		}
	}

	hints := make(map[string]Hint, len(g.order))
	for _, n := range g.order {
		s := a.Slack(n.ID)
		var prio types.Priority
		switch {
		case s < 1e-9:
			prio = types.PriorityCritical
		case maxSlack > 0:
			// Linear in remaining slack: almost-critical nodes approach
			// PriorityHigh, maximal-slack nodes sit at PriorityLow.
			frac := 1 - s/maxSlack
			prio = types.PriorityLow +
				types.Priority(frac*float64(types.PriorityHigh-types.PriorityLow))
		default:
			prio = types.PriorityNormal
		}
		hints[n.ID] = Hint{Prio: prio, Order: rank[n.ID]}
	}
	return hints, a, nil
}
