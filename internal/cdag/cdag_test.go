package cdag

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

// diamond builds the classic fork-join graph:
//
//	    a(1)
//	   /    \
//	b(5)    c(2)
//	   \    /
//	    d(1)
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New()
	mustNode(t, g, "a", 0, 1)
	mustNode(t, g, "b", 1, 5)
	mustNode(t, g, "c", 1, 2)
	mustNode(t, g, "d", 2, 1)
	mustEdge(t, g, "a", "b")
	mustEdge(t, g, "a", "c")
	mustEdge(t, g, "b", "d")
	mustEdge(t, g, "c", "d")
	return g
}

func mustNode(t *testing.T, g *Graph, id string, thread uint32, cost float64) {
	t.Helper()
	if _, err := g.AddNode(id, thread, cost); err != nil {
		t.Fatal(err)
	}
}

func mustEdge(t *testing.T, g *Graph, from, to string) {
	t.Helper()
	if err := g.AddEdge(from, to); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateNodeRejected(t *testing.T) {
	g := New()
	mustNode(t, g, "x", 0, 1)
	if _, err := g.AddNode("x", 0, 1); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

func TestNegativeCostRejected(t *testing.T) {
	g := New()
	if _, err := g.AddNode("x", 0, -1); err == nil {
		t.Fatal("negative cost accepted")
	}
}

func TestEdgeValidation(t *testing.T) {
	g := New()
	mustNode(t, g, "x", 0, 1)
	if err := g.AddEdge("x", "missing"); err == nil {
		t.Fatal("edge to missing node accepted")
	}
	if err := g.AddEdge("missing", "x"); err == nil {
		t.Fatal("edge from missing node accepted")
	}
	if err := g.AddEdge("x", "x"); err == nil {
		t.Fatal("self edge accepted")
	}
}

func TestTopoSortOrder(t *testing.T) {
	g := diamond(t)
	topo, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range topo {
		pos[n.ID] = i
	}
	if !(pos["a"] < pos["b"] && pos["a"] < pos["c"] && pos["b"] < pos["d"] && pos["c"] < pos["d"]) {
		t.Fatalf("not a topological order: %v", pos)
	}
}

func TestCycleDetected(t *testing.T) {
	g := New()
	mustNode(t, g, "a", 0, 1)
	mustNode(t, g, "b", 0, 1)
	mustNode(t, g, "c", 0, 1)
	mustEdge(t, g, "a", "b")
	mustEdge(t, g, "b", "c")
	mustEdge(t, g, "c", "a")
	if _, err := g.TopoSort(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
	if _, err := g.Analyze(); err == nil {
		t.Fatal("Analyze on cyclic graph succeeded")
	}
}

func TestDiamondAnalysis(t *testing.T) {
	g := diamond(t)
	a, err := g.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != 7 { // a(1) + b(5) + d(1)
		t.Errorf("Makespan = %v, want 7", a.Makespan)
	}
	if a.TotalWork != 9 {
		t.Errorf("TotalWork = %v, want 9", a.TotalWork)
	}
	wantPath := []string{"a", "b", "d"}
	if len(a.CriticalPath) != 3 {
		t.Fatalf("CriticalPath = %v", a.CriticalPath)
	}
	for i, id := range wantPath {
		if a.CriticalPath[i] != id {
			t.Fatalf("CriticalPath = %v, want %v", a.CriticalPath, wantPath)
		}
	}
	// c has slack 3 (can start at 1..4); a, b, d have none.
	if s := a.Slack("c"); math.Abs(s-3) > 1e-9 {
		t.Errorf("Slack(c) = %v, want 3", s)
	}
	for _, id := range wantPath {
		if s := a.Slack(id); s > 1e-9 {
			t.Errorf("Slack(%s) = %v, want 0", id, s)
		}
	}
	// b and c overlap at the earliest schedule.
	if a.MaxWidth != 2 {
		t.Errorf("MaxWidth = %d, want 2", a.MaxWidth)
	}
	if got := a.IdealSpeedup(); math.Abs(got-9.0/7.0) > 1e-9 {
		t.Errorf("IdealSpeedup = %v", got)
	}
}

func TestChainAnalysis(t *testing.T) {
	g := New()
	ids := []string{"s0", "s1", "s2", "s3"}
	for _, id := range ids {
		mustNode(t, g, id, 0, 2)
	}
	for i := 0; i+1 < len(ids); i++ {
		mustEdge(t, g, ids[i], ids[i+1])
	}
	a, err := g.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != 8 || a.MaxWidth != 1 {
		t.Errorf("chain: makespan=%v width=%d", a.Makespan, a.MaxWidth)
	}
	if a.IdealSpeedup() != 1 {
		t.Errorf("chain IdealSpeedup = %v, want 1", a.IdealSpeedup())
	}
}

func TestIndependentNodesWidth(t *testing.T) {
	g := New()
	for _, id := range []string{"a", "b", "c", "d", "e"} {
		mustNode(t, g, id, 0, 3)
	}
	a, err := g.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxWidth != 5 {
		t.Errorf("MaxWidth = %d, want 5", a.MaxWidth)
	}
	if a.Makespan != 3 {
		t.Errorf("Makespan = %v, want 3", a.Makespan)
	}
}

func TestHintsCriticalGetTopPriority(t *testing.T) {
	g := diamond(t)
	hints, a, err := g.Hints()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range a.CriticalPath {
		if hints[id].Prio != types.PriorityCritical {
			t.Errorf("critical node %s priority = %v", id, hints[id].Prio)
		}
	}
	if hints["c"].Prio >= types.PriorityCritical {
		t.Errorf("slack node c priority = %v", hints["c"].Prio)
	}
	// Order hints follow earliest start: a before b/c before d.
	if !(hints["a"].Order < hints["b"].Order && hints["b"].Order <= hints["d"].Order) {
		t.Errorf("order hints wrong: %+v", hints)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := New()
	a, err := g.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != 0 || a.TotalWork != 0 || a.MaxWidth != 0 {
		t.Errorf("empty analysis = %+v", a)
	}
	if a.IdealSpeedup() != 1 {
		t.Errorf("empty IdealSpeedup = %v", a.IdealSpeedup())
	}
}

// TestAnalysisInvariants property-checks random layered DAGs: slack is
// non-negative, makespan bounds every node's window, the critical path
// has zero slack everywhere, and total work >= makespan.
func TestAnalysisInvariants(t *testing.T) {
	f := func(seed uint8, layerSizes [4]uint8) bool {
		g := New()
		var layers [][]string
		idc := 0
		rnd := uint32(seed) + 1
		next := func() uint32 { rnd = rnd*1664525 + 1013904223; return rnd }
		for _, ls := range layerSizes {
			n := int(ls%4) + 1
			var layer []string
			for i := 0; i < n; i++ {
				id := string(rune('a'+idc%26)) + string(rune('0'+idc/26))
				idc++
				cost := float64(next()%10) / 2
				if _, err := g.AddNode(id, 0, cost); err != nil {
					return false
				}
				layer = append(layer, id)
			}
			layers = append(layers, layer)
		}
		for li := 0; li+1 < len(layers); li++ {
			for _, from := range layers[li] {
				to := layers[li+1][int(next())%len(layers[li+1])]
				if err := g.AddEdge(from, to); err != nil {
					return false
				}
			}
		}
		a, err := g.Analyze()
		if err != nil {
			return false
		}
		if a.TotalWork < a.Makespan-1e-9 {
			return false
		}
		for _, layer := range layers {
			for _, id := range layer {
				if a.Slack(id) < -1e-9 {
					return false
				}
				if a.EarliestStart[id] > a.LatestStart[id]+1e-9 {
					return false
				}
			}
		}
		for _, id := range a.CriticalPath {
			if a.Slack(id) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
