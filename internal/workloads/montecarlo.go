package workloads

import (
	"fmt"
	"math"

	"repro/internal/daemon"
	"repro/internal/mthread"
	"repro/internal/wire"
)

// The montecarlo workload estimates π by sampling points in the unit
// square across independent chunks — the public-resource-computing shape
// the paper's introduction discusses (Seti@Home-style independent work
// units), here expressed as one flat dataflow fan-out/fan-in.

// Thread indices of the montecarlo application.
const (
	PiStart uint32 = iota
	PiChunk
	PiReduce
)

// PiApp describes the montecarlo application for submission.
func PiApp() daemon.App {
	return daemon.App{
		Name: "montecarlo-pi",
		Threads: []daemon.AppThread{
			{Index: PiStart, FuncName: "pi.start", SrcSize: 400},
			{Index: PiChunk, FuncName: "pi.chunk", SrcSize: 600},
			{Index: PiReduce, FuncName: "pi.reduce", SrcSize: 300},
		},
	}
}

// PiArgs builds the submission arguments: chunks work units, each
// sampling samplesPerChunk points and spending chunkCost Work units.
func PiArgs(chunks, samplesPerChunk int, chunkCost float64, seed uint64) [][]byte {
	return [][]byte{
		mthread.U64(uint64(chunks)),
		mthread.U64(uint64(samplesPerChunk)),
		mthread.F64(chunkCost),
		mthread.U64(seed),
	}
}

// SeqPi is the sequential baseline with the same sampling and cost model.
func SeqPi(chunks, samplesPerChunk int, chunkCost float64, seed uint64, work func(float64)) float64 {
	var inside, total uint64
	for c := 0; c < chunks; c++ {
		in, n := piSample(seed+uint64(c), samplesPerChunk)
		work(chunkCost)
		inside += in
		total += n
	}
	return 4 * float64(inside) / float64(total)
}

// piSample counts hits inside the quarter circle with a deterministic
// xorshift generator, so distributed and sequential runs agree exactly.
func piSample(seed uint64, samples int) (inside, total uint64) {
	s := seed*2862933555777941757 + 3037000493
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	for i := 0; i < samples; i++ {
		x := float64(next()%(1<<30)) / float64(1<<30)
		y := float64(next()%(1<<30)) / float64(1<<30)
		if x*x+y*y <= 1 {
			inside++
		}
	}
	return inside, uint64(samples)
}

func piStart(ctx mthread.Context) error {
	chunks := int(mthread.ParseU64(ctx.Param(0)))
	samples := mthread.ParseU64(ctx.Param(1))
	costB := ctx.Param(2)
	seed := mthread.ParseU64(ctx.Param(3))
	if chunks <= 0 {
		ctx.Exit(nil)
		return fmt.Errorf("pi: chunks must be positive")
	}

	reduce := ctx.NewFrame(PiReduce, chunks)
	for c := 0; c < chunks; c++ {
		chunk := ctx.NewFrame(PiChunk, 1, wire.Target{Addr: reduce, Slot: int32(c)})
		payload := mthread.U64s([]uint64{seed + uint64(c), samples, mthread.ParseU64(costB)})
		if err := ctx.Send(wire.Target{Addr: chunk, Slot: 0}, payload); err != nil {
			return err
		}
	}
	return nil
}

func piChunk(ctx mthread.Context) error {
	vals := mthread.ParseU64s(ctx.Param(0))
	if len(vals) < 3 {
		return fmt.Errorf("pi.chunk: short parameter")
	}
	seed, samples := vals[0], int(vals[1])
	cost := mthread.ParseF64(mthread.U64(vals[2]))

	inside, total := piSample(seed, samples)
	ctx.Work(cost)
	return ctx.Send(ctx.Target(0), mthread.U64s([]uint64{inside, total}))
}

func piReduce(ctx mthread.Context) error {
	var inside, total uint64
	for i := 0; i < ctx.Arity(); i++ {
		vals := mthread.ParseU64s(ctx.Param(i))
		if len(vals) >= 2 {
			inside += vals[0]
			total += vals[1]
		}
	}
	pi := 4 * float64(inside) / float64(total)
	ctx.Output(fmt.Sprintf("pi ≈ %.6f (error %.6f)", pi, math.Abs(pi-math.Pi)))
	ctx.Exit(mthread.F64(pi))
	return nil
}

func init() {
	RegisterPi(mthread.Global)
}

// RegisterPi installs the montecarlo microthreads into a registry.
func RegisterPi(r *mthread.Registry) {
	r.Register("pi.start", piStart)
	r.Register("pi.chunk", piChunk)
	r.Register("pi.reduce", piReduce)
}
