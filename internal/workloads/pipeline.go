package workloads

import (
	"fmt"

	"repro/internal/daemon"
	"repro/internal/mthread"
	"repro/internal/wire"
)

// The pipeline workload pushes items through a chain of dependent
// stages: item i must pass stage s before stage s+1 — the opposite
// extreme from montecarlo. Its critical path is `stages` long no matter
// how many sites exist, which makes it the probe workload for the
// scheduling-hint machinery (paper §3.3: "microthreads in the critical
// path of the application can be identified, which are then executed
// with higher priority").

// Thread indices of the pipeline application.
const (
	PipeStart uint32 = iota
	PipeStage
	PipeReduce
)

// PipeApp describes the pipeline application for submission.
func PipeApp() daemon.App {
	return daemon.App{
		Name: "pipeline",
		Threads: []daemon.AppThread{
			{Index: PipeStart, FuncName: "pipe.start", SrcSize: 500},
			{Index: PipeStage, FuncName: "pipe.stage", SrcSize: 300},
			{Index: PipeReduce, FuncName: "pipe.reduce", SrcSize: 250},
		},
	}
}

// PipeArgs builds the submission arguments: items independent tokens,
// each flowing through stages sequential stages of stageCost Work units.
func PipeArgs(items, stages int, stageCost float64) [][]byte {
	return [][]byte{
		mthread.U64(uint64(items)),
		mthread.U64(uint64(stages)),
		mthread.F64(stageCost),
	}
}

// SeqPipeline is the sequential baseline with the same cost model.
func SeqPipeline(items, stages int, stageCost float64, work func(float64)) uint64 {
	var sum uint64
	for i := 0; i < items; i++ {
		v := uint64(i)
		for s := 0; s < stages; s++ {
			work(stageCost)
			v++
		}
		sum += v
	}
	return sum
}

func pipeStart(ctx mthread.Context) error {
	items := int(mthread.ParseU64(ctx.Param(0)))
	stages := int(mthread.ParseU64(ctx.Param(1)))
	costB := ctx.Param(2)
	if items <= 0 || stages <= 0 {
		ctx.Exit(nil)
		return fmt.Errorf("pipe: items and stages must be positive")
	}

	reduce := ctx.NewFrame(PipeReduce, items)
	for i := 0; i < items; i++ {
		// Build each item's chain back-to-front so every stage knows its
		// successor's address at allocation time (paper §3.2: result
		// addresses must be propagated; allocating early maximizes
		// parallelism).
		next := wire.Target{Addr: reduce, Slot: int32(i)}
		for s := stages - 1; s >= 0; s-- {
			stage := ctx.NewFrame(PipeStage, 2, next)
			next = wire.Target{Addr: stage, Slot: 0}
			if err := ctx.Send(wire.Target{Addr: stage, Slot: 1}, costB); err != nil {
				return err
			}
		}
		if err := ctx.Send(next, mthread.U64(uint64(i))); err != nil {
			return err
		}
	}
	return nil
}

func pipeStage(ctx mthread.Context) error {
	v := mthread.ParseU64(ctx.Param(0))
	ctx.Work(mthread.ParseF64(ctx.Param(1)))
	return ctx.Send(ctx.Target(0), mthread.U64(v+1))
}

func pipeReduce(ctx mthread.Context) error {
	var sum uint64
	for i := 0; i < ctx.Arity(); i++ {
		sum += mthread.ParseU64(ctx.Param(i))
	}
	ctx.Output(fmt.Sprintf("pipeline: checksum %d", sum))
	ctx.Exit(mthread.U64(sum))
	return nil
}

func init() {
	RegisterPipeline(mthread.Global)
}

// RegisterPipeline installs the pipeline microthreads into a registry.
func RegisterPipeline(r *mthread.Registry) {
	r.Register("pipe.start", pipeStart)
	r.Register("pipe.stage", pipeStage)
	r.Register("pipe.reduce", pipeReduce)
}
