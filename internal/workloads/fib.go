package workloads

import (
	"fmt"

	"repro/internal/daemon"
	"repro/internal/mthread"
	"repro/internal/wire"
)

// The fib workload computes Fibonacci numbers by naive dataflow
// recursion: every call spawns two child microframes plus an adder.
// It stresses exactly what primes does not — a dynamically unfolding
// frame graph of unknown size (paper §3.2: "the execution of loops of
// unknown length"), thousands of tiny frames, and heavy frame-creation
// churn on whichever sites the recursion lands on.

// Thread indices of the fib application.
const (
	FibStart uint32 = iota
	FibNode
	FibAdd
	FibExit
)

// FibApp describes the fib application for submission.
func FibApp() daemon.App {
	return daemon.App{
		Name: "fib",
		Threads: []daemon.AppThread{
			{Index: FibStart, FuncName: "fib.start", SrcSize: 300},
			{Index: FibNode, FuncName: "fib.node", SrcSize: 500},
			{Index: FibAdd, FuncName: "fib.add", SrcSize: 200},
			{Index: FibExit, FuncName: "fib.exit", SrcSize: 150},
		},
	}
}

// FibArgs builds the submission arguments: compute fib(n) with nodeCost
// Work units spent in every recursion node.
func FibArgs(n int, nodeCost float64) [][]byte {
	return [][]byte{mthread.U64(uint64(n)), mthread.F64(nodeCost)}
}

// SeqFib is the sequential baseline with the same cost model.
func SeqFib(n int, nodeCost float64, work func(float64)) uint64 {
	work(nodeCost)
	if n < 2 {
		return uint64(n)
	}
	return SeqFib(n-1, nodeCost, work) + SeqFib(n-2, nodeCost, work)
}

func fibStart(ctx mthread.Context) error {
	n := mthread.ParseU64(ctx.Param(0))
	cost := ctx.Param(1)

	exit := ctx.NewFrame(FibExit, 1)
	node := ctx.NewFrame(FibNode, 2, wire.Target{Addr: exit, Slot: 0})
	if err := ctx.Send(wire.Target{Addr: node, Slot: 0}, mthread.U64(n)); err != nil {
		return err
	}
	return ctx.Send(wire.Target{Addr: node, Slot: 1}, cost)
}

// fibNode computes fib for its argument: leaves answer directly, inner
// nodes unfold into two children joined by an adder wired to this node's
// own result target.
func fibNode(ctx mthread.Context) error {
	n := mthread.ParseU64(ctx.Param(0))
	costB := ctx.Param(1)
	ctx.Work(mthread.ParseF64(costB))

	if n < 2 {
		return ctx.Send(ctx.Target(0), mthread.U64(n))
	}

	add := ctx.NewFrame(FibAdd, 2, ctx.Target(0))
	for i, arg := range []uint64{n - 1, n - 2} {
		child := ctx.NewFrame(FibNode, 2, wire.Target{Addr: add, Slot: int32(i)})
		if err := ctx.Send(wire.Target{Addr: child, Slot: 0}, mthread.U64(arg)); err != nil {
			return err
		}
		if err := ctx.Send(wire.Target{Addr: child, Slot: 1}, costB); err != nil {
			return err
		}
	}
	return nil
}

func fibAdd(ctx mthread.Context) error {
	sum := mthread.ParseU64(ctx.Param(0)) + mthread.ParseU64(ctx.Param(1))
	return ctx.Send(ctx.Target(0), mthread.U64(sum))
}

func fibExit(ctx mthread.Context) error {
	v := mthread.ParseU64(ctx.Param(0))
	ctx.Output(fmt.Sprintf("fib: result %d", v))
	ctx.Exit(mthread.U64(v))
	return nil
}

func init() {
	RegisterFib(mthread.Global)
}

// RegisterFib installs the fib microthreads into a registry.
func RegisterFib(r *mthread.Registry) {
	r.Register("fib.start", fibStart)
	r.Register("fib.node", fibNode)
	r.Register("fib.add", fibAdd)
	r.Register("fib.exit", fibExit)
}
