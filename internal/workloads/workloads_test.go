package workloads

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/daemon"
	"repro/internal/mthread"
)

func noWork(float64) {}

func TestIsPrimeSmall(t *testing.T) {
	primes := map[uint64]bool{2: true, 3: true, 5: true, 7: true, 11: true, 13: true, 97: true, 7919: true}
	for n := uint64(0); n <= 100; n++ {
		want := primes[n] || isPrimeSlow(n)
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d) = %v", n, got)
		}
	}
}

func isPrimeSlow(n uint64) bool {
	if n < 2 {
		return false
	}
	for d := uint64(2); d < n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

func TestIsPrimeProperty(t *testing.T) {
	f := func(n uint16) bool { return IsPrime(uint64(n)) == isPrimeSlow(uint64(n)) }
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNthPrime(t *testing.T) {
	cases := map[int]uint64{1: 2, 2: 3, 3: 5, 10: 29, 100: 541, 1000: 7919}
	for n, want := range cases {
		if got := NthPrime(n); got != want {
			t.Errorf("NthPrime(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSeqPrimesMatchesNthPrime(t *testing.T) {
	for _, p := range []int{1, 10, 100} {
		for _, w := range []int{1, 7, 10} {
			got := SeqPrimes(p, w, 0, noWork)
			if len(got) != p {
				t.Fatalf("SeqPrimes(%d,%d) returned %d primes", p, w, len(got))
			}
			if got[p-1] != NthPrime(p) {
				t.Errorf("SeqPrimes(%d,%d) last = %d, want %d", p, w, got[p-1], NthPrime(p))
			}
		}
	}
}

func TestSeqPrimesCountsWork(t *testing.T) {
	calls := 0
	SeqPrimes(10, 5, 1.5, func(c float64) {
		if c != 1.5 {
			t.Fatalf("work cost = %v", c)
		}
		calls++
	})
	// 10th prime is 29; rounds of 5 cover 2..31 → 30 tests.
	if calls != 30 {
		t.Errorf("work calls = %d, want 30", calls)
	}
}

func TestPrimesStateRoundTrip(t *testing.T) {
	st := &primesState{p: 100, width: 10, next: 42, cost: 2.5, found: []uint64{2, 3, 5}}
	got := decodePrimesState(st.encode())
	if got.p != st.p || got.width != st.width || got.next != st.next || got.cost != st.cost {
		t.Fatalf("state roundtrip: %+v", got)
	}
	if len(got.found) != 3 || got.found[2] != 5 {
		t.Fatalf("found roundtrip: %v", got.found)
	}
	// Corrupt/short input degrades to a zero state, not a panic.
	if decodePrimesState(nil).p != 0 {
		t.Fatal("short state not zeroed")
	}
}

func TestSeqFib(t *testing.T) {
	want := []uint64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55}
	for n, w := range want {
		if got := SeqFib(n, 0, noWork); got != w {
			t.Errorf("SeqFib(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestSeqPiConvergesAndIsDeterministic(t *testing.T) {
	a := SeqPi(16, 5000, 0, 7, noWork)
	b := SeqPi(16, 5000, 0, 7, noWork)
	if a != b {
		t.Fatal("SeqPi not deterministic for equal seeds")
	}
	if math.Abs(a-math.Pi) > 0.05 {
		t.Fatalf("SeqPi = %v, too far from π", a)
	}
	c := SeqPi(16, 5000, 0, 8, noWork)
	if a == c {
		t.Fatal("different seeds gave identical estimates (suspicious)")
	}
}

func TestSeqPipeline(t *testing.T) {
	// items tokens 0..n-1, each +1 per stage: sum = Σi + items*stages.
	items, stages := 7, 4
	want := uint64(0)
	for i := 0; i < items; i++ {
		want += uint64(i + stages)
	}
	if got := SeqPipeline(items, stages, 0, noWork); got != want {
		t.Fatalf("SeqPipeline = %d, want %d", got, want)
	}
}

func TestSeqMatMulAgainstDirect(t *testing.T) {
	n := 8
	// Direct full multiply checksum.
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = matElem(0, i, j, n)
			b[i*n+j] = matElem(1, i, j, n)
		}
	}
	var want float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var dot float64
			for k := 0; k < n; k++ {
				dot += a[i*n+k] * b[k*n+j]
			}
			want += dot
		}
	}
	for _, grid := range []int{1, 2, 4, 8} {
		got := SeqMatMul(n, grid, 0, noWork)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("SeqMatMul(grid=%d) = %v, want %v", grid, got, want)
		}
	}
}

func TestMatrixEncodingRoundTrip(t *testing.T) {
	n := 5
	m := decodeMatrix(encodeMatrix(0, n))
	if len(m) != n*n {
		t.Fatalf("matrix size %d", len(m))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if m[i*n+j] != matElem(0, i, j, n) {
				t.Fatalf("matrix[%d,%d] = %v", i, j, m[i*n+j])
			}
		}
	}
}

func TestAppDescriptorsConsistent(t *testing.T) {
	reg := mthread.NewRegistry()
	RegisterPrimes(reg)
	RegisterFib(reg)
	RegisterPi(reg)
	RegisterPipeline(reg)
	RegisterMatMul(reg)

	apps := []struct {
		name    string
		threads []string
	}{
		{"primes", funcNames(PrimesApp().Threads)},
		{"fib", funcNames(FibApp().Threads)},
		{"pi", funcNames(PiApp().Threads)},
		{"pipe", funcNames(PipeApp().Threads)},
		{"mm", funcNames(MatMulApp().Threads)},
	}
	for _, app := range apps {
		for _, fn := range app.threads {
			if _, ok := reg.Lookup(fn); !ok {
				t.Errorf("%s: thread func %q not registered", app.name, fn)
			}
		}
	}
}

func funcNames(ts []daemon.AppThread) []string {
	var out []string
	for _, t := range ts {
		out = append(out, t.FuncName)
	}
	return out
}

func TestPiSampleDeterministic(t *testing.T) {
	i1, t1 := piSample(5, 1000)
	i2, t2 := piSample(5, 1000)
	if i1 != i2 || t1 != t2 {
		t.Fatal("piSample not deterministic")
	}
	if t1 != 1000 || i1 == 0 || i1 > 1000 {
		t.Fatalf("piSample counts: in=%d total=%d", i1, t1)
	}
	// Zero seed must not collapse the generator.
	iz, _ := piSample(0, 1000)
	if iz == 0 {
		t.Fatal("zero seed produced no in-circle hits")
	}
}

func TestPrimesArgsEncoding(t *testing.T) {
	args := PrimesArgs(100, 10, 2.5)
	if len(args) != 3 {
		t.Fatalf("args len = %d", len(args))
	}
	if mthread.ParseU64(args[0]) != 100 || mthread.ParseU64(args[1]) != 10 || mthread.ParseF64(args[2]) != 2.5 {
		t.Fatal("args encode wrong")
	}
}
