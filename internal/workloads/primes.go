// Package workloads contains the SDVM applications used by the examples
// and the benchmark harness.
//
// The centerpiece is the paper's evaluation program (§5): "a parallel
// computation of the first p prime numbers, working on width numbers in
// parallel each". The other workloads (fib, montecarlo, pipeline,
// matmul) exercise complementary aspects of the machine: deep dynamic
// frame recursion, embarrassing parallelism, serial chains with a long
// critical path, and attraction-memory traffic.
//
// Every microthread is a registered Go function (see the mthread
// package for why); computation cost is expressed through
// mthread.Context.Work so the benches can run the paper's workload
// shape at a configurable scale on any host.
package workloads

import (
	"fmt"

	"repro/internal/daemon"
	"repro/internal/mthread"
	"repro/internal/types"
	"repro/internal/wire"
)

// Thread indices of the primes application.
const (
	PrimesStart uint32 = iota
	PrimesRound
	PrimesTest
)

// PrimesCostPerTest is the default Work cost (in WorkUnits) of testing
// one candidate. The paper's run shows ≈60 ms per candidate on a 1.7 GHz
// Pentium IV; benches scale this down via the daemon's WorkUnit.
const PrimesCostPerTest = 1.0

// PrimesApp describes the primes application for submission.
func PrimesApp() daemon.App {
	return daemon.App{
		Name: "primes",
		Threads: []daemon.AppThread{
			{Index: PrimesStart, FuncName: "primes.start", SrcSize: 700},
			{Index: PrimesRound, FuncName: "primes.round", SrcSize: 1100},
			{Index: PrimesTest, FuncName: "primes.test", SrcSize: 400},
		},
	}
}

// PrimesArgs builds the submission arguments: find the first p primes,
// testing width candidates in parallel, spending costPerTest Work units
// per candidate.
func PrimesArgs(p, width int, costPerTest float64) [][]byte {
	return [][]byte{
		mthread.U64(uint64(p)),
		mthread.U64(uint64(width)),
		mthread.F64(costPerTest),
	}
}

// ParsePrimesResult decodes the program result: the first p primes.
func ParsePrimesResult(b []byte) []uint64 { return mthread.ParseU64s(b) }

// primesState is the round-to-round state threaded through the collector
// frames: configuration plus the primes found so far.
type primesState struct {
	p     uint64
	width uint64
	next  uint64 // next candidate to test
	cost  float64
	found []uint64
}

func (st *primesState) encode() []byte {
	vals := make([]uint64, 0, 4+len(st.found))
	vals = append(vals, st.p, st.width, st.next, mthread.ParseU64(mthread.F64(st.cost)))
	vals = append(vals, st.found...)
	return mthread.U64s(vals)
}

func decodePrimesState(b []byte) *primesState {
	vals := mthread.ParseU64s(b)
	if len(vals) < 4 {
		return &primesState{}
	}
	return &primesState{
		p:     vals[0],
		width: vals[1],
		next:  vals[2],
		cost:  mthread.ParseF64(mthread.U64(vals[3])),
		found: append([]uint64{}, vals[4:]...),
	}
}

// primesStart is microthread 0: parse the arguments and launch the
// pipeline. Rounds are double-buffered — batch N+1's testers are already
// allocated and executing while batch N's results gather — following the
// paper's §3.2 advice that "every microframe should be allocated as soon
// as possible, because its global address is known not before its
// allocation". (The strict-barrier variant caps the 8-site speedup of a
// width-10 search at 5; the paper reports 6.4, so its program must have
// overlapped rounds the same way.)
func primesStart(ctx mthread.Context) error {
	p := mthread.ParseU64(ctx.Param(0))
	width := mthread.ParseU64(ctx.Param(1))
	cost := mthread.ParseF64(ctx.Param(2))
	if p == 0 || width == 0 {
		ctx.Exit(nil)
		return fmt.Errorf("primes: p and width must be positive")
	}
	st := &primesState{p: p, width: width, next: 2, cost: cost}

	// PrimesPipelineDepth batches in flight: collector c1 gathers batch
	// 1 while later batches already execute toward their collectors.
	// The state threads through the collector chain; each collector
	// learns the addresses of the collectors after it.
	chain := make([]types.FrameID, PrimesPipelineDepth)
	for i := range chain {
		chain[i] = spawnPrimesBatch(ctx, st)
	}
	return sendPrimesState(ctx, chain[0], chain[1:], st)
}

// PrimesPipelineDepth is how many candidate batches execute
// concurrently. Depth 1 is the strict-barrier variant; the paper's
// reported speedups require at least 2 (see primesStart).
const PrimesPipelineDepth = 3

// spawnPrimesBatch allocates one collector and its width testers for the
// next candidate batch, returning the collector's frame id. The
// collector is the program's critical path — it alone unfolds further
// rounds — so it carries the paper's §3.3 priority hint: run first,
// never migrate away from the work it spawns.
func spawnPrimesBatch(ctx mthread.Context, st *primesState) types.FrameID {
	w := int(st.width)
	// Collector: slots 0..w-1 take test results, slot w the chained
	// state (which also names the successor collector).
	round := ctx.NewFramePrio(PrimesRound, w+1, types.PriorityCritical, 0)
	for i := 0; i < w; i++ {
		cand := st.next + uint64(i)
		tf := ctx.NewFramePrio(PrimesTest, 1, types.PriorityNormal, 0,
			wire.Target{Addr: round, Slot: int32(i)})
		// The tester's single parameter carries its candidate and cost.
		payload := mthread.U64s([]uint64{cand, mthread.ParseU64(mthread.F64(st.cost))})
		if err := ctx.Send(wire.Target{Addr: tf, Slot: 0}, payload); err != nil {
			ctx.Output(fmt.Sprintf("primes: dispatch candidate %d: %v", cand, err))
		}
	}
	st.next += st.width
	return round
}

// sendPrimesState hands the chained state to collector dst, naming the
// collectors after it (oldest first).
func sendPrimesState(ctx mthread.Context, dst types.FrameID, succs []types.FrameID, st *primesState) error {
	payload := make([]byte, 0, 12*len(succs)+8+len(st.found)*8+40)
	for _, s := range succs {
		payload = append(payload, mthread.Addr(s)...)
	}
	payload = append(payload, st.encode()...)
	w := int(st.width)
	return ctx.Send(wire.Target{Addr: dst, Slot: int32(w)}, payload)
}

// primesTest is microthread 2: test one candidate for primality. The
// trial division is real computation; Work adds the calibrated cost that
// stands in for the paper's heavyweight 2005-era test.
func primesTest(ctx mthread.Context) error {
	vals := mthread.ParseU64s(ctx.Param(0))
	if len(vals) < 2 {
		return fmt.Errorf("primes.test: short parameter")
	}
	cand := vals[0]
	cost := mthread.ParseF64(mthread.U64(vals[1]))

	isp := IsPrime(cand)
	ctx.Work(cost)

	result := uint64(0)
	if isp {
		result = 1
	}
	return ctx.Send(ctx.Target(0), mthread.U64s([]uint64{cand, result}))
}

// primesRound is microthread 1: gather one batch of results, extend the
// prime list, and either terminate or keep the pipeline two batches
// deep: spawn batch N+2 and pass the state on to collector N+1.
func primesRound(ctx mthread.Context) error {
	w := ctx.Arity() - 1
	chained := ctx.Param(w)
	nsucc := PrimesPipelineDepth - 1
	if len(chained) < 12*nsucc {
		return fmt.Errorf("primes.round: short state parameter")
	}
	succs := make([]types.FrameID, nsucc)
	for i := range succs {
		succs[i] = mthread.ParseAddr(chained[12*i : 12*i+12])
	}
	st := decodePrimesState(chained[12*nsucc:])

	// Slot order equals candidate order, so found primes stay sorted.
	for i := 0; i < w; i++ {
		vals := mthread.ParseU64s(ctx.Param(i))
		if len(vals) >= 2 && vals[1] == 1 {
			st.found = append(st.found, vals[0])
		}
	}

	if uint64(len(st.found)) >= st.p {
		primes := st.found[:st.p]
		ctx.Output(fmt.Sprintf("primes: found %d primes, last = %d", st.p, primes[st.p-1]))
		ctx.Exit(mthread.U64s(primes))
		return nil
	}
	next := spawnPrimesBatch(ctx, st)
	chain := append(succs[1:], next)
	return sendPrimesState(ctx, succs[0], chain, st)
}

// IsPrime is the tester's real computation: plain trial division, the
// kind of deliberately simple test the paper's example application used.
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for d := uint64(3); d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// NthPrime returns the n-th prime (1-based), for result verification.
func NthPrime(n int) uint64 {
	count := 0
	for c := uint64(2); ; c++ {
		if IsPrime(c) {
			count++
			if count == n {
				return c
			}
		}
	}
}

// SeqPrimes is the stand-alone sequential baseline (paper §5 / [5]): the
// identical computation without any SDVM machinery. work is invoked with
// the per-test cost exactly as the microthreads would, so the difference
// to a 1-site SDVM run is pure machine overhead.
func SeqPrimes(p, width int, costPerTest float64, work func(cost float64)) []uint64 {
	found := make([]uint64, 0, p)
	next := uint64(2)
	for len(found) < p {
		for i := 0; i < width; i++ {
			cand := next + uint64(i)
			isp := IsPrime(cand)
			work(costPerTest)
			if isp {
				found = append(found, cand)
			}
		}
		next += uint64(width)
	}
	return found[:p]
}

func init() {
	RegisterPrimes(mthread.Global)
}

// RegisterPrimes installs the primes microthreads into a registry.
func RegisterPrimes(r *mthread.Registry) {
	r.Register("primes.start", primesStart)
	r.Register("primes.round", primesRound)
	r.Register("primes.test", primesTest)
}
