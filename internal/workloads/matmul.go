package workloads

import (
	"fmt"

	"repro/internal/daemon"
	"repro/internal/mthread"
	"repro/internal/wire"
)

// The matmul workload multiplies two matrices whose data lives in the
// attraction memory as global objects: every block task *reads* both
// operands through the COMA machinery (remote fetch + caching on first
// touch per site) and the result blocks are written back into a global
// result object. It is the workload that actually exercises memory
// migration, the homesite directory, and the latency hiding the
// processing manager's window exists for — block reads stall, siblings
// run.

// Thread indices of the matmul application.
const (
	MMStart uint32 = iota
	MMBlock
	MMReduce
)

// MatMulApp describes the matmul application for submission.
func MatMulApp() daemon.App {
	return daemon.App{
		Name: "matmul",
		Threads: []daemon.AppThread{
			{Index: MMStart, FuncName: "mm.start", SrcSize: 900},
			{Index: MMBlock, FuncName: "mm.block", SrcSize: 800},
			{Index: MMReduce, FuncName: "mm.reduce", SrcSize: 300},
		},
	}
}

// MatMulArgs builds the submission arguments: multiply two n×n matrices
// split into grid×grid block tasks, each costing blockCost Work units on
// top of the real arithmetic.
func MatMulArgs(n, grid int, blockCost float64) [][]byte {
	return [][]byte{
		mthread.U64(uint64(n)),
		mthread.U64(uint64(grid)),
		mthread.F64(blockCost),
	}
}

// matElem generates matrix entries deterministically so every site and
// the sequential baseline agree without shipping input data around.
func matElem(which, i, j, n int) float64 {
	return float64((i*n+j+which*7)%13) / 3.0
}

// SeqMatMul is the sequential baseline: same matrices, same block
// decomposition, same cost model; returns the checksum of the product.
func SeqMatMul(n, grid int, blockCost float64, work func(float64)) float64 {
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = matElem(0, i, j, n)
			b[i*n+j] = matElem(1, i, j, n)
		}
	}
	var sum float64
	bs := (n + grid - 1) / grid
	for bi := 0; bi < grid; bi++ {
		for bj := 0; bj < grid; bj++ {
			sum += mulBlock(a, b, n, bi*bs, bj*bs, bs)
			work(blockCost)
		}
	}
	return sum
}

// mulBlock computes the checksum of one result block.
func mulBlock(a, b []float64, n, r0, c0, bs int) float64 {
	var sum float64
	for i := r0; i < r0+bs && i < n; i++ {
		for j := c0; j < c0+bs && j < n; j++ {
			var dot float64
			for k := 0; k < n; k++ {
				dot += a[i*n+k] * b[k*n+j]
			}
			sum += dot
		}
	}
	return sum
}

// encodeMatrix packs a float64 matrix into a memory-object payload.
func encodeMatrix(which, n int) []byte {
	vals := make([]uint64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			vals[i*n+j] = mthread.ParseU64(mthread.F64(matElem(which, i, j, n)))
		}
	}
	return mthread.U64s(vals)
}

func decodeMatrix(b []byte) []float64 {
	vals := mthread.ParseU64s(b)
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = mthread.ParseF64(mthread.U64(v))
	}
	return out
}

func mmStart(ctx mthread.Context) error {
	n := int(mthread.ParseU64(ctx.Param(0)))
	grid := int(mthread.ParseU64(ctx.Param(1)))
	costB := ctx.Param(2)
	if n <= 0 || grid <= 0 {
		ctx.Exit(nil)
		return fmt.Errorf("mm: n and grid must be positive")
	}

	// Operand matrices become global memory objects; block tasks on any
	// site fetch them through the attraction memory.
	addrA := ctx.Alloc(encodeMatrix(0, n))
	addrB := ctx.Alloc(encodeMatrix(1, n))

	tasks := grid * grid
	reduce := ctx.NewFrame(MMReduce, tasks)
	bs := (n + grid - 1) / grid
	for bi := 0; bi < grid; bi++ {
		for bj := 0; bj < grid; bj++ {
			slot := int32(bi*grid + bj)
			task := ctx.NewFrame(MMBlock, 1, wire.Target{Addr: reduce, Slot: slot})
			payload := append(mthread.Addr(addrA), mthread.Addr(addrB)...)
			payload = append(payload, mthread.U64s([]uint64{
				uint64(n), uint64(bi * bs), uint64(bj * bs), uint64(bs),
				mthread.ParseU64(costB),
			})...)
			if err := ctx.Send(wire.Target{Addr: task, Slot: 0}, payload); err != nil {
				return err
			}
		}
	}
	return nil
}

func mmBlock(ctx mthread.Context) error {
	p := ctx.Param(0)
	if len(p) < 12+12+40 {
		return fmt.Errorf("mm.block: short parameter")
	}
	addrA := mthread.ParseAddr(p[0:12])
	addrB := mthread.ParseAddr(p[12:24])
	vals := mthread.ParseU64s(p[24:])
	n, r0, c0, bs := int(vals[0]), int(vals[1]), int(vals[2]), int(vals[3])
	cost := mthread.ParseF64(mthread.U64(vals[4]))

	rawA, err := ctx.Read(addrA)
	if err != nil {
		return fmt.Errorf("mm.block: read A: %w", err)
	}
	rawB, err := ctx.Read(addrB)
	if err != nil {
		return fmt.Errorf("mm.block: read B: %w", err)
	}
	a, b := decodeMatrix(rawA), decodeMatrix(rawB)

	sum := mulBlock(a, b, n, r0, c0, bs)
	ctx.Work(cost)
	return ctx.Send(ctx.Target(0), mthread.F64(sum))
}

func mmReduce(ctx mthread.Context) error {
	var sum float64
	for i := 0; i < ctx.Arity(); i++ {
		sum += mthread.ParseF64(ctx.Param(i))
	}
	ctx.Output(fmt.Sprintf("matmul: checksum %.4f", sum))
	ctx.Exit(mthread.F64(sum))
	return nil
}

func init() {
	RegisterMatMul(mthread.Global)
}

// RegisterMatMul installs the matmul microthreads into a registry.
func RegisterMatMul(r *mthread.Registry) {
	r.Register("mm.start", mmStart)
	r.Register("mm.block", mmBlock)
	r.Register("mm.reduce", mmReduce)
}
