package mthread

import (
	"encoding/binary"
	"math"

	"repro/internal/types"
	"repro/internal/wire"
)

// Parameter encoding helpers. Microframe parameters are opaque byte
// slices on the wire; applications almost always pass integers, floats,
// global addresses, or frame targets. These helpers fix one encoding
// (little-endian) so microthreads on any site agree.

// U64 encodes an unsigned 64-bit integer.
func U64(v uint64) []byte {
	return binary.LittleEndian.AppendUint64(nil, v)
}

// ParseU64 decodes an unsigned 64-bit integer (zero for short input).
func ParseU64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 encodes a signed 64-bit integer.
func I64(v int64) []byte { return U64(uint64(v)) }

// ParseI64 decodes a signed 64-bit integer.
func ParseI64(b []byte) int64 { return int64(ParseU64(b)) }

// F64 encodes a float64.
func F64(v float64) []byte {
	return binary.LittleEndian.AppendUint64(nil, math.Float64bits(v))
}

// ParseF64 decodes a float64.
func ParseF64(b []byte) float64 { return math.Float64frombits(ParseU64(b)) }

// U64s encodes a vector of unsigned 64-bit integers.
func U64s(vs []uint64) []byte {
	out := make([]byte, 0, 8*len(vs))
	for _, v := range vs {
		out = binary.LittleEndian.AppendUint64(out, v)
	}
	return out
}

// ParseU64s decodes a vector of unsigned 64-bit integers.
func ParseU64s(b []byte) []uint64 {
	n := len(b) / 8
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out
}

// Addr encodes a global memory address.
func Addr(a types.GlobalAddr) []byte {
	out := make([]byte, 12)
	binary.LittleEndian.PutUint32(out, uint32(a.Home))
	binary.LittleEndian.PutUint64(out[4:], a.Local)
	return out
}

// ParseAddr decodes a global memory address.
func ParseAddr(b []byte) types.GlobalAddr {
	if len(b) < 12 {
		return types.NilAddr
	}
	return types.GlobalAddr{
		Home:  types.SiteID(binary.LittleEndian.Uint32(b)),
		Local: binary.LittleEndian.Uint64(b[4:]),
	}
}

// TargetBytes encodes a frame target (address + slot) so microthreads can
// pass result destinations to each other as ordinary parameters — the
// paper's "some address data has to be propagated to make transfer of
// results possible at all" (§3.2).
func TargetBytes(t wire.Target) []byte {
	out := make([]byte, 16)
	binary.LittleEndian.PutUint32(out, uint32(t.Addr.Home))
	binary.LittleEndian.PutUint64(out[4:], t.Addr.Local)
	binary.LittleEndian.PutUint32(out[12:], uint32(t.Slot))
	return out
}

// ParseTarget decodes a frame target.
func ParseTarget(b []byte) wire.Target {
	if len(b) < 16 {
		return wire.Target{}
	}
	return wire.Target{
		Addr: types.GlobalAddr{
			Home:  types.SiteID(binary.LittleEndian.Uint32(b)),
			Local: binary.LittleEndian.Uint64(b[4:]),
		},
		Slot: int32(binary.LittleEndian.Uint32(b[12:])),
	}
}
