// Package mthread defines the microthread programming interface — the
// "special instructions provided by the SDVM which represent the only
// interface between the program running on the SDVM and the SDVM itself"
// (paper §4, processing manager).
//
// A microthread is a short sequential code fragment (paper §3.1) that,
// when executed with the parameters taken from its microframe, may:
//
//  1. extract the parameters from its microframe,
//  2. calculate its results,
//  3. possibly create (allocate) new microframes,
//  4. send the results to the microframes requiring them as parameters.
//
// In the 2005 prototype microthreads were C fragments compiled per
// platform. Go cannot load native code at runtime, so microthreads here
// are Go functions registered by name in a Registry; the code manager
// distributes *artifacts* (name + synthetic binary blob) between sites
// and resolves names against the local registry. Every process of a
// deployment registers the same application code — the moral equivalent
// of every site having the source available for on-the-fly compilation.
package mthread

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/types"
	"repro/internal/wire"
)

// Context is the SDVM instruction set available to an executing
// microthread.
type Context interface {
	// Param returns parameter slot i of the consumed microframe.
	Param(i int) []byte
	// Arity returns the number of parameter slots.
	Arity() int
	// Target returns pre-wired result destination i of the frame
	// (zero Target if absent).
	Target(i int) wire.Target
	// Targets returns all pre-wired result destinations.
	Targets() []wire.Target

	// Program returns the running program's id.
	Program() types.ProgramID
	// Thread returns the executing microthread's id.
	Thread() types.ThreadID
	// Frame returns the consumed microframe's id.
	Frame() types.FrameID
	// Site returns the executing site's logical id.
	Site() types.SiteID
	// Speed returns the executing site's relative speed factor.
	Speed() float64

	// NewFrame allocates a microframe for thread index threadIdx of the
	// same program with the given parameter arity and result targets.
	// The returned id is a global address other microthreads can send
	// parameters to. Allocation is local and never fails; a zero-arity
	// frame becomes executable immediately (paper §3.2: "a microframe
	// may only be allocated when it is certain that it will receive all
	// its parameters in the future").
	NewFrame(threadIdx uint32, arity int, targets ...wire.Target) types.FrameID
	// NewFramePrio is NewFrame with explicit scheduling hints
	// (paper §3.3).
	NewFramePrio(threadIdx uint32, arity int, prio types.Priority, hint uint32, targets ...wire.Target) types.FrameID
	// Send applies data to a parameter slot of a target microframe,
	// anywhere in the cluster.
	Send(target wire.Target, data []byte) error

	// Alloc creates a global memory object and returns its address.
	Alloc(data []byte) types.GlobalAddr
	// Read returns a copy of a global memory object's contents.
	Read(addr types.GlobalAddr) ([]byte, error)
	// Write updates a global memory object in place.
	Write(addr types.GlobalAddr, offset int, data []byte) error
	// Attract migrates a global memory object to this site and returns
	// its contents (COMA write-intent attraction).
	Attract(addr types.GlobalAddr) ([]byte, error)

	// Output sends text to the program's frontend (paper §4, I/O
	// manager routes all output to the front end).
	Output(text string)
	// Input asks the program's frontend for one line of user input;
	// ok is false when the frontend has no input source attached. It
	// blocks across the cluster — precisely the latency the processing
	// manager's window hides.
	Input(prompt string) (line string, ok bool)
	// Work simulates cpuCost units of computation, scaled by the site's
	// speed factor. In real-work mode it burns CPU; in simulated mode it
	// sleeps — see the exec package's WorkModel.
	Work(cpuCost float64)
	// Exit terminates the whole program with a result delivered to the
	// submitter.
	Exit(result []byte)
}

// Func is the executable body of a microthread.
type Func func(ctx Context) error

// Registry maps stable function names to implementations. Application
// packages register their microthreads once at startup (typically from
// init or a Register*Workload helper); sites resolve artifacts received
// from the code manager against it.
type Registry struct {
	mu    sync.RWMutex
	funcs map[string]Func
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{funcs: make(map[string]Func)}
}

// Register binds name to fn. Re-registering a name panics: two different
// microthreads with one name would corrupt programs silently.
func (r *Registry) Register(name string, fn Func) {
	if fn == nil {
		panic(fmt.Sprintf("mthread: nil func registered for %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.funcs[name]; dup {
		panic(fmt.Sprintf("mthread: duplicate registration of %q", name))
	}
	r.funcs[name] = fn
}

// Lookup resolves a function name.
func (r *Registry) Lookup(name string) (Func, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.funcs[name]
	return fn, ok
}

// Names returns all registered names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.funcs))
	for n := range r.funcs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Global is the process-wide default registry. Workload packages register
// into it from init so every site daemon hosted by this process can
// execute them — mirroring "the source code is available on every site".
var Global = NewRegistry()
