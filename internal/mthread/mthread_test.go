package mthread

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/types"
	"repro/internal/wire"
)

func TestRegistryRegisterLookup(t *testing.T) {
	r := NewRegistry()
	called := false
	r.Register("w.f", func(Context) error { called = true; return nil })

	fn, ok := r.Lookup("w.f")
	if !ok {
		t.Fatal("Lookup failed")
	}
	if err := fn(nil); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("wrong function")
	}
	if _, ok := r.Lookup("missing"); ok {
		t.Fatal("Lookup of missing name succeeded")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Register("dup", func(Context) error { return nil })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	r.Register("dup", func(Context) error { return nil })
}

func TestRegistryNilPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("nil Register did not panic")
		}
	}()
	r.Register("nil", nil)
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		r.Register(n, func(Context) error { return nil })
	}
	got := r.Names()
	want := []string{"alpha", "mid", "zeta"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Names = %v", got)
	}
}

func TestU64RoundTrip(t *testing.T) {
	f := func(v uint64) bool { return ParseU64(U64(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if ParseU64(nil) != 0 || ParseU64([]byte{1, 2}) != 0 {
		t.Fatal("short input must parse to 0")
	}
}

func TestI64RoundTrip(t *testing.T) {
	f := func(v int64) bool { return ParseI64(I64(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestF64RoundTrip(t *testing.T) {
	cases := []float64{0, 1.5, -3.25, math.Pi, math.Inf(1), math.SmallestNonzeroFloat64}
	for _, v := range cases {
		if got := ParseF64(F64(v)); got != v {
			t.Errorf("F64 roundtrip %v -> %v", v, got)
		}
	}
	if !math.IsNaN(ParseF64(F64(math.NaN()))) {
		t.Error("NaN lost")
	}
}

func TestU64sRoundTrip(t *testing.T) {
	f := func(vs []uint64) bool {
		got := ParseU64s(U64s(vs))
		if len(vs) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, vs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrRoundTrip(t *testing.T) {
	f := func(home uint32, local uint64) bool {
		a := types.GlobalAddr{Home: types.SiteID(home), Local: local}
		return ParseAddr(Addr(a)) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if !ParseAddr([]byte{1}).IsNil() {
		t.Fatal("short addr must parse to nil")
	}
}

func TestTargetRoundTrip(t *testing.T) {
	f := func(home uint32, local uint64, slot int32) bool {
		tg := wire.Target{
			Addr: types.GlobalAddr{Home: types.SiteID(home), Local: local},
			Slot: slot,
		}
		return ParseTarget(TargetBytes(tg)) == tg
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if !ParseTarget([]byte{1, 2, 3}).IsNil() {
		t.Fatal("short target must parse to zero")
	}
}

func TestGlobalRegistryHasWorkloads(t *testing.T) {
	// The workloads package registers into Global from init; this
	// package must not know about it. Just verify Global is usable.
	r := Global
	if r == nil {
		t.Fatal("Global registry is nil")
	}
}
