// Package core documents where the paper's primary contribution lives.
//
// The SDVM's "core" is not one algorithm but the interplay of the
// execution-layer managers (paper §4, Figure 4); in this repository it is
// deliberately decomposed into one package per manager, matching the
// paper's own structure:
//
//   - internal/memory — the attraction memory: COMA-style global memory,
//     the homesite directory, and the dataflow trigger (a microframe
//     receiving its last parameter becomes executable);
//   - internal/sched — the scheduling manager: executable/ready queues,
//     decentralized help requests, scheduling hints;
//   - internal/exec — the processing manager: microthread execution with
//     the latency-hiding window, the SDVM instruction set (mthread.Context);
//   - internal/code — the code manager: platform-specific artifacts and
//     on-the-fly compilation;
//   - internal/mthread — the microthread programming model itself.
//
// internal/daemon assembles these (plus the maintenance and communication
// layers) into the site daemon, and the root sdvm package is the public
// face. Start reading at internal/daemon for the big picture, or at
// internal/memory for the dataflow heart of the machine.
package core
