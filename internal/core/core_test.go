package core_test

import (
	"testing"

	"repro/internal/accounting"
	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/code"
	"repro/internal/iomgr"
	"repro/internal/memory"
	"repro/internal/msgbus"
	"repro/internal/program"
	"repro/internal/sched"
	"repro/internal/sitemgr"
	"repro/internal/types"
)

// The package doc promises one manager package per paper layer, all
// meeting at the message bus. These compile-time assertions pin that
// seam: every manager the daemon registers is a msgbus.Handler.
var (
	_ msgbus.Handler = (*memory.Manager)(nil)
	_ msgbus.Handler = (*sched.Manager)(nil)
	_ msgbus.Handler = (*code.Manager)(nil)
	_ msgbus.Handler = (*cluster.Manager)(nil)
	_ msgbus.Handler = (*sitemgr.Manager)(nil)
	_ msgbus.Handler = (*checkpoint.Manager)(nil)
	_ msgbus.Handler = (*accounting.Manager)(nil)
	_ msgbus.Handler = (*program.Manager)(nil)
	_ msgbus.Handler = (*iomgr.Manager)(nil)
)

// TestManagerIDSpace checks that the manager address space the bus
// dispatches on is dense and in range — a new ManagerID constant without
// a slot in the bus's handler table would silently drop messages.
func TestManagerIDSpace(t *testing.T) {
	ids := []types.ManagerID{
		types.MgrCluster, types.MgrSite, types.MgrScheduling,
		types.MgrMemory, types.MgrCode, types.MgrProgram,
		types.MgrCheckpoint, types.MgrAccounting, types.MgrIO,
	}
	seen := make(map[types.ManagerID]bool)
	for _, id := range ids {
		if id < 0 || int(id) >= types.ManagerCount {
			t.Errorf("manager id %d outside [0, %d)", id, types.ManagerCount)
		}
		if seen[id] {
			t.Errorf("manager id %d assigned twice", id)
		}
		seen[id] = true
	}
}
