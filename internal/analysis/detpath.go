package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// detpath guards ROADMAP item 5's contract: every adaptive decision
// must be deterministic under a seed, so the chaos CI job can script a
// scenario and byte-compare its report across runs. A function whose
// output must be a pure function of its (seeded) inputs is annotated
// in its doc comment:
//
//	//sdvm:deterministic
//	func Schedule(cfg LinkFaults, seed int64, src, dst uint32, n int) []Decision { ... }
//
// The analyzer walks forward from every annotated root over the
// synchronous call graph (dataflow.go's reachSync) and reports, with a
// shortest root-to-function witness chain, anything reachable that can
// make the result depend on wall-clock time, global PRNG state or
// scheduling order:
//
//   - wall-clock time: time.Now, Since, Until, After, Tick, NewTimer,
//     NewTicker, AfterFunc, Sleep;
//   - global math/rand state: package-level rand.Intn, rand.Int63,
//     rand.Perm, rand.Shuffle, … — shared, unseeded-by-the-caller
//     state. Methods on a *rand.Rand the caller seeds and owns are
//     fine, as are the New/NewSource/NewZipf constructors;
//   - map iteration: a range over a map yields keys in a randomized
//     order, so any output influenced by the iteration sequence
//     differs between runs (sort the keys first);
//   - goroutine launches: two goroutines race, and the interleaving is
//     not a function of the seed;
//   - calls through stored function values: determinism cannot be
//     proven past an unresolved dynamic call, so it is reported in its
//     own right (the same loud-unprovability policy allocfree uses).
//
// Calls out of the module not listed above are assumed deterministic —
// the documented optimism shared with lockhold's blocking table. A
// finding is suppressed only by a justified directive:
// //sdvm:allow detpath -- <reason>; a bare allow does not count.
type detpath struct{}

func newDetpath() Analyzer { return detpath{} }

func (detpath) Name() string { return "detpath" }

const deterministicDirective = "//sdvm:deterministic"

// deterministicRoots returns the functions annotated //sdvm:deterministic.
func deterministicRoots(e *engine) []*funcSum {
	var roots []*funcSum
	for _, s := range e.sums {
		if s.decl == nil || s.decl.Doc == nil {
			continue
		}
		for _, c := range s.decl.Doc.List {
			if strings.HasPrefix(c.Text, deterministicDirective) {
				roots = append(roots, s)
				break
			}
		}
	}
	return roots
}

// wallClockFuncs are the time package entry points that read (or wait
// on) the wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true, "Sleep": true,
}

// seededRandCtors construct caller-owned sources; they are the
// deterministic way to use math/rand and are not findings.
var seededRandCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func (detpath) Run(prog *Program) []Finding {
	e := prog.engine()
	roots := deterministicRoots(e)
	if len(roots) == 0 {
		return nil
	}
	follow := func(c *callOp) bool { return !c.isGo && !c.dynamic }
	paths := e.reachSync(roots, follow)

	var out []Finding
	seen := make(map[token.Pos]bool)
	report := func(pos token.Pos, msg string) {
		if seen[pos] {
			return
		}
		seen[pos] = true
		out = append(out, Finding{Pos: prog.Fset.Position(pos), Analyzer: "detpath", Message: msg})
	}
	for _, s := range e.sums {
		path, reached := paths[s]
		if !reached {
			continue
		}
		via := strings.Join(path, " → ")
		for _, op := range nondetOps(s) {
			report(op.pos, fmt.Sprintf("%s under deterministic root (%s)", op.what, via))
		}
		for i := range s.calls {
			c := &s.calls[i]
			if c.isGo {
				report(c.pos, fmt.Sprintf(
					"goroutine launched under deterministic root: interleaving is not a function of the seed (%s)", via))
			} else if c.dynamic {
				report(c.pos, fmt.Sprintf(
					"dynamic call under deterministic root cannot be proven deterministic (%s)", via))
			}
		}
	}
	return out
}

// nondetOp is one directly nondeterministic operation in a body.
type nondetOp struct {
	what string
	pos  token.Pos
}

// nondetOps collects a function's direct nondeterminism sources,
// excluding nested literals (each literal is its own call-graph node
// and is reported when itself reachable).
func nondetOps(s *funcSum) []nondetOp {
	body := funcBody(s)
	if body == nil {
		return nil
	}
	info := s.pkg.Info
	var ops []nondetOp
	ast.Inspect(body, func(n ast.Node) bool {
		switch nd := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			if t := info.TypeOf(nd.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					ops = append(ops, nondetOp{
						what: "map iteration order influences the result", pos: nd.Pos(),
					})
				}
			}
		case *ast.CallExpr:
			callee := calleeFunc(info, nd)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			sig, _ := callee.Type().(*types.Signature)
			if sig != nil && sig.Recv() != nil {
				return true // methods (e.g. *rand.Rand, time.Time) are caller-owned state
			}
			switch callee.Pkg().Path() {
			case "time":
				if wallClockFuncs[callee.Name()] {
					ops = append(ops, nondetOp{
						what: "wall-clock time." + callee.Name(), pos: nd.Pos(),
					})
				}
			case "math/rand", "math/rand/v2":
				if !seededRandCtors[callee.Name()] {
					ops = append(ops, nondetOp{
						what: "global math/rand." + callee.Name() + " (shared unseeded source)", pos: nd.Pos(),
					})
				}
			}
		}
		return true
	})
	return ops
}
