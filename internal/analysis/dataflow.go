package analysis

import (
	"go/token"
	"strings"
)

// dataflow.go is the shared interprocedural dataflow framework built on
// the call-graph engine (callgraph.go, ipstate.go). It factors the
// propagation machinery the individual fixpoints share so that every
// analyzer answering "can fact X reach function F along synchronous
// calls?" uses one implementation with one witness-chain format:
//
//   - propagateMay: reverse reachability of a may-fact. A function has
//     the fact if it holds locally (seed) or if any followed call site
//     reaches a callee that has it. Each function keeps one witness — the
//     fact's description, its source position, and the callee chain
//     leading to it — so findings can print a concrete explanation, the
//     same shape lockorder uses for its cycle reports. mayBlock
//     (lockhold), and allocfree's may-allocate fixpoint run on this.
//
//   - reachSync: forward reachability from a root set, keeping one
//     call-site witness path per reached function. allocfree uses it to
//     enumerate everything a //sdvm:hotpath function can execute;
//     wiretaint's summary propagation walks call edges the same way.
//
// Soundness caveats are those of the underlying call graph: calls
// through stored function values (EdgeDynamic) are not followed — a
// fact reachable only through one is invisible to propagateMay and
// reachSync, which is why analyzers that must be conservative (such as
// allocfree) report unresolved dynamic calls in reachable code as
// findings in their own right rather than silently skipping them.

// dfChain is one interprocedural witness: the fact ("channel send",
// "make sized by wire value", …), the source position it was observed
// at, and the display names of the callees between the function holding
// the witness and the fact's location (nearest callee first).
type dfChain struct {
	what  string
	pos   token.Pos
	chain []string
}

// chainString renders "f → g → fact" starting from (but not including)
// the function owning the witness.
func (c *dfChain) chainString(leaf string) string {
	parts := append(append([]string{}, c.chain...), leaf)
	return strings.Join(parts, " → ")
}

// propagateMay computes a reverse may-fact fixpoint over the engine's
// call graph. seed returns the local witness for a function (nil if the
// function does not hold the fact directly); follow decides which call
// sites propagate callee facts to their caller (a goroutine launch, for
// instance, never propagates blocking). The result maps each function
// to its witness; functions without the fact are absent.
func (e *engine) propagateMay(seed func(*funcSum) *dfChain, follow func(*callOp) bool) map[*funcSum]*dfChain {
	out := make(map[*funcSum]*dfChain)
	for _, s := range e.sums {
		if c := seed(s); c != nil {
			out[s] = c
		}
	}
	for changed := true; changed; {
		changed = false
		for _, s := range e.sums {
			if out[s] != nil {
				continue
			}
			for i := range s.calls {
				c := &s.calls[i]
				if !follow(c) {
					continue
				}
				for _, t := range c.callees {
					tc := out[t]
					if tc == nil {
						continue
					}
					chain := make([]string, 0, len(tc.chain)+1)
					chain = append(append(chain, t.name), tc.chain...)
					out[s] = &dfChain{what: tc.what, pos: tc.pos, chain: chain}
					changed = true
					break
				}
				if out[s] != nil {
					break
				}
			}
		}
	}
	return out
}

// reachSync walks forward from roots over the call sites follow accepts,
// returning, per reached function, the display-name path from its root
// (root first, the function itself last). Roots map to a one-element
// path. The first discovered path wins; the walk is breadth-first so the
// witness is a shortest chain.
func (e *engine) reachSync(roots []*funcSum, follow func(*callOp) bool) map[*funcSum][]string {
	paths := make(map[*funcSum][]string, len(roots))
	queue := make([]*funcSum, 0, len(roots))
	for _, r := range roots {
		if _, ok := paths[r]; ok {
			continue
		}
		paths[r] = []string{r.name}
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for i := range s.calls {
			c := &s.calls[i]
			if !follow(c) {
				continue
			}
			for _, t := range c.callees {
				if _, ok := paths[t]; ok {
					continue
				}
				p := paths[s]
				paths[t] = append(append(make([]string, 0, len(p)+1), p...), t.name)
				queue = append(queue, t)
			}
		}
	}
	return paths
}

// hotpathDirective is the annotation marking a function whose transitive
// execution must stay allocation-free (ROADMAP item 4's enforcement
// hook). It sits in the doc comment block of a function declaration:
//
//	//sdvm:hotpath
//	func (m *Message) Encode(w *Writer) { ... }
func hotpathRoots(e *engine) []*funcSum {
	var roots []*funcSum
	for _, s := range e.sums {
		if s.decl == nil || s.decl.Doc == nil {
			continue
		}
		for _, c := range s.decl.Doc.List {
			if strings.HasPrefix(c.Text, "//sdvm:hotpath") {
				roots = append(roots, s)
				break
			}
		}
	}
	return roots
}
