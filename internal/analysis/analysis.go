// Package analysis implements sdvmlint, the SDVM repository's static
// analysis suite. It is built only on the standard library's go/ast,
// go/parser, go/token and go/types packages (the repo's stdlib-only rule)
// and machine-checks the concurrency and protocol invariants the Go
// compiler cannot see:
//
//   - lockhold: no sync.Mutex/RWMutex held across a blocking operation
//     (channel send/receive, bus request, transport send, time.Sleep);
//   - wiredispatch: every wire payload type has a codec registration, a
//     kind name, and a consumer (dispatch case or reply assertion);
//   - sleepfree: no bare time.Sleep in production packages outside an
//     explicit allowlist;
//   - golifecycle: no goroutine running an unbounded loop that can
//     neither terminate nor observe a stop/done channel;
//   - guardedby: struct fields annotated "// guarded by <mu>" are only
//     touched while that mutex is held (interprocedurally: helpers whose
//     every visible caller holds the lock inherit it), and reference-typed
//     guarded fields must not escape via return;
//   - lockorder: the global mutex-acquisition graph is acyclic — a cycle
//     is a potential deadlock, reported with a witness call chain per
//     edge;
//   - atomicmix: a field accessed through sync/atomic anywhere in the
//     module is never read or written plainly, in any package;
//   - chanowner: every channel struct field has exactly one closing
//     owner, closes stay in the declaring package, and no send follows
//     the close in straight-line code;
//   - wiretaint: values decoded from network bytes must pass a
//     recognized validation (bounds clamp, roster membership, Valid())
//     before sizing allocations, indexing, bounding loops or choosing
//     routing destinations — tracked interprocedurally through
//     per-function transfer summaries;
//   - allocfree: functions annotated //sdvm:hotpath must not allocate
//     transitively — make/new/append, interface boxing, closures,
//     string conversions and known-allocating stdlib calls are reported
//     with a root-to-site witness chain;
//   - poolowner: pooled wire buffers (wire.GetWriter) are tracked
//     path-sensitively over a per-function CFG — every path must
//     Release exactly once or transfer ownership, uses after Release
//     and retention of //sdvm:borrowed parameters or decoder views are
//     reported;
//   - detpath: functions reachable from //sdvm:deterministic roots
//     must not reach wall-clock time, global math/rand, map-range
//     iteration, goroutine launches or unresolvable dynamic calls —
//     each finding carries a root-to-site witness chain.
//
// The interprocedural analyzers (and the interprocedural halves of
// lockhold and guardedby) run on a conservative whole-module call
// graph built in callgraph.go/ipstate.go; the shared dataflow
// propagation (witness chains, may-fact fixpoints, forward
// reachability) lives in dataflow.go, and the intraprocedural CFG the
// path-based analyzers use lives in cfg.go. Construction rules and
// soundness caveats are documented on the engine and the framework.
//
// A finding can be suppressed with a line directive — on the offending
// line or the line above it:
//
//	//sdvmlint:allow sleepfree -- simulated compile cost is the model
//
// (//sdvm:allow is accepted as a synonym.) poolowner and detpath
// findings additionally require the "-- <reason>" justification: a
// bare allow without a reason does not suppress them, so every
// ownership or determinism waiver is self-documenting.
//
// The driver (cmd/sdvmlint) exits nonzero on any unsuppressed finding.
package analysis

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"
	"time"
)

// Finding is one analyzer report.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Analyzer is one pass over a loaded program.
type Analyzer interface {
	Name() string
	Run(prog *Program) []Finding
}

// All returns the full suite in stable order.
func All() []Analyzer {
	return []Analyzer{
		newLockhold(),
		newWiredispatch(),
		newSleepfree(defaultSleepAllowlist),
		newGolifecycle(),
		newGuardedby(),
		newLockorder(),
		newAtomicmix(),
		newChanowner(),
		newWiretaint(),
		newAllocfree(),
		newPoolowner(),
		newDetpath(),
	}
}

// Descriptions maps each analyzer name to the one-line summary the
// driver's -analyzers listing prints.
var Descriptions = map[string]string{
	"lockhold":     "no mutex held across a blocking operation (interprocedural)",
	"wiredispatch": "every wire payload kind is registered, named and consumed",
	"sleepfree":    "no bare time.Sleep in production packages",
	"golifecycle":  "every goroutine loop can terminate or observe a stop channel",
	"guardedby":    "'guarded by' fields only touched with the mutex held",
	"lockorder":    "the global mutex-acquisition graph stays acyclic",
	"atomicmix":    "atomic fields are never accessed plainly, module-wide",
	"chanowner":    "one closing owner per channel field, no send after close",
	"wiretaint":    "wire-decoded values validated before sizing/indexing/routing",
	"allocfree":    "//sdvm:hotpath functions never allocate, transitively",
	"poolowner":    "pooled buffers Release exactly once per path; no use-after-Release or borrowed-view retention",
	"detpath":      "//sdvm:deterministic roots reach no wall clock, global rand or map-order dependence",
}

// requireReason lists the analyzers whose findings can only be
// suppressed by an allow directive carrying a "-- <reason>"
// justification.
var requireReason = map[string]bool{
	"poolowner": true,
	"detpath":   true,
}

// Timing records one analyzer's wall-clock cost for a run.
type Timing struct {
	Analyzer string
	Elapsed  time.Duration
}

// Run executes the analyzers and filters findings through the
// //sdvmlint:allow directives, returning the survivors sorted by
// position.
func Run(prog *Program, analyzers []Analyzer) []Finding {
	findings, _ := RunWithTimings(prog, analyzers)
	return findings
}

// RunWithTimings is Run plus per-analyzer wall-clock timings, in
// analyzer order. The first analyzer's timing absorbs the lazy
// call-graph engine construction the interprocedural passes share.
func RunWithTimings(prog *Program, analyzers []Analyzer) ([]Finding, []Timing) {
	allow := collectAllows(prog)
	var out []Finding
	timings := make([]Timing, 0, len(analyzers))
	for _, a := range analyzers {
		start := time.Now()
		for _, f := range a.Run(prog) {
			if allow.allowed(a.Name(), f.Pos, requireReason[a.Name()]) {
				continue
			}
			out = append(out, f)
		}
		timings = append(timings, Timing{Analyzer: a.Name(), Elapsed: time.Since(start)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, timings
}

// allowSet records, per file and line, which analyzers are suppressed
// and whether the directive carried a "-- <reason>" justification. A
// directive covers its own line and the next one, so it can sit at the
// end of the offending line or on a comment line directly above it.
// The value is true when a justification is present.
type allowSet map[string]map[int]map[string]bool

// allowRe accepts both directive spellings: //sdvmlint:allow (the
// original) and //sdvm:allow (matching the other sdvm: annotations).
var allowRe = regexp.MustCompile(`sdvm(?:lint)?:allow\s+([a-z, ]+)`)

func collectAllows(prog *Program) allowSet {
	set := make(allowSet)
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					m := allowRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					names := m[1]
					justified := false
					if i := strings.Index(c.Text, "--"); i >= 0 {
						justified = strings.TrimSpace(c.Text[i+2:]) != ""
					}
					pos := prog.Fset.Position(c.Pos())
					lines := set[pos.Filename]
					if lines == nil {
						lines = make(map[int]map[string]bool)
						set[pos.Filename] = lines
					}
					for _, name := range strings.FieldsFunc(names, func(r rune) bool {
						return r == ',' || r == ' ' || r == '\t'
					}) {
						for _, line := range []int{pos.Line, pos.Line + 1} {
							if lines[line] == nil {
								lines[line] = make(map[string]bool)
							}
							lines[line][name] = lines[line][name] || justified
						}
					}
				}
			}
		}
	}
	return set
}

// allowed reports whether a finding at pos is suppressed. When the
// analyzer requires a justification, only a directive with a non-empty
// "-- <reason>" counts.
func (s allowSet) allowed(analyzer string, pos token.Position, needReason bool) bool {
	justified, ok := s[pos.Filename][pos.Line][analyzer]
	if !ok {
		return false
	}
	return !needReason || justified
}
