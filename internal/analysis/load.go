package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked production package of the module under
// analysis. Test files (_test.go) are excluded on purpose: the analyzers
// enforce invariants of the shipped daemon, and tests legitimately block,
// sleep, and poke at internals.
type Package struct {
	Path  string // import path, e.g. repro/internal/sched
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Program is the loaded production source of one module: every package
// under the module root, parsed with comments and fully type-checked.
type Program struct {
	Fset   *token.FileSet
	Module string
	Pkgs   []*Package

	eng *engine // lazily built interprocedural engine (ipstate.go)
}

// loader type-checks the module's own packages from source and defers to
// the stdlib source importer for everything else. It implements
// types.Importer so package type-checking can recurse through intra-module
// imports.
type loader struct {
	fset   *token.FileSet
	root   string
	module string
	std    types.Importer
	pkgs   map[string]*Package
	typed  map[string]*types.Package
	active map[string]bool // import-cycle guard
}

// Load parses and type-checks every production package under root. root
// must contain a go.mod; its module path decides which imports are loaded
// from source here and which come from the standard library.
func Load(root string) (*Program, error) {
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	// The source importer honors build.Default. Cgo-flavored variants of
	// net/os/user cannot be type-checked without running cgo, and nothing
	// in this repository needs them — force the pure-Go file sets.
	build.Default.CgoEnabled = false
	l := &loader{
		fset:   fset,
		root:   root,
		module: module,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   make(map[string]*Package),
		typed:  make(map[string]*types.Package),
		active: make(map[string]bool),
	}
	var paths []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ok, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, module)
		} else {
			paths = append(paths, module+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	prog := &Program{Fset: fset, Module: module}
	for _, p := range paths {
		if _, err := l.load(p); err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, l.pkgs[p])
	}
	return prog, nil
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		return l.load(path)
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*types.Package, error) {
	if p, ok := l.typed[path]; ok {
		return p, nil
	}
	if l.active[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.active[path] = true
	defer delete(l.active, path)

	dir := l.root
	if path != l.module {
		dir = filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.module+"/")))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || isTestFile(name) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	l.typed[path] = pkg
	l.pkgs[path] = &Package{Path: path, Dir: dir, Files: files, Pkg: pkg, Info: info}
	return pkg, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !isTestFile(name) {
			return true, nil
		}
	}
	return false, nil
}

// isTestFile reports whether name is a Go test file. Test files are
// excluded from every analyzer — the suite enforces invariants of the
// shipped daemon, and tests legitimately sleep, block and leak
// goroutines. Excluding them here (rather than per-analyzer allowlists)
// keeps production-only passes like sleepfree and golifecycle from ever
// seeing test code; analysis_test.go carries a regression fixture for
// this.
func isTestFile(name string) bool {
	return strings.HasSuffix(name, "_test.go")
}
