package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// lockhold flags blocking operations executed while a sync.Mutex or
// sync.RWMutex is held. In the SDVM a manager that blocks under its lock
// stalls every goroutine contending for that manager — and because
// msgbus handlers run on the bus dispatcher, a lock held across a bus
// request is one hop away from a cross-site deadlock. Blocking operations
// are: channel sends and receives (unless inside a select with a default
// clause), selects without default, time.Sleep, sync.WaitGroup.Wait,
// msgbus.Bus calls that touch the network
// (Send/SendMsg/Reply/ReplyErr/Request/RequestAddr), and the transport
// interfaces' Send/Recv/Accept/Dial. sync.Cond.Wait is deliberately NOT
// flagged: the condition-variable contract requires holding c.L at the
// call, and Wait releases it for the duration of the block.
type lockhold struct {
	findings []Finding
	prog     *Program
}

func newLockhold() *lockhold { return &lockhold{} }

func (a *lockhold) Name() string { return "lockhold" }

func (a *lockhold) Run(prog *Program) []Finding {
	a.prog = prog
	a.findings = nil
	for _, pkg := range prog.Pkgs {
		s := &lockScanner{info: pkg.Info, v: &lockholdVisitor{a: a, pkg: pkg}}
		s.scanPackage(pkg)
	}
	a.runInterprocedural(prog)
	return a.findings
}

// runInterprocedural reports calls made under a lock to functions that
// transitively reach a blocking operation. Findings localize at the
// call site in the function that holds the lock; the message carries
// the engine's witness chain down to the blocking operation. Calls the
// intraprocedural pass already classifies as blocking APIs are skipped
// (they were reported above), as are goroutine launches (the new
// goroutine does not hold the creator's locks) and deferred calls (the
// lock state at their run time is unknown).
func (a *lockhold) runInterprocedural(prog *Program) {
	eng := prog.engine()
	for _, s := range eng.sums {
		for i := range s.calls {
			c := &s.calls[i]
			if c.isGo || c.dynamic || c.blockingAPI || len(c.held) == 0 {
				continue
			}
			var t *funcSum
			for _, cand := range c.callees {
				if cand.mayBlock != nil {
					t = cand
					break
				}
			}
			if t == nil {
				continue
			}
			what := fmt.Sprintf("call to %s may block (%s)", t.name, blockChainString(t))
			a.report(c.pos, c.held, what)
		}
	}
}

type lockholdVisitor struct {
	a   *lockhold
	pkg *Package
}

func (v *lockholdVisitor) enterFunc(ast.Node) {}
func (v *lockholdVisitor) exitFunc(ast.Node)  {}

func (v *lockholdVisitor) visitStmt(s ast.Stmt, held heldSet) {
	if len(held) == 0 {
		return
	}
	switch st := s.(type) {
	case *ast.SendStmt:
		v.reportAt(st.Pos(), held, "channel send")
		return
	case *ast.SelectStmt:
		if !selectHasDefault(st) {
			v.reportAt(st.Pos(), held, "select without default")
		}
		return
	}
	for _, e := range shallowExprs(s) {
		v.inspectExpr(e, held)
	}
}

// inspectExpr hunts blocking operations in one expression, staying out of
// nested function literals (their bodies run under their own lock state).
func (v *lockholdVisitor) inspectExpr(e ast.Expr, held heldSet) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				v.reportAt(n.Pos(), held, "channel receive")
			}
		case *ast.CallExpr:
			if what, ok := blockingCall(v.pkg.Info, n); ok {
				v.reportAt(n.Pos(), held, what)
			}
		}
		return true
	})
}

func (v *lockholdVisitor) reportAt(p token.Pos, held heldSet, what string) {
	v.a.report(p, held, what)
}

func (a *lockhold) report(p token.Pos, held heldSet, what string) {
	for key, l := range held {
		lockPos := a.prog.Fset.Position(l.at)
		kind := "Lock"
		if l.reader {
			kind = "RLock"
		}
		a.findings = append(a.findings, Finding{
			Pos:      a.prog.Fset.Position(p),
			Analyzer: "lockhold",
			Message: fmt.Sprintf("%s while holding %s.%s() (acquired at line %d)",
				what, key, kind, lockPos.Line),
		})
	}
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blockingMethods names methods that block, by receiver package base
// name + type name. Matching by base name keeps the analyzer testable
// against fixture modules that mirror the real package layout.
var blockingMethods = map[string]map[string]bool{
	"msgbus.Bus": {
		"Send": true, "SendMsg": true, "Reply": true, "ReplyErr": true,
		"Request": true, "RequestAddr": true,
	},
	"transport.Endpoint": {"Send": true, "Recv": true},
	"transport.Listener": {"Accept": true},
	"transport.Network":  {"Dial": true, "Listen": true},
	"sync.WaitGroup":     {"Wait": true},
}

// blockingCall classifies a call as blocking.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	// Package-level time.Sleep.
	if fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
		return "time.Sleep", true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	tn := named.Obj()
	if tn.Pkg() == nil {
		return "", false
	}
	key := pkgBase(tn.Pkg().Path()) + "." + tn.Name()
	if blockingMethods[key][fn.Name()] {
		return key + "." + fn.Name(), true
	}
	return "", false
}

func pkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// shallowExprs returns the expressions evaluated directly by a statement,
// excluding nested blocks (which the lock scanner walks itself).
func shallowExprs(s ast.Stmt) []ast.Expr {
	switch st := s.(type) {
	case *ast.ExprStmt:
		return []ast.Expr{st.X}
	case *ast.AssignStmt:
		return append(append([]ast.Expr{}, st.Rhs...), st.Lhs...)
	case *ast.ReturnStmt:
		return st.Results
	case *ast.IfStmt:
		return []ast.Expr{st.Cond}
	case *ast.ForStmt:
		if st.Cond != nil {
			return []ast.Expr{st.Cond}
		}
	case *ast.RangeStmt:
		return []ast.Expr{st.X}
	case *ast.SwitchStmt:
		if st.Tag != nil {
			return []ast.Expr{st.Tag}
		}
	case *ast.IncDecStmt:
		return []ast.Expr{st.X}
	case *ast.SendStmt:
		return []ast.Expr{st.Chan, st.Value}
	case *ast.DeferStmt:
		return append([]ast.Expr{st.Call.Fun}, st.Call.Args...)
	case *ast.GoStmt:
		return st.Call.Args
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			var out []ast.Expr
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					out = append(out, vs.Values...)
				}
			}
			return out
		}
	}
	return nil
}
