// Package wire is a miniature of the real codec, just enough for
// wiretaint's source rules: a Reader whose decode methods taint their
// results, the SliceLen validated count reader (whose result is clean
// by design), and payload structs a remote peer populates.
package wire

// SiteID is a logical site. Valid is the membership check the analyzer
// recognizes.
type SiteID uint32

// Valid reports whether the id can belong to a live site.
func (s SiteID) Valid() bool { return s != 0 }

// Payload is a decoded message body; every field is attacker-chosen.
type Payload struct {
	Count  uint32
	Offset uint32
	Home   SiteID
}

// Reader decodes values from a byte buffer.
type Reader struct {
	buf []byte
	off int
}

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Uint32 reads a little-endian uint32.
func (r *Reader) Uint32() uint32 {
	if r.off+4 > len(r.buf) {
		return 0
	}
	v := uint32(r.buf[r.off]) | uint32(r.buf[r.off+1])<<8 |
		uint32(r.buf[r.off+2])<<16 | uint32(r.buf[r.off+3])<<24
	r.off += 4
	return v
}

// SiteID reads a logical site id.
func (r *Reader) SiteID() SiteID { return SiteID(r.Uint32()) }

// SliceLen reads an element count and validates it against the bytes
// remaining, so the result is safe to size an allocation with.
func (r *Reader) SliceLen(elemSize int, what string) int {
	n := r.Uint32()
	if elemSize < 1 {
		elemSize = 1
	}
	if int64(n)*int64(elemSize) > int64(r.Remaining()) {
		return 0
	}
	return int(n)
}
