// Package mgr seeds wiretaint violations (flagged) next to properly
// validated forms (quiet): every recognized source, sink and validation,
// plus the interprocedural summary propagation.
package mgr

import "fixture/wire"

type bus struct{}

// Send routes a datagram; its SiteID argument is a routing decision.
func (bus) Send(dst wire.SiteID, datagram []byte) {}

// --- make-sizing sinks ---

func decodeUnchecked(r *wire.Reader) []byte {
	n := r.Uint32()
	return make([]byte, n) // want "size make without validation"
}

func decodeGuarded(r *wire.Reader) []byte {
	n := r.Uint32()
	if n > 1024 {
		return nil
	}
	return make([]byte, n) // quiet: guard-and-bail upper bound
}

func decodeSliceLen(r *wire.Reader) []int {
	n := r.SliceLen(4, "list")
	return make([]int, n) // quiet: SliceLen is the sanctioned validator
}

func decodeMin(r *wire.Reader) []byte {
	n := min(r.Uint32(), 64)
	return make([]byte, n) // quiet: clamped by an untainted bound
}

// --- indexing and slicing sinks ---

func indexUnchecked(r *wire.Reader, table []int) int {
	i := r.Uint32()
	return table[i] // want "index without bounds validation"
}

func indexCompared(r *wire.Reader, table []int) int {
	i := int(r.Uint32())
	if i < len(table) {
		return table[i] // quiet: upper-bound comparison
	}
	return 0
}

func indexModulo(r *wire.Reader, table []int) int {
	i := int(r.Uint32()) % len(table)
	return table[i] // quiet: clamped by untainted modulus
}

func indexSwitched(r *wire.Reader, table []int) int {
	k := r.Uint32()
	switch k {
	case 0, 1:
		return table[k] // quiet: switch dispatch validates k
	}
	return 0
}

func sliceUnchecked(r *wire.Reader, buf []byte) []byte {
	n := r.Uint32()
	return buf[:n] // want "slice bound without validation"
}

// --- loop bounds ---

func loopUnchecked(p *wire.Payload) int {
	total := 0
	for i := uint32(0); i < p.Count; i++ { // want "loop bound without validation"
		total++
	}
	return total
}

// --- routing sinks ---

func routeUnchecked(b bus, p *wire.Payload) {
	b.Send(p.Home, nil) // want "routing destination without validation"
}

func routeValidated(b bus, p *wire.Payload) {
	if !p.Home.Valid() {
		return
	}
	b.Send(p.Home, nil) // quiet: Valid() membership check
}

func routeRoster(b bus, p *wire.Payload, roster map[wire.SiteID]bool) {
	if !roster[p.Home] {
		return
	}
	b.Send(p.Home, nil) // quiet: roster membership lookup
}

// --- interprocedural summaries ---

// sizedAlloc's parameter reaches a make unvalidated; the summary makes
// tainted call sites the findings, not this function.
func sizedAlloc(n uint32) []byte {
	return make([]byte, n)
}

func callTainted(r *wire.Reader) []byte {
	return sizedAlloc(r.Uint32()) // want "via mgr.sizedAlloc"
}

func callClean(r *wire.Reader) []byte {
	n := r.Uint32()
	if n > 16 {
		return nil
	}
	return sizedAlloc(n) // quiet: validated before the call
}

// readCount returns tainted data; its callers inherit the taint.
func readCount(r *wire.Reader) uint32 {
	return r.Uint32()
}

func callReturnsTaint(r *wire.Reader) []byte {
	return make([]byte, readCount(r)) // want "size make without validation"
}
