// Package fixture seeds guardedby violations (annotated fields touched
// without their mutex) next to the sanctioned access patterns.
package fixture

import "sync"

type store struct {
	mu sync.Mutex
	// guarded by mu
	items map[string]int
	// hits counts lookups. guarded by mu
	hits int
	// clean has no annotation and may be accessed freely.
	clean int
}

// newStore touches the fields of a value that has not escaped yet.
func newStore() *store {
	s := &store{}
	s.items = make(map[string]int)
	return s
}

func (s *store) getBad(k string) int {
	return s.items[k] // want "s.items (guarded by mu) accessed without holding s.mu"
}

func (s *store) countBad() {
	s.hits++ // want "s.hits (guarded by mu) accessed without holding s.mu"
}

func (s *store) getGood(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits++
	return s.items[k]
}

func (s *store) putGood(k string, v int) {
	s.mu.Lock()
	s.items[k] = v
	s.mu.Unlock()
}

// sizeLocked follows the repo convention: the suffix documents that the
// caller holds s.mu.
func (s *store) sizeLocked() int {
	return len(s.items)
}

func (s *store) halfBad(k string, cond bool) int {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		return s.items[k] // want "s.items (guarded by mu) accessed without holding s.mu"
	}
	defer s.mu.Unlock()
	return s.items[k]
}

func (s *store) bumpClean() {
	s.clean++
}
