// Package fixture seeds guardedby violations (annotated fields touched
// without their mutex) next to the sanctioned access patterns.
package fixture

import "sync"

type store struct {
	mu sync.Mutex
	// guarded by mu
	items map[string]int
	// hits counts lookups. guarded by mu
	hits int
	// clean has no annotation and may be accessed freely.
	clean int
}

// newStore touches the fields of a value that has not escaped yet.
func newStore() *store {
	s := &store{}
	s.items = make(map[string]int)
	return s
}

func (s *store) getBad(k string) int {
	return s.items[k] // want "s.items (guarded by mu) accessed without holding s.mu"
}

func (s *store) countBad() {
	s.hits++ // want "s.hits (guarded by mu) accessed without holding s.mu"
}

func (s *store) getGood(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits++
	return s.items[k]
}

func (s *store) putGood(k string, v int) {
	s.mu.Lock()
	s.items[k] = v
	s.mu.Unlock()
}

// sizeLocked follows the repo convention: the suffix documents that the
// caller holds s.mu.
func (s *store) sizeLocked() int {
	return len(s.items)
}

func (s *store) halfBad(k string, cond bool) int {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		return s.items[k] // want "s.items (guarded by mu) accessed without holding s.mu"
	}
	defer s.mu.Unlock()
	return s.items[k]
}

func (s *store) bumpClean() {
	s.clean++
}

// bumpInherited has no Locked suffix, but its every visible caller
// holds s.mu — the interprocedural entry set covers the access.
func (s *store) bumpInherited() {
	s.hits++
}

func (s *store) viaLock() {
	s.mu.Lock()
	s.bumpInherited()
	s.mu.Unlock()
}

// bumpMixed has one caller that locks and one that does not; the
// intersection is empty, so the access is flagged.
func (s *store) bumpMixed() {
	s.hits++ // want "s.hits (guarded by mu) accessed without holding s.mu"
}

func (s *store) viaLock2() {
	s.mu.Lock()
	s.bumpMixed()
	s.mu.Unlock()
}

func (s *store) viaNoLock() {
	s.bumpMixed()
}

// itemsRef leaks the guarded map: the caller can mutate it after the
// unlock, lock or no lock.
func (s *store) itemsRef() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.items // want "s.items (guarded by mu) escapes via return"
}

// itemsLocked delegates locking to the caller by contract; the suffix
// exempts the escape check too.
func (s *store) itemsLocked() map[string]int {
	return s.items
}

// sizeSnapshot returns a scalar derived from the guarded field: no
// reference escapes.
func (s *store) sizeSnapshot() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}
