// Package fixture seeds golifecycle violations (goroutines spinning in
// unstoppable loops) next to the accepted lifecycle patterns.
package fixture

type worker struct {
	done chan struct{}
	jobs chan int
}

func work() {}

func (w *worker) startBadSpin() {
	go func() { // want "unbounded for-loop"
		for {
			work()
		}
	}()
}

func (w *worker) startBadNamed() {
	go w.spin() // want "unbounded for-loop"
}

// spin is only dangerous when launched as a goroutine; the finding is
// reported at the go statement.
func (w *worker) spin() {
	for {
		work()
	}
}

// startGoodSelect is the canonical manager loop: every iteration can
// observe the stop channel.
func (w *worker) startGoodSelect() {
	go func() {
		for {
			select {
			case <-w.done:
				return
			case j := <-w.jobs:
				_ = j
			}
		}
	}()
}

// startGoodRange terminates when the jobs channel closes.
func (w *worker) startGoodRange() {
	go func() {
		for j := range w.jobs {
			_ = j
		}
	}()
}

// startGoodReturn exits the loop on a failed receive.
func (w *worker) startGoodReturn() {
	go func() {
		for {
			if _, ok := <-w.jobs; !ok {
				return
			}
		}
	}()
}

// startGoodBounded runs a conditional loop, not `for {}`.
func (w *worker) startGoodBounded(n int) {
	go func() {
		for i := 0; i < n; i++ {
			work()
		}
	}()
}
