// Package obj maintains Counter.N with sync/atomic; any plain access,
// here or in an importing package, is a race with the atomic ones.
package obj

import "sync/atomic"

type Counter struct {
	N     int64
	plain int64
}

func (c *Counter) Inc() {
	atomic.AddInt64(&c.N, 1)
}

func (c *Counter) Peek() int64 {
	return c.N // want "field Counter.N is accessed with sync/atomic"
}

// NewCounter touches a value that has not escaped yet: exempt.
func NewCounter() *Counter {
	c := &Counter{}
	c.N = 1
	return c
}

// Touch uses the never-atomic field: quiet.
func (c *Counter) Touch() {
	c.plain++
}
