// Package use demonstrates that the atomic-discipline check crosses
// package boundaries: obj.Counter.N is atomic in package obj.
package use

import "fixture/obj"

func Drain(c *obj.Counter) int64 {
	v := c.N // want "field Counter.N is accessed with sync/atomic"
	c.N = 0  // want "field Counter.N is accessed with sync/atomic"
	return v
}
