// Package fixture seeds sleepfree violations (flagged) next to the two
// sanctioned forms: a timer select that observes shutdown, and an
// explicit //sdvmlint:allow directive with a reason.
package fixture

import "time"

func flaggedSleep() {
	time.Sleep(time.Millisecond) // want "bare time.Sleep"
}

func flaggedPollingLoop(ready func() bool) {
	for !ready() {
		time.Sleep(10 * time.Millisecond) // want "bare time.Sleep"
	}
}

func allowedByDirective() {
	//sdvmlint:allow sleepfree -- fixture: modeled propagation delay
	time.Sleep(time.Millisecond)
}

// goodTimerSelect is the fixed form: the wait is interruptible.
func goodTimerSelect(done chan struct{}) bool {
	t := time.NewTimer(time.Millisecond)
	defer t.Stop()
	select {
	case <-done:
		return false
	case <-t.C:
		return true
	}
}
