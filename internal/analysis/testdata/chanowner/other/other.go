// Package other closes a channel field declared in fixture/obj.
package other

import "fixture/obj"

func Kill(w *obj.Worker) {
	close(w.Done) // want "channel field Done closed outside its owning package fixture/obj"
}
