// Package obj seeds channel-ownership violations: a second closing
// owner, a send after the close, plus the sanctioned patterns (one
// owner, sync.Once close, close inside a branch before a send).
package obj

import "sync"

type Worker struct {
	done chan struct{}
	out  chan int
	// Done is closed from another package in this fixture.
	Done chan struct{}
}

// Stop is the first close of done in source order: the owner.
func (w *Worker) Stop() {
	close(w.done)
}

func (w *Worker) Abort() {
	close(w.done) // want "channel field done has multiple closing owners: closed here in obj.Worker.Abort, owned by obj.Worker.Stop"
}

func (w *Worker) finish() {
	close(w.out)
	w.out <- 1 // want "send on w.out after close"
}

type Svc struct {
	once sync.Once
	quit chan struct{}
}

// Close uses the once idiom; the literal's close is attributed to
// Close, so the field has exactly one owner.
func (s *Svc) Close() {
	s.once.Do(func() {
		close(s.quit)
	})
}

type branchy struct {
	c chan int
}

// maybe closes only on one branch; the send after the branch is not
// provably after a close and must stay quiet.
func (b *branchy) maybe(cond bool) {
	if cond {
		close(b.c)
		return
	}
	b.c <- 1
}
