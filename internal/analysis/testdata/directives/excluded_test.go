package fixture

import "time"

// This file must be invisible to every analyzer: the loader excludes
// _test.go files. If it were loaded, the bare sleep below would produce
// an unexpected sleepfree finding and fail the fixture harness.
func sleepInTest() {
	time.Sleep(time.Second)
}
