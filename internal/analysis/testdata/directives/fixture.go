// Package fixture exercises the //sdvmlint:allow directive forms: one
// directive naming several analyzers (comma- or space-separated), a
// directive on the line above a multi-line statement, and the guarantee
// that naming one analyzer never silences another.
package fixture

import (
	"sync"
	"time"
)

type box struct {
	mu sync.Mutex
	ch chan int
}

// One trailing directive suppresses both analyzers, comma form.
func (b *box) bothAllowed() {
	b.mu.Lock()
	time.Sleep(time.Millisecond) //sdvmlint:allow lockhold, sleepfree -- fixture: both suppressed
	b.mu.Unlock()
}

// Space-separated list on the line above the offending one.
func (b *box) bothAllowedAbove() {
	b.mu.Lock()
	//sdvmlint:allow lockhold sleepfree -- fixture: both suppressed
	time.Sleep(time.Millisecond)
	b.mu.Unlock()
}

// A finding anchors at a statement's first line, so a directive above a
// statement spanning several lines still covers it.
func (b *box) multiLine() {
	b.mu.Lock()
	//sdvmlint:allow lockhold -- fixture: the send below spans lines
	b.ch <- func() int {
		return 1
	}()
	b.mu.Unlock()
}

// Allowing lockhold must leave the sleepfree finding standing.
func (b *box) halfAllowed() {
	b.mu.Lock()
	time.Sleep(time.Millisecond) //sdvmlint:allow lockhold -- fixture: one analyzer only // want "bare time.Sleep in production code"
	b.mu.Unlock()
}
