// Package fixture seeds allocfree violations (flagged) next to the
// allocation-free or suppressed forms (quiet). Only functions reachable
// from a //sdvm:hotpath root may be flagged.
package fixture

import "fmt"

type box struct{ x int }

//sdvm:hotpath
func hotMake(n int) []byte { return make([]byte, n) } // want "make allocates"

//sdvm:hotpath
func hotNew() *int { return new(int) } // want "new allocates"

//sdvm:hotpath
func hotAppend(xs []int) []int { return append(xs, 1) } // want "append may grow"

//sdvm:hotpath
func hotLiterals() {
	_ = []int{1}      // want "slice literal allocates"
	_ = map[int]int{} // want "map literal allocates"
	_ = &box{x: 1}    // want "composite literal escapes"
}

//sdvm:hotpath
func hotClosure() func() {
	return func() {} // want "function literal allocates a closure"
}

//sdvm:hotpath
func hotGo() {
	go coldHelper() // want "goroutine launch allocates"
}

//sdvm:hotpath
func hotString(b []byte) string {
	return string(b) // want "string conversion allocates a copy"
}

var sink interface{}

//sdvm:hotpath
func hotBoxAssign(n int) {
	sink = n // want "boxed into interface"
}

//sdvm:hotpath
func hotBoxReturn(n int) interface{} {
	return n // want "boxed into interface"
}

//sdvm:hotpath
func hotFmt(n int) {
	_ = fmt.Sprintf("%d", n) // want "call to allocating fmt.Sprintf" "argument boxed into interface"
}

// Transitive reach: the allocation three frames below a root is
// reported with the full witness chain.

//sdvm:hotpath
func hotDeep(n int) []byte {
	return viaHelper(n)
}

func viaHelper(n int) []byte {
	return deepAlloc(n)
}

func deepAlloc(n int) []byte {
	return make([]byte, n) // want "fixture.hotDeep → fixture.viaHelper → fixture.deepAlloc"
}

// Calls through stored function values cannot be proven
// allocation-free and are findings in their own right.

var stored func()

//sdvm:hotpath
func hotDynamic() {
	stored() // want "dynamic call on hot path"
}

// Pointer-shaped values ride in the interface word without boxing, and
// a nil literal never allocates.

//sdvm:hotpath
func hotNoBox(p *box, m map[int]int) {
	sink = p
	sink = m
	sink = nil
}

// Suppressed: a justified non-growing append.

//sdvm:hotpath
func hotAllowed(xs []int, idx int) []int {
	return append(xs[:idx], xs[idx+1:]...) //sdvmlint:allow allocfree -- removal append shrinks, never grows
}

// Cold code allocates freely: no hot root reaches these.

func coldHelper() {}

func coldAlloc() []byte {
	return make([]byte, 64)
}
