// Package fixture seeds a lock-order cycle whose first edge exists
// only interprocedurally: takeB acquires bmu while amu is held at
// entry (via aThenB), and bThenA acquires them in the opposite order.
package fixture

import "sync"

var (
	amu sync.Mutex
	bmu sync.Mutex
)

// takeB is only ever called with amu held, so the engine sees the
// amu → bmu edge through takeB's entry set.
func takeB() {
	bmu.Lock() // want "potential deadlock: lock-order cycle fixture.amu → fixture.bmu → fixture.amu"
	bmu.Unlock()
}

func aThenB() {
	amu.Lock()
	takeB()
	amu.Unlock()
}

func bThenA() {
	bmu.Lock()
	amu.Lock()
	amu.Unlock()
	bmu.Unlock()
}

type obj struct {
	mu sync.Mutex
}

// nested acquires two instances whose locks share one canonical
// identity; the self-edge must not be reported (the key cannot tell
// instances apart).
func nested(a, b *obj) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}
