// Package fixture seeds lockhold violations (flagged) next to the fixed
// forms (quiet). The marker comments name the finding the analyzer must
// produce on each flagged line.
package fixture

import (
	"sync"
	"time"
)

type server struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string]int
	ch   chan int
}

func (s *server) badSleep() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding s.mu.Lock()"
	s.mu.Unlock()
}

func (s *server) badSendUnderDefer() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1 // want "channel send while holding s.mu.Lock()"
}

func (s *server) badRecvUnderRLock() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return <-s.ch // want "channel receive while holding s.rw.RLock()"
}

func (s *server) badBlockingSelect() {
	s.mu.Lock()
	select { // want "select without default while holding s.mu.Lock()"
	case v := <-s.ch:
		s.data["v"] = v
	}
	s.mu.Unlock()
}

// goodUnlockFirst releases before blocking — the fixed form of
// badSendUnderDefer.
func (s *server) goodUnlockFirst() {
	s.mu.Lock()
	v := s.data["v"]
	s.mu.Unlock()
	s.ch <- v
}

// goodNonBlockingSelect holds the lock across a select with a default
// clause, which cannot block.
func (s *server) goodNonBlockingSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
}

// goodBranchRelease unlocks on one path and blocks only there.
func (s *server) goodBranchRelease(flag bool) {
	s.mu.Lock()
	if flag {
		s.mu.Unlock()
		<-s.ch
		return
	}
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// goodCondWait holds the condition variable's own locker across Wait,
// which is the required sync.Cond contract (Wait releases the lock while
// blocked) and must stay quiet.
func (s *server) goodCondWait(cond *sync.Cond, ready func() bool) {
	s.mu.Lock()
	for !ready() {
		cond.Wait()
	}
	s.mu.Unlock()
}

// goodGoroutine launches a goroutine under the lock; the goroutine body
// runs with its own (empty) lock state.
func (s *server) goodGoroutine() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- 1
	}()
}

// drain blocks, but holds nothing itself — quiet here. The violation is
// calling it under a lock, which only the interprocedural pass can see.
func (s *server) drain() {
	<-s.ch
}

func (s *server) badHelperUnderLock() {
	s.mu.Lock()
	s.drain() // want "call to fixture.server.drain may block"
	s.mu.Unlock()
}

// compute never blocks, so calling it under the lock is fine.
func (s *server) compute() int {
	return len(s.data)
}

func (s *server) goodHelperUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compute()
}

// goodGoHelperUnderLock launches the blocking helper in a goroutine,
// which does not inherit the creator's lock state.
func (s *server) goodGoHelperUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go s.drain()
}
