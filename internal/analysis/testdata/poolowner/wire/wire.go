// Package wire models the real internal/wire pooled-buffer contract:
// GetWriter hands out exclusive ownership, Release returns the storage
// to the pool, and Decoder results alias the input buffer.
package wire

type Writer struct{ buf []byte }

func GetWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

func (w *Writer) Release() { w.buf = w.buf[:0] }

func (w *Writer) Bytes() []byte { return w.buf }

func (w *Writer) Uint8(v uint8) { w.buf = append(w.buf, v) }

type Message struct{ Payload []byte }

type Decoder struct{ msg Message }

func NewDecoder() *Decoder { return &Decoder{} }

// Decode aliases buf: the result is valid only until the next call.
func (d *Decoder) Decode(buf []byte) (*Message, error) {
	d.msg.Payload = buf
	return &d.msg, nil
}
