// Package mgr seeds the poolowner ownership violations: leaks on error
// paths and in loops, double releases, uses after release, and the
// clean transfer patterns that must stay quiet.
package mgr

import "fixture/wire"

func transmit([]byte) error { return nil }

// LeakOnError loses the buffer on the early-return path.
func LeakOnError(fail bool) error {
	w := wire.GetWriter(8) // want "still owned"
	w.Uint8(1)
	if fail {
		return transmit(nil)
	}
	if err := transmit(w.Bytes()); err != nil {
		w.Release()
		return err
	}
	w.Release()
	return nil
}

// DoubleRelease releases the same buffer twice in straight-line code.
func DoubleRelease() {
	w := wire.GetWriter(0)
	w.Release()
	w.Release() // want "double Release"
}

// MaybeDouble double-releases on the path through the branch.
func MaybeDouble(cond bool) {
	w := wire.GetWriter(0)
	if cond {
		w.Release()
	}
	w.Release() // want "double Release"
}

// UseAfterRelease reads the buffer after the pool took it back.
func UseAfterRelease() []byte {
	w := wire.GetWriter(0)
	w.Uint8(1)
	w.Release()
	return w.Bytes() // want "used after Release"
}

// LoopLeak re-executes the allocation site with the previous iteration's
// buffer still owned, and the last iteration's buffer leaks at exit.
func LoopLeak(n int) {
	for i := 0; i < n; i++ {
		w := wire.GetWriter(0) // want "executes again" "still owned"
		w.Uint8(uint8(i))
	}
}

// Discard drops an owned buffer into the blank identifier.
func Discard() {
	_ = wire.GetWriter(0) // want "discarded into _"
}

// CleanDefer releases via defer on every path.
func CleanDefer() error {
	w := wire.GetWriter(0)
	defer w.Release()
	w.Uint8(1)
	return transmit(w.Bytes())
}

// CleanBranch releases on both the error path and the success path.
func CleanBranch(fail bool) error {
	w := wire.GetWriter(16)
	if fail {
		w.Release()
		return transmit(nil)
	}
	err := transmit(w.Bytes())
	w.Release()
	return err
}

// send consumes its parameter: every path releases it. Passing an owned
// buffer here transfers ownership (the netmgr.send pattern).
func send(w *wire.Writer) error {
	defer w.Release()
	return transmit(w.Bytes())
}

// CleanTransfer hands ownership to the consuming callee.
func CleanTransfer() error {
	w := wire.GetWriter(0)
	w.Uint8(2)
	return send(w)
}

// UseAfterTransfer touches the buffer after handing it off.
func UseAfterTransfer() []byte {
	w := wire.GetWriter(0)
	if send(w) != nil {
		return nil
	}
	return w.Bytes() // want "after ownership was transferred"
}

// newEnvelope returns ownership to its caller (the netmgr.startEnvelope
// pattern).
func newEnvelope() *wire.Writer {
	w := wire.GetWriter(32)
	w.Uint8(0xFF)
	return w
}

// LeakFromFactory leaks the factory's buffer on the early return.
func LeakFromFactory(fail bool) {
	w := newEnvelope() // want "still owned"
	if fail {
		return
	}
	w.Release()
}

// borrowNoRelease models netmgr.send with its Release deleted: the
// parameter is only borrowed, so the caller's buffer stays owned.
func borrowNoRelease(w *wire.Writer) error { return transmit(w.Bytes()) }

// CallerLeaks shows the deleted-Release regression surfacing at the
// call site that kept ownership.
func CallerLeaks() error {
	w := wire.GetWriter(0) // want "still owned"
	return borrowNoRelease(w)
}

// batch stores its envelope in a field: ownership leaves the analyzable
// region (escape), checked method by method — both stay quiet.
type batch struct{ env *wire.Writer }

func (b *batch) fill() { b.env = wire.GetWriter(0) }

func (b *batch) drop() {
	if b.env != nil {
		b.env.Release()
	}
}

// Closure captures the buffer; the closure owns it now (escape).
func Closure() func() {
	w := wire.GetWriter(0)
	return func() { w.Release() }
}

// AllowNoReason: a bare allow does not suppress poolowner findings.
func AllowNoReason() {
	w := wire.GetWriter(0)
	w.Release()
	w.Release() //sdvmlint:allow poolowner // want "double Release"
}

// AllowWithReason: a justified allow does.
func AllowWithReason() {
	w := wire.GetWriter(0)
	w.Release()
	w.Release() //sdvm:allow poolowner -- fixture: exercising the justified escape hatch
}
