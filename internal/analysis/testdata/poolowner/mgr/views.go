// View-retention cases: //sdvm:borrowed parameters and decoder views
// must not outlive the call that lent them.
package mgr

import "fixture/wire"

var global []byte

var globalMsg *wire.Message

// store retains what it is sent — the annotated method must not.
type store struct{ data []byte }

//sdvm:borrowed datagram
func (s *store) Send(site uint32, datagram []byte) error {
	s.data = datagram // want "stored to a heap location"
	return nil
}

// SendCopy materializes first: a copy is not retention.
//
//sdvm:borrowed datagram
func (s *store) SendCopy(site uint32, datagram []byte) error {
	s.data = append([]byte(nil), datagram...)
	return nil
}

// SendChan leaks a derived view (a subslice) through a channel.
//
//sdvm:borrowed datagram
func (s *store) SendChan(ch chan []byte, datagram []byte) {
	head := datagram[:2]
	ch <- head // want "sent on a channel"
}

// Sender's contract annotation is inherited by every implementation.
type Sender interface {
	//sdvm:borrowed datagram
	Send(site uint32, datagram []byte) error
}

// keeper implements Sender without its own annotation — the interface
// contract still applies.
type keeper struct{ last []byte }

func (k *keeper) Send(site uint32, datagram []byte) error {
	k.last = datagram // want "stored to a heap location"
	return nil
}

func stash(b []byte) { global = b }

// Relay hands the borrowed slice to a callee that stores it.
//
//sdvm:borrowed datagram
func Relay(datagram []byte) {
	stash(datagram) // want "stores its parameter"
}

func use(b []byte) int { return len(b) }

// Inspect passes the view to a non-retaining callee — quiet.
//
//sdvm:borrowed datagram
func Inspect(datagram []byte) int {
	return use(datagram)
}

// Echo returns the borrowed view to an unknowing caller.
//
//sdvm:borrowed datagram
func Echo(datagram []byte) []byte {
	return datagram // want "returned"
}

// DecodeKeep retains a decoder view past the call frame.
func DecodeKeep(buf []byte) {
	d := wire.NewDecoder()
	msg, _ := d.Decode(buf)
	globalMsg = msg // want "stored to a heap location"
}

// DecodeUse reads the view inside the frame — quiet.
func DecodeUse(buf []byte) int {
	d := wire.NewDecoder()
	msg, _ := d.Decode(buf)
	return len(msg.Payload)
}
