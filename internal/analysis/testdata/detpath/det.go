// Package det seeds the detpath violations: wall-clock reads, global
// PRNG use, map-order dependence and goroutine launches under
// //sdvm:deterministic roots, plus the seeded patterns that must stay
// quiet.
package det

import (
	"math/rand"
	"time"
)

// Schedule is the model citizen: a pure function of (seed, n) using a
// caller-owned seeded source.
//
//sdvm:deterministic
func Schedule(seed int64, n int) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, rng.Intn(100))
	}
	return out
}

//sdvm:deterministic
func Stamp() int64 {
	return time.Now().UnixNano() // want "wall-clock time.Now"
}

//sdvm:deterministic
func Jitter() int {
	return rand.Intn(10) // want "global math/rand.Intn"
}

// helperNow is only nondeterministic when reached from a root — the
// finding carries the root-to-site witness chain.
func helperNow(t0 time.Time) time.Duration {
	return time.Since(t0) // want "wall-clock time.Since"
}

//sdvm:deterministic
func Uses() time.Duration { return helperNow(time.Time{}) }

//sdvm:deterministic
func MapOrder(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want "map iteration order"
		keys = append(keys, k)
	}
	return keys
}

//sdvm:deterministic
func Launch(ch chan int) {
	go push(ch) // want "goroutine launched under deterministic root"
}

func push(ch chan int) { ch <- 1 }

//sdvm:deterministic
func Dyn(f func() int) int {
	return f() // want "dynamic call under deterministic root"
}

// FreeRunning is not annotated: wall-clock use is fine here.
func FreeRunning() int64 { return time.Now().Unix() }

// Allowed waives the finding with a justification — quiet.
//
//sdvm:deterministic
func Allowed() int64 {
	return time.Now().Unix() //sdvm:allow detpath -- fixture: live pacing, result unused
}

// AllowedNoReason has a bare allow, which detpath rejects.
//
//sdvm:deterministic
func AllowedNoReason() int64 {
	return time.Now().Unix() //sdvm:allow detpath // want "wall-clock time.Now"
}
