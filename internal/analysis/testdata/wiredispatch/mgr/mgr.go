// Package mgr is the fixture's dispatching manager: it consumes Ping and
// nothing else.
package mgr

import "fixture/wire"

// Msg mimics the bus message envelope.
type Msg struct {
	Payload wire.Payload
}

// Handle dispatches on the payload type.
func Handle(m *Msg) {
	switch m.Payload.(type) {
	case *wire.Ping:
	}
}
