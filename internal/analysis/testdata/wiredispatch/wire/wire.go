// Package wire is a miniature copy of the SDVM protocol package's
// structure — Kind enum, kindNames, Payload interface, register calls —
// with deliberate holes for the wiredispatch analyzer to find.
package wire

// Kind identifies a payload type on the wire.
type Kind uint16

const (
	KindInvalid Kind = iota
	KindPing
	KindOrphan // want "never registered" "no kindNames entry"
	KindGhost
)

var kindNames = map[Kind]string{
	KindPing:  "Ping",
	KindGhost: "Ghost",
}

// Payload is one decodable message body.
type Payload interface {
	Kind() Kind
}

func register(k Kind, f func() Payload) {}

// Ping is registered and handled: fully wired.
type Ping struct{}

func (*Ping) Kind() Kind { return KindPing }

// Ghost is registered but no manager dispatches or asserts it.
type Ghost struct{}

func (*Ghost) Kind() Kind { return KindGhost }

// Unregistered implements Payload but was never given to register.
type Unregistered struct{} // want "has no register"

func (*Unregistered) Kind() Kind { return KindInvalid }

func init() {
	register(KindPing, func() Payload { return &Ping{} })
	register(KindGhost, func() Payload { return &Ghost{} }) // want "no consumer outside the wire package"
}
