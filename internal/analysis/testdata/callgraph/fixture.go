// Package fixture exercises the call-graph construction rules: static
// resolution, interface expansion over module types, goroutine edges,
// unresolved dynamic calls and synchronous function literals. The
// harness analyzer renders every resolved edge as a finding.
package fixture

type runner interface {
	run()
}

type mgr struct{}

func (m *mgr) run() {}

type agent struct{}

func (a *agent) run() {}

func helper() {}

func calls() {
	helper() // want "static call to fixture.helper"

	var r runner = &mgr{}
	r.run() // want "interface call resolving to fixture.agent.run, fixture.mgr.run"

	go helper() // want "goroutine launch of fixture.helper"

	f := helper
	f() // want "dynamic call (unresolved)"

	func() { helper() }() // want "static call to fixture.calls.func@32" "static call to fixture.helper"
}

// Closure and bound-method edges: the dataflow summaries (allocfree,
// wiretaint) walk exactly these, so their resolution is pinned here.
func closures() {
	// A literal stored in a variable is no longer statically resolvable
	// at its call site, but its own body still gets static edges.
	g := func() { helper() } // want "static call to fixture.helper"
	g()                      // want "dynamic call (unresolved)"

	// A deferred literal runs synchronously at return: static edge to
	// the literal, and the literal's body edges resolve as usual.
	defer func() { helper() }() // want "static call to fixture.closures.func@45" "static call to fixture.helper"

	// A goroutine launching a literal gets a go edge to the literal.
	go func() { helper() }() // want "goroutine launch of fixture.closures.func@48" "static call to fixture.helper"
}

func boundMethods(m *mgr) {
	// A method value detaches the receiver: the call site is dynamic.
	h := m.run
	h() // want "dynamic call (unresolved)"

	// A method expression names the method statically.
	(*mgr).run(m) // want "static call to fixture.mgr.run"
}
