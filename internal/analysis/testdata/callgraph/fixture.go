// Package fixture exercises the call-graph construction rules: static
// resolution, interface expansion over module types, goroutine edges,
// unresolved dynamic calls and synchronous function literals. The
// harness analyzer renders every resolved edge as a finding.
package fixture

type runner interface {
	run()
}

type mgr struct{}

func (m *mgr) run() {}

type agent struct{}

func (a *agent) run() {}

func helper() {}

func calls() {
	helper() // want "static call to fixture.helper"

	var r runner = &mgr{}
	r.run() // want "interface call resolving to fixture.agent.run, fixture.mgr.run"

	go helper() // want "goroutine launch of fixture.helper"

	f := helper
	f() // want "dynamic call (unresolved)"

	func() { helper() }() // want "static call to fixture.calls.func@32" "static call to fixture.helper"
}
