package analysis

import (
	"go/ast"
	"go/token"
)

// cfg.go builds the intraprocedural control-flow graph the path-based
// analyzers (poolowner) run their forward dataflow over. The graph is
// statement-granular: every executable statement is one node, and the
// condition expressions of if/for/switch get nodes of their own so a
// transfer function sees uses inside conditions too. Construction
// rules:
//
//   - entry and exit are synthetic (node == nil). Every return
//     statement and the implicit fall-off at the end of the body edge
//     into exit, so "state at exit predecessors" is "state on every
//     terminating path".
//   - if/else, for (with back edge through the post statement), range,
//     switch/type-switch (including fallthrough), and select are
//     expanded structurally; break/continue — labeled or not — resolve
//     against an explicit loop/switch stack, and goto patches its edge
//     once the labeled target exists.
//   - panic(...) ends its path without reaching exit: a path that dies
//     cannot leak resources the process would have kept using.
//   - defer is an ordinary node at its syntactic position; analyzers
//     that care (poolowner) record it as a pending action and apply it
//     when a path reaches exit. That keeps defer path-sensitive: a
//     defer registered inside a branch only covers paths through the
//     branch.
//
// The builder intentionally does not model panics from arbitrary
// expressions or recover — the analyses running on it are linters, not
// verifiers, and the documented soundness gap is "a leak visible only
// on an implicit-panic unwind is not reported".

// cfgNode is one node of the graph. node is an ast.Stmt for statement
// nodes, an ast.Expr for condition nodes, and nil for entry/exit.
type cfgNode struct {
	node  ast.Node
	succs []*cfgNode
	preds []*cfgNode
}

// Pos returns the node's source position (NoPos for entry/exit).
func (n *cfgNode) Pos() token.Pos {
	if n.node == nil {
		return token.NoPos
	}
	return n.node.Pos()
}

// cfg is the control-flow graph of one function body.
type cfg struct {
	entry *cfgNode
	exit  *cfgNode
	nodes []*cfgNode
}

// buildCFG constructs the graph for one function body.
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{
		c:      &cfg{},
		labels: make(map[string]*cfgNode),
	}
	b.c.entry = b.newNode(nil)
	b.c.exit = &cfgNode{}
	frontier := b.stmtList(body.List, []*cfgNode{b.c.entry})
	b.connect(frontier, b.c.exit)
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.edge(g.node, target)
		} else {
			// Label outside the analyzed body (cannot happen in
			// type-checked code); fail open to exit.
			b.edge(g.node, b.c.exit)
		}
	}
	b.c.nodes = append(b.c.nodes, b.c.exit)
	return b.c
}

// loopFrame is one enclosing breakable/continuable construct.
type loopFrame struct {
	label     string     // enclosing label, "" if none
	isLoop    bool       // for/range: continue allowed
	breaks    []*cfgNode // nodes that break out (joined after the construct)
	continues []*cfgNode // nodes that continue (joined at the loop head)
}

type pendingGoto struct {
	node  *cfgNode
	label string
}

type cfgBuilder struct {
	c      *cfg
	stack  []*loopFrame
	labels map[string]*cfgNode // label -> first node of the labeled stmt
	gotos  []pendingGoto
	// pendingLabel is set by a LabeledStmt so the next loop/switch
	// frame knows its label (for `break L` / `continue L`).
	pendingLabel string
}

func (b *cfgBuilder) newNode(n ast.Node) *cfgNode {
	node := &cfgNode{node: n}
	b.c.nodes = append(b.c.nodes, node)
	return node
}

func (b *cfgBuilder) edge(from, to *cfgNode) {
	from.succs = append(from.succs, to)
	to.preds = append(to.preds, from)
}

func (b *cfgBuilder) connect(preds []*cfgNode, to *cfgNode) {
	for _, p := range preds {
		b.edge(p, to)
	}
}

// seq creates a node for n with the given predecessors and returns it
// as the new single-element frontier.
func (b *cfgBuilder) seq(n ast.Node, preds []*cfgNode) []*cfgNode {
	node := b.newNode(n)
	b.connect(preds, node)
	return []*cfgNode{node}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt, frontier []*cfgNode) []*cfgNode {
	for _, s := range list {
		frontier = b.stmt(s, frontier)
	}
	return frontier
}

// stmt wires one statement into the graph and returns the frontier of
// nodes control may fall out of. An empty frontier means control never
// falls through (return, break, panic, infinite loop).
func (b *cfgBuilder) stmt(s ast.Stmt, frontier []*cfgNode) []*cfgNode {
	label := b.pendingLabel
	b.pendingLabel = ""
	switch st := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(st.List, frontier)

	case *ast.LabeledStmt:
		// The label resolves to the first node of the labeled
		// statement. A placeholder node keeps goto targets stable even
		// when the labeled statement is itself a loop.
		head := b.seq(st, frontier)
		b.labels[st.Label.Name] = head[0]
		b.pendingLabel = st.Label.Name
		return b.stmt(st.Stmt, head)

	case *ast.IfStmt:
		if st.Init != nil {
			frontier = b.stmt(st.Init, frontier)
		}
		cond := b.seq(st.Cond, frontier)
		thenEnd := b.stmtList(st.Body.List, cond)
		elseEnd := cond
		if st.Else != nil {
			elseEnd = b.stmt(st.Else, cond)
		}
		return append(append([]*cfgNode{}, thenEnd...), elseEnd...)

	case *ast.ForStmt:
		if st.Init != nil {
			frontier = b.stmt(st.Init, frontier)
		}
		frame := &loopFrame{label: label, isLoop: true}
		b.stack = append(b.stack, frame)
		var head []*cfgNode
		if st.Cond != nil {
			head = b.seq(st.Cond, frontier)
		} else {
			// No condition: the loop head is the body's first node;
			// use a placeholder node for the ForStmt itself so there
			// is a stable head to loop back to.
			head = b.seq(st, frontier)
		}
		bodyEnd := b.stmtList(st.Body.List, head)
		// continue and normal body end go through the post statement
		// back to the head.
		backPreds := append(bodyEnd, frame.continues...)
		if st.Post != nil {
			backPreds = b.stmt(st.Post, backPreds)
		}
		b.connect(backPreds, head[0])
		b.stack = b.stack[:len(b.stack)-1]
		var out []*cfgNode
		if st.Cond != nil {
			out = append(out, head...)
		}
		return append(out, frame.breaks...)

	case *ast.RangeStmt:
		frame := &loopFrame{label: label, isLoop: true}
		b.stack = append(b.stack, frame)
		head := b.seq(st, frontier) // the range head: evaluates X, binds key/value
		bodyEnd := b.stmtList(st.Body.List, head)
		b.connect(append(bodyEnd, frame.continues...), head[0])
		b.stack = b.stack[:len(b.stack)-1]
		return append(append([]*cfgNode{}, head...), frame.breaks...)

	case *ast.SwitchStmt:
		if st.Init != nil {
			frontier = b.stmt(st.Init, frontier)
		}
		var tag []*cfgNode
		if st.Tag != nil {
			tag = b.seq(st.Tag, frontier)
		} else {
			tag = b.seq(st, frontier)
		}
		return b.switchBody(st.Body, tag, label)

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			frontier = b.stmt(st.Init, frontier)
		}
		head := b.seq(st.Assign, frontier)
		return b.switchBody(st.Body, head, label)

	case *ast.SelectStmt:
		head := b.seq(st, frontier)
		frame := &loopFrame{label: label}
		b.stack = append(b.stack, frame)
		var out []*cfgNode
		hasDefault := false
		for _, cc := range st.Body.List {
			comm := cc.(*ast.CommClause)
			var clause []*cfgNode
			if comm.Comm != nil {
				clause = b.stmt(comm.Comm, head)
			} else {
				hasDefault = true
				clause = head
			}
			out = append(out, b.stmtList(comm.Body, clause)...)
		}
		b.stack = b.stack[:len(b.stack)-1]
		out = append(out, frame.breaks...)
		if len(st.Body.List) == 0 || (!hasDefault && len(out) == 0) {
			// select{} blocks forever; a select whose every clause
			// breaks out has only the breaks.
			return frame.breaks
		}
		return out

	case *ast.BranchStmt:
		node := b.newNode(st)
		b.connect(frontier, node)
		switch st.Tok {
		case token.BREAK:
			if f := b.findFrame(st.Label, false); f != nil {
				f.breaks = append(f.breaks, node)
			}
		case token.CONTINUE:
			if f := b.findFrame(st.Label, true); f != nil {
				f.continues = append(f.continues, node)
			}
		case token.GOTO:
			if st.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{node, st.Label.Name})
			}
		case token.FALLTHROUGH:
			// Handled in switchBody: fall out of the clause normally.
			return []*cfgNode{node}
		}
		return nil

	case *ast.ReturnStmt:
		node := b.newNode(st)
		b.connect(frontier, node)
		b.edge(node, b.c.exit)
		return nil

	case *ast.ExprStmt:
		node := b.newNode(st)
		b.connect(frontier, node)
		if isPanicCall(st.X) {
			return nil // the path dies here
		}
		return []*cfgNode{node}

	case nil:
		return frontier

	default:
		// Assign, Decl, Defer, Go, Send, IncDec, Empty: straight-line.
		return b.seq(s, frontier)
	}
}

// switchBody expands the case clauses of a switch/type-switch: every
// clause branches from the head, fallthrough chains into the next
// clause, and a missing default lets the head fall through.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, head []*cfgNode, label string) []*cfgNode {
	frame := &loopFrame{label: label}
	b.stack = append(b.stack, frame)
	var out []*cfgNode
	hasDefault := false
	// clauseStart[i] is the first node of clause i, so a fallthrough in
	// clause i-1 can jump to it.
	starts := make([]*cfgNode, len(body.List))
	for i, cs := range body.List {
		cc := cs.(*ast.CaseClause)
		start := b.newNode(cc)
		starts[i] = start
		b.connect(head, start)
		if cc.List == nil {
			hasDefault = true
		}
	}
	for i, cs := range body.List {
		cc := cs.(*ast.CaseClause)
		end := b.stmtList(cc.Body, []*cfgNode{starts[i]})
		// A trailing fallthrough's node ends up in `end`; chain it to
		// the next clause instead of falling out of the switch.
		if n := len(cc.Body); n > 0 {
			if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(starts) {
				b.connect(end, starts[i+1])
				continue
			}
		}
		out = append(out, end...)
	}
	b.stack = b.stack[:len(b.stack)-1]
	if !hasDefault {
		out = append(out, head...)
	}
	return append(out, frame.breaks...)
}

// findFrame resolves a break/continue target against the frame stack.
func (b *cfgBuilder) findFrame(label *ast.Ident, needLoop bool) *loopFrame {
	for i := len(b.stack) - 1; i >= 0; i-- {
		f := b.stack[i]
		if needLoop && !f.isLoop {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}

// isPanicCall reports whether e is a direct call to the builtin panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := unwrapFun(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic" && id.Obj == nil
}
