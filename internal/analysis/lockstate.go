package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockstate.go is the shared conservative lock tracker behind lockhold
// and guardedby. It walks a function body in source order and maintains
// the set of sync.Mutex/RWMutex values known to be held at each
// statement, keyed by the printed receiver expression ("m.mu"). Control
// flow is approximated: branches are scanned with a copy of the state and
// merged by intersection (a lock counts as held after an if/switch/select
// only if every surviving path holds it); branches that end in
// return/break/continue don't contribute to the merge. A deferred Unlock
// leaves the mutex held to the end of the function, which is exactly what
// both analyzers want to see. Function literals are scanned as fresh
// functions: a goroutine does not inherit its creator's locks.

// heldLock records one held mutex.
type heldLock struct {
	at     token.Pos // position of the Lock call
	reader bool      // RLock rather than Lock
}

type heldSet map[string]heldLock

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// intersect keeps only locks held in both sets.
func intersect(a, b heldSet) heldSet {
	out := make(heldSet)
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

// lockVisitor observes every scanned statement with the lock state in
// force when the statement begins executing.
type lockVisitor interface {
	// visitStmt sees each leaf statement (and the header of each control
	// statement) together with the current held set. Implementations must
	// inspect only the statement's own expressions — nested blocks and
	// function literals are walked by the engine itself.
	visitStmt(s ast.Stmt, held heldSet)
	// enterFunc/exitFunc bracket the scan of one function (FuncDecl or
	// FuncLit); literals nested in a function are scanned inline, so
	// visitors needing the innermost function must keep a stack.
	enterFunc(node ast.Node)
	exitFunc(node ast.Node)
}

// lockScanner drives the walk for one package.
type lockScanner struct {
	info *types.Info
	v    lockVisitor
}

// scanPackage walks every function declaration in the package.
func (s *lockScanner) scanPackage(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s.scanFunc(fd, fd.Body)
		}
	}
}

func (s *lockScanner) scanFunc(node ast.Node, body *ast.BlockStmt) {
	s.v.enterFunc(node)
	s.scanStmts(body.List, make(heldSet))
	s.v.exitFunc(node)
}

// scanStmts walks stmts updating held in place; it reports whether the
// block definitely terminates (return / break / continue / goto).
func (s *lockScanner) scanStmts(stmts []ast.Stmt, held heldSet) bool {
	for _, stmt := range stmts {
		if s.scanStmt(stmt, held) {
			return true
		}
	}
	return false
}

func (s *lockScanner) scanStmt(stmt ast.Stmt, held heldSet) bool {
	switch st := stmt.(type) {
	case *ast.BlockStmt:
		return s.scanStmts(st.List, held)
	case *ast.LabeledStmt:
		return s.scanStmt(st.Stmt, held)
	case *ast.IfStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, held)
		}
		s.v.visitStmt(st, held)
		s.scanFuncLits(st.Cond)
		thenHeld := held.clone()
		thenTerm := s.scanStmts(st.Body.List, thenHeld)
		elseHeld := held.clone()
		elseTerm := false
		if st.Else != nil {
			elseTerm = s.scanStmt(st.Else, elseHeld)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replace(held, elseHeld)
		case elseTerm:
			replace(held, thenHeld)
		default:
			replace(held, intersect(thenHeld, elseHeld))
		}
		return false
	case *ast.ForStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, held)
		}
		s.v.visitStmt(st, held)
		body := held.clone()
		s.scanStmts(st.Body.List, body)
		if st.Post != nil {
			s.scanStmt(st.Post, body)
		}
		replace(held, intersect(held, body))
		return false
	case *ast.RangeStmt:
		s.v.visitStmt(st, held)
		s.scanFuncLits(st.X)
		body := held.clone()
		s.scanStmts(st.Body.List, body)
		replace(held, intersect(held, body))
		return false
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, held)
		}
		s.v.visitStmt(st, held)
		s.scanCases(st.Body.List, held, false)
		return false
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, held)
		}
		s.v.visitStmt(st, held)
		s.scanCases(st.Body.List, held, false)
		return false
	case *ast.SelectStmt:
		s.v.visitStmt(st, held)
		// A select without default still always runs one branch.
		s.scanCases(st.Body.List, held, true)
		return false
	case *ast.GoStmt:
		s.v.visitStmt(st, held)
		if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
			s.scanFunc(fl, fl.Body)
		}
		for _, arg := range st.Call.Args {
			s.scanFuncLits(arg)
		}
		return false
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to function end; do not
		// clear it. Other defers are visited like calls.
		if _, meth, ok := mutexMethod(s.info, st.Call); !ok || !isUnlockMethod(meth) {
			s.v.visitStmt(st, held)
		}
		if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
			s.scanFunc(fl, fl.Body)
		}
		for _, arg := range st.Call.Args {
			s.scanFuncLits(arg)
		}
		return false
	case *ast.ReturnStmt:
		s.v.visitStmt(st, held)
		for _, r := range st.Results {
			s.scanFuncLits(r)
		}
		return true
	case *ast.BranchStmt:
		return st.Tok == token.BREAK || st.Tok == token.CONTINUE || st.Tok == token.GOTO
	default:
		s.v.visitStmt(stmt, held)
		s.applyTransitions(stmt, held)
		s.scanStmtFuncLits(stmt)
		return false
	}
}

// scanCases merges the branches of a switch/select body into held.
// alwaysRuns says some branch always executes even without a default
// clause (true for select, which blocks until a case fires).
func (s *lockScanner) scanCases(clauses []ast.Stmt, held heldSet, alwaysRuns bool) {
	var merged heldSet
	haveMerged := false
	sawDefault := false
	for _, c := range clauses {
		var comm ast.Stmt
		var body []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			body = cc.Body
			if cc.List == nil {
				sawDefault = true
			}
		case *ast.CommClause:
			body = cc.Body
			comm = cc.Comm
			if comm == nil {
				sawDefault = true
			}
		default:
			continue
		}
		branch := held.clone()
		if comm != nil {
			// The comm op is not visited as a statement: whether it
			// blocks is a property of the whole select (a default clause
			// makes it non-blocking), which visitors judge from the
			// SelectStmt itself. Lock transitions in it still count.
			s.applyTransitions(comm, branch)
		}
		if s.scanStmts(body, branch) {
			continue // terminating branch: no contribution
		}
		if !haveMerged {
			merged = branch
			haveMerged = true
		} else {
			merged = intersect(merged, branch)
		}
	}
	if !haveMerged {
		return // every branch terminated (or no branches): state unchanged
	}
	if !sawDefault && !alwaysRuns {
		// The no-case-taken path keeps the incoming state.
		merged = intersect(merged, held)
	}
	replace(held, merged)
}

// applyTransitions records Lock/Unlock calls appearing in stmt.
func (s *lockScanner) applyTransitions(stmt ast.Stmt, held heldSet) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, meth, ok := mutexMethod(s.info, call)
		if !ok {
			return true
		}
		switch meth {
		case "Lock":
			held[key] = heldLock{at: call.Pos()}
		case "RLock":
			held[key] = heldLock{at: call.Pos(), reader: true}
		case "Unlock", "RUnlock":
			delete(held, key)
		}
		return true
	})
}

// scanStmtFuncLits scans function literals nested anywhere in a leaf
// statement (assignment right-hand sides, call arguments, …) as fresh
// functions.
func (s *lockScanner) scanStmtFuncLits(stmt ast.Stmt) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			s.scanFunc(fl, fl.Body)
			return false
		}
		return true
	})
}

func (s *lockScanner) scanFuncLits(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			s.scanFunc(fl, fl.Body)
			return false
		}
		return true
	})
}

func replace(dst, src heldSet) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// mutexMethod reports whether call is a method call on a sync.Mutex or
// sync.RWMutex value, returning the printed receiver expression and the
// method name.
func mutexMethod(info *types.Info, call *ast.CallExpr) (key, method string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return "", "", false
	}
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, okNamed := t.(*types.Named)
	if !okNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	if obj.Name() != "Mutex" && obj.Name() != "RWMutex" {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

func isUnlockMethod(name string) bool {
	return name == "Unlock" || name == "RUnlock"
}
