package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockstate.go is the shared conservative lock tracker behind lockhold
// and guardedby. It walks a function body in source order and maintains
// the set of sync.Mutex/RWMutex values known to be held at each
// statement, keyed by the printed receiver expression ("m.mu"). Control
// flow is approximated: branches are scanned with a copy of the state and
// merged by intersection (a lock counts as held after an if/switch/select
// only if every surviving path holds it); branches that end in
// return/break/continue don't contribute to the merge. A deferred Unlock
// leaves the mutex held to the end of the function, which is exactly what
// both analyzers want to see. Function literals are scanned as fresh
// functions: a goroutine does not inherit its creator's locks.

// heldLock records one held mutex.
type heldLock struct {
	at     token.Pos // position of the Lock call
	reader bool      // RLock rather than Lock
	canon  string    // canonical program-wide identity ("" for locals)
}

type heldSet map[string]heldLock

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// intersect keeps only locks held in both sets.
func intersect(a, b heldSet) heldSet {
	out := make(heldSet)
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

// lockVisitor observes every scanned statement with the lock state in
// force when the statement begins executing.
type lockVisitor interface {
	// visitStmt sees each leaf statement (and the header of each control
	// statement) together with the current held set. Implementations must
	// inspect only the statement's own expressions — nested blocks and
	// function literals are walked by the engine itself.
	visitStmt(s ast.Stmt, held heldSet)
	// enterFunc/exitFunc bracket the scan of one function (FuncDecl or
	// FuncLit); literals nested in a function are scanned inline, so
	// visitors needing the innermost function must keep a stack.
	enterFunc(node ast.Node)
	exitFunc(node ast.Node)
}

// lockScanner drives the walk for one package.
type lockScanner struct {
	info *types.Info
	v    lockVisitor
	// entry, when set, supplies locks already held when a declared
	// function is entered (e.g. the interprocedural must-held-at-entry
	// set). It is consulted for FuncDecls only; literals inherit held
	// state from their creation site where the language guarantees
	// synchronous execution.
	entry func(node ast.Node) heldSet
}

// scanPackage walks every function declaration in the package.
func (s *lockScanner) scanPackage(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s.scanFunc(fd, fd.Body)
		}
	}
}

func (s *lockScanner) scanFunc(node ast.Node, body *ast.BlockStmt) {
	held := make(heldSet)
	if _, ok := node.(*ast.FuncDecl); ok && s.entry != nil {
		for k, v := range s.entry(node) {
			held[k] = v
		}
	}
	s.scanFuncEntry(node, body, held)
}

// scanFuncEntry scans one function with an explicit entry lock state.
func (s *lockScanner) scanFuncEntry(node ast.Node, body *ast.BlockStmt, held heldSet) {
	s.v.enterFunc(node)
	s.scanStmts(body.List, held)
	s.v.exitFunc(node)
}

// scanStmts walks stmts updating held in place; it reports whether the
// block definitely terminates (return / break / continue / goto).
func (s *lockScanner) scanStmts(stmts []ast.Stmt, held heldSet) bool {
	for _, stmt := range stmts {
		if s.scanStmt(stmt, held) {
			return true
		}
	}
	return false
}

func (s *lockScanner) scanStmt(stmt ast.Stmt, held heldSet) bool {
	switch st := stmt.(type) {
	case *ast.BlockStmt:
		return s.scanStmts(st.List, held)
	case *ast.LabeledStmt:
		return s.scanStmt(st.Stmt, held)
	case *ast.IfStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, held)
		}
		s.v.visitStmt(st, held)
		s.scanNestedLits(st.Cond, held)
		thenHeld := held.clone()
		thenTerm := s.scanStmts(st.Body.List, thenHeld)
		elseHeld := held.clone()
		elseTerm := false
		if st.Else != nil {
			elseTerm = s.scanStmt(st.Else, elseHeld)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replace(held, elseHeld)
		case elseTerm:
			replace(held, thenHeld)
		default:
			replace(held, intersect(thenHeld, elseHeld))
		}
		return false
	case *ast.ForStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, held)
		}
		s.v.visitStmt(st, held)
		body := held.clone()
		s.scanStmts(st.Body.List, body)
		if st.Post != nil {
			s.scanStmt(st.Post, body)
		}
		replace(held, intersect(held, body))
		return false
	case *ast.RangeStmt:
		s.v.visitStmt(st, held)
		s.scanNestedLits(st.X, held)
		body := held.clone()
		s.scanStmts(st.Body.List, body)
		replace(held, intersect(held, body))
		return false
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, held)
		}
		s.v.visitStmt(st, held)
		s.scanCases(st.Body.List, held, false)
		return false
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, held)
		}
		s.v.visitStmt(st, held)
		s.scanCases(st.Body.List, held, false)
		return false
	case *ast.SelectStmt:
		s.v.visitStmt(st, held)
		// A select without default still always runs one branch.
		s.scanCases(st.Body.List, held, true)
		return false
	case *ast.GoStmt:
		s.v.visitStmt(st, held)
		if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
			// A goroutine body runs under its own (empty) lock state.
			s.scanFuncEntry(fl, fl.Body, make(heldSet))
		}
		for _, arg := range st.Call.Args {
			s.scanNestedLits(arg, held)
		}
		return false
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to function end; do not
		// clear it. Other defers are visited like calls.
		if _, meth, ok := mutexMethod(s.info, st.Call); !ok || !isUnlockMethod(meth) {
			s.v.visitStmt(st, held)
		}
		if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
			// The lock state at the deferred run is unknowable here;
			// scan conservatively with an empty held set.
			s.scanFuncEntry(fl, fl.Body, make(heldSet))
		}
		for _, arg := range st.Call.Args {
			s.scanNestedLits(arg, held)
		}
		return false
	case *ast.ReturnStmt:
		s.v.visitStmt(st, held)
		for _, r := range st.Results {
			s.scanNestedLits(r, held)
		}
		return true
	case *ast.BranchStmt:
		return st.Tok == token.BREAK || st.Tok == token.CONTINUE || st.Tok == token.GOTO
	default:
		s.v.visitStmt(stmt, held)
		s.applyTransitions(stmt, held)
		s.scanNestedLits(stmt, held)
		return false
	}
}

// scanCases merges the branches of a switch/select body into held.
// alwaysRuns says some branch always executes even without a default
// clause (true for select, which blocks until a case fires).
func (s *lockScanner) scanCases(clauses []ast.Stmt, held heldSet, alwaysRuns bool) {
	var merged heldSet
	haveMerged := false
	sawDefault := false
	for _, c := range clauses {
		var comm ast.Stmt
		var body []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			body = cc.Body
			if cc.List == nil {
				sawDefault = true
			}
		case *ast.CommClause:
			body = cc.Body
			comm = cc.Comm
			if comm == nil {
				sawDefault = true
			}
		default:
			continue
		}
		branch := held.clone()
		if comm != nil {
			// The comm op is not visited as a statement: whether it
			// blocks is a property of the whole select (a default clause
			// makes it non-blocking), which visitors judge from the
			// SelectStmt itself. Lock transitions in it still count.
			s.applyTransitions(comm, branch)
		}
		if s.scanStmts(body, branch) {
			continue // terminating branch: no contribution
		}
		if !haveMerged {
			merged = branch
			haveMerged = true
		} else {
			merged = intersect(merged, branch)
		}
	}
	if !haveMerged {
		return // every branch terminated (or no branches): state unchanged
	}
	if !sawDefault && !alwaysRuns {
		// The no-case-taken path keeps the incoming state.
		merged = intersect(merged, held)
	}
	replace(held, merged)
}

// applyTransitions records Lock/Unlock calls appearing in stmt.
func (s *lockScanner) applyTransitions(stmt ast.Stmt, held heldSet) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, meth, ok := mutexMethod(s.info, call)
		if !ok {
			return true
		}
		switch meth {
		case "Lock":
			held[key] = heldLock{at: call.Pos(), canon: canonMutexOf(s.info, call)}
		case "RLock":
			held[key] = heldLock{at: call.Pos(), reader: true, canon: canonMutexOf(s.info, call)}
		case "Unlock", "RUnlock":
			delete(held, key)
		}
		return true
	})
}

// scanNestedLits scans function literals nested anywhere under root.
// Literals the language runs synchronously on the spot — immediately
// invoked (`func(){...}()`) or handed to sync.Once.Do — inherit the
// creator's lock state; every other literal (stored, passed as a
// callback, launched as a goroutine elsewhere) is scanned as a fresh
// function with no locks held.
func (s *lockScanner) scanNestedLits(root ast.Node, held heldSet) {
	if root == nil {
		return
	}
	immediate := make(map[*ast.FuncLit]bool)
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fl, ok := n.Fun.(*ast.FuncLit); ok {
				immediate[fl] = true
			}
			if fl := onceDoLit(s.info, n); fl != nil {
				immediate[fl] = true
			}
		case *ast.FuncLit:
			entry := make(heldSet)
			if immediate[n] {
				entry = held.clone()
			}
			s.scanFuncEntry(n, n.Body, entry)
			return false
		}
		return true
	})
}

// onceDoLit returns the literal argument of a sync.Once.Do call, if any.
func onceDoLit(info *types.Info, call *ast.CallExpr) *ast.FuncLit {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Do" || len(call.Args) != 1 {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil
	}
	fl, _ := call.Args[0].(*ast.FuncLit)
	return fl
}

func replace(dst, src heldSet) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// mutexMethod reports whether call is a method call on a sync.Mutex or
// sync.RWMutex value, returning the printed receiver expression and the
// method name.
func mutexMethod(info *types.Info, call *ast.CallExpr) (key, method string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return "", "", false
	}
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, okNamed := t.(*types.Named)
	if !okNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	if obj.Name() != "Mutex" && obj.Name() != "RWMutex" {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

func isUnlockMethod(name string) bool {
	return name == "Unlock" || name == "RUnlock"
}

// canonMutexOf is canonMutex applied to the receiver of a mutex method
// call (the caller must already know call is one, via mutexMethod).
func canonMutexOf(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return canonMutex(info, sel.X)
}

// canonMutex returns a stable program-wide identity for a mutex
// expression: "<pkgpath>.<Type>.<field>" for a mutex field reached
// through a value of a named type, "<pkgpath>.<var>" for a package-level
// mutex variable, and "" when no canonical identity exists (local
// mutexes, fields of anonymous struct types). Two lock sites with the
// same canonical identity may still guard different instances — the
// lock-order analysis therefore never reports self-edges.
func canonMutex(info *types.Info, e ast.Expr) string {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if named := derefNamed(sel.Recv()); named != nil && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + sel.Obj().Name()
			}
			return ""
		}
		// Qualified reference to another package's mutex variable.
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	return ""
}

// derefNamed unwraps one level of pointer and returns the named type
// underneath, or nil.
func derefNamed(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// canonHeldOf projects a held set onto canonical identities, dropping
// locks without one.
func canonHeldOf(held heldSet) map[string]token.Pos {
	if len(held) == 0 {
		return nil
	}
	out := make(map[string]token.Pos, len(held))
	for _, l := range held {
		if l.canon != "" {
			out[l.canon] = l.at
		}
	}
	return out
}
