package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// defaultSleepAllowlist names package-path suffixes where bare time.Sleep
// is part of the package's job rather than a polling smell:
//
//   - transport/inproc simulates link latency and bandwidth by sleeping;
//   - transport/transporttest paces its conformance scenarios;
//   - testnet is the in-process cluster harness for tests;
//   - internal/bench paces benchmark phases and simulated workloads;
//   - internal/fault simulates link bandwidth caps and paces chaos
//     scenario timelines, like inproc.
//
// Everywhere else a sleep in production code is either a polling loop
// (replace with a channel, cond, or timer select that also observes
// shutdown) or needs an explicit //sdvmlint:allow sleepfree directive
// stating why the delay models something real.
var defaultSleepAllowlist = []string{
	"internal/transport/inproc",
	"internal/transport/transporttest",
	"internal/testnet",
	"internal/bench",
	"internal/fault",
}

// sleepfree forbids bare time.Sleep in production packages.
type sleepfree struct {
	allow []string
}

func newSleepfree(allow []string) *sleepfree { return &sleepfree{allow: allow} }

func (a *sleepfree) Name() string { return "sleepfree" }

func (a *sleepfree) Run(prog *Program) []Finding {
	var out []Finding
	for _, pkg := range prog.Pkgs {
		if a.allowedPkg(pkg.Path) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || fn.Name() != "Sleep" {
					return true
				}
				out = append(out, Finding{
					Pos:      prog.Fset.Position(call.Pos()),
					Analyzer: "sleepfree",
					Message: "bare time.Sleep in production code: use a timer select that " +
						"observes shutdown, or annotate //sdvmlint:allow sleepfree -- <why>",
				})
				return true
			})
		}
	}
	return out
}

func (a *sleepfree) allowedPkg(path string) bool {
	for _, suffix := range a.allow {
		if strings.HasSuffix(path, suffix) {
			return true
		}
	}
	return false
}
