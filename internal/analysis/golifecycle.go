package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
)

// golifecycle flags goroutine launches whose body spins in an unbounded
// `for {}` loop that can neither terminate (no return, no break) nor
// observe a shutdown signal (no receive from a channel whose name smells
// like done/stop/quit/ctx). Such a goroutine outlives its owner — the
// classic leak pattern in long-running daemons, and in the SDVM a leaked
// manager loop keeps a signed-off site half-alive.
//
// Loops that exit on a condition (`for cond {}`), loops with a return or
// break, `for range ch` (terminates when the channel closes), and loops
// selecting on a stop channel are all accepted.
type golifecycle struct{}

func newGolifecycle() *golifecycle { return &golifecycle{} }

func (a *golifecycle) Name() string { return "golifecycle" }

var stopChanRe = regexp.MustCompile(`(?i)(done|stop|quit|exit|close|closing|shutdown|ctx|die)`)

func (a *golifecycle) Run(prog *Program) []Finding {
	var out []Finding
	for _, pkg := range prog.Pkgs {
		decls := methodBodies(pkg)
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				body := goBody(pkg, decls, g)
				if body == nil {
					return true
				}
				for _, loop := range unstoppableLoops(pkg.Info, body) {
					out = append(out, Finding{
						Pos:      prog.Fset.Position(g.Pos()),
						Analyzer: "golifecycle",
						Message: fmt.Sprintf("goroutine runs an unbounded for-loop (line %d) "+
							"with no return, break, or stop/done-channel receive",
							prog.Fset.Position(loop.Pos()).Line),
					})
				}
				return true
			})
		}
	}
	return out
}

// methodBodies indexes the package's function declarations by their
// types.Func object so `go m.loop()` can be resolved to a body.
func methodBodies(pkg *Package) map[*types.Func]*ast.FuncDecl {
	m := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				m[fn] = fd
			}
		}
	}
	return m
}

// goBody resolves the body of the function a go statement launches:
// either the literal itself or a same-package declaration.
func goBody(pkg *Package, decls map[*types.Func]*ast.FuncDecl, g *ast.GoStmt) *ast.BlockStmt {
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// unstoppableLoops returns the `for {}` loops in body (not descending
// into nested function literals) that have no exit and no stop-channel
// receive.
func unstoppableLoops(info *types.Info, body *ast.BlockStmt) []*ast.ForStmt {
	var out []*ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if loopCanStop(loop) {
			return true
		}
		out = append(out, loop)
		return true
	})
	return out
}

func loopCanStop(loop *ast.ForStmt) bool {
	stop := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if stop {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			stop = true
		case *ast.BranchStmt:
			if n.Tok.String() == "break" || n.Tok.String() == "goto" {
				stop = true
			}
		case *ast.UnaryExpr:
			// A receive from a stop-ish channel: `<-done`, `<-m.done`,
			// `<-ctx.Done()`, in a select or standalone.
			if n.Op.String() == "<-" && stopChanRe.MatchString(types.ExprString(n.X)) {
				stop = true
			}
		}
		return true
	})
	return stop
}
