package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// JSONSchemaVersion is the current version of the driver's -json output
// format. It is bumped whenever the envelope or a finding field changes
// incompatibly, so downstream tooling can refuse formats it does not
// understand instead of misparsing them.
const JSONSchemaVersion = 1

// JSONReport is the envelope the driver's -json mode emits: a schema
// version plus the findings. Findings is always present (an empty array
// when clean), so consumers can distinguish "clean run" from "truncated
// output".
type JSONReport struct {
	Schema   int           `json:"schema"`
	Findings []JSONFinding `json:"findings"`
}

// JSONFinding is the stable serialized form of one finding, shared by
// the driver's -json output, the committed lint.baseline.json and the
// repo-clean test. File is relative to the module root so baselines are
// machine-independent. Why carries the human justification for a
// baseline entry; it never affects matching.
type JSONFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Why      string `json:"why,omitempty"`
}

// ToJSON converts a finding to its serialized form, relativizing the
// file path against the module root.
func ToJSON(root string, f Finding) JSONFinding {
	file := f.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil {
		file = filepath.ToSlash(rel)
	}
	return JSONFinding{
		File:     file,
		Line:     f.Pos.Line,
		Col:      f.Pos.Column,
		Analyzer: f.Analyzer,
		Message:  f.Message,
	}
}

// ApplyBaseline drops findings recorded in the baseline file (a -json
// dump, optionally annotated with per-entry "why" justifications).
// Matching is on (file, analyzer, message) — deliberately not line:
// edits above a baselined finding move it without changing what it is.
// Each baseline entry suppresses at most as many findings as it was
// recorded with, so a duplicated regression still surfaces.
func ApplyBaseline(findings []Finding, root, path string) ([]Finding, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	base, err := parseBaseline(data)
	if err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	budget := make(map[JSONFinding]int, len(base))
	for _, b := range base {
		b.Line, b.Col, b.Why = 0, 0, ""
		budget[b]++
	}
	var out []Finding
	for _, f := range findings {
		k := ToJSON(root, f)
		k.Line, k.Col = 0, 0
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		out = append(out, f)
	}
	return out, nil
}

// parseBaseline reads a baseline in either format: the versioned
// {"schema": N, "findings": [...]} envelope the driver emits today, or
// the legacy bare findings array from before the schema field existed.
// An envelope with a schema newer than this build understands is an
// error — silently ignoring fields could un-suppress or over-suppress.
func parseBaseline(data []byte) ([]JSONFinding, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var base []JSONFinding
		if err := json.Unmarshal(data, &base); err != nil {
			return nil, err
		}
		return base, nil
	}
	var rep JSONReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, err
	}
	if rep.Schema > JSONSchemaVersion {
		return nil, fmt.Errorf("baseline schema %d is newer than supported version %d", rep.Schema, JSONSchemaVersion)
	}
	return rep.Findings, nil
}
