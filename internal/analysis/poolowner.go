package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// poolowner enforces the pooled-buffer ownership protocol PR 7's wire
// path documents in comments (wire/pool.go) and one regression test —
// machine-checked so the next refactor cannot silently reintroduce a
// pool-aliasing bug. The analyzer has two halves.
//
// # Ownership tracking
//
// A call to wire.GetWriter (any package whose base name is "wire", so
// fixtures model the contract with a mini package) — or to a module
// function summarized as returning ownership — yields an owned cell.
// The analyzer runs a forward path-based dataflow over the per-function
// CFG (cfg.go), tracking each cell through branches, loops and joins:
//
//   - a path that reaches a return (or the end of the function) with
//     the cell still owned leaks a pooled buffer;
//   - Release on a cell already released or consumed is a
//     double-Release (the buffer would be in the pool twice);
//   - any use of a cell after Release/consumption is a use-after-
//     release (the pool may already have handed the storage out);
//   - re-executing an allocation site while its previous cell is still
//     owned (allocating in a loop without releasing) leaks once per
//     iteration.
//
// Ownership transfers interprocedurally through summaries joined at
// call sites, computed as a fixpoint over the module:
//
//   - a function consumes parameter i when every terminating path
//     releases it (directly, via a consuming callee, or by defer) —
//     passing an owned cell there transfers ownership;
//   - a function returns ownership when some return statement returns
//     an owned cell — its callers own the result.
//
// defer x.Release() (directly or trivially wrapped in a literal) marks
// the cell released-at-exit on exactly the paths that execute the
// defer, keeping the check path-sensitive. Storing a cell into a
// field, global, channel, closure or composite literal transfers
// ownership out of the analyzable region: the cell is escaped and
// generates no further reports (netmgr's batch envelopes move between
// methods through a struct field this way; each method's obligations
// are still checked locally). Passing a cell to a callee without a
// consuming summary is a borrow and leaves ownership with the caller —
// a callee that releases only on some paths is therefore reported at
// the callee, not silently trusted.
//
// # View retention
//
// The Send/Recv contracts in transport and msgbus ("must not retain
// the datagram past the call") and wire.Decoder's aliasing results
// ("valid only until the next Decode") are declared with a directive
// in the doc comment:
//
//	//sdvm:borrowed datagram
//	func (m *Manager) Send(site uint32, datagram []byte) error { ... }
//
// naming the parameters the function must not retain. Interface
// methods can carry the directive; every module implementation
// inherits it by parameter position. Inside an annotated function the
// parameter and its derived aliases (plain assignment, slicing,
// append-in-place results) must not be stored to a package variable,
// field or other heap lvalue, sent on a channel, captured by a
// goroutine or returned; passing an alias to a module callee is
// checked against that callee's one-level escape summary (does the
// callee directly store its parameter?). Values obtained from
// (*wire.Decoder).Decode are checked against the same escape rules in
// every function. append(dst, view...) with the view as the copied
// operand and copy(dst, view) are copies, not escapes.
//
// The escape summary is deliberately one level deep: it does not chase
// the parameter through further calls (wire.DecodeBytes materializes
// via NewReader, which a transitive analysis would misreport). The
// documented recipe for deeper checking is to annotate the callee's
// own parameter //sdvm:borrowed, extending the contract one hop.
//
// Suppressing a poolowner finding requires a justification string:
// //sdvm:allow poolowner -- <reason>. A bare allow does not count.
type poolowner struct{}

func newPoolowner() Analyzer { return poolowner{} }

func (poolowner) Name() string { return "poolowner" }

// poCell is one tracked pooled value, keyed by its syntactic source
// site so loop iterations share the cell.
type poCell struct {
	pos   token.Pos
	what  string
	param bool // origin is a parameter: borrowing is legal, leaks are not reported
}

// Cell state bits. A bit set means the condition holds on some path
// reaching the program point (may-analysis over the joined paths).
const (
	poOwned    uint8 = 1 << iota // holds the buffer, Release still due
	poReleased                   // Release already ran
	poConsumed                   // ownership handed to a consuming callee / returned
	poEscaped                    // stored beyond the analyzable region
	poDeferRel                   // a defer releases it when this path returns
)

// poState is the dataflow fact at one CFG point: variable bindings and
// per-cell state.
type poState struct {
	bind  map[types.Object]*poCell
	cells map[*poCell]uint8
}

func newPoState() *poState {
	return &poState{bind: map[types.Object]*poCell{}, cells: map[*poCell]uint8{}}
}

func (s *poState) clone() *poState {
	n := &poState{
		bind:  make(map[types.Object]*poCell, len(s.bind)),
		cells: make(map[*poCell]uint8, len(s.cells)),
	}
	for k, v := range s.bind {
		n.bind[k] = v
	}
	for k, v := range s.cells {
		n.cells[k] = v
	}
	return n
}

// join merges o into s (bit-union states; conflicting bindings drop).
// It reports whether s changed.
func (s *poState) join(o *poState) bool {
	changed := false
	for k, v := range o.bind {
		if cur, ok := s.bind[k]; !ok {
			s.bind[k] = v
			changed = true
		} else if cur != v && cur != nil {
			s.bind[k] = nil // conflict: stop tracking the variable
			changed = true
		}
	}
	for c, bits := range o.cells {
		if s.cells[c]|bits != s.cells[c] {
			s.cells[c] |= bits
			changed = true
		}
	}
	return changed
}

// poSummary is one function's interprocedural ownership contract.
type poSummary struct {
	consumes     []bool // per parameter: every path releases it
	returnsOwner bool   // some return hands back an owned cell
}

// poRun is the per-Run analysis state.
type poRun struct {
	prog      *Program
	eng       *engine
	sums      map[*funcSum]*poSummary
	cfgs      map[*funcSum]*cfg
	cells     map[ast.Node]*poCell // per-allocation-site cells
	borrowed  map[*funcSum][]int   // annotated borrowed parameter indices
	escapes   map[*funcSum][]bool  // one-level per-parameter escape summary
	report    bool
	changed   bool
	findings  []Finding
	seenFinds map[string]bool
}

func (poolowner) Run(prog *Program) []Finding {
	e := prog.engine()
	r := &poRun{
		prog:      prog,
		eng:       e,
		sums:      make(map[*funcSum]*poSummary),
		cfgs:      make(map[*funcSum]*cfg),
		cells:     make(map[ast.Node]*poCell),
		seenFinds: make(map[string]bool),
	}
	// Ownership summaries to a fixpoint (consumes/returnsOwner only
	// grow), then one reporting pass with the final summaries.
	for round := 0; round < 12; round++ {
		r.changed = false
		for _, s := range e.sums {
			r.analyzeOwnership(s)
		}
		if !r.changed {
			break
		}
	}
	r.report = true
	for _, s := range e.sums {
		r.analyzeOwnership(s)
	}
	r.checkViews()
	return r.findings
}

func (r *poRun) addFinding(pos token.Pos, msg string) {
	if !r.report {
		return
	}
	key := fmt.Sprintf("%d:%s", pos, msg)
	if r.seenFinds[key] {
		return
	}
	r.seenFinds[key] = true
	r.findings = append(r.findings, Finding{
		Pos: r.prog.Fset.Position(pos), Analyzer: "poolowner", Message: msg,
	})
}

// cellAt returns the cell for one allocation site, creating it once.
func (r *poRun) cellAt(site ast.Node, what string) *poCell {
	if c := r.cells[site]; c != nil {
		return c
	}
	c := &poCell{pos: site.Pos(), what: what}
	r.cells[site] = c
	return c
}

// hasReleaseMethod reports whether t's method set includes Release().
func hasReleaseMethod(t types.Type) bool {
	if t == nil {
		return false
	}
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == "Release" {
			return true
		}
	}
	return false
}

// isPoolSource reports whether fn is a pooled-buffer constructor: a
// function named GetWriter exported by a package whose base name is
// "wire" (the real internal/wire or a fixture's model of it).
func isPoolSource(fn *types.Func) bool {
	return fn != nil && fn.Name() == "GetWriter" && fn.Pkg() != nil &&
		pkgBase(fn.Pkg().Path()) == "wire"
}

// analyzeOwnership runs the CFG dataflow over one function, updating
// its summary (always) and reporting findings (report mode only).
func (r *poRun) analyzeOwnership(s *funcSum) {
	body := funcBody(s)
	if body == nil {
		return
	}
	c := r.cfgs[s]
	if c == nil {
		c = buildCFG(body)
		r.cfgs[s] = c
	}
	sum := r.sums[s]
	if sum == nil {
		sum = &poSummary{}
		r.sums[s] = sum
	}
	sig := funcSig(s)

	// Entry state: owner-typed parameters get param-origin cells so
	// double-release / use-after-release inside the callee are caught
	// and the consumes summary can be derived.
	entry := newPoState()
	var paramCells []*poCell
	if sig != nil {
		params := sig.Params()
		if len(sum.consumes) != params.Len() {
			sum.consumes = make([]bool, params.Len())
		}
		for i := 0; i < params.Len(); i++ {
			p := params.At(i)
			if !hasReleaseMethod(p.Type()) || p.Name() == "" {
				paramCells = append(paramCells, nil)
				continue
			}
			cell := r.cellAt(paramDeclNode(s, i), "parameter "+p.Name())
			cell.param = true
			paramCells = append(paramCells, cell)
			entry.bind[p] = cell
			entry.cells[cell] = poOwned
		}
	}

	in := make(map[*cfgNode]*poState, len(c.nodes))
	in[c.entry] = entry
	worklist := []*cfgNode{c.entry}
	queued := map[*cfgNode]bool{c.entry: true}
	steps := 0
	maxSteps := len(c.nodes)*64 + 64
	ctx := &poFuncCtx{r: r, s: s, sum: sum}
	for len(worklist) > 0 && steps < maxSteps {
		steps++
		n := worklist[0]
		worklist = worklist[1:]
		queued[n] = false
		out := in[n].clone()
		ctx.reporting = false
		ctx.transfer(n, out)
		for _, succ := range n.succs {
			target := in[succ]
			if target == nil {
				in[succ] = out.clone()
			} else if !target.join(out) {
				continue
			}
			if !queued[succ] {
				queued[succ] = true
				worklist = append(worklist, succ)
			}
		}
	}

	// One more transfer per node against the fixed in-states, now with
	// reporting on, so each diagnostic fires once per program point.
	if r.report {
		for _, n := range c.nodes {
			if st := in[n]; st != nil && n != c.exit {
				ctx.reporting = true
				ctx.transfer(n, st.clone())
			}
		}
	}

	// Exit: leaks per terminating path (each exit predecessor is one),
	// and the consumes summary per parameter.
	consumedEverywhere := make([]bool, len(paramCells))
	for i := range consumedEverywhere {
		consumedEverywhere[i] = paramCells[i] != nil
	}
	sawExit := false
	for _, p := range c.exit.preds {
		st := in[p]
		if st == nil {
			continue
		}
		end := st.clone()
		ctx.reporting = false
		ctx.transfer(p, end)
		sawExit = true
		for cell, bits := range end.cells {
			if bits&poDeferRel != 0 {
				bits &^= poOwned
			}
			if bits&poOwned == 0 || bits&poEscaped != 0 {
				continue
			}
			if cell.param {
				for i, pc := range paramCells {
					if pc == cell {
						consumedEverywhere[i] = false
					}
				}
				continue
			}
			where := "end of function"
			if ret, ok := p.node.(*ast.ReturnStmt); ok {
				where = fmt.Sprintf("return at line %d", r.prog.Fset.Position(ret.Pos()).Line)
			}
			r.addFinding(cell.pos, fmt.Sprintf(
				"pooled buffer may leak: %s in %s reaches %s still owned, without Release",
				cell.what, s.name, where))
		}
		// A parameter that escaped or was never released on this path is
		// not consumed.
		for i, pc := range paramCells {
			if pc == nil || !consumedEverywhere[i] {
				continue
			}
			bits := end.cells[pc]
			if bits&poDeferRel != 0 {
				bits &^= poOwned
			}
			if bits&poOwned != 0 || bits&poEscaped != 0 || bits&(poReleased|poConsumed|poDeferRel) == 0 {
				consumedEverywhere[i] = false
			}
		}
	}
	if sawExit {
		for i, ok := range consumedEverywhere {
			if ok && !sum.consumes[i] {
				sum.consumes[i] = true
				r.changed = true
			}
		}
	}
}

// paramDeclNode returns a stable AST node identifying parameter i of s,
// for cell keying.
func paramDeclNode(s *funcSum, i int) ast.Node {
	if s.decl != nil && s.decl.Type.Params != nil {
		idx := 0
		for _, f := range s.decl.Type.Params.List {
			names := len(f.Names)
			if names == 0 {
				names = 1
			}
			if i < idx+names {
				if len(f.Names) > 0 {
					return f.Names[i-idx]
				}
				return f
			}
			idx += names
		}
	}
	if s.lit != nil {
		return s.lit
	}
	return s.decl
}

// poFuncCtx carries the per-function context through transfer calls.
type poFuncCtx struct {
	r         *poRun
	s         *funcSum
	sum       *poSummary
	reporting bool
}

func (c *poFuncCtx) finding(pos token.Pos, msg string) {
	if c.reporting {
		c.r.addFinding(pos, msg)
	}
}

// transfer applies one CFG node's effect to st in place.
func (c *poFuncCtx) transfer(n *cfgNode, st *poState) {
	switch nd := n.node.(type) {
	case nil:
		// entry/exit
	case *ast.AssignStmt:
		c.assign(nd, st)
	case *ast.DeclStmt:
		if gd, ok := nd.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var cell *poCell
					if i < len(vs.Values) {
						cell = c.eval(vs.Values[i], st)
					}
					c.bindIdent(name, cell, st)
				}
			}
		}
	case *ast.ExprStmt:
		c.eval(nd.X, st)
	case *ast.DeferStmt:
		c.deferCall(nd.Call, st)
	case *ast.GoStmt:
		// The goroutine may outlive every path: its cell arguments and
		// captures escape.
		for _, arg := range nd.Call.Args {
			if cell := c.eval(arg, st); cell != nil {
				st.cells[cell] |= poEscaped
				st.cells[cell] &^= poOwned
			}
		}
		if fl, ok := unwrapFun(nd.Call.Fun).(*ast.FuncLit); ok {
			c.escapeCaptures(fl, st)
		}
	case *ast.SendStmt:
		c.eval(nd.Chan, st)
		if cell := c.eval(nd.Value, st); cell != nil {
			st.cells[cell] |= poEscaped
			st.cells[cell] &^= poOwned
		}
	case *ast.ReturnStmt:
		for _, res := range nd.Results {
			cell := c.eval(res, st)
			if cell == nil {
				continue
			}
			if st.cells[cell]&poOwned != 0 {
				if !c.sum.returnsOwner {
					c.sum.returnsOwner = true
					c.r.changed = true
				}
			}
			st.cells[cell] |= poConsumed
			st.cells[cell] &^= poOwned
		}
	case *ast.IncDecStmt:
		c.eval(nd.X, st)
	case *ast.RangeStmt:
		c.eval(nd.X, st)
	case *ast.CaseClause:
		for _, e := range nd.List {
			c.eval(e, st)
		}
	case ast.Expr:
		c.eval(nd, st)
	}
}

// assign processes bindings, allocations and lvalue escapes of one
// assignment statement.
func (c *poFuncCtx) assign(a *ast.AssignStmt, st *poState) {
	// Multi-value from a single call: w, err := startEnvelope(...).
	if len(a.Rhs) == 1 && len(a.Lhs) > 1 {
		cell := c.eval(a.Rhs[0], st)
		for _, lhs := range a.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if cell != nil && hasReleaseMethod(c.s.pkg.Info.TypeOf(id)) {
					c.bindIdent(id, cell, st)
					cell = nil
				}
				continue
			}
			c.lvalueStore(lhs, cell, st)
			cell = nil
		}
		return
	}
	if len(a.Lhs) != len(a.Rhs) {
		for _, rhs := range a.Rhs {
			c.eval(rhs, st)
		}
		return
	}
	for i, lhs := range a.Lhs {
		cell := c.eval(a.Rhs[i], st)
		if id, ok := lhs.(*ast.Ident); ok {
			c.bindIdent(id, cell, st)
			continue
		}
		c.lvalueStore(lhs, cell, st)
	}
}

// bindIdent rebinds id. Binding to a package-level variable escapes the
// cell (anyone can reach it later).
func (c *poFuncCtx) bindIdent(id *ast.Ident, cell *poCell, st *poState) {
	if id.Name == "_" {
		if cell != nil && st.cells[cell]&poOwned != 0 {
			c.finding(id.Pos(), fmt.Sprintf(
				"owned %s discarded into _ without Release", cell.what))
			// The discard is the finding; don't also report the
			// inevitable leak at exit.
			st.cells[cell] |= poEscaped
			st.cells[cell] &^= poOwned
		}
		return
	}
	obj := c.objOf(id)
	if obj == nil {
		return
	}
	if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		if cell != nil {
			st.cells[cell] |= poEscaped
			st.cells[cell] &^= poOwned
		}
		return
	}
	if cell != nil {
		st.bind[obj] = cell
	} else {
		delete(st.bind, obj) // rebound to an untracked value
	}
}

// lvalueStore handles `x.f = cell`, `m[k] = cell` etc: the cell escapes
// the function's analyzable region.
func (c *poFuncCtx) lvalueStore(lhs ast.Expr, cell *poCell, st *poState) {
	c.evalChildren(lhs, st)
	if cell != nil {
		st.cells[cell] |= poEscaped
		st.cells[cell] &^= poOwned
	}
}

func (c *poFuncCtx) objOf(id *ast.Ident) types.Object {
	info := c.s.pkg.Info
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// eval walks one expression: it records uses (flagging use-after-
// release), classifies calls, and returns the cell the expression
// evaluates to, if any.
func (c *poFuncCtx) eval(e ast.Expr, st *poState) *poCell {
	switch x := e.(type) {
	case nil:
		return nil
	case *ast.ParenExpr:
		return c.eval(x.X, st)
	case *ast.Ident:
		obj := c.objOf(x)
		if obj == nil {
			return nil
		}
		cell := st.bind[obj]
		if cell != nil {
			c.checkUse(x.Pos(), cell, st)
		}
		return cell
	case *ast.CallExpr:
		return c.evalCall(x, st)
	case *ast.FuncLit:
		c.escapeCaptures(x, st)
		return nil
	case *ast.UnaryExpr:
		c.eval(x.X, st)
		return nil
	case *ast.StarExpr:
		c.eval(x.X, st)
		return nil
	case *ast.BinaryExpr:
		c.eval(x.X, st)
		c.eval(x.Y, st)
		return nil
	case *ast.SelectorExpr:
		c.eval(x.X, st)
		return nil
	case *ast.IndexExpr:
		c.eval(x.X, st)
		c.eval(x.Index, st)
		return nil
	case *ast.SliceExpr:
		c.eval(x.X, st)
		c.eval(x.Low, st)
		c.eval(x.High, st)
		c.eval(x.Max, st)
		return nil
	case *ast.TypeAssertExpr:
		c.eval(x.X, st)
		return nil
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if cell := c.eval(v, st); cell != nil {
				st.cells[cell] |= poEscaped
				st.cells[cell] &^= poOwned
			}
		}
		return nil
	case *ast.KeyValueExpr:
		c.eval(x.Value, st)
		return nil
	default:
		c.evalChildren(e, st)
		return nil
	}
}

// evalChildren is the generic fallback: visit nested expressions
// without classifying e itself.
func (c *poFuncCtx) evalChildren(e ast.Expr, st *poState) {
	ast.Inspect(e, func(n ast.Node) bool {
		if n == e {
			return true
		}
		if sub, ok := n.(ast.Expr); ok {
			c.eval(sub, st)
			return false
		}
		return true
	})
}

// escapeCaptures marks cells referenced inside a function literal as
// escaped: the literal may run at any later time.
func (c *poFuncCtx) escapeCaptures(fl *ast.FuncLit, st *poState) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.objOf(id); obj != nil {
				if cell := st.bind[obj]; cell != nil {
					st.cells[cell] |= poEscaped
					st.cells[cell] &^= poOwned
				}
			}
		}
		return true
	})
}

// checkUse flags a read of a cell whose Release (or consumption) may
// already have run on some path.
func (c *poFuncCtx) checkUse(pos token.Pos, cell *poCell, st *poState) {
	bits := st.cells[cell]
	if bits&poEscaped != 0 {
		return
	}
	if bits&poReleased != 0 {
		c.finding(pos, fmt.Sprintf(
			"%s used after Release: the pool may already have recycled its storage", cell.what))
	} else if bits&poConsumed != 0 {
		c.finding(pos, fmt.Sprintf(
			"%s used after ownership was transferred", cell.what))
	}
}

// evalCall classifies one call site: Release, pooled-buffer source,
// consuming callee, or plain borrow.
func (c *poFuncCtx) evalCall(call *ast.CallExpr, st *poState) *poCell {
	info := c.s.pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		for _, a := range call.Args {
			c.eval(a, st)
		}
		return nil // conversion
	}
	// x.Release() on a tracked cell.
	if sel, ok := unwrapFun(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" && len(call.Args) == 0 {
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj := c.objOf(id); obj != nil {
				if cell := st.bind[obj]; cell != nil {
					c.release(call.Pos(), cell, st)
					return nil
				}
			}
		}
	}
	callee := calleeFunc(info, call)
	// Pooled-buffer sources: wire.GetWriter, or a module function whose
	// summary says it returns ownership.
	if isPoolSource(callee) {
		for _, a := range call.Args {
			c.eval(a, st)
		}
		return c.alloc(call, "pooled writer from "+displayName(callee), st)
	}
	var calleeSum *poSummary
	if callee != nil {
		if fs := c.r.eng.byObj[callee]; fs != nil {
			calleeSum = c.r.sums[fs]
		}
	}
	if calleeSum != nil && calleeSum.returnsOwner {
		for _, a := range call.Args {
			c.eval(a, st)
		}
		return c.alloc(call, "owned writer from "+displayName(callee), st)
	}
	// Regular call: the receiver is a use; arguments may be consumed
	// or borrowed.
	if sel, ok := unwrapFun(call.Fun).(*ast.SelectorExpr); ok {
		c.eval(sel.X, st)
	}
	for i, arg := range call.Args {
		cell := c.eval(arg, st)
		if cell == nil {
			continue
		}
		if calleeSum != nil && i < len(calleeSum.consumes) && calleeSum.consumes[i] && !call.Ellipsis.IsValid() {
			st.cells[cell] |= poConsumed
			st.cells[cell] &^= poOwned
		}
	}
	return nil
}

// alloc materializes the cell for one allocation site. If the site's
// previous value is still owned (a loop re-executing the site), that
// value leaks.
func (c *poFuncCtx) alloc(site *ast.CallExpr, what string, st *poState) *poCell {
	cell := c.r.cellAt(site, what)
	if st.cells[cell]&poOwned != 0 {
		c.finding(site.Pos(), fmt.Sprintf(
			"%s may leak: the allocation site executes again (loop) while the previous buffer is still owned", what))
	}
	st.cells[cell] = poOwned // fresh value: strong update
	return cell
}

// release applies x.Release() to a cell.
func (c *poFuncCtx) release(pos token.Pos, cell *poCell, st *poState) {
	bits := st.cells[cell]
	if bits&poEscaped != 0 {
		return
	}
	if bits&(poReleased|poConsumed) != 0 {
		c.finding(pos, fmt.Sprintf(
			"double Release of %s: a path reaching this call already released or transferred it", cell.what))
	}
	st.cells[cell] |= poReleased
	st.cells[cell] &^= poOwned
}

// deferCall handles defer statements: defer x.Release() (directly or
// trivially wrapped) marks the cell released-at-exit on this path;
// deferring a consuming callee does the same; any other literal
// escapes its captures.
func (c *poFuncCtx) deferCall(call *ast.CallExpr, st *poState) {
	info := c.s.pkg.Info
	if sel, ok := unwrapFun(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" && len(call.Args) == 0 {
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj := c.objOf(id); obj != nil {
				if cell := st.bind[obj]; cell != nil {
					if st.cells[cell]&(poReleased|poConsumed) != 0 {
						c.finding(call.Pos(), fmt.Sprintf(
							"double Release of %s: deferred Release runs after it was already released or transferred", cell.what))
					}
					st.cells[cell] |= poDeferRel
					return
				}
			}
		}
	}
	if fl, ok := unwrapFun(call.Fun).(*ast.FuncLit); ok {
		// defer func() { x.Release() }() — the trivial wrapper.
		if len(fl.Body.List) == 1 {
			if es, ok := fl.Body.List[0].(*ast.ExprStmt); ok {
				if inner, ok := es.X.(*ast.CallExpr); ok {
					if sel, ok := unwrapFun(inner.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" && len(inner.Args) == 0 {
						if id, ok := sel.X.(*ast.Ident); ok {
							if obj := c.objOf(id); obj != nil {
								if cell := st.bind[obj]; cell != nil {
									st.cells[cell] |= poDeferRel
									return
								}
							}
						}
					}
				}
			}
		}
		c.escapeCaptures(fl, st)
		return
	}
	// Deferred call to a consuming callee: released at exit.
	callee := calleeFunc(info, call)
	var calleeSum *poSummary
	if callee != nil {
		if fs := c.r.eng.byObj[callee]; fs != nil {
			calleeSum = c.r.sums[fs]
		}
	}
	for i, arg := range call.Args {
		cell := c.eval(arg, st)
		if cell == nil {
			continue
		}
		if calleeSum != nil && i < len(calleeSum.consumes) && calleeSum.consumes[i] && !call.Ellipsis.IsValid() {
			st.cells[cell] |= poDeferRel
		}
	}
}

// calleeFunc resolves the called *types.Func of a direct or method
// call, nil for builtins, literals and dynamic calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := unwrapFun(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fn].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fn.Sel].(*types.Func)
		return f
	}
	return nil
}

// ---------------------------------------------------------------------
// View retention: //sdvm:borrowed contracts and decoder views.

const borrowedDirective = "//sdvm:borrowed"

// borrowedParamsOf parses the directive in a doc comment against a
// field list, returning the named parameter indices.
func borrowedParamsOf(doc *ast.CommentGroup, params *ast.FieldList) []int {
	if doc == nil || params == nil {
		return nil
	}
	var names []string
	for _, cm := range doc.List {
		if rest, ok := strings.CutPrefix(cm.Text, borrowedDirective); ok {
			for _, n := range strings.FieldsFunc(rest, func(r rune) bool {
				return r == ',' || r == ' ' || r == '\t'
			}) {
				names = append(names, n)
			}
		}
	}
	if len(names) == 0 {
		return nil
	}
	var idx []int
	i := 0
	for _, f := range params.List {
		if len(f.Names) == 0 {
			i++
			continue
		}
		for _, nm := range f.Names {
			for _, want := range names {
				if nm.Name == want {
					idx = append(idx, i)
				}
			}
			i++
		}
	}
	return idx
}

// checkViews runs the view-retention half: collect annotated functions
// (declared directly or inherited from interface methods), compute
// one-level escape summaries, then verify every annotated function and
// every decoder-view user.
func (r *poRun) checkViews() {
	borrowed := make(map[*funcSum][]int)
	// Directly annotated declarations.
	for _, s := range r.eng.sums {
		if s.decl == nil {
			continue
		}
		if idx := borrowedParamsOf(s.decl.Doc, s.decl.Type.Params); idx != nil {
			borrowed[s] = idx
		}
	}
	// Interface methods with the directive: every module implementation
	// inherits the contract by parameter position.
	type ifaceAnn struct {
		m   *types.Func
		idx []int
	}
	var anns []ifaceAnn
	for _, pkg := range r.prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				it, ok := n.(*ast.InterfaceType)
				if !ok {
					return true
				}
				for _, f := range it.Methods.List {
					if len(f.Names) == 0 {
						continue
					}
					ft, ok := f.Type.(*ast.FuncType)
					if !ok {
						continue
					}
					idx := borrowedParamsOf(f.Doc, ft.Params)
					if idx == nil {
						continue
					}
					if fn, ok := pkg.Info.Defs[f.Names[0]].(*types.Func); ok {
						anns = append(anns, ifaceAnn{fn, idx})
					}
				}
				return true
			})
		}
	}
	if len(anns) > 0 {
		var concrete []*types.Named
		for _, pkg := range r.prog.Pkgs {
			scope := pkg.Pkg.Scope()
			for _, name := range scope.Names() {
				tn, ok := scope.Lookup(name).(*types.TypeName)
				if !ok || tn.IsAlias() {
					continue
				}
				n, ok := tn.Type().(*types.Named)
				if !ok || types.IsInterface(n) {
					continue
				}
				concrete = append(concrete, n)
			}
		}
		for _, ann := range anns {
			for _, impl := range r.eng.implementersOf(ann.m, concrete) {
				if _, done := borrowed[impl]; !done {
					borrowed[impl] = ann.idx
				}
			}
		}
	}
	r.borrowed = borrowed

	// One-level escape summaries for every module function.
	r.escapes = make(map[*funcSum][]bool)
	for _, s := range r.eng.sums {
		r.escapes[s] = r.escapeSummary(s)
	}

	for s, idx := range borrowed {
		r.checkBorrowedFunc(s, idx)
	}
	for _, s := range r.eng.sums {
		r.checkDecoderViews(s)
	}
}

// escapeSummary computes, per parameter, whether the body directly
// stores the parameter (or a slice of it) into a heap location, sends
// it on a channel, hands it to a goroutine, embeds it in a composite
// literal, or returns it. Deliberately one level: calls are not chased.
func (r *poRun) escapeSummary(s *funcSum) []bool {
	sig := funcSig(s)
	body := funcBody(s)
	if sig == nil || body == nil || sig.Params().Len() == 0 {
		return nil
	}
	out := make([]bool, sig.Params().Len())
	paramOf := make(map[types.Object]int)
	for i := 0; i < sig.Params().Len(); i++ {
		paramOf[sig.Params().At(i)] = i
	}
	info := s.pkg.Info
	isParam := func(e ast.Expr) (int, bool) {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.Ident:
				if obj := info.Uses[x]; obj != nil {
					if i, ok := paramOf[obj]; ok {
						return i, true
					}
				}
				return 0, false
			default:
				return 0, false
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch nd := n.(type) {
		case *ast.FuncLit:
			// A literal capturing the parameter may outlive the call.
			ast.Inspect(nd.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if i, ok := isParam(id); ok {
						out[i] = true
					}
				}
				return true
			})
			return false
		case *ast.AssignStmt:
			for i, lhs := range nd.Lhs {
				if i >= len(nd.Rhs) {
					break
				}
				pi, ok := isParam(nd.Rhs[i])
				if !ok {
					continue
				}
				if heapLvalue(info, lhs) {
					out[pi] = true
				}
			}
		case *ast.SendStmt:
			if i, ok := isParam(nd.Value); ok {
				out[i] = true
			}
		case *ast.GoStmt:
			for _, a := range nd.Call.Args {
				if i, ok := isParam(a); ok {
					out[i] = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range nd.Results {
				if i, ok := isParam(res); ok {
					out[i] = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range nd.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if i, ok := isParam(v); ok {
					out[i] = true
				}
			}
		}
		return true
	})
	return out
}

// heapLvalue reports whether assigning to lhs stores beyond the current
// function's locals: a package-level variable, any field or index
// expression, or a pointer dereference.
func heapLvalue(info *types.Info, lhs ast.Expr) bool {
	switch x := lhs.(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true
		}
		return false
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return heapLvalue(info, x.X)
	}
	return false
}

// viewTracker follows one function's borrowed values (annotated
// parameters, decoder views) through local aliasing and reports
// retention.
type viewTracker struct {
	r     *poRun
	s     *funcSum
	views map[types.Object]string // alias -> description of the borrowed origin
}

func (t *viewTracker) isView(e ast.Expr) (string, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			obj := t.s.pkg.Info.Uses[x]
			if obj == nil {
				obj = t.s.pkg.Info.Defs[x]
			}
			if d, ok := t.views[obj]; ok {
				return d, true
			}
			return "", false
		default:
			return "", false
		}
	}
}

func (t *viewTracker) report(pos token.Pos, desc, how string) {
	t.r.addFinding(pos, fmt.Sprintf("%s %s in %s: the underlying buffer is only valid during the call (retention contract)", desc, how, t.s.name))
}

// scan walks the body once in source order, growing the alias set and
// reporting escapes. Alias tracking is flow-insensitive within the
// function (source order approximates it), which is precise enough for
// the straight-line handler code the contracts cover.
func (t *viewTracker) scan() {
	body := funcBody(t.s)
	if body == nil {
		return
	}
	info := t.s.pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch nd := n.(type) {
		case *ast.FuncLit:
			ast.Inspect(nd.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if d, ok := t.isView(id); ok {
						t.report(id.Pos(), d, "captured by a function literal")
					}
				}
				return true
			})
			return false
		case *ast.GoStmt:
			for _, a := range nd.Call.Args {
				if d, ok := t.isView(a); ok {
					t.report(a.Pos(), d, "handed to a goroutine")
				}
			}
		case *ast.SendStmt:
			if d, ok := t.isView(nd.Value); ok {
				t.report(nd.Value.Pos(), d, "sent on a channel")
			}
		case *ast.ReturnStmt:
			for _, res := range nd.Results {
				if d, ok := t.isView(res); ok {
					t.report(res.Pos(), d, "returned")
				}
			}
		case *ast.CompositeLit:
			for _, el := range nd.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if d, ok := t.isView(v); ok {
					t.report(v.Pos(), d, "stored in a composite literal")
				}
			}
		case *ast.AssignStmt:
			t.assign(nd)
		case *ast.DeclStmt:
			if gd, ok := nd.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for i, name := range vs.Names {
							if i >= len(vs.Values) {
								break
							}
							if d, ok := t.isView(vs.Values[i]); ok {
								if obj := info.Defs[name]; obj != nil {
									t.views[obj] = d
								}
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			t.call(nd)
		}
		return true
	})
}

func (t *viewTracker) assign(a *ast.AssignStmt) {
	info := t.s.pkg.Info
	if len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i, lhs := range a.Lhs {
		rhs := a.Rhs[i]
		d, isV := t.isView(rhs)
		if !isV {
			// append(x, view...) copies; append(view, ...) derives.
			if call, ok := rhs.(*ast.CallExpr); ok {
				if id, ok := unwrapFun(call.Fun).(*ast.Ident); ok {
					if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
						if ad, ok := t.isView(call.Args[0]); ok {
							d, isV = ad, true
						}
					}
				}
			}
		}
		if !isV {
			continue
		}
		if id, ok := lhs.(*ast.Ident); ok && !heapLvalue(info, id) {
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != nil {
				t.views[obj] = d
			}
			continue
		}
		if heapLvalue(info, lhs) {
			t.report(rhs.Pos(), d, "stored to a heap location")
		}
	}
}

// call checks view arguments against the callee's one-level escape
// summary and seeds decoder views from (*wire.Decoder).Decode results.
func (t *viewTracker) call(call *ast.CallExpr) {
	info := t.s.pkg.Info
	callee := calleeFunc(info, call)
	if callee == nil {
		return
	}
	// Builtins append/copy/len/cap never retain; append is handled at
	// the assignment.
	fs := t.r.eng.byObj[callee]
	if fs == nil {
		return // outside the module: assumed non-retaining (documented optimism)
	}
	esc := t.r.escapes[fs]
	for i, arg := range call.Args {
		d, ok := t.isView(arg)
		if !ok {
			continue
		}
		if i < len(esc) && esc[i] && !call.Ellipsis.IsValid() {
			t.report(arg.Pos(), d, fmt.Sprintf("passed to %s, which stores its parameter", displayName(callee)))
		}
	}
}

// checkBorrowedFunc verifies one annotated function.
func (r *poRun) checkBorrowedFunc(s *funcSum, idx []int) {
	sig := funcSig(s)
	if sig == nil {
		return
	}
	t := &viewTracker{r: r, s: s, views: map[types.Object]string{}}
	for _, i := range idx {
		if i < sig.Params().Len() {
			p := sig.Params().At(i)
			t.views[p] = "borrowed parameter " + p.Name()
		}
	}
	if len(t.views) > 0 {
		t.scan()
	}
}

// checkDecoderViews verifies decoder-result lifetimes in one function:
// values from (*wire.Decoder).Decode alias the input buffer and must
// not outlive the call frame.
func (r *poRun) checkDecoderViews(s *funcSum) {
	body := funcBody(s)
	if body == nil {
		return
	}
	info := s.pkg.Info
	t := &viewTracker{r: r, s: s, views: map[types.Object]string{}}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		a, ok := n.(*ast.AssignStmt)
		if !ok || len(a.Rhs) != 1 {
			return true
		}
		call, ok := a.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(info, call)
		if callee == nil || callee.Name() != "Decode" || callee.Pkg() == nil || pkgBase(callee.Pkg().Path()) != "wire" {
			return true
		}
		sig, ok := callee.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return true
		}
		named := derefNamed(sig.Recv().Type())
		if named == nil || named.Obj().Name() != "Decoder" {
			return true
		}
		if id, ok := a.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != nil {
				t.views[obj] = "decoder view"
			}
		}
		return true
	})
	if len(t.views) > 0 {
		t.scan()
	}
}
