package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// guardedby enforces `// guarded by <mu>` field annotations: a struct
// field so annotated may only be read or written while the named mutex
// (on the same receiver) is held in the accessing function. Two escape
// hatches reflect the repository's conventions:
//
//   - functions whose name ends in "Locked" document that the caller
//     holds the lock and are exempt;
//   - accesses through a variable declared in the same function (a
//     freshly constructed value that has not escaped yet, e.g. inside a
//     New constructor) are exempt.
//
// The analysis is intraprocedural and conservative: the lock must be
// provably held on every path reaching the access.
type guardedby struct{}

func newGuardedby() *guardedby { return &guardedby{} }

func (a *guardedby) Name() string { return "guardedby" }

var guardedRe = regexp.MustCompile(`guarded by\s+([A-Za-z_][A-Za-z0-9_]*)`)

func (a *guardedby) Run(prog *Program) []Finding {
	var out []Finding
	for _, pkg := range prog.Pkgs {
		fields := annotatedFields(pkg)
		if len(fields) == 0 {
			continue
		}
		v := &guardedbyVisitor{prog: prog, pkg: pkg, fields: fields, out: &out}
		s := &lockScanner{info: pkg.Info, v: v}
		s.scanPackage(pkg)
	}
	return out
}

// annotatedFields maps each annotated field object to its mutex name.
func annotatedFields(pkg *Package) map[*types.Var]string {
	fields := make(map[*types.Var]string)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				mu := annotationOf(f)
				if mu == "" {
					continue
				}
				for _, name := range f.Names {
					if obj, ok := pkg.Info.Defs[name].(*types.Var); ok {
						fields[obj] = mu
					}
				}
			}
			return true
		})
	}
	return fields
}

func annotationOf(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

type guardedbyVisitor struct {
	prog   *Program
	pkg    *Package
	fields map[*types.Var]string
	out    *[]Finding

	// stack of nested functions being scanned; the innermost is last.
	stack []guardedbyFrame
}

type guardedbyFrame struct {
	body   *ast.BlockStmt
	exempt bool
}

func (v *guardedbyVisitor) enterFunc(node ast.Node) {
	frame := guardedbyFrame{}
	switch n := node.(type) {
	case *ast.FuncDecl:
		frame.body = n.Body
		frame.exempt = strings.HasSuffix(n.Name.Name, "Locked")
	case *ast.FuncLit:
		frame.body = n.Body
	}
	v.stack = append(v.stack, frame)
}

func (v *guardedbyVisitor) exitFunc(ast.Node) {
	v.stack = v.stack[:len(v.stack)-1]
}

func (v *guardedbyVisitor) frame() guardedbyFrame {
	return v.stack[len(v.stack)-1]
}

func (v *guardedbyVisitor) visitStmt(s ast.Stmt, held heldSet) {
	if len(v.stack) == 0 || v.frame().exempt {
		return
	}
	for _, e := range shallowExprs(s) {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			v.checkAccess(sel, held)
			return true
		})
	}
}

func (v *guardedbyVisitor) checkAccess(sel *ast.SelectorExpr, held heldSet) {
	selection := v.pkg.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	mu, annotated := v.fields[field]
	if !annotated {
		return
	}
	// Freshly constructed value: base variable declared in this function's
	// body. The range check deliberately uses the body, not the whole
	// declaration — a method receiver or parameter is NOT exempt.
	if base, ok := sel.X.(*ast.Ident); ok {
		body := v.frame().body
		if obj := v.pkg.Info.ObjectOf(base); obj != nil && body != nil &&
			obj.Pos() >= body.Pos() && obj.Pos() <= body.End() {
			return
		}
	}
	key := types.ExprString(sel.X) + "." + mu
	if _, ok := held[key]; ok {
		return
	}
	*v.out = append(*v.out, Finding{
		Pos:      v.prog.Fset.Position(sel.Pos()),
		Analyzer: "guardedby",
		Message: fmt.Sprintf("field %s.%s (guarded by %s) accessed without holding %s",
			types.ExprString(sel.X), sel.Sel.Name, mu, key),
	})
}
