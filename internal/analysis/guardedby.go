package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// guardedby enforces `// guarded by <mu>` field annotations: a struct
// field so annotated may only be read or written while the named mutex
// (on the same receiver) is held in the accessing function. Two escape
// hatches reflect the repository's conventions:
//
//   - functions whose name ends in "Locked" document that the caller
//     holds the lock and are exempt;
//   - accesses through a variable declared in the same function (a
//     freshly constructed value that has not escaped yet, e.g. inside a
//     New constructor) are exempt.
//
// The lock must be provably held on every path reaching the access.
// "Held" is interprocedural: a helper whose every visible call site
// holds the mutex inherits it (the engine's must-held-at-entry set), so
// unexported helpers no longer need the Locked suffix to pass. Exported
// functions and functions used as values inherit nothing — their
// callers are not all visible.
//
// A guarded field whose value is a pointer, slice, map, channel or
// function must not be returned directly: the caller would retain
// shared mutable state past the unlock. Functions with the Locked
// suffix are exempt (their contract already delegates locking to the
// caller).
type guardedby struct{}

func newGuardedby() *guardedby { return &guardedby{} }

func (a *guardedby) Name() string { return "guardedby" }

var guardedRe = regexp.MustCompile(`guarded by\s+([A-Za-z_][A-Za-z0-9_]*)`)

func (a *guardedby) Run(prog *Program) []Finding {
	var out []Finding
	for _, pkg := range prog.Pkgs {
		fields := annotatedFields(pkg)
		if len(fields) == 0 {
			continue
		}
		v := &guardedbyVisitor{prog: prog, pkg: pkg, eng: prog.engine(), fields: fields, out: &out}
		s := &lockScanner{info: pkg.Info, v: v, entry: v.entryHeld}
		s.scanPackage(pkg)
	}
	return out
}

// annotatedFields maps each annotated field object to its mutex name.
func annotatedFields(pkg *Package) map[*types.Var]string {
	fields := make(map[*types.Var]string)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				mu := annotationOf(f)
				if mu == "" {
					continue
				}
				for _, name := range f.Names {
					if obj, ok := pkg.Info.Defs[name].(*types.Var); ok {
						fields[obj] = mu
					}
				}
			}
			return true
		})
	}
	return fields
}

func annotationOf(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

type guardedbyVisitor struct {
	prog   *Program
	pkg    *Package
	eng    *engine
	fields map[*types.Var]string
	out    *[]Finding

	// stack of nested functions being scanned; the innermost is last.
	stack []guardedbyFrame
}

// entryHeld seeds the scanner with the locks the interprocedural engine
// proves held at every visible call site of a declared function,
// rendered back into the printed-receiver keys the scanner tracks
// ("m.mu" for the canonical pkg.Type.mu when the receiver is named m).
// Locks the engine knows by a foreign type, or that cannot be printed
// in this function's terms, are dropped — conservative in the right
// direction.
func (v *guardedbyVisitor) entryHeld(node ast.Node) heldSet {
	fd, ok := node.(*ast.FuncDecl)
	if !ok {
		return nil
	}
	fn, _ := v.pkg.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return nil
	}
	sum := v.eng.byObj[fn]
	if sum == nil || len(sum.mustEntry) == 0 {
		return nil
	}
	var recvName, typePrefix string
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if named := derefNamed(sig.Recv().Type()); named != nil && named.Obj().Pkg() != nil {
				recvName = fd.Recv.List[0].Names[0].Name
				typePrefix = named.Obj().Pkg().Path() + "." + named.Obj().Name() + "."
			}
		}
	}
	held := make(heldSet)
	for canon := range sum.mustEntry {
		if recvName != "" && strings.HasPrefix(canon, typePrefix) {
			field := strings.TrimPrefix(canon, typePrefix)
			if !strings.Contains(field, ".") {
				held[recvName+"."+field] = heldLock{at: fd.Pos(), canon: canon}
				continue
			}
		}
		// Package-level mutex of this package.
		if rest := strings.TrimPrefix(canon, v.pkg.Path+"."); rest != canon && !strings.Contains(rest, ".") {
			held[rest] = heldLock{at: fd.Pos(), canon: canon}
		}
	}
	return held
}

type guardedbyFrame struct {
	body   *ast.BlockStmt
	exempt bool
}

func (v *guardedbyVisitor) enterFunc(node ast.Node) {
	frame := guardedbyFrame{}
	switch n := node.(type) {
	case *ast.FuncDecl:
		frame.body = n.Body
		frame.exempt = strings.HasSuffix(n.Name.Name, "Locked")
	case *ast.FuncLit:
		frame.body = n.Body
	}
	v.stack = append(v.stack, frame)
}

func (v *guardedbyVisitor) exitFunc(ast.Node) {
	v.stack = v.stack[:len(v.stack)-1]
}

func (v *guardedbyVisitor) frame() guardedbyFrame {
	return v.stack[len(v.stack)-1]
}

func (v *guardedbyVisitor) visitStmt(s ast.Stmt, held heldSet) {
	if len(v.stack) == 0 || v.frame().exempt {
		return
	}
	if ret, ok := s.(*ast.ReturnStmt); ok {
		v.checkEscape(ret)
	}
	for _, e := range shallowExprs(s) {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			v.checkAccess(sel, held)
			return true
		})
	}
}

func (v *guardedbyVisitor) checkAccess(sel *ast.SelectorExpr, held heldSet) {
	selection := v.pkg.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	mu, annotated := v.fields[field]
	if !annotated {
		return
	}
	// Freshly constructed value: base variable declared in this function's
	// body. The range check deliberately uses the body, not the whole
	// declaration — a method receiver or parameter is NOT exempt.
	if base, ok := sel.X.(*ast.Ident); ok {
		body := v.frame().body
		if obj := v.pkg.Info.ObjectOf(base); obj != nil && body != nil &&
			obj.Pos() >= body.Pos() && obj.Pos() <= body.End() {
			return
		}
	}
	key := types.ExprString(sel.X) + "." + mu
	if _, ok := held[key]; ok {
		return
	}
	*v.out = append(*v.out, Finding{
		Pos:      v.prog.Fset.Position(sel.Pos()),
		Analyzer: "guardedby",
		Message: fmt.Sprintf("field %s.%s (guarded by %s) accessed without holding %s",
			types.ExprString(sel.X), sel.Sel.Name, mu, key),
	})
}

// checkEscape reports guarded reference-typed fields returned directly
// (plain or address-of). A returned copy (append, maps.Clone, a struct
// value) is not a selector result and stays quiet.
func (v *guardedbyVisitor) checkEscape(ret *ast.ReturnStmt) {
	for _, r := range ret.Results {
		// Only parens are transparent here: s.items[k] returns an
		// element, not the guarded container, so indexing must NOT be
		// stripped the way unwrapFun does for call targets.
		e := unparen(r)
		addrOf := false
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e, addrOf = unparen(u.X), true
		}
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		field := fieldVarOf(v.pkg.Info, sel)
		if field == nil {
			continue
		}
		mu, annotated := v.fields[field]
		if !annotated {
			continue
		}
		if !addrOf && !isRefType(field.Type()) {
			continue
		}
		// Freshly constructed value: same exemption as checkAccess.
		if base, ok := sel.X.(*ast.Ident); ok {
			body := v.frame().body
			if obj := v.pkg.Info.ObjectOf(base); obj != nil && body != nil &&
				obj.Pos() >= body.Pos() && obj.Pos() <= body.End() {
				continue
			}
		}
		*v.out = append(*v.out, Finding{
			Pos:      v.prog.Fset.Position(r.Pos()),
			Analyzer: "guardedby",
			Message: fmt.Sprintf("field %s.%s (guarded by %s) escapes via return: the caller retains it past the unlock",
				types.ExprString(sel.X), sel.Sel.Name, mu),
		})
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// isRefType reports types whose values alias shared state.
func isRefType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	return false
}
