package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// chanowner enforces single-ownership of channel struct fields: every
// channel field has exactly one closing owner function (close from a
// second function is a finding), a close outside the field's declaring
// package is a finding, and a send provably after the owner's close in
// the same straight-line function body is a finding. The owner is the
// function containing the first close in source order; closes inside
// nested literals (goroutines, sync.Once.Do bodies) are attributed to
// the enclosing declared function, so the `once.Do(func(){ close(done) })`
// idiom counts as one owner.
//
// The send-after-close check is a must-analysis over straight-line
// code: a close inside a branch does not poison the code after the
// branch, so it reports no false positives but misses flow through
// conditionals.
type chanowner struct{}

func newChanowner() *chanowner { return &chanowner{} }

func (a *chanowner) Name() string { return "chanowner" }

type closeSite struct {
	pkg *Package
	fn  string // display name of the enclosing declared function
	pos token.Pos
}

func (a *chanowner) Run(prog *Program) []Finding {
	declPkg := make(map[*types.Var]*Package) // channel field → declaring package
	for _, pkg := range prog.Pkgs {
		for _, obj := range pkg.Info.Defs {
			v, ok := obj.(*types.Var)
			if !ok || !v.IsField() {
				continue
			}
			if _, isChan := v.Type().Underlying().(*types.Chan); isChan {
				declPkg[v] = pkg
			}
		}
	}
	closes := make(map[*types.Var][]closeSite)
	var fields []*types.Var // deterministic iteration order
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				name := displayName(fn)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fv := closedField(pkg.Info, call)
					if fv == nil {
						return true
					}
					if len(closes[fv]) == 0 {
						fields = append(fields, fv)
					}
					closes[fv] = append(closes[fv], closeSite{pkg: pkg, fn: name, pos: call.Pos()})
					return true
				})
			}
		}
	}
	sort.Slice(fields, func(i, j int) bool {
		return closes[fields[i]][0].pos < closes[fields[j]][0].pos
	})

	var out []Finding
	for _, fv := range fields {
		sites := closes[fv]
		sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
		owner := sites[0].fn
		for _, site := range sites {
			if site.fn != owner {
				out = append(out, Finding{
					Pos:      prog.Fset.Position(site.pos),
					Analyzer: "chanowner",
					Message: fmt.Sprintf("channel field %s has multiple closing owners: closed here in %s, owned by %s",
						fv.Name(), site.fn, owner),
				})
			}
			if dp := declPkg[fv]; dp != nil && site.pkg != dp {
				out = append(out, Finding{
					Pos:      prog.Fset.Position(site.pos),
					Analyzer: "chanowner",
					Message: fmt.Sprintf("channel field %s closed outside its owning package %s",
						fv.Name(), dp.Path),
				})
			}
		}
	}
	out = append(out, a.sendsAfterClose(prog)...)
	return out
}

// closedField returns the channel field a builtin close call closes, or
// nil.
func closedField(info *types.Info, call *ast.CallExpr) *types.Var {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "close" || len(call.Args) != 1 {
		return nil
	}
	if _, ok := info.Uses[id].(*types.Builtin); !ok {
		return nil
	}
	sel, ok := unwrapFun(call.Args[0]).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return fieldVarOf(info, sel)
}

// sendsAfterClose walks each function body tracking, per straight-line
// block, the channel fields already closed; a later send on one is
// unreachable at runtime (it would panic) and reported.
func (a *chanowner) sendsAfterClose(prog *Program) []Finding {
	var out []Finding
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				a.walkBlock(prog, pkg, fd.Body.List, make(map[*types.Var]bool), &out)
			}
		}
	}
	return out
}

func (a *chanowner) walkBlock(prog *Program, pkg *Package, stmts []ast.Stmt, closed map[*types.Var]bool, out *[]Finding) {
	clone := func() map[*types.Var]bool {
		c := make(map[*types.Var]bool, len(closed))
		for k := range closed {
			c[k] = true
		}
		return c
	}
	for _, stmt := range stmts {
		if len(closed) > 0 {
			a.checkSends(prog, pkg, stmt, closed, out)
		}
		switch st := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if fv := closedField(pkg.Info, call); fv != nil {
					closed[fv] = true
				}
			}
		case *ast.BlockStmt:
			a.walkBlock(prog, pkg, st.List, closed, out)
		case *ast.IfStmt:
			a.walkBlock(prog, pkg, st.Body.List, clone(), out)
			if st.Else != nil {
				a.walkBlock(prog, pkg, []ast.Stmt{st.Else}, clone(), out)
			}
		case *ast.ForStmt:
			a.walkBlock(prog, pkg, st.Body.List, clone(), out)
		case *ast.RangeStmt:
			a.walkBlock(prog, pkg, st.Body.List, clone(), out)
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			var body *ast.BlockStmt
			switch s := st.(type) {
			case *ast.SwitchStmt:
				body = s.Body
			case *ast.TypeSwitchStmt:
				body = s.Body
			case *ast.SelectStmt:
				body = s.Body
			}
			for _, c := range body.List {
				switch cc := c.(type) {
				case *ast.CaseClause:
					a.walkBlock(prog, pkg, cc.Body, clone(), out)
				case *ast.CommClause:
					a.walkBlock(prog, pkg, cc.Body, clone(), out)
				}
			}
		}
	}
}

// checkSends reports sends on already-closed channel fields in one
// statement's own expressions (nested blocks are walked separately, and
// nested literals run at an unknown time, so both are skipped).
func (a *chanowner) checkSends(prog *Program, pkg *Package, stmt ast.Stmt, closed map[*types.Var]bool, out *[]Finding) {
	send, ok := stmt.(*ast.SendStmt)
	if !ok {
		return
	}
	sel, ok := unwrapFun(send.Chan).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fv := fieldVarOf(pkg.Info, sel)
	if fv == nil || !closed[fv] {
		return
	}
	*out = append(*out, Finding{
		Pos:      prog.Fset.Position(send.Pos()),
		Analyzer: "chanowner",
		Message:  fmt.Sprintf("send on %s after close: the channel was closed earlier in this function", types.ExprString(send.Chan)),
	})
}
