package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// allocfree enforces ROADMAP item 4's gate: a function annotated
//
//	//sdvm:hotpath
//
// must not allocate, transitively. The analyzer walks forward from every
// annotated declaration over the synchronous call graph (dataflow.go's
// reachSync) and reports each allocation site any hot path can execute:
//
//   - make / new
//   - append (may grow its backing array)
//   - &composite literals, slice and map literals
//   - string ↔ []byte / []rune conversions
//   - interface boxing: a concrete, non-pointer-shaped value converted
//     to an interface type explicitly, at a call argument, a return, or
//     an assignment (pointer-shaped values — pointers, channels, maps,
//     funcs — fit the interface data word and do not allocate)
//   - function literals (closure allocation) and goroutine launches
//   - calls into a table of known-allocating standard-library functions
//     (fmt, errors, strings, sort, time.NewTimer, binary.Append*, …)
//
// Calls through stored function values cannot be resolved by the call
// graph, so a dynamic call reachable from a hot path is itself reported:
// allocation-freedom cannot be proven past it. Unlisted calls out of the
// module and interface calls with no module implementation are assumed
// allocation-free — the analyzer's documented optimism, mirroring
// lockhold's blocking-call table.
//
// Every finding carries the shortest root-to-site witness chain, so one
// suppression (//sdvmlint:allow or a justified baseline entry) covers
// one allocation site regardless of how many hot paths reach it.
type allocfree struct{}

func newAllocfree() Analyzer { return allocfree{} }

func (allocfree) Name() string { return "allocfree" }

// allocOp is one local allocation in a function body.
type allocOp struct {
	what string
	pos  token.Pos
}

func (allocfree) Run(prog *Program) []Finding {
	e := prog.engine()
	roots := hotpathRoots(e)
	if len(roots) == 0 {
		return nil
	}
	follow := func(c *callOp) bool { return !c.isGo && !c.dynamic }
	paths := e.reachSync(roots, follow)

	var out []Finding
	seen := make(map[token.Pos]bool)
	report := func(pos token.Pos, msg string) {
		if seen[pos] {
			return
		}
		seen[pos] = true
		out = append(out, Finding{Pos: prog.Fset.Position(pos), Analyzer: "allocfree", Message: msg})
	}
	for _, s := range e.sums {
		path, reached := paths[s]
		if !reached {
			continue
		}
		via := strings.Join(path, " → ")
		for _, op := range localAllocs(s) {
			report(op.pos, fmt.Sprintf("hot-path allocation: %s (%s)", op.what, via))
		}
		for i := range s.calls {
			c := &s.calls[i]
			if c.dynamic && !c.isGo {
				report(c.pos, fmt.Sprintf("dynamic call on hot path cannot be proven allocation-free (%s)", via))
			}
		}
	}
	return out
}

// localAllocs collects the allocation operations in one function body,
// excluding nested function literals (each is its own call-graph node;
// the literal itself is the enclosing function's closure allocation).
func localAllocs(s *funcSum) []allocOp {
	body := funcBody(s)
	if body == nil {
		return nil
	}
	info := s.pkg.Info
	var ops []allocOp
	add := func(pos token.Pos, what string) { ops = append(ops, allocOp{what: what, pos: pos}) }

	// &T{...} is one heap allocation; remember the inner literal so the
	// composite-literal case below does not double-report it.
	addressed := make(map[*ast.CompositeLit]bool)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			add(n.Pos(), "function literal allocates a closure")
			return false
		case *ast.GoStmt:
			add(n.Pos(), "goroutine launch allocates")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := n.X.(*ast.CompositeLit); ok {
					addressed[cl] = true
					add(n.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			if addressed[n] {
				return true
			}
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				add(n.Pos(), "slice literal allocates")
			case *types.Map:
				add(n.Pos(), "map literal allocates")
			}
		case *ast.ReturnStmt:
			sig := funcSig(s)
			if sig == nil {
				break
			}
			res := sig.Results()
			if len(n.Results) == res.Len() {
				for i, r := range n.Results {
					if boxes(res.At(i).Type(), info.TypeOf(r), r) {
						add(r.Pos(), "return value boxed into interface")
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.ASSIGN || len(n.Lhs) != len(n.Rhs) {
				break
			}
			for i, rhs := range n.Rhs {
				if boxes(info.TypeOf(n.Lhs[i]), info.TypeOf(rhs), rhs) {
					add(rhs.Pos(), "value boxed into interface on assignment")
				}
			}
		case *ast.CallExpr:
			callAllocs(info, n, add)
		}
		return true
	})
	return ops
}

// callAllocs classifies one call expression: conversions, builtins,
// known-allocating leaves, and interface boxing of arguments.
func callAllocs(info *types.Info, call *ast.CallExpr, add func(token.Pos, string)) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion. String/byte-slice conversions copy; conversions to
		// interface types box.
		dst := tv.Type
		if len(call.Args) == 1 {
			src := info.TypeOf(call.Args[0])
			if stringConv(dst, src) {
				add(call.Pos(), "string conversion allocates a copy")
			} else if boxes(dst, src, call.Args[0]) {
				add(call.Pos(), "conversion to interface boxes the value")
			}
		}
		return
	}
	switch fn := unwrapFun(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fn].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				add(call.Pos(), "make allocates")
			case "new":
				add(call.Pos(), "new allocates")
			case "append":
				add(call.Pos(), "append may grow the backing array")
			}
			return
		}
	}
	var callee *types.Func
	switch fn := unwrapFun(call.Fun).(type) {
	case *ast.Ident:
		callee, _ = info.Uses[fn].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = info.Uses[fn.Sel].(*types.Func)
	}
	if callee != nil && callee.Pkg() != nil {
		key := callee.Pkg().Path() + "." + callee.Name()
		for _, pfx := range allocLeaves {
			if strings.HasPrefix(key, pfx) {
				add(call.Pos(), "call to allocating "+pkgBase(callee.Pkg().Path())+"."+callee.Name())
				break
			}
		}
	}
	// Interface boxing of arguments.
	sig := callSig(info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxes(pt, info.TypeOf(arg), arg) {
			add(arg.Pos(), "argument boxed into interface")
		}
	}
}

// callSig returns the signature of a non-builtin, non-conversion call,
// or nil.
func callSig(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// boxes reports whether storing a src-typed value into dst allocates:
// dst is an interface, src is concrete, and src is not pointer-shaped
// (a pointer, channel, map, func or unsafe.Pointer rides in the
// interface data word for free).
func boxes(dst, src types.Type, srcExpr ast.Expr) bool {
	if dst == nil || src == nil || !types.IsInterface(dst) || types.IsInterface(src) {
		return false
	}
	if b, ok := src.Underlying().(*types.Basic); ok {
		if b.Kind() == types.UntypedNil || b.Kind() == types.UnsafePointer {
			return false
		}
	}
	switch src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	// Untyped constants box, but a nil literal does not.
	if id, ok := srcExpr.(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	return true
}

// stringConv reports whether the conversion dst(src) is one of the
// copying string ↔ []byte / []rune conversions.
func stringConv(dst, src types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isStr(src))
}

// funcBody returns the body of a summarized function, nil if absent.
func funcBody(s *funcSum) *ast.BlockStmt {
	switch {
	case s.decl != nil:
		return s.decl.Body
	case s.lit != nil:
		return s.lit.Body
	}
	return nil
}

// funcSig returns the go/types signature of a summarized function.
func funcSig(s *funcSum) *types.Signature {
	switch {
	case s.obj != nil:
		sig, _ := s.obj.Type().(*types.Signature)
		return sig
	case s.lit != nil:
		sig, _ := s.pkg.Info.TypeOf(s.lit).(*types.Signature)
		return sig
	}
	return nil
}

// allocLeaves lists standard-library calls known to allocate, matched by
// package-path-qualified name prefix. Unlisted leaves are assumed
// allocation-free — the same optimistic-table approach lockhold takes
// for blocking calls.
var allocLeaves = []string{
	"fmt.",
	"errors.",
	"sort.",
	"strings.",
	"bytes.",
	"strconv.Format",
	"strconv.Itoa",
	"strconv.Quote",
	"strconv.Append",
	"encoding/json.",
	"encoding/binary.Append",
	"io.ReadAll",
	"net.",
	"os.",
	"reflect.",
	"regexp.",
	"time.NewTimer",
	"time.NewTicker",
	"time.After",
	"time.AfterFunc",
	"runtime/debug.",
}
